module Sig_scheme = Secrep_crypto.Sig_scheme

type t = {
  content_id : string;
  version : int;
  timestamp : float;
  master_id : int;
  signature : string;
}

let payload ~content_id ~version ~timestamp ~master_id =
  Printf.sprintf "keepalive|%s|%d|%h|%d" content_id version timestamp master_id

let make ~master_key ~content_id ~master_id ~version ~now =
  let signature =
    Sig_scheme.sign master_key (payload ~content_id ~version ~timestamp:now ~master_id)
  in
  { content_id; version; timestamp = now; master_id; signature }

let signed_payload t =
  payload ~content_id:t.content_id ~version:t.version ~timestamp:t.timestamp
    ~master_id:t.master_id

let verify ~master_public t =
  Sig_scheme.verify master_public ~msg:(signed_payload t) ~signature:t.signature

let age t ~now = now -. t.timestamp
let is_fresh t ~now ~max_latency = age t ~now <= max_latency
