module Sig_scheme = Secrep_crypto.Sig_scheme

type t = { keypair : Sig_scheme.keypair; id : string }

let id_of_public public = "content:" ^ Sig_scheme.key_id public

let create scheme g =
  let keypair = Sig_scheme.generate scheme g in
  { keypair; id = id_of_public (Sig_scheme.public_of keypair) }

let public t = Sig_scheme.public_of t.keypair
let content_id t = t.id
let sign t msg = Sig_scheme.sign t.keypair msg
let verify_id ~content_id public = String.equal content_id (id_of_public public)
