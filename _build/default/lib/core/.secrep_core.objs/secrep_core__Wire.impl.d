lib/core/wire.ml: Certificate Keepalive Pledge Secrep_crypto Secrep_store String
