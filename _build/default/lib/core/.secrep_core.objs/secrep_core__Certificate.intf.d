lib/core/certificate.mli: Content_key Secrep_crypto
