lib/core/greedy.mli: Secrep_crypto
