lib/core/pledge.ml: Keepalive Printf Secrep_crypto Secrep_store String
