lib/core/fault.mli: Secrep_crypto
