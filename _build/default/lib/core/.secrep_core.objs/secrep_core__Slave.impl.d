lib/core/slave.ml: Config Fault Keepalive List Pledge Printf Secrep_crypto Secrep_sim Secrep_store
