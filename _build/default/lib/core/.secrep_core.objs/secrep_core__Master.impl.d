lib/core/master.ml: Array Certificate Config Content_key Float Format Greedy Hashtbl Int Keepalive List Pledge Printf Secrep_crypto Secrep_sim Secrep_store Slave String
