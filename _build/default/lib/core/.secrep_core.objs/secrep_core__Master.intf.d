lib/core/master.mli: Certificate Config Content_key Pledge Secrep_crypto Secrep_sim Secrep_store Slave
