lib/core/security_level.ml: Float Printf
