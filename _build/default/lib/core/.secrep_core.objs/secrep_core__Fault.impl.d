lib/core/fault.ml: Printf Secrep_crypto
