lib/core/config.mli: Secrep_crypto
