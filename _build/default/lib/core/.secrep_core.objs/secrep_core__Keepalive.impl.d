lib/core/keepalive.ml: Printf Secrep_crypto
