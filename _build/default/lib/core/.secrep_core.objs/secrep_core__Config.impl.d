lib/core/config.ml: Printf Secrep_crypto
