lib/core/greedy.ml: Hashtbl Int List Secrep_crypto
