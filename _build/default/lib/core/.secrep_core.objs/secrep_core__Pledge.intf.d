lib/core/pledge.mli: Keepalive Secrep_crypto Secrep_store
