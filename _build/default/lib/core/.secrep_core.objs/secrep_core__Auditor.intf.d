lib/core/auditor.mli: Config Pledge Secrep_crypto Secrep_sim Secrep_store
