lib/core/keepalive.mli: Secrep_crypto
