lib/core/auditor.ml: Config Float Hashtbl Int List Pledge Printf Queue Secrep_crypto Secrep_sim Secrep_store String
