lib/core/client.mli: Config Master Pledge Secrep_crypto Secrep_sim Secrep_store Security_level Slave
