lib/core/directory.ml: Certificate Hashtbl Int List String
