lib/core/slave.mli: Config Fault Keepalive Pledge Secrep_crypto Secrep_sim Secrep_store
