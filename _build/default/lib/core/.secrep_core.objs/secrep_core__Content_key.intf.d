lib/core/content_key.mli: Secrep_crypto
