lib/core/directory.mli: Certificate
