lib/core/content_key.ml: Secrep_crypto String
