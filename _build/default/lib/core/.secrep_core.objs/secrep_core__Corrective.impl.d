lib/core/corrective.ml: Float Format Int List
