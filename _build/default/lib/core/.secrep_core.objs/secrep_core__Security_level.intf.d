lib/core/security_level.mli:
