lib/core/corrective.mli: Format
