lib/core/client.ml: Config List Master Pledge Secrep_crypto Secrep_sim Secrep_store Security_level Slave String
