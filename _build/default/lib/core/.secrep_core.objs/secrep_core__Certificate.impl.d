lib/core/certificate.ml: Content_key Printf Secrep_crypto
