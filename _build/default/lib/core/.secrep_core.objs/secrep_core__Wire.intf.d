lib/core/wire.mli: Certificate Keepalive Pledge Secrep_store
