lib/core/system.mli: Auditor Client Config Corrective Directory Fault Master Secrep_sim Secrep_store Security_level Slave
