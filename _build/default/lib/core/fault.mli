(** Malicious-slave behaviour injection.

    The paper's threat model (§2, §3.3) is a slave that returns wrong
    answers while remaining protocol-conformant enough to be believed;
    these modes cover the attacks the protocol must catch, plus
    cruder ones the client rejects immediately. *)

type lie_mode =
  | Corrupt_result
      (** Execute honestly, then flip the answer before pledging — the
          canonical "wrong answer, valid pledge" attack detected only
          by double-check or audit. *)
  | Collude of string
      (** Like [Corrupt_result], but the fabricated answer is a
          deterministic function of the shared tag and the query, so
          every colluding slave returns the *same* wrong answer —
          the attack §4's quorum-read variant must pay extra to
          resist. *)
  | Stale_state
      (** Answer from a frozen, outdated copy of the content while
          attaching the latest keep-alive — e.g. silently dropping
          updates.  Detected like a corrupt result. *)
  | Bad_signature
      (** Pledge signature is garbage; clients reject on the spot. *)
  | Omit_result
      (** Drop the request on the floor (availability attack); clients
          time out and retry elsewhere. *)

type behavior =
  | Honest
  | Malicious of { probability : float; mode : lie_mode; from_time : float }
      (** Lie on each read with [probability], starting at simulated
          time [from_time]. *)

val lies : behavior -> now:float -> Secrep_crypto.Prng.t -> lie_mode option
(** Roll the dice: [Some mode] when this read should be answered
    dishonestly. *)

val describe : behavior -> string
