(** Wire encodings of the protocol packets that cross trust boundaries:
    keep-alives (master -> slave -> client), pledges (slave -> client
    -> auditor/master) and master certificates (directory -> client).

    A real deployment ships these bytes; the simulation uses them for
    size accounting and to prove the formats round-trip.  Decoders
    return [Error] on any malformed input — a byzantine peer can send
    garbage, not crash us. *)

val encode_keepalive : Keepalive.t -> string
val decode_keepalive : string -> (Keepalive.t, string) result

val encode_pledge : Pledge.t -> string
val decode_pledge : string -> (Pledge.t, string) result

val encode_certificate : Certificate.t -> string
val decode_certificate : string -> (Certificate.t, string) result

val pledge_size : Pledge.t -> int
(** Encoded size in bytes, for link bandwidth accounting. *)

val keepalive_size : Keepalive.t -> int
val update_size : Secrep_store.Oplog.entry list -> Keepalive.t -> int
(** Size of a master->slave state update carrying these entries. *)
