(** Pledge packets (§3.2): for every read it serves, a slave signs
    (query, SHA-1 of the result, latest master keep-alive).  An
    incorrect answer turns the pledge into irrefutable proof of
    misbehaviour (§3.3) — and because only the slave can produce its
    signature, a client cannot frame an innocent slave. *)

type t = {
  slave_id : int;
  query : Secrep_store.Query.t;
  result_digest : string;  (** SHA-1 of the canonical result *)
  keepalive : Keepalive.t;  (** master-signed version + timestamp *)
  signature : string;  (** slave's signature over all of the above *)
}

val make :
  slave_key:Secrep_crypto.Sig_scheme.keypair ->
  slave_id:int ->
  query:Secrep_store.Query.t ->
  result_digest:string ->
  keepalive:Keepalive.t ->
  t

val signed_payload : t -> string

val verify_signature : slave_public:Secrep_crypto.Sig_scheme.public -> t -> bool

val verify :
  slave_public:Secrep_crypto.Sig_scheme.public ->
  master_public:Secrep_crypto.Sig_scheme.public ->
  result:Secrep_store.Query_result.t ->
  now:float ->
  max_latency:float ->
  t ->
  (unit, string) result
(** The full client-side check of §3.2: result hash matches the
    pledge, slave signature valid, keep-alive master-signed, timestamp
    fresh. *)

val version : t -> int
