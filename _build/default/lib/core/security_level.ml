type t = Normal | Leveled of int | Sensitive

let levels = 4

let double_check_probability ~base t =
  if base < 0.0 || base > 1.0 then invalid_arg "Security_level: base out of range";
  match t with
  | Normal -> base
  | Sensitive -> 1.0
  | Leveled i ->
    if i < 0 || i >= levels then invalid_arg "Security_level: level out of range";
    (* Geometric ladder: level 0 is the base probability, the top level
       is exactly 1.0 (so it collapses into "run on the master"),
       intermediate levels interpolate multiplicatively. *)
    if i = levels - 1 then 1.0
    else begin
      let base = Float.max base 1e-6 in
      let step = (1.0 /. base) ** (1.0 /. float_of_int (levels - 1)) in
      Float.min 1.0 (base *. (step ** float_of_int i))
    end

let executes_on_master ~base t =
  (* §4's collapse of "probability 1" into "run on the trusted host"
     applies to the graded/sensitive levels only; a Normal read with a
     base probability of 1 still goes to the slave and is then
     double-checked — that is §3.3's mechanism, not §4's. *)
  match t with Normal -> false | Leveled _ | Sensitive -> double_check_probability ~base t >= 1.0

let describe = function
  | Normal -> "normal"
  | Sensitive -> "sensitive"
  | Leveled i -> Printf.sprintf "level-%d" i
