(** The content key: the public/private pair that identifies a piece of
    replicated content (§2).  The private half stays with the content
    owner and signs master certificates; the public half is embedded in
    the content identifier (self-certifying names, after Mazières &
    Kaashoek), so a client that knows the identifier can verify the
    whole certificate chain with no PKI. *)

type t

val create : Secrep_crypto.Sig_scheme.scheme -> Secrep_crypto.Prng.t -> t

val public : t -> Secrep_crypto.Sig_scheme.public

val content_id : t -> string
(** Self-certifying identifier derived from the public key. *)

val sign : t -> string -> string
(** Content-owner signature (certificate issuance). *)

val verify_id : content_id:string -> Secrep_crypto.Sig_scheme.public -> bool
(** Does this public key hash to the identifier? *)
