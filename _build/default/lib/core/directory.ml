type t = { table : (string, (int, Certificate.t) Hashtbl.t) Hashtbl.t }

let create () = { table = Hashtbl.create 8 }

let bucket t content_id =
  match Hashtbl.find_opt t.table content_id with
  | Some b -> b
  | None ->
    let b = Hashtbl.create 8 in
    Hashtbl.add t.table content_id b;
    b

let publish t (cert : Certificate.t) =
  Hashtbl.replace (bucket t cert.content_id) cert.master_id cert

let withdraw t ~content_id ~master_id =
  match Hashtbl.find_opt t.table content_id with
  | Some b -> Hashtbl.remove b master_id
  | None -> ()

let lookup t ~content_id =
  match Hashtbl.find_opt t.table content_id with
  | None -> []
  | Some b ->
    Hashtbl.fold (fun _ cert acc -> cert :: acc) b []
    |> List.sort (fun (a : Certificate.t) b -> Int.compare a.master_id b.master_id)

let content_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.table [] |> List.sort String.compare
