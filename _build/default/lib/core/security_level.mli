(** Per-read security levels (§4, first variant).

    Clients may mark reads "security sensitive" — executed only on
    trusted masters, 100% correct — or assign graded levels that scale
    the double-check probability, up to 1.0 which again means
    "execute only on trusted hosts". *)

type t =
  | Normal  (** the base protocol: configured double-check probability *)
  | Leveled of int  (** 0 = lowest sensitivity .. [levels - 1] = highest *)
  | Sensitive  (** execute on the master, never on a slave *)

val levels : int
(** Number of graded levels (4). *)

val double_check_probability : base:float -> t -> float
(** Geometric interpolation from [base] (level 0) to 1.0 (top level);
    [Sensitive] maps to 1.0.  Raises [Invalid_argument] on an
    out-of-range level. *)

val executes_on_master : base:float -> t -> bool
(** True when the effective probability is 1.0 — the refinement of §4
    collapses "always double-check" into "just run it on the master". *)

val describe : t -> string
