(** Master certificates: the content owner binds each master's contact
    address to its public key, signing with the content key (§2).
    Stored in the public {!Directory}, indexed by content id. *)

type t = {
  content_id : string;
  master_id : int;
  address : string;  (** simulated contact address *)
  master_public : Secrep_crypto.Sig_scheme.public;
  signature : string;
}

val issue : Content_key.t -> master_id:int -> address:string -> Secrep_crypto.Sig_scheme.public -> t

val verify : content_public:Secrep_crypto.Sig_scheme.public -> t -> bool
(** Checks the owner signature and that [content_public] matches the
    certificate's content id (self-certifying check). *)

val signed_payload : t -> string
(** The exact bytes the owner signs; exposed for tests. *)
