type lie_mode =
  | Corrupt_result
  | Collude of string
  | Stale_state
  | Bad_signature
  | Omit_result

type behavior =
  | Honest
  | Malicious of { probability : float; mode : lie_mode; from_time : float }

let lies behavior ~now g =
  match behavior with
  | Honest -> None
  | Malicious { probability; mode; from_time } ->
    if now >= from_time && Secrep_crypto.Prng.bernoulli g probability then Some mode else None

let mode_name = function
  | Corrupt_result -> "corrupt-result"
  | Collude tag -> "collude:" ^ tag
  | Stale_state -> "stale-state"
  | Bad_signature -> "bad-signature"
  | Omit_result -> "omit-result"

let describe = function
  | Honest -> "honest"
  | Malicious { probability; mode; from_time } ->
    Printf.sprintf "malicious(%s, p=%.3g, from t=%.3g)" (mode_name mode) probability from_time
