(** The public directory (§2): maps a content id to the certificates of
    the masters replicating that content.  The directory itself is
    untrusted — clients verify every certificate against the
    self-certifying content id — so a plain lookup service suffices. *)

type t

val create : unit -> t

val publish : t -> Certificate.t -> unit
(** Re-publishing a (content, master) pair replaces the old entry. *)

val withdraw : t -> content_id:string -> master_id:int -> unit

val lookup : t -> content_id:string -> Certificate.t list
(** Sorted by master id; empty when unknown. *)

val content_ids : t -> string list
