(** Greedy-client detection (§3.3).

    A client could burn master capacity by double-checking every read
    instead of its small quota.  The master tracks recent double-check
    arrivals per client and flags clients whose rate is far above the
    cohort average; a flagged client's double-checks are then mostly
    ignored ("the master can enforce fair play by simply ignoring a
    large fraction of the double-check requests"). *)

(** The rule is *relative* (a client far above its cohort's average):
    a master whose only active double-checker is the abuser has no
    baseline and cannot suspect it — the paper's statistical framing
    shares this limit, since the master never sees total read counts. *)

type t

val create :
  window:float -> factor:float -> min_samples:int -> rng:Secrep_crypto.Prng.t -> t

val record : t -> client:int -> now:float -> unit
(** Note one double-check arrival. *)

val is_suspected : t -> client:int -> now:float -> bool
(** True when the client's windowed count exceeds [factor] times the
    average over clients seen in the window (and is at least
    [min_samples]). *)

val should_serve : t -> client:int -> now:float -> bool
(** Record-and-decide: suspected clients are served with probability
    [1/factor] so they degrade to roughly their fair share. *)

val suspected_clients : t -> now:float -> int list
