(** Signed, time-stamped content-version packets (§3.1).

    Masters push these to their slaves on every commit and periodically
    in between; a slave may serve reads only while its latest packet is
    under [max_latency] old, and clients independently re-check the
    timestamp, so a malicious slave cannot fake freshness without
    forging a master signature. *)

type t = {
  content_id : string;
  version : int;
  timestamp : float;  (** master's clock at signing *)
  master_id : int;
  signature : string;
}

val make :
  master_key:Secrep_crypto.Sig_scheme.keypair ->
  content_id:string ->
  master_id:int ->
  version:int ->
  now:float ->
  t

val verify : master_public:Secrep_crypto.Sig_scheme.public -> t -> bool

val age : t -> now:float -> float

val is_fresh : t -> now:float -> max_latency:float -> bool
(** [age <= max_latency]. *)

val signed_payload : t -> string
