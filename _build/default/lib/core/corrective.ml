type discovery = Immediate | Delayed

type event = {
  time : float;
  slave_id : int;
  discovery : discovery;
  clients_reassigned : int;
}

type t = {
  mutable events : event list; (* newest first *)
  mutable readmissions : (int * float) list; (* slave_id, time; newest first *)
}

let create () = { events = []; readmissions = [] }
let record t event = t.events <- event :: t.events

let readmit t ~slave_id ~time = t.readmissions <- (slave_id, time) :: t.readmissions
let events t = List.rev t.events

let excluded t =
  List.sort_uniq Int.compare (List.map (fun e -> e.slave_id) t.events)

let is_excluded t ~slave_id = List.exists (fun e -> e.slave_id = slave_id) t.events

let last_exclusion_time t ~slave_id =
  List.fold_left
    (fun acc e -> if e.slave_id = slave_id then Float.max acc e.time else acc)
    neg_infinity t.events

let last_readmission_time t ~slave_id =
  List.fold_left
    (fun acc (s, time) -> if s = slave_id then Float.max acc time else acc)
    neg_infinity t.readmissions

let is_currently_excluded t ~slave_id =
  is_excluded t ~slave_id
  && last_exclusion_time t ~slave_id >= last_readmission_time t ~slave_id

let currently_excluded t =
  List.filter (fun slave_id -> is_currently_excluded t ~slave_id) (excluded t)

let first_detection t ~slave_id =
  List.fold_left
    (fun acc e ->
      if e.slave_id <> slave_id then acc
      else match acc with Some a when a.time <= e.time -> acc | _ -> Some e)
    None t.events

let count t ~discovery = List.length (List.filter (fun e -> e.discovery = discovery) t.events)

let pp_event fmt e =
  Format.fprintf fmt "[%.3f] slave %d excluded (%s), %d clients reassigned" e.time e.slave_id
    (match e.discovery with Immediate -> "immediate" | Delayed -> "delayed")
    e.clients_reassigned
