module Prng = Secrep_crypto.Prng

type t = {
  window : float;
  factor : float;
  min_samples : int;
  rng : Prng.t;
  arrivals : (int, float list ref) Hashtbl.t; (* newest first *)
}

let create ~window ~factor ~min_samples ~rng =
  if window <= 0.0 then invalid_arg "Greedy.create: window must be positive";
  if factor < 1.0 then invalid_arg "Greedy.create: factor must be >= 1";
  { window; factor; min_samples; rng; arrivals = Hashtbl.create 32 }

let bucket t client =
  match Hashtbl.find_opt t.arrivals client with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add t.arrivals client r;
    r

let prune t r ~now =
  r := List.filter (fun ts -> now -. ts <= t.window) !r

let record t ~client ~now =
  let r = bucket t client in
  prune t r ~now;
  r := now :: !r

let windowed_count t ~client ~now =
  match Hashtbl.find_opt t.arrivals client with
  | None -> 0
  | Some r ->
    prune t r ~now;
    List.length !r

(* Average windowed count over clients *other than* [excluding]: a
   heavy client must not inflate the baseline it is judged against. *)
let average_count t ~excluding ~now =
  let total, clients =
    Hashtbl.fold
      (fun id r (total, clients) ->
        if id = excluding then (total, clients)
        else begin
          prune t r ~now;
          let n = List.length !r in
          if n > 0 then (total + n, clients + 1) else (total, clients)
        end)
      t.arrivals (0, 0)
  in
  if clients = 0 then 0.0 else float_of_int total /. float_of_int clients

let is_suspected t ~client ~now =
  let mine = windowed_count t ~client ~now in
  mine >= t.min_samples
  && begin
       let avg = average_count t ~excluding:client ~now in
       avg > 0.0 && float_of_int mine > t.factor *. avg
     end

let should_serve t ~client ~now =
  (* Decide on the state *before* this arrival, then record it, so a
     client's own burst cannot immunise it. *)
  let suspected = is_suspected t ~client ~now in
  record t ~client ~now;
  if suspected then Prng.float t.rng < 1.0 /. t.factor else true

let suspected_clients t ~now =
  Hashtbl.fold (fun client _ acc -> if is_suspected t ~client ~now then client :: acc else acc)
    t.arrivals []
  |> List.sort Int.compare
