module Sig_scheme = Secrep_crypto.Sig_scheme
module Hex = Secrep_crypto.Hex
module Query = Secrep_store.Query
module Canonical = Secrep_store.Canonical

type t = {
  slave_id : int;
  query : Query.t;
  result_digest : string;
  keepalive : Keepalive.t;
  signature : string;
}

let payload ~slave_id ~query ~result_digest ~keepalive =
  Printf.sprintf "pledge|%d|%s|%s|%s" slave_id
    (Hex.encode (Canonical.of_query query))
    (Hex.encode result_digest)
    (Keepalive.signed_payload keepalive ^ "~" ^ Hex.encode keepalive.Keepalive.signature)

let make ~slave_key ~slave_id ~query ~result_digest ~keepalive =
  let signature =
    Sig_scheme.sign slave_key (payload ~slave_id ~query ~result_digest ~keepalive)
  in
  { slave_id; query; result_digest; keepalive; signature }

let signed_payload t =
  payload ~slave_id:t.slave_id ~query:t.query ~result_digest:t.result_digest
    ~keepalive:t.keepalive

let verify_signature ~slave_public t =
  Sig_scheme.verify slave_public ~msg:(signed_payload t) ~signature:t.signature

let version t = t.keepalive.Keepalive.version

let verify ~slave_public ~master_public ~result ~now ~max_latency t =
  if not (String.equal (Canonical.result_digest result) t.result_digest) then
    Error "result does not hash to the pledged digest"
  else if not (verify_signature ~slave_public t) then Error "bad slave signature"
  else if not (Keepalive.verify ~master_public t.keepalive) then
    Error "keep-alive not signed by the master"
  else if not (Keepalive.is_fresh t.keepalive ~now ~max_latency) then
    Error
      (Printf.sprintf "stale: keep-alive is %.3fs old (max_latency %.3fs)"
         (Keepalive.age t.keepalive ~now) max_latency)
  else Ok ()
