(** Corrective-action bookkeeping (§3.5): which slaves were excluded,
    when, how they were caught, and how many clients had to be
    re-homed.  Experiments read detection delays from here. *)

type discovery =
  | Immediate  (** caught by a client double-check *)
  | Delayed  (** caught by the background audit *)

type event = {
  time : float;
  slave_id : int;
  discovery : discovery;
  clients_reassigned : int;
}

type t

val create : unit -> t
val record : t -> event -> unit
val events : t -> event list
(** Chronological. *)

val excluded : t -> int list
(** Every slave ever excluded (history). *)

val is_excluded : t -> slave_id:int -> bool

val readmit : t -> slave_id:int -> time:float -> unit
(** §3.5: a slave that was "the victim of an attack" may, "after
    recovering it to a safe state", be brought back to use.  The
    exclusion stays in the history. *)

val currently_excluded : t -> int list
(** Excluded and not subsequently readmitted. *)

val is_currently_excluded : t -> slave_id:int -> bool
val first_detection : t -> slave_id:int -> event option
val count : t -> discovery:discovery -> int
val pp_event : Format.formatter -> event -> unit
