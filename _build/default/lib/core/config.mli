(** System-wide protocol parameters.

    Every knob the paper names is here: [max_latency] (the
    inconsistency bound, §3), the keep-alive frequency (§3.1), the
    double-check probability (§3.3), the auditor's lag slack and
    verified fraction (§3.4), plus simulation cost constants that give
    queries, signatures and verification realistic relative weight. *)

type t = {
  max_latency : float;
      (** Bound on the staleness a client will accept (seconds). *)
  keepalive_period : float;
      (** How often masters re-sign and push the content version;
          must be well under [max_latency] or honest slaves go
          unavailable. *)
  double_check_probability : float;
      (** Per-read probability a client re-asks its master (§3.3). *)
  audit_enabled : bool;
  audit_fraction : float;
      (** Fraction of forwarded pledges the auditor re-executes (§3.4
          suggests lowering this when the auditor is over-used). *)
  audit_lag_slack : float;
      (** Extra wait (beyond [max_latency]) before the auditor moves
          to the next content version (§3.4). *)
  audit_cache_capacity : int;
      (** Entries in the auditor's result cache ("cache results in the
          simplest case", §3.4); 1 effectively disables it — the E9
          ablation knob. *)
  scheme : Secrep_crypto.Sig_scheme.scheme;
  per_doc_cost : float;  (** simulated seconds per document scanned *)
  signature_cost : float;  (** simulated seconds per signature made *)
  verify_cost : float;  (** simulated seconds per signature check *)
  write_cost : float;  (** simulated seconds to apply a write op *)
  greedy_window : float;
      (** Seconds of history used for greedy-client detection. *)
  greedy_factor : float;
      (** Clients whose double-check rate exceeds [greedy_factor] times
          the cohort average are throttled (§3.3). *)
  greedy_min_samples : int;
      (** Minimum double-checks before a client can be suspected. *)
  read_retry_limit : int;
      (** Stale/failed read retries before a client gives up. *)
}

val default : t

val validate : t -> (unit, string) result
(** Rejects inconsistent settings (e.g. keep-alive period >= max
    latency, probabilities outside [0,1]). *)

val validate_exn : t -> t
