(** State-signing baseline (§5, after SFS-RO / SUNDR-style systems):
    content blocks live on untrusted storage authenticated by a Merkle
    tree whose root the content owner signs each version.

    Point reads are exactly where this scheme shines: fetch one block
    plus a logarithmic proof, verify, done — no trusted host involved.
    The paper's criticism is dynamic queries: "the trusted host [must]
    first retrieve all data relevant to the query from untrusted
    storage, verify it, and then perform the operation" — so scans,
    greps and aggregates pay per-document fetch + verify on a trusted
    host, which this model charges explicitly. *)

type t

val create :
  Secrep_sim.Sim.t ->
  rng:Secrep_crypto.Prng.t ->
  costs:Baseline_common.costs ->
  storage_latency:Secrep_sim.Latency.t ->
  trusted_latency:Secrep_sim.Latency.t ->
  signer:Secrep_crypto.Sig_scheme.keypair ->
  unit ->
  t

val load_content : t -> (string * Secrep_store.Document.t) list -> unit
(** (Re)builds the Merkle tree and signs the new root. *)

val write : t -> Secrep_store.Oplog.op -> on_done:(float -> unit) -> unit
(** Applies the op, rebuilds affected hashes and re-signs the root;
    calls back with the signing latency. *)

val read :
  t ->
  Secrep_store.Query.t ->
  on_done:(Baseline_common.read_metrics -> unit) ->
  unit
(** Point reads verify a single Merkle path client-side; everything
    else routes through the trusted host. *)

val version : t -> int
val root_signature_valid : t -> bool
(** Invariant check used by tests. *)

val tamper_block : t -> key:string -> bool
(** Corrupt the stored block for [key] on the untrusted storage (the
    tree is left stale).  Returns false when the key is absent.
    Subsequent point reads of that key must detect the mismatch. *)

val proof_length_for : t -> key:string -> int option
(** Merkle path length a point read of [key] verifies. *)
