(** Cost constants and reply bookkeeping shared by the two related-work
    baselines the paper argues against (§5). *)

type costs = {
  per_doc_cost : float;  (** seconds per document scanned *)
  signature_cost : float;
  verify_cost : float;
  hash_cost : float;  (** one hash evaluation (Merkle path steps) *)
}

val default_costs : costs
(** Matches {!Secrep_core.Config.default} so cross-system comparisons
    are apples-to-apples. *)

type read_metrics = {
  latency : float;
  server_executions : int;  (** how many replicas executed the query *)
  trusted_compute : float;  (** seconds of trusted-host CPU consumed *)
  untrusted_compute : float;
  correct : bool;
}
