module Sim = Secrep_sim.Sim
module Link = Secrep_sim.Link
module Latency = Secrep_sim.Latency
module Work_queue = Secrep_sim.Work_queue
module Prng = Secrep_crypto.Prng
module Store = Secrep_store.Store
module Oplog = Secrep_store.Oplog
module Query = Secrep_store.Query
module Query_eval = Secrep_store.Query_eval
module Query_result = Secrep_store.Query_result
module Canonical = Secrep_store.Canonical

type replica = {
  store : Store.t;
  work : Work_queue.t;
  to_replica : Link.t;
  from_replica : Link.t;
  mutable byzantine : bool;
}

type t = {
  sim : Sim.t;
  rng : Prng.t;
  f : int;
  costs : Baseline_common.costs;
  replicas : replica array;
  mutable total_compute : float;
}

let create sim ~rng ~f ~costs ~latency () =
  if f < 0 then invalid_arg "Smr_quorum.create: f must be non-negative";
  Latency.validate latency;
  let n = (3 * f) + 1 in
  let replicas =
    Array.init n (fun i ->
        {
          store = Store.create ();
          work = Work_queue.create sim ();
          to_replica =
            Link.create sim ~rng:(Prng.split rng) ~latency
              ~name:(Printf.sprintf "smr->r%d" i) ();
          from_replica =
            Link.create sim ~rng:(Prng.split rng) ~latency
              ~name:(Printf.sprintf "smr<-r%d" i) ();
          byzantine = false;
        })
  in
  { sim; rng; f; costs; replicas; total_compute = 0.0 }

let n_replicas t = Array.length t.replicas
let quorum_size t = (2 * t.f) + 1
let version t = Store.version t.replicas.(0).store
let total_compute t = t.total_compute

let load_content t pairs =
  Array.iter
    (fun r ->
      List.iter (fun (key, doc) -> Store.apply r.store (Oplog.Put { key; doc })) pairs)
    t.replicas

let set_byzantine t ~count =
  if count < 0 || count > Array.length t.replicas then
    invalid_arg "Smr_quorum.set_byzantine: bad count";
  Array.iteri (fun i r -> r.byzantine <- i < count) t.replicas

let exec_cost t query scanned =
  Query_eval.cost_seconds ~scanned ~cost_class:(Query.cost_class query)
    ~per_doc:t.costs.Baseline_common.per_doc_cost

(* Majority digest among replies; [None] when no value reaches f+1. *)
let majority t replies =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (digest, result) ->
      let count, _ =
        match Hashtbl.find_opt table digest with Some c -> c | None -> (0, result)
      in
      Hashtbl.replace table digest (count + 1, result))
    replies;
  Hashtbl.fold
    (fun _ (count, result) acc ->
      if count >= t.f + 1 then Some result else acc)
    table None

let read t query ~on_done =
  let start = Sim.now t.sim in
  let quorum = quorum_size t in
  (* Deterministically use the first 2f+1 replicas; byzantine ones are
     planted at the front by [set_byzantine], the adversarial
     placement. *)
  let replies = ref [] in
  let outstanding = ref quorum in
  let compute = ref 0.0 in
  for i = 0 to quorum - 1 do
    let r = t.replicas.(i) in
    Link.send r.to_replica (fun () ->
        match Query_eval.execute r.store query with
        | Error _ ->
          Link.send r.from_replica (fun () ->
              decr outstanding;
              if !outstanding = 0 then
                on_done
                  {
                    Baseline_common.latency = Sim.now t.sim -. start;
                    server_executions = quorum;
                    trusted_compute = 0.0;
                    untrusted_compute = !compute;
                    correct = false;
                  })
        | Ok { result; scanned } ->
          let cost =
            exec_cost t query scanned +. t.costs.Baseline_common.signature_cost
          in
          compute := !compute +. cost;
          t.total_compute <- t.total_compute +. cost;
          Work_queue.submit r.work ~cost (fun () ->
              let result =
                if r.byzantine then
                  Query_result.Agg (Secrep_store.Value.String "byzantine-lie")
                else result
              in
              Link.send r.from_replica (fun () ->
                  replies := (Canonical.result_digest result, result) :: !replies;
                  decr outstanding;
                  if !outstanding = 0 then begin
                    let correct =
                      match majority t !replies with
                      | Some agreed -> begin
                        (* Ground truth: replica stores are identical, so
                           any honest replica's result is the truth. *)
                        match Query_eval.execute t.replicas.(quorum - 1).store query with
                        | Ok { result = truth; _ } -> Query_result.equal agreed truth
                        | Error _ -> false
                      end
                      | None -> false
                    in
                    on_done
                      {
                        Baseline_common.latency = Sim.now t.sim -. start;
                        server_executions = quorum;
                        trusted_compute = 0.0;
                        untrusted_compute = !compute;
                        correct;
                      }
                  end)))
  done

let write t op ~on_done =
  let start = Sim.now t.sim in
  (* PBFT critical path: pre-prepare, prepare, commit — three one-way
     delays — then every replica applies the op. *)
  let outstanding = ref (Array.length t.replicas) in
  Array.iter
    (fun r ->
      Link.send r.to_replica (fun () ->
          Link.send r.to_replica (fun () ->
              Link.send r.to_replica (fun () ->
                  let cost = 1e-3 +. t.costs.Baseline_common.signature_cost in
                  t.total_compute <- t.total_compute +. cost;
                  Work_queue.submit r.work ~cost (fun () ->
                      Store.apply r.store op;
                      Link.send r.from_replica (fun () ->
                          decr outstanding;
                          if !outstanding = 0 then on_done (Sim.now t.sim -. start)))))))
    t.replicas
