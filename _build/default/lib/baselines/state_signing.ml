module Sim = Secrep_sim.Sim
module Link = Secrep_sim.Link
module Work_queue = Secrep_sim.Work_queue
module Prng = Secrep_crypto.Prng
module Sig_scheme = Secrep_crypto.Sig_scheme
module Merkle = Secrep_crypto.Merkle
module Store = Secrep_store.Store
module Oplog = Secrep_store.Oplog
module Query = Secrep_store.Query
module Query_eval = Secrep_store.Query_eval
module Canonical = Secrep_store.Canonical

type t = {
  sim : Sim.t;
  costs : Baseline_common.costs;
  signer : Sig_scheme.keypair;
  store : Store.t; (* the untrusted storage contents *)
  trusted : Work_queue.t; (* the trusted host's CPU *)
  to_storage : Link.t;
  from_storage : Link.t;
  to_trusted : Link.t;
  from_trusted : Link.t;
  mutable tree : Merkle.t option;
  mutable leaf_keys : string array; (* leaf i authenticates leaf_keys.(i) *)
  mutable root_signature : string;
  mutable tampered : (string, string) Hashtbl.t; (* key -> fake block bytes *)
}

let block_bytes key doc = key ^ "\x00" ^ Canonical.of_document doc

let rebuild t =
  let keys = Array.of_list (Store.keys t.store) in
  t.leaf_keys <- keys;
  if Array.length keys = 0 then begin
    t.tree <- None;
    t.root_signature <- Sig_scheme.sign t.signer (Printf.sprintf "root|empty|%d" (Store.version t.store))
  end
  else begin
    let leaves =
      Array.to_list keys
      |> List.map (fun key ->
             match Store.get t.store key with
             | Some doc -> block_bytes key doc
             | None -> assert false)
    in
    let tree = Merkle.build leaves in
    t.tree <- Some tree;
    t.root_signature <-
      Sig_scheme.sign t.signer
        (Printf.sprintf "root|%s|%d" (Secrep_crypto.Hex.encode (Merkle.root tree))
           (Store.version t.store))
  end

let create sim ~rng ~costs ~storage_latency ~trusted_latency ~signer () =
  let t =
    {
      sim;
      costs;
      signer;
      store = Store.create ();
      trusted = Work_queue.create sim ();
      to_storage =
        Link.create sim ~rng:(Prng.split rng) ~latency:storage_latency ~name:"ss->storage" ();
      from_storage =
        Link.create sim ~rng:(Prng.split rng) ~latency:storage_latency ~name:"ss<-storage" ();
      to_trusted =
        Link.create sim ~rng:(Prng.split rng) ~latency:trusted_latency ~name:"ss->trusted" ();
      from_trusted =
        Link.create sim ~rng:(Prng.split rng) ~latency:trusted_latency ~name:"ss<-trusted" ();
      tree = None;
      leaf_keys = [||];
      root_signature = "";
      tampered = Hashtbl.create 4;
    }
  in
  rebuild t;
  t

let version t = Store.version t.store

let root_payload t =
  match t.tree with
  | None -> Printf.sprintf "root|empty|%d" (Store.version t.store)
  | Some tree ->
    Printf.sprintf "root|%s|%d" (Secrep_crypto.Hex.encode (Merkle.root tree))
      (Store.version t.store)

let root_signature_valid t =
  Sig_scheme.verify (Sig_scheme.public_of t.signer) ~msg:(root_payload t)
    ~signature:t.root_signature

let load_content t pairs =
  List.iter (fun (key, doc) -> Store.apply t.store (Oplog.Put { key; doc })) pairs;
  rebuild t

let write t op ~on_done =
  let start = Sim.now t.sim in
  Store.apply t.store op;
  Hashtbl.reset t.tampered;
  (* Rebuilding the hash path + one signature; we charge a logarithmic
     number of hashes plus the signature. *)
  let n = max 1 (Store.key_count t.store) in
  let path_hashes = int_of_float (ceil (log (float_of_int n) /. log 2.0)) + 1 in
  let cost =
    (float_of_int path_hashes *. t.costs.Baseline_common.hash_cost)
    +. t.costs.Baseline_common.signature_cost
  in
  rebuild t;
  Work_queue.submit t.trusted ~cost (fun () -> on_done (Sim.now t.sim -. start))

let tamper_block t ~key =
  if Store.mem t.store key then begin
    Hashtbl.replace t.tampered key ("tampered\x00" ^ key);
    true
  end
  else false

let leaf_index t key =
  let found = ref None in
  Array.iteri (fun i k -> if String.equal k key && !found = None then found := Some i) t.leaf_keys;
  !found

let proof_length_for t ~key =
  match (t.tree, leaf_index t key) with
  | Some tree, Some idx -> Some (Merkle.proof_length (Merkle.prove tree idx))
  | _ -> None

let point_read t key ~on_done =
  let start = Sim.now t.sim in
  Link.send t.to_storage (fun () ->
      (* Storage returns the block (possibly tampered) and the Merkle
         path; the *client* verifies, so no trusted compute at all. *)
      let honest_block =
        match Store.get t.store key with Some doc -> Some (block_bytes key doc) | None -> None
      in
      let served_block =
        match Hashtbl.find_opt t.tampered key with
        | Some fake -> Some fake
        | None -> honest_block
      in
      Link.send t.from_storage (fun () ->
          match (t.tree, leaf_index t key, served_block) with
          | Some tree, Some idx, Some block ->
            let proof = Merkle.prove tree idx in
            let verify_cost =
              (float_of_int (Merkle.proof_length proof + 1)
              *. t.costs.Baseline_common.hash_cost)
              +. t.costs.Baseline_common.verify_cost
            in
            let authentic = Merkle.verify ~root:(Merkle.root tree) ~leaf:block proof in
            on_done
              {
                Baseline_common.latency = (Sim.now t.sim -. start) +. verify_cost;
                server_executions = 0;
                trusted_compute = 0.0;
                untrusted_compute = 0.0;
                correct = authentic && served_block = honest_block;
              }
          | _ ->
            (* Key absent: absence proofs are out of scope; report an
               incorrect-free miss. *)
            on_done
              {
                Baseline_common.latency = Sim.now t.sim -. start;
                server_executions = 0;
                trusted_compute = 0.0;
                untrusted_compute = 0.0;
                correct = true;
              }))

let dynamic_read t query ~on_done =
  let start = Sim.now t.sim in
  (* The client asks the trusted host; the trusted host pulls every
     relevant block from storage, verifies each Merkle path, then
     executes the query locally (§5's complaint about this scheme). *)
  Link.send t.to_trusted (fun () ->
      Link.send t.to_storage (fun () ->
          Link.send t.from_storage (fun () ->
              match Query_eval.execute t.store query with
              | Error _ ->
                Link.send t.from_trusted (fun () ->
                    on_done
                      {
                        Baseline_common.latency = Sim.now t.sim -. start;
                        server_executions = 0;
                        trusted_compute = 0.0;
                        untrusted_compute = 0.0;
                        correct = false;
                      })
              | Ok { result = _; scanned } ->
                let n = max 1 (Store.key_count t.store) in
                let path = int_of_float (ceil (log (float_of_int n) /. log 2.0)) + 1 in
                let verify_all =
                  float_of_int (scanned * path) *. t.costs.Baseline_common.hash_cost
                in
                let exec =
                  Query_eval.cost_seconds ~scanned ~cost_class:(Query.cost_class query)
                    ~per_doc:t.costs.Baseline_common.per_doc_cost
                in
                let cost = verify_all +. exec +. t.costs.Baseline_common.verify_cost in
                Work_queue.submit t.trusted ~cost (fun () ->
                    Link.send t.from_trusted (fun () ->
                        on_done
                          {
                            Baseline_common.latency = Sim.now t.sim -. start;
                            server_executions = 1;
                            trusted_compute = cost;
                            untrusted_compute = 0.0;
                            correct = true;
                          })))))

let read t query ~on_done =
  match query with
  | Query.Select { from = Query.Key key; where = Query.True; project = None; limit = None } ->
    point_read t key ~on_done
  | _ -> dynamic_read t query ~on_done
