lib/baselines/baseline_common.ml:
