lib/baselines/state_signing.mli: Baseline_common Secrep_crypto Secrep_sim Secrep_store
