lib/baselines/smr_quorum.ml: Array Baseline_common Hashtbl List Printf Secrep_crypto Secrep_sim Secrep_store
