lib/baselines/smr_quorum.mli: Baseline_common Secrep_crypto Secrep_sim Secrep_store
