lib/baselines/baseline_common.mli:
