type costs = {
  per_doc_cost : float;
  signature_cost : float;
  verify_cost : float;
  hash_cost : float;
}

let default_costs =
  { per_doc_cost = 50e-6; signature_cost = 5e-3; verify_cost = 0.2e-3; hash_cost = 2e-6 }

type read_metrics = {
  latency : float;
  server_executions : int;
  trusted_compute : float;
  untrusted_compute : float;
  correct : bool;
}
