(** State-machine-replication baseline (§5, after Castro–Liskov PBFT
    and Phalanx): every operation executes on a quorum of untrusted
    replicas and the client accepts a result vouched for by at least
    f+1 matching replies.

    The paper's complaints are exactly what this model exposes: a read
    costs 2f+1 executions instead of one, and its latency is set by
    the *slowest* quorum member.  We simulate the execution and voting
    (the agreement rounds are folded into a per-op round-trip count —
    the protocol internals are not what the comparison measures). *)

type t

val create :
  Secrep_sim.Sim.t ->
  rng:Secrep_crypto.Prng.t ->
  f:int ->
  costs:Baseline_common.costs ->
  latency:Secrep_sim.Latency.t ->
  unit ->
  t
(** 3f+1 replicas, f of them potentially byzantine. *)

val n_replicas : t -> int
val quorum_size : t -> int
(** 2f+1: the replicas each read executes on. *)

val load_content : t -> (string * Secrep_store.Document.t) list -> unit

val set_byzantine : t -> count:int -> unit
(** Make the first [count] replicas lie on every read
    ([count <= f] keeps reads correct — the point of the scheme). *)

val read :
  t ->
  Secrep_store.Query.t ->
  on_done:(Baseline_common.read_metrics -> unit) ->
  unit

val write : t -> Secrep_store.Oplog.op -> on_done:(float -> unit) -> unit
(** Executes on all replicas; calls back with commit latency (three
    message rounds plus apply time, the PBFT critical path). *)

val version : t -> int
val total_compute : t -> float
(** Total replica CPU seconds consumed so far. *)
