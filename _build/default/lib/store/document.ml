module Field_map = Map.Make (String)

type t = Value.t Field_map.t

let empty = Field_map.empty

let of_fields pairs =
  List.fold_left (fun acc (name, v) -> Field_map.add name v acc) Field_map.empty pairs

let fields t = Field_map.bindings t
let get t name = Field_map.find_opt name t
let set t name v = Field_map.add name v t
let remove t name = Field_map.remove name t
let mem t name = Field_map.mem name t
let field_count t = Field_map.cardinal t
let equal a b = Field_map.equal Value.equal a b

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
       (fun f (name, v) -> Format.fprintf f "%s=%a" name Value.pp v))
    (fields t)
