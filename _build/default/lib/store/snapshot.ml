module Key_map = Map.Make (String)

type t = { docs : Document.t Key_map.t; version : int }

let make docs version = { docs; version }
let docs t = t.docs
let version t = t.version
