(* Tagged, length-prefixed encoding.  Every variant starts with a
   distinct tag character and variable-length payloads carry explicit
   byte counts, so the encoding is injective (prefix-free per field). *)

let enc_string buf s =
  Buffer.add_char buf 's';
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let enc_int buf i =
  Buffer.add_char buf 'i';
  Buffer.add_string buf (string_of_int i);
  Buffer.add_char buf ';'

let rec enc_value buf (v : Value.t) =
  match v with
  | Null -> Buffer.add_char buf 'n'
  | Bool b -> Buffer.add_string buf (if b then "b1" else "b0")
  | Int i -> enc_int buf i
  | Float f ->
    Buffer.add_char buf 'f';
    Buffer.add_string buf (Printf.sprintf "%Lx" (Int64.bits_of_float f));
    Buffer.add_char buf ';'
  | String s -> enc_string buf s
  | List items ->
    Buffer.add_char buf 'l';
    Buffer.add_string buf (string_of_int (List.length items));
    Buffer.add_char buf ':';
    List.iter (enc_value buf) items

let enc_document buf doc =
  let fields = Document.fields doc in
  Buffer.add_char buf 'd';
  Buffer.add_string buf (string_of_int (List.length fields));
  Buffer.add_char buf ':';
  List.iter
    (fun (name, v) ->
      enc_string buf name;
      enc_value buf v)
    fields

let enc_selector buf (sel : Query.selector) =
  match sel with
  | All -> Buffer.add_char buf 'A'
  | Key k ->
    Buffer.add_char buf 'K';
    enc_string buf k
  | Prefix p ->
    Buffer.add_char buf 'P';
    enc_string buf p
  | Key_range { lo; hi } ->
    Buffer.add_char buf 'R';
    enc_string buf lo;
    enc_string buf hi

let rec enc_predicate buf (p : Query.predicate) =
  match p with
  | True -> Buffer.add_char buf 'T'
  | Field_equals (f, v) ->
    Buffer.add_char buf 'E';
    enc_string buf f;
    enc_value buf v
  | Field_less (f, v) ->
    Buffer.add_char buf 'L';
    enc_string buf f;
    enc_value buf v
  | Field_greater (f, v) ->
    Buffer.add_char buf 'G';
    enc_string buf f;
    enc_value buf v
  | Field_matches (f, pat) ->
    Buffer.add_char buf 'M';
    enc_string buf f;
    enc_string buf pat
  | Has_field f ->
    Buffer.add_char buf 'H';
    enc_string buf f
  | Not inner ->
    Buffer.add_char buf 'N';
    enc_predicate buf inner
  | And (a, b) ->
    Buffer.add_char buf '&';
    enc_predicate buf a;
    enc_predicate buf b
  | Or (a, b) ->
    Buffer.add_char buf '|';
    enc_predicate buf a;
    enc_predicate buf b

let enc_aggregate buf (agg : Query.aggregate) =
  match agg with
  | Count -> Buffer.add_char buf 'c'
  | Sum f ->
    Buffer.add_char buf '+';
    enc_string buf f
  | Min f ->
    Buffer.add_char buf 'm';
    enc_string buf f
  | Max f ->
    Buffer.add_char buf 'x';
    enc_string buf f
  | Avg f ->
    Buffer.add_char buf 'a';
    enc_string buf f

let enc_query buf (q : Query.t) =
  match q with
  | Select { from; where; project; limit } ->
    Buffer.add_char buf 'S';
    enc_selector buf from;
    enc_predicate buf where;
    (match project with
    | None -> Buffer.add_char buf '*'
    | Some fs ->
      Buffer.add_char buf 'p';
      Buffer.add_string buf (string_of_int (List.length fs));
      Buffer.add_char buf ':';
      List.iter (enc_string buf) fs);
    (match limit with
    | None -> Buffer.add_char buf '_'
    | Some l -> enc_int buf l)
  | Grep { from; pattern } ->
    Buffer.add_char buf 'G';
    enc_selector buf from;
    enc_string buf pattern
  | Aggregate { from; where; agg } ->
    Buffer.add_char buf 'F';
    enc_selector buf from;
    enc_predicate buf where;
    enc_aggregate buf agg

let enc_result buf (r : Query_result.t) =
  match r with
  | Rows rows ->
    Buffer.add_char buf 'r';
    Buffer.add_string buf (string_of_int (List.length rows));
    Buffer.add_char buf ':';
    List.iter
      (fun (k, doc) ->
        enc_string buf k;
        enc_document buf doc)
      rows
  | Matches ms ->
    Buffer.add_char buf 'g';
    Buffer.add_string buf (string_of_int (List.length ms));
    Buffer.add_char buf ':';
    List.iter
      (fun (k, field, text) ->
        enc_string buf k;
        enc_string buf field;
        enc_string buf text)
      ms
  | Agg v ->
    Buffer.add_char buf 'v';
    enc_value buf v

let via_buffer enc x =
  let buf = Buffer.create 128 in
  enc buf x;
  Buffer.contents buf

let of_value = via_buffer enc_value
let of_document = via_buffer enc_document
let of_query = via_buffer enc_query
let of_result = via_buffer enc_result

let result_digest r = Secrep_crypto.Sha1.digest (of_result r)
let query_digest q = Secrep_crypto.Sha1.digest (of_query q)
