(** The read-query language over the replicated content.

    The paper requires "arbitrary queries … not only read FileName but
    also grep Expression Path" (§2).  This AST covers point reads,
    range/prefix scans with predicates and projection, grep-style regex
    search, and aggregation — the query classes whose cost asymmetry
    drives the paper's design (cheap on a hot cache, expensive to
    recompute). *)

type selector =
  | All
  | Key of string
  | Prefix of string
  | Key_range of { lo : string; hi : string }  (** inclusive *)

type predicate =
  | True
  | Field_equals of string * Value.t
  | Field_less of string * Value.t  (** numeric comparison *)
  | Field_greater of string * Value.t
  | Field_matches of string * string  (** field, regex *)
  | Has_field of string
  | Not of predicate
  | And of predicate * predicate
  | Or of predicate * predicate

type aggregate =
  | Count
  | Sum of string
  | Min of string
  | Max of string
  | Avg of string

type t =
  | Select of {
      from : selector;
      where : predicate;
      project : string list option;  (** [None] = all fields *)
      limit : int option;
    }
  | Grep of { from : selector; pattern : string }
      (** All (key, field, value) triples whose string value matches. *)
  | Aggregate of { from : selector; where : predicate; agg : aggregate }

val point_read : string -> t
(** [Select] of exactly one key. *)

val grep : ?under:string -> string -> t
(** [grep pattern] over all keys, or under a key prefix. *)

val equal : t -> t -> bool

val validate : t -> (unit, string) result
(** Checks regex patterns compile and limits are sane; servers call
    this before executing client-supplied queries. *)

val is_point_read : t -> bool

val cost_class : t -> [ `Point | `Scan | `Full_scan ]
(** How much of the store the query touches: a point lookup, a
    contiguous fraction, or everything.  The simulator charges
    execution time from this. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
