(** Write operations and the append-only operation log.

    Masters ship committed ops (with their version numbers) to slaves;
    a recovering or lagging replica replays the suffix it is missing. *)

type op =
  | Put of { key : string; doc : Document.t }
  | Delete of { key : string }
  | Set_field of { key : string; field : string; value : Value.t }
  | Remove_field of { key : string; field : string }

type entry = { version : int; op : op }

type t

val create : unit -> t
val append : t -> entry -> unit
(** Versions must be strictly increasing; raises [Invalid_argument]
    otherwise. *)

val length : t -> int
val last_version : t -> int
(** 0 when empty. *)

val entries_after : t -> int -> entry list
(** All entries with [version > v], oldest first. *)

val pp_op : Format.formatter -> op -> unit
