(** Scalar and list values held in document fields. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order: by type tag first, then value; floats compare with
    [Float.compare] so the order is total even with NaN. *)

val type_name : t -> string

val as_int : t -> int option
val as_float : t -> float option
(** [as_float] also widens [Int]. *)

val as_string : t -> string option

val add_numeric : t -> t -> t option
(** Numeric addition with Int/Float widening; [None] when either side
    is not numeric.  Used by Sum/Avg aggregation. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
