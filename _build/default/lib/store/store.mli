(** The versioned content store each replica (master, slave, auditor)
    holds.  Applying a write op bumps the paper's [content_version]
    counter (initialised to zero when the content is created, §3.1). *)

type t

val create : unit -> t

val version : t -> int
val key_count : t -> int

val get : t -> string -> Document.t option
val mem : t -> string -> bool

val apply : t -> Oplog.op -> unit
(** Executes the op and increments the version.  Ops referencing a
    missing key are still version-bumping no-ops for [Delete] and
    [Remove_field]; [Set_field] on a missing key creates the
    document. *)

val apply_entry : t -> Oplog.entry -> unit
(** Replays a logged entry; the entry's version must be exactly
    [version t + 1] (raises [Invalid_argument] otherwise), so replicas
    cannot silently skip updates. *)

val fold_selector : t -> Query.selector -> init:'a -> f:('a -> string -> Document.t -> 'a) -> 'a
(** Folds documents matched by the selector in ascending key order;
    range endpoints are inclusive. *)

val keys : t -> string list

val snapshot : t -> Snapshot.t
val restore : t -> Snapshot.t -> unit

val assign : t -> from:t -> unit
(** Overwrite this store's contents and version with [from]'s (used
    for checkpoint installation during slave recovery). *)

val content_hash : t -> string
(** SHA-1 over the canonical encoding of the full content plus
    version; equal on replicas holding identical state. *)

val to_bytes : t -> string
(** Serialize the full store (version + documents) with {!Codec};
    suitable for checkpointing a replica to disk or shipping a full
    state transfer. *)

val of_bytes : string -> (t, string) result
(** Inverse of {!to_bytes}; [Error] on malformed input. *)
