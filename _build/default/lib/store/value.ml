type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "list"

let tag_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | String _ -> 4
  | List _ -> 5

let rec compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | List x, List y -> List.compare compare x y
  | _ -> Int.compare (tag_rank a) (tag_rank b)

let equal a b = compare a b = 0

let as_int = function Int i -> Some i | _ -> None

let as_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let as_string = function String s -> Some s | _ -> None

let add_numeric a b =
  match (a, b) with
  | Int x, Int y -> Some (Int (x + y))
  | (Int _ | Float _), (Int _ | Float _) -> begin
    match (as_float a, as_float b) with
    | Some x, Some y -> Some (Float (x +. y))
    | _ -> None
  end
  | _ -> None

let rec pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%.17g" f
  | String s -> Format.fprintf fmt "%S" s
  | List items ->
    Format.fprintf fmt "[%a]"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") pp)
      items

let to_string v = Format.asprintf "%a" pp v
