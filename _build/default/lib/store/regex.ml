exception Parse_error of string

(* --- syntax tree ------------------------------------------------------ *)

type charset = Bytes.t (* 256 flags *)

type node =
  | Empty
  | Lit of charset
  | Cat of node * node
  | Alt of node * node
  | Star of node
  | Plus of node
  | Opt of node

let set_empty () = Bytes.make 256 '\000'

let set_add cs c = Bytes.set cs (Char.code c) '\001'

let set_range cs lo hi =
  if Char.code lo > Char.code hi then raise (Parse_error "bad range");
  for i = Char.code lo to Char.code hi do
    Bytes.set cs i '\001'
  done

let set_negate cs =
  Bytes.init 256 (fun i -> if Bytes.get cs i = '\000' then '\001' else '\000')

let set_mem cs c = Bytes.get cs (Char.code c) = '\001'

let set_single c =
  let cs = set_empty () in
  set_add cs c;
  cs

let set_any () = Bytes.make 256 '\001'

(* --- parser ----------------------------------------------------------- *)

type parser_state = { pattern : string; mutable pos : int }

let peek st = if st.pos < String.length st.pattern then Some st.pattern.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> raise (Parse_error (Printf.sprintf "expected '%c' at %d" c st.pos))

let parse_escape st =
  match peek st with
  | None -> raise (Parse_error "dangling backslash")
  | Some c ->
    advance st;
    (match c with
    | 'n' -> set_single '\n'
    | 't' -> set_single '\t'
    | 'r' -> set_single '\r'
    | 'd' ->
      let cs = set_empty () in
      set_range cs '0' '9';
      cs
    | 'w' ->
      let cs = set_empty () in
      set_range cs 'a' 'z';
      set_range cs 'A' 'Z';
      set_range cs '0' '9';
      set_add cs '_';
      cs
    | 's' ->
      let cs = set_empty () in
      List.iter (set_add cs) [ ' '; '\t'; '\n'; '\r' ];
      cs
    | c -> set_single c)

let parse_class st =
  (* '[' already consumed *)
  let negated =
    match peek st with
    | Some '^' ->
      advance st;
      true
    | _ -> false
  in
  let cs = set_empty () in
  let rec items first =
    match peek st with
    | None -> raise (Parse_error "unterminated character class")
    | Some ']' when not first -> advance st
    | Some c ->
      advance st;
      let c = if c = '\\' then (
          match peek st with
          | None -> raise (Parse_error "dangling backslash in class")
          | Some e -> advance st; e)
        else c
      in
      (match peek st with
      | Some '-' when st.pos + 1 < String.length st.pattern && st.pattern.[st.pos + 1] <> ']' ->
        advance st;
        (match peek st with
        | Some hi ->
          advance st;
          set_range cs c hi
        | None -> raise (Parse_error "unterminated range"))
      | _ -> set_add cs c);
      items false
  in
  items true;
  if negated then Lit (set_negate cs) else Lit cs

let rec parse_alt st =
  let left = parse_cat st in
  match peek st with
  | Some '|' ->
    advance st;
    Alt (left, parse_alt st)
  | _ -> left

and parse_cat st =
  let rec go acc =
    match peek st with
    | None | Some '|' | Some ')' -> acc
    | _ -> go (Cat (acc, parse_rep st))
  in
  match peek st with
  | None | Some '|' | Some ')' -> Empty
  | _ -> go (parse_rep st)

and parse_rep st =
  let atom = parse_atom st in
  let rec reps node =
    match peek st with
    | Some '*' ->
      advance st;
      reps (Star node)
    | Some '+' ->
      advance st;
      reps (Plus node)
    | Some '?' ->
      advance st;
      reps (Opt node)
    | _ -> node
  in
  reps atom

and parse_atom st =
  match peek st with
  | None -> raise (Parse_error "unexpected end of pattern")
  | Some '(' ->
    advance st;
    let inner = parse_alt st in
    expect st ')';
    inner
  | Some '[' ->
    advance st;
    parse_class st
  | Some '.' ->
    advance st;
    Lit (set_any ())
  | Some '\\' ->
    advance st;
    Lit (parse_escape st)
  | Some ('*' | '+' | '?') -> raise (Parse_error "repetition with nothing to repeat")
  | Some ')' -> raise (Parse_error "unbalanced ')'")
  | Some c ->
    advance st;
    Lit (set_single c)

(* --- NFA --------------------------------------------------------------- *)

(* States are integers; transitions are either epsilon edges or a
   single charset edge.  Compilation is the standard Thompson
   construction: each fragment has one entry and one exit. *)

type builder = {
  mutable n_states : int;
  mutable edges : (int * charset * int) list;
  mutable eps_edges : (int * int) list;
}

let new_state b =
  let s = b.n_states in
  b.n_states <- s + 1;
  s

let rec build b node entry exit_ =
  match node with
  | Empty -> b.eps_edges <- (entry, exit_) :: b.eps_edges
  | Lit cs -> b.edges <- (entry, cs, exit_) :: b.edges
  | Cat (l, r) ->
    let mid = new_state b in
    build b l entry mid;
    build b r mid exit_
  | Alt (l, r) ->
    build b l entry exit_;
    build b r entry exit_
  | Star inner ->
    let s = new_state b in
    b.eps_edges <- (entry, s) :: (s, exit_) :: b.eps_edges;
    let s2 = new_state b in
    build b inner s s2;
    b.eps_edges <- (s2, s) :: b.eps_edges
  | Plus inner -> build b (Cat (inner, Star inner)) entry exit_
  | Opt inner ->
    b.eps_edges <- (entry, exit_) :: b.eps_edges;
    build b inner entry exit_

let compile_nfa node =
  let b = { n_states = 0; edges = []; eps_edges = [] } in
  let start = new_state b in
  let accept = new_state b in
  build b node start accept;
  let char_edges = Array.make b.n_states [] in
  List.iter (fun (s, cs, t) -> char_edges.(s) <- (cs, t) :: char_edges.(s)) b.edges;
  let eps = Array.make b.n_states [] in
  List.iter (fun (s, t) -> eps.(s) <- t :: eps.(s)) b.eps_edges;
  (char_edges, eps, start, accept, b.n_states)

type t = {
  source : string;
  char_edges : (charset * int) list array;
  eps : int list array;
  start : int;
  accept : int;
  n_states : int;
  anchored_start : bool;
  anchored_end : bool;
}

let compile pattern =
  let anchored_start = String.length pattern > 0 && pattern.[0] = '^' in
  let anchored_end =
    let n = String.length pattern in
    n > 0 && pattern.[n - 1] = '$' && (n < 2 || pattern.[n - 2] <> '\\')
  in
  let core =
    let lo = if anchored_start then 1 else 0 in
    let hi = String.length pattern - if anchored_end then 1 else 0 in
    String.sub pattern lo (max 0 (hi - lo))
  in
  let st = { pattern = core; pos = 0 } in
  let ast = parse_alt st in
  if st.pos <> String.length core then raise (Parse_error "trailing garbage (unbalanced ')'?)");
  let char_edges, eps, start, accept, n_states = compile_nfa ast in
  { source = pattern; char_edges; eps; start; accept; n_states; anchored_start; anchored_end }

let source t = t.source

(* Epsilon-closure into a boolean state set. *)
let closure t set =
  let stack = ref [] in
  Array.iteri (fun s in_set -> if in_set then stack := s :: !stack) set;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      List.iter
        (fun target ->
          if not set.(target) then begin
            set.(target) <- true;
            stack := target :: !stack
          end)
        t.eps.(s)
  done

let run t input ~anchored_start ~anchored_end =
  let current = Array.make t.n_states false in
  current.(t.start) <- true;
  closure t current;
  let accepted = ref (current.(t.accept) && (anchored_end = false || String.length input = 0)) in
  (* When the search is unanchored at the start we re-inject the start
     state before every character, which is the ".*" prefix trick. *)
  let next = Array.make t.n_states false in
  let n = String.length input in
  let i = ref 0 in
  while (not !accepted) && !i < n do
    let c = input.[!i] in
    Array.fill next 0 t.n_states false;
    Array.iteri
      (fun s in_set ->
        if in_set then
          List.iter (fun (cs, target) -> if set_mem cs c then next.(target) <- true) t.char_edges.(s))
      current;
    if not anchored_start then next.(t.start) <- true;
    closure t next;
    Array.blit next 0 current 0 t.n_states;
    incr i;
    if current.(t.accept) then
      if anchored_end then begin
        if !i = n then accepted := true
        (* else: keep going, may accept again exactly at the end *)
      end
      else accepted := true
  done;
  (* Anchored-end acceptance is only valid after the last character. *)
  if (not !accepted) && anchored_end then accepted := current.(t.accept) && !i = n;
  !accepted

let matches t input = run t input ~anchored_start:t.anchored_start ~anchored_end:t.anchored_end

let matches_exact t input = run t input ~anchored_start:true ~anchored_end:true
