module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let varint t v =
    if v < 0 then invalid_arg "Codec.Writer.varint: negative";
    let rec go v =
      if v < 0x80 then u8 t v
      else begin
        u8 t (0x80 lor (v land 0x7f));
        go (v lsr 7)
      end
    in
    go v

  let float t v =
    let bits = Int64.bits_of_float v in
    for i = 0 to 7 do
      u8 t (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
    done

  let bytes t s =
    varint t (String.length s);
    Buffer.add_string t s

  let contents = Buffer.contents
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  exception Truncated
  exception Malformed of string

  let create data = { data; pos = 0 }

  let u8 t =
    if t.pos >= String.length t.data then raise Truncated;
    let v = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let varint t =
    let rec go shift acc =
      if shift > 62 then raise (Malformed "varint too long");
      let b = u8 t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      (* A payload bit shifted into the sign position yields a negative
         "length" — adversarial input, not a number we ever write. *)
      if acc < 0 then raise (Malformed "varint overflow");
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let float t =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (u8 t)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let bytes t =
    let len = varint t in
    (* Compare against the *remaining* length: [pos + len] could
       overflow for adversarially huge varints. *)
    if len < 0 || len > String.length t.data - t.pos then raise Truncated;
    let s = String.sub t.data t.pos len in
    t.pos <- t.pos + len;
    s

  let at_end t = t.pos = String.length t.data

  let run data f =
    let t = create data in
    match f t with
    | v -> if at_end t then Ok v else Error "trailing garbage"
    | exception Truncated -> Error "truncated input"
    | exception Malformed msg -> Error ("malformed input: " ^ msg)
end

type 'a decoder = string -> ('a, string) result

(* --- values ----------------------------------------------------------- *)

let rec write_value w (v : Value.t) =
  match v with
  | Null -> Writer.u8 w 0
  | Bool false -> Writer.u8 w 1
  | Bool true -> Writer.u8 w 2
  | Int i ->
    if i >= 0 then begin
      Writer.u8 w 3;
      Writer.varint w i
    end
    else begin
      Writer.u8 w 4;
      Writer.varint w (-(i + 1))
    end
  | Float f ->
    Writer.u8 w 5;
    Writer.float w f
  | String s ->
    Writer.u8 w 6;
    Writer.bytes w s
  | List items ->
    Writer.u8 w 7;
    Writer.varint w (List.length items);
    List.iter (write_value w) items

let rec read_value r : Value.t =
  match Reader.u8 r with
  | 0 -> Null
  | 1 -> Bool false
  | 2 -> Bool true
  | 3 -> Int (Reader.varint r)
  | 4 -> Int (-Reader.varint r - 1)
  | 5 -> Float (Reader.float r)
  | 6 -> String (Reader.bytes r)
  | 7 ->
    let n = Reader.varint r in
    if n > 1_000_000 then raise (Reader.Malformed "list too long");
    List (List.init n (fun _ -> read_value r))
  | tag -> raise (Reader.Malformed (Printf.sprintf "bad value tag %d" tag))

(* --- documents --------------------------------------------------------- *)

let write_document w doc =
  let fields = Document.fields doc in
  Writer.varint w (List.length fields);
  List.iter
    (fun (name, v) ->
      Writer.bytes w name;
      write_value w v)
    fields

let read_document r =
  let n = Reader.varint r in
  if n > 1_000_000 then raise (Reader.Malformed "document too wide");
  Document.of_fields
    (List.init n (fun _ ->
         let name = Reader.bytes r in
         let v = read_value r in
         (name, v)))

(* --- queries ------------------------------------------------------------ *)

let write_selector w (sel : Query.selector) =
  match sel with
  | All -> Writer.u8 w 0
  | Key k ->
    Writer.u8 w 1;
    Writer.bytes w k
  | Prefix p ->
    Writer.u8 w 2;
    Writer.bytes w p
  | Key_range { lo; hi } ->
    Writer.u8 w 3;
    Writer.bytes w lo;
    Writer.bytes w hi

let read_selector r : Query.selector =
  match Reader.u8 r with
  | 0 -> All
  | 1 -> Key (Reader.bytes r)
  | 2 -> Prefix (Reader.bytes r)
  | 3 ->
    let lo = Reader.bytes r in
    let hi = Reader.bytes r in
    Key_range { lo; hi }
  | tag -> raise (Reader.Malformed (Printf.sprintf "bad selector tag %d" tag))

let rec write_predicate w (p : Query.predicate) =
  match p with
  | True -> Writer.u8 w 0
  | Field_equals (f, v) ->
    Writer.u8 w 1;
    Writer.bytes w f;
    write_value w v
  | Field_less (f, v) ->
    Writer.u8 w 2;
    Writer.bytes w f;
    write_value w v
  | Field_greater (f, v) ->
    Writer.u8 w 3;
    Writer.bytes w f;
    write_value w v
  | Field_matches (f, pat) ->
    Writer.u8 w 4;
    Writer.bytes w f;
    Writer.bytes w pat
  | Has_field f ->
    Writer.u8 w 5;
    Writer.bytes w f
  | Not inner ->
    Writer.u8 w 6;
    write_predicate w inner
  | And (a, b) ->
    Writer.u8 w 7;
    write_predicate w a;
    write_predicate w b
  | Or (a, b) ->
    Writer.u8 w 8;
    write_predicate w a;
    write_predicate w b

let rec read_predicate depth r : Query.predicate =
  if depth > 64 then raise (Reader.Malformed "predicate too deep");
  match Reader.u8 r with
  | 0 -> True
  | 1 ->
    let f = Reader.bytes r in
    Field_equals (f, read_value r)
  | 2 ->
    let f = Reader.bytes r in
    Field_less (f, read_value r)
  | 3 ->
    let f = Reader.bytes r in
    Field_greater (f, read_value r)
  | 4 ->
    let f = Reader.bytes r in
    Field_matches (f, Reader.bytes r)
  | 5 -> Has_field (Reader.bytes r)
  | 6 -> Not (read_predicate (depth + 1) r)
  | 7 ->
    let a = read_predicate (depth + 1) r in
    And (a, read_predicate (depth + 1) r)
  | 8 ->
    let a = read_predicate (depth + 1) r in
    Or (a, read_predicate (depth + 1) r)
  | tag -> raise (Reader.Malformed (Printf.sprintf "bad predicate tag %d" tag))

let write_aggregate w (agg : Query.aggregate) =
  match agg with
  | Count -> Writer.u8 w 0
  | Sum f ->
    Writer.u8 w 1;
    Writer.bytes w f
  | Min f ->
    Writer.u8 w 2;
    Writer.bytes w f
  | Max f ->
    Writer.u8 w 3;
    Writer.bytes w f
  | Avg f ->
    Writer.u8 w 4;
    Writer.bytes w f

let read_aggregate r : Query.aggregate =
  match Reader.u8 r with
  | 0 -> Count
  | 1 -> Sum (Reader.bytes r)
  | 2 -> Min (Reader.bytes r)
  | 3 -> Max (Reader.bytes r)
  | 4 -> Avg (Reader.bytes r)
  | tag -> raise (Reader.Malformed (Printf.sprintf "bad aggregate tag %d" tag))

let write_query w (q : Query.t) =
  match q with
  | Select { from; where; project; limit } ->
    Writer.u8 w 0;
    write_selector w from;
    write_predicate w where;
    (match project with
    | None -> Writer.u8 w 0
    | Some fields ->
      Writer.u8 w 1;
      Writer.varint w (List.length fields);
      List.iter (Writer.bytes w) fields);
    (match limit with
    | None -> Writer.u8 w 0
    | Some l ->
      Writer.u8 w 1;
      Writer.varint w (max 0 l))
  | Grep { from; pattern } ->
    Writer.u8 w 1;
    write_selector w from;
    Writer.bytes w pattern
  | Aggregate { from; where; agg } ->
    Writer.u8 w 2;
    write_selector w from;
    write_predicate w where;
    write_aggregate w agg

let read_query r : Query.t =
  match Reader.u8 r with
  | 0 ->
    let from = read_selector r in
    let where = read_predicate 0 r in
    let project =
      match Reader.u8 r with
      | 0 -> None
      | 1 ->
        let n = Reader.varint r in
        if n > 10_000 then raise (Reader.Malformed "projection too wide");
        Some (List.init n (fun _ -> Reader.bytes r))
      | tag -> raise (Reader.Malformed (Printf.sprintf "bad option tag %d" tag))
    in
    let limit =
      match Reader.u8 r with
      | 0 -> None
      | 1 -> Some (Reader.varint r)
      | tag -> raise (Reader.Malformed (Printf.sprintf "bad option tag %d" tag))
    in
    Select { from; where; project; limit }
  | 1 ->
    let from = read_selector r in
    Grep { from; pattern = Reader.bytes r }
  | 2 ->
    let from = read_selector r in
    let where = read_predicate 0 r in
    Aggregate { from; where; agg = read_aggregate r }
  | tag -> raise (Reader.Malformed (Printf.sprintf "bad query tag %d" tag))

(* --- results ------------------------------------------------------------ *)

let write_result w (res : Query_result.t) =
  match res with
  | Rows rows ->
    Writer.u8 w 0;
    Writer.varint w (List.length rows);
    List.iter
      (fun (key, doc) ->
        Writer.bytes w key;
        write_document w doc)
      rows
  | Matches ms ->
    Writer.u8 w 1;
    Writer.varint w (List.length ms);
    List.iter
      (fun (key, field, text) ->
        Writer.bytes w key;
        Writer.bytes w field;
        Writer.bytes w text)
      ms
  | Agg v ->
    Writer.u8 w 2;
    write_value w v

let read_result r : Query_result.t =
  match Reader.u8 r with
  | 0 ->
    let n = Reader.varint r in
    if n > 1_000_000 then raise (Reader.Malformed "too many rows");
    Rows
      (List.init n (fun _ ->
           let key = Reader.bytes r in
           let doc = read_document r in
           (key, doc)))
  | 1 ->
    let n = Reader.varint r in
    if n > 1_000_000 then raise (Reader.Malformed "too many matches");
    Matches
      (List.init n (fun _ ->
           let key = Reader.bytes r in
           let field = Reader.bytes r in
           let text = Reader.bytes r in
           (key, field, text)))
  | 2 -> Agg (read_value r)
  | tag -> raise (Reader.Malformed (Printf.sprintf "bad result tag %d" tag))

(* --- ops & entries ------------------------------------------------------- *)

let write_op w (op : Oplog.op) =
  match op with
  | Put { key; doc } ->
    Writer.u8 w 0;
    Writer.bytes w key;
    write_document w doc
  | Delete { key } ->
    Writer.u8 w 1;
    Writer.bytes w key
  | Set_field { key; field; value } ->
    Writer.u8 w 2;
    Writer.bytes w key;
    Writer.bytes w field;
    write_value w value
  | Remove_field { key; field } ->
    Writer.u8 w 3;
    Writer.bytes w key;
    Writer.bytes w field

let read_op r : Oplog.op =
  match Reader.u8 r with
  | 0 ->
    let key = Reader.bytes r in
    Put { key; doc = read_document r }
  | 1 -> Delete { key = Reader.bytes r }
  | 2 ->
    let key = Reader.bytes r in
    let field = Reader.bytes r in
    Set_field { key; field; value = read_value r }
  | 3 ->
    let key = Reader.bytes r in
    let field = Reader.bytes r in
    Remove_field { key; field }
  | tag -> raise (Reader.Malformed (Printf.sprintf "bad op tag %d" tag))

let write_entry w (e : Oplog.entry) =
  Writer.varint w e.version;
  write_op w e.op

let read_entry r : Oplog.entry =
  let version = Reader.varint r in
  { version; op = read_op r }

(* --- public API ----------------------------------------------------------- *)

let via_writer f x =
  let w = Writer.create () in
  f w x;
  Writer.contents w

let encode_value = via_writer write_value
let decode_value s = Reader.run s read_value
let encode_document = via_writer write_document
let decode_document s = Reader.run s read_document
let encode_query = via_writer write_query
let decode_query s = Reader.run s read_query
let encode_result = via_writer write_result
let decode_result s = Reader.run s read_result
let encode_op = via_writer write_op
let decode_op s = Reader.run s read_op
let encode_entry = via_writer write_entry
let decode_entry s = Reader.run s read_entry

let encode_entries entries =
  let w = Writer.create () in
  Writer.varint w (List.length entries);
  List.iter (write_entry w) entries;
  Writer.contents w

let decode_entries s =
  Reader.run s (fun r ->
      let n = Reader.varint r in
      if n > 1_000_000 then raise (Reader.Malformed "too many entries");
      List.init n (fun _ -> read_entry r))
