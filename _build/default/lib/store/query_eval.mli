(** Query execution against a {!Store}.

    Every replica runs the same evaluator, so an honest slave, a
    double-checking master and the auditor produce byte-identical
    canonical results for the same (query, version) pair. *)

type outcome = {
  result : Query_result.t;
  scanned : int;  (** documents visited; drives simulated compute cost *)
}

val execute : Store.t -> Query.t -> (outcome, string) result
(** [Error] on invalid queries (bad regex, negative limit). *)

val execute_exn : Store.t -> Query.t -> outcome

val cost_seconds :
  scanned:int -> cost_class:[ `Point | `Scan | `Full_scan ] -> per_doc:float -> float
(** Simulated server compute time for a query: a fixed dispatch cost
    plus [per_doc] for every document visited (full scans pay a small
    extra constant for planning). *)
