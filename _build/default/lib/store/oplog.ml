type op =
  | Put of { key : string; doc : Document.t }
  | Delete of { key : string }
  | Set_field of { key : string; field : string; value : Value.t }
  | Remove_field of { key : string; field : string }

type entry = { version : int; op : op }

type t = { mutable entries : entry list (* newest first *); mutable length : int }

let create () = { entries = []; length = 0 }

let last_version t = match t.entries with [] -> 0 | e :: _ -> e.version

let append t entry =
  if entry.version <= last_version t then
    invalid_arg "Oplog.append: version must be strictly increasing";
  t.entries <- entry :: t.entries;
  t.length <- t.length + 1

let length t = t.length

let entries_after t v =
  let rec take acc = function
    | [] -> acc
    | e :: rest -> if e.version > v then take (e :: acc) rest else acc
  in
  take [] t.entries

let pp_op fmt = function
  | Put { key; doc } -> Format.fprintf fmt "put %s %a" key Document.pp doc
  | Delete { key } -> Format.fprintf fmt "delete %s" key
  | Set_field { key; field; value } ->
    Format.fprintf fmt "set %s.%s = %a" key field Value.pp value
  | Remove_field { key; field } -> Format.fprintf fmt "unset %s.%s" key field
