(** Results of executing a {!Query}. *)

type t =
  | Rows of (string * Document.t) list  (** key, (projected) document *)
  | Matches of (string * string * string) list  (** key, field, text *)
  | Agg of Value.t

val equal : t -> t -> bool
val size : t -> int
(** Number of rows / matches; 1 for aggregates. *)

val pp : Format.formatter -> t -> unit
