(** A document: an immutable map from field names to values.  The unit
    of storage under each key of the content store. *)

type t

val empty : t
val of_fields : (string * Value.t) list -> t
(** Later bindings for the same field win. *)

val fields : t -> (string * Value.t) list
(** Sorted by field name. *)

val get : t -> string -> Value.t option
val set : t -> string -> Value.t -> t
val remove : t -> string -> t
val mem : t -> string -> bool
val field_count : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
