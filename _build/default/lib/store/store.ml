module Key_map = Snapshot.Key_map

type t = { mutable docs : Document.t Key_map.t; mutable version : int }

let create () = { docs = Key_map.empty; version = 0 }

let version t = t.version
let key_count t = Key_map.cardinal t.docs
let get t key = Key_map.find_opt key t.docs
let mem t key = Key_map.mem key t.docs

let apply t (op : Oplog.op) =
  (match op with
  | Put { key; doc } -> t.docs <- Key_map.add key doc t.docs
  | Delete { key } -> t.docs <- Key_map.remove key t.docs
  | Set_field { key; field; value } ->
    let doc = match get t key with Some d -> d | None -> Document.empty in
    t.docs <- Key_map.add key (Document.set doc field value) t.docs
  | Remove_field { key; field } -> begin
    match get t key with
    | Some doc -> t.docs <- Key_map.add key (Document.remove doc field) t.docs
    | None -> ()
  end);
  t.version <- t.version + 1

let apply_entry t (entry : Oplog.entry) =
  if entry.version <> t.version + 1 then
    invalid_arg
      (Printf.sprintf "Store.apply_entry: version gap (store at %d, entry %d)" t.version
         entry.version);
  apply t entry.op

let string_starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let fold_selector t (sel : Query.selector) ~init ~f =
  match sel with
  | Key key -> begin
    match get t key with Some doc -> f init key doc | None -> init
  end
  | All -> Key_map.fold (fun key doc acc -> f acc key doc) t.docs init
  | Prefix prefix ->
    let seq = Key_map.to_seq_from prefix t.docs in
    let rec go acc seq =
      match seq () with
      | Seq.Nil -> acc
      | Seq.Cons ((key, doc), rest) ->
        if string_starts_with ~prefix key then go (f acc key doc) rest else acc
    in
    go init seq
  | Key_range { lo; hi } ->
    let seq = Key_map.to_seq_from lo t.docs in
    let rec go acc seq =
      match seq () with
      | Seq.Nil -> acc
      | Seq.Cons ((key, doc), rest) -> if key <= hi then go (f acc key doc) rest else acc
    in
    go init seq

let keys t = List.map fst (Key_map.bindings t.docs)

let snapshot t = Snapshot.make t.docs t.version

let restore t snap =
  t.docs <- Snapshot.docs snap;
  t.version <- Snapshot.version snap

let assign t ~from =
  t.docs <- from.docs;
  t.version <- from.version

let to_bytes t =
  let w = Codec.Writer.create () in
  Codec.Writer.varint w t.version;
  Codec.Writer.varint w (Key_map.cardinal t.docs);
  Key_map.iter
    (fun key doc ->
      Codec.Writer.bytes w key;
      Codec.Writer.bytes w (Codec.encode_document doc))
    t.docs;
  Codec.Writer.contents w

let of_bytes s =
  Codec.Reader.run s (fun r ->
      let version = Codec.Reader.varint r in
      let n = Codec.Reader.varint r in
      if n > 10_000_000 then raise (Codec.Reader.Malformed "too many documents");
      let docs = ref Key_map.empty in
      for _ = 1 to n do
        let key = Codec.Reader.bytes r in
        match Codec.decode_document (Codec.Reader.bytes r) with
        | Ok doc -> docs := Key_map.add key doc !docs
        | Error msg -> raise (Codec.Reader.Malformed ("document: " ^ msg))
      done;
      { docs = !docs; version })

let content_hash t =
  let ctx = Secrep_crypto.Sha1.init () in
  Secrep_crypto.Sha1.feed ctx (Printf.sprintf "v%d;" t.version);
  Key_map.iter
    (fun key doc ->
      Secrep_crypto.Sha1.feed ctx key;
      Secrep_crypto.Sha1.feed ctx "=";
      Secrep_crypto.Sha1.feed ctx (Canonical.of_document doc);
      Secrep_crypto.Sha1.feed ctx ";")
    t.docs;
  Secrep_crypto.Sha1.finalize ctx
