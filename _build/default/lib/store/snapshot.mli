(** Opaque point-in-time captures of a {!Store}, used to roll a client
    or a recovered slave back to a safe state (§3.5).

    [make]/[docs] are the plumbing {!Store} uses to create and restore
    captures; user code should treat values of this type as opaque. *)

module Key_map : Map.S with type key = string

type t

val make : Document.t Key_map.t -> int -> t
val docs : t -> Document.t Key_map.t
val version : t -> int
