type t =
  | Rows of (string * Document.t) list
  | Matches of (string * string * string) list
  | Agg of Value.t

let equal a b =
  match (a, b) with
  | Rows x, Rows y ->
    List.equal (fun (k1, d1) (k2, d2) -> String.equal k1 k2 && Document.equal d1 d2) x y
  | Matches x, Matches y ->
    List.equal
      (fun (k1, f1, v1) (k2, f2, v2) ->
        String.equal k1 k2 && String.equal f1 f2 && String.equal v1 v2)
      x y
  | Agg x, Agg y -> Value.equal x y
  | (Rows _ | Matches _ | Agg _), _ -> false

let size = function
  | Rows rows -> List.length rows
  | Matches ms -> List.length ms
  | Agg _ -> 1

let pp fmt = function
  | Rows rows ->
    Format.fprintf fmt "rows(%d):%a" (List.length rows)
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f " ")
         (fun f (k, d) -> Format.fprintf f "%s=%a" k Document.pp d))
      rows
  | Matches ms ->
    Format.fprintf fmt "matches(%d):%a" (List.length ms)
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f " ")
         (fun f (k, field, v) -> Format.fprintf f "%s.%s=%S" k field v))
      ms
  | Agg v -> Format.fprintf fmt "agg:%a" Value.pp v
