(** Binary wire encodings (with decoders) for store types.

    {!Canonical} produces injective bytes for *hashing* but cannot be
    decoded; this module is the transport format: length-prefixed,
    tagged, and decodable.  Decoders never raise on malformed input —
    they return [Error] — so a byte-flipping network or a malicious
    peer cannot crash a node. *)

type 'a decoder = string -> ('a, string) result

val encode_value : Value.t -> string
val decode_value : Value.t decoder

val encode_document : Document.t -> string
val decode_document : Document.t decoder

val encode_query : Query.t -> string
val decode_query : Query.t decoder

val encode_result : Query_result.t -> string
val decode_result : Query_result.t decoder

val encode_op : Oplog.op -> string
val decode_op : Oplog.op decoder

val encode_entry : Oplog.entry -> string
val decode_entry : Oplog.entry decoder

val encode_entries : Oplog.entry list -> string
val decode_entries : Oplog.entry list decoder

(** Low-level reader/writer, reused by {!Secrep_core}'s packet
    encodings. *)

module Writer : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val varint : t -> int -> unit
  (** Non-negative ints, LEB128. *)

  val float : t -> float -> unit
  val bytes : t -> string -> unit
  (** Length-prefixed. *)

  val contents : t -> string
end

module Reader : sig
  type t

  val create : string -> t
  val u8 : t -> int
  val varint : t -> int
  val float : t -> float
  val bytes : t -> string
  val at_end : t -> bool

  exception Truncated
  exception Malformed of string

  val run : string -> (t -> 'a) -> ('a, string) result
  (** Runs a decoding function, converting exceptions into [Error] and
      rejecting trailing garbage. *)
end
