type outcome = { result : Query_result.t; scanned : int }

let compile_patterns_in_predicate pred =
  (* Compile each regex once per query execution; the table is tiny. *)
  let table = Hashtbl.create 4 in
  let rec walk (p : Query.predicate) =
    match p with
    | True | Field_equals _ | Field_less _ | Field_greater _ | Has_field _ -> ()
    | Field_matches (_, pattern) ->
      if not (Hashtbl.mem table pattern) then Hashtbl.add table pattern (Regex.compile pattern)
    | Not inner -> walk inner
    | And (a, b) | Or (a, b) ->
      walk a;
      walk b
  in
  walk pred;
  table

let rec eval_predicate table (p : Query.predicate) doc =
  match p with
  | True -> true
  | Field_equals (f, v) -> begin
    match Document.get doc f with Some x -> Value.equal x v | None -> false
  end
  | Field_less (f, v) -> begin
    match (Document.get doc f, Value.as_float v) with
    | Some x, Some bound -> begin
      match Value.as_float x with Some fx -> fx < bound | None -> false
    end
    | Some x, None -> Value.compare x v < 0
    | None, _ -> false
  end
  | Field_greater (f, v) -> begin
    match (Document.get doc f, Value.as_float v) with
    | Some x, Some bound -> begin
      match Value.as_float x with Some fx -> fx > bound | None -> false
    end
    | Some x, None -> Value.compare x v > 0
    | None, _ -> false
  end
  | Field_matches (f, pattern) -> begin
    match Document.get doc f with
    | Some (String s) -> Regex.matches (Hashtbl.find table pattern) s
    | Some _ | None -> false
  end
  | Has_field f -> Document.mem doc f
  | Not inner -> not (eval_predicate table inner doc)
  | And (a, b) -> eval_predicate table a doc && eval_predicate table b doc
  | Or (a, b) -> eval_predicate table a doc || eval_predicate table b doc

let project_doc project doc =
  match project with
  | None -> doc
  | Some fields ->
    List.fold_left
      (fun acc f ->
        match Document.get doc f with Some v -> Document.set acc f v | None -> acc)
      Document.empty fields

let execute store (q : Query.t) =
  match Query.validate q with
  | Error _ as e -> e
  | Ok () -> begin
    match q with
    | Select { from; where; project; limit } ->
      let table = compile_patterns_in_predicate where in
      let scanned, rows =
        Store.fold_selector store from ~init:(0, []) ~f:(fun (n, acc) key doc ->
            let acc =
              if eval_predicate table where doc then (key, project_doc project doc) :: acc
              else acc
            in
            (n + 1, acc))
      in
      let rows = List.rev rows in
      let rows =
        match limit with
        | None -> rows
        | Some l -> List.filteri (fun i _ -> i < l) rows
      in
      Ok { result = Query_result.Rows rows; scanned }
    | Grep { from; pattern } ->
      let re = Regex.compile pattern in
      let scanned, ms =
        Store.fold_selector store from ~init:(0, []) ~f:(fun (n, acc) key doc ->
            let acc =
              List.fold_left
                (fun acc (field, v) ->
                  match v with
                  | Value.String s when Regex.matches re s -> (key, field, s) :: acc
                  | _ -> acc)
                acc (Document.fields doc)
            in
            (n + 1, acc))
      in
      Ok { result = Query_result.Matches (List.rev ms); scanned }
    | Aggregate { from; where; agg } ->
      let table = compile_patterns_in_predicate where in
      let scanned, count, sum, min_v, max_v =
        Store.fold_selector store from ~init:(0, 0, None, None, None)
          ~f:(fun (n, count, sum, min_v, max_v) _key doc ->
            if not (eval_predicate table where doc) then (n + 1, count, sum, min_v, max_v)
            else begin
              let field_of = function
                | Query.Count -> None
                | Sum f | Min f | Max f | Avg f -> Some f
              in
              let v = Option.bind (field_of agg) (Document.get doc) in
              let sum =
                match v with
                | None -> sum
                | Some v -> begin
                  match sum with
                  | None -> Some v
                  | Some acc -> begin
                    match Value.add_numeric acc v with Some s -> Some s | None -> Some acc
                  end
                end
              in
              let min_v =
                match v with
                | None -> min_v
                | Some v -> begin
                  match min_v with
                  | None -> Some v
                  | Some m -> Some (if Value.compare v m < 0 then v else m)
                end
              in
              let max_v =
                match v with
                | None -> max_v
                | Some v -> begin
                  match max_v with
                  | None -> Some v
                  | Some m -> Some (if Value.compare v m > 0 then v else m)
                end
              in
              (n + 1, count + 1, sum, min_v, max_v)
            end)
      in
      let value =
        match agg with
        | Count -> Value.Int count
        | Sum _ -> Option.value sum ~default:Value.Null
        | Min _ -> Option.value min_v ~default:Value.Null
        | Max _ -> Option.value max_v ~default:Value.Null
        | Avg _ -> begin
          match (sum, count) with
          | Some s, n when n > 0 -> begin
            match Value.as_float s with
            | Some f -> Value.Float (f /. float_of_int n)
            | None -> Value.Null
          end
          | _ -> Value.Null
        end
      in
      Ok { result = Query_result.Agg value; scanned }
  end

let execute_exn store q =
  match execute store q with
  | Ok outcome -> outcome
  | Error msg -> invalid_arg ("Query_eval.execute_exn: " ^ msg)

let cost_seconds ~scanned ~cost_class ~per_doc =
  let dispatch = 20e-6 in
  let planning = match cost_class with `Point -> 0.0 | `Scan -> 20e-6 | `Full_scan -> 100e-6 in
  dispatch +. planning +. (float_of_int scanned *. per_doc)
