(** A small regular-expression engine for grep-style content queries.

    Built from scratch: patterns parse to an AST, compile to a Thompson
    NFA, and matching simulates the NFA with a state set — linear in
    the input, no backtracking blow-up, so a malicious client cannot
    craft a pathological query.

    Supported syntax: literal characters, [.] any, [*] [+] [?]
    repetition, [[abc]] / [[a-z]] / [[^...]] classes, [|] alternation,
    [( )] grouping, [\\] escapes, and [^] / [$] anchors at the pattern
    ends. *)

type t

exception Parse_error of string

val compile : string -> t
(** Raises {!Parse_error} on malformed patterns. *)

val matches : t -> string -> bool
(** Substring search semantics (like grep), except where the pattern
    is anchored. *)

val matches_exact : t -> string -> bool
(** Whole-string semantics, ignoring anchors. *)

val source : t -> string
(** The original pattern text. *)
