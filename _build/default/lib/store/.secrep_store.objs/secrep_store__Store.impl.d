lib/store/store.ml: Canonical Codec Document List Oplog Printf Query Secrep_crypto Seq Snapshot String
