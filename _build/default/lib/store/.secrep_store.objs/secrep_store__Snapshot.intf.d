lib/store/snapshot.mli: Document Map
