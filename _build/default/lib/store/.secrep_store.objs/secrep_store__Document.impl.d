lib/store/document.ml: Format List Map String Value
