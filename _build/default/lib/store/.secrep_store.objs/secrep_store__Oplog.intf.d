lib/store/oplog.mli: Document Format Value
