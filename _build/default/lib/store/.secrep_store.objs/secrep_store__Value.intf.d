lib/store/value.mli: Format
