lib/store/query_eval.ml: Document Hashtbl List Option Query Query_result Regex Store Value
