lib/store/result_cache.ml: Canonical Hashtbl
