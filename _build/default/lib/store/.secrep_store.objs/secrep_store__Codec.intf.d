lib/store/codec.mli: Document Oplog Query Query_result Value
