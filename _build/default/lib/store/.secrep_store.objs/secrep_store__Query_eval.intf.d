lib/store/query_eval.mli: Query Query_result Store
