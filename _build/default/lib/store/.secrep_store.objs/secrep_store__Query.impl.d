lib/store/query.ml: Format List Printf Regex Stdlib String Value
