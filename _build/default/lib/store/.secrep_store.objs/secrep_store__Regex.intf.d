lib/store/regex.mli:
