lib/store/canonical.mli: Document Query Query_result Value
