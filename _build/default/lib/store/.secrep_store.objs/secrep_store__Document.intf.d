lib/store/document.mli: Format Value
