lib/store/canonical.ml: Buffer Document Int64 List Printf Query Query_result Secrep_crypto String Value
