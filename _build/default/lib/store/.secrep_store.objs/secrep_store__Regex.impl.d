lib/store/regex.ml: Array Bytes Char List Printf String
