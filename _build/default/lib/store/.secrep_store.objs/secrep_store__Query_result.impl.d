lib/store/query_result.ml: Document Format List String Value
