lib/store/store.mli: Document Oplog Query Snapshot
