lib/store/codec.ml: Buffer Char Document Int64 List Oplog Printf Query Query_result String Value
