lib/store/snapshot.ml: Document Map String
