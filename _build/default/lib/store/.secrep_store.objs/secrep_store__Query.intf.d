lib/store/query.mli: Format Value
