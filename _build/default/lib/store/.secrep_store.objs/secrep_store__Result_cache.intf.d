lib/store/result_cache.mli: Query
