lib/store/query_result.mli: Document Format Value
