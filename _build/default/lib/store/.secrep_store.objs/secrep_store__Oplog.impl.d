lib/store/oplog.ml: Document Format Value
