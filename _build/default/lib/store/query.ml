type selector =
  | All
  | Key of string
  | Prefix of string
  | Key_range of { lo : string; hi : string }

type predicate =
  | True
  | Field_equals of string * Value.t
  | Field_less of string * Value.t
  | Field_greater of string * Value.t
  | Field_matches of string * string
  | Has_field of string
  | Not of predicate
  | And of predicate * predicate
  | Or of predicate * predicate

type aggregate =
  | Count
  | Sum of string
  | Min of string
  | Max of string
  | Avg of string

type t =
  | Select of {
      from : selector;
      where : predicate;
      project : string list option;
      limit : int option;
    }
  | Grep of { from : selector; pattern : string }
  | Aggregate of { from : selector; where : predicate; agg : aggregate }

let point_read key = Select { from = Key key; where = True; project = None; limit = None }

let grep ?under pattern =
  let from = match under with None -> All | Some prefix -> Prefix prefix in
  Grep { from; pattern }

let equal (a : t) (b : t) = Stdlib.compare a b = 0

let rec predicate_patterns = function
  | True | Field_equals _ | Field_less _ | Field_greater _ | Has_field _ -> []
  | Field_matches (_, pattern) -> [ pattern ]
  | Not p -> predicate_patterns p
  | And (p, q) | Or (p, q) -> predicate_patterns p @ predicate_patterns q

let validate t =
  let patterns =
    match t with
    | Select { where; limit; _ } -> begin
      match limit with
      | Some l when l < 0 -> Error "negative limit"
      | _ -> Ok (predicate_patterns where)
    end
    | Grep { pattern; _ } -> Ok [ pattern ]
    | Aggregate { where; _ } -> Ok (predicate_patterns where)
  in
  match patterns with
  | Error _ as e -> e
  | Ok patterns -> begin
    match
      List.find_map
        (fun p ->
          match Regex.compile p with
          | (_ : Regex.t) -> None
          | exception Regex.Parse_error msg -> Some (p, msg))
        patterns
    with
    | None -> Ok ()
    | Some (p, msg) -> Error (Printf.sprintf "bad pattern %S: %s" p msg)
  end

let is_point_read = function
  | Select { from = Key _; _ } -> true
  | Select _ | Grep _ | Aggregate _ -> false

let selector_class = function
  | Key _ -> `Point
  | Prefix _ | Key_range _ -> `Scan
  | All -> `Full_scan

let cost_class = function
  | Select { from; _ } -> selector_class from
  | Grep { from; _ } -> begin
    match selector_class from with `Point -> `Scan | c -> c
  end
  | Aggregate { from; _ } -> begin
    match selector_class from with `Point -> `Scan | c -> c
  end

let pp_selector fmt = function
  | All -> Format.pp_print_string fmt "*"
  | Key k -> Format.fprintf fmt "key:%S" k
  | Prefix p -> Format.fprintf fmt "prefix:%S" p
  | Key_range { lo; hi } -> Format.fprintf fmt "range:[%S,%S]" lo hi

let rec pp_predicate fmt = function
  | True -> Format.pp_print_string fmt "true"
  | Field_equals (f, v) -> Format.fprintf fmt "%s = %a" f Value.pp v
  | Field_less (f, v) -> Format.fprintf fmt "%s < %a" f Value.pp v
  | Field_greater (f, v) -> Format.fprintf fmt "%s > %a" f Value.pp v
  | Field_matches (f, p) -> Format.fprintf fmt "%s ~ %S" f p
  | Has_field f -> Format.fprintf fmt "has(%s)" f
  | Not p -> Format.fprintf fmt "not(%a)" pp_predicate p
  | And (p, q) -> Format.fprintf fmt "(%a && %a)" pp_predicate p pp_predicate q
  | Or (p, q) -> Format.fprintf fmt "(%a || %a)" pp_predicate p pp_predicate q

let pp_aggregate fmt = function
  | Count -> Format.pp_print_string fmt "count"
  | Sum f -> Format.fprintf fmt "sum(%s)" f
  | Min f -> Format.fprintf fmt "min(%s)" f
  | Max f -> Format.fprintf fmt "max(%s)" f
  | Avg f -> Format.fprintf fmt "avg(%s)" f

let pp fmt = function
  | Select { from; where; project; limit } ->
    Format.fprintf fmt "select %s from %a where %a%s"
      (match project with None -> "*" | Some fs -> String.concat "," fs)
      pp_selector from pp_predicate where
      (match limit with None -> "" | Some l -> Printf.sprintf " limit %d" l)
  | Grep { from; pattern } -> Format.fprintf fmt "grep %S %a" pattern pp_selector from
  | Aggregate { from; where; agg } ->
    Format.fprintf fmt "select %a from %a where %a" pp_aggregate agg pp_selector from
      pp_predicate where

let to_string t = Format.asprintf "%a" pp t
