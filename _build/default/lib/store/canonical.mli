(** Canonical (deterministic, self-delimiting) encodings.

    Pledge packets hash the query result, and every replica must
    produce byte-identical encodings for equal results, or honest
    slaves would be flagged as cheats.  Floats are encoded by their
    IEEE bit pattern; documents by sorted field order. *)

val of_value : Value.t -> string
val of_document : Document.t -> string
val of_query : Query.t -> string
val of_result : Query_result.t -> string

val result_digest : Query_result.t -> string
(** SHA-1 of the canonical result encoding — the hash carried by
    pledge packets (the paper mandates SHA-1, §3.2). *)

val query_digest : Query.t -> string
