(** Random query/write generation over a loaded content set. *)

type weights = {
  point : float;
  range : float;
  grep : float;
  aggregate : float;
}
(** Relative weights of the four query classes; need not sum to 1. *)

val default_weights : weights
(** Read-heavy CDN shape: 70% point reads, 15% ranges, 10% greps,
    5% aggregates. *)

type t

val create :
  rng:Secrep_crypto.Prng.t ->
  keys:string array ->
  ?weights:weights ->
  ?zipf_s:float ->
  unit ->
  t
(** [zipf_s] (default 0.9) skews key popularity for point reads. *)

val next_query : t -> Secrep_store.Query.t
val next_write : t -> Secrep_store.Oplog.op
(** Field update on a popular key (price/stock bumps — the
    slowly-changing-content shape the paper targets). *)

val queries_generated : t -> int
