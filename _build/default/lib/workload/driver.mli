(** Open-loop workload driver: schedules read/write arrivals onto a
    {!Secrep_core.System} and accumulates the outcome counters the
    experiments report. *)

type summary = {
  reads_completed : int;
  reads_accepted : int;
  reads_gave_up : int;
  served_by_master : int;
  accepted_wrong : int;  (** against the system oracle *)
  double_checks : int;
  immediate_catches : int;
  mean_latency : float;
  p99_latency : float;
}

type t

val create :
  Secrep_core.System.t ->
  mix:Mix.t ->
  rng:Secrep_crypto.Prng.t ->
  ?level:Secrep_core.Security_level.t ->
  ?level_chooser:(unit -> Secrep_core.Security_level.t) ->
  ?mode:Secrep_core.Client.read_mode ->
  unit ->
  t
(** [level_chooser] (when given) overrides [level] per read. *)

val run_reads :
  t -> rate:float -> duration:float -> unit
(** Schedule Poisson read arrivals at [rate]/s over [duration] sim
    seconds, spread round-robin over all clients.  Returns immediately;
    the work happens as the simulation runs. *)

val run_diurnal_reads : t -> diurnal:Diurnal.t -> duration:float -> unit

val run_writes :
  t -> rate:float -> duration:float -> writer:int -> unit
(** Poisson write arrivals issued by client [writer]. *)

val summary : t -> summary
(** Call after the simulation has drained. *)

val reports : t -> Secrep_core.Client.read_report list
(** Completed read reports, oldest first. *)
