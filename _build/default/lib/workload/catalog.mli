(** Synthetic content generators: the product-catalogue / reference-
    database shapes the paper motivates (CDN product catalogues,
    academic/medical/legal databases). *)

val product_catalog :
  Secrep_crypto.Prng.t -> n:int -> (string * Secrep_store.Document.t) list
(** Keys "product:0000".."product:n-1" with name/category/price/stock/
    description fields; categories and prices are drawn from small
    realistic pools so range, grep and aggregation queries have
    non-trivial answers. *)

val reference_db :
  Secrep_crypto.Prng.t -> n:int -> (string * Secrep_store.Document.t) list
(** Keys "article:..." with title/journal/year/citations/abstract
    fields — the academic-database scenario. *)

val categories : string list
val journals : string list
