module Prng = Secrep_crypto.Prng

type t = { base_rate : float; peak_factor : float; period : float }

let create ~base_rate ~peak_factor ~period =
  if base_rate <= 0.0 then invalid_arg "Diurnal.create: base_rate must be positive";
  if peak_factor < 1.0 then invalid_arg "Diurnal.create: peak_factor must be >= 1";
  if period <= 0.0 then invalid_arg "Diurnal.create: period must be positive";
  { base_rate; peak_factor; period }

let rate_at t time =
  (* Sinusoid from base (trough, at t = 0) to base*peak (crest, at
     t = period/2). *)
  let phase = 2.0 *. Float.pi *. time /. t.period in
  let lift = (1.0 -. cos phase) /. 2.0 in
  t.base_rate *. (1.0 +. ((t.peak_factor -. 1.0) *. lift))

let max_rate t = t.base_rate *. t.peak_factor

let next_arrival t g ~now =
  (* Ogata thinning against the constant envelope [max_rate]. *)
  let envelope = max_rate t in
  let rec step time =
    let time = time +. Prng.exponential g ~mean:(1.0 /. envelope) in
    if Prng.float g <= rate_at t time /. envelope then time else step time
  in
  step now

let mean_rate t = t.base_rate *. (1.0 +. ((t.peak_factor -. 1.0) /. 2.0))
