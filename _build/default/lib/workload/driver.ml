module Sim = Secrep_sim.Sim
module Histogram = Secrep_sim.Histogram
module Prng = Secrep_crypto.Prng
module System = Secrep_core.System
module Client = Secrep_core.Client
module Security_level = Secrep_core.Security_level
module Canonical = Secrep_store.Canonical

type summary = {
  reads_completed : int;
  reads_accepted : int;
  reads_gave_up : int;
  served_by_master : int;
  accepted_wrong : int;
  double_checks : int;
  immediate_catches : int;
  mean_latency : float;
  p99_latency : float;
}

type t = {
  system : System.t;
  mix : Mix.t;
  rng : Prng.t;
  level : Security_level.t;
  level_chooser : (unit -> Security_level.t) option;
  mode : Client.read_mode;
  mutable reports : Client.read_report list; (* newest first *)
  latencies : Histogram.t;
  mutable next_client : int;
  mutable accepted_wrong : int;
  mutable double_checks : int;
  mutable immediate : int;
}

let create system ~mix ~rng ?(level = Security_level.Normal) ?level_chooser
    ?(mode = Client.Single) () =
  {
    system;
    mix;
    rng;
    level;
    level_chooser;
    mode;
    reports = [];
    latencies = Histogram.create ~name:"driver.read_latency" ();
    next_client = 0;
    accepted_wrong = 0;
    double_checks = 0;
    immediate = 0;
  }

let issue_read t =
  let client = t.next_client in
  t.next_client <- (t.next_client + 1) mod System.n_clients t.system;
  let query = Mix.next_query t.mix in
  let level =
    match t.level_chooser with Some choose -> choose () | None -> t.level
  in
  System.read t.system ~client ~level ~mode:t.mode query ~on_done:(fun report ->
      t.reports <- report :: t.reports;
      if report.Client.double_checked then t.double_checks <- t.double_checks + 1;
      (match report.Client.caught_slave with
      | Some _ -> t.immediate <- t.immediate + 1
      | None -> ());
      match report.Client.outcome with
      | `Accepted result ->
        Histogram.add t.latencies report.Client.latency;
        let digest = Canonical.result_digest result in
        (match
           System.check_result t.system ~version:report.Client.version report.Client.query
             ~digest
         with
        | Some false -> t.accepted_wrong <- t.accepted_wrong + 1
        | Some true | None -> ())
      | `Served_by_master _ -> Histogram.add t.latencies report.Client.latency
      | `Gave_up -> ())

let schedule_poisson t ~rate ~duration action =
  if rate <= 0.0 then invalid_arg "Driver: rate must be positive";
  let sim = System.sim t.system in
  let start = Sim.now sim in
  let stop = start +. duration in
  (* All arrival times are drawn up front (they only depend on the
     driver's own rng), then scheduled relative to [start]. *)
  let rec arm time =
    let time = time +. Prng.exponential t.rng ~mean:(1.0 /. rate) in
    if time <= stop then begin
      ignore (Sim.schedule sim ~delay:(time -. start) (fun () -> action ()));
      arm time
    end
  in
  arm start

let run_reads t ~rate ~duration = schedule_poisson t ~rate ~duration (fun () -> issue_read t)

let run_diurnal_reads t ~diurnal ~duration =
  let sim = System.sim t.system in
  let stop = Sim.now sim +. duration in
  let rec arm now =
    let time = Diurnal.next_arrival diurnal t.rng ~now in
    if time <= stop then begin
      ignore (Sim.schedule sim ~delay:(time -. Sim.now sim) (fun () -> issue_read t));
      arm time
    end
  in
  arm (Sim.now sim)

let run_writes t ~rate ~duration ~writer =
  schedule_poisson t ~rate ~duration (fun () ->
      let op = Mix.next_write t.mix in
      System.write t.system ~client:writer op ~on_done:(fun _ -> ()))

let summary t =
  let reports = t.reports in
  let count f = List.length (List.filter f reports) in
  {
    reads_completed = List.length reports;
    reads_accepted =
      count (fun r -> match r.Client.outcome with `Accepted _ -> true | _ -> false);
    reads_gave_up =
      count (fun r -> match r.Client.outcome with `Gave_up -> true | _ -> false);
    served_by_master =
      count (fun r ->
          match r.Client.outcome with `Served_by_master _ -> true | _ -> false);
    accepted_wrong = t.accepted_wrong;
    double_checks = t.double_checks;
    immediate_catches = t.immediate;
    mean_latency = (if Histogram.is_empty t.latencies then 0.0 else Histogram.mean t.latencies);
    p99_latency =
      (if Histogram.is_empty t.latencies then 0.0 else Histogram.percentile t.latencies 99.0);
  }

let reports t = List.rev t.reports
