lib/workload/mix.mli: Secrep_crypto Secrep_store
