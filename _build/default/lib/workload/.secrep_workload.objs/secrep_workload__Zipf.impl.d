lib/workload/zipf.ml: Array Secrep_crypto
