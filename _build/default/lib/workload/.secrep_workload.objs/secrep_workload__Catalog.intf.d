lib/workload/catalog.mli: Secrep_crypto Secrep_store
