lib/workload/driver.mli: Diurnal Mix Secrep_core Secrep_crypto
