lib/workload/zipf.mli: Secrep_crypto
