lib/workload/diurnal.ml: Float Secrep_crypto
