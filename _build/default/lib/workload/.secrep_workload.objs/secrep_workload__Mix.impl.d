lib/workload/mix.ml: Array Secrep_crypto Secrep_store Zipf
