lib/workload/catalog.ml: List Printf Secrep_crypto Secrep_store
