lib/workload/driver.ml: Diurnal List Mix Secrep_core Secrep_crypto Secrep_sim Secrep_store
