lib/workload/diurnal.mli: Secrep_crypto
