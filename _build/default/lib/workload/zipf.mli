(** Zipfian popularity sampling — CDN catalogues and reference
    databases have heavily skewed read popularity, which is what makes
    the auditor's result cache effective (E6). *)

type t

val create : n:int -> s:float -> t
(** Ranks 1..n with P(k) proportional to 1/k^s.  Requires [n >= 1] and
    [s >= 0] ([s = 0] is uniform). *)

val sample : t -> Secrep_crypto.Prng.t -> int
(** 0-based rank (0 = most popular). *)

val n : t -> int
val probability : t -> int -> float
(** Probability of the 0-based rank. *)
