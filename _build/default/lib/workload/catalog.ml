module Prng = Secrep_crypto.Prng
module Document = Secrep_store.Document
module Value = Secrep_store.Value

let categories =
  [ "books"; "electronics"; "garden"; "toys"; "kitchen"; "sports"; "music"; "office" ]

let journals =
  [ "nature"; "science"; "lancet"; "jacm"; "tocs"; "sosp"; "osdi"; "sigmod" ]

let adjectives = [| "red"; "blue"; "compact"; "deluxe"; "classic"; "portable"; "wireless" |]
let nouns = [| "lamp"; "router"; "novel"; "racket"; "blender"; "keyboard"; "drone" |]

let pick_list g l = List.nth l (Prng.int g (List.length l))

let product_catalog g ~n =
  List.init n (fun i ->
      let key = Printf.sprintf "product:%05d" i in
      let name =
        Printf.sprintf "%s %s #%d" (Prng.pick g adjectives) (Prng.pick g nouns) i
      in
      let doc =
        Document.of_fields
          [
            ("name", Value.String name);
            ("category", Value.String (pick_list g categories));
            ("price", Value.Float (1.0 +. (Prng.float g *. 499.0)));
            ("stock", Value.Int (Prng.int g 1000));
            ( "description",
              Value.String
                (Printf.sprintf "A %s %s for every home; model %04d."
                   (Prng.pick g adjectives) (Prng.pick g nouns) (Prng.int g 10000)) );
          ]
      in
      (key, doc))

let reference_db g ~n =
  List.init n (fun i ->
      let key = Printf.sprintf "article:%05d" i in
      let doc =
        Document.of_fields
          [
            ( "title",
              Value.String
                (Printf.sprintf "On the %s of %s systems (part %d)" (Prng.pick g adjectives)
                   (Prng.pick g nouns) (i mod 7)) );
            ("journal", Value.String (pick_list g journals));
            ("year", Value.Int (1980 + Prng.int g 24));
            ("citations", Value.Int (Prng.int g 5000));
            ( "abstract",
              Value.String
                (Printf.sprintf
                   "We study %s replication over %s hosts and report %d findings."
                   (Prng.pick g adjectives) (Prng.pick g nouns) (Prng.int g 100)) );
          ]
      in
      (key, doc))
