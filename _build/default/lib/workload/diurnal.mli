(** Diurnal request-rate shaping (§3.4: "read requests show daily peak
    patterns (few requests at 3AM in the night)"), used by the
    auditor-catch-up experiment. *)

type t

val create : base_rate:float -> peak_factor:float -> period:float -> t
(** Rate oscillates between [base_rate] and [base_rate * peak_factor]
    over [period] seconds (sinusoidal, trough at t=0). *)

val rate_at : t -> float -> float
(** Instantaneous arrival rate (requests/second). *)

val next_arrival : t -> Secrep_crypto.Prng.t -> now:float -> float
(** Sample the next arrival time after [now] from the inhomogeneous
    Poisson process with this rate (thinning). *)

val mean_rate : t -> float
