module Prng = Secrep_crypto.Prng
module Query = Secrep_store.Query
module Oplog = Secrep_store.Oplog
module Value = Secrep_store.Value

type weights = { point : float; range : float; grep : float; aggregate : float }

let default_weights = { point = 0.70; range = 0.15; grep = 0.10; aggregate = 0.05 }

type t = {
  rng : Prng.t;
  keys : string array;
  weights : weights;
  zipf : Zipf.t;
  mutable generated : int;
  mutable next_write_seq : int;
}

let create ~rng ~keys ?(weights = default_weights) ?(zipf_s = 0.9) () =
  if Array.length keys = 0 then invalid_arg "Mix.create: no keys";
  let total = weights.point +. weights.range +. weights.grep +. weights.aggregate in
  if total <= 0.0 then invalid_arg "Mix.create: weights must sum to a positive value";
  {
    rng;
    keys;
    weights;
    zipf = Zipf.create ~n:(Array.length keys) ~s:zipf_s;
    generated = 0;
    next_write_seq = 0;
  }

let popular_key t = t.keys.(Zipf.sample t.zipf t.rng)

let grep_patterns =
  [| "deluxe"; "wireless"; "novel"; "model [0-9]+"; "replication"; "part [0-5]" |]

let agg_fields = [| "price"; "stock"; "citations"; "year" |]

let next_query t =
  t.generated <- t.generated + 1;
  let u = Prng.float t.rng in
  let w = t.weights in
  let total = w.point +. w.range +. w.grep +. w.aggregate in
  let u = u *. total in
  if u < w.point then Query.point_read (popular_key t)
  else if u < w.point +. w.range then begin
    let i = Prng.int t.rng (Array.length t.keys) in
    let span = 1 + Prng.int t.rng 20 in
    let j = min (Array.length t.keys - 1) (i + span) in
    let lo = min t.keys.(i) t.keys.(j) and hi = max t.keys.(i) t.keys.(j) in
    Query.Select
      { from = Query.Key_range { lo; hi }; where = Query.True; project = None; limit = None }
  end
  else if u < w.point +. w.range +. w.grep then
    Query.grep (Prng.pick t.rng grep_patterns)
  else begin
    let field = Prng.pick t.rng agg_fields in
    let agg =
      match Prng.int t.rng 4 with
      | 0 -> Query.Count
      | 1 -> Query.Sum field
      | 2 -> Query.Min field
      | _ -> Query.Avg field
    in
    Query.Aggregate { from = Query.All; where = Query.True; agg }
  end

let next_write t =
  let key = popular_key t in
  t.next_write_seq <- t.next_write_seq + 1;
  if Prng.bool t.rng then
    Oplog.Set_field { key; field = "price"; value = Value.Float (1.0 +. (Prng.float t.rng *. 499.0)) }
  else Oplog.Set_field { key; field = "stock"; value = Value.Int (Prng.int t.rng 1000) }

let queries_generated t = t.generated
