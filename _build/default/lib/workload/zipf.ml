type t = { cdf : float array }

let create ~n ~s =
  if n < 1 then invalid_arg "Zipf.create: n must be at least 1";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { cdf }

let n t = Array.length t.cdf

let sample t g =
  let u = Secrep_crypto.Prng.float g in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let probability t i =
  if i < 0 || i >= Array.length t.cdf then invalid_arg "Zipf.probability: out of range";
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)
