(** Deterministic pseudo-random number generation.

    Simulation runs must be reproducible, so every component that needs
    randomness takes an explicit generator.  The generator is
    xoshiro256** seeded through SplitMix64, both implemented here from
    the reference algorithms. *)

type t

val create : seed:int64 -> t
(** [create ~seed] builds a generator; equal seeds give equal streams. *)

val split : t -> t
(** [split g] derives an independent generator from [g], advancing [g].
    Used to give each simulated node its own stream. *)

val copy : t -> t

val next_int64 : t -> int64
(** Uniform over all 64-bit values. *)

val bits : t -> int -> int
(** [bits g n] is a uniform [n]-bit non-negative int, [0 <= n <= 62]. *)

val int : t -> int -> int
(** [int g bound] is uniform in [0, bound); [bound > 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli g p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val bytes : t -> int -> string
(** [bytes g n] is an [n]-byte uniformly random string. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
