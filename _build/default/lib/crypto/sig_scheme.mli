(** Signature schemes behind a single interface.

    Protocol code signs and verifies through a keypair value and never
    sees the scheme.  Two schemes are provided:

    - [Rsa ~bits]: the real thing, built on {!Rsa}.  Signing is much
      more expensive than verification — the asymmetry the paper's
      auditor exploits — and the micro-benchmarks measure it.
    - [Hmac_sim]: a simulation-speed stand-in with the same API.  Each
      keypair holds a random MAC secret; "public" verification uses the
      same secret (fine inside one simulation process, where the point
      is protocol behaviour, not adversarial cryptography).  DESIGN.md
      records this substitution. *)

type scheme = Rsa of { bits : int } | Hmac_sim

type keypair
type public

val generate : scheme -> Prng.t -> keypair
val public_of : keypair -> public
val sign : keypair -> string -> string
val verify : public -> msg:string -> signature:string -> bool

val key_id : public -> string
(** Stable short hex identifier of the public half. *)

val encode_public : public -> string
(** Wire encoding of the public half (for certificates and directory
    entries travelling between simulated hosts). *)

val decode_public : string -> (public, string) result
(** Inverse of {!encode_public}; never raises on garbage. *)

val scheme_of : keypair -> scheme
val pp_public : Format.formatter -> public -> unit
