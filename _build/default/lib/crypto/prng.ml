(* xoshiro256** seeded via SplitMix64 (reference: Blackman & Vigna).
   All state is explicit so simulations replay bit-for-bit. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix_next (state : int64 ref) =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let st = ref seed in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 g =
  let result = Int64.mul (rotl (Int64.mul g.s1 5L) 7) 9L in
  let t = Int64.shift_left g.s1 17 in
  g.s2 <- Int64.logxor g.s2 g.s0;
  g.s3 <- Int64.logxor g.s3 g.s1;
  g.s1 <- Int64.logxor g.s1 g.s2;
  g.s0 <- Int64.logxor g.s0 g.s3;
  g.s2 <- Int64.logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g = create ~seed:(next_int64 g)

let bits g n =
  if n < 0 || n > 62 then invalid_arg "Prng.bits";
  if n = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (next_int64 g) (64 - n)) land ((1 lsl n) - 1)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  if bound = 1 then 0
  else begin
    (* Rejection sampling over the smallest covering power of two. *)
    let rec width w = if 1 lsl w >= bound then w else width (w + 1) in
    let w = width 1 in
    let rec draw () =
      let v = bits g w in
      if v < bound then v else draw ()
    in
    draw ()
  end

let float g =
  (* 53 uniform bits, the double-precision mantissa width. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 g) 11) in
  float_of_int v *. (1.0 /. 9007199254740992.0)

let bool g = bits g 1 = 1

let bernoulli g p =
  if p <= 0.0 then false else if p >= 1.0 then true else float g < p

let exponential g ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  let u = 1.0 -. float g in
  -.mean *. log u

let bytes g n =
  String.init n (fun _ -> Char.chr (bits g 8))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick g arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int g (Array.length arr))
