lib/crypto/hex.ml: Char String
