lib/crypto/merkle.ml: Array Hmac List Sha256
