lib/crypto/hmac.mli:
