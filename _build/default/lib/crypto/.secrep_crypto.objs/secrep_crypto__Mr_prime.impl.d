lib/crypto/mr_prime.ml: Bignum Bytes List Prng
