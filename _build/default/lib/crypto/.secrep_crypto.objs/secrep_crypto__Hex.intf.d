lib/crypto/hex.mli:
