lib/crypto/bignum.ml: Array Buffer Bytes Char Format Stdlib String
