lib/crypto/rsa.mli: Bignum Format Prng
