lib/crypto/merkle.mli:
