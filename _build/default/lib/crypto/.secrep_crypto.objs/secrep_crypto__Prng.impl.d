lib/crypto/prng.ml: Array Char Int64 String
