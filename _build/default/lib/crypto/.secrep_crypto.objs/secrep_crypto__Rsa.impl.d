lib/crypto/rsa.ml: Bignum Bytes Format Hex Hmac Mr_prime Sha256 String
