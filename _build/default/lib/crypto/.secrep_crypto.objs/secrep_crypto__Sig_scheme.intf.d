lib/crypto/sig_scheme.mli: Format Prng
