lib/crypto/sig_scheme.ml: Bignum Buffer Format Hex Hmac Printf Prng Rsa Sha256 String
