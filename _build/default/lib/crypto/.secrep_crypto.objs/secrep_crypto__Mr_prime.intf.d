lib/crypto/mr_prime.mli: Bignum Prng
