lib/crypto/hmac.ml: Char Hex Sha1 Sha256 String
