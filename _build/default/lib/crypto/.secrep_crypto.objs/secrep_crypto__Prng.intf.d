lib/crypto/prng.mli:
