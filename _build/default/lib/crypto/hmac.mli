(** HMAC (RFC 2104) over either of the hash functions in this library.
    Used by the fast simulated signature scheme in {!Sig_scheme}. *)

type hash = Sha1 | Sha256

val mac : hash:hash -> key:string -> string -> string
(** [mac ~hash ~key msg] is the raw HMAC digest of [msg]. *)

val hex_mac : hash:hash -> key:string -> string -> string

val equal_const_time : string -> string -> bool
(** Comparison that does not leak the position of the first mismatch. *)
