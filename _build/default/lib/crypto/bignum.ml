(* Arbitrary-precision naturals over 26-bit limbs stored little-endian in an
   int array.  26 bits is chosen so that a limb product (52 bits) plus the
   running carries of schoolbook multiplication and of Knuth division stay
   well inside a 63-bit native int. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array
(* Invariant: normalized (no trailing zero limbs); zero = [||];
   every limb is in [0, base). *)

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs n = if n = 0 then [] else (n land mask) :: limbs (n lsr limb_bits) in
  Array.of_list (limbs n)

let one = of_int 1
let two = of_int 2

let to_int_opt (a : t) =
  (* Native ints hold 62 usable bits: at most 3 limbs with the top one
     small enough. *)
  let n = Array.length a in
  if n > 3 then None
  else begin
    let rec go i acc =
      if i < 0 then Some acc
      else
        let acc' = (acc lsl limb_bits) lor a.(i) in
        if acc' < acc then None else go (i - 1) acc'
    in
    go (n - 1) 0
  end

let is_even (a : t) = is_zero a || a.(0) land 1 = 0

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  r.(n) <- !carry;
  normalize r

(* [a - b] assuming [a >= b]. *)
let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Bignum.sub: underflow";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  normalize r

let succ a = add a one
let pred a = sub a one

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let p = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- p land mask;
          carry := p lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land mask;
          carry := s lsr limb_bits;
          incr k
        done
      end
    done;
    normalize r
  end

let bit_length (a : t) =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((n - 1) * limb_bits) + width 0
  end

let test_bit (a : t) i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let shift_left (a : t) s =
  if s < 0 then invalid_arg "Bignum.shift_left: negative shift";
  if is_zero a || s = 0 then a
  else begin
    let limb_shift = s / limb_bits and bit_shift = s mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land mask);
      r.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right (a : t) s =
  if s < 0 then invalid_arg "Bignum.shift_right: negative shift";
  if s = 0 then a
  else begin
    let limb_shift = s / limb_bits and bit_shift = s mod limb_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let n = la - limb_shift in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Division by a single limb: plain schoolbook from the most significant
   limb down; the partial remainder times the base fits in 52 bits. *)
let divmod_small (a : t) d =
  assert (d > 0 && d < base);
  let n = Array.length a in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, of_int !r)

(* Knuth TAOCP vol. 2, Algorithm D, specialised to 26-bit limbs. *)
let divmod_knuth (u : t) (v : t) =
  let n = Array.length v in
  let m = Array.length u - n in
  assert (n >= 2 && m >= 0);
  (* D1: normalize so the top limb of v has its high bit set. *)
  let s =
    let top = v.(n - 1) in
    let rec go w = if top lsr w = 0 then w else go (w + 1) in
    limb_bits - go 0
  in
  let vn = Array.make n 0 in
  for i = n - 1 downto 0 do
    let hi = (v.(i) lsl s) land mask in
    let lo = if i > 0 && s > 0 then v.(i - 1) lsr (limb_bits - s) else 0 in
    vn.(i) <- hi lor lo
  done;
  let un = Array.make (m + n + 1) 0 in
  un.(m + n) <- if s > 0 then u.(m + n - 1) lsr (limb_bits - s) else 0;
  for i = m + n - 1 downto 0 do
    let hi = (u.(i) lsl s) land mask in
    let lo = if i > 0 && s > 0 then u.(i - 1) lsr (limb_bits - s) else 0 in
    un.(i) <- hi lor lo
  done;
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    (* D3: estimate the quotient digit from the top two limbs. *)
    let num = (un.(j + n) lsl limb_bits) lor un.(j + n - 1) in
    let qhat = ref (num / vn.(n - 1)) and rhat = ref (num mod vn.(n - 1)) in
    let continue = ref true in
    while !continue do
      if !qhat >= base
         || !qhat * vn.(n - 2) > (!rhat lsl limb_bits) lor un.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + vn.(n - 1);
        if !rhat >= base then continue := false
      end
      else continue := false
    done;
    (* D4: multiply and subtract. *)
    let carry = ref 0 and borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = un.(i + j) - (p land mask) - !borrow in
      if d < 0 then begin un.(i + j) <- d + base; borrow := 1 end
      else begin un.(i + j) <- d; borrow := 0 end
    done;
    let d = un.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* D6: the estimate was one too large; add back. *)
      un.(j + n) <- d + base;
      q.(j) <- !qhat - 1;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let sum = un.(i + j) + vn.(i) + !c in
        un.(i + j) <- sum land mask;
        c := sum lsr limb_bits
      done;
      un.(j + n) <- (un.(j + n) + !c) land mask
    end
    else begin
      un.(j + n) <- d;
      q.(j) <- !qhat
    end
  done;
  (* D8: denormalize the remainder. *)
  let r = normalize (Array.sub un 0 n) in
  (normalize q, shift_right r s)

let divmod (a : t) (b : t) =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then divmod_small a b.(0)
  else divmod_knuth a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let mod_exp ~base:b ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else begin
    let b = rem b modulus in
    let bits = bit_length exp in
    let acc = ref one in
    for i = bits - 1 downto 0 do
      acc := rem (mul !acc !acc) modulus;
      if test_bit exp i then acc := rem (mul !acc b) modulus
    done;
    !acc
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Signed values, needed only inside the extended Euclid below. *)
type signed = { neg : bool; mag : t }

let s_of t = { neg = false; mag = t }

let s_sub x y =
  (* x - y for signed values *)
  match (x.neg, y.neg) with
  | false, true -> { neg = false; mag = add x.mag y.mag }
  | true, false -> { neg = not (is_zero (add x.mag y.mag)); mag = add x.mag y.mag }
  | false, false ->
    if compare x.mag y.mag >= 0 then { neg = false; mag = sub x.mag y.mag }
    else { neg = true; mag = sub y.mag x.mag }
  | true, true ->
    if compare y.mag x.mag >= 0 then { neg = false; mag = sub y.mag x.mag }
    else { neg = true; mag = sub x.mag y.mag }

let s_mul_nat x n =
  let mag = mul x.mag n in
  { neg = x.neg && not (is_zero mag); mag }

let mod_inv a m =
  if is_zero m then raise Division_by_zero;
  (* Extended Euclid keeping only the Bezout coefficient of [a]. *)
  let rec go old_r r old_t t =
    if is_zero r then (old_r, old_t)
    else begin
      let qn, rn = divmod old_r r in
      go r rn t (s_sub old_t (s_mul_nat t qn))
    end
  in
  let g, t = go (rem a m) m (s_of one) (s_of zero) in
  if not (equal g one) then None
  else begin
    let x = rem t.mag m in
    if t.neg && not (is_zero x) then Some (sub m x) else Some x
  end

let of_bytes_be s =
  let len = String.length s in
  let r = ref zero in
  for i = 0 to len - 1 do
    r := add (shift_left !r 8) (of_int (Char.code s.[i]))
  done;
  !r

let to_bytes_be ?length (a : t) =
  let nbytes = (bit_length a + 7) / 8 in
  let total =
    match length with
    | None -> max nbytes 1
    | Some l ->
      if nbytes > l then invalid_arg "Bignum.to_bytes_be: value too large";
      l
  in
  let buf = Bytes.make total '\000' in
  let rec go v i =
    if not (is_zero v) then begin
      assert (i >= 0);
      let q, r = divmod_small v 256 in
      let byte = match to_int_opt r with Some b -> b | None -> assert false in
      Bytes.set buf i (Char.chr byte);
      go q (i - 1)
    end
  in
  go a (total - 1);
  Bytes.unsafe_to_string buf

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bignum.of_hex: bad digit"

let of_hex s =
  let r = ref zero in
  String.iter (fun c -> if c <> '_' then r := add (shift_left !r 4) (of_int (hex_digit c))) s;
  !r

let to_hex (a : t) =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec go v =
      if not (is_zero v) then begin
        let q, r = divmod_small v 16 in
        let d = match to_int_opt r with Some d -> d | None -> assert false in
        Buffer.add_char buf "0123456789abcdef".[d];
        go q
      end
    in
    go a;
    let s = Buffer.contents buf in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  end

let of_decimal s =
  if String.length s = 0 then invalid_arg "Bignum.of_decimal: empty";
  let r = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
        r := add (mul !r (of_int 10)) (of_int (Char.code c - Char.code '0'))
      | '_' -> ()
      | _ -> invalid_arg "Bignum.of_decimal: bad digit")
    s;
  !r

let to_decimal (a : t) =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec go v =
      if not (is_zero v) then begin
        let q, r = divmod_small v 10 in
        let d = match to_int_opt r with Some d -> d | None -> assert false in
        Buffer.add_char buf (Char.chr (d + Char.code '0'));
        go q
      end
    in
    go a;
    let s = Buffer.contents buf in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  end

let pp fmt a = Format.pp_print_string fmt (to_decimal a)
