(** Hexadecimal encoding of byte strings. *)

val encode : string -> string
(** Lower-case hex, two characters per byte. *)

val decode : string -> string
(** Inverse of {!encode}; raises [Invalid_argument] on odd length or
    non-hex characters. *)
