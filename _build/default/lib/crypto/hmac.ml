type hash = Sha1 | Sha256

let block_size = 64 (* both SHA-1 and SHA-256 use 64-byte blocks *)

let raw_digest hash s =
  match hash with Sha1 -> Sha1.digest s | Sha256 -> Sha256.digest s

let mac ~hash ~key msg =
  let key = if String.length key > block_size then raw_digest hash key else key in
  let pad fill =
    String.init block_size (fun i ->
        let k = if i < String.length key then Char.code key.[i] else 0 in
        Char.chr (k lxor fill))
  in
  let inner = raw_digest hash (pad 0x36 ^ msg) in
  raw_digest hash (pad 0x5c ^ inner)

let hex_mac ~hash ~key msg = Hex.encode (mac ~hash ~key msg)

let equal_const_time a b =
  String.length a = String.length b
  && begin
       let acc = ref 0 in
       String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
       !acc = 0
     end
