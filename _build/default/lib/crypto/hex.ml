let encode s =
  let digits = "0123456789abcdef" in
  String.init
    (2 * String.length s)
    (fun i ->
      let b = Char.code s.[i / 2] in
      digits.[if i land 1 = 0 then b lsr 4 else b land 0xf])

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: bad digit"

let decode s =
  let n = String.length s in
  if n land 1 = 1 then invalid_arg "Hex.decode: odd length";
  String.init (n / 2) (fun i -> Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
