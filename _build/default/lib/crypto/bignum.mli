(** Arbitrary-precision natural numbers.

    Implemented from scratch on top of OCaml's native [int]: numbers are
    little-endian arrays of 26-bit limbs, so limb products and the column
    sums of schoolbook multiplication fit comfortably in a 63-bit [int].
    Values are immutable and always normalized (no most-significant zero
    limbs; zero is the empty array).

    This module backs {!Rsa} and {!Mr_prime}; only natural (non-negative)
    arithmetic is exposed.  Subtraction of a larger number raises. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] converts a non-negative [int].  Raises [Invalid_argument]
    on negative input. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in a native [int]. *)

val is_zero : t -> bool
val is_even : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val succ : t -> t
val pred : t -> t
(** [pred n] requires [n > 0]. *)

val sub : t -> t -> t
(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)

val mul : t -> t -> t
val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b].
    Raises [Division_by_zero] when [b] is zero.  Long division is Knuth's
    Algorithm D over 26-bit limbs. *)

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** [bit_length n] is the index of the highest set bit plus one;
    [bit_length zero = 0]. *)

val test_bit : t -> int -> bool

val mod_exp : base:t -> exp:t -> modulus:t -> t
(** [mod_exp ~base ~exp ~modulus] is [base^exp mod modulus] by
    left-to-right binary exponentiation.  [modulus] must be non-zero. *)

val gcd : t -> t -> t

val mod_inv : t -> t -> t option
(** [mod_inv a m] is [Some x] with [a*x = 1 (mod m)] when
    [gcd a m = 1], [None] otherwise. *)

val of_bytes_be : string -> t
(** Big-endian unsigned interpretation of a byte string. *)

val to_bytes_be : ?length:int -> t -> string
(** Big-endian bytes, left-padded with zeros to [length] when given.
    Raises [Invalid_argument] if the value does not fit in [length]. *)

val of_hex : string -> t
val to_hex : t -> string
(** Lower-case hex without leading zeros; ["0"] for zero. *)

val of_decimal : string -> t
val to_decimal : t -> string

val pp : Format.formatter -> t -> unit
(** Prints the decimal representation. *)
