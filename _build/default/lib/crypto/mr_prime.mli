(** Probabilistic primality testing and prime generation, used by RSA
    key generation. *)

val is_probable_prime : ?rounds:int -> Prng.t -> Bignum.t -> bool
(** Miller–Rabin with [rounds] random witnesses (default 24), after
    trial division by small primes.  Error probability at most
    [4^-rounds] for composites. *)

val random_prime : Prng.t -> bits:int -> Bignum.t
(** [random_prime g ~bits] is a probable prime of exactly [bits] bits
    (top bit set, odd).  Requires [bits >= 3]. *)
