(** Deterministic role election over a membership list.

    The masters elect both the broadcast sequencer and the paper's
    auditor (§3) through the same total-order machinery; with a
    deterministic rule over the agreed membership, no extra messages
    are needed. *)

val sequencer : alive:int list -> int option
(** Lowest alive id. *)

val auditor : alive:int list -> int option
(** Highest alive id — distinct from the sequencer whenever at least
    two masters are alive, so ordering duties and audit duties land on
    different hosts. *)

val next_view_sequencer : alive:int list -> suspected:int -> int option
(** Lowest alive id excluding the suspect. *)
