(** Wire messages of the sequencer-based total-order broadcast. *)

type 'a t =
  | Request of { origin : int; req_id : int; payload : 'a }
      (** Member asks the sequencer to order a payload.  [req_id] is
          unique per origin so retries are deduplicated. *)
  | Ordered of {
      view : int;  (** sender's current view (freshness/acceptance) *)
      slot_view : int;  (** view that assigned this slot (conflict resolution) *)
      seq : int;
      origin : int;
      req_id : int;
      payload : 'a;
    }
      (** Sequencer-assigned slot [seq]; members deliver in seq order. *)
  | Heartbeat of { view : int; sequencer : int; next_seq : int }
      (** Periodic liveness signal; [next_seq] lets receivers detect
          missed slots. *)
  | Nack of { asker : int; from_seq : int; upto_seq : int }
      (** Retransmission request for slots [from_seq..upto_seq]. *)
  | State_request of { view : int; asker : int }
      (** New sequencer collecting the highest slot anyone holds. *)
  | State_reply of { view : int; replier : int; highest_seq : int }
  | New_view of { view : int; sequencer : int; next_seq : int }
  | Take_over of { view : int }
      (** "You are the expected next sequencer — act." *)

val describe : 'a t -> string
(** Short tag for traces. *)
