(** Reliable, totally-ordered broadcast over a full mesh of simulated
    links — the substrate the paper assumes among master servers
    ("implement a reliable, total-ordering broadcast protocol that can
    tolerate benign server failures", §3, citing Kaashoek et al.).

    Design: a sequencer member assigns consecutive slot numbers to
    requests and rebroadcasts them; members deliver strictly in slot
    order, nack holes, and retry unacknowledged requests.  When the
    sequencer is suspected dead (missed heartbeats), the lowest
    remaining id runs a state-sync round and installs a new view.
    Failures are benign (crash-stop): members never lie, matching the
    paper's trusted-master assumption. *)

type 'a t

type config = {
  heartbeat_period : float;
  suspect_timeout : float;  (** must exceed [heartbeat_period] *)
  retry_period : float;  (** request retransmission interval *)
  state_sync_wait : float;  (** how long a new sequencer collects state *)
}

val default_config : config

val create :
  Secrep_sim.Sim.t ->
  rng:Secrep_crypto.Prng.t ->
  members:int list ->
  latency:Secrep_sim.Latency.t ->
  ?loss:float ->
  ?config:config ->
  ?trace:Secrep_sim.Trace.t ->
  deliver:(member:int -> seq:int -> 'a -> unit) ->
  unit ->
  'a t
(** Member ids must be distinct and non-negative.  [deliver] is called
    once per (member, slot) in slot order on every live member. *)

val broadcast : 'a t -> from:int -> 'a -> unit
(** Reliable: retried across sequencer crashes until ordered.  Raises
    [Invalid_argument] if [from] is crashed or unknown. *)

val crash : 'a t -> int -> unit
(** Crash-stop: the member ceases all activity and its links go down.
    Idempotent. *)

val alive : 'a t -> int list
val is_alive : 'a t -> int -> bool

val view_of : 'a t -> int -> int
val sequencer_of : 'a t -> int -> int
(** Current view / believed sequencer at one member. *)

val delivered_count : 'a t -> int -> int
val link_between : 'a t -> int -> int -> Secrep_sim.Link.t
(** For partition experiments.  Raises [Not_found] for self-pairs. *)
