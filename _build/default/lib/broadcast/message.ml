type 'a t =
  | Request of { origin : int; req_id : int; payload : 'a }
  | Ordered of {
      view : int;  (** sender's current view (freshness/acceptance) *)
      slot_view : int;  (** view that assigned this slot (conflict resolution) *)
      seq : int;
      origin : int;
      req_id : int;
      payload : 'a;
    }
  | Heartbeat of { view : int; sequencer : int; next_seq : int }
  | Nack of { asker : int; from_seq : int; upto_seq : int }
  | State_request of { view : int; asker : int }
  | State_reply of { view : int; replier : int; highest_seq : int }
  | New_view of { view : int; sequencer : int; next_seq : int }
  | Take_over of { view : int }

let describe = function
  | Request { origin; req_id; _ } -> Printf.sprintf "request(%d#%d)" origin req_id
  | Ordered { view; slot_view; seq; _ } ->
    Printf.sprintf "ordered(v%d,sv%d,s%d)" view slot_view seq
  | Heartbeat { view; sequencer; next_seq } ->
    Printf.sprintf "heartbeat(v%d,seq@%d,next=%d)" view sequencer next_seq
  | Nack { asker; from_seq; upto_seq } -> Printf.sprintf "nack(%d,%d..%d)" asker from_seq upto_seq
  | State_request { view; asker } -> Printf.sprintf "state_request(v%d,%d)" view asker
  | State_reply { view; replier; highest_seq } ->
    Printf.sprintf "state_reply(v%d,%d,top=%d)" view replier highest_seq
  | New_view { view; sequencer; next_seq } ->
    Printf.sprintf "new_view(v%d,seq@%d,next=%d)" view sequencer next_seq
  | Take_over { view } -> Printf.sprintf "take_over(v%d)" view
