let sequencer ~alive =
  match List.sort Int.compare alive with [] -> None | x :: _ -> Some x

let auditor ~alive =
  match List.sort (fun a b -> Int.compare b a) alive with [] -> None | x :: _ -> Some x

let next_view_sequencer ~alive ~suspected =
  sequencer ~alive:(List.filter (fun id -> id <> suspected) alive)
