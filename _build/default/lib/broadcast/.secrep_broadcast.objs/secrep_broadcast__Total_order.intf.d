lib/broadcast/total_order.mli: Secrep_crypto Secrep_sim
