lib/broadcast/message.mli:
