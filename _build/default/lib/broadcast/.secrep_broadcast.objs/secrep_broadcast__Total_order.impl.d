lib/broadcast/total_order.ml: Election Hashtbl Int List Message Printf Secrep_crypto Secrep_sim
