lib/broadcast/election.mli:
