lib/broadcast/election.ml: Int List
