lib/broadcast/message.ml: Printf
