type t = {
  name : string;
  mutable times : float array;
  mutable values : float array;
  mutable count : int;
}

let create ?(name = "series") () = { name; times = [||]; values = [||]; count = 0 }

let record t ~time v =
  if t.count > 0 && time < t.times.(t.count - 1) then
    invalid_arg "Timeseries.record: time went backwards";
  let cap = Array.length t.times in
  if t.count = cap then begin
    let ncap = max 64 (2 * cap) in
    let ts = Array.make ncap 0.0 and vs = Array.make ncap 0.0 in
    Array.blit t.times 0 ts 0 t.count;
    Array.blit t.values 0 vs 0 t.count;
    t.times <- ts;
    t.values <- vs
  end;
  t.times.(t.count) <- time;
  t.values.(t.count) <- v;
  t.count <- t.count + 1

let length t = t.count
let name t = t.name

let points t = Array.init t.count (fun i -> (t.times.(i), t.values.(i)))

let last t = if t.count = 0 then None else Some (t.times.(t.count - 1), t.values.(t.count - 1))

let max_value t =
  if t.count = 0 then None
  else begin
    let m = ref t.values.(0) in
    for i = 1 to t.count - 1 do
      if t.values.(i) > !m then m := t.values.(i)
    done;
    Some !m
  end

let downsample t ~buckets =
  if buckets <= 0 then invalid_arg "Timeseries.downsample: buckets must be positive";
  if t.count = 0 then [||]
  else begin
    let t0 = t.times.(0) and t1 = t.times.(t.count - 1) in
    let span = Float.max (t1 -. t0) epsilon_float in
    let sums = Array.make buckets 0.0 and counts = Array.make buckets 0 in
    for i = 0 to t.count - 1 do
      let b = min (buckets - 1) (int_of_float ((t.times.(i) -. t0) /. span *. float_of_int buckets)) in
      sums.(b) <- sums.(b) +. t.values.(i);
      counts.(b) <- counts.(b) + 1
    done;
    let out = ref [] in
    for b = buckets - 1 downto 0 do
      if counts.(b) > 0 then begin
        let mid = t0 +. ((float_of_int b +. 0.5) /. float_of_int buckets *. span) in
        out := (mid, sums.(b) /. float_of_int counts.(b)) :: !out
      end
    done;
    Array.of_list !out
  end

let pp_ascii ?(width = 60) ?(height = 12) fmt t =
  if t.count = 0 then Format.fprintf fmt "%s: (empty series)@." t.name
  else begin
    let pts = downsample t ~buckets:width in
    let vmax = Array.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 pts in
    let vmax = if vmax <= 0.0 then 1.0 else vmax in
    Format.fprintf fmt "%s (max=%.4g)@." t.name vmax;
    for row = height - 1 downto 0 do
      let threshold = float_of_int row /. float_of_int height *. vmax in
      let line =
        String.concat ""
          (Array.to_list (Array.map (fun (_, v) -> if v > threshold then "#" else " ") pts))
      in
      Format.fprintf fmt "|%s@." line
    done;
    Format.fprintf fmt "+%s@." (String.make (Array.length pts) '-')
  end
