type t = {
  sim : Sim.t;
  mutable busy_until : float;
  mutable completed : int;
  mutable busy_seconds : float;
}

let create sim () = { sim; busy_until = 0.0; completed = 0; busy_seconds = 0.0 }

let submit t ~cost k =
  if cost < 0.0 || Float.is_nan cost then invalid_arg "Work_queue.submit: bad cost";
  let now = Sim.now t.sim in
  let start = Float.max now t.busy_until in
  let finish = start +. cost in
  t.busy_until <- finish;
  t.busy_seconds <- t.busy_seconds +. cost;
  ignore
    (Sim.schedule t.sim ~delay:(finish -. now) (fun () ->
         t.completed <- t.completed + 1;
         k ()))

let busy_until t = t.busy_until
let queue_delay t = Float.max 0.0 (t.busy_until -. Sim.now t.sim)
let completed t = t.completed
let busy_seconds t = t.busy_seconds

let utilization t ~now = if now <= 0.0 then 0.0 else Float.min 1.0 (t.busy_seconds /. now)
