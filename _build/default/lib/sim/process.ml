module Prng = Secrep_crypto.Prng

type t = {
  sim : Sim.t;
  period : float;
  jitter : float;
  rng : Prng.t option;
  action : unit -> unit;
  mutable running : bool;
  mutable fired : int;
  mutable next : Sim.handle option;
}

let interval t =
  match (t.rng, t.jitter) with
  | Some rng, j when j > 0.0 -> t.period +. ((Prng.float rng -. 0.5) *. 2.0 *. j)
  | _ -> t.period

let rec arm t delay =
  t.next <-
    Some
      (Sim.schedule t.sim ~delay (fun () ->
           if t.running then begin
             t.fired <- t.fired + 1;
             t.action ();
             (* The action may have stopped us. *)
             if t.running then arm t (interval t)
           end))

let periodic sim ~period ?(jitter = 0.0) ?rng ?(start_delay = 0.0) action =
  if period <= 0.0 then invalid_arg "Process.periodic: period must be positive";
  if jitter < 0.0 || jitter >= period then invalid_arg "Process.periodic: jitter out of range";
  if jitter > 0.0 && rng = None then invalid_arg "Process.periodic: jitter requires an rng";
  let t = { sim; period; jitter; rng; action; running = true; fired = 0; next = None } in
  arm t start_delay;
  t

let stop t =
  if t.running then begin
    t.running <- false;
    match t.next with
    | Some h ->
      Sim.cancel t.sim h;
      t.next <- None
    | None -> ()
  end

let is_running t = t.running
let fired t = t.fired
