(** A single-threaded simulated CPU.

    Servers execute queries sequentially: submitted work starts when
    the previous item finishes, so queueing delay emerges naturally
    under load.  Completion callbacks run at the simulated finish
    time. *)

type t

val create : Sim.t -> unit -> t

val submit : t -> cost:float -> (unit -> unit) -> unit
(** [submit q ~cost k] enqueues work taking [cost] seconds and calls
    [k] when it completes.  Negative cost raises [Invalid_argument]. *)

val busy_until : t -> float
(** Simulated time at which currently queued work drains. *)

val queue_delay : t -> float
(** How long newly submitted work would wait before starting. *)

val completed : t -> int
val busy_seconds : t -> float
(** Total simulated compute charged so far. *)

val utilization : t -> now:float -> float
(** [busy_seconds / now]; 0 before time advances. *)
