(** The discrete-event simulation engine.

    A simulation owns a virtual clock and an event queue of thunks.
    Everything in the system — network delivery, protocol timers,
    client think time — is a scheduled thunk; running the simulation
    pops thunks in time order and executes them, which may schedule
    more.  Time only advances between events, so a run is fully
    deterministic given the PRNG seeds. *)

type t

type handle = Event_queue.handle
(** Cancellation handle for a scheduled event. *)

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule sim ~delay f] runs [f] at [now + delay].  A negative
    delay raises [Invalid_argument]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant; [time] must not precede [now]. *)

val cancel : t -> handle -> unit

val pending : t -> int
(** Number of live events still queued. *)

val step : t -> bool
(** Execute the next event.  [false] when the queue is empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the queue.  With [until], stops once the next event would
    fire after [until] and advances the clock exactly to [until]; with
    [max_events], stops after that many events (guard against
    run-away protocols). *)

val executed_events : t -> int
(** Total events executed so far; cheap progress metric. *)
