(** Priority queue of timed events: a binary min-heap ordered by
    (time, insertion sequence), so simultaneous events fire in the
    order they were scheduled — a property several protocol tests rely
    on. *)

type 'a t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> handle
(** Raises [Invalid_argument] on NaN time. *)

val cancel : 'a t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op.
    Cancelled events are dropped lazily on pop. *)

val pop : 'a t -> (float * 'a) option
(** Earliest live event, or [None] when the queue has no live events. *)

val peek_time : 'a t -> float option
(** Time of the earliest live event without removing it. *)
