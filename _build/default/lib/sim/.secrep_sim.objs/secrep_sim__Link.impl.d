lib/sim/link.ml: Latency Secrep_crypto Sim
