lib/sim/latency.ml: Array Float Secrep_crypto
