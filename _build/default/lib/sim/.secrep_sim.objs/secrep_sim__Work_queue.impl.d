lib/sim/work_queue.ml: Float Sim
