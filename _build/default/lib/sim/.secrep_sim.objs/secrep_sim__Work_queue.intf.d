lib/sim/work_queue.mli: Sim
