lib/sim/sim.mli: Event_queue
