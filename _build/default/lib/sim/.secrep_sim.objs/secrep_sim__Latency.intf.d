lib/sim/latency.mli: Secrep_crypto
