lib/sim/stats.mli: Format Histogram
