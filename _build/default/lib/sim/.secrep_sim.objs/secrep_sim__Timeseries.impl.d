lib/sim/timeseries.ml: Array Float Format String
