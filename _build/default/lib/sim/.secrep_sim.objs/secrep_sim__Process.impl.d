lib/sim/process.ml: Secrep_crypto Sim
