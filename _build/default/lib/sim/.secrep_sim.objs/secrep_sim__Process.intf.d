lib/sim/process.mli: Secrep_crypto Sim
