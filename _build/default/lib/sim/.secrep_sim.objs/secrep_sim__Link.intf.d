lib/sim/link.mli: Latency Secrep_crypto Sim
