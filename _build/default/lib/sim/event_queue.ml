type 'a entry = {
  time : float;
  seq : int;
  payload : 'a;
  mutable live : bool;
}

type handle = H : 'a entry -> handle

type 'a t = {
  mutable heap : 'a entry array;
  mutable count : int;
  mutable next_seq : int;
  mutable live_count : int;
}

let create () = { heap = [||]; count = 0; next_seq = 0; live_count = 0 }

let is_empty q = q.live_count = 0
let size q = q.live_count

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.count && before q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.count && before q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let ensure_capacity q seed =
  let cap = Array.length q.heap in
  if q.count = cap then begin
    let fresh = Array.make (max 16 (2 * cap)) seed in
    Array.blit q.heap 0 fresh 0 q.count;
    q.heap <- fresh
  end

let push q ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let entry = { time; seq = q.next_seq; payload; live = true } in
  q.next_seq <- q.next_seq + 1;
  ensure_capacity q entry;
  q.heap.(q.count) <- entry;
  q.count <- q.count + 1;
  q.live_count <- q.live_count + 1;
  sift_up q (q.count - 1);
  H entry

let cancel q (H entry) =
  (* The handle is only usable with the queue the entry came from; the
     payload type is existential so we just flip the flag. *)
  if entry.live then begin
    entry.live <- false;
    q.live_count <- q.live_count - 1
  end

let rec pop q =
  if q.count = 0 then None
  else begin
    let top = q.heap.(0) in
    q.count <- q.count - 1;
    if q.count > 0 then begin
      q.heap.(0) <- q.heap.(q.count);
      sift_down q 0
    end;
    if top.live then begin
      top.live <- false;
      q.live_count <- q.live_count - 1;
      Some (top.time, top.payload)
    end
    else pop q
  end

let rec peek_time q =
  if q.count = 0 then None
  else begin
    let top = q.heap.(0) in
    if top.live then Some top.time
    else begin
      (* Drop the dead head and retry. *)
      q.count <- q.count - 1;
      if q.count > 0 then begin
        q.heap.(0) <- q.heap.(q.count);
        sift_down q 0
      end;
      peek_time q
    end
  end
