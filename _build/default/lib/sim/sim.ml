type handle = Event_queue.handle

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : float;
  mutable executed : int;
}

let create () = { queue = Event_queue.create (); clock = 0.0; executed = 0 }

let now sim = sim.clock

let schedule_at sim ~time f =
  if time < sim.clock then invalid_arg "Sim.schedule_at: time in the past";
  Event_queue.push sim.queue ~time f

let schedule sim ~delay f =
  if delay < 0.0 || Float.is_nan delay then invalid_arg "Sim.schedule: negative delay";
  schedule_at sim ~time:(sim.clock +. delay) f

let cancel sim handle = Event_queue.cancel sim.queue handle

let pending sim = Event_queue.size sim.queue

let step sim =
  match Event_queue.pop sim.queue with
  | None -> false
  | Some (time, f) ->
    assert (time >= sim.clock);
    sim.clock <- time;
    sim.executed <- sim.executed + 1;
    f ();
    true

let run ?until ?max_events sim =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match until with
    | Some limit -> begin
      match Event_queue.peek_time sim.queue with
      | Some t when t <= limit ->
        ignore (step sim);
        decr budget
      | Some _ | None ->
        sim.clock <- max sim.clock limit;
        continue := false
    end
    | None ->
      if step sim then decr budget else continue := false
  done

let executed_events sim = sim.executed
