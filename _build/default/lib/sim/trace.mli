(** Bounded in-memory event trace.

    Protocol components append human-readable records; tests assert on
    them and failed experiment runs dump the tail.  The buffer is a
    ring so long simulations cannot exhaust memory. *)

type t

type record = { time : float; source : string; event : string }

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 records. *)

val log : t -> time:float -> source:string -> string -> unit
val size : t -> int
val total_logged : t -> int

val to_list : t -> record list
(** Oldest first (of what is still retained). *)

val find : t -> f:(record -> bool) -> record option
val count_matching : t -> f:(record -> bool) -> int
val pp_tail : ?n:int -> Format.formatter -> t -> unit
