(** Periodic background activities (keep-alive broadcasts, audit
    sweeps, workload ticks) expressed over {!Sim}. *)

type t

val periodic :
  Sim.t ->
  period:float ->
  ?jitter:float ->
  ?rng:Secrep_crypto.Prng.t ->
  ?start_delay:float ->
  (unit -> unit) ->
  t
(** [periodic sim ~period f] runs [f] every [period] seconds.  With
    [jitter] (and an [rng]), each interval is perturbed uniformly by
    up to [+-jitter] seconds, which avoids the lock-step artefacts of
    perfectly synchronised timers.  Raises [Invalid_argument] unless
    [0 <= jitter < period]. *)

val stop : t -> unit
(** Stops future firings; idempotent. *)

val is_running : t -> bool
val fired : t -> int
