(** Append-only (time, value) series for experiment plots such as the
    auditor-backlog-over-a-day curve. *)

type t

val create : ?name:string -> unit -> t

val record : t -> time:float -> float -> unit
(** Times must be non-decreasing; raises [Invalid_argument] otherwise. *)

val length : t -> int
val name : t -> string
val points : t -> (float * float) array

val last : t -> (float * float) option
val max_value : t -> float option

val downsample : t -> buckets:int -> (float * float) array
(** Mean value per equal-width time bucket over the recorded span;
    empty buckets are skipped.  Used to print compact series. *)

val pp_ascii : ?width:int -> ?height:int -> Format.formatter -> t -> unit
(** Rough ASCII plot, for the experiment harness output. *)
