(* Quickstart: bring up a small replicated system, write through the
   trusted masters, read through an untrusted slave, and look inside
   the pledge packet that makes the read verifiable.

   Run with: dune exec examples/quickstart.exe *)

module System = Secrep_core.System
module Client = Secrep_core.Client
module Oplog = Secrep_store.Oplog
module Query = Secrep_store.Query
module Query_result = Secrep_store.Query_result
module Document = Secrep_store.Document
module Value = Secrep_store.Value

let () =
  (* One content set, 2 masters, 2 slaves each, 3 clients. *)
  let system =
    System.create ~n_masters:2 ~slaves_per_master:2 ~n_clients:3 ~seed:7L ()
  in
  Printf.printf "content id: %s\n" (System.content_id system);
  Printf.printf "client 0 is connected to master %d and slave %d\n"
    (System.master_of_client system 0)
    (System.slave_of_client system 0);

  (* Load a little catalogue. *)
  System.load_content system
    [
      ("fruit:apple", Document.of_fields [ ("price", Value.Float 1.2); ("stock", Value.Int 10) ]);
      ("fruit:banana", Document.of_fields [ ("price", Value.Float 0.5); ("stock", Value.Int 40) ]);
      ("fruit:cherry", Document.of_fields [ ("price", Value.Float 4.0); ("stock", Value.Int 7) ]);
    ];

  (* A write goes to the client's master, is totally ordered across the
     master set, and lazily propagates to the slaves. *)
  System.write system ~client:0
    (Oplog.Set_field { key = "fruit:apple"; field = "price"; value = Value.Float 1.5 })
    ~on_done:(fun ack ->
      match ack with
      | Secrep_core.Master.Committed { version } ->
        Printf.printf "write committed at content version %d\n" version
      | Secrep_core.Master.Denied reason -> Printf.printf "write denied: %s\n" reason);
  System.run_for system 30.0;

  (* Reads are served by the slave, each with a signed pledge. *)
  let pending = ref 0 in
  let issue client query describe =
    incr pending;
    System.read system ~client query ~on_done:(fun report ->
        decr pending;
        match report.Client.outcome with
        | `Accepted result ->
          Printf.printf "%s -> %s (version %d, %.0f ms%s)\n" describe
            (Format.asprintf "%a" Query_result.pp result)
            report.Client.version
            (report.Client.latency *. 1000.0)
            (if report.Client.double_checked then ", double-checked with the master" else "")
        | `Served_by_master result ->
          Printf.printf "%s -> %s (served by the master)\n" describe
            (Format.asprintf "%a" Query_result.pp result)
        | `Gave_up -> Printf.printf "%s -> gave up\n" describe)
  in
  issue 0 (Query.point_read "fruit:apple") "point read of fruit:apple";
  issue 1 (Query.grep "an") "grep 'an' over everything";
  issue 2
    (Query.Aggregate { from = Query.All; where = Query.True; agg = Query.Sum "stock" })
    "sum of stock";
  System.run_for system 30.0;
  assert (!pending = 0);

  (* Every accepted read forwarded a pledge; let the auditor drain. *)
  System.run_for system 30.0;
  let auditor = System.auditor system in
  Printf.printf "auditor: %d pledges audited, backlog %d, caught %d\n"
    (Secrep_core.Auditor.audited auditor)
    (Secrep_core.Auditor.backlog auditor)
    (Secrep_core.Auditor.caught auditor);
  Printf.printf "oracle version: %d\n" (System.oracle_version system);
  print_endline "quickstart OK"
