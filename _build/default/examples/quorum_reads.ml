(* Quorum reads and collusion (§4, second variant).

   Instead of trusting a single slave, the client sends each read to k
   slaves.  If all k answers agree it proceeds as usual; any
   disagreement triggers an automatic master double-check that convicts
   the liars on the spot.  Defeating the scheme requires k slaves to
   collude on the same wrong answer — and even then the periodic
   double-check eventually lands.

   Run with: dune exec examples/quorum_reads.exe *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Client = Secrep_core.Client
module Fault = Secrep_core.Fault
module Corrective = Secrep_core.Corrective
module Sim = Secrep_sim.Sim
module Stats = Secrep_sim.Stats
module Prng = Secrep_crypto.Prng
module Query = Secrep_store.Query
module Catalog = Secrep_workload.Catalog

let run_phase system ~label ~mode ~n =
  let accepted = ref 0 and wrong = ref 0 in
  for i = 0 to n - 1 do
    ignore
      (Sim.schedule (System.sim system) ~delay:(0.3 *. float_of_int i) (fun () ->
           System.read system ~client:(i mod System.n_clients system) ~mode
             (Query.point_read (Printf.sprintf "product:%05d" (i mod 100)))
             ~on_done:(fun r ->
               match r.Client.outcome with
               | `Accepted result ->
                 incr accepted;
                 let digest = Secrep_store.Canonical.result_digest result in
                 (match
                    System.check_result system ~version:r.Client.version r.Client.query
                      ~digest
                  with
                 | Some false -> incr wrong
                 | Some true | None -> ())
               | `Served_by_master _ | `Gave_up -> ())))
  done;
  System.run_for system (0.3 *. float_of_int n +. 60.0);
  Printf.printf "%-34s accepted %3d/%3d, wrong %d, mismatches so far %d\n" label !accepted n
    !wrong
    (Stats.get (System.stats system) "client.quorum_mismatches")

let () =
  let config =
    {
      Config.default with
      Config.max_latency = 5.0;
      keepalive_period = 1.0;
      double_check_probability = 0.02;
      audit_enabled = false (* isolate the quorum mechanism *);
    }
  in
  let system =
    System.create ~n_masters:1 ~slaves_per_master:4 ~n_clients:4 ~config ~seed:99L ()
  in
  let g = Prng.create ~seed:100L in
  System.load_content system (Catalog.product_catalog g ~n:100);
  print_endline "phase 1: all four slaves honest, k=2 quorum reads";
  run_phase system ~label:"honest, k=2" ~mode:(Client.Quorum 2) ~n:50;

  print_endline "\nphase 2: two slaves collude on identical wrong answers";
  System.set_slave_behavior system ~slave:0
    (Fault.Malicious { probability = 1.0; mode = Fault.Collude "cartel"; from_time = 0.0 });
  System.set_slave_behavior system ~slave:1
    (Fault.Malicious { probability = 1.0; mode = Fault.Collude "cartel"; from_time = 0.0 });
  run_phase system ~label:"2 colluders, k=2" ~mode:(Client.Quorum 2) ~n:50;
  Printf.printf "excluded so far: %s\n"
    (String.concat ","
       (List.map string_of_int (Corrective.excluded (System.corrective system))));

  print_endline "\nphase 3: same cartel, but k=3 — an honest slave always disagrees";
  run_phase system ~label:"2 colluders, k=3" ~mode:(Client.Quorum 3) ~n:50;
  let excluded = Corrective.excluded (System.corrective system) in
  Printf.printf "excluded after k=3 phase: %s\n"
    (String.concat "," (List.map string_of_int excluded));
  print_endline "quorum_reads OK"
