examples/quorum_reads.ml: List Printf Secrep_core Secrep_crypto Secrep_sim Secrep_store Secrep_workload String
