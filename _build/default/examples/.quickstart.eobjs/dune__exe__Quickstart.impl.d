examples/quickstart.ml: Format Printf Secrep_core Secrep_store
