examples/medical_db.ml: List Printf Secrep_core Secrep_crypto Secrep_sim Secrep_store Secrep_workload
