examples/quorum_reads.mli:
