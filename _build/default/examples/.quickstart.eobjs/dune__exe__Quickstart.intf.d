examples/quickstart.mli:
