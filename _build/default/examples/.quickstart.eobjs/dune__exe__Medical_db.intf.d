examples/medical_db.mli:
