examples/cdn_catalog.mli:
