(* Medical/academic reference database with security-levelled reads
   (§4, first variant).

   A hospital replicates a reference database over untrusted hosts.
   Routine literature searches are "normal" reads (fast, slave-served,
   statistically checked).  Dosage lookups are "security sensitive":
   they execute only on trusted masters, so they are always correct
   even while a compromised replica is actively lying.  Intermediate
   levels scale the double-check probability.

   Run with: dune exec examples/medical_db.exe *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Client = Secrep_core.Client
module Security_level = Secrep_core.Security_level
module Fault = Secrep_core.Fault
module Sim = Secrep_sim.Sim
module Stats = Secrep_sim.Stats
module Prng = Secrep_crypto.Prng
module Query = Secrep_store.Query
module Value = Secrep_store.Value
module Document = Secrep_store.Document
module Catalog = Secrep_workload.Catalog

let () =
  let config =
    {
      Config.default with
      Config.max_latency = 5.0;
      keepalive_period = 1.0;
      double_check_probability = 0.02;
    }
  in
  let system =
    System.create ~n_masters:2 ~slaves_per_master:3 ~n_clients:6 ~config ~seed:77L ()
  in
  let g = Prng.create ~seed:78L in
  let articles = Catalog.reference_db g ~n:300 in
  let dosages =
    List.init 20 (fun i ->
        ( Printf.sprintf "dosage:%03d" i,
          Document.of_fields
            [
              ("drug", Value.String (Printf.sprintf "compound-%d" i));
              ("max_mg_per_kg", Value.Float (0.5 +. (0.25 *. float_of_int i)));
            ] ))
  in
  System.load_content system (articles @ dosages);
  Printf.printf "loaded %d articles and %d dosage records\n" (List.length articles)
    (List.length dosages);

  (* Every replica the client can reach is compromised — the worst
     case for normal reads. *)
  for s = 0 to System.n_slaves system - 1 do
    System.set_slave_behavior system ~slave:s
      (Fault.Malicious { probability = 0.5; mode = Fault.Corrupt_result; from_time = 0.0 })
  done;
  print_endline "every replica lies on 50% of queries (worst case)";

  let sensitive_wrong = ref 0 and sensitive_done = ref 0 in
  let normal_done = ref 0 in
  (* Dosage lookups: sensitive. *)
  for i = 0 to 19 do
    ignore
      (Sim.schedule (System.sim system) ~delay:(1.0 *. float_of_int i) (fun () ->
           System.read system ~client:(i mod 6) ~level:Security_level.Sensitive
             (Query.point_read (Printf.sprintf "dosage:%03d" i))
             ~on_done:(fun r ->
               incr sensitive_done;
               match r.Client.outcome with
               | `Served_by_master _ -> ()
               | `Accepted _ | `Gave_up -> incr sensitive_wrong)))
  done;
  (* Literature searches: normal and leveled. *)
  for i = 0 to 59 do
    let level =
      match i mod 3 with
      | 0 -> Security_level.Normal
      | 1 -> Security_level.Leveled 1
      | _ -> Security_level.Leveled 2
    in
    ignore
      (Sim.schedule (System.sim system) ~delay:(0.5 *. float_of_int i) (fun () ->
           System.read system ~client:(i mod 6) ~level
             (Query.grep ~under:"article:" "replication")
             ~on_done:(fun _ -> incr normal_done)))
  done;
  System.run_for system 400.0;

  Printf.printf "\nsensitive dosage lookups: %d/20 served by trusted masters, %d anomalies\n"
    !sensitive_done !sensitive_wrong;
  Printf.printf "normal/leveled searches completed: %d/60\n" !normal_done;
  let stats = System.stats system in
  Printf.printf "double-checks: %d (leveled reads check more often)\n"
    (Stats.get stats "client.double_checks");
  Printf.printf "wrong answers accepted on normal reads: %d (caught by checks/audit: %d slaves excluded)\n"
    (Stats.get stats "system.accepted_wrong")
    (Stats.get stats "system.slaves_excluded");
  Printf.printf "wrong answers on SENSITIVE reads: %d (must be 0)\n" !sensitive_wrong;
  assert (!sensitive_wrong = 0);
  print_endline "medical_db OK"
