(* CDN product catalogue — the paper's motivating scenario (§6).

   An e-commerce catalogue is replicated over a content delivery
   network: trusted master servers run by the store, marginally
   trusted edge (slave) servers run by the CDN.  One edge node is
   compromised and starts returning wrong prices.  We watch the
   protocol catch it: an incriminating pledge gets the slave excluded
   and its clients re-homed.

   Run with: dune exec examples/cdn_catalog.exe *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Fault = Secrep_core.Fault
module Corrective = Secrep_core.Corrective
module Auditor = Secrep_core.Auditor
module Sim = Secrep_sim.Sim
module Prng = Secrep_crypto.Prng
module Catalog = Secrep_workload.Catalog
module Mix = Secrep_workload.Mix
module Driver = Secrep_workload.Driver

let () =
  let config =
    {
      Config.default with
      Config.max_latency = 5.0;
      keepalive_period = 1.0;
      double_check_probability = 0.05;
    }
  in
  let system =
    System.create ~n_masters:2 ~slaves_per_master:4 ~n_clients:8 ~config ~seed:2003L ()
  in
  let g = Prng.create ~seed:42L in
  let catalog = Catalog.product_catalog g ~n:500 in
  System.load_content system catalog;
  Printf.printf "catalogue: %d products on %d edge servers (2 masters, 1 auditor)\n"
    (List.length catalog) (System.n_slaves system);

  (* A hacked edge server starts lying 60 seconds in. *)
  let hacked = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:hacked
    (Fault.Malicious { probability = 0.3; mode = Fault.Corrupt_result; from_time = 60.0 });
  Printf.printf "edge server %d is compromised from t=60s (lies on 30%% of queries)\n" hacked;

  (* Shoppers browse: Zipf-popular product pages, category scans, the
     occasional storewide search; the store occasionally reprices. *)
  let keys = Array.of_list (List.map fst catalog) in
  let mix = Mix.create ~rng:(Prng.split g) ~keys () in
  let driver = Driver.create system ~mix ~rng:(Prng.split g) () in
  Driver.run_reads driver ~rate:20.0 ~duration:300.0;
  Driver.run_writes driver ~rate:0.05 ~duration:300.0 ~writer:1;
  System.run_for system 500.0;

  let summary = Driver.summary driver in
  Printf.printf "\n--- after %.0f simulated seconds ---\n" (Sim.now (System.sim system));
  Printf.printf "reads completed: %d (accepted %d, gave up %d)\n"
    summary.Driver.reads_completed summary.Driver.reads_accepted summary.Driver.reads_gave_up;
  Printf.printf "mean read latency: %.1f ms (p99 %.1f ms)\n"
    (1000.0 *. summary.Driver.mean_latency)
    (1000.0 *. summary.Driver.p99_latency);
  Printf.printf "double-checks sent to masters: %d\n" summary.Driver.double_checks;
  Printf.printf "wrong prices accepted before detection: %d\n" summary.Driver.accepted_wrong;

  (match Corrective.first_detection (System.corrective system) ~slave_id:hacked with
  | Some e ->
    Printf.printf "edge server %d excluded at t=%.1fs (%s discovery), %d clients re-homed\n"
      hacked e.Corrective.time
      (match e.Corrective.discovery with
      | Corrective.Immediate -> "immediate: client double-check"
      | Corrective.Delayed -> "delayed: background audit")
      e.Corrective.clients_reassigned
  | None -> Printf.printf "edge server %d was NOT caught (unexpected)\n" hacked);

  let auditor = System.auditor system in
  Printf.printf "auditor: %d pledges audited, %d cache hits, backlog %d\n"
    (Auditor.audited auditor)
    (Secrep_store.Result_cache.hits (Auditor.cache auditor))
    (Auditor.backlog auditor);
  Printf.printf "reads after exclusion keep flowing through the remaining %d edges\n"
    (System.n_slaves system
    - List.length (Corrective.currently_excluded (System.corrective system)));

  (* The CDN operator re-images the hacked box; the owner ships it a
     fresh checkpoint and readmits it (§3.5). *)
  (match System.readmit_slave system ~slave_id:hacked with
  | Ok () ->
    Printf.printf "edge server %d re-imaged, checkpointed and readmitted (history kept: %b)\n"
      hacked
      (Corrective.is_excluded (System.corrective system) ~slave_id:hacked)
  | Error msg -> Printf.printf "readmission failed: %s\n" msg);
  System.run_for system 30.0;
  print_endline "cdn_catalog OK"
