(** Shared plumbing for the experiment harness: table rendering,
    standard system builders and workload helpers. *)

val fprintf_row : Format.formatter -> widths:int list -> string list -> unit

val table :
  Format.formatter -> title:string -> header:string list -> string list list -> unit
(** Render an aligned ASCII table with a title line. *)

val f2 : float -> string
(** Two-decimal rendering. *)

val f3 : float -> string
val pct : float -> string
(** "12.3%". *)

val base_config : Secrep_core.Config.t
(** The configuration experiments start from: max_latency 5s,
    keep-alive 1s, p = 0.05, audit on. *)

val build_system :
  ?config:Secrep_core.Config.t ->
  ?n_masters:int ->
  ?slaves_per_master:int ->
  ?n_clients:int ->
  ?seed:int64 ->
  ?n_items:int ->
  ?client_max_latency:(int -> float option) ->
  unit ->
  Secrep_core.System.t * string array
(** A system pre-loaded with a product catalogue; returns the loaded
    keys for workload generation. *)

val drain : Secrep_core.System.t -> extra:float -> unit
(** Run the simulation for [extra] more virtual seconds. *)

val mean : float list -> float
val quick_factor : bool -> float
(** Scale factor for run lengths: 1.0 normally, smaller when --quick. *)
