bench/micro.ml: Analyze Bechamel Benchmark Format Hashtbl Instance Lazy List Measure Printf Secrep_core Secrep_crypto Secrep_sim Secrep_store Secrep_workload Staged String Test Time Toolkit
