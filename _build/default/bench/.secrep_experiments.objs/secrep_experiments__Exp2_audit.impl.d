bench/exp2_audit.ml: Exp_common Int64 List Printf Secrep_core Secrep_crypto Secrep_sim Secrep_store Secrep_workload
