bench/exp5_writes.ml: Array Exp_common Float Int64 List Secrep_core Secrep_crypto Secrep_sim Secrep_store
