bench/exp_common.ml: Array Format Int64 List Printf Secrep_core Secrep_crypto Secrep_workload String
