bench/exp9_ablation.ml: Array Exp_common Float Int64 List Secrep_core Secrep_crypto Secrep_sim Secrep_store Secrep_workload
