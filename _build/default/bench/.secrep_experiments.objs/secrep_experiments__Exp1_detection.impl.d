bench/exp1_detection.ml: Exp_common Fun Int64 List Printf Secrep_core Secrep_crypto Secrep_sim Secrep_store Secrep_workload
