bench/exp_common.mli: Format Secrep_core
