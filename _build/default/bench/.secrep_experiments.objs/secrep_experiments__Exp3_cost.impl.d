bench/exp3_cost.ml: Array Exp_common Int64 List Printf Secrep_baselines Secrep_core Secrep_crypto Secrep_sim Secrep_workload
