bench/exp4_staleness.ml: Array Exp_common List Printf Secrep_core Secrep_crypto Secrep_sim Secrep_store Secrep_workload
