bench/exp6_auditor.ml: Array Exp_common Float Format List Option Secrep_core Secrep_crypto Secrep_sim Secrep_store Secrep_workload String Unix
