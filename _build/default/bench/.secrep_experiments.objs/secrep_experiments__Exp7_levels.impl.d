bench/exp7_levels.ml: Exp_common Int64 List Secrep_core Secrep_crypto Secrep_sim Secrep_workload
