(* E1 — Probabilistic checking catches a liar in ~1/p reads (§3.3).

   A slave lies on every read; the audit channel is disabled so only
   client double-checks can catch it.  For each double-check
   probability p we count how many reads the malicious slave serves
   before a client catches it red-handed, and compare the sample mean
   with the geometric expectation 1/p. *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Client = Secrep_core.Client
module Fault = Secrep_core.Fault
module Corrective = Secrep_core.Corrective
module Sim = Secrep_sim.Sim
module Query = Secrep_store.Query

let reads_until_detection ~p ~seed =
  let config =
    {
      Exp_common.base_config with
      Config.double_check_probability = p;
      audit_enabled = false;
      (* LAN latencies keep each sequential read cheap; the metric is a
         count, not a time. *)
      max_latency = 5.0;
    }
  in
  let system =
    System.create ~n_masters:2 ~slaves_per_master:2 ~n_clients:2 ~config
      ~net:System.lan_net ~seed ()
  in
  let g = Secrep_crypto.Prng.create ~seed:(Int64.add seed 77L) in
  System.load_content system (Secrep_workload.Catalog.product_catalog g ~n:50);
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 });
  let cap = int_of_float (20.0 /. p) + 50 in
  let count = ref 0 in
  let caught_at = ref None in
  let rec issue () =
    if !caught_at = None && !count < cap then begin
      incr count;
      System.read system ~client:0
        (Query.point_read (Printf.sprintf "product:%05d" (!count mod 50)))
        ~on_done:(fun r ->
          (match r.Client.caught_slave with
          | Some s when s = victim -> caught_at := Some !count
          | Some _ | None ->
            if Corrective.is_excluded (System.corrective system) ~slave_id:victim then
              caught_at := Some !count);
          if !caught_at = None && !count < cap then
            ignore (Sim.schedule (System.sim system) ~delay:0.01 (fun () -> issue ())))
    end
  in
  issue ();
  (* Each sequential read costs ~16ms of virtual time; stop as soon as
     the slave is caught (or the cap is reached) rather than simulating
     the idle keep-alive tail. *)
  let deadline = (0.1 *. float_of_int cap) +. 120.0 in
  while !caught_at = None && !count < cap && Sim.now (System.sim system) < deadline do
    System.run_for system 5.0
  done;
  System.run_for system 2.0;
  !caught_at

let run ?(quick = false) fmt =
  let trials = if quick then 15 else 40 in
  let ps = [ 0.01; 0.02; 0.05; 0.1; 0.2; 0.5 ] in
  let rows =
    List.mapi
      (fun pi p ->
        let samples =
          List.filter_map
            (fun i ->
              (* Decorrelate trials across the p sweep: sharing seeds
                 between p values correlates the early double-check
                 rolls and biases the whole column the same way. *)
              reads_until_detection ~p ~seed:(Int64.of_int ((pi * 7919) + (i * 1009) + 1)))
            (List.init trials Fun.id)
        in
        let measured = Exp_common.mean (List.map float_of_int samples) in
        let expected = 1.0 /. p in
        [
          Printf.sprintf "%.3g" p;
          string_of_int (List.length samples);
          Exp_common.f2 measured;
          Exp_common.f2 expected;
          Exp_common.f2 (measured /. expected);
        ])
      ps
  in
  Exp_common.table fmt
    ~title:
      "E1  Reads served by a lying slave before detection vs double-check probability p\n\
      \    (audit disabled; expectation is the geometric mean 1/p)"
    ~header:[ "p"; "detected/trials"; "mean reads-to-catch"; "1/p"; "ratio" ]
    rows
