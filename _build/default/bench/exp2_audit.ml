(* E2 — The background audit guarantees eventual detection (§3.4).

   A slave lies on a fraction q of reads while the client double-check
   probability is low (p = 0.01).  Without the audit, detection is a
   coin flip per lie (probability p each); with the audit on, every
   lie that slips past the double-check is still caught, at the cost
   of a delay (the audit lag).  We report detection rate, discovery
   channel, detection delay and how many wrong answers were accepted
   before exclusion. *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Fault = Secrep_core.Fault
module Corrective = Secrep_core.Corrective
module Stats = Secrep_sim.Stats
module Sim = Secrep_sim.Sim
module Query = Secrep_store.Query

type outcome = {
  detected : bool;
  discovery : string;
  delay : float; (* first lie -> exclusion *)
  wrong_accepts : int;
}

let one_trial ~audit ~q ~seed =
  let config =
    {
      Exp_common.base_config with
      Config.double_check_probability = 0.01;
      audit_enabled = audit;
      max_latency = 2.0;
      keepalive_period = 0.5;
      audit_lag_slack = 0.5;
    }
  in
  let system =
    System.create ~n_masters:2 ~slaves_per_master:2 ~n_clients:4 ~config
      ~net:System.lan_net ~seed ()
  in
  let g = Secrep_crypto.Prng.create ~seed:(Int64.add seed 7L) in
  System.load_content system (Secrep_workload.Catalog.product_catalog g ~n:50);
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = q; mode = Fault.Corrupt_result; from_time = 0.0 });
  (* 300 reads from the victim's client over 60 virtual seconds. *)
  for i = 0 to 299 do
    ignore
      (Sim.schedule (System.sim system) ~delay:(0.2 *. float_of_int i) (fun () ->
           System.read system ~client:0
             (Query.point_read (Printf.sprintf "product:%05d" (i mod 50)))
             ~on_done:(fun _ -> ())))
  done;
  System.run_for system 300.0;
  let detection = Corrective.first_detection (System.corrective system) ~slave_id:victim in
  {
    detected = detection <> None;
    discovery =
      (match detection with
      | Some { Corrective.discovery = Corrective.Immediate; _ } -> "immediate"
      | Some { Corrective.discovery = Corrective.Delayed; _ } -> "delayed"
      | None -> "-");
    delay = (match detection with Some e -> e.Corrective.time | None -> nan);
    wrong_accepts = Stats.get (System.stats system) "system.accepted_wrong";
  }

let run ?(quick = false) fmt =
  let trials = if quick then 4 else 12 in
  let cases =
    [ (false, 0.05); (false, 0.2); (false, 1.0); (true, 0.05); (true, 0.2); (true, 1.0) ]
  in
  let rows =
    List.map
      (fun (audit, q) ->
        let outcomes =
          List.init trials (fun i -> one_trial ~audit ~q ~seed:(Int64.of_int ((i * 31) + 5)))
        in
        let detected = List.filter (fun o -> o.detected) outcomes in
        let delays = List.filter_map (fun o -> if o.detected then Some o.delay else None) outcomes in
        let wrong = List.map (fun o -> float_of_int o.wrong_accepts) outcomes in
        let immediate =
          List.length (List.filter (fun o -> o.discovery = "immediate") outcomes)
        in
        let delayed = List.length (List.filter (fun o -> o.discovery = "delayed") outcomes) in
        [
          (if audit then "on" else "off");
          Printf.sprintf "%.2g" q;
          Printf.sprintf "%d/%d" (List.length detected) trials;
          Printf.sprintf "%d/%d" immediate delayed;
          (if delays = [] then "-" else Exp_common.f2 (Exp_common.mean delays));
          Exp_common.f2 (Exp_common.mean wrong);
        ])
      cases
  in
  Exp_common.table fmt
    ~title:
      "E2  Eventual detection: audit on/off, slave lies on fraction q of reads\n\
      \    (p = 0.01; 300 reads; audit-on must reach 100% detection)"
    ~header:
      [ "audit"; "q"; "detected"; "imm/delayed"; "mean delay (s)"; "wrong accepts" ]
    rows
