module System = Secrep_core.System
module Config = Secrep_core.Config
module Prng = Secrep_crypto.Prng
module Catalog = Secrep_workload.Catalog

let fprintf_row fmt ~widths cells =
  let padded =
    List.map2
      (fun w cell ->
        let len = String.length cell in
        if len >= w then cell else cell ^ String.make (w - len) ' ')
      widths cells
  in
  Format.fprintf fmt "| %s |@." (String.concat " | " padded)

let table fmt ~title ~header rows =
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  let total = List.fold_left ( + ) 0 widths + (3 * List.length widths) + 1 in
  Format.fprintf fmt "@.%s@.%s@." title (String.make total '-');
  fprintf_row fmt ~widths header;
  Format.fprintf fmt "%s@." (String.make total '-');
  List.iter (fprintf_row fmt ~widths) rows;
  Format.fprintf fmt "%s@." (String.make total '-')

let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

let base_config =
  {
    Config.default with
    Config.max_latency = 5.0;
    keepalive_period = 1.0;
    double_check_probability = 0.05;
    audit_lag_slack = 1.0;
  }

let build_system ?(config = base_config) ?(n_masters = 2) ?(slaves_per_master = 3)
    ?(n_clients = 6) ?(seed = 1L) ?(n_items = 200) ?client_max_latency () =
  let system =
    System.create ~n_masters ~slaves_per_master ~n_clients ~config ~seed
      ?client_max_latency ()
  in
  let g = Prng.create ~seed:(Int64.add seed 1000L) in
  let content = Catalog.product_catalog g ~n:n_items in
  System.load_content system content;
  (system, Array.of_list (List.map fst content))

let drain system ~extra = System.run_for system extra

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let quick_factor quick = if quick then 0.25 else 1.0
