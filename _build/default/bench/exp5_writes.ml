(* E5 — Write throughput is capped at one commit per max_latency (§3.1).

   Clients offer writes at rate lambda; the race-condition rule spaces
   commits at least max_latency apart, so the achieved rate saturates
   at 1/max_latency and queueing delay explodes past the knee — which
   is why the paper restricts the architecture to read-dominated
   content. *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Master = Secrep_core.Master
module Sim = Secrep_sim.Sim
module Prng = Secrep_crypto.Prng
module Oplog = Secrep_store.Oplog
module Value = Secrep_store.Value
module Histogram = Secrep_sim.Histogram

let one_rate ~offered ~duration ~seed =
  let max_latency = 5.0 in
  let config =
    {
      Exp_common.base_config with
      Config.max_latency;
      keepalive_period = 1.0;
      double_check_probability = 0.0;
    }
  in
  let system, keys = Exp_common.build_system ~config ~seed ~n_items:50 () in
  let g = Prng.create ~seed:(Int64.add seed 31L) in
  let delays = Histogram.create () in
  let committed = ref 0 in
  (* Poisson write arrivals. *)
  let rec arm time i =
    let time = time +. Prng.exponential g ~mean:(1.0 /. offered) in
    if time <= duration then begin
      ignore
        (Sim.schedule (System.sim system) ~delay:time (fun () ->
             let issued_at = Sim.now (System.sim system) in
             System.write system ~client:(i mod System.n_clients system)
               (Oplog.Set_field
                  { key = keys.(i mod 50); field = "stock"; value = Value.Int i })
               ~on_done:(fun ack ->
                 match ack with
                 | Master.Committed _ ->
                   (* Only commits inside the measurement window count
                      toward the achieved rate; the drain tail exists
                      so queued writes still report their delay. *)
                   if Sim.now (System.sim system) <= duration then incr committed;
                   Histogram.add delays (Sim.now (System.sim system) -. issued_at)
                 | Master.Denied _ -> ())));
      arm time (i + 1)
    end
  in
  arm 0.0 0;
  (* Generous drain so queued writes commit. *)
  System.run_for system (duration +. (offered *. duration *. max_latency) +. 60.0);
  let achieved = float_of_int !committed /. duration in
  (achieved, delays, !committed)

let run ?(quick = false) fmt =
  let duration = if quick then 150.0 else 400.0 in
  let cap = 1.0 /. 5.0 in
  let rows =
    List.map
      (fun offered ->
        let achieved, delays, committed = one_rate ~offered ~duration ~seed:23L in
        [
          Exp_common.f3 offered;
          string_of_int committed;
          Exp_common.f3 achieved;
          Exp_common.f3 (Float.min offered cap);
          (if Histogram.is_empty delays then "-" else Exp_common.f2 (Histogram.mean delays));
          (if Histogram.is_empty delays then "-"
           else Exp_common.f2 (Histogram.percentile delays 95.0));
        ])
      [ 0.02; 0.05; 0.1; 0.15; 0.2; 0.3; 0.5 ]
  in
  Exp_common.table fmt
    ~title:
      "E5  Write throughput cap (max_latency = 5s => cap = 0.2 commits/s)\n\
      \    achieved rate must track min(offered, 0.2); delay blows up past the knee"
    ~header:
      [
        "offered (w/s)";
        "committed";
        "achieved (w/s)";
        "min(offered,cap)";
        "mean commit delay (s)";
        "p95 delay (s)";
      ]
    rows
