(* E8 — Multi-slave quorum reads force collusion (§4, second variant).

   m of the four slaves collude: they fabricate the *same* wrong
   answer (deterministic in a shared tag and the query).  The client
   sends each read to k slaves; on any disagreement it double-checks
   with the master automatically.  A wrong answer is accepted only
   when every contacted slave is a colluder *and* the probabilistic
   double-check did not fire — so the wrong-accept rate collapses as
   k grows past the collusion size, at the price of k executions per
   read. *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Client = Secrep_core.Client
module Fault = Secrep_core.Fault
module Stats = Secrep_sim.Stats
module Sim = Secrep_sim.Sim
module Prng = Secrep_crypto.Prng
module Query = Secrep_store.Query

let one_case ~k ~colluders ~n_reads ~seed =
  let config =
    {
      Exp_common.base_config with
      Config.double_check_probability = 0.05;
      audit_enabled = false;
      max_latency = 5.0;
      read_retry_limit = 4;
    }
  in
  let system =
    System.create ~n_masters:1 ~slaves_per_master:4 ~n_clients:4 ~config
      ~net:System.lan_net ~seed ()
  in
  let g = Prng.create ~seed:(Int64.add seed 11L) in
  System.load_content system (Secrep_workload.Catalog.product_catalog g ~n:60);
  (* Adversarial placement: the cartel compromises slaves that clients
     are actually connected to, starting with client 0's. *)
  let assigned =
    List.sort_uniq Int.compare
      (List.init (System.n_clients system) (System.slave_of_client system))
  in
  let all = List.init (System.n_slaves system) Fun.id in
  let preference = assigned @ List.filter (fun s -> not (List.mem s assigned)) all in
  List.iteri
    (fun i s ->
      if i < colluders then
        System.set_slave_behavior system ~slave:s
          (Fault.Malicious
             { probability = 1.0; mode = Fault.Collude "cartel"; from_time = 0.0 }))
    preference;
  let wrong = ref 0 and accepted = ref 0 and completed = ref 0 in
  for i = 0 to n_reads - 1 do
    ignore
      (Sim.schedule (System.sim system) ~delay:(0.25 *. float_of_int i) (fun () ->
           System.read system
             ~client:(i mod System.n_clients system)
             ~mode:(Client.Quorum k)
             (Query.point_read (Printf.sprintf "product:%05d" (i mod 60)))
             ~on_done:(fun r ->
               incr completed;
               match r.Client.outcome with
               | `Accepted result -> begin
                 incr accepted;
                 let digest = Secrep_store.Canonical.result_digest result in
                 match
                   System.check_result system ~version:r.Client.version r.Client.query
                     ~digest
                 with
                 | Some false -> incr wrong
                 | Some true | None -> ()
               end
               | `Served_by_master _ | `Gave_up -> ())))
  done;
  System.run_for system (0.25 *. float_of_int n_reads +. 120.0);
  let stats = System.stats system in
  ( !completed,
    !accepted,
    !wrong,
    Stats.get stats "client.quorum_mismatches",
    Stats.get stats "slave.reads_served" )

let run ?(quick = false) fmt =
  let n_reads = if quick then 60 else 200 in
  let cases =
    [ (1, 0); (1, 2); (2, 0); (2, 2); (2, 3); (3, 2); (3, 3) ]
  in
  let rows =
    List.map
      (fun (k, m) ->
        let completed, accepted, wrong, mismatches, slave_execs =
          one_case ~k ~colluders:m ~n_reads ~seed:59L
        in
        [
          string_of_int k;
          string_of_int m;
          Printf.sprintf "%d/%d" accepted completed;
          Exp_common.pct (float_of_int wrong /. float_of_int (max 1 completed));
          string_of_int mismatches;
          Exp_common.f2 (float_of_int slave_execs /. float_of_int (max 1 completed));
        ])
      cases
  in
  Exp_common.table fmt
    ~title:
      "E8  Quorum reads vs colluding slaves (4 slaves total, m collude with identical\n\
      \    answers, p = 0.05, audit off): wrong accepts need a full colluding quorum;\n\
      \    the cost is k untrusted executions per read"
    ~header:
      [ "k"; "colluders"; "accepted"; "wrong-accept %"; "mismatches"; "slave execs/read" ]
    rows
