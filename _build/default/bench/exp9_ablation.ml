(* E9 — Ablations of the design choices DESIGN.md calls out.

   (a) The auditor's result cache (§3.4 "cache results in the simplest
       case"): with the cache effectively disabled the auditor
       re-executes every pledge and its CPU-per-read multiplies.
   (b) Extra auditors (§3.4 "the solution is to either add extra
       auditors, or weaken the security guarantees"): sharding
       pledges over two auditors halves each one's load, where the
       alternative — audit_fraction < 1 — trades guarantees instead.
   (c) Greedy-client throttling (§3.3): without it, one abusive client
       can push unbounded double-check load onto its master. *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Auditor = Secrep_core.Auditor
module Stats = Secrep_sim.Stats
module Sim = Secrep_sim.Sim
module Work_queue = Secrep_sim.Work_queue
module Prng = Secrep_crypto.Prng
module Query = Secrep_store.Query
module Result_cache = Secrep_store.Result_cache
module Zipf = Secrep_workload.Zipf

(* -- (a) + (b): auditor cache and auditor count ----------------------- *)

let audit_run ~cache_capacity ~n_auditors ~audit_fraction ~n_reads ~seed =
  let config =
    {
      Exp_common.base_config with
      Config.double_check_probability = 0.0;
      audit_cache_capacity = cache_capacity;
      audit_fraction;
      per_doc_cost = 1e-3;
    }
  in
  let system =
    System.create ~n_masters:2 ~slaves_per_master:3 ~n_clients:6 ~n_auditors ~config
      ~seed ()
  in
  let g = Prng.create ~seed:(Int64.add seed 5L) in
  let content = Secrep_workload.Catalog.product_catalog g ~n:150 in
  System.load_content system content;
  let keys = Array.of_list (List.map fst content) in
  let zipf = Zipf.create ~n:150 ~s:0.9 in
  for i = 0 to n_reads - 1 do
    ignore
      (Sim.schedule (System.sim system) ~delay:(0.05 *. float_of_int i) (fun () ->
           (* Zipf point reads with an occasional grep: a cache-friendly
              mix, so disabling the cache is visible. *)
           let query =
             if i mod 10 = 0 then Query.grep "deluxe"
             else Query.point_read keys.(Zipf.sample zipf g)
           in
           System.read system ~client:(i mod 6) query ~on_done:(fun _ -> ())))
  done;
  System.run_for system ((0.05 *. float_of_int n_reads) +. 120.0);
  let auditors = System.auditors system in
  let audited = List.fold_left (fun acc a -> acc + Auditor.audited a) 0 auditors in
  let cpu =
    List.fold_left (fun acc a -> acc +. Work_queue.busy_seconds (Auditor.work a)) 0.0 auditors
  in
  let max_cpu =
    List.fold_left (fun acc a -> Float.max acc (Work_queue.busy_seconds (Auditor.work a))) 0.0
      auditors
  in
  let hits = List.fold_left (fun acc a -> acc + Result_cache.hits (Auditor.cache a)) 0 auditors in
  let misses =
    List.fold_left (fun acc a -> acc + Result_cache.misses (Auditor.cache a)) 0 auditors
  in
  let hit_rate =
    if hits + misses = 0 then 0.0 else float_of_int hits /. float_of_int (hits + misses)
  in
  (audited, cpu, max_cpu, hit_rate)

let run ?(quick = false) fmt =
  let n_reads = if quick then 400 else 1500 in
  let cases =
    [
      ("baseline (cache on, 1 auditor)", 4096, 1, 1.0);
      ("cache DISABLED (capacity 1)", 1, 1, 1.0);
      ("2 auditors (sharded by query)", 4096, 2, 1.0);
      ("audit only 25% of pledges", 4096, 1, 0.25);
    ]
  in
  let rows =
    List.map
      (fun (label, cache_capacity, n_auditors, audit_fraction) ->
        let audited, cpu, max_cpu, hit_rate =
          audit_run ~cache_capacity ~n_auditors ~audit_fraction ~n_reads ~seed:71L
        in
        [
          label;
          string_of_int audited;
          Exp_common.pct hit_rate;
          Exp_common.f3 (1000.0 *. cpu /. float_of_int (max 1 audited));
          Exp_common.f2 max_cpu;
        ])
      cases
  in
  Exp_common.table fmt
    ~title:
      "E9a  Auditor ablations: the result cache, extra auditors, and the\n\
      \     audit-fraction fallback (same Zipf-heavy workload)"
    ~header:
      [ "variant"; "audited"; "cache hit rate"; "auditor ms/audit"; "busiest auditor (s)" ]
    rows;
  (* -- (c) greedy throttling ------------------------------------------- *)
  let greedy_run ~enabled =
    let config =
      {
        Exp_common.base_config with
        Config.double_check_probability = 1.0;
        (* factor 1e6 => nobody is ever suspected: detector off. *)
        greedy_factor = (if enabled then 3.0 else 1e6);
        greedy_min_samples = 8;
        greedy_window = 300.0;
      }
    in
    (* One master so every client shares the same greedy cohort (the
       detector is relative: a lone client on its own master has no
       baseline to stand out against). *)
    let system, keys =
      Exp_common.build_system ~config ~n_masters:1 ~slaves_per_master:4 ~seed:73L
        ~n_items:50 ()
    in
    (* One abusive client hammering reads (every one double-checked);
       five polite clients reading slowly. *)
    let sim = System.sim system in
    let n = if quick then 150 else 500 in
    for i = 0 to n - 1 do
      ignore
        (Sim.schedule sim ~delay:(0.2 *. float_of_int i) (fun () ->
             System.read system ~client:0 (Query.point_read keys.(i mod 50))
               ~on_done:(fun _ -> ())))
    done;
    (* Polite cohort: every other client reads once per 2 seconds, so
       each master sees a healthy double-check baseline. *)
    for i = 0 to (n * 2) - 1 do
      ignore
        (Sim.schedule sim ~delay:(0.4 *. float_of_int i) (fun () ->
             System.read system
               ~client:(1 + (i mod 5))
               (Query.point_read keys.(i mod 50))
               ~on_done:(fun _ -> ())))
    done;
    System.run_for system ((0.2 *. float_of_int n) +. 60.0);
    let stats = System.stats system in
    ( Stats.get stats "master.double_checks_served",
      Stats.get stats "master.double_checks_throttled" )
  in
  let on_served, on_throttled = greedy_run ~enabled:true in
  let off_served, off_throttled = greedy_run ~enabled:false in
  Exp_common.table fmt
    ~title:
      "E9b  Greedy-client throttling (§3.3): one client double-checks every read\n\
      \     (p=1); without the detector the master absorbs all of it"
    ~header:[ "detector"; "double-checks served"; "throttled" ]
    [
      [ "on"; string_of_int on_served; string_of_int on_throttled ];
      [ "off"; string_of_int off_served; string_of_int off_throttled ];
    ]
