(* E7 — Security-sensitive reads buy 100% correctness with master load
   (§4, first variant).

   A slave lies on every read it serves.  Clients mark a fraction of
   reads "sensitive" (executed only on trusted masters).  With the
   audit and double-checks disabled — the worst case — only the
   sensitive fraction is protected, and the master pays for exactly
   that fraction. *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Master = Secrep_core.Master
module Security_level = Secrep_core.Security_level
module Fault = Secrep_core.Fault
module Stats = Secrep_sim.Stats
module Work_queue = Secrep_sim.Work_queue
module Prng = Secrep_crypto.Prng
module Mix = Secrep_workload.Mix
module Driver = Secrep_workload.Driver

let one_fraction ~sensitive_fraction ~n_reads ~seed =
  let config =
    {
      Exp_common.base_config with
      Config.double_check_probability = 0.0;
      audit_enabled = false;
    }
  in
  let system, keys = Exp_common.build_system ~config ~seed ~n_items:100 () in
  (* Every slave of client 0's master lies, so re-assignment cannot
     accidentally rescue the client. *)
  let m = System.master_of_client system 0 in
  for s = 0 to System.n_slaves system - 1 do
    if System.master_of_slave system s = m then
      System.set_slave_behavior system ~slave:s
        (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 })
  done;
  let g = Prng.create ~seed:(Int64.add seed 3L) in
  let mix = Mix.create ~rng:(Prng.split g) ~keys () in
  let chooser_rng = Prng.split g in
  let driver =
    Driver.create system ~mix ~rng:(Prng.split g)
      ~level_chooser:(fun () ->
        if Prng.float chooser_rng < sensitive_fraction then Security_level.Sensitive
        else Security_level.Normal)
      ()
  in
  let duration = float_of_int n_reads /. 8.0 in
  Driver.run_reads driver ~rate:8.0 ~duration;
  System.run_for system (duration +. 120.0);
  let s = Driver.summary driver in
  let master_busy =
    List.fold_left ( +. ) 0.0
      (List.init (System.n_masters system) (fun i ->
           Work_queue.busy_seconds (Master.work (System.master system i))))
  in
  (s, master_busy, Stats.get (System.stats system) "master.sensitive_reads")

let run ?(quick = false) fmt =
  let n_reads = if quick then 150 else 500 in
  let rows =
    List.map
      (fun fraction ->
        let s, master_busy, sensitive_served = one_fraction ~sensitive_fraction:fraction ~n_reads ~seed:41L in
        let n = max 1 s.Driver.reads_completed in
        [
          Exp_common.pct fraction;
          string_of_int s.Driver.reads_completed;
          string_of_int sensitive_served;
          string_of_int s.Driver.accepted_wrong;
          Exp_common.pct (float_of_int s.Driver.accepted_wrong /. float_of_int n);
          Exp_common.f3 (1000.0 *. master_busy /. float_of_int n);
        ])
      [ 0.0; 0.1; 0.25; 0.5; 1.0 ]
  in
  Exp_common.table fmt
    ~title:
      "E7  Security-levelled reads (audit & double-check disabled, every slave of\n\
      \    one master lies): sensitive reads are always correct; master load grows\n\
      \    with the sensitive fraction"
    ~header:
      [
        "sensitive %";
        "reads";
        "served by master";
        "wrong accepts";
        "wrong %";
        "master ms/read";
      ]
    rows
