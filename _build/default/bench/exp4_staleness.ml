(* E4 — max_latency bounds the inconsistency window (§3, §3.2).

   Writes stream in while clients read.  Three measurements:

   (a) Safety: accepted reads are *never* wrong for their pledged
       version (oracle check), and the version a client accepts lags
       the newest committed version by a bounded amount.
   (b) Liveness vs keep-alive period: as the keep-alive period
       approaches max_latency, honest slaves spend more time
       "not fresh enough" and clients see stale rejections/retries.
   (c) The §3.2 refinement: a client behind a very slow link cannot
       satisfy a tight freshness bound (reads fail), but choosing its
       own, looser max_latency restores availability. *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Client = Secrep_core.Client
module Stats = Secrep_sim.Stats
module Sim = Secrep_sim.Sim
module Latency = Secrep_sim.Latency
module Prng = Secrep_crypto.Prng
module Query = Secrep_store.Query
module Oplog = Secrep_store.Oplog
module Value = Secrep_store.Value

let sweep_keepalive fmt ~quick =
  let n_reads = if quick then 100 else 400 in
  (* A sluggish WAN (hundreds of ms with heavy tails): the pledge's
     keep-alive ages measurably in flight, so pushing the keep-alive
     period toward max_latency visibly costs availability. *)
  let laggy_net =
    {
      System.default_net with
      System.master_slave = Latency.Exponential { mean = 0.4; floor = 0.3 };
      client_slave = Latency.Exponential { mean = 0.5; floor = 0.4 };
      client_master = Latency.Exponential { mean = 0.4; floor = 0.3 };
    }
  in
  let rows =
    List.map
      (fun keepalive_period ->
        let config =
          {
            Exp_common.base_config with
            Config.max_latency = 5.0;
            keepalive_period;
            double_check_probability = 0.0;
          }
        in
        let system =
          System.create ~n_masters:2 ~slaves_per_master:3 ~n_clients:6 ~config
            ~net:laggy_net ~seed:11L ()
        in
        let gg = Prng.create ~seed:1011L in
        let content = Secrep_workload.Catalog.product_catalog gg ~n:100 in
        System.load_content system content;
        let keys = Array.of_list (List.map fst content) in
        (* Background writes every ~max_latency (the §3.1 cap). *)
        for i = 0 to 19 do
          ignore
            (Sim.schedule (System.sim system) ~delay:(5.5 *. float_of_int i) (fun () ->
                 System.write system ~client:0
                   (Oplog.Set_field
                      { key = keys.(0); field = "stock"; value = Value.Int (5000 + i) })
                   ~on_done:(fun _ -> ())))
        done;
        let lag_sum = ref 0.0 and lag_n = ref 0 and accepted = ref 0 in
        for i = 0 to n_reads - 1 do
          ignore
            (Sim.schedule (System.sim system)
               ~delay:(110.0 *. float_of_int i /. float_of_int n_reads)
               (fun () ->
                 System.read system
                   ~client:(i mod System.n_clients system)
                   (Query.point_read keys.(i mod 100))
                   ~on_done:(fun r ->
                     match r.Client.outcome with
                     | `Accepted _ ->
                       incr accepted;
                       let lag = System.oracle_version system - r.Client.version in
                       lag_sum := !lag_sum +. float_of_int (max 0 lag);
                       incr lag_n
                     | `Served_by_master _ | `Gave_up -> ())))
        done;
        System.run_for system 240.0;
        let stats = System.stats system in
        [
          Exp_common.f2 keepalive_period;
          string_of_int !accepted;
          string_of_int (Stats.get stats "client.stale_rejections");
          string_of_int (Stats.get stats "client.read_retries");
          string_of_int (Stats.get stats "system.accepted_wrong");
          Exp_common.f2 (!lag_sum /. float_of_int (max 1 !lag_n));
        ])
      [ 0.5; 1.0; 2.0; 4.0; 4.9 ]
  in
  Exp_common.table fmt
    ~title:
      "E4a  Staleness and availability vs keep-alive period (max_latency = 5s,\n\
      \     writes every 5.5s; wrong accepts must stay 0)"
    ~header:
      [
        "keep-alive (s)";
        "accepted";
        "stale rejections";
        "retries";
        "wrong accepts";
        "mean version lag";
      ]
    rows

let slow_client fmt ~quick =
  let n_reads = if quick then 30 else 100 in
  (* Client 0 sits behind a ~0.8s (exponential tail) link. *)
  let slow_net =
    {
      System.default_net with
      System.client_slave = Latency.Exponential { mean = 0.5; floor = 0.3 };
      client_master = Latency.Exponential { mean = 0.5; floor = 0.3 };
    }
  in
  let run ~override =
    let config =
      {
        Exp_common.base_config with
        Config.max_latency = 1.0;
        keepalive_period = 0.25;
        double_check_probability = 0.0;
        read_retry_limit = 3;
      }
    in
    let system =
      System.create ~n_masters:2 ~slaves_per_master:2 ~n_clients:2 ~config ~net:slow_net
        ~seed:13L
        ~client_max_latency:(fun id -> if id = 0 then override else None)
        ()
    in
    let g = Prng.create ~seed:14L in
    System.load_content system (Secrep_workload.Catalog.product_catalog g ~n:50);
    let accepted = ref 0 and gave_up = ref 0 in
    for i = 0 to n_reads - 1 do
      ignore
        (Sim.schedule (System.sim system) ~delay:(2.0 *. float_of_int i) (fun () ->
             System.read system ~client:0
               (Query.point_read (Printf.sprintf "product:%05d" (i mod 50)))
               ~on_done:(fun r ->
                 match r.Client.outcome with
                 | `Accepted _ -> incr accepted
                 | `Gave_up -> incr gave_up
                 | `Served_by_master _ -> ())))
    done;
    System.run_for system (2.0 *. float_of_int n_reads +. 120.0);
    let stale = Stats.get (System.stats system) "client.stale_rejections" in
    ( !accepted,
      !gave_up,
      stale,
      Stats.get (System.stats system) "system.accepted_wrong" )
  in
  let rows =
    List.map
      (fun (label, override) ->
        let accepted, gave_up, stale, wrong = run ~override in
        [
          label;
          Printf.sprintf "%d/%d" accepted n_reads;
          string_of_int gave_up;
          string_of_int stale;
          string_of_int wrong;
        ])
      [
        ("system-wide 1.0s", None);
        ("client-chosen 3.0s", Some 3.0);
        ("client-chosen 10.0s", Some 10.0);
      ]
  in
  Exp_common.table fmt
    ~title:
      "E4b  A slow client (~0.8s links) under a 1s freshness bound, with and\n\
      \     without the client-chosen max_latency refinement of Section 3.2"
    ~header:[ "freshness bound"; "accepted"; "gave up"; "stale rejections"; "wrong accepts" ]
    rows

let run ?(quick = false) fmt =
  sweep_keepalive fmt ~quick;
  slow_client fmt ~quick
