(* E6 — The auditor keeps up by exploiting its asymmetries (§3.4).

   One auditor re-executes *every* read the whole slave fleet serves.
   It survives because (a) it never signs, (b) it never replies to
   clients, (c) its result cache collapses repeated queries within a
   content version, and (d) it may lag: daily peaks push work into a
   backlog that drains in the trough.

   Part (a) measures per-read CPU on slaves vs the auditor over the
   same workload, plus the real RSA sign/verify asymmetry from our
   own implementation.  Part (b) runs two compressed "days" of
   diurnal load and plots the audit backlog: rising at the peak,
   draining at night, bounded over the long run. *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Slave = Secrep_core.Slave
module Auditor = Secrep_core.Auditor
module Stats = Secrep_sim.Stats
module Sim = Secrep_sim.Sim
module Work_queue = Secrep_sim.Work_queue
module Timeseries = Secrep_sim.Timeseries
module Prng = Secrep_crypto.Prng
module Rsa = Secrep_crypto.Rsa
module Query = Secrep_store.Query
module Result_cache = Secrep_store.Result_cache
module Diurnal = Secrep_workload.Diurnal
module Zipf = Secrep_workload.Zipf

let rsa_asymmetry () =
  let g = Prng.create ~seed:2024L in
  let key = Rsa.generate g ~bits:512 in
  let msg = String.make 256 'x' in
  let time_it f n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  let sign_s = time_it (fun () -> Rsa.sign key msg) 20 in
  let signature = Rsa.sign key msg in
  let verify_s = time_it (fun () -> Rsa.verify key.Rsa.pub ~msg ~signature) 20 in
  (sign_s, verify_s)

let diurnal_run ?(quick = false) () =
  let day = if quick then 300.0 else 600.0 in
  let config =
    {
      Exp_common.base_config with
      Config.double_check_probability = 0.01;
      per_doc_cost = 4e-3;
      (* expensive content: ~4ms per document scanned *)
      max_latency = 8.0;
      keepalive_period = 2.0;
    }
  in
  let system, keys =
    Exp_common.build_system ~config ~n_masters:2 ~slaves_per_master:3 ~n_clients:6
      ~seed:5L ~n_items:200 ()
  in
  let g = Prng.create ~seed:6L in
  let zipf = Zipf.create ~n:200 ~s:0.9 in
  let diurnal = Diurnal.create ~base_rate:5.0 ~peak_factor:8.0 ~period:day in
  let next_client = ref 0 in
  let issue () =
    let client = !next_client in
    next_client := (client + 1) mod System.n_clients system;
    let query =
      if Prng.float g < 0.7 then Query.point_read keys.(Zipf.sample zipf g)
      else begin
        (* A random range aggregate (random start *and* span): poorly
           cacheable, 10-50 documents scanned. *)
        let span = 10 + Prng.int g 40 in
        let i = Prng.int g (200 - span) in
        Query.Aggregate
          {
            from = Query.Key_range { lo = keys.(i); hi = keys.(i + span - 1) };
            where = Query.True;
            agg = Query.Sum "price";
          }
      end
    in
    System.read system ~client query ~on_done:(fun _ -> ())
  in
  let duration = 2.0 *. day in
  (* Occasional repricing writes bump the content version, which also
     invalidates the auditor's per-version cache — as in production. *)
  let writes = int_of_float (duration /. 25.0) in
  for i = 0 to writes - 1 do
    ignore
      (Sim.schedule (System.sim system) ~delay:(25.0 *. float_of_int i) (fun () ->
           System.write system ~client:0
             (Secrep_store.Oplog.Set_field
                {
                  key = keys.(Prng.int g 200);
                  field = "price";
                  value = Secrep_store.Value.Float (Prng.float g *. 100.0);
                })
             ~on_done:(fun _ -> ())))
  done;
  let rec arm now =
    let time = Diurnal.next_arrival diurnal g ~now in
    if time <= duration then begin
      ignore (Sim.schedule (System.sim system) ~delay:time (fun () -> issue ()));
      arm time
    end
  in
  arm 0.0;
  System.run_for system (duration +. 200.0);
  system

let run ?(quick = false) fmt =
  let sign_s, verify_s = rsa_asymmetry () in
  let system = diurnal_run ~quick () in
  let stats = System.stats system in
  let auditor = System.auditor system in
  let reads = Stats.get stats "slave.reads_served" in
  let slave_busy =
    List.fold_left ( +. ) 0.0
      (List.init (System.n_slaves system) (fun i ->
           Work_queue.busy_seconds (Slave.work (System.slave system i))))
  in
  let auditor_busy = Work_queue.busy_seconds (Auditor.work auditor) in
  let cache = Auditor.cache auditor in
  let series = Auditor.backlog_series auditor in
  let rows =
    [
      [ "reads served by the slave fleet"; string_of_int reads ];
      [ "pledges audited"; string_of_int (Auditor.audited auditor) ];
      [ "slave CPU ms/read (fleet total / reads)";
        Exp_common.f3 (1000.0 *. slave_busy /. float_of_int (max 1 reads)) ];
      [ "auditor CPU ms/read (one host, ALL reads)";
        Exp_common.f3 (1000.0 *. auditor_busy /. float_of_int (max 1 reads)) ];
      [ "auditor advantage (slave/auditor per-read CPU)";
        Exp_common.f2 (slave_busy /. Float.max 1e-9 auditor_busy) ];
      [ "auditor cache hit rate"; Exp_common.pct (Result_cache.hit_rate cache) ];
      [ "peak audit backlog (pledges)";
        Exp_common.f2 (Option.value ~default:0.0 (Timeseries.max_value series)) ];
      [ "final audit backlog (after the night trough)";
        string_of_int (Auditor.backlog auditor) ];
      [ "slaves caught"; string_of_int (Auditor.caught auditor) ];
      [ "measured RSA-512 sign (ms, real impl)"; Exp_common.f3 (1000.0 *. sign_s) ];
      [ "measured RSA-512 verify (ms, real impl)"; Exp_common.f3 (1000.0 *. verify_s) ];
      [ "sign/verify asymmetry"; Exp_common.f2 (sign_s /. verify_s) ];
    ]
  in
  Exp_common.table fmt
    ~title:
      "E6  Auditor throughput asymmetry and diurnal catch-up (two compressed days,\n\
      \    sinusoidal load 6x trough-to-peak; one auditor audits the whole fleet)"
    ~header:[ "metric"; "value" ]
    rows;
  Format.fprintf fmt "@.Audit backlog over two days (E6 figure):@.";
  Timeseries.pp_ascii ~width:64 ~height:10 fmt series
