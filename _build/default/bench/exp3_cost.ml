(* E3 — Resource cost and latency vs the two generic alternatives (§1, §5).

   The same mixed read workload (Zipf point reads, range scans, greps,
   aggregates) runs through:

     - this paper's scheme (1 slave execution + p double-checks
       + 1 background audit re-execution, amortised by the cache);
     - PBFT-style state-machine replication with f = 1..3
       (2f+1 executions per read, latency set by the slowest quorum
       member);
     - Merkle state signing (dynamic queries execute on the trusted
       host after per-document fetch + verify).

   The paper's claim: the scheme's *foreground* cost stays near one
   execution per read and its latency near a single-slave round trip,
   while SMR multiplies both and state signing shifts the whole
   dynamic-query load onto trusted hosts. *)

module System = Secrep_core.System
module Master = Secrep_core.Master
module Slave = Secrep_core.Slave
module Auditor = Secrep_core.Auditor
module Stats = Secrep_sim.Stats
module Histogram = Secrep_sim.Histogram
module Work_queue = Secrep_sim.Work_queue
module Sim = Secrep_sim.Sim
module Latency = Secrep_sim.Latency
module Prng = Secrep_crypto.Prng
module Sig_scheme = Secrep_crypto.Sig_scheme
module Mix = Secrep_workload.Mix
module Driver = Secrep_workload.Driver
module Catalog = Secrep_workload.Catalog
module Baseline_common = Secrep_baselines.Baseline_common
module Smr_quorum = Secrep_baselines.Smr_quorum
module State_signing = Secrep_baselines.State_signing

type row = {
  name : string;
  execs_per_read : float;
  mean_latency : float;
  p99_latency : float;
  trusted_ms_per_read : float;
  untrusted_ms_per_read : float;
}

let wan_latency = Latency.Exponential { mean = 0.01; floor = 0.03 }

let run_secrep ~n_reads ~seed =
  let system, keys = Exp_common.build_system ~seed ~n_items:200 () in
  let g = Prng.create ~seed:(Int64.add seed 3L) in
  let mix = Mix.create ~rng:(Prng.split g) ~keys () in
  let driver = Driver.create system ~mix ~rng:(Prng.split g) () in
  let duration = float_of_int n_reads /. 10.0 in
  Driver.run_reads driver ~rate:10.0 ~duration;
  System.run_for system (duration +. 120.0);
  let s = Driver.summary driver in
  let stats = System.stats system in
  let n = max 1 s.Driver.reads_completed in
  let slave_execs = Stats.get stats "slave.reads_served" in
  let dc = Stats.get stats "master.double_checks_served" in
  let audited = Auditor.audited (System.auditor system) in
  let trusted =
    let masters =
      List.init (System.n_masters system) (fun i ->
          Work_queue.busy_seconds (Master.work (System.master system i)))
    in
    List.fold_left ( +. ) 0.0 masters
    +. Work_queue.busy_seconds (Auditor.work (System.auditor system))
  in
  let untrusted =
    let slaves =
      List.init (System.n_slaves system) (fun i ->
          Work_queue.busy_seconds (Slave.work (System.slave system i)))
    in
    List.fold_left ( +. ) 0.0 slaves
  in
  {
    name = "secrep (p=0.05, audit on)";
    execs_per_read = float_of_int (slave_execs + dc + audited) /. float_of_int n;
    mean_latency = s.Driver.mean_latency;
    p99_latency = s.Driver.p99_latency;
    trusted_ms_per_read = 1000.0 *. trusted /. float_of_int n;
    untrusted_ms_per_read = 1000.0 *. untrusted /. float_of_int n;
  }

let run_baseline_workload ~sim ~n_reads ~seed read_fn name =
  let g = Prng.create ~seed in
  let keys = Array.init 200 (Printf.sprintf "product:%05d") in
  let mix = Mix.create ~rng:(Prng.split g) ~keys () in
  let latencies = Histogram.create () in
  let execs = ref 0 and trusted = ref 0.0 and untrusted = ref 0.0 and done_ = ref 0 in
  (* Same 10 reads/s pacing as the secrep run, so queueing conditions
     are comparable. *)
  for i = 1 to n_reads do
    ignore
      (Sim.schedule sim ~delay:(float_of_int i /. 10.0) (fun () ->
           read_fn (Mix.next_query mix) (fun (m : Baseline_common.read_metrics) ->
               incr done_;
               Histogram.add latencies m.Baseline_common.latency;
               execs := !execs + m.Baseline_common.server_executions;
               trusted := !trusted +. m.Baseline_common.trusted_compute;
               untrusted := !untrusted +. m.Baseline_common.untrusted_compute)))
  done;
  fun () ->
    let n = max 1 !done_ in
    {
      name;
      execs_per_read = float_of_int !execs /. float_of_int n;
      mean_latency = Histogram.mean latencies;
      p99_latency = Histogram.percentile latencies 99.0;
      trusted_ms_per_read = 1000.0 *. !trusted /. float_of_int n;
      untrusted_ms_per_read = 1000.0 *. !untrusted /. float_of_int n;
    }

let run_smr ~n_reads ~seed ~f =
  let sim = Sim.create () in
  let rng = Prng.create ~seed in
  let smr =
    Smr_quorum.create sim ~rng ~f ~costs:Baseline_common.default_costs ~latency:wan_latency ()
  in
  let g = Prng.create ~seed:(Int64.add seed 9L) in
  Smr_quorum.load_content smr (Catalog.product_catalog g ~n:200);
  let finish =
    run_baseline_workload ~sim ~n_reads ~seed
      (fun q k -> Smr_quorum.read smr q ~on_done:k)
      (Printf.sprintf "SMR quorum (f=%d, %d replicas)" f ((3 * f) + 1))
  in
  Sim.run sim;
  finish ()

let run_state_signing ~n_reads ~seed =
  let sim = Sim.create () in
  let rng = Prng.create ~seed in
  let signer = Sig_scheme.generate Sig_scheme.Hmac_sim rng in
  let ss =
    State_signing.create sim ~rng ~costs:Baseline_common.default_costs
      ~storage_latency:(Latency.Exponential { mean = 0.004; floor = 0.006 })
      ~trusted_latency:wan_latency ~signer ()
  in
  let g = Prng.create ~seed:(Int64.add seed 9L) in
  State_signing.load_content ss (Catalog.product_catalog g ~n:200);
  let finish =
    run_baseline_workload ~sim ~n_reads ~seed
      (fun q k -> State_signing.read ss q ~on_done:k)
      "state signing (Merkle)"
  in
  Sim.run sim;
  finish ()

let run ?(quick = false) fmt =
  let n_reads = if quick then 150 else 600 in
  let seed = 97L in
  let rows =
    [
      run_secrep ~n_reads ~seed;
      run_smr ~n_reads ~seed ~f:1;
      run_smr ~n_reads ~seed ~f:2;
      run_smr ~n_reads ~seed ~f:3;
      run_state_signing ~n_reads ~seed;
    ]
  in
  Exp_common.table fmt
    ~title:
      "E3  Per-read cost: this scheme vs state-machine replication vs state signing\n\
      \    (same mixed workload; execs = query executions anywhere, incl. audit)"
    ~header:
      [
        "scheme";
        "execs/read";
        "mean lat (ms)";
        "p99 lat (ms)";
        "trusted ms/read";
        "untrusted ms/read";
      ]
    (List.map
       (fun r ->
         [
           r.name;
           Exp_common.f2 r.execs_per_read;
           Exp_common.f2 (1000.0 *. r.mean_latency);
           Exp_common.f2 (1000.0 *. r.p99_latency);
           Exp_common.f3 r.trusted_ms_per_read;
           Exp_common.f3 r.untrusted_ms_per_read;
         ])
       rows)
