test/test_broadcast.ml: Alcotest Election Hashtbl Int64 List Printf QCheck2 QCheck_alcotest Secrep_broadcast Secrep_crypto Secrep_sim Total_order
