test/test_crypto.ml: Alcotest Array Bignum Bytes Char Fun Hex Hmac Int Int64 Lazy List Merkle Mr_prime Option Printf Prng QCheck2 QCheck_alcotest Rsa Secrep_crypto Sha1 Sha256 Sig_scheme String
