test/test_workload.ml: Alcotest Array Catalog Diurnal Driver Float Hashtbl List Mix Option Printf Secrep_core Secrep_crypto Secrep_sim Secrep_store Secrep_workload String Zipf
