test/test_sim.ml: Alcotest Array Event_queue Float Histogram Int Latency Link List Option Printf Process QCheck2 QCheck_alcotest Secrep_crypto Secrep_sim Sim Stats Timeseries Trace Work_queue
