(* Tests for the two related-work baselines: PBFT-style quorum
   replication and Merkle-tree state signing. *)

open Secrep_baselines
module Sim = Secrep_sim.Sim
module Latency = Secrep_sim.Latency
module Prng = Secrep_crypto.Prng
module Sig_scheme = Secrep_crypto.Sig_scheme
module Query = Secrep_store.Query
module Oplog = Secrep_store.Oplog
module Document = Secrep_store.Document
module Value = Secrep_store.Value

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let content =
  List.init 16 (fun i ->
      ( Printf.sprintf "doc:%03d" i,
        Document.of_fields
          [ ("text", Value.String (Printf.sprintf "payload %d" i)); ("n", Value.Int i) ] ))

(* ---------------- SMR quorum ---------------- *)

let make_smr ?(f = 1) () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:41L in
  let smr =
    Smr_quorum.create sim ~rng ~f ~costs:Baseline_common.default_costs
      ~latency:(Latency.Uniform { lo = 0.01; hi = 0.05 })
      ()
  in
  Smr_quorum.load_content smr content;
  (sim, smr)

let test_smr_shape () =
  let _, smr = make_smr ~f:2 () in
  check int_t "3f+1 replicas" 7 (Smr_quorum.n_replicas smr);
  check int_t "2f+1 quorum" 5 (Smr_quorum.quorum_size smr)

let test_smr_honest_read () =
  let sim, smr = make_smr () in
  let got = ref None in
  Smr_quorum.read smr (Query.point_read "doc:003") ~on_done:(fun m -> got := Some m);
  Sim.run sim;
  match !got with
  | Some m ->
    check bool_t "correct" true m.Baseline_common.correct;
    check int_t "2f+1 executions" 3 m.Baseline_common.server_executions;
    check bool_t "latency at least one round trip" true (m.Baseline_common.latency >= 0.02);
    check bool_t "compute charged" true (m.Baseline_common.untrusted_compute > 0.0)
  | None -> Alcotest.fail "no reply"

let test_smr_tolerates_f_byzantine () =
  let sim, smr = make_smr ~f:1 () in
  Smr_quorum.set_byzantine smr ~count:1;
  let correct = ref 0 in
  for _ = 1 to 10 do
    Smr_quorum.read smr (Query.point_read "doc:001") ~on_done:(fun m ->
        if m.Baseline_common.correct then incr correct)
  done;
  Sim.run sim;
  check int_t "f liars cannot corrupt the majority" 10 !correct

let test_smr_majority_fails_beyond_f () =
  (* With 2f+1 byzantine replies in the quorum, no honest majority is
     possible: the read must not report a correct agreement. *)
  let sim, smr = make_smr ~f:1 () in
  Smr_quorum.set_byzantine smr ~count:3;
  let got = ref None in
  Smr_quorum.read smr (Query.point_read "doc:001") ~on_done:(fun m -> got := Some m);
  Sim.run sim;
  match !got with
  | Some m -> check bool_t "no correct result" false m.Baseline_common.correct
  | None -> Alcotest.fail "no reply"

let test_smr_write_applies_everywhere () =
  let sim, smr = make_smr () in
  let latency = ref 0.0 in
  Smr_quorum.write smr
    (Oplog.Set_field { key = "doc:001"; field = "n"; value = Value.Int 99 })
    ~on_done:(fun l -> latency := l);
  Sim.run sim;
  check bool_t "three rounds of latency" true (!latency >= 0.03);
  check int_t "version bumped" (16 + 1) (Smr_quorum.version smr);
  (* Subsequent reads see the write. *)
  let got = ref None in
  Smr_quorum.read smr (Query.point_read "doc:001") ~on_done:(fun m -> got := Some m);
  Sim.run sim;
  check bool_t "read correct after write" true
    (match !got with Some m -> m.Baseline_common.correct | None -> false)

let test_smr_compute_grows_with_quorum () =
  let run f =
    let sim, smr = make_smr ~f () in
    for _ = 1 to 5 do
      Smr_quorum.read smr (Query.grep "payload") ~on_done:(fun _ -> ())
    done;
    Sim.run sim;
    Smr_quorum.total_compute smr
  in
  check bool_t "f=2 costs more than f=1" true (run 2 > run 1)

(* ---------------- State signing ---------------- *)

let make_ss () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:42L in
  let signer = Sig_scheme.generate Sig_scheme.Hmac_sim rng in
  let ss =
    State_signing.create sim ~rng ~costs:Baseline_common.default_costs
      ~storage_latency:(Latency.Constant 0.01) ~trusted_latency:(Latency.Constant 0.02)
      ~signer ()
  in
  State_signing.load_content ss content;
  (sim, ss)

let test_ss_root_signed () =
  let _, ss = make_ss () in
  check bool_t "root signature valid" true (State_signing.root_signature_valid ss);
  check int_t "version" 16 (State_signing.version ss)

let test_ss_point_read_no_trusted_compute () =
  let sim, ss = make_ss () in
  let got = ref None in
  State_signing.read ss (Query.point_read "doc:005") ~on_done:(fun m -> got := Some m);
  Sim.run sim;
  match !got with
  | Some m ->
    check bool_t "correct" true m.Baseline_common.correct;
    check bool_t "zero trusted compute" true (m.Baseline_common.trusted_compute = 0.0);
    check int_t "no server execution" 0 m.Baseline_common.server_executions
  | None -> Alcotest.fail "no reply"

let test_ss_detects_tampering () =
  let sim, ss = make_ss () in
  check bool_t "tamper applies" true (State_signing.tamper_block ss ~key:"doc:005");
  let got = ref None in
  State_signing.read ss (Query.point_read "doc:005") ~on_done:(fun m -> got := Some m);
  Sim.run sim;
  (match !got with
  | Some m -> check bool_t "tampered block rejected" false m.Baseline_common.correct
  | None -> Alcotest.fail "no reply");
  check bool_t "tampering unknown key" false (State_signing.tamper_block ss ~key:"nope")

let test_ss_dynamic_query_pays_trusted_compute () =
  let sim, ss = make_ss () in
  let got = ref None in
  State_signing.read ss (Query.grep "payload") ~on_done:(fun m -> got := Some m);
  Sim.run sim;
  match !got with
  | Some m ->
    check bool_t "correct" true m.Baseline_common.correct;
    check bool_t "trusted host did the work" true (m.Baseline_common.trusted_compute > 0.0);
    check int_t "one trusted execution" 1 m.Baseline_common.server_executions
  | None -> Alcotest.fail "no reply"

let test_ss_write_resigns () =
  let sim, ss = make_ss () in
  let latency = ref (-1.0) in
  State_signing.write ss
    (Oplog.Set_field { key = "doc:002"; field = "n"; value = Value.Int 123 })
    ~on_done:(fun l -> latency := l);
  Sim.run sim;
  check bool_t "signing latency charged" true (!latency > 0.0);
  check bool_t "root re-signed and valid" true (State_signing.root_signature_valid ss);
  check int_t "version bumped" 17 (State_signing.version ss);
  (* Reads after the write verify against the new tree. *)
  let got = ref None in
  State_signing.read ss (Query.point_read "doc:002") ~on_done:(fun m -> got := Some m);
  Sim.run sim;
  check bool_t "fresh read correct" true
    (match !got with Some m -> m.Baseline_common.correct | None -> false)

let test_ss_proof_length_logarithmic () =
  let _, ss = make_ss () in
  match State_signing.proof_length_for ss ~key:"doc:000" with
  | Some len -> check int_t "log2(16)" 4 len
  | None -> Alcotest.fail "expected proof"

let () =
  Alcotest.run "secrep_baselines"
    [
      ( "smr_quorum",
        [
          Alcotest.test_case "3f+1 / 2f+1 shape" `Quick test_smr_shape;
          Alcotest.test_case "honest read" `Quick test_smr_honest_read;
          Alcotest.test_case "tolerates f byzantine" `Quick test_smr_tolerates_f_byzantine;
          Alcotest.test_case "fails beyond f" `Quick test_smr_majority_fails_beyond_f;
          Alcotest.test_case "write applies everywhere" `Quick test_smr_write_applies_everywhere;
          Alcotest.test_case "compute grows with quorum" `Quick
            test_smr_compute_grows_with_quorum;
        ] );
      ( "state_signing",
        [
          Alcotest.test_case "root signed" `Quick test_ss_root_signed;
          Alcotest.test_case "point read: no trusted compute" `Quick
            test_ss_point_read_no_trusted_compute;
          Alcotest.test_case "detects tampering" `Quick test_ss_detects_tampering;
          Alcotest.test_case "dynamic query pays trusted compute" `Quick
            test_ss_dynamic_query_pays_trusted_compute;
          Alcotest.test_case "write re-signs root" `Quick test_ss_write_resigns;
          Alcotest.test_case "proof length logarithmic" `Quick test_ss_proof_length_logarithmic;
        ] );
    ]
