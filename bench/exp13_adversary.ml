(* E13 — Strategic adversaries: detection latency and reads-before-
   detection per attack mode, uniform vs suspicion-weighted auditing
   (§2, §3.3, §3.5).

   Part 1 runs each strategic attack mode against the fully hardened
   system (read nonces + suspicion-weighted auditing) and reports what
   neutralized it, how fast, and how many times the adversary got to
   act first — with zero false accusations anywhere.  "Detected" is
   per mode family: omission carries no proof, so the flaky attacker
   is neutralized by the circuit breaker; a replayed pledge is
   rejected per-read by the nonce check and the slave flagged by
   quarantine; the rest are convicted on re-execution proof.

   Part 2 compares uniform and suspicion-weighted (adaptive) audit
   sampling at the same audit fraction against the audit-evasive
   attacks.  Audit re-execution convicts corrupt state (the control
   row: both policies convict it, at equal speed), but a replayed
   pledge re-executes clean at its claimed version and a frozen
   replica's pledges fall behind the audit cursor and are never
   re-executed at all — re-execution alone can rule on neither.  What
   those attacks do leave is a trail of weak, non-proof signals (nonce
   rejections, late pledges) that uniform sampling throws away and the
   suspicion-weighted auditor accumulates into quarantine.  We count
   the accepted reads each attacker serves before it is flagged;
   attackers the policy never flags are censored at their end-of-run
   total, which understates the gap (the true uniform figure is
   unbounded). *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Fault = Secrep_core.Fault
module Auditor = Secrep_core.Auditor
module Sim = Secrep_sim.Sim
module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Prng = Secrep_crypto.Prng
module Catalog = Secrep_workload.Catalog
module Mix = Secrep_workload.Mix
module Driver = Secrep_workload.Driver

let attack_modes =
  [
    ("corrupt", Fault.Corrupt_result);
    ("replay", Fault.Replay_pledge);
    ("equivocate:0", Fault.Equivocate { clique = [ 0 ] });
    ("adaptive:1.5", Fault.Adaptive { threshold = 1.5 });
    ("flaky-omit:3", Fault.Flaky_omit { burst = 3 });
  ]

(* Part 2 portfolio, with a per-mode lie probability.  Corrupt and
   stale are controls: audit re-execution convicts corrupt state, and
   a frozen replica's pledges fail the Merkle-batch inclusion check —
   both unconditional, so both policies catch them at the same speed.
   The replayer is the evasive one: every pledge it resends
   re-executes clean at its claimed version, so no amount of audit
   re-execution can convict it.  At 80% it keeps restocking fresh
   pledges to resend (the attack keeps extracting accepted reads all
   run) while the stale windows between restocks leave the freshness
   rejections that feed the suspicion score. *)
let evasive_modes =
  [
    ("corrupt", Fault.Corrupt_result, 0.5);
    ("replay", Fault.Replay_pledge, 0.8);
    ("stale", Fault.Stale_state, 1.0);
  ]

let family name =
  match String.index_opt name ':' with Some i -> String.sub name 0 i | None -> name

type outcome = {
  detector : string;  (* "conviction" | "quarantine" | "breaker" | "suppressed" | "-" *)
  detected : bool;
  detect_time : float;  (* end-of-run when censored *)
  reads_before : int;  (* accepted reads the liar served before detection *)
  attacks_before : int;  (* attacker actions before detection *)
  launched : int;
  suppressed : int;
  quarantines : int;
  false_accusations : int;
  audited : int;  (* realized audit budget *)
  late : int;  (* pledges behind the audit cursor — weak replay signal *)
  stale_rej : int;
}

let run_case ~mode:(name, fault_mode) ~adaptive ~audit_fraction ~lie_prob ~dc_p
    ~read_nonces ~write_rate ~duration ~read_rate ~seed =
  let config =
    Config.validate_exn
      {
        Exp_common.base_config with
        Config.audit_fraction;
        double_check_probability = dc_p;
        read_nonces;
        audit_adaptive = adaptive;
      }
  in
  let system =
    System.create ~n_masters:2 ~slaves_per_master:3 ~n_clients:6 ~config ~seed ()
  in
  (* Capture the live stream: the trace ring may wrap on long runs,
     subscribers see everything. *)
  let events_rev = ref [] in
  Trace.on_emit (System.trace system) (fun r -> events_rev := r :: !events_rev);
  let g = Prng.create ~seed:(Int64.add seed 77L) in
  let content = Catalog.product_catalog g ~n:50 in
  System.load_content system content;
  System.set_slave_behavior system ~slave:0
    (Fault.Malicious { probability = lie_prob; mode = fault_mode; from_time = 0.0 });
  let keys = Array.of_list (List.map fst content) in
  let mix = Mix.create ~rng:(Prng.split g) ~keys () in
  let driver = Driver.create system ~mix ~rng:(Prng.split g) () in
  Driver.run_reads driver ~rate:read_rate ~duration;
  if write_rate > 0.0 then Driver.run_writes driver ~rate:write_rate ~duration ~writer:0;
  System.run_for system (duration +. (4.0 *. config.Config.max_latency) +. 60.0);
  let end_time = Sim.now (System.sim system) in
  let events = List.rev !events_rev in
  let first_convicted = ref None in
  let first_quarantine = ref None in
  let first_breaker = ref None in
  let launched = ref 0 and suppressed = ref 0 and quarantines = ref 0 in
  let false_acc = ref [] in
  let note cell time = if !cell = None then cell := Some time in
  List.iter
    (fun (r : Trace.record) ->
      match r.Trace.event with
      (* Accusations are proof-backed only: a double-check mismatch the
         master rules inconclusive (§3.5 version skew) excludes nobody,
         so it does not count as detection — it is exactly the weak
         signal the adaptive auditor feeds on. *)
      | Event.Audit_conviction { slave = 0; _ } | Event.Slave_excluded { slave = 0; _ } ->
        note first_convicted r.Trace.time
      | Event.Audit_conviction { slave; _ } | Event.Slave_excluded { slave; _ } ->
        false_acc := slave :: !false_acc
      | Event.Slave_quarantined { slave = 0; _ } ->
        incr quarantines;
        note first_quarantine r.Trace.time
      | Event.Breaker_opened { slave = 0; _ } -> note first_breaker r.Trace.time
      | Event.Attack_launched { slave = 0; _ } -> incr launched
      | Event.Attack_suppressed { slave = 0; _ } -> incr suppressed
      | _ -> ())
    events;
  let candidates =
    match family name with
    | "flaky-omit" -> [ ("breaker", !first_breaker) ]
    | _ -> [ ("conviction", !first_convicted); ("quarantine", !first_quarantine) ]
  in
  let detect =
    List.fold_left
      (fun acc (tag, cell) ->
        match (acc, cell) with
        | None, Some t -> Some (tag, t)
        | Some (_, bt), Some t when t < bt -> Some (tag, t)
        | acc, _ -> acc)
      None candidates
  in
  let detect_time = match detect with Some (_, t) -> t | None -> end_time in
  (* Reads-before-detection: accepted reads the malicious slave served
     before it was flagged (all of them when censored).  Attacker
     actions: strategic modes emit [Attack_launched]; the corrupt
     baseline signs lied pledges.  Some modes do both for the same
     read, so take the max, not the sum. *)
  let reads_before = ref 0 in
  let acts_launched = ref 0 and acts_lied = ref 0 in
  List.iter
    (fun (r : Trace.record) ->
      if r.Trace.time < detect_time then
        match r.Trace.event with
        | Event.Read_answered { slave = 0; outcome = "accepted"; _ } -> incr reads_before
        | Event.Attack_launched { slave = 0; _ } -> incr acts_launched
        | Event.Pledge_signed { slave = 0; lied = true; _ } -> incr acts_lied
        | _ -> ())
    events;
  let detector, detected =
    match detect with
    | Some (tag, _) -> (tag, true)
    | None ->
      if family name = "adaptive" && !launched = 0 then ("suppressed", true)
      else ("-", false)
  in
  {
    detector;
    detected;
    detect_time;
    reads_before = !reads_before;
    attacks_before = max !acts_launched !acts_lied;
    launched = !launched;
    suppressed = !suppressed;
    quarantines = !quarantines;
    false_accusations = List.length !false_acc;
    audited = Auditor.audited (System.auditor system);
    late = Auditor.late_pledges (System.auditor system);
    stale_rej =
      Secrep_sim.Stats.get (System.stats system) "client.stale_rejections";
  }

let run ?(quick = false) fmt =
  let duration = if quick then 60.0 else 120.0 in
  let trials = if quick then 4 else 10 in
  let read_rate = 8.0 in
  (* Part 1: full hardening (nonces + adaptive auditing at the full
     audit budget), blatant prob-1.0 attacker — every attack mode must
     be neutralized. *)
  let hardened =
    List.map
      (fun mode ->
        ( fst mode,
          run_case ~mode ~adaptive:true ~audit_fraction:1.0 ~lie_prob:1.0 ~dc_p:0.05
            ~read_nonces:true ~write_rate:0.05 ~duration ~read_rate ~seed:424242L ))
      attack_modes
  in
  Exp_common.table fmt
    ~title:
      "E13a Strategic attacks vs the hardened protocol (read nonces +\n\
      \     suspicion-weighted auditing, full audit budget)"
    ~header:
      [ "mode"; "launched"; "suppressed"; "detector"; "detect (s)"; "attacks-before";
        "false-acc" ]
    (List.map
       (fun (name, o) ->
         [
           name;
           string_of_int o.launched;
           string_of_int o.suppressed;
           o.detector;
           (if o.detected && o.detector <> "suppressed" then Exp_common.f2 o.detect_time
            else "-");
           string_of_int o.attacks_before;
           string_of_int o.false_accusations;
         ])
       hardened);
  let all_detected = List.for_all (fun (_, o) -> o.detected) hardened in
  let no_false = List.for_all (fun (_, o) -> o.false_accusations = 0) hardened in
  Format.fprintf fmt "@.all attack modes detected: %b   zero false accusations: %b@."
    all_detected no_false;
  (* Part 2: uniform vs adaptive at the same audit fraction, against
     the audit-evasive portfolio.  A modest write stream keeps the
     audit cursor moving so a frozen replica's pledges actually fall
     behind it.  Means over [trials] seeds per mode. *)
  let fraction = 0.25 in
  let writes = 2.0 in
  let mean_of ~adaptive (name, fault, lie_prob) =
    let outs =
      List.init trials (fun i ->
          (* dc_p = 0 and nonces off isolate the audit layer: the only
             detector in play is the sampling policy under test. *)
          run_case ~mode:(name, fault) ~adaptive ~audit_fraction:fraction ~lie_prob
            ~dc_p:0.0 ~read_nonces:false ~write_rate:writes ~duration ~read_rate
            ~seed:(Int64.of_int (1000 + (i * 7919))))
    in
    if Sys.getenv_opt "SECREP_E13_DEBUG" <> None then
      List.iteri
        (fun i o ->
          Printf.eprintf
            "debug %s adaptive=%b trial=%d detector=%s t=%.2f reads=%d audited=%d \
             quar=%d late=%d stale_rej=%d\n%!"
            name adaptive i o.detector o.detect_time o.reads_before o.audited
            o.quarantines o.late o.stale_rej)
        outs;
    let mean f = Exp_common.mean (List.map f outs) in
    ( mean (fun o -> float_of_int o.reads_before),
      mean (fun o -> float_of_int o.audited),
      List.length (List.filter (fun o -> o.detected) outs),
      List.exists (fun o -> o.false_accusations > 0) outs )
  in
  let compared =
    List.map
      (fun ((name, _, _) as mode) ->
        let u_reads, u_audited, u_detected, u_false = mean_of ~adaptive:false mode in
        let a_reads, a_audited, a_detected, a_false = mean_of ~adaptive:true mode in
        ( name, u_reads, u_audited, u_detected, a_reads, a_audited, a_detected,
          u_false || a_false ))
      evasive_modes
  in
  Exp_common.table fmt
    ~title:
      (Printf.sprintf
         "E13b Uniform vs suspicion-weighted audit sampling at equal budget\n\
         \     (audit fraction %.2f, %.0f write/s, %d trials/mode; corrupt and\n\
         \     stale are controls that re-execution convicts either way, the\n\
         \     replayer evades re-execution entirely; reads-before-detection\n\
         \     censored at end-of-run for unflagged attackers)"
         fraction writes trials)
    ~header:
      [ "mode"; "uniform reads"; "uniform audited"; "caught"; "adaptive reads";
        "adaptive audited"; "caught" ]
    (List.map
       (fun (name, ur, ub, ud, ar, ab, ad, _) ->
         [
           name;
           Exp_common.f2 ur;
           Exp_common.f2 ub;
           Printf.sprintf "%d/%d" ud trials;
           Exp_common.f2 ar;
           Exp_common.f2 ab;
           Printf.sprintf "%d/%d" ad trials;
         ])
       compared);
  let uniform_mean =
    Exp_common.mean (List.map (fun (_, ur, _, _, _, _, _, _) -> ur) compared)
  in
  let adaptive_mean =
    Exp_common.mean (List.map (fun (_, _, _, _, ar, _, _, _) -> ar) compared)
  in
  let any_false = List.exists (fun (_, _, _, _, _, _, _, f) -> f) compared in
  let strictly_better = adaptive_mean < uniform_mean in
  Format.fprintf fmt
    "@.mean reads-before-detection: uniform %.2f vs adaptive %.2f — adaptive strictly \
     better: %b   zero false accusations: %b@."
    uniform_mean adaptive_mean strictly_better (not any_false);
  match Sys.getenv_opt "SECREP_E13_JSON" with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let part1 =
      String.concat ",\n  "
        (List.map
           (fun (name, o) ->
             Printf.sprintf
               "{\"mode\": \"%s\", \"detected\": %b, \"detector\": \"%s\", \
                \"detect_time\": %.3f, \"reads_before\": %d, \"attacks_before\": %d, \
                \"launched\": %d, \"suppressed\": %d, \"quarantines\": %d, \
                \"false_accusations\": %d}"
               name o.detected o.detector o.detect_time o.reads_before o.attacks_before
               o.launched o.suppressed o.quarantines o.false_accusations)
           hardened)
    in
    let part2 =
      String.concat ",\n  "
        (List.map
           (fun (name, ur, ub, ud, ar, ab, ad, _) ->
             Printf.sprintf
               "{\"mode\": \"%s\", \"uniform_reads\": %.3f, \"uniform_audited\": %.1f, \
                \"uniform_caught\": %d, \"adaptive_reads\": %.3f, \"adaptive_audited\": \
                %.1f, \"adaptive_caught\": %d}"
               name ur ub ud ar ab ad)
           compared)
    in
    Printf.fprintf oc
      "{\"experiment\": \"e13\", \"duration\": %.1f, \"trials\": %d, \"fraction\": %.2f,\n\
      \ \"all_detected\": %b, \"zero_false_accusations\": %b,\n\
      \ \"uniform_mean_reads\": %.3f, \"adaptive_mean_reads\": %.3f,\n\
      \ \"adaptive_strictly_better\": %b,\n\
      \ \"hardened\": [%s],\n\
      \ \"compared\": [%s]}\n"
      duration trials fraction all_detected
      (no_false && not any_false)
      uniform_mean adaptive_mean strictly_better part1 part2;
    close_out oc;
    Format.fprintf fmt "wrote JSON summary to %s@." path
