(* Benchmark & experiment harness.

   Usage: dune exec bench/main.exe -- [--full] [e1 e2 ... e8 | micro | all]

   With no arguments every experiment plus the micro-benchmarks run in
   quick mode; --full lengthens the runs (more trials, longer
   simulated durations).  Each experiment regenerates one table or
   figure of EXPERIMENTS.md. *)

let experiments =
  [
    ("e1", "double-check detection vs p", Secrep_experiments.Exp1_detection.run);
    ("e2", "audit guarantees eventual detection", Secrep_experiments.Exp2_audit.run);
    ("e3", "cost vs SMR and state signing", Secrep_experiments.Exp3_cost.run);
    ("e4", "max_latency staleness bound", Secrep_experiments.Exp4_staleness.run);
    ("e5", "write rate cap", Secrep_experiments.Exp5_writes.run);
    ("e6", "auditor asymmetry + diurnal catch-up", Secrep_experiments.Exp6_auditor.run);
    ("e7", "security-levelled reads", Secrep_experiments.Exp7_levels.run);
    ("e8", "quorum reads vs collusion", Secrep_experiments.Exp8_quorum.run);
    ("e9", "ablations: audit cache, extra auditors, greedy throttle",
     Secrep_experiments.Exp9_ablation.run);
    ("e10", "availability + detection latency under churn and partitions",
     Secrep_experiments.Exp10_churn.run);
    ("e11", "deduplicated audit re-execution + Merkle-batched pledge signing",
     Secrep_experiments.Exp11_audit.run);
    ("e12", "sharded content plane: throughput + detection vs shard count",
     Secrep_experiments.Exp12_shard.run);
    ("e13", "strategic adversaries: uniform vs suspicion-weighted auditing",
     Secrep_experiments.Exp13_adversary.run);
    ("e14", "domain-parallel shard execution: speedup + determinism oracle",
     Secrep_experiments.Exp14_parallel.run);
    ("e15", "Montgomery crypto kernel: ops/s + bit-identity vs seed baseline",
     Secrep_experiments.Exp15_crypto.run);
    ("micro", "primitive micro-benchmarks (bechamel)", Secrep_experiments.Micro.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let quick = not full in
  let selected =
    match List.filter (fun a -> a <> "--full" && a <> "all") args with
    | [] -> List.map (fun (name, _, _) -> name) experiments
    | names -> names
  in
  let fmt = Format.std_formatter in
  Format.fprintf fmt
    "secrep experiment harness (%s mode) — reproducing the quantitative claims of@.\
     Popescu, Crispo & Tanenbaum, \"Secure Data Replication over Untrusted Hosts\" \
     (HotOS 2003)@."
    (if quick then "quick" else "full");
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some (n, description, run) ->
        Format.fprintf fmt "@.=== %s: %s ===@." (String.uppercase_ascii n) description;
        let t0 = Unix.gettimeofday () in
        run ~quick fmt;
        Format.fprintf fmt "(%s took %.1fs wall-clock)@." n (Unix.gettimeofday () -. t0)
      | None ->
        Format.fprintf fmt "unknown experiment %S; available: %s@." name
          (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
        exit 1)
    selected
