(* E10 — availability and detection under churn (robustness).

   The paper's protocol is specified against a well-behaved network;
   this experiment measures what the implementation does on a hostile
   one.  Two measurements:

   (a) Availability vs chaos intensity: seeded-random fault timelines
       (partitions, crash-recover churn, loss bursts, latency spikes)
       of increasing density while clients keep reading.  Every read
       must still complete — accepted from a slave, served degraded by
       the trusted master, or an explicit give-up — and honest slaves
       must never be accused no matter how hard the network misbehaves.

   (b) Detection latency under partition: a lying slave with the
       auditor cut off for part of the run.  Exclusion still happens,
       it just waits for the evidence path to heal — detection latency
       degrades gracefully instead of detection being lost. *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Client = Secrep_core.Client
module Corrective = Secrep_core.Corrective
module Fault = Secrep_core.Fault
module Stats = Secrep_sim.Stats
module Sim = Secrep_sim.Sim
module Prng = Secrep_crypto.Prng
module Query = Secrep_store.Query
module Oplog = Secrep_store.Oplog
module Value = Secrep_store.Value
module Schedule = Secrep_chaos.Schedule
module Injector = Secrep_chaos.Injector

let churn_config =
  {
    Exp_common.base_config with
    Config.max_latency = 2.0;
    keepalive_period = 0.5;
    double_check_probability = 0.05;
    breaker_cooldown = 5.0;
  }

let availability fmt ~quick =
  let duration = if quick then 60.0 else 150.0 in
  let n_reads = if quick then 120 else 400 in
  let rows =
    List.map
      (fun intensity ->
        let system =
          System.create ~n_masters:2 ~slaves_per_master:3 ~n_clients:4
            ~config:churn_config ~net:System.lan_net ~seed:101L ()
        in
        let g = Prng.create ~seed:102L in
        System.load_content system (Secrep_workload.Catalog.product_catalog g ~n:50);
        let schedule =
          if intensity = 0.0 then []
          else
            Schedule.random ~rng:(Prng.create ~seed:103L) ~duration
              ~n_slaves:(System.n_slaves system) ~n_masters:2 ~n_clients:4 ~intensity ()
        in
        Injector.apply system schedule;
        (* A write stream so recovered slaves have real state to miss. *)
        for i = 0 to 9 do
          ignore
            (Sim.schedule (System.sim system)
               ~delay:(duration *. float_of_int i /. 10.0)
               (fun () ->
                 System.write system ~client:0
                   (Oplog.Set_field
                      { key = "product:00001"; field = "stock"; value = Value.Int (100 + i) })
                   ~on_done:(fun _ -> ())))
        done;
        let accepted = ref 0 and by_master = ref 0 and gave_up = ref 0 in
        for i = 0 to n_reads - 1 do
          ignore
            (Sim.schedule (System.sim system)
               ~delay:(duration *. float_of_int i /. float_of_int n_reads)
               (fun () ->
                 System.read system
                   ~client:(i mod System.n_clients system)
                   (Query.point_read (Printf.sprintf "product:%05d" (1 + (i mod 50))))
                   ~on_done:(fun r ->
                     match r.Client.outcome with
                     | `Accepted _ -> incr accepted
                     | `Served_by_master _ -> incr by_master
                     | `Gave_up -> incr gave_up)))
        done;
        System.run_for system (duration +. 120.0);
        let stats = System.stats system in
        let completed = !accepted + !by_master + !gave_up in
        [
          Exp_common.f2 intensity;
          string_of_int (List.length schedule);
          Printf.sprintf "%d/%d" completed n_reads;
          string_of_int !accepted;
          string_of_int !by_master;
          string_of_int !gave_up;
          string_of_int (Stats.get stats "client.read_timeouts");
          Printf.sprintf "%d/%d"
            (Stats.get stats "client.breaker_opened")
            (Stats.get stats "client.breaker_closed");
          string_of_int (List.length (Corrective.events (System.corrective system)));
        ])
      [ 0.0; 0.5; 1.0; 2.0 ]
  in
  Exp_common.table fmt
    ~title:
      "E10a Availability under seeded-random churn (partitions, crashes, loss,\n\
      \     latency spikes; completed must equal issued, accusations must stay 0)"
    ~header:
      [
        "intensity";
        "actions";
        "completed";
        "accepted";
        "by-master";
        "gave up";
        "timeouts";
        "brk open/close";
        "accusations";
      ]
    rows

let detection_under_partition fmt ~quick =
  let n_reads = if quick then 60 else 150 in
  let attack_from = 10.0 in
  let run ~schedule =
    let system =
      System.create ~n_masters:1 ~slaves_per_master:2 ~n_clients:2 ~config:churn_config
        ~net:System.lan_net ~seed:201L ()
    in
    let g = Prng.create ~seed:202L in
    System.load_content system (Secrep_workload.Catalog.product_catalog g ~n:50);
    let victim = System.slave_of_client system 0 in
    System.set_slave_behavior system ~slave:victim
      (Fault.Malicious
         { probability = 1.0; mode = Fault.Corrupt_result; from_time = attack_from });
    Injector.apply system (schedule ~victim);
    for i = 0 to n_reads - 1 do
      ignore
        (Sim.schedule (System.sim system) ~delay:(0.5 *. float_of_int i) (fun () ->
             System.read system ~client:0
               (Query.point_read (Printf.sprintf "product:%05d" (1 + (i mod 50))))
               ~on_done:(fun _ -> ())))
    done;
    System.run_for system (0.5 *. float_of_int n_reads +. 240.0);
    let detection =
      match Corrective.events (System.corrective system) with
      | [] -> None
      | events ->
        Some
          (List.fold_left
             (fun acc e -> Float.min acc e.Corrective.time)
             infinity events)
    in
    let wrong = Stats.get (System.stats system) "system.accepted_wrong" in
    (detection, wrong)
  in
  let rows =
    List.map
      (fun (label, schedule) ->
        let detection, wrong = run ~schedule in
        [
          label;
          (match detection with
          | Some t -> Exp_common.f2 (t -. attack_from)
          | None -> "never");
          string_of_int wrong;
        ])
      [
        ("clean network", fun ~victim:_ -> []);
        ( "auditor cut 5s-60s",
          fun ~victim:_ ->
            [
              { Schedule.time = 5.0; action = Schedule.Cut_auditor };
              { Schedule.time = 60.0; action = Schedule.Heal_auditor };
            ] );
        ( "victim partitioned 20s-50s",
          fun ~victim ->
            [
              { Schedule.time = 20.0; action = Schedule.Cut_slave victim };
              { Schedule.time = 50.0; action = Schedule.Heal_slave victim };
            ] );
      ]
  in
  Exp_common.table fmt
    ~title:
      "E10b Detection latency for a lying slave when the evidence path is\n\
      \     partitioned (attack from t=10s; latency measured from attack start)"
    ~header:[ "network"; "detection latency (s)"; "wrong accepts" ]
    rows

let run ?(quick = false) fmt =
  availability fmt ~quick;
  detection_under_partition fmt ~quick
