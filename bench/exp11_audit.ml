(* E11 — Deduplicated audit re-execution + Merkle-batched pledge signing.

   The paper's auditor re-executes every read it audits (§3.4); the slave
   signs every pledge.  Under a skewed (Zipf) read mix both are mostly
   redundant work: the same query against the same content version keeps
   being re-executed, and consecutive pledges from one slave can share a
   single signature over a Merkle root.

   Baseline here is the *naive per-pledge* auditor (result cache ablated to
   capacity 1, E9's knob) with one RSA signature per pledge.  The optimized
   variant turns on the audit dedup index and batches pledge signing.  The
   default LRU result cache sits between the two and is shown for scale. *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Auditor = Secrep_core.Auditor
module Stats = Secrep_sim.Stats
module Sim = Secrep_sim.Sim
module Work_queue = Secrep_sim.Work_queue
module Prng = Secrep_crypto.Prng
module Query = Secrep_store.Query
module Zipf = Secrep_workload.Zipf

type outcome = {
  audited : int;
  reexecs : int;
  signatures : int;
  dedup_hits : int;
  distinct : int;
  cpu : float;
}

let run_case ~batch ~window ~dedup ~cache_capacity ~n_reads ~seed =
  let config =
    {
      Exp_common.base_config with
      Config.double_check_probability = 0.0;
      audit_cache_capacity = cache_capacity;
      pledge_batch_size = batch;
      pledge_batch_window = window;
      audit_dedup = dedup;
      per_doc_cost = 1e-3;
    }
  in
  let system =
    System.create ~n_masters:2 ~slaves_per_master:3 ~n_clients:6 ~config ~seed ()
  in
  let g = Prng.create ~seed:(Int64.add seed 5L) in
  let content = Secrep_workload.Catalog.product_catalog g ~n:150 in
  System.load_content system content;
  let keys = Array.of_list (List.map fst content) in
  let zipf = Zipf.create ~n:150 ~s:1.0 in
  let spacing = 0.03 in
  for i = 0 to n_reads - 1 do
    ignore
      (Sim.schedule (System.sim system) ~delay:(spacing *. float_of_int i) (fun () ->
           let query = Query.point_read keys.(Zipf.sample zipf g) in
           System.read system ~client:(i mod 6) query ~on_done:(fun _ -> ())))
  done;
  System.run_for system ((spacing *. float_of_int n_reads) +. 120.0);
  let stats = System.stats system in
  let auditors = System.auditors system in
  {
    audited = List.fold_left (fun acc a -> acc + Auditor.audited a) 0 auditors;
    reexecs = Stats.get stats "auditor.reexecutions";
    signatures = Stats.get stats "slave.signatures";
    dedup_hits = List.fold_left (fun acc a -> acc + Auditor.dedup_hits a) 0 auditors;
    distinct =
      List.fold_left (fun acc a -> acc + Auditor.distinct_reexecs a) 0 auditors;
    cpu =
      List.fold_left
        (fun acc a -> acc +. Work_queue.busy_seconds (Auditor.work a))
        0.0 auditors;
  }

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let run ?(quick = false) fmt =
  let n_reads = if quick then 600 else 2000 in
  (* Per-slave pledge inter-arrival is spacing * n_clients = 0.18 s, so a
     2 s window lets the size trigger (batch of 8) dominate. *)
  let cases =
    [
      ("naive per-pledge (cache off, batch 1)", 1, 0.05, false, 1);
      ("LRU result cache only (seed default)", 1, 0.05, false, 4096);
      ("dedup index, unbatched", 1, 0.05, true, 4096);
      ("dedup index + batch 8", 8, 2.0, true, 4096);
    ]
  in
  let results =
    List.map
      (fun (label, batch, window, dedup, cache_capacity) ->
        ( label,
          run_case ~batch ~window ~dedup ~cache_capacity ~n_reads ~seed:111L ))
      cases
  in
  let rows =
    List.map
      (fun (label, o) ->
        [
          label;
          string_of_int o.audited;
          string_of_int o.reexecs;
          string_of_int o.dedup_hits;
          string_of_int o.signatures;
          Exp_common.f2 o.cpu;
        ])
      results
  in
  Exp_common.table fmt
    ~title:
      "E11  Audit dedup + Merkle-batched pledges: Zipf(1.0) point reads over\n\
      \     150 items; redundant re-execution and per-pledge signing ablated"
    ~header:
      [ "variant"; "audited"; "re-execs"; "dedup hits"; "slave sigs"; "auditor cpu (s)" ]
    rows;
  let baseline = List.assoc "naive per-pledge (cache off, batch 1)" results in
  let optimized = List.assoc "dedup index + batch 8" results in
  let reexec_reduction = ratio baseline.reexecs (max 1 optimized.reexecs) in
  let sig_reduction = ratio baseline.signatures (max 1 optimized.signatures) in
  let hit_rate =
    ratio optimized.dedup_hits (optimized.dedup_hits + optimized.distinct)
  in
  Format.fprintf fmt
    "@.re-execution reduction: %sx   signature reduction: %sx   dedup hit rate: %s@."
    (Exp_common.f2 reexec_reduction)
    (Exp_common.f2 sig_reduction) (Exp_common.pct hit_rate);
  match Sys.getenv_opt "SECREP_E11_JSON" with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\"experiment\": \"e11\", \"n_reads\": %d,\n\
        \ \"baseline\": {\"reexecs\": %d, \"signatures\": %d},\n\
        \ \"optimized\": {\"reexecs\": %d, \"signatures\": %d,\n\
        \                \"dedup_hits\": %d, \"distinct_reexecs\": %d},\n\
        \ \"reexec_reduction\": %.3f, \"signature_reduction\": %.3f,\n\
        \ \"dedup_hit_rate\": %.4f}\n"
        n_reads baseline.reexecs baseline.signatures optimized.reexecs
        optimized.signatures optimized.dedup_hits optimized.distinct
        reexec_reduction sig_reduction hit_rate;
      close_out oc;
      Format.fprintf fmt "wrote JSON summary to %s@." path
