(* Micro-benchmarks (Bechamel): the primitive costs behind the
   simulation's cost model — hashing, signatures (the slave/auditor
   asymmetry), Merkle proofs, query evaluation by class, regex
   matching, bignum kernels, pledge round-trips and the event queue. *)

open Bechamel
open Toolkit
module Crypto = Secrep_crypto
module Store = Secrep_store

let data_64 = String.make 64 'a'
let data_1k = String.make 1024 'b'
let data_64k = String.make 65536 'c'

let rsa_key =
  lazy
    (let g = Crypto.Prng.create ~seed:11L in
     Crypto.Rsa.generate g ~bits:512)

let rsa_signature = lazy (Crypto.Rsa.sign (Lazy.force rsa_key) data_64)

let hmac_key =
  lazy
    (let g = Crypto.Prng.create ~seed:12L in
     Crypto.Sig_scheme.generate Crypto.Sig_scheme.Hmac_sim g)

let merkle_tree = lazy (Crypto.Merkle.build (List.init 1024 (Printf.sprintf "leaf-%d")))

let fixture_store =
  lazy
    (let g = Crypto.Prng.create ~seed:13L in
     let store = Store.Store.create () in
     List.iter
       (fun (key, doc) -> Store.Store.apply store (Store.Oplog.Put { key; doc }))
       (Secrep_workload.Catalog.product_catalog g ~n:1000);
     store)

let grep_query = Store.Query.grep "deluxe"

let agg_query =
  Store.Query.Aggregate { from = Store.Query.All; where = Store.Query.True; agg = Store.Query.Sum "price" }

let regex = lazy (Store.Regex.compile "model [0-9]+")

let bn_a = lazy (Crypto.Bignum.of_hex (String.make 128 '7'))
let bn_b = lazy (Crypto.Bignum.of_hex (String.make 64 '3'))

let mont_fixture =
  lazy
    (let n = (Lazy.force rsa_key).Crypto.Rsa.pub.Crypto.Rsa.n in
     let ctx =
       match Crypto.Bignum.Mont.make n with Some c -> c | None -> assert false
     in
     let x = Crypto.Bignum.Mont.to_mont ctx (Lazy.force bn_b) in
     (n, ctx, x))

let modexp_exp = lazy ((Lazy.force rsa_key).Crypto.Rsa.d)

let pledge_fixture =
  lazy
    (let g = Crypto.Prng.create ~seed:14L in
     let master_key = Crypto.Sig_scheme.generate Crypto.Sig_scheme.Hmac_sim g in
     let slave_key = Crypto.Sig_scheme.generate Crypto.Sig_scheme.Hmac_sim g in
     let keepalive =
       Secrep_core.Keepalive.make ~master_key ~content_id:"cid" ~master_id:0 ~version:1
         ~now:0.0
     in
     let result = Store.Query_result.Agg (Store.Value.Int 7) in
     (slave_key, master_key, keepalive, result))

let tests =
  [
    Test.make ~name:"sha1/64B" (Staged.stage (fun () -> Crypto.Sha1.digest data_64));
    Test.make ~name:"sha1/1KiB" (Staged.stage (fun () -> Crypto.Sha1.digest data_1k));
    Test.make ~name:"sha1/64KiB" (Staged.stage (fun () -> Crypto.Sha1.digest data_64k));
    Test.make ~name:"sha256/1KiB" (Staged.stage (fun () -> Crypto.Sha256.digest data_1k));
    Test.make ~name:"hmac-sha256/64B"
      (Staged.stage (fun () -> Crypto.Hmac.mac ~hash:Crypto.Hmac.Sha256 ~key:"k" data_64));
    Test.make ~name:"rsa512/sign"
      (Staged.stage (fun () -> Crypto.Rsa.sign (Lazy.force rsa_key) data_64));
    Test.make ~name:"rsa512/verify"
      (Staged.stage (fun () ->
           Crypto.Rsa.verify (Lazy.force rsa_key).Crypto.Rsa.pub ~msg:data_64
             ~signature:(Lazy.force rsa_signature)));
    Test.make ~name:"hmac-sim/sign"
      (Staged.stage (fun () -> Crypto.Sig_scheme.sign (Lazy.force hmac_key) data_64));
    Test.make ~name:"merkle/build-1024"
      (Staged.stage (fun () -> Crypto.Merkle.build (List.init 1024 string_of_int)));
    Test.make ~name:"merkle/prove"
      (Staged.stage (fun () -> Crypto.Merkle.prove (Lazy.force merkle_tree) 500));
    Test.make ~name:"merkle/verify"
      (Staged.stage
         (let proof = lazy (Crypto.Merkle.prove (Lazy.force merkle_tree) 500) in
          fun () ->
            Crypto.Merkle.verify
              ~root:(Crypto.Merkle.root (Lazy.force merkle_tree))
              ~leaf:"leaf-500" (Lazy.force proof)));
    Test.make ~name:"query/point-read-1k-docs"
      (Staged.stage (fun () ->
           Store.Query_eval.execute_exn (Lazy.force fixture_store)
             (Store.Query.point_read "product:00500")));
    Test.make ~name:"query/grep-1k-docs"
      (Staged.stage (fun () ->
           Store.Query_eval.execute_exn (Lazy.force fixture_store) grep_query));
    Test.make ~name:"query/aggregate-1k-docs"
      (Staged.stage (fun () ->
           Store.Query_eval.execute_exn (Lazy.force fixture_store) agg_query));
    Test.make ~name:"regex/match-64B"
      (Staged.stage (fun () -> Store.Regex.matches (Lazy.force regex) data_64));
    Test.make ~name:"bignum/mul-512x256"
      (Staged.stage (fun () -> Crypto.Bignum.mul (Lazy.force bn_a) (Lazy.force bn_b)));
    Test.make ~name:"bignum/divmod-512/256"
      (Staged.stage (fun () -> Crypto.Bignum.divmod (Lazy.force bn_a) (Lazy.force bn_b)));
    Test.make ~name:"bignum/mont-mul-512"
      (Staged.stage (fun () ->
           let _, ctx, x = Lazy.force mont_fixture in
           Crypto.Bignum.Mont.mul ctx x x));
    Test.make ~name:"bignum/modexp-mont-512"
      (Staged.stage (fun () ->
           let n, _, _ = Lazy.force mont_fixture in
           Crypto.Bignum.mod_exp ~base:(Lazy.force bn_b) ~exp:(Lazy.force modexp_exp)
             ~modulus:n));
    Test.make ~name:"bignum/modexp-schoolbook-512"
      (Staged.stage (fun () ->
           let n, _, _ = Lazy.force mont_fixture in
           Crypto.Bignum.mod_exp_schoolbook ~base:(Lazy.force bn_b)
             ~exp:(Lazy.force modexp_exp) ~modulus:n));
    Test.make ~name:"bignum/to_decimal-512"
      (Staged.stage (fun () -> Crypto.Bignum.to_decimal (Lazy.force bn_a)));
    Test.make ~name:"hmac-fresh-schedule/64B"
      (Staged.stage (fun () ->
           Crypto.Hmac.mac_with (Crypto.Hmac.schedule ~hash:Crypto.Hmac.Sha256 ~key:"k")
             data_64));
    Test.make ~name:"pledge/make+verify"
      (Staged.stage (fun () ->
           let slave_key, master_key, keepalive, result = Lazy.force pledge_fixture in
           let pledge =
             Secrep_core.Pledge.make ~slave_key ~slave_id:0
               ~query:(Store.Query.point_read "k")
               ~result_digest:(Store.Canonical.result_digest result)
               ~keepalive ()
           in
           Secrep_core.Pledge.verify
             ~slave_public:(Crypto.Sig_scheme.public_of slave_key)
             ~master_public:(Crypto.Sig_scheme.public_of master_key)
             ~result ~now:1.0 ~max_latency:10.0 pledge));
    Test.make ~name:"event_queue/push+pop-1k"
      (Staged.stage (fun () ->
           let q = Secrep_sim.Event_queue.create () in
           for i = 0 to 999 do
             ignore (Secrep_sim.Event_queue.push q ~time:(float_of_int (i * 7919 mod 1000)) i)
           done;
           while Secrep_sim.Event_queue.pop q <> None do
             ()
           done));
  ]

let run ?(quick = false) fmt =
  let quota = if quick then 0.2 else 0.5 in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true () in
  Format.fprintf fmt "@.Micro-benchmarks (ns per call, OLS fit)@.%s@."
    (String.make 64 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Format.fprintf fmt "%-28s %14.1f ns/run@." name est
          | Some [] | None -> Format.fprintf fmt "%-28s (no estimate)@." name)
        analysis)
    tests;
  Format.fprintf fmt "%s@." (String.make 64 '-')
