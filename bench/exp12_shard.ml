(* E12 — Sharding the content plane: throughput + detection vs shard count.

   One protocol instance serializes all pledge signing through a handful
   of replicas; with realistic signature cost a single shard saturates
   well below the offered read rate.  Sharding the catalogue over K
   independent content items (each its own masters/slaves/auditor,
   placed by rendezvous hashing on one shared host pool) divides the
   offered load K ways while the §3.4 audit machinery keeps running
   *per shard* — so detection latency for a liar inside any one shard
   should stay flat as K grows.

   Fixed hardware budget: the host pool, replication factor per shard,
   and total offered read rate are identical across every K; only the
   shard count changes.  We report aggregate accepted-read throughput
   (expected to rise monotonically K=1 -> 16 as the signing bottleneck
   is divided) and per-shard detection latency for one liar per shard
   (first lied pledge -> exclusion, expected within the
   max_latency + audit_lag_slack budget regardless of K). *)

module Deployment = Secrep_shard.Deployment
module System = Secrep_core.System
module Config = Secrep_core.Config
module Fault = Secrep_core.Fault
module Event = Secrep_sim.Event
module Trace = Secrep_sim.Trace
module Prng = Secrep_crypto.Prng
module Query = Secrep_store.Query
module Zipf = Secrep_workload.Zipf

type outcome = {
  k : int;
  issued : int;
  accepted : int;
  gave_up : int;
  throughput : float;  (** slave-served reads / s of offered window *)
  liars : int;  (** shards whose liar actually lied during the run *)
  detected : int;
  mean_detect : float;
  max_detect : float;
}

let lie_from = 5.0
let replication = 3
let pool = 16  (* fixed hardware budget: same pool for every K *)

let config =
  {
    Exp_common.base_config with
    Config.max_latency = 4.0;
    keepalive_period = 1.0;
    double_check_probability = 0.05;
    audit_lag_slack = 1.0;
    (* The knob that makes few-shard deployments saturate: each pledge
       costs real signing time on the serving slave's work queue, so a
       shard's capacity is replication/signature_cost ~ 14 reads/s —
       well under the offered 60/s at K=1, just under it at K=4. *)
    signature_cost = 0.21;
    (* No trusted-master fallback: overload must surface as give-ups,
       not as reads quietly absorbed by the master. *)
    degraded_reads = false;
  }

let run_case ~k ~duration ~total_rate ~seed =
  let d =
    Deployment.create ~n_shards:k ~n_masters:1 ~replication_factor:replication
      ~n_clients:4 ~pool_size:pool ~config ~seed ~items_per_shard:40 ()
  in
  (* One liar per shard: local slave 0, corrupting 20% of answers. *)
  for i = 0 to k - 1 do
    System.set_slave_behavior (Deployment.system d i) ~slave:0
      (Fault.Malicious
         { probability = 0.2; mode = Fault.Corrupt_result; from_time = lie_from })
  done;
  (* Detection bookkeeping straight off the merged event stream. *)
  let first_lie = Array.make k nan and excluded_at = Array.make k nan in
  Deployment.on_event d (fun ~shard r ->
      match r.Trace.event with
      | Event.Pledge_signed { lied = true; _ } when Float.is_nan first_lie.(shard) ->
        first_lie.(shard) <- r.Trace.time
      | Event.Slave_excluded _ when Float.is_nan excluded_at.(shard) ->
        excluded_at.(shard) <- r.Trace.time
      | _ -> ());
  (* Fixed offered load, split evenly: each shard gets a Zipf point-read
     stream at total_rate / k, phase-shifted so arrivals interleave. *)
  let issued = ref 0 and accepted = ref 0 and gave_up = ref 0 in
  (* Round the total down to a multiple of 64 so every K in the sweep
     offers exactly the same number of reads. *)
  let total = int_of_float (total_rate *. duration) / 64 * 64 in
  let per_shard = total / k in
  let spacing = duration /. float_of_int per_shard in
  for i = 0 to k - 1 do
    let keys = Deployment.keys d i in
    let zipf = Zipf.create ~n:(Array.length keys) ~s:0.9 in
    let g = Prng.create ~seed:(Int64.add seed (Int64.of_int (7000 + i))) in
    for j = 0 to per_shard - 1 do
      let at =
        1.0 +. (spacing *. float_of_int j)
        +. (spacing *. float_of_int i /. float_of_int k)
      in
      Deployment.schedule d ~shard:i ~time:at (fun () ->
          incr issued;
          let query = Query.point_read keys.(Zipf.sample zipf g) in
          Deployment.read d ~shard:i ~client:(j mod 4) query ~on_done:(fun report ->
              match report.Secrep_core.Client.outcome with
              | `Accepted _ -> incr accepted
              | `Served_by_master _ | `Gave_up -> incr gave_up))
    done
  done;
  Deployment.run_until d
    (duration +. (10.0 *. config.Config.max_latency) +. 60.0);
  let detections =
    List.filter_map
      (fun i ->
        if Float.is_nan first_lie.(i) || Float.is_nan excluded_at.(i) then None
        else Some (excluded_at.(i) -. first_lie.(i)))
      (List.init k (fun i -> i))
  in
  let lied_shards =
    List.length
      (List.filter
         (fun i -> not (Float.is_nan first_lie.(i)))
         (List.init k (fun i -> i)))
  in
  {
    k;
    issued = !issued;
    accepted = !accepted;
    gave_up = !gave_up;
    throughput = float_of_int !accepted /. duration;
    liars = lied_shards;
    detected = List.length detections;
    mean_detect = Exp_common.mean detections;
    max_detect = List.fold_left Float.max 0.0 detections;
  }

let run ?(quick = false) fmt =
  let ks = if quick then [ 1; 4; 16 ] else [ 1; 4; 16; 64 ] in
  let duration = if quick then 30.0 else 60.0 in
  let total_rate = 60.0 in
  let budget = config.Config.max_latency +. config.Config.audit_lag_slack in
  let results =
    List.map (fun k -> run_case ~k ~duration ~total_rate ~seed:424242L) ks
  in
  let rows =
    List.map
      (fun o ->
        [
          string_of_int o.k;
          string_of_int o.issued;
          string_of_int o.accepted;
          string_of_int o.gave_up;
          Exp_common.f2 o.throughput;
          Printf.sprintf "%d/%d" o.detected o.liars;
          Exp_common.f2 o.mean_detect;
          Exp_common.f2 o.max_detect;
        ])
      results
  in
  Exp_common.table fmt
    ~title:
      (Printf.sprintf
         "E12  Sharded content plane: %d-host pool, replication %d/shard,\n\
         \     %.0f reads/s offered total, one 20%%-liar per shard from t=%.0fs"
         pool replication total_rate lie_from)
    ~header:
      [
        "shards";
        "issued";
        "accepted";
        "gave up";
        "reads/s";
        "caught";
        "mean detect (s)";
        "max detect (s)";
      ]
    rows;
  let tp k = (List.find (fun o -> o.k = k) results).throughput in
  let monotone = tp 1 < tp 4 && tp 4 < tp 16 in
  let all_detected = List.for_all (fun o -> o.detected = o.liars) results in
  let within_budget =
    List.for_all (fun o -> o.detected = 0 || o.max_detect <= budget) results
  in
  Format.fprintf fmt
    "@.throughput monotone K=1->16: %b   all liars caught: %b   max detection \
     within %.1fs budget: %b@."
    monotone all_detected budget within_budget;
  match Sys.getenv_opt "SECREP_E12_JSON" with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      let case o =
        Printf.sprintf
          "{\"k\": %d, \"issued\": %d, \"accepted\": %d, \"gave_up\": %d,\n\
          \  \"throughput\": %.3f, \"liars\": %d, \"detected\": %d,\n\
          \  \"mean_detection\": %.3f, \"max_detection\": %.3f}"
          o.k o.issued o.accepted o.gave_up o.throughput o.liars o.detected
          o.mean_detect o.max_detect
      in
      Printf.fprintf oc
        "{\"experiment\": \"e12\", \"duration\": %.1f, \"offered_rate\": %.1f,\n\
        \ \"pool\": %d, \"replication\": %d,\n\
        \ \"detection_budget\": %.2f,\n\
        \ \"monotone_throughput\": %b, \"all_detected\": %b, \"within_budget\": %b,\n\
        \ \"cases\": [%s]}\n"
        duration total_rate pool replication budget monotone all_detected
        within_budget
        (String.concat ",\n  " (List.map case results));
      close_out oc;
      Format.fprintf fmt "wrote JSON summary to %s@." path
