(* E15 — Montgomery-kernel crypto plane: ops/s and end-to-end wall-clock.

   The crypto refactor is a pure speedup: every signature, MAC and
   digest must be bit-identical to the seed schoolbook path.  This
   experiment measures how much faster the hot path got — RSA sign
   (CRT, both halves in Montgomery form) and verify (e=65537 fast
   path) at 256/512/1024-bit keys, plus HMAC with the per-key schedule
   cache against rebuilding the schedule per call — and, for every
   row, cross-checks that both paths produce the same bytes.

   It also replays a small E1-style end-to-end run (RSA scheme so the
   crypto plane actually dominates) with the kernel on and off, and
   compares wall-clock AND the SHA-1 digest of the full event stream:
   speedup without bit-identical replay would be worthless here, the
   same bar E14 sets for the parallel scheduler.

   The >=2x sign/verify gate at 512 bits is enforced by the CI job's
   JSON check, conditioned on [gate_applies] (enough completed
   baseline iterations to trust the measurement) the way E14's
   speedup gate is conditioned on core count; the bit-identity oracle
   is asserted unconditionally, right here. *)

module Bignum = Secrep_crypto.Bignum
module Rsa = Secrep_crypto.Rsa
module Hmac = Secrep_crypto.Hmac
module Prng = Secrep_crypto.Prng
module Sha1 = Secrep_crypto.Sha1
module Hex = Secrep_crypto.Hex
module Sig_scheme = Secrep_crypto.Sig_scheme
module System = Secrep_core.System
module Config = Secrep_core.Config
module Sim = Secrep_sim.Sim
module Event = Secrep_sim.Event
module Trace = Secrep_sim.Trace
module Query = Secrep_store.Query

let with_flag v f =
  let saved = !Bignum.use_montgomery in
  Bignum.use_montgomery := v;
  Fun.protect ~finally:(fun () -> Bignum.use_montgomery := saved) f

(* Ops/s over a fixed wall-clock budget, [batch] calls per clock read
   so the timer does not distort sub-microsecond operations. *)
let ops_per_sec ~budget ~batch f =
  ignore (Sys.opaque_identity (f ()));
  let t0 = Unix.gettimeofday () in
  let n = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < budget do
    for _ = 1 to batch do
      ignore (Sys.opaque_identity (f ()))
    done;
    n := !n + batch;
    elapsed := Unix.gettimeofday () -. t0
  done;
  (float_of_int !n /. !elapsed, !n)

type row = {
  op : string;
  bits : int;
  mont : float;  (** ops/s, Montgomery kernel on *)
  seed : float;  (** ops/s, seed schoolbook path *)
  seed_iters : int;  (** completed baseline iterations *)
  identical : bool;  (** outputs byte-identical across paths *)
}

let msg = "e15: the auditor replays the pledge"

let rsa_rows ~budget =
  List.concat_map
    (fun bits ->
      let key =
        let g = Prng.create ~seed:(Int64.of_int (1500 + bits)) in
        Rsa.generate g ~bits
      in
      let sig_mont = with_flag true (fun () -> Rsa.sign key msg) in
      let sig_seed = with_flag false (fun () -> Rsa.sign key msg) in
      let sign_identical = String.equal sig_mont sig_seed in
      let verify_agrees =
        with_flag true (fun () -> Rsa.verify key.Rsa.pub ~msg ~signature:sig_mont)
        && with_flag false (fun () -> Rsa.verify key.Rsa.pub ~msg ~signature:sig_mont)
      in
      let measure enabled f = with_flag enabled (fun () -> ops_per_sec ~budget ~batch:1 f) in
      let s_mont, _ = measure true (fun () -> Rsa.sign key msg) in
      let s_seed, s_it = measure false (fun () -> Rsa.sign key msg) in
      let v_mont, _ =
        measure true (fun () -> Rsa.verify key.Rsa.pub ~msg ~signature:sig_mont)
      in
      let v_seed, v_it =
        measure false (fun () -> Rsa.verify key.Rsa.pub ~msg ~signature:sig_mont)
      in
      [
        { op = "sign"; bits; mont = s_mont; seed = s_seed; seed_iters = s_it;
          identical = sign_identical };
        { op = "verify"; bits; mont = v_mont; seed = v_seed; seed_iters = v_it;
          identical = verify_agrees };
      ])
    [ 256; 512; 1024 ]

let mac_row ~budget =
  let key = String.init 32 (fun i -> Char.chr ((i * 37) land 0xff)) in
  let cached = Hmac.mac ~hash:Hmac.Sha256 ~key msg in
  let fresh = Hmac.mac_with (Hmac.schedule ~hash:Hmac.Sha256 ~key) msg in
  let m_cached, _ =
    ops_per_sec ~budget ~batch:64 (fun () -> Hmac.mac ~hash:Hmac.Sha256 ~key msg)
  in
  let m_fresh, it =
    ops_per_sec ~budget ~batch:64 (fun () ->
        Hmac.mac_with (Hmac.schedule ~hash:Hmac.Sha256 ~key) msg)
  in
  { op = "hmac"; bits = 256; mont = m_cached; seed = m_fresh; seed_iters = it;
    identical = String.equal cached fresh }

(* A miniature E1: RSA-scheme system, a lying slave, sequential reads
   with double-checks.  Wall-clock includes key generation — Mr_prime
   runs in Montgomery form too — and the trace digest is the replay
   oracle. *)
let e2e_case ~bits ~reads ~seed =
  let config =
    { Exp_common.base_config with Config.scheme = Sig_scheme.Rsa { bits } }
  in
  let t0 = Unix.gettimeofday () in
  let system, keys =
    Exp_common.build_system ~config ~n_masters:1 ~slaves_per_master:2 ~n_clients:2
      ~seed ~n_items:50 ()
  in
  let ctx = Sha1.init () in
  Trace.on_emit (System.trace system) (fun r ->
      Sha1.feed ctx
        (Printf.sprintf "%.9f|%s|%s\n" r.Trace.time r.Trace.source
           (Event.to_string r.Trace.event)));
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Secrep_core.Fault.Malicious
       { probability = 0.3; mode = Secrep_core.Fault.Corrupt_result; from_time = 2.0 });
  for j = 0 to reads - 1 do
    ignore
      (Sim.schedule (System.sim system)
         ~delay:(1.0 +. (0.05 *. float_of_int j))
         (fun () ->
           System.read system ~client:(j mod 2)
             (Query.point_read keys.(j mod Array.length keys))
             ~on_done:ignore))
  done;
  System.run_for system ((0.05 *. float_of_int reads) +. 30.0);
  let wall = Unix.gettimeofday () -. t0 in
  (wall, Hex.encode (Sha1.finalize ctx))

let run ?(quick = false) fmt =
  let budget = if quick then 0.15 else 0.6 in
  let reads = if quick then 150 else 400 in
  let rows = rsa_rows ~budget in
  let mac = mac_row ~budget in
  let e2e_bits = 256 in
  let wall_mont, digest_mont =
    with_flag true (fun () -> e2e_case ~bits:e2e_bits ~reads ~seed:1515L)
  in
  let wall_seed, digest_seed =
    with_flag false (fun () -> e2e_case ~bits:e2e_bits ~reads ~seed:1515L)
  in
  let e2e_identical = String.equal digest_mont digest_seed in
  let all = rows @ [ mac ] in
  let table_rows =
    List.map
      (fun r ->
        [
          r.op;
          string_of_int r.bits;
          Printf.sprintf "%.1f" r.mont;
          Printf.sprintf "%.1f" r.seed;
          Printf.sprintf "%.2fx" (r.mont /. r.seed);
          (if r.identical then "identical" else "DIVERGED");
        ])
      all
    @ [
        [
          "e1-replay";
          string_of_int e2e_bits;
          Printf.sprintf "%.2fs" wall_mont;
          Printf.sprintf "%.2fs" wall_seed;
          Printf.sprintf "%.2fx" (wall_seed /. wall_mont);
          (if e2e_identical then "identical" else "DIVERGED");
        ];
      ]
  in
  Exp_common.table fmt
    ~title:
      (Printf.sprintf
         "E15  Montgomery crypto kernel vs seed schoolbook baseline\n\
         \     (ops/s per row; e1-replay row is end-to-end wall-clock incl. keygen,\n\
         \     %d sequential reads, RSA-%d scheme; hmac row: schedule cache vs rebuild)"
         reads e2e_bits)
    ~header:[ "op"; "bits"; "montgomery"; "seed"; "speedup"; "outputs" ]
    table_rows;
  let speedup_of op bits =
    match List.find_opt (fun r -> r.op = op && r.bits = bits) rows with
    | Some r -> r.mont /. r.seed
    | None -> 0.0
  in
  let iters_of op bits =
    match List.find_opt (fun r -> r.op = op && r.bits = bits) rows with
    | Some r -> r.seed_iters
    | None -> 0
  in
  let ops_of op bits =
    match List.find_opt (fun r -> r.op = op && r.bits = bits) rows with
    | Some r -> (r.mont, r.seed)
    | None -> (1.0, 1.0)
  in
  (* One protocol round is a sign plus a verify; the combined metric is
     the speedup of that round (sign dominates, as in the system). *)
  let combined_512 =
    let s_m, s_s = ops_of "sign" 512 and v_m, v_s = ops_of "verify" 512 in
    ((1.0 /. s_s) +. (1.0 /. v_s)) /. ((1.0 /. s_m) +. (1.0 /. v_m))
  in
  let bit_identical = e2e_identical && List.for_all (fun r -> r.identical) all in
  (* The measurement is trustworthy when the slow baseline completed a
     handful of full iterations inside the budget. *)
  let gate_applies = iters_of "sign" 512 >= 5 && iters_of "verify" 512 >= 5 in
  Format.fprintf fmt
    "@.all outputs bit-identical across kernels: %b   512-bit speedups: sign %.2fx, \
     verify %.2fx, sign+verify round %.2fx (>=2x gate %s)@."
    bit_identical (speedup_of "sign" 512) (speedup_of "verify" 512) combined_512
    (if gate_applies then "checked in CI" else "skipped: too few baseline iterations");
  if not bit_identical then
    failwith "E15: Montgomery kernel diverged from the schoolbook baseline";
  match Sys.getenv_opt "SECREP_E15_JSON" with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let row_json r =
      Printf.sprintf
        "{\"op\": \"%s\", \"bits\": %d, \"ops_s_mont\": %.2f, \"ops_s_seed\": %.2f,\n\
        \  \"speedup\": %.3f, \"seed_iters\": %d, \"identical\": %b}"
        r.op r.bits r.mont r.seed (r.mont /. r.seed) r.seed_iters r.identical
    in
    Printf.fprintf oc
      "{\"experiment\": \"e15\", \"budget_s\": %.2f,\n\
      \ \"sign_speedup_512\": %.3f, \"verify_speedup_512\": %.3f, \
       \"combined_speedup_512\": %.3f,\n\
      \ \"gate_applies\": %b, \"bit_identical\": %b,\n\
      \ \"e2e\": {\"bits\": %d, \"reads\": %d, \"wall_mont_s\": %.3f, \"wall_seed_s\": %.3f,\n\
      \   \"speedup\": %.3f, \"digest_match\": %b, \"digest\": \"%s\"},\n\
      \ \"rows\": [%s]}\n"
      budget (speedup_of "sign" 512) (speedup_of "verify" 512) combined_512 gate_applies
      bit_identical
      e2e_bits reads wall_mont wall_seed (wall_seed /. wall_mont) e2e_identical digest_mont
      (String.concat ",\n  " (List.map row_json all));
    close_out oc;
    Format.fprintf fmt "wrote JSON summary to %s@." path
