(* E14 — Domain-parallel shard execution: speedup with a determinism
   oracle.

   The sharded deployment advances K independent single-content systems
   in lockstep slices, which is embarrassingly parallel — except that
   the whole test story rests on bit-identical replay.  The parallel
   scheduler therefore buys wall-clock time only if it changes nothing
   else: this experiment sweeps the worker-domain count over one fixed
   K-shard deployment + workload and, for every row, recomputes the
   per-shard event stream digests and compares them to the sequential
   baseline.  A digest mismatch fails the experiment outright; speedup
   without determinism is worthless here.

   Speedup itself is hardware-gated: on a single-core container every
   domains > 1 row pays barrier overhead for nothing, so the >= 1.5x
   assertion at 4 domains only applies when the machine actually has
   4+ cores ([Domain.recommended_domain_count]).  The digest oracle is
   asserted unconditionally — determinism must hold on any machine. *)

module Deployment = Secrep_shard.Deployment
module System = Secrep_core.System
module Config = Secrep_core.Config
module Fault = Secrep_core.Fault
module Event = Secrep_sim.Event
module Trace = Secrep_sim.Trace
module Prng = Secrep_crypto.Prng
module Sha1 = Secrep_crypto.Sha1
module Hex = Secrep_crypto.Hex
module Query = Secrep_store.Query
module Zipf = Secrep_workload.Zipf

type outcome = {
  domains : int;
  wall : float;  (** wall-clock seconds for Deployment.run_until *)
  speedup : float;  (** sequential wall / this wall *)
  digests : string list;  (** per-shard stream digests, shard order *)
  events : int;  (** total events across every shard stream *)
  accepted : int;
}

let replication = 2
let lie_from = 5.0

let config =
  {
    Exp_common.base_config with
    Config.max_latency = 4.0;
    keepalive_period = 1.0;
    audit_lag_slack = 1.0;
    (* Some real per-read signing work so a slice carries enough
       computation to amortize the barrier. *)
    signature_cost = 0.05;
  }

let digest_of records =
  let ctx = Sha1.init () in
  List.iter
    (fun (r : Trace.record) ->
      Sha1.feed ctx
        (Printf.sprintf "%.9f|%s|%s\n" r.Trace.time r.Trace.source
           (Event.to_string r.Trace.event)))
    records;
  Hex.encode (Sha1.finalize ctx)

let run_case ~k ~domains ~duration ~total_rate ~seed =
  let d =
    Deployment.create ~n_shards:k ~n_masters:1 ~replication_factor:replication
      ~n_clients:2 ~config ~seed ~items_per_shard:20 ~domains ()
  in
  (* A liar in shard 0 and a mid-run host crash/recovery: the oracle
     must also cover exclusion re-homing and chaos fan-out, not just
     the happy path. *)
  System.set_slave_behavior (Deployment.system d 0) ~slave:0
    (Fault.Malicious
       { probability = 0.2; mode = Fault.Corrupt_result; from_time = lie_from });
  let victim = (Deployment.hosts_of_shard d 1).(0) in
  Deployment.crash_host d ~at:(duration /. 2.0) victim;
  Deployment.recover_host d ~at:((duration /. 2.0) +. 10.0) victim;
  let streams_rev = Array.make k [] in
  for i = 0 to k - 1 do
    Trace.on_emit
      (System.trace (Deployment.system d i))
      (fun r -> streams_rev.(i) <- r :: streams_rev.(i))
  done;
  (* Fixed offered load split evenly across shards, phase-shifted. *)
  let accepted = ref 0 in
  let total = int_of_float (total_rate *. duration) / k * k in
  let per_shard = total / k in
  let spacing = duration /. float_of_int per_shard in
  for i = 0 to k - 1 do
    let keys = Deployment.keys d i in
    let zipf = Zipf.create ~n:(Array.length keys) ~s:0.9 in
    let g = Prng.create ~seed:(Int64.add seed (Int64.of_int (9000 + i))) in
    for j = 0 to per_shard - 1 do
      let at =
        1.0 +. (spacing *. float_of_int j)
        +. (spacing *. float_of_int i /. float_of_int k)
      in
      Deployment.schedule d ~shard:i ~time:at (fun () ->
          let query = Query.point_read keys.(Zipf.sample zipf g) in
          Deployment.read d ~shard:i ~client:(j mod 2) query ~on_done:(fun report ->
              match report.Secrep_core.Client.outcome with
              | `Accepted _ -> incr accepted
              | `Served_by_master _ | `Gave_up -> ()))
    done
  done;
  let t0 = Unix.gettimeofday () in
  Deployment.run_until d (duration +. (10.0 *. config.Config.max_latency) +. 30.0);
  let wall = Unix.gettimeofday () -. t0 in
  let digests = List.init k (fun i -> digest_of (List.rev streams_rev.(i))) in
  let events = Array.fold_left (fun acc l -> acc + List.length l) 0 streams_rev in
  { domains; wall; speedup = 1.0; digests; events; accepted = !accepted }

let run ?(quick = false) fmt =
  let k = if quick then 16 else 64 in
  let sweep = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let duration = if quick then 30.0 else 60.0 in
  let total_rate = if quick then 32.0 else 64.0 in
  let seed = 141414L in
  let cores = Domain.recommended_domain_count () in
  let baseline = run_case ~k ~domains:0 ~duration ~total_rate ~seed in
  let results =
    List.map
      (fun domains ->
        let o = run_case ~k ~domains ~duration ~total_rate ~seed in
        { o with speedup = baseline.wall /. o.wall })
      sweep
  in
  let matches o = List.for_all2 String.equal baseline.digests o.digests in
  let rows =
    List.map
      (fun o ->
        [
          string_of_int o.domains;
          Printf.sprintf "%.2f" o.wall;
          Printf.sprintf "%.2fx" o.speedup;
          string_of_int o.events;
          string_of_int o.accepted;
          (if matches o then "identical" else "DIVERGED");
        ])
      results
  in
  Exp_common.table fmt
    ~title:
      (Printf.sprintf
         "E14  Domain-parallel shard execution: K=%d shards, %.0f reads/s offered,\n\
         \     liar in shard 0 + host crash mid-run; sequential baseline %.2fs\n\
         \     (machine reports %d core(s))"
         k total_rate baseline.wall cores)
    ~header:[ "domains"; "wall (s)"; "speedup"; "events"; "accepted"; "vs sequential" ]
    rows;
  let all_identical = List.for_all matches results in
  let speedup_at w =
    match List.find_opt (fun o -> o.domains = w) results with
    | Some o -> o.speedup
    | None -> 0.0
  in
  let speedup_gate_applies = cores >= 4 && List.mem 4 sweep in
  let speedup_ok = (not speedup_gate_applies) || speedup_at 4 >= 1.5 in
  Format.fprintf fmt
    "@.all rows byte-identical to sequential: %b   speedup gate (>=1.5x at 4 domains, \
     %d-core machine): %s@."
    all_identical cores
    (if not speedup_gate_applies then "skipped (needs 4+ cores)"
     else if speedup_ok then "passed"
     else "FAILED");
  if not all_identical then
    failwith "E14: parallel scheduler diverged from the sequential stream";
  if not speedup_ok then failwith "E14: speedup below 1.5x at 4 domains on a 4+ core machine";
  match Sys.getenv_opt "SECREP_E14_JSON" with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let case o =
      Printf.sprintf
        "{\"domains\": %d, \"wall_s\": %.3f, \"speedup\": %.3f, \"events\": %d,\n\
        \  \"accepted\": %d, \"digest_match\": %b}"
        o.domains o.wall o.speedup o.events o.accepted (matches o)
    in
    Printf.fprintf oc
      "{\"experiment\": \"e14\", \"k\": %d, \"duration\": %.1f, \"offered_rate\": %.1f,\n\
      \ \"cores\": %d, \"baseline_wall_s\": %.3f,\n\
      \ \"all_identical\": %b, \"speedup_gate_applies\": %b, \"speedup_ok\": %b,\n\
      \ \"cases\": [%s]}\n"
      k duration total_rate cores baseline.wall all_identical speedup_gate_applies
      speedup_ok
      (String.concat ",\n  " (List.map case results));
    close_out oc;
    Format.fprintf fmt "wrote JSON summary to %s@." path
