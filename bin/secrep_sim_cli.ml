(* Command-line simulator driver.

   Build any secure-replication deployment from flags, inject a
   malicious slave, run a read/write workload and print the outcome —
   the quickest way to poke at the protocol without writing code.

   Examples:
     dune exec bin/secrep_sim_cli.exe -- run
     dune exec bin/secrep_sim_cli.exe -- run --malicious 0 --lie-prob 1.0 \
        --lie-mode corrupt --double-check-p 0.0 --duration 600
     dune exec bin/secrep_sim_cli.exe -- run --masters 3 --clients 20 \
        --read-rate 50 --csv
     dune exec bin/secrep_sim_cli.exe -- fuzz --runs 100 --seed 1 *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Fault = Secrep_core.Fault
module Corrective = Secrep_core.Corrective
module Auditor = Secrep_core.Auditor
module Stats = Secrep_sim.Stats
module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Export = Secrep_sim.Export
module Prng = Secrep_crypto.Prng
module Catalog = Secrep_workload.Catalog
module Mix = Secrep_workload.Mix
module Driver = Secrep_workload.Driver

let strip_prefix ~prefix s =
  let n = String.length prefix in
  if String.length s > n && String.sub s 0 n = prefix then
    Some (String.sub s n (String.length s - n))
  else None

let lie_mode_of_string s =
  match s with
  | "corrupt" -> Ok Fault.Corrupt_result
  | "stale" -> Ok Fault.Stale_state
  | "bad-signature" -> Ok Fault.Bad_signature
  | "omit" -> Ok Fault.Omit_result
  | "replay" | "replay-pledge" -> Ok Fault.Replay_pledge
  | s -> (
    match strip_prefix ~prefix:"collude:" s with
    | Some tag -> Ok (Fault.Collude tag)
    | None -> (
      match strip_prefix ~prefix:"equivocate:" s with
      | Some clique -> (
        let parts = String.split_on_char ',' clique in
        match
          List.fold_right
            (fun part acc ->
              match (acc, int_of_string_opt (String.trim part)) with
              | Some ids, Some id -> Some (id :: ids)
              | _ -> None)
            parts (Some [])
        with
        | Some (_ :: _ as clique) -> Ok (Fault.Equivocate { clique })
        | _ -> Error (Printf.sprintf "equivocate clique %S is not a comma list of client ids" clique))
      | None -> (
        match strip_prefix ~prefix:"adaptive:" s with
        | Some threshold -> (
          match float_of_string_opt threshold with
          | Some threshold when threshold > 0.0 -> Ok (Fault.Adaptive { threshold })
          | _ -> Error (Printf.sprintf "adaptive threshold %S is not a positive number" threshold))
        | None -> (
          match strip_prefix ~prefix:"flaky-omit:" s with
          | Some burst -> (
            match int_of_string_opt burst with
            | Some burst when burst >= 1 -> Ok (Fault.Flaky_omit { burst })
            | _ -> Error (Printf.sprintf "flaky-omit burst %S is not a positive int" burst))
          | None -> Error (Printf.sprintf "unknown lie mode %S" s)))))

(* "-" means stdout, anything else is a file path. *)
let write_out path content =
  match path with
  | "-" -> print_string content
  | path ->
    let oc = open_out path in
    output_string oc content;
    close_out oc

(* -- online monitoring (lineage + SLO) ---------------------------------- *)

module Slo = Secrep_monitor.Slo
module Lineage = Secrep_monitor.Lineage
module Health = Secrep_monitor.Health

type monitoring = { m_slo : Slo.t; m_lineage : Lineage.t }

(* Subscribe both monitors through one [on_emit] callback so lineage
   sees each event before the SLO engine can emit alerts about it. *)
let attach_monitoring system ~config =
  let slo = Slo.create ~trace:(System.trace system) ~config:(Slo.config config) () in
  let lineage = Lineage.create () in
  Trace.on_emit (System.trace system) (fun r ->
      Lineage.observe lineage r;
      Slo.observe slo r);
  { m_slo = slo; m_lineage = lineage }

let finish_monitoring m system ~slo_out ~lineage_out ~print_report =
  Slo.finalize m.m_slo ~now:(Secrep_sim.Sim.now (System.sim system));
  let health =
    Health.build ~trace:(System.trace system) ~spans:(System.spans system) ~slo:m.m_slo
      ~lineage:m.m_lineage ()
  in
  if print_report then Format.printf "@.%a" Health.pp health;
  (match slo_out with
  | None -> ()
  | Some path -> write_out path (Export.Json.to_string (Health.to_json health) ^ "\n"));
  (match lineage_out with
  | None -> ()
  | Some path -> write_out path (Lineage.jsonl m.m_lineage));
  health

let monitoring_args =
  let open Cmdliner in
  let slo =
    Arg.(
      value
      & flag
      & info [ "slo" ]
          ~doc:
            "Run the online SLO monitor over the live event stream: alerts are raised as \
             typed trace events and an end-of-run health report is printed.")
  in
  let slo_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo-out" ] ~docv:"FILE"
          ~doc:
            "Write the machine-readable JSON health summary (alerts, lineage, \
             diagnostics) to $(docv) ('-' = stdout).  Implies the monitor is on.")
  in
  let lineage_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "lineage-out" ] ~docv:"FILE"
          ~doc:
            "Write per-request causal lineage records (one JSON object per read) to \
             $(docv) ('-' = stdout).  Implies the monitor is on.")
  in
  let trace_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-capacity" ] ~docv:"N"
          ~doc:
            "Event-trace ring capacity (default 4096).  The health report warns when the \
             ring wrapped and dropped events.")
  in
  let span_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "span-capacity" ] ~docv:"N" ~doc:"Span ring capacity (default 4096).")
  in
  (slo, slo_out, lineage_out, trace_capacity, span_capacity)

let run_simulation ~masters ~slaves_per_master ~clients ~items ~duration ~read_rate
    ~write_rate ~double_check_p ~max_latency ~keepalive ~audit ~pledge_batch
    ~pledge_batch_window ~audit_dedup ~read_nonces ~audit_adaptive ~malicious ~lie_prob
    ~lie_mode ~lie_from ~seed ~csv ~trace_out ~trace_format ~metrics_out ~slo ~slo_out
    ~lineage_out ~trace_capacity ~span_capacity =
  (* Reject a bad format before spending time on the simulation. *)
  if trace_format <> "jsonl" && trace_format <> "chrome" then begin
    Printf.eprintf "unknown trace format %S (expected jsonl or chrome)\n" trace_format;
    exit 2
  end;
  let config =
    Config.validate_exn
      {
        Config.default with
        Config.max_latency;
        keepalive_period = keepalive;
        double_check_probability = double_check_p;
        audit_enabled = audit;
        pledge_batch_size = pledge_batch;
        pledge_batch_window;
        audit_dedup;
        read_nonces;
        audit_adaptive;
      }
  in
  let system =
    System.create ~n_masters:masters ~slaves_per_master ~n_clients:clients ~config
      ~seed:(Int64.of_int seed) ?trace_capacity ?span_capacity ()
  in
  let monitoring =
    if slo || slo_out <> None || lineage_out <> None then
      Some (attach_monitoring system ~config)
    else None
  in
  let g = Prng.create ~seed:(Int64.of_int (seed + 1)) in
  let content = Catalog.product_catalog g ~n:items in
  System.load_content system content;
  (match (malicious, lie_mode_of_string lie_mode) with
  | Some slave, Ok mode ->
    if slave < 0 || slave >= System.n_slaves system then begin
      Printf.eprintf "slave %d out of range (0..%d)\n" slave (System.n_slaves system - 1);
      exit 2
    end;
    System.set_slave_behavior system ~slave
      (Fault.Malicious { probability = lie_prob; mode; from_time = lie_from })
  | Some _, Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2
  | None, _ -> ());
  let keys = Array.of_list (List.map fst content) in
  let mix = Mix.create ~rng:(Prng.split g) ~keys () in
  let driver = Driver.create system ~mix ~rng:(Prng.split g) () in
  Driver.run_reads driver ~rate:read_rate ~duration;
  if write_rate > 0.0 then Driver.run_writes driver ~rate:write_rate ~duration ~writer:0;
  System.run_for system (duration +. (4.0 *. max_latency) +. 60.0);
  let s = Driver.summary driver in
  let stats = System.stats system in
  let auditor = System.auditor system in
  let excluded = Corrective.excluded (System.corrective system) in
  if csv then begin
    Printf.printf
      "reads_completed,reads_accepted,reads_gave_up,served_by_master,accepted_wrong,double_checks,mean_latency_ms,p99_latency_ms,audited,audit_backlog,caught,excluded\n";
    Printf.printf "%d,%d,%d,%d,%d,%d,%.3f,%.3f,%d,%d,%d,%s\n" s.Driver.reads_completed
      s.Driver.reads_accepted s.Driver.reads_gave_up s.Driver.served_by_master
      s.Driver.accepted_wrong s.Driver.double_checks
      (1000.0 *. s.Driver.mean_latency)
      (1000.0 *. s.Driver.p99_latency)
      (Auditor.audited auditor) (Auditor.backlog auditor) (Auditor.caught auditor)
      (String.concat ";" (List.map string_of_int excluded))
  end
  else begin
    Printf.printf "secure replication over untrusted hosts — simulation summary\n";
    Printf.printf "  topology: %d masters, %d slaves, %d clients, %d documents\n" masters
      (System.n_slaves system) clients items;
    Printf.printf "  protocol: max_latency=%.2gs keepalive=%.2gs p=%.3g audit=%b\n"
      max_latency keepalive double_check_p audit;
    if pledge_batch > 1 || audit_dedup then
      Printf.printf "  batching: pledge_batch=%d window=%.2gs dedup=%b\n" pledge_batch
        pledge_batch_window audit_dedup;
    if read_nonces || audit_adaptive then
      Printf.printf "  hardening: read_nonces=%b audit_adaptive=%b\n" read_nonces
        audit_adaptive;
    (match malicious with
    | Some slave ->
      Printf.printf "  attack: slave %d, mode %s, prob %.2g, from t=%.2gs\n" slave lie_mode
        lie_prob lie_from
    | None -> Printf.printf "  attack: none\n");
    Printf.printf "\n  reads completed  %d (accepted %d, by-master %d, gave up %d)\n"
      s.Driver.reads_completed s.Driver.reads_accepted s.Driver.served_by_master
      s.Driver.reads_gave_up;
    Printf.printf "  read latency     mean %.1f ms, p99 %.1f ms\n"
      (1000.0 *. s.Driver.mean_latency)
      (1000.0 *. s.Driver.p99_latency);
    Printf.printf "  writes           %d committed\n"
      (Stats.get stats "system.writes_committed_acked");
    Printf.printf "  double-checks    %d (throttled %d)\n" s.Driver.double_checks
      (Stats.get stats "master.double_checks_throttled");
    Printf.printf "  wrong accepts    %d\n" s.Driver.accepted_wrong;
    Printf.printf "  audit            %d audited, backlog %d, caught %d\n"
      (Auditor.audited auditor) (Auditor.backlog auditor) (Auditor.caught auditor);
    if audit_dedup then
      Printf.printf "  audit dedup      %d distinct re-execution(s), %d memo hit(s)\n"
        (Auditor.distinct_reexecs auditor)
        (Auditor.dedup_hits auditor);
    if read_nonces then
      Printf.printf "  replay defense   %d nonce rejection(s)\n"
        (Stats.get stats "client.nonce_rejections");
    if audit_adaptive then
      Printf.printf "  quarantines      %d\n" (Stats.get stats "auditor.quarantines");
    Printf.printf "  exclusions       [%s]\n"
      (String.concat "; "
         (List.map
            (fun e ->
              Printf.sprintf "slave %d at t=%.1fs (%s)" e.Corrective.slave_id
                e.Corrective.time
                (match e.Corrective.discovery with
                | Corrective.Immediate -> "immediate"
                | Corrective.Delayed -> "delayed"))
            (Corrective.events (System.corrective system))))
  end;
  (* Finalize the monitor before dumping the trace so end-of-run alerts
     (e.g. a never-accused liar) appear in the dump too. *)
  (match monitoring with
  | None -> ()
  | Some m ->
    ignore (finish_monitoring m system ~slo_out ~lineage_out ~print_report:(not csv)));
  (match trace_out with
  | None -> ()
  | Some path ->
    let rendered =
      match trace_format with
      | "jsonl" -> Export.jsonl_of_trace (System.trace system)
      | _ ->
        Export.chrome_of ~spans:(System.spans system) ~trace:(System.trace system) ()
    in
    write_out path rendered);
  match metrics_out with
  | None -> ()
  | Some path -> write_out path (Export.prometheus_of_stats stats)

(* -- sharded run --------------------------------------------------------

   [--shards K] (K > 1) swaps the single system for a
   [Secrep_shard.Deployment]: K content items over one host pool, a
   cross-shard Zipf workload with a diurnal skew rotation, per-shard
   SLO monitors and a shard-tagged JSONL trace. *)

module Deployment = Secrep_shard.Deployment
module Cross = Secrep_workload.Cross

let run_sharded_simulation ~shards ~domains ~masters ~replication_factor ~clients ~items
    ~duration ~read_rate ~write_rate ~double_check_p ~max_latency ~keepalive ~audit
    ~malicious ~lie_prob ~lie_mode ~lie_from ~seed ~csv ~trace_out ~trace_format ~slo
    ~slo_out =
  if trace_format <> "jsonl" then begin
    Printf.eprintf "only --trace-format jsonl is supported with --shards > 1\n";
    exit 2
  end;
  let config =
    Config.validate_exn
      {
        Config.default with
        Config.max_latency;
        keepalive_period = keepalive;
        double_check_probability = double_check_p;
        audit_enabled = audit;
      }
  in
  let d =
    Deployment.create ~n_shards:shards ~n_masters:masters ~replication_factor
      ~n_clients:clients ~config ~seed:(Int64.of_int seed) ~items_per_shard:items ~domains
      ()
  in
  let monitors =
    if slo || slo_out <> None then
      Some (Array.init shards (fun i -> attach_monitoring (Deployment.system d i) ~config))
    else None
  in
  let tagged_rev = ref [] in
  if trace_out <> None then
    Deployment.on_event d (fun ~shard r ->
        tagged_rev := Deployment.tagged_line ~shard r :: !tagged_rev);
  (* the attack targets shard [slave mod K], same routing as the fuzz
     harness, with [slave] as the local replica index *)
  (match (malicious, lie_mode_of_string lie_mode) with
  | Some slave, Ok mode ->
    if slave < 0 || slave >= Deployment.replication d then begin
      Printf.eprintf "slave %d out of range (0..%d)\n" slave (Deployment.replication d - 1);
      exit 2
    end;
    System.set_slave_behavior
      (Deployment.system d (slave mod shards))
      ~slave
      (Fault.Malicious { probability = lie_prob; mode; from_time = lie_from })
  | Some _, Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2
  | None, _ -> ());
  (* cross-shard workload: Zipf over contents (rotating hot shard) x
     Zipf over keys within each shard's own catalogue *)
  let issued = Array.make shards 0 in
  let accepted = Array.make shards 0 in
  let by_master = Array.make shards 0 in
  let gave_up = Array.make shards 0 in
  let on_done shard (r : Secrep_core.Client.read_report) =
    match r.Secrep_core.Client.outcome with
    | `Accepted _ -> accepted.(shard) <- accepted.(shard) + 1
    | `Served_by_master _ -> by_master.(shard) <- by_master.(shard) + 1
    | `Gave_up -> gave_up.(shard) <- gave_up.(shard) + 1
  in
  let g = Prng.create ~seed:(Int64.of_int (seed + 1)) in
  let mixes =
    Array.init shards (fun i -> Mix.create ~rng:(Prng.split g) ~keys:(Deployment.keys d i) ())
  in
  let pick_client = Prng.split g in
  let cross =
    Cross.create ~rng:(Prng.split g) ~n_shards:shards
      ~rotate_period:(Float.max 1.0 (duration /. 4.0))
      ()
  in
  (* Client ids are presampled in arrival order: [arrivals] is
     time-sorted, so this matches what callback-time draws produced
     sequentially, and keeps shard callbacks free of shared RNG state
     (required for the parallel scheduler's determinism contract). *)
  List.iter
    (fun (at, shard) ->
      let client = Prng.int pick_client clients in
      Deployment.schedule d ~shard ~time:at (fun () ->
          issued.(shard) <- issued.(shard) + 1;
          Deployment.read d ~shard ~client
            (Mix.next_query mixes.(shard))
            ~on_done:(on_done shard)))
    (Cross.arrivals cross ~rate:read_rate ~duration);
  if write_rate > 0.0 then begin
    let wcross = Cross.create ~rng:(Prng.split g) ~n_shards:shards () in
    List.iter
      (fun (at, shard) ->
        Deployment.schedule d ~shard ~time:at (fun () ->
            Deployment.write d ~shard ~client:0
              (Mix.next_write mixes.(shard))
              ~on_done:(fun _ -> ())))
      (Cross.arrivals wcross ~rate:write_rate ~duration)
  end;
  Deployment.run_until d (duration +. (4.0 *. max_latency) +. 60.0);
  if csv then begin
    Printf.printf
      "shard,reads_issued,reads_accepted,served_by_master,reads_gave_up,audited,caught,excluded\n";
    for i = 0 to shards - 1 do
      let sys = Deployment.system d i in
      let auditor = System.auditor sys in
      Printf.printf "%d,%d,%d,%d,%d,%d,%d,%s\n" i issued.(i) accepted.(i) by_master.(i)
        gave_up.(i) (Auditor.audited auditor) (Auditor.caught auditor)
        (String.concat ";"
           (List.map string_of_int (Corrective.excluded (System.corrective sys))))
    done
  end
  else begin
    Printf.printf "sharded deployment summary\n";
    Printf.printf
      "  content plane: %d shard(s), replication %d, pool of %d host(s), %d docs/shard\n"
      shards (Deployment.replication d) (Deployment.pool_size d) items;
    Printf.printf "  protocol: max_latency=%.2gs keepalive=%.2gs p=%.3g audit=%b\n"
      max_latency keepalive double_check_p audit;
    (match malicious with
    | Some slave ->
      Printf.printf "  attack: slave %d of shard %d, mode %s, prob %.2g, from t=%.2gs\n"
        slave (slave mod shards) lie_mode lie_prob lie_from
    | None -> Printf.printf "  attack: none\n");
    for i = 0 to shards - 1 do
      let sys = Deployment.system d i in
      let auditor = System.auditor sys in
      Printf.printf
        "  shard %d: reads %d (accepted %d, by-master %d, gave up %d); audited %d, caught \
         %d; excluded [%s]; hosts [%s]\n"
        i issued.(i) accepted.(i) by_master.(i) gave_up.(i) (Auditor.audited auditor)
        (Auditor.caught auditor)
        (String.concat "; "
           (List.map string_of_int (Corrective.excluded (System.corrective sys))))
        (String.concat "; "
           (List.map string_of_int (Array.to_list (Deployment.hosts_of_shard d i))))
    done;
    Printf.printf "  totals: %d reads issued, %d accepted, audit backlog %d\n"
      (Array.fold_left ( + ) 0 issued)
      (Array.fold_left ( + ) 0 accepted)
      (Deployment.audit_backlog d)
  end;
  (match monitors with
  | None -> ()
  | Some ms ->
    let lines = ref [] in
    Array.iteri
      (fun i m ->
        let sys = Deployment.system d i in
        Slo.finalize m.m_slo ~now:(Secrep_sim.Sim.now (System.sim sys));
        let health =
          Health.build ~trace:(System.trace sys) ~spans:(System.spans sys) ~slo:m.m_slo
            ~lineage:m.m_lineage ()
        in
        if not csv then Format.printf "@.-- shard %d --@.%a" i Health.pp health;
        lines :=
          Export.Json.to_string
            (Export.Json.Obj
               [ ("shard", Export.Json.Int i); ("health", Health.to_json health) ])
          :: !lines)
      ms;
    match slo_out with
    | None -> ()
    | Some path -> write_out path (String.concat "\n" (List.rev !lines) ^ "\n"));
  match trace_out with
  | None -> ()
  | Some path -> write_out path (String.concat "\n" (List.rev !tagged_rev) ^ "\n")

open Cmdliner

let run_cmd =
  let masters = Arg.(value & opt int 2 & info [ "masters" ] ~doc:"Number of master servers.") in
  let slaves =
    Arg.(value & opt int 3 & info [ "slaves-per-master" ] ~doc:"Slaves per master.")
  in
  let shards =
    Arg.(
      value
      & opt int 1
      & info [ "shards" ]
          ~doc:
            "Content items in the deployment.  1 runs the classic single-content system; \
             >1 runs a sharded deployment over a shared host pool with per-shard \
             auditors and a cross-shard Zipf workload.")
  in
  let domains =
    Arg.(
      value
      & opt int 0
      & info [ "domains" ]
          ~doc:
            "Worker domains for a sharded deployment (--shards > 1).  0 or 1 runs the \
             shards sequentially in lockstep; >1 advances them on a parallel domain \
             pool.  Both modes produce bit-identical event streams; ignored for \
             single-system runs.")
  in
  let replication_factor =
    Arg.(
      value
      & opt (some int) None
      & info [ "replication-factor" ]
          ~doc:
            "Replicas per content item (default: masters x slaves-per-master).  Only \
             meaningful with --shards > 1.")
  in
  let clients = Arg.(value & opt int 8 & info [ "clients" ] ~doc:"Number of clients.") in
  let items = Arg.(value & opt int 300 & info [ "items" ] ~doc:"Documents in the content.") in
  let duration =
    Arg.(value & opt float 300.0 & info [ "duration" ] ~doc:"Workload duration (sim seconds).")
  in
  let read_rate = Arg.(value & opt float 20.0 & info [ "read-rate" ] ~doc:"Reads per second.") in
  let write_rate =
    Arg.(value & opt float 0.05 & info [ "write-rate" ] ~doc:"Writes per second (0 = none).")
  in
  let p =
    Arg.(
      value
      & opt float 0.05
      & info [ "double-check-p" ] ~doc:"Probability a read is double-checked (Section 3.3).")
  in
  let max_latency =
    Arg.(value & opt float 5.0 & info [ "max-latency" ] ~doc:"Freshness bound (Section 3).")
  in
  let keepalive =
    Arg.(value & opt float 1.0 & info [ "keepalive" ] ~doc:"Keep-alive period (Section 3.1).")
  in
  let audit =
    Arg.(value & opt bool true & info [ "audit" ] ~doc:"Enable the background auditor.")
  in
  let pledge_batch =
    Arg.(
      value
      & opt int 1
      & info [ "pledge-batch-size" ]
          ~doc:
            "Pledges a slave signs per Merkle batch (1 = classic per-pledge signatures).")
  in
  let pledge_batch_window =
    Arg.(
      value
      & opt float 0.05
      & info [ "pledge-batch-window" ]
          ~doc:"Max seconds a slave holds a partial pledge batch before flushing it.")
  in
  let audit_dedup =
    Arg.(
      value
      & flag
      & info [ "audit-dedup" ]
          ~doc:
            "Deduplicate auditor re-execution: each distinct (version, query) is \
             re-executed once and all matching pledges settle against the memoized \
             digest.")
  in
  let malicious =
    Arg.(
      value
      & opt (some int) None
      & info [ "malicious" ] ~doc:"Make this slave id malicious.")
  in
  let lie_prob =
    Arg.(value & opt float 1.0 & info [ "lie-prob" ] ~doc:"Probability the slave lies per read.")
  in
  let lie_mode =
    Arg.(
      value
      & opt string "corrupt"
      & info [ "lie-mode" ]
          ~doc:
            "Attack: corrupt | stale | bad-signature | omit | collude:TAG | replay | \
             equivocate:CLIENT,... | adaptive:THRESHOLD | flaky-omit:BURST.")
  in
  let adversary =
    Arg.(
      value
      & opt (some string) None
      & info [ "adversary" ] ~docv:"MODE"
          ~doc:
            "Shorthand for a strategic adversary: sets --lie-mode to $(docv) and, when \
             --malicious is absent, makes slave 0 malicious.  Same mode grammar as \
             --lie-mode.")
  in
  let lie_from =
    Arg.(value & opt float 0.0 & info [ "lie-from" ] ~doc:"Attack start time (sim seconds).")
  in
  let read_nonces =
    Arg.(
      value
      & flag
      & info [ "read-nonces" ]
          ~doc:
            "Bind each pledge to its read's request id so replayed pledges are rejected \
             (replay defense).  Off by default for wire compatibility.")
  in
  let audit_adaptive =
    Arg.(
      value
      & flag
      & info [ "audit-adaptive" ]
          ~doc:
            "Suspicion-weighted audit sampling: slaves that accumulate suspicion (late \
             pledges, nonce rejections, double-check mismatches) are audited more and \
             can be quarantined on probation.  Exclusion still requires cryptographic \
             proof.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Machine-readable one-line output.") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Dump the event trace to $(docv) after the run ('-' = stdout).")
  in
  let trace_format =
    Arg.(
      value
      & opt string "jsonl"
      & info [ "trace-format" ] ~docv:"FMT"
          ~doc:
            "Trace dump format: $(b,jsonl) (one event per line, replayable with the \
             $(b,trace) subcommand) or $(b,chrome) (trace_event JSON, loadable in \
             Perfetto / chrome://tracing).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write counters, gauges and per-phase latency quantiles in Prometheus text \
             format to $(docv) ('-' = stdout).")
  in
  let slo_flag, slo_out, lineage_out, trace_capacity, span_capacity = monitoring_args in
  let term =
    Term.(
      const
        (fun masters slaves_per_master shards domains replication_factor clients items
             duration
             read_rate write_rate double_check_p max_latency keepalive audit pledge_batch
             pledge_batch_window audit_dedup malicious lie_prob lie_mode adversary lie_from
             read_nonces audit_adaptive seed csv trace_out trace_format metrics_out slo
             slo_out lineage_out trace_capacity span_capacity ->
          let lie_mode = match adversary with Some m -> m | None -> lie_mode in
          let malicious =
            match (adversary, malicious) with Some _, None -> Some 0 | _, m -> m
          in
          if shards > 1 then begin
            if read_nonces || audit_adaptive then
              Printf.eprintf
                "note: --read-nonces/--audit-adaptive apply to single-system runs only; \
                 ignored with --shards > 1\n";
            run_sharded_simulation ~shards ~domains ~masters
              ~replication_factor:
                (match replication_factor with
                | Some r -> r
                | None -> masters * slaves_per_master)
              ~clients ~items ~duration ~read_rate ~write_rate ~double_check_p ~max_latency
              ~keepalive ~audit ~malicious ~lie_prob ~lie_mode ~lie_from ~seed ~csv
              ~trace_out ~trace_format ~slo ~slo_out
          end
          else
            let slaves_per_master =
              match replication_factor with
              | Some r -> max 1 (r / max 1 masters)
              | None -> slaves_per_master
            in
            run_simulation ~masters ~slaves_per_master ~clients ~items ~duration ~read_rate
              ~write_rate ~double_check_p ~max_latency ~keepalive ~audit ~pledge_batch
              ~pledge_batch_window ~audit_dedup ~read_nonces ~audit_adaptive ~malicious
              ~lie_prob ~lie_mode ~lie_from ~seed ~csv ~trace_out ~trace_format
              ~metrics_out ~slo ~slo_out ~lineage_out ~trace_capacity ~span_capacity)
      $ masters $ slaves $ shards $ domains $ replication_factor $ clients $ items
      $ duration
      $ read_rate $ write_rate $ p $ max_latency $ keepalive $ audit $ pledge_batch
      $ pledge_batch_window $ audit_dedup $ malicious $ lie_prob $ lie_mode $ adversary
      $ lie_from $ read_nonces $ audit_adaptive $ seed $ csv $ trace_out $ trace_format
      $ metrics_out $ slo_flag $ slo_out $ lineage_out $ trace_capacity $ span_capacity)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Simulate a deployment of the secure-replication protocol under a workload.")
    term

(* -- fuzzing ------------------------------------------------------------ *)

module Fuzz = Secrep_check.Fuzz
module Invariant = Secrep_check.Invariant

let run_fuzz ~seed ~runs ~max_shrink_steps ~invariants ~shards ~replication_factor
    ~counterexample_out =
  match Invariant.named invariants with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2
  | Ok checkers ->
    let outcome =
      Fuzz.run ~runs ~max_shrink_steps ~invariants:checkers ?shards
        ?slaves_per_master:replication_factor ~seed:(Int64.of_int seed) ()
    in
    Format.printf "%a@." Fuzz.pp_outcome outcome;
    (match outcome with
    | Fuzz.Passed _ -> ()
    | Fuzz.Failed f ->
      (match counterexample_out with
      | None -> ()
      | Some path ->
        write_out path
          (Format.asprintf "%a@.@.violation: %s@.replay: %s@." Secrep_check.Scenario.pp
             f.Secrep_check.Prop.shrunk f.Secrep_check.Prop.shrunk_reason (Fuzz.replay_hint f)));
      exit 1)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed; run $(i,i) uses seed + i.")
  in
  let runs = Arg.(value & opt int 100 & info [ "runs" ] ~doc:"Number of random scenarios.") in
  let max_shrink_steps =
    Arg.(
      value
      & opt int 200
      & info [ "max-shrink-steps" ]
          ~doc:"Cap on accepted shrinking steps when minimizing a counterexample.")
  in
  let invariants =
    Arg.(
      value
      & opt_all string []
      & info [ "invariant" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Only check invariant $(docv).  Repeatable; default all.  Known: %s."
               (String.concat ", " (List.map (fun c -> c.Invariant.name) Invariant.all))))
  in
  let counterexample_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "counterexample-out" ] ~docv:"FILE"
          ~doc:"On failure, also write the shrunk counterexample to $(docv) ('-' = stdout).")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ]
          ~doc:
            "Pin every scenario's shard count to $(docv) (1-4) instead of drawing it.  \
             Sharded scenarios run on a deployment with per-shard invariant checks."
          ~docv:"K")
  in
  let replication_factor =
    Arg.(
      value
      & opt (some int) None
      & info [ "replication-factor" ] ~docv:"R"
          ~doc:"Pin every scenario's replicas-per-master to $(docv) instead of drawing it.")
  in
  let term =
    Term.(
      const (fun seed runs max_shrink_steps invariants shards replication_factor
                counterexample_out ->
          run_fuzz ~seed ~runs ~max_shrink_steps ~invariants ~shards ~replication_factor
            ~counterexample_out)
      $ seed $ runs $ max_shrink_steps $ invariants $ shards $ replication_factor
      $ counterexample_out)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Run random scenarios against the simulator, check the paper's invariants on the \
          event stream, and shrink any violation to a minimal counterexample with a replay \
          seed.")
    term

(* -- chaos --------------------------------------------------------------- *)

module Schedule = Secrep_chaos.Schedule
module Injector = Secrep_chaos.Injector
module Scenario = Secrep_check.Scenario
module Harness = Secrep_check.Harness

let read_schedule_file path =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match Schedule.parse text with
  | Ok schedule -> schedule
  | Error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 2

let run_chaos ~masters ~slaves_per_master ~clients ~items ~duration ~read_rate ~write_rate
    ~max_latency ~keepalive ~schedule_file ~intensity ~seed ~invariants ~trace_out
    ~trace_format ~counterexample_out ~slo:slo_flag ~slo_out ~lineage_out ~trace_capacity
    ~span_capacity =
  if trace_format <> "jsonl" && trace_format <> "chrome" then begin
    Printf.eprintf "unknown trace format %S (expected jsonl or chrome)\n" trace_format;
    exit 2
  end;
  let checkers =
    match
      Invariant.named
        (if invariants = [] then
           [ "availability"; "recovery-convergence"; "no-false-accusation"; "staleness";
             "write-spacing"; "alert-coverage" ]
         else invariants)
    with
    | Ok checkers -> checkers
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let config =
    Config.validate_exn
      {
        Config.default with
        Config.max_latency;
        keepalive_period = keepalive;
        double_check_probability = 0.05;
      }
  in
  let system =
    System.create ~n_masters:masters ~slaves_per_master ~n_clients:clients ~config
      ~seed:(Int64.of_int seed) ?trace_capacity ?span_capacity ()
  in
  let monitoring =
    if slo_flag || slo_out <> None || lineage_out <> None then
      Some (attach_monitoring system ~config)
    else None
  in
  (* Capture the live stream like the fuzz harness does: the trace ring
     may overwrite old records on long runs, subscribers see everything. *)
  let events_rev = ref [] in
  Trace.on_emit (System.trace system) (fun r -> events_rev := r :: !events_rev);
  let pledges_rev = ref [] in
  System.on_pledge_submitted system (fun p -> pledges_rev := p :: !pledges_rev);
  let g = Prng.create ~seed:(Int64.of_int (seed + 1)) in
  let content = Catalog.product_catalog g ~n:items in
  System.load_content system content;
  let schedule =
    match schedule_file with
    | Some path -> read_schedule_file path
    | None ->
      Schedule.random
        ~rng:(Prng.create ~seed:(Int64.of_int (seed + 2)))
        ~duration ~n_slaves:(System.n_slaves system) ~n_masters:masters ~n_clients:clients
        ~intensity ()
  in
  (try Injector.apply system schedule
   with Invalid_argument msg ->
     Printf.eprintf "%s\n" msg;
     exit 2);
  let keys = Array.of_list (List.map fst content) in
  let mix = Mix.create ~rng:(Prng.split g) ~keys () in
  let driver = Driver.create system ~mix ~rng:(Prng.split g) () in
  Driver.run_reads driver ~rate:read_rate ~duration;
  if write_rate > 0.0 then Driver.run_writes driver ~rate:write_rate ~duration ~writer:0;
  (* Settle: every in-flight read must be able to exhaust its retry
     ladder and degraded fallback, and the last recovery needs
     max_latency to converge, before the invariants judge the trace. *)
  let read_slack =
    float_of_int (config.Config.read_retry_limit + 2)
    *. ((config.Config.read_timeout_factor *. max_latency) +. config.Config.retry_backoff_cap)
  in
  let last_entry =
    List.fold_left (fun acc e -> Float.max acc e.Schedule.time) 0.0 schedule
  in
  System.run_for system
    (Float.max duration last_entry +. read_slack +. (6.0 *. max_latency) +. 60.0);
  let stats = System.stats system in
  let s = Driver.summary driver in
  Printf.printf "chaos run: seed %d, %d scheduled action(s) over %.1fs\n" seed
    (List.length schedule) duration;
  List.iter
    (fun e -> Printf.printf "    at %g %s\n" e.Schedule.time (Schedule.describe e.Schedule.action))
    (Schedule.sort schedule);
  Printf.printf "  applied %d action(s), skipped %d no-op(s)\n"
    (Stats.get stats "chaos.actions")
    (Stats.get stats "chaos.skipped_actions");
  Printf.printf "  reads: %d completed (accepted %d, by-master %d, gave up %d)\n"
    s.Driver.reads_completed s.Driver.reads_accepted s.Driver.served_by_master
    s.Driver.reads_gave_up;
  Printf.printf "  resilience: %d timeout(s), %d degraded master read(s), breakers opened \
                 %d / closed %d\n"
    (Stats.get stats "client.read_timeouts")
    (Stats.get stats "client.degraded_reads")
    (Stats.get stats "client.breaker_opened")
    (Stats.get stats "client.breaker_closed");
  Printf.printf "  churn: %d crash(es), %d recover(ies); auditor overload drops %d\n"
    (Stats.get stats "system.slave_crashes")
    (Stats.get stats "system.slave_recoveries")
    (Stats.get stats "auditor.overload_drops");
  Printf.printf "  exclusions: [%s]\n"
    (String.concat "; " (List.map string_of_int (Corrective.excluded (System.corrective system))));
  (* Finalize before the trace dump so end-of-run alerts are included;
     finalize-time alerts also land in [events_rev] for the checkers. *)
  (match monitoring with
  | None -> ()
  | Some m -> ignore (finish_monitoring m system ~slo_out ~lineage_out ~print_report:true));
  (match trace_out with
  | None -> ()
  | Some path ->
    let rendered =
      match trace_format with
      | "jsonl" -> Export.jsonl_of_trace (System.trace system)
      | _ -> Export.chrome_of ~spans:(System.spans system) ~trace:(System.trace system) ()
    in
    write_out path rendered);
  (* The checkers judge a harness-shaped result; the run had no injected
     slave faults and no scenario ops, so [accepted] stays empty and the
     honest-run invariants apply in full. *)
  let result =
    {
      Harness.scenario =
        {
          Scenario.sys_seed = seed;
          n_shards = 1;
          n_masters = masters;
          slaves_per_master;
          n_clients = clients;
          n_items = items;
          max_latency;
          keepalive_period = keepalive;
          double_check_p = 0.05;
          audit = true;
          pledge_batch = 1;
          read_nonces = false;
          audit_adaptive = false;
          net = Scenario.Wan;
          faults = [];
          chaos = [];
          ops = [];
        };
      events = List.rev !events_rev;
      accepted = [];
      end_time = Secrep_sim.Sim.now (System.sim system);
      pledges = List.rev !pledges_rev;
      reexec = (fun ~version query -> System.reexec_digest system ~version query);
      slave_public =
        (fun slave_id ->
          if slave_id >= 0 && slave_id < System.n_slaves system then
            Some (Secrep_core.Slave.public (System.slave system slave_id))
          else None);
    }
  in
  match Invariant.check_all checkers result with
  | Ok () ->
    Printf.printf "invariants: %s — all held\n"
      (String.concat ", " (List.map (fun c -> c.Invariant.name) checkers))
  | Error msg ->
    Printf.printf "invariant VIOLATED: %s\n" msg;
    (match counterexample_out with
    | None -> ()
    | Some path ->
      write_out path
        (Printf.sprintf
           "chaos counterexample\nseed: %d\nduration: %g\ntopology: %d masters x %d \
            slaves, %d clients, %d items\nmax_latency: %g keepalive: %g\nviolation: \
            %s\n\nschedule:\n%s"
           seed duration masters slaves_per_master clients items max_latency keepalive msg
           (Schedule.to_string schedule)));
    exit 1

(* Sharded chaos: host-level windows over the shared pool.  A crashed
   or cut host takes down every co-located replica at once — the
   cross-shard blast radius a per-slave schedule cannot express. *)
let run_chaos_sharded ~shards ~domains ~masters ~replication_factor ~clients ~items
    ~duration ~read_rate ~write_rate ~max_latency ~keepalive ~intensity ~seed ~invariants
    ~trace_out ~counterexample_out =
  let checkers =
    match
      Invariant.named
        (if invariants = [] then
           [ "availability"; "recovery-convergence"; "no-false-accusation"; "staleness";
             "write-spacing"; "alert-coverage" ]
         else invariants)
    with
    | Ok checkers -> checkers
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let config =
    Config.validate_exn
      {
        Config.default with
        Config.max_latency;
        keepalive_period = keepalive;
        double_check_probability = 0.05;
      }
  in
  let d =
    Deployment.create ~n_shards:shards ~n_masters:masters ~replication_factor
      ~n_clients:clients ~config ~seed:(Int64.of_int seed) ~items_per_shard:items ~domains
      ()
  in
  let pool = Deployment.pool_size d in
  (* per-shard live capture, exactly like the fuzz harness *)
  let events_rev = Array.make shards [] in
  let pledges_rev = Array.make shards [] in
  for i = 0 to shards - 1 do
    let sys = Deployment.system d i in
    Trace.on_emit (System.trace sys) (fun r -> events_rev.(i) <- r :: events_rev.(i));
    System.on_pledge_submitted sys (fun p -> pledges_rev.(i) <- p :: pledges_rev.(i))
  done;
  let tagged_rev = ref [] in
  if trace_out <> None then
    Deployment.on_event d (fun ~shard r ->
        tagged_rev := Deployment.tagged_line ~shard r :: !tagged_rev);
  (* seeded-random host windows: crash (state wiped, re-homed after the
     provisioning delay) or cut (links only), self-healing *)
  let crng = Prng.create ~seed:(Int64.of_int (seed + 2)) in
  let n_windows = max 1 (int_of_float (intensity *. duration /. 30.0)) in
  let windows =
    List.init n_windows (fun _ ->
        let host = Prng.int crng pool in
        let kind = if Prng.bool crng then `Crash else `Cut in
        let at = 5.0 +. (Prng.float crng *. Float.max 1.0 (duration -. 25.0)) in
        let outage = 2.0 +. (Prng.float crng *. 13.0) in
        (host, kind, at, outage))
  in
  List.iter
    (fun (host, kind, at, outage) ->
      match kind with
      | `Crash ->
        Deployment.crash_host d ~at host;
        Deployment.recover_host d ~at:(at +. outage) host
      | `Cut ->
        Deployment.cut_host d ~at host;
        Deployment.heal_host d ~at:(at +. outage) host)
    windows;
  (* cross-shard workload *)
  let g = Prng.create ~seed:(Int64.of_int (seed + 1)) in
  let mixes =
    Array.init shards (fun i -> Mix.create ~rng:(Prng.split g) ~keys:(Deployment.keys d i) ())
  in
  let pick_client = Prng.split g in
  let cross = Cross.create ~rng:(Prng.split g) ~n_shards:shards () in
  let issued = Array.make shards 0 in
  let gave_up = Array.make shards 0 in
  (* presampled in time-sorted arrival order, as in the run command:
     shard callbacks must not share RNG state across domains *)
  List.iter
    (fun (at, shard) ->
      let client = Prng.int pick_client clients in
      Deployment.schedule d ~shard ~time:at (fun () ->
          issued.(shard) <- issued.(shard) + 1;
          Deployment.read d ~shard ~client
            (Mix.next_query mixes.(shard))
            ~on_done:(fun r ->
              match r.Secrep_core.Client.outcome with
              | `Gave_up -> gave_up.(shard) <- gave_up.(shard) + 1
              | _ -> ())))
    (Cross.arrivals cross ~rate:read_rate ~duration);
  if write_rate > 0.0 then begin
    let wcross = Cross.create ~rng:(Prng.split g) ~n_shards:shards () in
    List.iter
      (fun (at, shard) ->
        Deployment.schedule d ~shard ~time:at (fun () ->
            Deployment.write d ~shard ~client:0
              (Mix.next_write mixes.(shard))
              ~on_done:(fun _ -> ())))
      (Cross.arrivals wcross ~rate:write_rate ~duration)
  end;
  let read_slack =
    float_of_int (config.Config.read_retry_limit + 2)
    *. ((config.Config.read_timeout_factor *. max_latency) +. config.Config.retry_backoff_cap)
  in
  let last_heal =
    List.fold_left (fun acc (_, _, at, outage) -> Float.max acc (at +. outage)) 0.0 windows
  in
  Deployment.run_until d
    (Float.max duration last_heal +. read_slack +. (6.0 *. max_latency) +. 60.0);
  Printf.printf "sharded chaos run: seed %d, %d shard(s) over %d host(s), %d window(s)\n"
    seed shards pool (List.length windows);
  List.iter
    (fun (host, kind, at, outage) ->
      Printf.printf "    at %.1f %s host %d for %.1fs\n" at
        (match kind with `Crash -> "crash" | `Cut -> "cut")
        host outage)
    (List.sort (fun (_, _, a, _) (_, _, b, _) -> Float.compare a b) windows);
  for i = 0 to shards - 1 do
    let sys = Deployment.system d i in
    Printf.printf "  shard %d: %d read(s) issued, %d gave up; excluded [%s]\n" i issued.(i)
      gave_up.(i)
      (String.concat "; "
         (List.map string_of_int (Corrective.excluded (System.corrective sys))))
  done;
  (match trace_out with
  | None -> ()
  | Some path -> write_out path (String.concat "\n" (List.rev !tagged_rev) ^ "\n"));
  (* judge every shard against its own stream; the run injected no
     adversarial faults, so the honest-run invariants apply in full *)
  let violations = ref [] in
  for i = 0 to shards - 1 do
    let sys = Deployment.system d i in
    let result =
      {
        Harness.scenario =
          {
            Scenario.sys_seed = seed;
            n_shards = 1;
            n_masters = masters;
            slaves_per_master = max 1 (replication_factor / max 1 masters);
            n_clients = clients;
            n_items = items;
            max_latency;
            keepalive_period = keepalive;
            double_check_p = 0.05;
            audit = true;
            pledge_batch = 1;
      read_nonces = false;
      audit_adaptive = false;
            net = Scenario.Wan;
            faults = [];
            chaos = [];
            ops = [];
          };
        events = List.rev events_rev.(i);
        accepted = [];
        end_time = Secrep_sim.Sim.now (System.sim sys);
        pledges = List.rev pledges_rev.(i);
        reexec = (fun ~version query -> System.reexec_digest sys ~version query);
        slave_public =
          (fun slave_id ->
            if slave_id >= 0 && slave_id < System.n_slaves sys then
              Some (Secrep_core.Slave.public (System.slave sys slave_id))
            else None);
      }
    in
    match Invariant.check_all checkers result with
    | Ok () -> ()
    | Error msg -> violations := Printf.sprintf "[shard %d] %s" i msg :: !violations
  done;
  match List.rev !violations with
  | [] ->
    Printf.printf "invariants: %s — all held on every shard\n"
      (String.concat ", " (List.map (fun c -> c.Invariant.name) checkers))
  | violations ->
    List.iter (fun msg -> Printf.printf "invariant VIOLATED: %s\n" msg) violations;
    (match counterexample_out with
    | None -> ()
    | Some path ->
      write_out path
        (Printf.sprintf
           "sharded chaos counterexample\nseed: %d\nshards: %d\nreplication: %d\n\
            duration: %g\nviolations:\n%s\n"
           seed shards replication_factor duration
           (String.concat "\n" violations)));
    exit 1

let chaos_cmd =
  let masters = Arg.(value & opt int 2 & info [ "masters" ] ~doc:"Number of master servers.") in
  let slaves =
    Arg.(value & opt int 3 & info [ "slaves-per-master" ] ~doc:"Slaves per master.")
  in
  let shards =
    Arg.(
      value
      & opt int 1
      & info [ "shards" ]
          ~doc:
            "Content items in the deployment.  >1 switches to host-level chaos over a \
             shared pool: each window crashes or cuts a pool host, hitting every \
             co-located replica, and invariants are checked per shard.")
  in
  let domains =
    Arg.(
      value
      & opt int 0
      & info [ "domains" ]
          ~doc:
            "Worker domains for a sharded chaos run (--shards > 1).  0 or 1 is the \
             sequential lockstep scheduler; >1 uses the parallel domain pool.  Chaos \
             injection and event streams are bit-identical either way.")
  in
  let replication_factor =
    Arg.(
      value
      & opt (some int) None
      & info [ "replication-factor" ]
          ~doc:
            "Replicas per content item (default: masters x slaves-per-master).  Only \
             meaningful with --shards > 1.")
  in
  let clients = Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Number of clients.") in
  let items = Arg.(value & opt int 50 & info [ "items" ] ~doc:"Documents in the content.") in
  let duration =
    Arg.(
      value
      & opt float 120.0
      & info [ "duration" ] ~doc:"Chaos + workload window (sim seconds).")
  in
  let read_rate = Arg.(value & opt float 5.0 & info [ "read-rate" ] ~doc:"Reads per second.") in
  let write_rate =
    Arg.(value & opt float 0.05 & info [ "write-rate" ] ~doc:"Writes per second (0 = none).")
  in
  let max_latency =
    Arg.(value & opt float 5.0 & info [ "max-latency" ] ~doc:"Freshness bound (Section 3).")
  in
  let keepalive =
    Arg.(value & opt float 1.0 & info [ "keepalive" ] ~doc:"Keep-alive period (Section 3.1).")
  in
  let schedule_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:
            "Scripted fault timeline ('at TIME ACTION' per line, see docs/ROBUSTNESS.md).  \
             Omit to draw a seeded-random schedule.")
  in
  let intensity =
    Arg.(
      value
      & opt float 1.0
      & info [ "intensity" ]
          ~doc:"Scale the density of a random schedule (ignored with --schedule).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let invariants =
    Arg.(
      value
      & opt_all string []
      & info [ "invariant" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Only check invariant $(docv).  Repeatable; default: availability, \
                recovery-convergence, no-false-accusation, staleness, write-spacing.  \
                Known: %s."
               (String.concat ", " (List.map (fun c -> c.Invariant.name) Invariant.all))))
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Dump the event trace to $(docv) after the run ('-' = stdout).")
  in
  let trace_format =
    Arg.(
      value
      & opt string "jsonl"
      & info [ "trace-format" ] ~docv:"FMT" ~doc:"Trace dump format: $(b,jsonl) or $(b,chrome).")
  in
  let counterexample_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "counterexample-out" ] ~docv:"FILE"
          ~doc:
            "On violation, write seed, schedule and violation to $(docv) ('-' = stdout) so \
             the run can be replayed.")
  in
  let slo_flag, slo_out, lineage_out, trace_capacity, span_capacity = monitoring_args in
  let term =
    Term.(
      const
        (fun masters slaves_per_master shards domains replication_factor clients items
             duration
             read_rate write_rate max_latency keepalive schedule_file intensity seed
             invariants trace_out trace_format counterexample_out slo slo_out lineage_out
             trace_capacity span_capacity ->
          if shards > 1 then begin
            if schedule_file <> None then begin
              Printf.eprintf
                "--schedule targets single-system slave/master ids; use seeded-random \
                 host-level chaos with --shards > 1\n";
              Stdlib.exit 2
            end;
            run_chaos_sharded ~shards ~domains ~masters
              ~replication_factor:
                (match replication_factor with
                | Some r -> r
                | None -> masters * slaves_per_master)
              ~clients ~items ~duration ~read_rate ~write_rate ~max_latency ~keepalive
              ~intensity ~seed ~invariants ~trace_out ~counterexample_out
          end
          else
            run_chaos ~masters ~slaves_per_master ~clients ~items ~duration ~read_rate
              ~write_rate ~max_latency ~keepalive ~schedule_file ~intensity ~seed
              ~invariants ~trace_out ~trace_format ~counterexample_out ~slo ~slo_out
              ~lineage_out ~trace_capacity ~span_capacity)
      $ masters $ slaves $ shards $ domains $ replication_factor $ clients $ items
      $ duration
      $ read_rate $ write_rate $ max_latency $ keepalive $ schedule_file $ intensity $ seed
      $ invariants $ trace_out $ trace_format $ counterexample_out $ slo_flag $ slo_out
      $ lineage_out $ trace_capacity $ span_capacity)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a workload under a fault timeline — partitions, crash/recover churn, loss \
          bursts, latency spikes — and check the resilience invariants on the event \
          stream.  Scripted (--schedule) or seeded-random; both replay exactly from the \
          same inputs.")
    term

(* -- attack campaign ----------------------------------------------------

   [campaign] runs one seeded simulation per lie mode — the legacy
   blunt liars plus the strategic adversaries — with the hardening
   knobs on, and asserts each attack is neutralized (convicted,
   quarantined, rejected or suppressed) with zero false accusations
   anywhere.  CI runs this as the adversary smoke job. *)

let campaign_default_modes =
  [ "corrupt"; "stale"; "bad-signature"; "omit"; "collude:ring"; "replay";
    "equivocate:0"; "adaptive:1.5"; "flaky-omit:3" ]

type campaign_row = {
  c_mode : string;
  c_launched : int;
  c_suppressed : int;
  c_accused_at : float option;
  c_reads_before : int option;
  c_detect_latency : float option;
  c_quarantines : int;
  c_nonce_rejects : int;
  c_wrong : int;
  c_false : int list;  (** accused slaves other than the malicious one *)
  c_verdict : (unit, string) result;
}

let campaign_one ~mode ~masters ~slaves_per_master ~clients ~items ~duration ~read_rate
    ~write_rate ~lie_prob ~read_nonces ~audit_adaptive ~seed =
  match lie_mode_of_string mode with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2
  | Ok fault_mode ->
    let max_latency = 5.0 in
    let config =
      Config.validate_exn
        {
          Config.default with
          Config.max_latency;
          keepalive_period = 1.0;
          double_check_probability = 0.05;
          audit_enabled = true;
          read_nonces;
          audit_adaptive;
        }
    in
    let system =
      System.create ~n_masters:masters ~slaves_per_master ~n_clients:clients ~config
        ~seed:(Int64.of_int seed) ()
    in
    (* Capture the live stream: the trace ring may wrap on long runs,
       subscribers see everything. *)
    let lineage = Lineage.create () in
    let events_rev = ref [] in
    Trace.on_emit (System.trace system) (fun r ->
        Lineage.observe lineage r;
        events_rev := r :: !events_rev);
    let g = Prng.create ~seed:(Int64.of_int (seed + 1)) in
    let content = Catalog.product_catalog g ~n:items in
    System.load_content system content;
    System.set_slave_behavior system ~slave:0
      (Fault.Malicious { probability = lie_prob; mode = fault_mode; from_time = 0.0 });
    let keys = Array.of_list (List.map fst content) in
    let mix = Mix.create ~rng:(Prng.split g) ~keys () in
    let driver = Driver.create system ~mix ~rng:(Prng.split g) () in
    Driver.run_reads driver ~rate:read_rate ~duration;
    if write_rate > 0.0 then Driver.run_writes driver ~rate:write_rate ~duration ~writer:0;
    System.run_for system (duration +. (4.0 *. max_latency) +. 60.0);
    let stats = System.stats system in
    let s = Driver.summary driver in
    let launched = ref 0 and suppressed = ref 0 and quarantines = ref 0 in
    let accusations = ref [] in
    List.iter
      (fun r ->
        match r.Trace.event with
        | Event.Attack_launched { slave = 0; _ } -> incr launched
        | Event.Attack_suppressed { slave = 0; _ } -> incr suppressed
        | Event.Slave_quarantined { slave = 0; _ } -> incr quarantines
        | Event.Audit_conviction { slave; _ } | Event.Slave_excluded { slave; _ } ->
          accusations := (r.Trace.time, slave) :: !accusations
        | Event.Double_check { slave; outcome = Event.Mismatch; _ } ->
          accusations := (r.Trace.time, slave) :: !accusations
        | _ -> ())
      (List.rev !events_rev);
    let accused_at =
      List.fold_left
        (fun acc (t, sl) ->
          if sl <> 0 then acc
          else Some (match acc with None -> t | Some a -> Float.min a t))
        None !accusations
    in
    let false_acc =
      List.sort_uniq compare
        (List.filter_map (fun (_, sl) -> if sl <> 0 then Some sl else None) !accusations)
    in
    Lineage.finalize lineage;
    let row0 =
      List.find_opt
        (fun (r : Lineage.slave_row) -> r.Lineage.slave = 0)
        (Lineage.slave_rows lineage)
    in
    let get = Stats.get stats in
    let verdict =
      let family =
        match String.index_opt mode ':' with
        | Some i -> String.sub mode 0 i
        | None -> mode
      in
      match family with
      | "corrupt" | "equivocate" | "collude" ->
        if accused_at <> None then Ok ()
        else Error "expected an accusation (conviction / exclusion / DC mismatch)"
      | "stale" ->
        if get "client.stale_rejections" > 0 || accused_at <> None then Ok ()
        else Error "expected the freshness check to reject stale pledges"
      | "bad-signature" ->
        if get "client.pledge_rejected" > 0 then Ok ()
        else Error "expected pledge signature rejections"
      | "omit" | "flaky-omit" ->
        if get "client.read_timeouts" > 0 then Ok ()
        else Error "expected omission to surface as read timeouts"
      | "replay" | "replay-pledge" ->
        if not read_nonces then Ok () (* defense off: nothing to assert *)
        else if get "client.nonce_rejections" = 0 then
          Error "expected the nonce check to reject replayed pledges"
        else if audit_adaptive && !quarantines = 0 then
          Error "expected the adaptive auditor to quarantine the replaying slave"
        else Ok ()
      | "adaptive" ->
        if !launched = 0 || accused_at <> None || !quarantines > 0 then Ok ()
        else Error "expected the adaptive liar to be suppressed, quarantined or convicted"
      | _ ->
        if accused_at <> None then Ok ()
        else Error "expected an accusation of the malicious slave"
    in
    {
      c_mode = mode;
      c_launched = !launched;
      c_suppressed = !suppressed;
      c_accused_at = accused_at;
      c_reads_before = Option.bind row0 (fun r -> r.Lineage.reads_before_detection);
      c_detect_latency = Option.bind row0 (fun r -> r.Lineage.detection_latency);
      c_quarantines = !quarantines;
      c_nonce_rejects = get "client.nonce_rejections";
      c_wrong = s.Driver.accepted_wrong;
      c_false = false_acc;
      c_verdict = verdict;
    }

let json_of_campaign_row row =
  let open Export.Json in
  let opt_num = function Some x -> Num x | None -> Null in
  let opt_int = function Some x -> Int x | None -> Null in
  Obj
    [
      ("mode", Str row.c_mode);
      ("launched", Int row.c_launched);
      ("suppressed", Int row.c_suppressed);
      ("accused_at", opt_num row.c_accused_at);
      ("reads_before_detection", opt_int row.c_reads_before);
      ("detection_latency", opt_num row.c_detect_latency);
      ("quarantines", Int row.c_quarantines);
      ("nonce_rejections", Int row.c_nonce_rejects);
      ("wrong_accepts", Int row.c_wrong);
      ("false_accusations", Arr (List.map (fun s -> Int s) row.c_false));
      ("ok", Bool (row.c_verdict = Ok ()));
      ("why", match row.c_verdict with Ok () -> Null | Error m -> Str m);
    ]

let run_campaign ~masters ~slaves_per_master ~clients ~items ~duration ~read_rate
    ~write_rate ~lie_prob ~read_nonces ~audit_adaptive ~seed ~modes ~json_out =
  let modes = if modes = [] then campaign_default_modes else modes in
  (* Reject an unknown mode before spending time on any simulation. *)
  List.iter
    (fun m ->
      match lie_mode_of_string m with
      | Ok _ -> ()
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2)
    modes;
  Printf.printf "attack campaign: %d mode(s), seed %d, nonces=%b adaptive=%b\n"
    (List.length modes) seed read_nonces audit_adaptive;
  let rows =
    List.mapi
      (fun i mode ->
        let row =
          campaign_one ~mode ~masters ~slaves_per_master ~clients ~items ~duration
            ~read_rate ~write_rate ~lie_prob ~read_nonces ~audit_adaptive
            ~seed:(seed + (i * 7919))
        in
        Printf.printf "  %-16s launched %5d  suppressed %5d  accused-at %9s  \
                       reads-before %5s  quarantines %3d  %s\n"
          row.c_mode row.c_launched row.c_suppressed
          (match row.c_accused_at with Some t -> Printf.sprintf "%.1fs" t | None -> "-")
          (match row.c_reads_before with Some n -> string_of_int n | None -> "-")
          row.c_quarantines
          (match row.c_verdict with
          | Ok () -> "PASS"
          | Error why -> "FAIL: " ^ why);
        row)
      modes
  in
  (match json_out with
  | None -> ()
  | Some path ->
    write_out path
      (Export.Json.to_string (Export.Json.Arr (List.map json_of_campaign_row rows)) ^ "\n"));
  let failed = List.filter (fun r -> r.c_verdict <> Ok ()) rows in
  let falsely_accused = List.concat_map (fun r -> r.c_false) rows in
  if falsely_accused <> [] then
    Printf.printf "campaign: FALSE ACCUSATION of honest slave(s) [%s]\n"
      (String.concat "; " (List.map string_of_int (List.sort_uniq compare falsely_accused)));
  if failed = [] && falsely_accused = [] then
    Printf.printf "campaign: PASS (%d/%d attack modes neutralized, zero false accusations)\n"
      (List.length rows) (List.length rows)
  else begin
    Printf.printf "campaign: FAIL (%d/%d attack modes neutralized)\n"
      (List.length rows - List.length failed)
      (List.length rows);
    exit 1
  end

let campaign_cmd =
  let open Cmdliner in
  let masters = Arg.(value & opt int 2 & info [ "masters" ] ~doc:"Number of master servers.") in
  let slaves =
    Arg.(value & opt int 3 & info [ "slaves-per-master" ] ~doc:"Slaves per master.")
  in
  let clients = Arg.(value & opt int 8 & info [ "clients" ] ~doc:"Number of clients.") in
  let items = Arg.(value & opt int 100 & info [ "items" ] ~doc:"Documents in the content.") in
  let duration =
    Arg.(value & opt float 120.0 & info [ "duration" ] ~doc:"Workload duration per mode (sim seconds).")
  in
  let read_rate = Arg.(value & opt float 10.0 & info [ "read-rate" ] ~doc:"Reads per second.") in
  let write_rate =
    Arg.(value & opt float 0.05 & info [ "write-rate" ] ~doc:"Writes per second (0 = none).")
  in
  let lie_prob =
    Arg.(value & opt float 1.0 & info [ "lie-prob" ] ~doc:"Probability the slave lies per read.")
  in
  let read_nonces =
    Arg.(
      value
      & opt bool true
      & info [ "read-nonces" ] ~doc:"Run with the pledge replay defense on (default true).")
  in
  let audit_adaptive =
    Arg.(
      value
      & opt bool true
      & info [ "audit-adaptive" ]
          ~doc:"Run with suspicion-weighted audit sampling on (default true).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed; mode i runs at seed + 7919i.") in
  let modes =
    Arg.(
      value
      & opt_all string []
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            (Printf.sprintf
               "Attack mode to run (same grammar as run --lie-mode).  Repeatable; \
                default: %s."
               (String.concat ", " campaign_default_modes)))
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:"Write one JSON record per attack mode to $(docv) ('-' = stdout).")
  in
  let term =
    Term.(
      const
        (fun masters slaves_per_master clients items duration read_rate write_rate lie_prob
             read_nonces audit_adaptive seed modes json_out ->
          run_campaign ~masters ~slaves_per_master ~clients ~items ~duration ~read_rate
            ~write_rate ~lie_prob ~read_nonces ~audit_adaptive ~seed ~modes ~json_out)
      $ masters $ slaves $ clients $ items $ duration $ read_rate $ write_rate $ lie_prob
      $ read_nonces $ audit_adaptive $ seed $ modes $ json_out)
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Attack campaign: one seeded run per lie mode with the hardening knobs on, \
          asserting every attack is neutralized — convicted, quarantined, rejected or \
          suppressed — with zero false accusations.  Non-zero exit on any escape.")
    term

(* -- trace replay ------------------------------------------------------- *)

let replay_trace ~file ~sources ~kinds ~limit =
  let ic =
    if file = "-" then stdin
    else
      try open_in file
      with Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
  in
  let matches_filter values value = values = [] || List.mem value values in
  let shown = ref 0 in
  let lineno = ref 0 in
  let errors = ref 0 in
  (try
     while limit = 0 || !shown < limit do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         match Export.record_of_line line with
         | Error msg ->
           incr errors;
           Printf.eprintf "line %d: %s\n" !lineno msg
         | Ok r ->
           if
             matches_filter sources r.Trace.source
             && matches_filter kinds (Event.kind r.Trace.event)
           then begin
             incr shown;
             Printf.printf "%12.6f  %-12s %s\n" r.Trace.time r.Trace.source
               (Event.to_string r.Trace.event)
           end
       end
     done
   with End_of_file -> ());
  if file <> "-" then close_in ic;
  if !errors > 0 then begin
    Printf.eprintf "%d malformed line(s)\n" !errors;
    exit 1
  end

let trace_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace dump produced by run --trace-out ('-' = stdin).")
  in
  let sources =
    Arg.(
      value
      & opt_all string []
      & info [ "source" ] ~docv:"SOURCE"
          ~doc:
            "Only show events from $(docv) (e.g. master-0, slave-3, client-1, auditor, \
             system).  Repeatable.")
  in
  let kinds =
    Arg.(
      value
      & opt_all string []
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            (Printf.sprintf "Only show events of kind $(docv).  Repeatable.  Known kinds: %s."
               (String.concat ", " Event.all_kinds)))
  in
  let limit =
    Arg.(
      value
      & opt int 0
      & info [ "limit" ] ~docv:"N" ~doc:"Stop after printing $(docv) events (0 = no limit).")
  in
  let term =
    Term.(
      const (fun file sources kinds limit -> replay_trace ~file ~sources ~kinds ~limit)
      $ file $ sources $ kinds $ limit)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Replay a JSONL trace dump with optional source / event-kind filters.")
    term

(* -- offline monitor ---------------------------------------------------- *)

let run_monitor ~file ~max_latency ~audit ~window ~format ~lineage_out ~check =
  if format <> "text" && format <> "json" then begin
    Printf.eprintf "unknown format %S (expected text or json)\n" format;
    exit 2
  end;
  let ic =
    if file = "-" then stdin
    else
      try open_in file
      with Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
  in
  let config =
    Config.validate_exn { Config.default with Config.max_latency; audit_enabled = audit }
  in
  let slo = Slo.create ~config:(Slo.config ?window config) () in
  let lineage = Lineage.create () in
  let end_time = ref 0.0 in
  let lineno = ref 0 in
  let errors = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         match Export.record_of_line line with
         | Error msg ->
           incr errors;
           Printf.eprintf "line %d: %s\n" !lineno msg
         | Ok r ->
           end_time := Float.max !end_time r.Trace.time;
           Lineage.observe lineage r;
           Slo.observe slo r
       end
     done
   with End_of_file -> ());
  if file <> "-" then close_in ic;
  Slo.finalize slo ~now:!end_time;
  let health = Health.build ~slo ~lineage () in
  (match format with
  | "json" -> print_string (Export.Json.to_string (Health.to_json health) ^ "\n")
  | _ -> Format.printf "%a" Health.pp health);
  (match lineage_out with
  | None -> ()
  | Some path -> write_out path (Lineage.jsonl lineage));
  if !errors > 0 then begin
    Printf.eprintf "%d malformed line(s)\n" !errors;
    exit 2
  end;
  if check && health.Health.alerts <> [] then exit 1

let monitor_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"JSONL trace dump produced by run/chaos --trace-out ('-' = stdin).")
  in
  let max_latency =
    Arg.(
      value
      & opt float 5.0
      & info [ "max-latency" ]
          ~doc:"Freshness bound the trace ran under; SLO thresholds derive from it.")
  in
  let audit =
    Arg.(
      value
      & opt bool true
      & info [ "audit" ] ~doc:"Whether the trace ran with the auditor on.")
  in
  let window =
    Arg.(
      value
      & opt (some float) None
      & info [ "window" ] ~docv:"SECONDS"
          ~doc:"Rolling-window span for rate rules (default 6 x max-latency).")
  in
  let format =
    Arg.(
      value
      & opt string "text"
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output: $(b,text) (human health report) or $(b,json) (machine summary).")
  in
  let lineage_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "lineage-out" ] ~docv:"FILE"
          ~doc:"Also write per-request lineage records to $(docv) ('-' = stdout).")
  in
  let check =
    Arg.(
      value
      & flag
      & info [ "check" ] ~doc:"Exit 1 if any alert was raised (for CI gating).")
  in
  let term =
    Term.(
      const (fun file max_latency audit window format lineage_out check ->
          run_monitor ~file ~max_latency ~audit ~window ~format ~lineage_out ~check)
      $ file $ max_latency $ audit $ window $ format $ lineage_out $ check)
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Replay a JSONL trace through the causal-lineage and SLO monitors offline: \
          per-request lifecycle records, rule evaluation, and the end-of-run health \
          report, without re-running the simulation.")
    term

let () =
  let info =
    Cmd.info "secrep-sim" ~version:"1.0.0"
      ~doc:
        "Simulator for 'Secure Data Replication over Untrusted Hosts' (Popescu, Crispo, \
         Tanenbaum; HotOS 2003)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; fuzz_cmd; chaos_cmd; campaign_cmd; trace_cmd; monitor_cmd ]))
