(* Tests for the discrete-event simulation substrate: event queue
   ordering, clock semantics, latency models, links, periodic
   processes, work queues and the statistics helpers. *)

open Secrep_sim
module Prng = Secrep_crypto.Prng

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t = Alcotest.(float 1e-9)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------------- Event_queue ---------------- *)

let test_eq_time_order () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:3.0 "c");
  ignore (Event_queue.push q ~time:1.0 "a");
  ignore (Event_queue.push q ~time:2.0 "b");
  check (Alcotest.option (Alcotest.pair float_t Alcotest.string)) "first" (Some (1.0, "a"))
    (Event_queue.pop q);
  check (Alcotest.option (Alcotest.pair float_t Alcotest.string)) "second" (Some (2.0, "b"))
    (Event_queue.pop q);
  check (Alcotest.option (Alcotest.pair float_t Alcotest.string)) "third" (Some (3.0, "c"))
    (Event_queue.pop q);
  check bool_t "drained" true (Event_queue.pop q = None)

let test_eq_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    ignore (Event_queue.push q ~time:1.0 i)
  done;
  for i = 0 to 9 do
    match Event_queue.pop q with
    | Some (_, v) -> check int_t "insertion order preserved" i v
    | None -> Alcotest.fail "queue exhausted early"
  done

let test_eq_cancel () =
  let q = Event_queue.create () in
  let _a = Event_queue.push q ~time:1.0 "a" in
  let b = Event_queue.push q ~time:2.0 "b" in
  let _c = Event_queue.push q ~time:3.0 "c" in
  Event_queue.cancel q b;
  check int_t "size after cancel" 2 (Event_queue.size q);
  check bool_t "a first" true (Event_queue.pop q = Some (1.0, "a"));
  check bool_t "c skips b" true (Event_queue.pop q = Some (3.0, "c"));
  Event_queue.cancel q b;
  check int_t "empty" 0 (Event_queue.size q)

let test_eq_peek () =
  let q = Event_queue.create () in
  check bool_t "peek empty" true (Event_queue.peek_time q = None);
  let a = Event_queue.push q ~time:5.0 "a" in
  ignore (Event_queue.push q ~time:7.0 "b");
  check (Alcotest.option float_t) "peek" (Some 5.0) (Event_queue.peek_time q);
  Event_queue.cancel q a;
  check (Alcotest.option float_t) "peek skips cancelled" (Some 7.0) (Event_queue.peek_time q)

let test_eq_nan () =
  let q = Event_queue.create () in
  Alcotest.check_raises "NaN rejected" (Invalid_argument "Event_queue.push: NaN time")
    (fun () -> ignore (Event_queue.push q ~time:Float.nan "x"))

let prop_eq_sorts =
  qtest "event_queue: pops in non-decreasing time order"
    QCheck2.Gen.(list_size (int_range 0 200) (float_bound_inclusive 1000.0))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun time -> ignore (Event_queue.push q ~time ())) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

let prop_eq_model =
  (* Random interleaving of push/pop checked against a naive
     list-based model (ties break by insertion id, matching the
     queue's FIFO-tie contract). *)
  qtest ~count:100 "event_queue: agrees with a reference model"
    QCheck2.Gen.(list_size (int_range 0 120) (pair (int_bound 2) (float_bound_inclusive 100.0)))
    (fun ops ->
      let q = Event_queue.create () in
      let model = ref [] in
      let next_id = ref 0 in
      let ok = ref true in
      List.iter
        (fun (op, time) ->
          match op with
          | 0 | 1 ->
            let id = !next_id in
            incr next_id;
            ignore (Event_queue.push q ~time id);
            model := (time, id) :: !model
          | _ -> begin
            let sorted =
              List.sort
                (fun (t1, i1) (t2, i2) ->
                  if t1 <> t2 then Float.compare t1 t2 else Int.compare i1 i2)
                !model
            in
            match (Event_queue.pop q, sorted) with
            | None, [] -> ()
            | Some (t, v), (mt, mi) :: rest ->
              if t <> mt || v <> mi then ok := false;
              model := rest
            | Some _, [] | None, _ :: _ -> ok := false
          end)
        ops;
      !ok)

(* ---------------- Sim ---------------- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule sim ~delay:2.0 (fun () -> log := "b" :: !log));
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> log := "a" :: !log));
  ignore (Sim.schedule sim ~delay:3.0 (fun () -> log := "c" :: !log));
  Sim.run sim;
  check (Alcotest.list Alcotest.string) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check float_t "clock at last event" 3.0 (Sim.now sim)

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule sim ~delay:(float_of_int i) (fun () -> incr fired))
  done;
  Sim.run ~until:5.5 sim;
  check int_t "five fired" 5 !fired;
  check float_t "clock exactly at until" 5.5 (Sim.now sim);
  Sim.run sim;
  check int_t "rest fired" 10 !fired

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let hits = ref [] in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun () ->
         hits := Sim.now sim :: !hits;
         ignore (Sim.schedule sim ~delay:0.5 (fun () -> hits := Sim.now sim :: !hits))));
  Sim.run sim;
  check (Alcotest.list float_t) "nested times" [ 1.0; 1.5 ] (List.rev !hits)

let test_sim_negative_delay () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Sim.schedule: negative delay")
    (fun () -> ignore (Sim.schedule sim ~delay:(-1.0) (fun () -> ())))

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~delay:1.0 (fun () -> fired := true) in
  Sim.cancel sim h;
  Sim.run sim;
  check bool_t "cancelled event does not fire" false !fired

let test_sim_max_events () =
  let sim = Sim.create () in
  let rec rearm () = ignore (Sim.schedule sim ~delay:1.0 rearm) in
  rearm ();
  Sim.run ~max_events:25 sim;
  check int_t "bounded" 25 (Sim.executed_events sim)

(* ---------------- Latency ---------------- *)

let test_latency_validate () =
  let bad l = try Latency.validate l; false with Invalid_argument _ -> true in
  check bool_t "negative constant" true (bad (Latency.Constant (-1.0)));
  check bool_t "lo > hi" true (bad (Latency.Uniform { lo = 2.0; hi = 1.0 }));
  check bool_t "zero mean" true (bad (Latency.Exponential { mean = 0.0; floor = 0.0 }));
  check bool_t "pareto shape <= 1" true
    (bad (Latency.Pareto { scale = 1.0; shape = 1.0; cap = 2.0 }));
  check bool_t "empty empirical" true (bad (Latency.Empirical [||]));
  Latency.validate (Latency.Constant 0.1);
  Latency.validate (Latency.Uniform { lo = 0.0; hi = 1.0 })

let test_latency_samples_in_range () =
  let g = Prng.create ~seed:21L in
  let models =
    [
      Latency.Constant 0.05;
      Latency.Uniform { lo = 0.01; hi = 0.02 };
      Latency.Exponential { mean = 0.01; floor = 0.005 };
      Latency.Pareto { scale = 0.01; shape = 2.0; cap = 0.5 };
      Latency.Empirical [| 0.001; 0.002; 0.003 |];
    ]
  in
  List.iter
    (fun m ->
      for _ = 1 to 500 do
        let s = Latency.sample m g in
        check bool_t "non-negative" true (s >= 0.0);
        match m with
        | Latency.Uniform { lo; hi } -> check bool_t "uniform range" true (s >= lo && s <= hi)
        | Latency.Exponential { floor; _ } -> check bool_t "above floor" true (s >= floor)
        | Latency.Pareto { scale; cap; _ } ->
          check bool_t "pareto range" true (s >= scale && s <= cap)
        | Latency.Constant c -> check bool_t "constant" true (s = c)
        | Latency.Empirical arr ->
          check bool_t "from samples" true (Array.exists (fun x -> x = s) arr)
      done)
    models

let test_latency_mean_estimates () =
  let g = Prng.create ~seed:22L in
  let m = Latency.Exponential { mean = 0.01; floor = 0.005 } in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Latency.sample m g
  done;
  let sample_mean = !sum /. float_of_int n in
  check bool_t "sample mean near analytic" true
    (Float.abs (sample_mean -. Latency.mean m) < 0.001)

(* ---------------- Link ---------------- *)

let test_link_delivers () =
  let sim = Sim.create () in
  let g = Prng.create ~seed:23L in
  let link = Link.create sim ~rng:g ~latency:(Latency.Constant 0.01) () in
  let got = ref 0 in
  for _ = 1 to 5 do
    Link.send link (fun () -> incr got)
  done;
  Sim.run sim;
  check int_t "all delivered" 5 !got;
  check int_t "counted" 5 (Link.delivered link);
  check float_t "took one hop" 0.01 (Sim.now sim)

let test_link_down_drops () =
  let sim = Sim.create () in
  let g = Prng.create ~seed:24L in
  let link = Link.create sim ~rng:g ~latency:(Latency.Constant 0.01) () in
  Link.set_up link false;
  let got = ref 0 in
  Link.send link (fun () -> incr got);
  Sim.run sim;
  check int_t "nothing delivered" 0 !got;
  check int_t "dropped" 1 (Link.dropped link)

let test_link_inflight_dropped_on_down () =
  let sim = Sim.create () in
  let g = Prng.create ~seed:25L in
  let link = Link.create sim ~rng:g ~latency:(Latency.Constant 1.0) () in
  let got = ref 0 in
  Link.send link (fun () -> incr got);
  ignore (Sim.schedule sim ~delay:0.5 (fun () -> Link.set_up link false));
  ignore (Sim.schedule sim ~delay:0.6 (fun () -> Link.set_up link true));
  Sim.run sim;
  check int_t "in-flight message lost" 0 !got

(* Regression pin for the fail-stop contract: cutting the link drops
   every in-flight delivery, the drops are visible in [dropped], and the
   link works again after healing — no delivery leaks across a down
   window. *)
let test_link_failstop_semantics () =
  let sim = Sim.create () in
  let g = Prng.create ~seed:28L in
  let link = Link.create sim ~rng:g ~latency:(Latency.Constant 1.0) () in
  let got = ref 0 in
  for _ = 1 to 4 do
    Link.send link (fun () -> incr got)
  done;
  ignore (Sim.schedule sim ~delay:0.5 (fun () -> Link.set_up link false));
  ignore
    (Sim.schedule sim ~delay:0.6 (fun () ->
         (* sent while down: dropped immediately, not queued *)
         Link.send link (fun () -> incr got)));
  ignore (Sim.schedule sim ~delay:2.0 (fun () -> Link.set_up link true));
  ignore
    (Sim.schedule sim ~delay:2.5 (fun () -> Link.send link (fun () -> incr got)));
  Sim.run sim;
  check int_t "only the post-heal message arrives" 1 !got;
  check int_t "in-flight + while-down messages all counted dropped" 5 (Link.dropped link);
  check int_t "delivered counts the survivor" 1 (Link.delivered link)

(* The chaos mutators compose with the rest of the link model: loss
   applies to the new rate immediately, a latency swap only affects
   messages sent after it, and bandwidth charges stack on top. *)
let test_link_mutators_compose () =
  let sim = Sim.create () in
  let g = Prng.create ~seed:29L in
  let link = Link.create sim ~rng:g ~latency:(Latency.Constant 0.01) () in
  check bool_t "loss starts at zero" true (Link.loss link = 0.0);
  Link.set_loss link 0.5;
  let got = ref 0 in
  for _ = 1 to 1000 do
    Link.send link (fun () -> incr got)
  done;
  Sim.run sim;
  check bool_t "mutated loss rate applies" true (!got > 400 && !got < 600);
  (match Link.set_loss link 1.5 with
  | () -> Alcotest.fail "loss 1.5 should be rejected"
  | exception Invalid_argument _ -> ());
  Link.set_loss link 0.0;
  Link.set_latency link (Latency.Constant 0.1);
  Link.set_bandwidth link ~bytes_per_sec:1000.0;
  let arrival = ref 0.0 in
  Link.send_sized link ~bytes_len:100 (fun () -> arrival := Sim.now sim);
  let before = Sim.now sim in
  Sim.run sim;
  check float_t "new latency + transfer charge" (before +. 0.1 +. 0.1) !arrival

let test_link_loss () =
  let sim = Sim.create () in
  let g = Prng.create ~seed:26L in
  let link = Link.create sim ~rng:g ~latency:(Latency.Constant 0.001) ~loss:0.5 () in
  let got = ref 0 in
  for _ = 1 to 1000 do
    Link.send link (fun () -> incr got)
  done;
  Sim.run sim;
  check bool_t "roughly half lost" true (!got > 400 && !got < 600)

let test_link_bandwidth () =
  let sim = Sim.create () in
  let g = Prng.create ~seed:27L in
  let link = Link.create sim ~rng:g ~latency:(Latency.Constant 0.01) () in
  Link.set_bandwidth link ~bytes_per_sec:1000.0;
  let arrival = ref 0.0 in
  Link.send_sized link ~bytes_len:100 (fun () -> arrival := Sim.now sim);
  Sim.run sim;
  check float_t "latency + transfer" 0.11 !arrival

(* ---------------- Process ---------------- *)

let test_process_periodic () =
  let sim = Sim.create () in
  let ticks = ref 0 in
  let p = Process.periodic sim ~period:1.0 (fun () -> incr ticks) in
  Sim.run ~until:10.5 sim;
  check int_t "ticks" 11 !ticks;
  check int_t "fired counter" 11 (Process.fired p);
  Process.stop p;
  Sim.run ~until:20.0 sim;
  check int_t "no ticks after stop" 11 !ticks;
  check bool_t "not running" false (Process.is_running p)

let test_process_stop_from_inside () =
  let sim = Sim.create () in
  let ticks = ref 0 in
  let p_ref = ref None in
  let p =
    Process.periodic sim ~period:1.0 (fun () ->
        incr ticks;
        if !ticks = 3 then Process.stop (Option.get !p_ref))
  in
  p_ref := Some p;
  Sim.run ~until:100.0 sim;
  check int_t "stopped itself at 3" 3 !ticks

let test_process_jitter_requires_rng () =
  let sim = Sim.create () in
  Alcotest.check_raises "jitter without rng"
    (Invalid_argument "Process.periodic: jitter requires an rng") (fun () ->
      ignore (Process.periodic sim ~period:1.0 ~jitter:0.1 (fun () -> ())))

let test_process_jitter_bounds () =
  let sim = Sim.create () in
  let g = Prng.create ~seed:31L in
  let times = ref [] in
  ignore
    (Process.periodic sim ~period:1.0 ~jitter:0.2 ~rng:g (fun () ->
         times := Sim.now sim :: !times));
  Sim.run ~until:50.0 sim;
  let times = List.rev !times in
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b -. a) :: gaps rest
    | _ -> []
  in
  List.iter
    (fun gap ->
      check bool_t "gap within jitter" true (gap >= 0.8 -. 1e-9 && gap <= 1.2 +. 1e-9))
    (gaps times)

(* ---------------- Work_queue ---------------- *)

let test_work_queue_sequential () =
  let sim = Sim.create () in
  let wq = Work_queue.create sim () in
  let finishes = ref [] in
  Work_queue.submit wq ~cost:1.0 (fun () -> finishes := Sim.now sim :: !finishes);
  Work_queue.submit wq ~cost:2.0 (fun () -> finishes := Sim.now sim :: !finishes);
  Work_queue.submit wq ~cost:0.5 (fun () -> finishes := Sim.now sim :: !finishes);
  Sim.run sim;
  check (Alcotest.list float_t) "sequential finish times" [ 1.0; 3.0; 3.5 ]
    (List.rev !finishes);
  check int_t "completed" 3 (Work_queue.completed wq);
  check float_t "busy seconds" 3.5 (Work_queue.busy_seconds wq)

let test_work_queue_idle_gap () =
  let sim = Sim.create () in
  let wq = Work_queue.create sim () in
  let t1 = ref 0.0 in
  Work_queue.submit wq ~cost:1.0 (fun () -> ());
  ignore
    (Sim.schedule sim ~delay:5.0 (fun () ->
         Work_queue.submit wq ~cost:1.0 (fun () -> t1 := Sim.now sim)));
  Sim.run sim;
  check float_t "starts when submitted" 6.0 !t1

let test_work_queue_negative_cost () =
  let sim = Sim.create () in
  let wq = Work_queue.create sim () in
  Alcotest.check_raises "negative" (Invalid_argument "Work_queue.submit: bad cost")
    (fun () -> Work_queue.submit wq ~cost:(-1.0) (fun () -> ()))

(* ---------------- Histogram ---------------- *)

let test_histogram_percentiles () =
  let h = Histogram.create ~name:"t" () in
  for i = 1 to 100 do
    Histogram.add h (float_of_int i)
  done;
  check float_t "p50" 50.0 (Histogram.percentile h 50.0);
  check float_t "p99" 99.0 (Histogram.percentile h 99.0);
  check float_t "p100" 100.0 (Histogram.percentile h 100.0);
  check float_t "min" 1.0 (Histogram.min_value h);
  check float_t "max" 100.0 (Histogram.max_value h);
  check float_t "mean" 50.5 (Histogram.mean h);
  check int_t "count" 100 (Histogram.count h)

let test_histogram_empty_errors () =
  let h = Histogram.create () in
  check bool_t "is_empty" true (Histogram.is_empty h);
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check bool_t "mean raises" true (raises (fun () -> Histogram.mean h));
  check bool_t "percentile raises" true (raises (fun () -> Histogram.percentile h 50.0))

let test_histogram_merge_stddev () =
  let a = Histogram.create ~name:"a" () and b = Histogram.create ~name:"b" () in
  List.iter (Histogram.add a) [ 1.0; 2.0 ];
  List.iter (Histogram.add b) [ 3.0; 4.0 ];
  let m = Histogram.merge a b in
  check int_t "merged count" 4 (Histogram.count m);
  check float_t "merged mean" 2.5 (Histogram.mean m);
  check bool_t "stddev" true (Float.abs (Histogram.stddev m -. sqrt 1.25) < 1e-9)

let prop_histogram_percentile_bounds =
  qtest "histogram: percentiles lie within [min,max]"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 100.0))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      List.for_all
        (fun p ->
          let v = Histogram.percentile h p in
          v >= Histogram.min_value h && v <= Histogram.max_value h)
        [ 0.0; 25.0; 50.0; 75.0; 99.0; 100.0 ])

(* ---------------- Stats ---------------- *)

let test_stats_counters () =
  let s = Stats.create () in
  check int_t "unknown is 0" 0 (Stats.get s "nope");
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 5;
  check int_t "a" 2 (Stats.get s "a");
  check int_t "b" 5 (Stats.get s "b");
  check (Alcotest.list (Alcotest.pair Alcotest.string int_t)) "sorted list"
    [ ("a", 2); ("b", 5) ] (Stats.counters s);
  Stats.set_gauge s "g" 1.5;
  check (Alcotest.option float_t) "gauge" (Some 1.5) (Stats.gauge s "g");
  let h = Stats.histogram s "h" in
  Histogram.add h 1.0;
  check int_t "histogram shared" 1 (Histogram.count (Stats.histogram s "h"))

(* ---------------- Timeseries ---------------- *)

let test_timeseries_basic () =
  let ts = Timeseries.create ~name:"t" () in
  Timeseries.record ts ~time:0.0 1.0;
  Timeseries.record ts ~time:1.0 3.0;
  Timeseries.record ts ~time:2.0 2.0;
  check int_t "length" 3 (Timeseries.length ts);
  check (Alcotest.option (Alcotest.pair float_t float_t)) "last" (Some (2.0, 2.0))
    (Timeseries.last ts);
  check (Alcotest.option float_t) "max" (Some 3.0) (Timeseries.max_value ts);
  Alcotest.check_raises "time goes backwards"
    (Invalid_argument "Timeseries.record: time went backwards") (fun () ->
      Timeseries.record ts ~time:1.0 0.0)

let test_timeseries_downsample () =
  let ts = Timeseries.create () in
  for i = 0 to 99 do
    Timeseries.record ts ~time:(float_of_int i) (float_of_int (i mod 10))
  done;
  let buckets = Timeseries.downsample ts ~buckets:10 in
  check int_t "10 buckets" 10 (Array.length buckets);
  Array.iter (fun (_, v) -> check bool_t "bucket mean" true (v >= 0.0 && v <= 9.0)) buckets

(* ---------------- Trace ---------------- *)

let test_trace_ring () =
  let tr = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.log tr ~time:(float_of_int i) ~source:"s" (Printf.sprintf "e%d" i)
  done;
  check int_t "capped size" 3 (Trace.size tr);
  check int_t "total" 5 (Trace.total_logged tr);
  let events = List.map Trace.message (Trace.to_list tr) in
  check (Alcotest.list Alcotest.string) "keeps newest" [ "e3"; "e4"; "e5" ] events;
  check bool_t "find" true (Trace.find tr ~f:(fun r -> Trace.message r = "e4") <> None);
  check int_t "count" 3 (Trace.count_matching tr ~f:(fun r -> r.Trace.source = "s"))

let test_trace_wraparound_accounting () =
  (* After heavy overflow, [size] stays pinned at the capacity while
     [total_logged] keeps counting, and the retained window is exactly
     the newest [capacity] records in emission order. *)
  let capacity = 7 in
  let tr = Trace.create ~capacity () in
  let n = 100 in
  for i = 1 to n do
    Trace.emit tr ~time:(float_of_int i) ~source:"s" (Event.Read_issued { client = i; request = i; mode = "single" })
  done;
  check int_t "size = capacity" capacity (Trace.size tr);
  check int_t "total_logged = all emits" n (Trace.total_logged tr);
  let clients =
    List.map
      (fun r ->
        match r.Trace.event with Event.Read_issued { client; _ } -> client | _ -> -1)
      (Trace.to_list tr)
  in
  check (Alcotest.list int_t) "newest window, oldest first"
    (List.init capacity (fun i -> n - capacity + 1 + i))
    clients

let test_trace_typed_queries () =
  let tr = Trace.create () in
  Trace.emit tr ~time:1.0 ~source:"client-0" (Event.Read_issued { client = 0; request = 1; mode = "single" });
  Trace.emit tr ~time:2.0 ~source:"slave-1"
    (Event.Pledge_signed { slave = 1; request = 1; version = 3; lied = true });
  Trace.emit tr ~time:3.0 ~source:"client-0" (Event.Read_issued { client = 0; request = 2; mode = "quorum-2" });
  check int_t "count_kind" 2 (Trace.count_kind tr ~kind:"read_issued");
  check (Alcotest.list Alcotest.string) "distinct kinds sorted"
    [ "pledge_signed"; "read_issued" ] (Trace.kinds tr)

(* ---------------- Event ---------------- *)

let sample_events =
  [
    Event.Log "free-form";
    Event.Read_issued { client = 3; request = 3_000_001; mode = "quorum-2" };
    Event.Read_answered
      {
        client = 3;
        request = 3_000_001;
        slave = 7;
        outcome = "accepted";
        version = 12;
        latency = 0.034;
      };
    Event.Pledge_signed { slave = 7; request = 3_000_001; version = 12; lied = false };
    Event.Pledge_batch_signed { slave = 7; version = 12; batch = 8 };
    Event.Audit_dedup_hit { slave = 7; version = 12 };
    Event.Pledge_verified
      {
        client = 3;
        request = 3_000_001;
        slave = 7;
        version = 12;
        ok = false;
        reason = "stale keepalive";
      };
    Event.Double_check { client = 3; request = 3_000_001; slave = 7; outcome = Event.Mismatch };
    Event.Write_committed { master = 1; version = 13 };
    Event.Keepalive_sent { master = 1; version = 13 };
    Event.State_update_applied { slave = 7; from_version = 12; to_version = 13 };
    Event.Audit_advance { version = 13 };
    Event.Audit_conviction { slave = 7; version = 12 };
    Event.Slave_excluded { slave = 7; immediate = true };
    Event.Order_delivered { member = 0; seq = 42 };
    Event.View_installed { member = 0; view = 2; sequencer = 1 };
    Event.Partition { target = "slave-7"; up = false };
    Event.Node_crashed { node = "slave-7" };
    Event.Node_recovered { node = "slave-7"; version = 13 };
    Event.Net_degraded { loss = 0.2; latency_factor = 4.0 };
    Event.Breaker_opened { client = 3; slave = 7 };
    Event.Breaker_closed { client = 3; slave = 7 };
    Event.Audit_overload { backlog = 100000 };
    Event.Alert_raised { rule = "staleness"; value = 6.2; threshold = 5.0 };
    Event.Alert_cleared { rule = "staleness"; duration = 12.5 };
    Event.Shard_assigned { shard = 2; host = 9; slot = 1 };
    Event.Shard_rebalanced { shard = 2; slot = 1; from_host = 9; to_host = 4; reason = "crash" };
    Event.Attack_launched
      { slave = 7; mode = "replay-pledge"; client = 3; request = 3_000_001 };
    Event.Attack_suppressed { slave = 7; mode = "adaptive:1"; reason = "audit-pressure" };
    Event.Slave_quarantined { slave = 7; score = 3.25; until = 42.5 };
    Event.Domain_started { domain = 1; shards = 2 };
    Event.Shard_merged { shard = 2; events = 137 };
  ]

let test_event_fields_roundtrip () =
  List.iter
    (fun e ->
      match Event.of_fields ~kind:(Event.kind e) (Event.fields e) with
      | Ok e' -> check bool_t (Event.kind e ^ " round-trips") true (e = e')
      | Error msg -> Alcotest.fail (Event.kind e ^ ": " ^ msg))
    sample_events;
  check int_t "taxonomy covers every variant" (List.length sample_events)
    (List.length Event.all_kinds)

(* ---------------- Span ---------------- *)

let test_span_nesting_and_durations () =
  let stats = Stats.create () in
  let sp = Span.create ~stats () in
  (* outer [0,10], inner [2,5]; a sibling source nests independently. *)
  let outer = Span.start sp ~now:0.0 ~source:"a" "outer" in
  let inner = Span.start sp ~now:2.0 ~source:"a" "inner" in
  let other = Span.start sp ~now:3.0 ~source:"b" "other" in
  check int_t "three active" 3 (Span.active_count sp);
  Span.finish sp inner ~now:5.0;
  Span.finish sp other ~now:4.0;
  Span.finish sp outer ~now:10.0;
  check int_t "none active" 0 (Span.active_count sp);
  check int_t "all finished" 3 (Span.total_finished sp);
  let by_name name =
    match List.find_opt (fun r -> r.Span.name = name) (Span.finished sp) with
    | Some r -> r
    | None -> Alcotest.fail ("missing span " ^ name)
  in
  check float_t "outer duration" 10.0 (by_name "outer").Span.duration;
  check float_t "inner duration" 3.0 (by_name "inner").Span.duration;
  check int_t "outer depth" 0 (by_name "outer").Span.depth;
  check int_t "inner depth" 1 (by_name "inner").Span.depth;
  check int_t "sibling source depth" 0 (by_name "other").Span.depth;
  (* Finishing feeds the span.<name> histogram of the attached stats. *)
  let h = Stats.histogram stats (Span.histogram_name "inner") in
  check int_t "histogram fed" 1 (Histogram.count h);
  check float_t "histogram value" 3.0 (Histogram.mean h)

let test_span_record_and_errors () =
  let sp = Span.create () in
  Span.record sp ~source:"s" ~start:1.0 ~duration:0.5 "phase";
  check int_t "recorded" 1 (Span.total_finished sp);
  let a = Span.start sp ~now:2.0 ~source:"s" "x" in
  Span.finish sp a ~now:3.0;
  Alcotest.check_raises "double finish"
    (Invalid_argument "Span.finish: span already finished") (fun () ->
      Span.finish sp a ~now:4.0);
  let b = Span.start sp ~now:5.0 ~source:"s" "y" in
  Alcotest.check_raises "backwards clock"
    (Invalid_argument "Span.finish: clock went backwards") (fun () ->
      Span.finish sp b ~now:4.0)

let test_span_leaks_under_wrap () =
  (* Regression: leak diagnostics must not be confused by the finished
     ring wrapping.  Spans opened AND closed inside the same wrap
     window fall out of the retained ring, but they are finished — the
     leak report must count only the genuinely unfinished ones, with
     exact identities, no matter how many times the ring turned over. *)
  let sp = Span.create ~capacity:3 () in
  let leaked_expected = ref [] in
  (* 5 windows; each opens 4 spans and finishes 3 (one per window
     leaks), so every window overflows the capacity-3 ring on its own
     and the churned spans vanish from [finished] entirely. *)
  for w = 0 to 4 do
    let t0 = 10.0 *. float_of_int w in
    let name i = Printf.sprintf "w%d-s%d" w i in
    let leak = Span.start sp ~now:t0 ~source:"leaky" (name 0) in
    ignore leak;
    leaked_expected := (name 0, "leaky", t0) :: !leaked_expected;
    for i = 1 to 3 do
      let a = Span.start sp ~now:(t0 +. float_of_int i) ~source:"busy" (name i) in
      Span.finish sp a ~now:(t0 +. float_of_int i +. 0.5)
    done
  done;
  check int_t "ring pinned at capacity" 3 (Span.size sp);
  check int_t "every close counted" 15 (Span.total_finished sp);
  check int_t "active = opens - closes" 5 (Span.active_count sp);
  let leaks = Span.leaked sp in
  check int_t "exactly the unfinished spans leak" 5 (List.length leaks);
  check
    (Alcotest.list (Alcotest.triple Alcotest.string Alcotest.string float_t))
    "leak identities, ordered by start" (List.rev !leaked_expected) leaks;
  (* Closing a survivor after heavy wrap removes it from the report. *)
  let late = Span.start sp ~now:100.0 ~source:"late" "late" in
  check int_t "new open visible" 6 (List.length (Span.leaked sp));
  Span.finish sp late ~now:101.0;
  check int_t "late close drops out" 5 (List.length (Span.leaked sp));
  check int_t "still only the originals" 5 (Span.active_count sp)

(* ---------------- Export ---------------- *)

let test_export_jsonl_roundtrip () =
  let tr = Trace.create () in
  List.iteri
    (fun i e -> Trace.emit tr ~time:(0.5 +. float_of_int i) ~source:"src" e)
    sample_events;
  let lines = String.split_on_char '\n' (String.trim (Export.jsonl_of_trace tr)) in
  check int_t "one line per record" (List.length sample_events) (List.length lines);
  List.iteri
    (fun i line ->
      match Export.record_of_line line with
      | Error msg -> Alcotest.fail (Printf.sprintf "line %d: %s" i msg)
      | Ok r ->
        check float_t "time round-trips" (0.5 +. float_of_int i) r.Trace.time;
        check Alcotest.string "source round-trips" "src" r.Trace.source;
        check bool_t "event round-trips" true (r.Trace.event = List.nth sample_events i))
    lines

let test_export_chrome_parses () =
  let tr = Trace.create () in
  Trace.emit tr ~time:1.0 ~source:"client-0" (Event.Read_issued { client = 0; request = 1; mode = "single" });
  let sp = Span.create () in
  Span.record sp ~source:"slave-0" ~start:1.0 ~duration:0.25 "query_eval";
  let json = Export.chrome_of ~spans:sp ~trace:tr () in
  match Export.Json.parse json with
  | Error msg -> Alcotest.fail msg
  | Ok doc -> begin
    match Export.Json.member "traceEvents" doc with
    | Some (Export.Json.Arr events) ->
      (* one span (X), one instant (i), two thread-name metadata (M) *)
      check int_t "event count" 4 (List.length events);
      let phase e =
        match Export.Json.member "ph" e with Some (Export.Json.Str s) -> s | _ -> "?"
      in
      let count p = List.length (List.filter (fun e -> phase e = p) events) in
      check int_t "complete spans" 1 (count "X");
      check int_t "instants" 1 (count "i");
      check int_t "thread metadata" 2 (count "M");
      let x = List.find (fun e -> phase e = "X") events in
      (match Export.Json.member "dur" x with
      | Some (Export.Json.Num d) -> check float_t "duration in microseconds" 250000.0 d
      | Some (Export.Json.Int d) -> check int_t "duration in microseconds" 250000 d
      | _ -> Alcotest.fail "span missing dur")
    | _ -> Alcotest.fail "missing traceEvents array"
  end

let test_export_prometheus () =
  let stats = Stats.create () in
  Stats.add stats "client.reads_issued" 41;
  Stats.set_gauge stats "sim.pending_events" 17.0;
  let h = Stats.histogram stats "span.verify" in
  for i = 1 to 100 do
    Histogram.add h (float_of_int i /. 1000.0)
  done;
  let text = Export.prometheus_of_stats stats in
  let has needle =
    (* substring search, stdlib only *)
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check bool_t "counter line" true (has "secrep_client_reads_issued 41");
  check bool_t "counter type" true (has "# TYPE secrep_client_reads_issued counter");
  check bool_t "gauge line" true (has "secrep_sim_pending_events 17.000000");
  check bool_t "p50 label" true (has "secrep_span_verify{quantile=\"0.50\"} 0.050000");
  check bool_t "p99 label" true (has "secrep_span_verify{quantile=\"0.99\"} 0.099000");
  check bool_t "count line" true (has "secrep_span_verify_count 100")

(* ---------------- Rolling ---------------- *)

let test_rolling_empty () =
  let r = Rolling.create ~window:10.0 () in
  check int_t "count" 0 (Rolling.count r);
  check float_t "sum" 0.0 (Rolling.sum r);
  check (Alcotest.option float_t) "mean" None (Rolling.mean r);
  check (Alcotest.option float_t) "percentile" None (Rolling.percentile r 99.0);
  check float_t "window" 10.0 (Rolling.window r)

let test_rolling_single_sample () =
  let r = Rolling.create ~window:10.0 () in
  Rolling.record r ~time:1.0 4.0;
  check int_t "count" 1 (Rolling.count r);
  check (Alcotest.option float_t) "mean" (Some 4.0) (Rolling.mean r);
  check (Alcotest.option float_t) "p0 = p100 = the sample" (Some 4.0)
    (Rolling.percentile r 0.0);
  check (Alcotest.option float_t) "p100" (Some 4.0) (Rolling.percentile r 100.0)

let test_rolling_eviction () =
  let r = Rolling.create ~window:5.0 () in
  Rolling.record r ~time:0.0 1.0;
  Rolling.record r ~time:2.0 2.0;
  Rolling.record r ~time:4.0 3.0;
  check int_t "all inside window" 3 (Rolling.count r);
  (* advancing to 6 evicts the t=0 sample ((6 - 5) > 0) only *)
  Rolling.advance r ~now:6.0;
  check int_t "one evicted" 2 (Rolling.count r);
  check float_t "sum follows" 5.0 (Rolling.sum r);
  check (Alcotest.option float_t) "mean follows" (Some 2.5) (Rolling.mean r);
  Rolling.advance r ~now:100.0;
  check int_t "all evicted" 0 (Rolling.count r);
  check (Alcotest.option float_t) "empty again" None (Rolling.mean r)

let test_rolling_record_evicts_too () =
  let r = Rolling.create ~window:5.0 () in
  Rolling.record r ~time:0.0 1.0;
  (* recording far in the future evicts the stale sample on the way in *)
  Rolling.record r ~time:20.0 7.0;
  check int_t "stale sample gone" 1 (Rolling.count r);
  check (Alcotest.option float_t) "only the fresh one" (Some 7.0) (Rolling.mean r)

let test_rolling_out_of_order () =
  let r = Rolling.create ~window:5.0 () in
  Rolling.record r ~time:3.0 1.0;
  Alcotest.check_raises "time goes backwards"
    (Invalid_argument "Rolling.record: time went backwards") (fun () ->
      Rolling.record r ~time:2.0 1.0);
  (* equal timestamps are fine (several events in the same sim instant) *)
  Rolling.record r ~time:3.0 2.0;
  check int_t "tie accepted" 2 (Rolling.count r)

let test_rolling_percentile () =
  let r = Rolling.create ~window:1000.0 () in
  for i = 1 to 100 do
    Rolling.record r ~time:(float_of_int i) (float_of_int i)
  done;
  check (Alcotest.option float_t) "p50 nearest-rank" (Some 50.0) (Rolling.percentile r 50.0);
  check (Alcotest.option float_t) "p99" (Some 99.0) (Rolling.percentile r 99.0);
  check (Alcotest.option float_t) "p100" (Some 100.0) (Rolling.percentile r 100.0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Rolling.percentile: p outside [0,100]") (fun () ->
      ignore (Rolling.percentile r 101.0))

(* ---------------- Timeseries (aggregation edges) ---------------- *)

let test_timeseries_empty_edges () =
  let ts = Timeseries.create () in
  check int_t "empty length" 0 (Timeseries.length ts);
  check (Alcotest.option (Alcotest.pair float_t float_t)) "empty last" None
    (Timeseries.last ts);
  check (Alcotest.option float_t) "empty max" None (Timeseries.max_value ts);
  check int_t "empty downsample" 0 (Array.length (Timeseries.downsample ts ~buckets:5))

let test_timeseries_single_point () =
  let ts = Timeseries.create () in
  Timeseries.record ts ~time:2.0 7.0;
  check (Alcotest.option float_t) "max" (Some 7.0) (Timeseries.max_value ts);
  let b = Timeseries.downsample ts ~buckets:4 in
  check int_t "one occupied bucket" 1 (Array.length b);
  check float_t "bucket mean is the point" 7.0 (snd b.(0));
  (* equal timestamps accepted, strictly earlier rejected *)
  Timeseries.record ts ~time:2.0 8.0;
  check int_t "tie accepted" 2 (Timeseries.length ts)

(* ---------------- Span leaks ---------------- *)

let test_span_leak_reporting () =
  let sp = Span.create ~capacity:8 () in
  check int_t "capacity" 8 (Span.capacity sp);
  let a = Span.start sp ~now:1.0 ~source:"slave-0" "audit" in
  let _leaked = Span.start sp ~now:2.0 ~source:"client-1" "verify" in
  Span.finish sp a ~now:3.0;
  check int_t "one live" 1 (Span.active_count sp);
  (match Span.leaked sp with
  | [ ("verify", "client-1", start) ] -> check float_t "leak start" 2.0 start
  | l -> Alcotest.fail (Printf.sprintf "expected 1 leak, got %d" (List.length l)));
  (* sorted by start time when several leak *)
  let _l2 = Span.start sp ~now:0.5 ~source:"x" "early" in
  (match Span.leaked sp with
  | [ ("early", _, _); ("verify", _, _) ] -> ()
  | _ -> Alcotest.fail "leaks not sorted by start")

(* ---------------- Export: alert events ---------------- *)

let test_export_alert_golden () =
  (* Stable field ordering + float rendering: these exact lines are the
     wire format downstream tooling greps, pinned as goldens. *)
  let raised = Event.Alert_raised { rule = "staleness"; value = 6.2; threshold = 5.0 } in
  check Alcotest.string "alert_raised line"
    {|{"ts":7.250000000,"source":"slo","kind":"alert_raised","rule":"staleness","value":6.200000000,"threshold":5.0}|}
    (Export.event_line ~time:7.25 ~source:"slo" raised);
  let cleared = Event.Alert_cleared { rule = "read-latency"; duration = 12.5 } in
  check Alcotest.string "alert_cleared line"
    {|{"ts":30.0,"source":"slo","kind":"alert_cleared","rule":"read-latency","duration":12.500000000}|}
    (Export.event_line ~time:30.0 ~source:"slo" cleared);
  (* label escaping: a hostile rule name survives the round-trip *)
  let hostile = Event.Alert_raised { rule = {|ru"le\n|}; value = 1.0; threshold = 0.0 } in
  match Export.record_of_line (Export.event_line ~time:1.0 ~source:"slo" hostile) with
  | Ok r -> check bool_t "hostile rule round-trips" true (r.Trace.event = hostile)
  | Error msg -> Alcotest.fail msg

let test_export_shard_golden () =
  (* Placement wire format: pinned like the alert goldens so shard
     dashboards can grep these lines across versions. *)
  let assigned = Event.Shard_assigned { shard = 2; host = 9; slot = 1 } in
  check Alcotest.string "shard_assigned line"
    {|{"ts":0.0,"source":"deployment","kind":"shard_assigned","shard":2,"host":9,"slot":1}|}
    (Export.event_line ~time:0.0 ~source:"deployment" assigned);
  let rebalanced =
    Event.Shard_rebalanced { shard = 2; slot = 1; from_host = 9; to_host = 4; reason = "crash" }
  in
  check Alcotest.string "shard_rebalanced line"
    {|{"ts":42.500000000,"source":"deployment","kind":"shard_rebalanced","shard":2,"slot":1,"from_host":9,"to_host":4,"reason":"crash"}|}
    (Export.event_line ~time:42.5 ~source:"deployment" rebalanced);
  (* round-trip through the line parser, including a hostile reason *)
  List.iter
    (fun e ->
      match Export.record_of_line (Export.event_line ~time:3.0 ~source:"deployment" e) with
      | Ok r -> check bool_t (Event.kind e ^ " line round-trips") true (r.Trace.event = e)
      | Error msg -> Alcotest.fail msg)
    [
      assigned;
      rebalanced;
      Event.Shard_rebalanced
        { shard = 0; slot = 0; from_host = 1; to_host = 2; reason = {|ex"clu\sion|} };
    ];
  (* the ?extra tagging path: foreign events gain a shard key, events
     that already carry their shard don't get a duplicate *)
  let tagged =
    Export.event_line ~time:1.0 ~source:"slave-0"
      ~extra:[ ("shard", Export.Json.Int 3) ]
      (Event.Keepalive_sent { master = 0; version = 7 })
  in
  check Alcotest.string "extra shard tag appended"
    {|{"ts":1.0,"source":"slave-0","kind":"keepalive_sent","master":0,"version":7,"shard":3}|}
    tagged;
  match Export.record_of_line tagged with
  | Ok r ->
    check bool_t "tagged line still parses as its event" true
      (r.Trace.event = Event.Keepalive_sent { master = 0; version = 7 })
  | Error msg -> Alcotest.fail msg

let test_export_parallel_golden () =
  (* Parallel-scheduler wire format: the CI parallel-smoke gate greps
     these exact lines, so pin them like the shard goldens. *)
  let started = Event.Domain_started { domain = 1; shards = 2 } in
  check Alcotest.string "domain_started line"
    {|{"ts":0.0,"source":"deployment","kind":"domain_started","domain":1,"shards":2}|}
    (Export.event_line ~time:0.0 ~source:"deployment" started);
  let merged = Event.Shard_merged { shard = 3; events = 137 } in
  check Alcotest.string "shard_merged line"
    {|{"ts":64.0,"source":"deployment","kind":"shard_merged","shard":3,"events":137}|}
    (Export.event_line ~time:64.0 ~source:"deployment" merged);
  List.iter
    (fun e ->
      match Export.record_of_line (Export.event_line ~time:3.0 ~source:"deployment" e) with
      | Ok r -> check bool_t (Event.kind e ^ " line round-trips") true (r.Trace.event = e)
      | Error msg -> Alcotest.fail msg)
    [ started; merged ];
  (* the shard-tagging path used by the deployment's JSONL dump:
     [Domain_started] carries no shard and gains the tag (here the
     coordinator's -1 sentinel); [Shard_merged] already names its shard
     and must not be double-keyed.  A hostile source string must stay
     escaped alongside the tag. *)
  let tagged_start =
    Export.event_line ~time:2.0 ~source:"deployment"
      ~extra:[ ("shard", Export.Json.Int (-1)) ]
      started
  in
  check Alcotest.string "domain_started gains shard tag"
    {|{"ts":2.0,"source":"deployment","kind":"domain_started","domain":1,"shards":2,"shard":-1}|}
    tagged_start;
  check bool_t "shard_merged already keyed" true
    (List.mem_assoc "shard" (Event.fields merged));
  let hostile_src =
    Export.event_line ~time:2.0 ~source:{|dep"loy\ment
|}
      ~extra:[ ("shard", Export.Json.Int 0) ]
      started
  in
  (match Export.record_of_line hostile_src with
  | Ok r ->
    check Alcotest.string "hostile source round-trips" {|dep"loy\ment
|}
      r.Trace.source;
    check bool_t "hostile-source event intact" true (r.Trace.event = started)
  | Error msg -> Alcotest.fail msg);
  match Export.Json.parse hostile_src with
  | Ok json ->
    check bool_t "tag survives hostile source" true
      (Export.Json.member "shard" json = Some (Export.Json.Int 0))
  | Error msg -> Alcotest.fail msg

let test_export_adversary_golden () =
  (* Adversary wire format: the CI smoke job and campaign tooling grep
     these exact lines, so pin them like the alert/shard goldens. *)
  let launched = Event.Attack_launched { slave = 0; mode = "replay"; client = 4; request = 4000007 } in
  check Alcotest.string "attack_launched line"
    {|{"ts":2.500000000,"source":"slave-0","kind":"attack_launched","slave":0,"mode":"replay","client":4,"request":4000007}|}
    (Export.event_line ~time:2.5 ~source:"slave-0" launched);
  let suppressed =
    Event.Attack_suppressed { slave = 0; mode = "equivocate"; reason = "no-clique-peer" }
  in
  check Alcotest.string "attack_suppressed line"
    {|{"ts":3.0,"source":"slave-0","kind":"attack_suppressed","slave":0,"mode":"equivocate","reason":"no-clique-peer"}|}
    (Export.event_line ~time:3.0 ~source:"slave-0" suppressed);
  let quarantined = Event.Slave_quarantined { slave = 0; score = 3.25; until = 45.0 } in
  check Alcotest.string "slave_quarantined line"
    {|{"ts":9.125000000,"source":"auditor-1","kind":"slave_quarantined","slave":0,"score":3.250000000,"until":45.0}|}
    (Export.event_line ~time:9.125 ~source:"auditor-1" quarantined);
  (* round-trip through the line parser, including a hostile reason *)
  List.iter
    (fun e ->
      match Export.record_of_line (Export.event_line ~time:3.0 ~source:"slave-0" e) with
      | Ok r -> check bool_t (Event.kind e ^ " line round-trips") true (r.Trace.event = e)
      | Error msg -> Alcotest.fail msg)
    [
      launched;
      suppressed;
      quarantined;
      Event.Attack_suppressed { slave = 2; mode = "adaptive"; reason = {|thr"esh\old|} };
    ]

let test_export_alert_all_formats () =
  (* Alert events survive every --trace-format: jsonl round-trips and
     chrome renders them as instants on the "slo" thread. *)
  let tr = Trace.create () in
  Trace.emit tr ~time:1.0 ~source:"slo"
    (Event.Alert_raised { rule = "availability"; value = 4.0; threshold = 2.0 });
  Trace.emit tr ~time:9.0 ~source:"slo"
    (Event.Alert_cleared { rule = "availability"; duration = 8.0 });
  let lines = String.split_on_char '\n' (String.trim (Export.jsonl_of_trace tr)) in
  List.iter
    (fun line ->
      match Export.record_of_line line with
      | Ok r -> check Alcotest.string "source" "slo" r.Trace.source
      | Error msg -> Alcotest.fail msg)
    lines;
  match Export.Json.parse (Export.chrome_of ~trace:tr ()) with
  | Error msg -> Alcotest.fail msg
  | Ok doc -> begin
    match Export.Json.member "traceEvents" doc with
    | Some (Export.Json.Arr events) ->
      let instants =
        List.filter
          (fun e ->
            match Export.Json.member "ph" e with
            | Some (Export.Json.Str "i") -> true
            | _ -> false)
          events
      in
      check int_t "two instants" 2 (List.length instants);
      List.iter
        (fun e ->
          match Export.Json.member "name" e with
          | Some (Export.Json.Str name) ->
            check bool_t "instant named after the alert kind" true
              (name = "alert_raised" || name = "alert_cleared")
          | _ -> Alcotest.fail "instant missing name")
        instants
    | _ -> Alcotest.fail "missing traceEvents array"
  end

let test_export_json_parser () =
  let ok s = match Export.Json.parse s with Ok v -> Some v | Error _ -> None in
  check bool_t "object" true
    (ok {|{"a":1,"b":[true,null,"x\n"],"c":-2.5e2}|} <> None);
  check bool_t "trailing garbage rejected" true (ok "{} junk" = None);
  check bool_t "unterminated string rejected" true (ok {|{"a":"b}|} = None);
  check bool_t "int stays int" true (ok "42" = Some (Export.Json.Int 42));
  check bool_t "escape round-trip" true
    (match ok (Export.Json.to_string (Export.Json.Str "a\"\\\n\tb")) with
    | Some (Export.Json.Str s) -> s = "a\"\\\n\tb"
    | _ -> false)

let () =
  Alcotest.run "secrep_sim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "time order" `Quick test_eq_time_order;
          Alcotest.test_case "FIFO ties" `Quick test_eq_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_eq_cancel;
          Alcotest.test_case "peek" `Quick test_eq_peek;
          Alcotest.test_case "NaN rejected" `Quick test_eq_nan;
          prop_eq_sorts;
          prop_eq_model;
        ] );
      ( "sim",
        [
          Alcotest.test_case "ordering" `Quick test_sim_ordering;
          Alcotest.test_case "run until" `Quick test_sim_until;
          Alcotest.test_case "nested scheduling" `Quick test_sim_nested_scheduling;
          Alcotest.test_case "negative delay" `Quick test_sim_negative_delay;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "max events" `Quick test_sim_max_events;
        ] );
      ( "latency",
        [
          Alcotest.test_case "validate" `Quick test_latency_validate;
          Alcotest.test_case "samples in range" `Quick test_latency_samples_in_range;
          Alcotest.test_case "mean estimate" `Quick test_latency_mean_estimates;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivers" `Quick test_link_delivers;
          Alcotest.test_case "down drops" `Quick test_link_down_drops;
          Alcotest.test_case "in-flight dropped on down" `Quick
            test_link_inflight_dropped_on_down;
          Alcotest.test_case "loss rate" `Quick test_link_loss;
          Alcotest.test_case "bandwidth charge" `Quick test_link_bandwidth;
          Alcotest.test_case "fail-stop semantics pinned" `Quick test_link_failstop_semantics;
          Alcotest.test_case "chaos mutators compose" `Quick test_link_mutators_compose;
        ] );
      ( "process",
        [
          Alcotest.test_case "periodic" `Quick test_process_periodic;
          Alcotest.test_case "stop from inside" `Quick test_process_stop_from_inside;
          Alcotest.test_case "jitter requires rng" `Quick test_process_jitter_requires_rng;
          Alcotest.test_case "jitter bounds" `Quick test_process_jitter_bounds;
        ] );
      ( "work_queue",
        [
          Alcotest.test_case "sequential" `Quick test_work_queue_sequential;
          Alcotest.test_case "idle gap" `Quick test_work_queue_idle_gap;
          Alcotest.test_case "negative cost" `Quick test_work_queue_negative_cost;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "empty errors" `Quick test_histogram_empty_errors;
          Alcotest.test_case "merge and stddev" `Quick test_histogram_merge_stddev;
          prop_histogram_percentile_bounds;
        ] );
      ("stats", [ Alcotest.test_case "counters/gauges/histograms" `Quick test_stats_counters ]);
      ( "rolling",
        [
          Alcotest.test_case "empty window" `Quick test_rolling_empty;
          Alcotest.test_case "single sample" `Quick test_rolling_single_sample;
          Alcotest.test_case "eviction" `Quick test_rolling_eviction;
          Alcotest.test_case "record evicts stale" `Quick test_rolling_record_evicts_too;
          Alcotest.test_case "out-of-order guard" `Quick test_rolling_out_of_order;
          Alcotest.test_case "percentile nearest-rank" `Quick test_rolling_percentile;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "basics" `Quick test_timeseries_basic;
          Alcotest.test_case "downsample" `Quick test_timeseries_downsample;
          Alcotest.test_case "empty edges" `Quick test_timeseries_empty_edges;
          Alcotest.test_case "single point" `Quick test_timeseries_single_point;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring semantics" `Quick test_trace_ring;
          Alcotest.test_case "wraparound accounting" `Quick test_trace_wraparound_accounting;
          Alcotest.test_case "typed queries" `Quick test_trace_typed_queries;
        ] );
      ("event", [ Alcotest.test_case "fields round-trip" `Quick test_event_fields_roundtrip ]);
      ( "span",
        [
          Alcotest.test_case "nesting and durations" `Quick test_span_nesting_and_durations;
          Alcotest.test_case "record and errors" `Quick test_span_record_and_errors;
          Alcotest.test_case "leak reporting" `Quick test_span_leak_reporting;
          Alcotest.test_case "leaks exact under ring wrap" `Quick test_span_leaks_under_wrap;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_export_jsonl_roundtrip;
          Alcotest.test_case "chrome trace parses" `Quick test_export_chrome_parses;
          Alcotest.test_case "prometheus text" `Quick test_export_prometheus;
          Alcotest.test_case "json parser" `Quick test_export_json_parser;
          Alcotest.test_case "alert golden lines" `Quick test_export_alert_golden;
          Alcotest.test_case "shard golden lines" `Quick test_export_shard_golden;
          Alcotest.test_case "parallel golden lines" `Quick test_export_parallel_golden;
          Alcotest.test_case "adversary golden lines" `Quick test_export_adversary_golden;
          Alcotest.test_case "alerts in every format" `Quick test_export_alert_all_formats;
        ] );
    ]
