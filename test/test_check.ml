(* Tests for the property-based testing library (generators, shrinkers,
   the property runner) and the simulation fuzz harness built on it:
   deterministic replay, the paper-level invariants under forced
   attacks, and counterexample shrinking quality. *)

open Secrep_check
module Fault = Secrep_core.Fault

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ---------------- Gen ---------------- *)

let test_gen_deterministic () =
  let g = Gen.list_size (Gen.int_range 0 20) (Gen.int_range (-50) 50) in
  check bool_t "same seed, same list" true (Gen.run ~seed:7L g = Gen.run ~seed:7L g);
  check bool_t "different seeds diverge somewhere" true
    (List.exists
       (fun seed -> Gen.run ~seed g <> Gen.run ~seed:7L g)
       [ 8L; 9L; 10L; 11L; 12L ])

let test_gen_ranges () =
  let g = Gen.int_range 3 9 in
  for seed = 0 to 200 do
    let v = Gen.run ~seed:(Int64.of_int seed) g in
    if v < 3 || v > 9 then Alcotest.failf "int_range out of range: %d" v
  done;
  let f = Gen.float_range 0.5 2.5 in
  for seed = 0 to 200 do
    let v = Gen.run ~seed:(Int64.of_int seed) f in
    if v < 0.5 || v >= 2.5 then Alcotest.failf "float_range out of range: %f" v
  done

let test_gen_frequency () =
  (* Weight 0 on the left arm means it is never chosen... weights must
     be positive, so instead check a 1:9 split lands mostly right. *)
  let g = Gen.frequency [ (1, Gen.return `Rare); (9, Gen.return `Common) ] in
  let rare = ref 0 in
  for seed = 0 to 999 do
    if Gen.run ~seed:(Int64.of_int seed) g = `Rare then incr rare
  done;
  check bool_t "rare arm is rare but present" true (!rare > 0 && !rare < 400)

(* ---------------- Shrink ---------------- *)

let test_shrink_int_towards () =
  let cands = List.of_seq (Shrink.int_towards ~target:0 100) in
  check bool_t "boldest candidate first" true (List.hd cands = 0);
  check bool_t "all between target and value" true (List.for_all (fun c -> c >= 0 && c < 100) cands);
  check bool_t "fixed point shrinks to nothing" true
    (List.of_seq (Shrink.int_towards ~target:5 5) = []);
  let up = List.of_seq (Shrink.int_towards ~target:10 2) in
  check bool_t "works upward too" true (List.hd up = 10 && List.for_all (fun c -> c > 2 && c <= 10) up)

let test_shrink_list () =
  let cands = List.of_seq (Shrink.list ~elt:(Shrink.int_towards ~target:0) [ 4; 7 ]) in
  check bool_t "empty list first" true (List.hd cands = []);
  check bool_t "drops single elements" true (List.mem [ 4 ] cands && List.mem [ 7 ] cands);
  check bool_t "shrinks elements in place" true (List.mem [ 0; 7 ] cands && List.mem [ 4; 0 ] cands);
  check bool_t "empty list has no candidates" true (List.of_seq (Shrink.list []) = [])

(* ---------------- Prop ---------------- *)

let test_prop_pass () =
  match
    Prop.check ~runs:50 ~seed:1L ~gen:(Gen.int_range 0 10) ~shrink:Shrink.nothing (fun v ->
        if v <= 10 then Ok () else Error "impossible")
  with
  | Prop.Pass { runs } -> check int_t "all runs executed" 50 runs
  | Prop.Fail _ -> Alcotest.fail "property should hold"

let test_prop_shrinks_to_minimum () =
  (* sum >= 30 fails; the greedy shrinker should land on a 1-minimal
     list: dropping any element or shrinking any element passes. *)
  let gen = Gen.list_size (Gen.int_range 0 20) (Gen.int_range 0 20) in
  let shrink = Shrink.list ~elt:(Shrink.int_towards ~target:0) in
  let sum = List.fold_left ( + ) 0 in
  let prop l = if sum l >= 30 then Error "sum too large" else Ok () in
  match Prop.check ~runs:200 ~seed:3L ~gen ~shrink prop with
  | Prop.Pass _ -> Alcotest.fail "expected a failure"
  | Prop.Fail f ->
    check bool_t "original fails" true (prop f.Prop.original <> Ok ());
    check bool_t "shrunk fails" true (prop f.Prop.shrunk <> Ok ());
    check bool_t "shrunk no bigger than original" true
      (List.length f.Prop.shrunk <= List.length f.Prop.original);
    check bool_t "1-minimal: dropping any element passes" true
      (List.for_all
         (fun i -> prop (List.filteri (fun j _ -> j <> i) f.Prop.shrunk) = Ok ())
         (List.init (List.length f.Prop.shrunk) Fun.id));
    check bool_t "replay seed regenerates the original" true
      (Gen.run ~seed:f.Prop.seed gen = f.Prop.original)

let test_prop_respects_shrink_cap () =
  let gen = Gen.int_range 1000 100000 in
  let prop v = if v >= 1 then Error "always fails" else Ok () in
  match
    Prop.check ~runs:1 ~max_shrink_steps:2 ~seed:5L ~gen
      ~shrink:(Shrink.int_towards ~target:1) prop
  with
  | Prop.Pass _ -> Alcotest.fail "expected a failure"
  | Prop.Fail f -> check bool_t "step cap respected" true (f.Prop.shrink_steps <= 2)

(* ---------------- Scenario ---------------- *)

let test_scenario_normalize_idempotent () =
  for seed = 0 to 49 do
    let s = Gen.run ~seed:(Int64.of_int seed) Scenario.gen in
    check bool_t "normalize is idempotent" true
      (Scenario.to_string (Scenario.normalize s) = Scenario.to_string s)
  done

let test_scenario_shrink_stays_normal () =
  let s = Gen.run ~seed:11L Scenario.gen in
  Seq.iter
    (fun c ->
      check bool_t "shrink candidates are normalized" true
        (Scenario.to_string (Scenario.normalize c) = Scenario.to_string c))
    (Scenario.shrink s)

(* ---------------- Harness: deterministic replay ---------------- *)

let test_harness_replay_identical () =
  (* Satellite: two runs from the same seed produce identical event
     streams, bit for bit. *)
  List.iter
    (fun seed ->
      let scenario = Gen.run ~seed Scenario.gen in
      let a = Harness.run scenario in
      let b = Harness.run scenario in
      check string_t
        (Printf.sprintf "event streams equal for seed %Ld" seed)
        (Harness.events_digest a) (Harness.events_digest b);
      check int_t "same number of events" (List.length a.Harness.events)
        (List.length b.Harness.events);
      check bool_t "same accepted reads" true (a.Harness.accepted = b.Harness.accepted))
    [ 1L; 2L; 17L; 23L ]

let test_fuzz_campaign_deterministic () =
  let run () = Fuzz.run ~runs:10 ~seed:42L () in
  match (run (), run ()) with
  | Fuzz.Passed { runs = a }, Fuzz.Passed { runs = b } -> check int_t "same pass" a b
  | Fuzz.Failed a, Fuzz.Failed b ->
    check bool_t "same failure" true
      (a.Prop.seed = b.Prop.seed
      && Scenario.to_string a.Prop.shrunk = Scenario.to_string b.Prop.shrunk)
  | _ -> Alcotest.fail "campaign outcomes diverged between identical runs"

(* ---------------- Invariants under forced attacks ---------------- *)

let attack_scenario ?(pledge_batch = 1) ~sys_seed ~mode () =
  {
    Scenario.sys_seed;
    n_shards = 1;
    n_masters = 1;
    slaves_per_master = 1;
    n_clients = 2;
    n_items = 4;
    max_latency = 1.0;
    keepalive_period = 0.3;
    double_check_p = 0.05;
    audit = true;
    pledge_batch;
    read_nonces = false;
    audit_adaptive = false;
    net = Scenario.Lan;
    faults = [ { Scenario.slave = 0; mode; probability = 1.0; from_time = 0.0 } ];
    chaos = [];
    ops =
      (* A few writes early so a frozen (Stale_state) store diverges,
         then reads spread over the attack window. *)
      [
        Scenario.Write { client = 0; key = 0; at = 0.5 };
        Scenario.Write { client = 1; key = 1; at = 2.0 };
        Scenario.Write { client = 0; key = 2; at = 4.0 };
      ]
      @ List.init 12 (fun i ->
            Scenario.Read { client = i mod 2; key = i mod 4; at = 1.0 +. (0.9 *. float_of_int i) });
  }

(* The headline acceptance test: across >= 100 varied runs with a slave
   forced to lie, every accepted-but-wrong answer is eventually flagged
   (double-check mismatch, audit conviction or exclusion), and the
   attack actually bites (some wrong answers do get accepted). *)
let test_detection_across_100_runs () =
  let total_wrong = ref 0 in
  for i = 0 to 109 do
    let mode = if i mod 2 = 0 then Fault.Corrupt_result else Fault.Stale_state in
    let result = Harness.run (attack_scenario ~sys_seed:i ~mode ()) in
    total_wrong :=
      !total_wrong
      + List.length (List.filter (fun a -> a.Harness.wrong) result.Harness.accepted);
    match Invariant.detection.Invariant.check result with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "run %d (%s): %s" i (if i mod 2 = 0 then "corrupt" else "stale") msg
  done;
  check bool_t "the attack produced accepted wrong answers to detect" true (!total_wrong > 0)

let test_all_invariants_under_attack () =
  for i = 0 to 19 do
    let result =
      Harness.run (attack_scenario ~sys_seed:(1000 + i) ~mode:Fault.Corrupt_result ())
    in
    match Invariant.check_all Invariant.all result with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "run %d: %s" i msg
  done

let test_no_false_accusation_honest_runs () =
  for i = 0 to 19 do
    let s =
      {
        (attack_scenario ~sys_seed:(2000 + i) ~mode:Fault.Corrupt_result ()) with
        Scenario.faults = [];
      }
    in
    let result = Harness.run s in
    match Invariant.check_all Invariant.all result with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "honest run %d: %s" i msg
  done

(* ---------------- Differential audit ---------------- *)

(* The tentpole's correctness argument: replay each attacked run's
   recorded pledge stream through the naive per-pledge auditor and the
   dedup/batched auditor, demand verdict-for-verdict agreement — and
   make sure the comparison has teeth (some runs convict, some pledges
   dedup). *)
let test_differential_audit_under_attack () =
  let module Audit_core = Secrep_core.Audit_core in
  let caught = ref 0 and dedup_hits = ref 0 and pledges_seen = ref 0 in
  for i = 0 to 29 do
    let mode =
      match i mod 3 with
      | 0 -> Fault.Corrupt_result
      | 1 -> Fault.Stale_state
      | _ -> Fault.Bad_signature
    in
    let pledge_batch = 1 + (i mod 4) in
    let scenario = attack_scenario ~pledge_batch ~sys_seed:(3000 + i) ~mode () in
    (* Even-numbered runs are honest: the attacked runs convict and
       exclude their only slave within a couple of reads, so the honest
       runs supply the long repeated-read pledge streams that give the
       dedup index something to deduplicate. *)
    let scenario =
      if i mod 2 = 0 then { scenario with Scenario.faults = [] } else scenario
    in
    let result = Harness.run scenario in
    pledges_seen := !pledges_seen + List.length result.Harness.pledges;
    (match Invariant.differential_audit.Invariant.check result with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "run %d (batch=%d): %s" i pledge_batch msg);
    let naive =
      Audit_core.run_naive ~slave_public:result.Harness.slave_public
        ~reexec:result.Harness.reexec result.Harness.pledges
    in
    let _, stats =
      Audit_core.run_dedup ~slave_public:result.Harness.slave_public
        ~reexec:result.Harness.reexec result.Harness.pledges
    in
    caught :=
      !caught
      + List.length
          (List.filter (fun v -> not (Audit_core.equal_verdict v Audit_core.Ok_pledge)) naive);
    dedup_hits := !dedup_hits + stats.Audit_core.dedup_hits
  done;
  check bool_t "pledges were recorded" true (!pledges_seen > 0);
  check bool_t "some runs actually convicted" true (!caught > 0);
  check bool_t "the dedup index actually deduplicated" true (!dedup_hits > 0)

(* Batched runs satisfy every paper invariant, and batching changes no
   verdicts relative to the semantics the other invariants encode. *)
let test_all_invariants_batched () =
  for i = 0 to 9 do
    let result =
      Harness.run
        (attack_scenario ~pledge_batch:4 ~sys_seed:(4000 + i) ~mode:Fault.Corrupt_result ())
    in
    match Invariant.check_all Invariant.all result with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "batched run %d: %s" i msg
  done

(* ---------------- Shrinking a real failure ---------------- *)

(* A deliberately broken checker: it "fails" whenever any read is
   accepted.  Since almost every scenario accepts reads, fuzzing finds a
   "counterexample" immediately and the shrinker must cut it down to a
   minimal scenario that still accepts a read: barely any topology, and
   one or two ops. *)
let inverted_checker =
  {
    Invariant.name = "inverted";
    doc = "deliberately broken: flags any accepted read";
    check =
      (fun result ->
        if result.Harness.accepted <> [] then Error "a read was accepted" else Ok ());
  }

let test_inverted_invariant_shrinks_small () =
  match Fuzz.run ~runs:50 ~invariants:[ inverted_checker ] ~seed:7L () with
  | Fuzz.Passed _ -> Alcotest.fail "inverted invariant should fail fast"
  | Fuzz.Failed f ->
    let s = f.Prop.shrunk in
    check bool_t "<= 3 clients" true (s.Scenario.n_clients <= 3);
    check bool_t "<= 2 slaves" true (s.Scenario.n_masters * s.Scenario.slaves_per_master <= 2);
    check bool_t "<= 5 ops" true (List.length s.Scenario.ops <= 5);
    (* The printed replay seed reproduces the failure exactly. *)
    check bool_t "seed regenerates the original scenario" true
      (Scenario.to_string (Gen.run ~seed:f.Prop.seed Scenario.gen)
      = Scenario.to_string f.Prop.original);
    check bool_t "original still fails" true
      (inverted_checker.Invariant.check (Harness.run f.Prop.original) <> Ok ());
    check bool_t "shrunk still fails" true
      (inverted_checker.Invariant.check (Harness.run s) <> Ok ());
    let contains haystack needle =
      let rec go i =
        if i + String.length needle > String.length haystack then false
        else String.sub haystack i (String.length needle) = needle || go (i + 1)
      in
      go 0
    in
    check bool_t "replay hint names the seed" true
      (contains (Fuzz.replay_hint f) (Printf.sprintf "--seed %Ld" f.Prop.seed));
    let report = Format.asprintf "%a" Fuzz.pp_outcome (Fuzz.Failed f) in
    check bool_t "report shows the replay line" true (contains report "replay:");
    check bool_t "report shows the violation" true (contains report "a read was accepted")

let test_invariant_named () =
  (match Invariant.named [ "staleness"; "detection" ] with
  | Ok [ a; b ] ->
    check string_t "first" "staleness" a.Invariant.name;
    check string_t "second" "detection" b.Invariant.name
  | Ok _ -> Alcotest.fail "wrong arity"
  | Error e -> Alcotest.fail e);
  (match Invariant.named [] with
  | Ok l -> check int_t "empty selects all" (List.length Invariant.all) (List.length l)
  | Error e -> Alcotest.fail e);
  match Invariant.named [ "bogus" ] with
  | Ok _ -> Alcotest.fail "bogus accepted"
  | Error _ -> ()

let () =
  Alcotest.run "secrep_check"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "ranges" `Quick test_gen_ranges;
          Alcotest.test_case "frequency" `Quick test_gen_frequency;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "int_towards" `Quick test_shrink_int_towards;
          Alcotest.test_case "list" `Quick test_shrink_list;
        ] );
      ( "prop",
        [
          Alcotest.test_case "pass" `Quick test_prop_pass;
          Alcotest.test_case "shrinks to 1-minimal" `Quick test_prop_shrinks_to_minimum;
          Alcotest.test_case "respects shrink cap" `Quick test_prop_respects_shrink_cap;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "normalize idempotent" `Quick test_scenario_normalize_idempotent;
          Alcotest.test_case "shrink stays normal" `Quick test_scenario_shrink_stays_normal;
        ] );
      ( "replay",
        [
          Alcotest.test_case "identical event streams" `Quick test_harness_replay_identical;
          Alcotest.test_case "campaign deterministic" `Quick test_fuzz_campaign_deterministic;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "detection across 100+ attacked runs" `Quick
            test_detection_across_100_runs;
          Alcotest.test_case "all invariants under attack" `Quick test_all_invariants_under_attack;
          Alcotest.test_case "honest runs never accused" `Quick
            test_no_false_accusation_honest_runs;
          Alcotest.test_case "named lookup" `Quick test_invariant_named;
        ] );
      ( "differential",
        [
          Alcotest.test_case "naive and dedup auditors agree under attack" `Quick
            test_differential_audit_under_attack;
          Alcotest.test_case "all invariants hold with batching on" `Quick
            test_all_invariants_batched;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "inverted invariant shrinks small" `Quick
            test_inverted_invariant_shrinks_small;
        ] );
    ]
