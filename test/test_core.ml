(* Tests for the paper's core protocol: configuration, identities and
   certificates, keep-alives, pledges, greedy-client detection,
   security levels, and full end-to-end system scenarios — honest
   runs, every attack mode, corrective action, master crashes, write
   rate limiting and the freshness bound. *)

open Secrep_core
module Sim = Secrep_sim.Sim
module Stats = Secrep_sim.Stats
module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Span = Secrep_sim.Span
module Prng = Secrep_crypto.Prng
module Sig_scheme = Secrep_crypto.Sig_scheme
module Query = Secrep_store.Query
module Query_result = Secrep_store.Query_result
module Oplog = Secrep_store.Oplog
module Document = Secrep_store.Document
module Value = Secrep_store.Value
module Canonical = Secrep_store.Canonical

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ---------------- Config ---------------- *)

let test_config_default_valid () =
  check bool_t "default validates" true (Config.validate Config.default = Ok ())

let test_config_rejects () =
  let bad f = Config.validate (f Config.default) <> Ok () in
  check bool_t "keepalive >= max_latency" true
    (bad (fun c -> { c with Config.keepalive_period = c.Config.max_latency }));
  check bool_t "negative max_latency" true (bad (fun c -> { c with Config.max_latency = -1.0 }));
  check bool_t "p > 1" true (bad (fun c -> { c with Config.double_check_probability = 1.5 }));
  check bool_t "audit fraction" true (bad (fun c -> { c with Config.audit_fraction = -0.1 }));
  check bool_t "greedy factor < 1" true (bad (fun c -> { c with Config.greedy_factor = 0.5 }))

(* ---------------- Content key / certificate / directory ---------------- *)

let test_content_identity () =
  let g = Prng.create ~seed:1L in
  let content = Content_key.create Sig_scheme.Hmac_sim g in
  let public = Content_key.public content in
  check bool_t "self-certifying id" true
    (Content_key.verify_id ~content_id:(Content_key.content_id content) public);
  let other = Content_key.create Sig_scheme.Hmac_sim g in
  check bool_t "different key, different id" false
    (Content_key.verify_id ~content_id:(Content_key.content_id content)
       (Content_key.public other))

let test_certificate_verify () =
  let g = Prng.create ~seed:2L in
  let content = Content_key.create Sig_scheme.Hmac_sim g in
  let master_key = Sig_scheme.generate Sig_scheme.Hmac_sim g in
  let cert =
    Certificate.issue content ~master_id:3 ~address:"host:1234"
      (Sig_scheme.public_of master_key)
  in
  check bool_t "valid" true (Certificate.verify ~content_public:(Content_key.public content) cert);
  check bool_t "tampered address" false
    (Certificate.verify ~content_public:(Content_key.public content)
       { cert with Certificate.address = "evil:1234" });
  let other = Content_key.create Sig_scheme.Hmac_sim g in
  check bool_t "wrong content key" false
    (Certificate.verify ~content_public:(Content_key.public other) cert)

let test_directory () =
  let g = Prng.create ~seed:3L in
  let content = Content_key.create Sig_scheme.Hmac_sim g in
  let dir = Directory.create () in
  let cid = Content_key.content_id content in
  check (Alcotest.list Alcotest.reject) "unknown id empty" [] (Directory.lookup dir ~content_id:cid);
  let mk i =
    let key = Sig_scheme.generate Sig_scheme.Hmac_sim g in
    Certificate.issue content ~master_id:i
      ~address:(Printf.sprintf "m%d:1" i)
      (Sig_scheme.public_of key)
  in
  Directory.publish dir (mk 2);
  Directory.publish dir (mk 0);
  Directory.publish dir (mk 1);
  let certs = Directory.lookup dir ~content_id:cid in
  check (Alcotest.list int_t) "sorted by master id" [ 0; 1; 2 ]
    (List.map (fun c -> c.Certificate.master_id) certs);
  Directory.withdraw dir ~content_id:cid ~master_id:1;
  check int_t "withdrawn" 2 (List.length (Directory.lookup dir ~content_id:cid));
  check (Alcotest.list string_t) "content ids" [ cid ] (Directory.content_ids dir)

(* ---------------- Keepalive ---------------- *)

let test_keepalive () =
  let g = Prng.create ~seed:4L in
  let key = Sig_scheme.generate Sig_scheme.Hmac_sim g in
  let ka =
    Keepalive.make ~master_key:key ~content_id:"cid" ~master_id:0 ~version:7 ~now:100.0
  in
  check bool_t "verifies" true (Keepalive.verify ~master_public:(Sig_scheme.public_of key) ka);
  check bool_t "tampered version" false
    (Keepalive.verify ~master_public:(Sig_scheme.public_of key)
       { ka with Keepalive.version = 8 });
  check bool_t "fresh" true (Keepalive.is_fresh ka ~now:103.0 ~max_latency:5.0);
  check bool_t "stale" false (Keepalive.is_fresh ka ~now:106.0 ~max_latency:5.0);
  check bool_t "age" true (Float.abs (Keepalive.age ka ~now:103.0 -. 3.0) < 1e-9)

(* The §3.1 replay window, as a property over many sampled ages: a
   keep-alive older than max_latency is rejected no matter how valid
   its signature is — freshness and authenticity are independent
   gates, and the boundary itself is inclusive ([age = max_latency] is
   still fresh, the first instant past it is not).  Integer-valued
   timestamps keep the float arithmetic exact at the boundary. *)
let test_keepalive_replay_window () =
  let g = Prng.create ~seed:44L in
  let key = Sig_scheme.generate Sig_scheme.Hmac_sim g in
  let mp = Sig_scheme.public_of key in
  for _ = 1 to 200 do
    let t0 = float_of_int (Prng.int g 1000) in
    let max_latency = float_of_int (1 + Prng.int g 30) in
    let ka =
      Keepalive.make ~master_key:key ~content_id:"cid" ~master_id:1
        ~version:(Prng.int g 100) ~now:t0
    in
    check bool_t "age = bound is fresh (inclusive)" true
      (Keepalive.is_fresh ka ~now:(t0 +. max_latency) ~max_latency);
    check bool_t "first instant past the bound rejected" false
      (Keepalive.is_fresh ka ~now:(t0 +. max_latency +. 1e-9) ~max_latency);
    let replay_now = t0 +. max_latency +. 1.0 +. float_of_int (Prng.int g 1000) in
    check bool_t "replayed old keep-alive rejected" false
      (Keepalive.is_fresh ka ~now:replay_now ~max_latency);
    (* The signature never expires — only the window rejects it. *)
    check bool_t "replayed keep-alive still validly signed" true
      (Keepalive.verify ~master_public:mp ka)
  done

(* ---------------- Pledge ---------------- *)

let pledge_fixture () =
  let g = Prng.create ~seed:5L in
  let master_key = Sig_scheme.generate Sig_scheme.Hmac_sim g in
  let slave_key = Sig_scheme.generate Sig_scheme.Hmac_sim g in
  let keepalive =
    Keepalive.make ~master_key ~content_id:"cid" ~master_id:0 ~version:3 ~now:10.0
  in
  let query = Query.point_read "k" in
  let result = Query_result.Agg (Value.Int 42) in
  let pledge =
    Pledge.make ~slave_key ~slave_id:9 ~query
      ~result_digest:(Canonical.result_digest result)
      ~keepalive ()
  in
  (master_key, slave_key, keepalive, query, result, pledge)

let test_pledge_ok () =
  let master_key, slave_key, _, _, result, pledge = pledge_fixture () in
  check bool_t "full verification passes" true
    (Pledge.verify
       ~slave_public:(Sig_scheme.public_of slave_key)
       ~master_public:(Sig_scheme.public_of master_key)
       ~result ~now:12.0 ~max_latency:5.0 pledge
    = Ok ());
  check int_t "version" 3 (Pledge.version pledge)

(* The full pledge chain reports a §3.1 window violation as a "stale"
   rejection (retriable in place), never as a signature failure. *)
let test_keepalive_replay_rejected_via_pledge () =
  let master_key, slave_key, _, _, result, pledge = pledge_fixture () in
  let sp = Sig_scheme.public_of slave_key and mp = Sig_scheme.public_of master_key in
  let at now =
    Pledge.verify ~slave_public:sp ~master_public:mp ~result ~now ~max_latency:5.0 pledge
  in
  (* The fixture keep-alive is stamped at t=10, so the window closes at 15. *)
  check bool_t "at the boundary accepted" true (at 15.0 = Ok ());
  (match at 15.001 with
  | Error reason ->
    check bool_t "past the boundary is a stale rejection" true
      (String.length reason >= 5 && String.sub reason 0 5 = "stale")
  | Ok () -> Alcotest.fail "expected stale rejection just past the window");
  match at 1000.0 with
  | Error reason ->
    check bool_t "deep replay is a stale rejection" true
      (String.length reason >= 5 && String.sub reason 0 5 = "stale")
  | Ok () -> Alcotest.fail "expected stale rejection for a deep replay"

let test_pledge_failure_branches () =
  let master_key, slave_key, keepalive, query, result, pledge = pledge_fixture () in
  let sp = Sig_scheme.public_of slave_key and mp = Sig_scheme.public_of master_key in
  let is_err = function Error _ -> true | Ok () -> false in
  check bool_t "wrong result" true
    (is_err
       (Pledge.verify ~slave_public:sp ~master_public:mp
          ~result:(Query_result.Agg (Value.Int 43)) ~now:12.0 ~max_latency:5.0 pledge));
  check bool_t "forged slave signature" true
    (is_err
       (Pledge.verify ~slave_public:sp ~master_public:mp ~result ~now:12.0 ~max_latency:5.0
          { pledge with Pledge.signature = "forged" }));
  check bool_t "keep-alive not from master" true
    (is_err
       (Pledge.verify ~slave_public:sp ~master_public:sp ~result ~now:12.0 ~max_latency:5.0
          pledge));
  (match
     Pledge.verify ~slave_public:sp ~master_public:mp ~result ~now:100.0 ~max_latency:5.0
       pledge
   with
  | Error reason -> check bool_t "stale reason" true (String.sub reason 0 5 = "stale")
  | Ok () -> Alcotest.fail "expected stale rejection");
  (* A client cannot frame the slave: altering the pledged digest
     invalidates the slave's signature. *)
  let framed = { pledge with Pledge.result_digest = String.make 20 'x' } in
  check bool_t "framing detected" false (Pledge.verify_signature ~slave_public:sp framed);
  ignore (keepalive, query)

(* ---------------- Batched pledges ---------------- *)

module Merkle = Secrep_crypto.Merkle

(* A hand-built batch: five payloads, one Merkle root, one signature,
   each pledge carrying its inclusion proof. *)
let batched_fixture () =
  let g = Prng.create ~seed:6L in
  let master_key = Sig_scheme.generate Sig_scheme.Hmac_sim g in
  let slave_key = Sig_scheme.generate Sig_scheme.Hmac_sim g in
  let keepalive =
    Keepalive.make ~master_key ~content_id:"cid" ~master_id:0 ~version:3 ~now:10.0
  in
  let slave_id = 9 in
  let cases =
    List.init 5 (fun i ->
        let query = Query.point_read (Printf.sprintf "k%d" i) in
        let result = Query_result.Agg (Value.Int i) in
        (query, result, Canonical.result_digest result))
  in
  let leaves =
    List.map
      (fun (query, _, result_digest) ->
        Pledge.payload ~slave_id ~query ~result_digest ~keepalive ())
      cases
  in
  let tree = Merkle.build leaves in
  let root = Merkle.root tree in
  let signature = Pledge.sign_batch ~slave_key ~slave_id ~root in
  let pledges =
    List.mapi
      (fun i (query, _, result_digest) ->
        {
          Pledge.slave_id;
          query;
          result_digest;
          keepalive;
          nonce = 0;
          signature;
          mode = Pledge.Batched { root; proof = Merkle.prove tree i };
        })
      cases
  in
  (master_key, slave_key, cases, root, pledges)

let test_pledge_batched_ok () =
  let master_key, slave_key, cases, _, pledges = batched_fixture () in
  let sp = Sig_scheme.public_of slave_key and mp = Sig_scheme.public_of master_key in
  List.iteri
    (fun i (pledge, (_, result, _)) ->
      check bool_t
        (Printf.sprintf "pledge %d signature verifies" i)
        true
        (Pledge.verify_signature ~slave_public:sp pledge);
      check bool_t
        (Printf.sprintf "pledge %d full client check passes" i)
        true
        (Pledge.verify ~slave_public:sp ~master_public:mp ~result ~now:12.0
           ~max_latency:5.0 pledge
        = Ok ()))
    (List.combine pledges cases)

let test_pledge_batched_rejects () =
  let _, slave_key, _, root, pledges = batched_fixture () in
  let sp = Sig_scheme.public_of slave_key in
  let p0 = List.nth pledges 0 and p1 = List.nth pledges 1 in
  check bool_t "forged root signature rejected" false
    (Pledge.verify_signature ~slave_public:sp { p0 with Pledge.signature = "forged" });
  (* A proof for a different leaf does not authenticate this pledge. *)
  check bool_t "swapped proof rejected" false
    (Pledge.verify_signature ~slave_public:sp { p0 with Pledge.mode = p1.Pledge.mode });
  (* Framing: altering the pledged digest breaks the inclusion proof. *)
  check bool_t "framing detected" false
    (Pledge.verify_signature ~slave_public:sp
       { p0 with Pledge.result_digest = String.make 20 'x' });
  (* A correctly-signed root from some other batch proves nothing. *)
  let other_root = Merkle.root (Merkle.build [ "unrelated" ]) in
  let mode =
    match p0.Pledge.mode with
    | Pledge.Batched { proof; _ } -> Pledge.Batched { root = other_root; proof }
    | Pledge.Single -> Alcotest.fail "fixture must be batched"
  in
  check bool_t "wrong root rejected" false
    (Pledge.verify_signature ~slave_public:sp
       {
         p0 with
         Pledge.signature = Pledge.sign_batch ~slave_key ~slave_id:9 ~root:other_root;
         mode;
       });
  ignore root

let test_wire_batched_pledge_roundtrip () =
  let _, slave_key, _, _, pledges = batched_fixture () in
  List.iteri
    (fun i pledge ->
      match Wire.decode_pledge (Wire.encode_pledge pledge) with
      | Ok pledge' ->
        check bool_t (Printf.sprintf "pledge %d roundtrip equal" i) true (pledge = pledge');
        check bool_t
          (Printf.sprintf "pledge %d still verifies" i)
          true
          (Pledge.verify_signature ~slave_public:(Sig_scheme.public_of slave_key) pledge')
      | Error msg -> Alcotest.fail msg)
    pledges;
  (* The batched framing carries root + proof on top of the single
     pledge layout. *)
  let single = { (List.nth pledges 0) with Pledge.mode = Pledge.Single } in
  check bool_t "batched framing is larger than single" true
    (Wire.pledge_size (List.nth pledges 2) > Wire.pledge_size single)

(* ---------------- Wire ---------------- *)

let test_wire_keepalive_roundtrip () =
  let g = Prng.create ~seed:15L in
  let key = Sig_scheme.generate Sig_scheme.Hmac_sim g in
  let ka = Keepalive.make ~master_key:key ~content_id:"cid" ~master_id:3 ~version:17 ~now:42.5 in
  (match Wire.decode_keepalive (Wire.encode_keepalive ka) with
  | Ok ka' ->
    check bool_t "roundtrip equal" true (ka = ka');
    check bool_t "still verifies" true
      (Keepalive.verify ~master_public:(Sig_scheme.public_of key) ka')
  | Error msg -> Alcotest.fail msg);
  check bool_t "size positive" true (Wire.keepalive_size ka > 0)

let test_wire_pledge_roundtrip () =
  let _, slave_key, _, _, _, pledge = pledge_fixture () in
  (match Wire.decode_pledge (Wire.encode_pledge pledge) with
  | Ok pledge' ->
    check bool_t "roundtrip equal" true (pledge = pledge');
    check bool_t "signature still verifies" true
      (Pledge.verify_signature ~slave_public:(Sig_scheme.public_of slave_key) pledge')
  | Error msg -> Alcotest.fail msg);
  check bool_t "pledge size sane" true (Wire.pledge_size pledge > 40)

let test_wire_certificate_roundtrip () =
  let g = Prng.create ~seed:16L in
  let content = Content_key.create Sig_scheme.Hmac_sim g in
  let master_key = Sig_scheme.generate Sig_scheme.Hmac_sim g in
  let cert =
    Certificate.issue content ~master_id:1 ~address:"h:1" (Sig_scheme.public_of master_key)
  in
  match Wire.decode_certificate (Wire.encode_certificate cert) with
  | Ok cert' ->
    check bool_t "still verifies after the wire" true
      (Certificate.verify ~content_public:(Content_key.public content) cert')
  | Error msg -> Alcotest.fail msg

let test_wire_rsa_public_roundtrip () =
  let g = Prng.create ~seed:17L in
  let kp = Sig_scheme.generate (Sig_scheme.Rsa { bits = 320 }) g in
  let public = Sig_scheme.public_of kp in
  let s = Sig_scheme.sign kp "msg" in
  match Sig_scheme.decode_public (Sig_scheme.encode_public public) with
  | Ok public' ->
    check bool_t "decoded key verifies" true
      (Sig_scheme.verify public' ~msg:"msg" ~signature:s)
  | Error msg -> Alcotest.fail msg

let test_wire_garbage_rejected () =
  let garbage = [ ""; "\x00"; "zzzz"; String.make 100 '\xff' ] in
  List.iter
    (fun s ->
      check bool_t "keepalive garbage" true
        (match Wire.decode_keepalive s with Error _ -> true | Ok _ -> false);
      check bool_t "pledge garbage" true
        (match Wire.decode_pledge s with Error _ -> true | Ok _ -> false);
      check bool_t "certificate garbage" true
        (match Wire.decode_certificate s with Error _ -> true | Ok _ -> false);
      check bool_t "public-key garbage" true
        (match Sig_scheme.decode_public s with Error _ -> true | Ok _ -> false))
    garbage

(* ---------------- Wire: adversarial frames ---------------- *)

(* One valid frame of every message type that crosses a trust
   boundary, each paired with a "decodes to a fully valid value"
   predicate.  The predicates are the complete verification chain a
   receiver runs (signatures, and for batched pledges the Merkle
   inclusion proof), so any byte an attacker can profitably flip is
   covered by one of them. *)
let wire_frame_fixtures () =
  let master_key, slave_key, _, _, _, pledge = pledge_fixture () in
  let sp = Sig_scheme.public_of slave_key in
  let mp = Sig_scheme.public_of master_key in
  let _, bslave_key, bkeepalive, _, bpledges = batched_fixture () in
  let bsp = Sig_scheme.public_of bslave_key in
  let nonced =
    Pledge.make ~nonce:7 ~slave_key ~slave_id:9 ~query:(Query.point_read "k")
      ~result_digest:pledge.Pledge.result_digest ~keepalive:pledge.Pledge.keepalive ()
  in
  let g = Prng.create ~seed:91L in
  let content = Content_key.create Sig_scheme.Hmac_sim g in
  let cert_master = Sig_scheme.generate Sig_scheme.Hmac_sim g in
  let cert =
    Certificate.issue content ~master_id:1 ~address:"h:1"
      (Sig_scheme.public_of cert_master)
  in
  ignore bkeepalive;
  [
    ( "keepalive",
      Wire.encode_keepalive pledge.Pledge.keepalive,
      fun s ->
        match Wire.decode_keepalive s with
        | Error _ -> `Rejected
        | Ok ka -> if Keepalive.verify ~master_public:mp ka then `Valid else `Forged );
    ( "pledge",
      Wire.encode_pledge pledge,
      fun s ->
        match Wire.decode_pledge s with
        | Error _ -> `Rejected
        | Ok p -> if Pledge.verify_signature ~slave_public:sp p then `Valid else `Forged );
    ( "nonced pledge",
      Wire.encode_pledge nonced,
      fun s ->
        match Wire.decode_pledge s with
        | Error _ -> `Rejected
        | Ok p -> if Pledge.verify_signature ~slave_public:sp p then `Valid else `Forged );
    ( "batched pledge",
      Wire.encode_pledge (List.nth bpledges 2),
      fun s ->
        match Wire.decode_pledge s with
        | Error _ -> `Rejected
        | Ok p -> if Pledge.verify_signature ~slave_public:bsp p then `Valid else `Forged
    );
    ( "certificate",
      Wire.encode_certificate cert,
      fun s ->
        match Wire.decode_certificate s with
        | Error _ -> `Rejected
        | Ok c ->
          if Certificate.verify ~content_public:(Content_key.public content) c then `Valid
          else `Forged );
  ]

let classify name verdict s =
  match verdict s with
  | exception e ->
    Alcotest.fail (Printf.sprintf "%s decoder raised %s" name (Printexc.to_string e))
  | v -> v

let test_wire_truncation_rejected () =
  List.iter
    (fun (name, frame, verdict) ->
      check bool_t (name ^ " intact frame valid") true (classify name verdict frame = `Valid);
      for cut = 0 to String.length frame - 1 do
        check bool_t
          (Printf.sprintf "%s truncated at %d rejected" name cut)
          true
          (classify name verdict (String.sub frame 0 cut) = `Rejected)
      done)
    (wire_frame_fixtures ())

let test_wire_oversize_rejected () =
  List.iter
    (fun (name, frame, verdict) ->
      List.iter
        (fun junk ->
          check bool_t (name ^ " trailing junk rejected") true
            (classify name verdict (frame ^ junk) = `Rejected))
        [ "\x00"; "x"; String.make 64 '\xff'; frame ])
    (wire_frame_fixtures ())

let test_wire_random_bytes_never_crash () =
  let g = Prng.create ~seed:92L in
  let fixtures = wire_frame_fixtures () in
  for _ = 1 to 100 do
    let len = Prng.int g 300 in
    let s = String.init len (fun _ -> Char.chr (Prng.int g 256)) in
    List.iter
      (fun (name, _, verdict) ->
        (* Random bytes may parse by fluke, but can never carry a valid
           signature. *)
        check bool_t (name ^ " random frame not valid") true
          (classify name verdict s <> `Valid))
      fixtures
  done

(* The fuzz generator the satellite asks for: take a valid frame and
   mutate it — flip 1-4 bytes, truncate, or extend.  The decoder must
   never raise, and no mutant may survive the full verification chain:
   every byte of every frame is either structural (mutation breaks the
   parse) or covered by a signature / inclusion proof (mutation breaks
   verification). *)
let test_wire_mutation_fuzz () =
  let g = Prng.create ~seed:93L in
  let fixtures = Array.of_list (wire_frame_fixtures ()) in
  for _ = 1 to 200 do
    let name, frame, verdict = fixtures.(Prng.int g (Array.length fixtures)) in
    let b = Bytes.of_string frame in
    let mutant =
      match Prng.int g 3 with
      | 0 ->
        let flips = 1 + Prng.int g 4 in
        for _ = 1 to flips do
          let i = Prng.int g (Bytes.length b) in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + Prng.int g 255)))
        done;
        Bytes.to_string b
      | 1 -> String.sub frame 0 (Prng.int g (String.length frame))
      | _ -> frame ^ String.init (1 + Prng.int g 16) (fun _ -> Char.chr (Prng.int g 256))
    in
    if not (String.equal mutant frame) then
      check bool_t (name ^ " mutant never verifies") true
        (classify name verdict mutant <> `Valid)
  done

(* ---------------- Greedy detection ---------------- *)

let test_greedy_flags_heavy_client () =
  let g = Prng.create ~seed:6L in
  let greedy = Greedy.create ~window:60.0 ~factor:4.0 ~min_samples:10 ~rng:g in
  (* 5 normal clients, 1 greedy one. *)
  for i = 0 to 99 do
    let now = float_of_int i in
    Greedy.record greedy ~client:1000 ~now;
    if i mod 10 = 0 then
      for c = 1 to 5 do
        Greedy.record greedy ~client:c ~now
      done
  done;
  check bool_t "greedy flagged" true (Greedy.is_suspected greedy ~client:1000 ~now:99.0);
  check bool_t "normal not flagged" false (Greedy.is_suspected greedy ~client:1 ~now:99.0);
  check (Alcotest.list int_t) "suspect list" [ 1000 ] (Greedy.suspected_clients greedy ~now:99.0)

let test_greedy_throttles () =
  let g = Prng.create ~seed:7L in
  let greedy = Greedy.create ~window:1000.0 ~factor:4.0 ~min_samples:5 ~rng:g in
  (* background clients *)
  for i = 0 to 9 do
    Greedy.record greedy ~client:(i mod 3) ~now:(float_of_int i)
  done;
  (* hammering client: count how many get served *)
  let served = ref 0 in
  for i = 0 to 199 do
    if Greedy.should_serve greedy ~client:99 ~now:(10.0 +. float_of_int i) then incr served
  done;
  check bool_t "mostly throttled" true (!served < 120);
  check bool_t "not fully starved" true (!served > 10)

let test_greedy_window_expiry () =
  let g = Prng.create ~seed:8L in
  let greedy = Greedy.create ~window:10.0 ~factor:2.0 ~min_samples:3 ~rng:g in
  for i = 0 to 19 do
    Greedy.record greedy ~client:7 ~now:(float_of_int i)
  done;
  Greedy.record greedy ~client:8 ~now:19.0;
  check bool_t "active inside window" true (Greedy.is_suspected greedy ~client:7 ~now:19.0);
  check bool_t "forgotten after window" false (Greedy.is_suspected greedy ~client:7 ~now:100.0)

(* ---------------- Security levels ---------------- *)

let test_security_levels () =
  let p t = Security_level.double_check_probability ~base:0.05 t in
  check bool_t "normal is base" true (Float.abs (p Security_level.Normal -. 0.05) < 1e-12);
  check bool_t "sensitive is 1" true (p Security_level.Sensitive = 1.0);
  check bool_t "level 0 is base" true (Float.abs (p (Security_level.Leveled 0) -. 0.05) < 1e-9);
  check bool_t "top level is 1" true
    (Float.abs (p (Security_level.Leveled (Security_level.levels - 1)) -. 1.0) < 1e-9);
  check bool_t "monotonic" true
    (p (Security_level.Leveled 0) < p (Security_level.Leveled 1)
    && p (Security_level.Leveled 1) < p (Security_level.Leveled 2));
  check bool_t "sensitive on master" true
    (Security_level.executes_on_master ~base:0.05 Security_level.Sensitive);
  check bool_t "normal not on master" false
    (Security_level.executes_on_master ~base:0.05 Security_level.Normal);
  check bool_t "out of range" true
    (try ignore (p (Security_level.Leveled 99)); false with Invalid_argument _ -> true)

(* ---------------- Fault ---------------- *)

let test_fault_behavior () =
  let g = Prng.create ~seed:9L in
  check bool_t "honest never lies" true (Fault.lies Fault.Honest ~now:5.0 g = None);
  let always =
    Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 10.0 }
  in
  check bool_t "before from_time" true (Fault.lies always ~now:5.0 g = None);
  check bool_t "after from_time" true (Fault.lies always ~now:15.0 g = Some Fault.Corrupt_result);
  let never = Fault.Malicious { probability = 0.0; mode = Fault.Omit_result; from_time = 0.0 } in
  check bool_t "p=0 never" true (Fault.lies never ~now:5.0 g = None)

(* ---------------- Corrective log ---------------- *)

let test_corrective_log () =
  let log = Corrective.create () in
  Corrective.record log
    { Corrective.time = 5.0; slave_id = 2; discovery = Corrective.Immediate; clients_reassigned = 3 };
  Corrective.record log
    { Corrective.time = 9.0; slave_id = 4; discovery = Corrective.Delayed; clients_reassigned = 1 };
  check (Alcotest.list int_t) "excluded" [ 2; 4 ] (Corrective.excluded log);
  check bool_t "is_excluded" true (Corrective.is_excluded log ~slave_id:2);
  check bool_t "not excluded" false (Corrective.is_excluded log ~slave_id:3);
  check int_t "immediate count" 1 (Corrective.count log ~discovery:Corrective.Immediate);
  (match Corrective.first_detection log ~slave_id:4 with
  | Some e -> check bool_t "detection time" true (e.Corrective.time = 9.0)
  | None -> Alcotest.fail "expected event");
  check int_t "chronological" 2 (List.length (Corrective.events log))

(* ================= End-to-end system scenarios ================= *)

let fast_config =
  {
    Config.default with
    Config.max_latency = 2.0;
    keepalive_period = 0.5;
    double_check_probability = 0.05;
    audit_lag_slack = 0.5;
  }

let catalog =
  List.init 20 (fun i ->
      ( Printf.sprintf "item:%03d" i,
        Document.of_fields
          [
            ("name", Value.String (Printf.sprintf "item number %d" i));
            ("price", Value.Float (float_of_int (i * 10)));
            ("stock", Value.Int i);
          ] ))

let make_system ?(config = fast_config) ?(n_masters = 2) ?(slaves_per_master = 2)
    ?(n_clients = 4) ?(seed = 11L) () =
  let system =
    System.create ~n_masters ~slaves_per_master ~n_clients ~config ~net:System.lan_net ~seed ()
  in
  System.load_content system catalog;
  system

(* Issue [n] reads from rotating clients, return collected reports. *)
let issue_reads ?level ?mode system ~n ~spacing =
  let reports = ref [] in
  let sim = System.sim system in
  for i = 0 to n - 1 do
    ignore
      (Sim.schedule sim ~delay:(spacing *. float_of_int i) (fun () ->
           System.read system
             ~client:(i mod System.n_clients system)
             ?level ?mode
             (Query.point_read (Printf.sprintf "item:%03d" (i mod 20)))
             ~on_done:(fun r -> reports := r :: !reports)))
  done;
  reports

let test_e2e_honest_run () =
  let system = make_system () in
  let reports = issue_reads system ~n:40 ~spacing:0.2 in
  System.run_for system 60.0;
  check int_t "all reads completed" 40 (List.length !reports);
  List.iter
    (fun r ->
      match r.Client.outcome with
      | `Accepted _ -> ()
      | `Served_by_master _ | `Gave_up -> Alcotest.fail "expected slave-served accept")
    !reports;
  check int_t "no wrong accepts" 0 (Stats.get (System.stats system) "system.accepted_wrong");
  check bool_t "correct accepts recorded" true
    (Stats.get (System.stats system) "system.accepted_correct" = 40);
  check int_t "nothing caught" 0 (Auditor.caught (System.auditor system));
  check int_t "no exclusions" 0 (List.length (Corrective.excluded (System.corrective system)))

let test_e2e_event_taxonomy () =
  (* A run with writes, double-checking and a liar exercises most of
     the typed-event taxonomy; the trace must carry the structured
     events (not just strings) from every component class. *)
  let config = { fast_config with Config.double_check_probability = 0.3 } in
  let system = make_system ~config () in
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 });
  System.write system ~client:1
    (Oplog.Set_field { key = "item:001"; field = "price"; value = Value.Float 123.0 })
    ~on_done:(fun _ -> ());
  let reports = issue_reads system ~n:40 ~spacing:0.2 in
  System.run_for system 120.0;
  check int_t "reads completed" 40 (List.length !reports);
  let tr = System.trace system in
  let kinds = Trace.kinds tr in
  let expected =
    [
      "read_issued";
      "read_answered";
      "pledge_signed";
      "pledge_verified";
      "double_check";
      "write_committed";
      "keepalive_sent";
      "state_update_applied";
      "audit_advance";
      "order_delivered";
    ]
  in
  List.iter
    (fun k -> check bool_t (Printf.sprintf "kind %s present" k) true (List.mem k kinds))
    expected;
  check bool_t "at least 8 distinct typed kinds" true
    (List.length (List.filter (fun k -> k <> "log") kinds) >= 8);
  (* Events from every component class. *)
  let typed r = match r.Trace.event with Event.Log _ -> false | _ -> true in
  let from prefix =
    Trace.count_matching tr ~f:(fun r ->
        String.length r.Trace.source >= String.length prefix
        && String.sub r.Trace.source 0 (String.length prefix) = prefix
        && typed r)
    > 0
  in
  check bool_t "master events" true (from "master-");
  check bool_t "slave events" true (from "slave-");
  check bool_t "client events" true (from "client-");
  check bool_t "auditor events" true
    (Trace.count_matching tr ~f:(fun r -> r.Trace.source = "auditor" && typed r) > 0);
  (* Spans from the cost model feed the phase histograms. *)
  let spans = System.spans system in
  check bool_t "spans collected" true (Span.total_finished spans > 0);
  let stats = System.stats system in
  List.iter
    (fun phase ->
      check bool_t (Printf.sprintf "span.%s histogram fed" phase) true
        (Secrep_sim.Histogram.count (Stats.histogram stats (Span.histogram_name phase)) > 0))
    [ "sign"; "verify"; "query_eval"; "network"; "audit" ]

let test_e2e_audit_catches_liar () =
  (* Double-checking off: only the background audit can catch the liar. *)
  let config = { fast_config with Config.double_check_probability = 0.0 } in
  let system = make_system ~config () in
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 });
  let reports = issue_reads system ~n:30 ~spacing:0.2 in
  System.run_for system 120.0;
  check int_t "reads completed" 30 (List.length !reports);
  check bool_t "auditor caught the slave" true (Auditor.caught (System.auditor system) >= 1);
  check bool_t "slave excluded" true
    (Corrective.is_excluded (System.corrective system) ~slave_id:victim);
  (match Corrective.first_detection (System.corrective system) ~slave_id:victim with
  | Some e -> check bool_t "delayed discovery" true (e.Corrective.discovery = Corrective.Delayed)
  | None -> Alcotest.fail "expected corrective event");
  (* The wrong answers that got through before detection are labelled. *)
  check bool_t "some wrong accepts recorded" true
    (Stats.get (System.stats system) "system.accepted_wrong" >= 1);
  check bool_t "slave stopped serving" true (Slave.is_excluded (System.slave system victim))

let test_e2e_double_check_catches_liar () =
  (* p = 1: the first lying read is caught immediately. *)
  let config = { fast_config with Config.double_check_probability = 1.0 } in
  let system = make_system ~config () in
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 });
  let report = ref None in
  System.read system ~client:0 (Query.point_read "item:001") ~on_done:(fun r ->
      report := Some r);
  System.run_for system 60.0;
  (match !report with
  | Some r -> begin
    check bool_t "read eventually accepted (from a new slave)" true
      (match r.Client.outcome with `Accepted _ -> true | _ -> false);
    check bool_t "the liar was caught on this read" true (r.Client.caught_slave = Some victim);
    check bool_t "retried" true (r.Client.retries >= 1)
  end
  | None -> Alcotest.fail "read never completed");
  check bool_t "immediate discovery recorded" true
    (match Corrective.first_detection (System.corrective system) ~slave_id:victim with
    | Some e -> e.Corrective.discovery = Corrective.Immediate
    | None -> false);
  check int_t "no wrong accepts with p=1" 0
    (Stats.get (System.stats system) "system.accepted_wrong")

let test_e2e_bad_signature_rejected_client_side () =
  let system = make_system () in
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Bad_signature; from_time = 0.0 });
  let report = ref None in
  System.read system ~client:0 (Query.point_read "item:002") ~on_done:(fun r ->
      report := Some r);
  System.run_for system 60.0;
  (match !report with
  | Some r ->
    check bool_t "accepted after moving away" true
      (match r.Client.outcome with `Accepted _ -> true | _ -> false)
  | None -> Alcotest.fail "read never completed");
  check bool_t "client-side rejections counted" true
    (Stats.get (System.stats system) "client.pledge_rejected" >= 1);
  check int_t "never accepted a wrong answer" 0
    (Stats.get (System.stats system) "system.accepted_wrong")

let test_e2e_omit_attack_times_out () =
  let system = make_system () in
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Omit_result; from_time = 0.0 });
  let report = ref None in
  System.read system ~client:0 (Query.point_read "item:003") ~on_done:(fun r ->
      report := Some r);
  System.run_for system 120.0;
  (match !report with
  | Some r ->
    check bool_t "eventually served elsewhere" true
      (match r.Client.outcome with `Accepted _ -> true | _ -> false)
  | None -> Alcotest.fail "read never completed");
  check bool_t "timeouts counted" true
    (Stats.get (System.stats system) "client.read_timeouts" >= 1)

let test_e2e_stale_state_attack_caught () =
  let config = { fast_config with Config.double_check_probability = 0.0 } in
  let system = make_system ~config () in
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Stale_state; from_time = 0.0 });
  (* A write changes the truth; the stale slave keeps answering from the
     old state. *)
  System.write system ~client:1
    (Oplog.Set_field { key = "item:001"; field = "price"; value = Value.Float 999.0 })
    ~on_done:(fun _ -> ());
  System.run_for system 10.0;
  (* Client 0 (connected to the frozen slave) reads the changed key. *)
  let reports = ref [] in
  for i = 0 to 9 do
    ignore
      (Sim.schedule (System.sim system) ~delay:(0.3 *. float_of_int i) (fun () ->
           System.read system ~client:0 (Query.point_read "item:001") ~on_done:(fun r ->
               reports := r :: !reports)))
  done;
  System.run_for system 120.0;
  check int_t "reads completed" 10 (List.length !reports);
  check bool_t "audit catches the frozen replica" true
    (Corrective.is_excluded (System.corrective system) ~slave_id:victim)

let test_e2e_sensitive_reads_bypass_slaves () =
  let system = make_system () in
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 });
  let reports = ref [] in
  for i = 0 to 4 do
    ignore
      (Sim.schedule (System.sim system) ~delay:(0.5 *. float_of_int i) (fun () ->
           System.read system ~client:0 ~level:Security_level.Sensitive
             (Query.point_read (Printf.sprintf "item:%03d" i))
             ~on_done:(fun r -> reports := r :: !reports)))
  done;
  System.run_for system 30.0;
  check int_t "all completed" 5 (List.length !reports);
  List.iter
    (fun r ->
      check bool_t "served by master" true
        (match r.Client.outcome with `Served_by_master _ -> true | _ -> false))
    !reports;
  check int_t "sensitive reads counted" 5
    (Stats.get (System.stats system) "master.sensitive_reads");
  check int_t "no wrong accepts" 0 (Stats.get (System.stats system) "system.accepted_wrong")

let test_e2e_quorum_read_detects_mismatch () =
  let config = { fast_config with Config.double_check_probability = 0.0 } in
  let system = make_system ~config ~slaves_per_master:3 () in
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 });
  let report = ref None in
  System.read system ~client:0 ~mode:(Client.Quorum 2) (Query.point_read "item:004")
    ~on_done:(fun r -> report := Some r);
  System.run_for system 60.0;
  (match !report with
  | Some r ->
    check bool_t "accepted" true (match r.Client.outcome with `Accepted _ -> true | _ -> false)
  | None -> Alcotest.fail "read never completed");
  check bool_t "mismatch observed" true
    (Stats.get (System.stats system) "client.quorum_mismatches" >= 1);
  check bool_t "liar excluded via automatic double-check" true
    (Corrective.is_excluded (System.corrective system) ~slave_id:victim);
  check int_t "no wrong accepts" 0 (Stats.get (System.stats system) "system.accepted_wrong")

let test_e2e_quorum_read_honest () =
  let system = make_system ~slaves_per_master:3 () in
  let report = ref None in
  System.read system ~client:0 ~mode:(Client.Quorum 3) (Query.point_read "item:005")
    ~on_done:(fun r -> report := Some r);
  System.run_for system 30.0;
  (match !report with
  | Some r ->
    check bool_t "accepted" true (match r.Client.outcome with `Accepted _ -> true | _ -> false)
  | None -> Alcotest.fail "read never completed");
  check int_t "no mismatch" 0 (Stats.get (System.stats system) "client.quorum_mismatches")

let test_e2e_write_rate_limited () =
  let system = make_system () in
  (* Fire 5 writes in quick succession; the §3.1 rule forces commits at
     least max_latency apart. *)
  let commit_versions = ref [] in
  for i = 0 to 4 do
    ignore
      (Sim.schedule (System.sim system) ~delay:(0.01 *. float_of_int i) (fun () ->
           System.write system ~client:0
             (Oplog.Set_field
                { key = "item:000"; field = "stock"; value = Value.Int (100 + i) })
             ~on_done:(fun ack ->
               match ack with
               | Master.Committed { version } ->
                 commit_versions := (Sim.now (System.sim system), version) :: !commit_versions
               | Master.Denied _ -> ())))
  done;
  System.run_for system 60.0;
  check int_t "all committed" 5 (List.length !commit_versions);
  let times = List.sort Float.compare (List.map fst !commit_versions) in
  let rec gaps = function a :: (b :: _ as rest) -> (b -. a) :: gaps rest | _ -> [] in
  List.iter
    (fun gap ->
      check bool_t
        (Printf.sprintf "commit gap %.3f >= max_latency" gap)
        true
        (gap >= fast_config.Config.max_latency -. 0.2))
    (gaps times)
  (* commit acks include network latency back to the client, so allow
     a little slack below the exact bound *)

let test_e2e_write_acl () =
  let system = make_system () in
  Master.set_acl (System.master system (System.master_of_client system 0))
    ~allowed_writers:(Some [ 1 ]);
  let ack = ref None in
  System.write system ~client:0
    (Oplog.Set_field { key = "item:000"; field = "stock"; value = Value.Int 1 })
    ~on_done:(fun a -> ack := Some a);
  System.run_for system 10.0;
  (match !ack with
  | Some (Master.Denied _) -> ()
  | Some (Master.Committed _) -> Alcotest.fail "ACL should have denied"
  | None -> Alcotest.fail "no ack")

let test_e2e_master_crash_failover () =
  let system = make_system ~n_masters:2 () in
  let dead = System.master_of_client system 0 in
  System.crash_master system dead;
  System.run_for system 30.0;
  check bool_t "client re-homed" true (System.master_of_client system 0 <> dead);
  (* Reads and writes still work through the surviving master. *)
  let report = ref None and ack = ref None in
  System.read system ~client:0 (Query.point_read "item:006") ~on_done:(fun r ->
      report := Some r);
  System.write system ~client:0
    (Oplog.Set_field { key = "item:006"; field = "stock"; value = Value.Int 77 })
    ~on_done:(fun a -> ack := Some a);
  System.run_for system 120.0;
  check bool_t "read survives failover" true
    (match !report with Some { Client.outcome = `Accepted _; _ } -> true | _ -> false);
  check bool_t "write survives failover" true
    (match !ack with Some (Master.Committed _) -> true | _ -> false)

let test_e2e_freshness_bound_holds () =
  (* E4's invariant, in miniature: every accepted read reflects a
     version whose keep-alive was at most max_latency old; with the
     oracle we check accepted results are never older than the commit
     preceding the read by more than max_latency + epsilon. *)
  let system = make_system () in
  let ok = ref true in
  let n = ref 0 in
  let sim = System.sim system in
  (* Interleave writes and reads. *)
  for i = 0 to 9 do
    ignore
      (Sim.schedule sim ~delay:(4.0 *. float_of_int i) (fun () ->
           System.write system ~client:1
             (Oplog.Set_field
                { key = "item:007"; field = "stock"; value = Value.Int (1000 + i) })
             ~on_done:(fun _ -> ())))
  done;
  for i = 0 to 39 do
    ignore
      (Sim.schedule sim ~delay:(1.0 *. float_of_int i) (fun () ->
           System.read system ~client:(i mod 4) (Query.point_read "item:007")
             ~on_done:(fun r ->
               incr n;
               match r.Client.outcome with
               | `Accepted result -> begin
                 let digest = Canonical.result_digest result in
                 match
                   System.check_result system ~version:r.Client.version r.Client.query ~digest
                 with
                 | Some true -> ()
                 | Some false -> ok := false
                 | None -> ()
               end
               | `Served_by_master _ | `Gave_up -> ())))
  done;
  System.run_for system 120.0;
  check int_t "reads done" 40 !n;
  check bool_t "every accepted read matches the oracle at its version" true !ok;
  check int_t "no wrong accepts" 0 (Stats.get (System.stats system) "system.accepted_wrong")

let test_e2e_audit_cache_effective () =
  (* Repeated identical queries within one version should mostly hit
     the auditor's result cache. *)
  let config = { fast_config with Config.double_check_probability = 0.0 } in
  let system = make_system ~config () in
  let reports = ref [] in
  for i = 0 to 19 do
    ignore
      (Sim.schedule (System.sim system) ~delay:(0.2 *. float_of_int i) (fun () ->
           System.read system ~client:(i mod 4) (Query.point_read "item:010")
             ~on_done:(fun r -> reports := r :: !reports)))
  done;
  System.run_for system 60.0;
  check int_t "reads done" 20 (List.length !reports);
  let cache = Auditor.cache (System.auditor system) in
  check bool_t "cache hits dominate" true
    (Secrep_store.Result_cache.hits cache >= 15);
  check int_t "auditor audited all" 20 (Auditor.audited (System.auditor system))

let test_e2e_audit_fraction_samples () =
  let config =
    { fast_config with Config.double_check_probability = 0.0; audit_fraction = 0.3 }
  in
  let system = make_system ~config ~seed:21L () in
  let reports = issue_reads system ~n:40 ~spacing:0.2 in
  System.run_for system 60.0;
  check int_t "reads done" 40 (List.length !reports);
  let audited = Auditor.audited (System.auditor system) in
  let sampled_out = Stats.get (System.stats system) "auditor.sampled_out" in
  check int_t "every pledge either audited or sampled out" 40 (audited + sampled_out);
  check bool_t "sampling happened" true (sampled_out > 10 && audited > 2)

let test_e2e_two_simultaneous_attackers () =
  let config = { fast_config with Config.double_check_probability = 0.1 } in
  let system = make_system ~config ~slaves_per_master:3 ~n_clients:6 () in
  let v1 = System.slave_of_client system 0 in
  let v2 =
    (* a second victim distinct from the first *)
    let rec pick c = if System.slave_of_client system c <> v1 then System.slave_of_client system c else pick (c + 1) in
    pick 1
  in
  List.iter
    (fun v ->
      System.set_slave_behavior system ~slave:v
        (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 }))
    [ v1; v2 ];
  let reports = issue_reads system ~n:80 ~spacing:0.2 in
  System.run_for system 240.0;
  check int_t "reads completed" 80 (List.length !reports);
  check bool_t "both attackers excluded" true
    (Corrective.is_excluded (System.corrective system) ~slave_id:v1
    && Corrective.is_excluded (System.corrective system) ~slave_id:v2);
  (* Honest slaves were never excluded. *)
  check int_t "exactly two exclusions" 2
    (List.length (Corrective.excluded (System.corrective system)))

let test_e2e_all_slaves_excluded_gives_up () =
  (* One master, one slave; once it is excluded there is no slave left.
     With degraded reads off the read must fail cleanly rather than
     hang; with them on (the default) the trusted master serves it. *)
  let run ~degraded =
    let config =
      {
        fast_config with
        Config.double_check_probability = 1.0;
        degraded_reads = degraded;
      }
    in
    let system =
      System.create ~n_masters:1 ~slaves_per_master:1 ~n_clients:1 ~config
        ~net:System.lan_net ~seed:31L ()
    in
    System.load_content system catalog;
    System.set_slave_behavior system ~slave:0
      (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 });
    let outcome = ref None in
    System.read system ~client:0 (Query.point_read "item:001") ~on_done:(fun r ->
        outcome := Some r.Client.outcome);
    System.run_for system 240.0;
    check bool_t "read completed (did not hang)" true (!outcome <> None);
    check bool_t "slave excluded" true
      (Corrective.is_excluded (System.corrective system) ~slave_id:0);
    (system, !outcome)
  in
  let _, outcome = run ~degraded:false in
  (match outcome with
  | Some `Gave_up -> ()
  | Some (`Accepted _ | `Served_by_master _) ->
    Alcotest.fail "no slave could have served this and degraded reads are off"
  | None -> ());
  let system, outcome = run ~degraded:true in
  (match outcome with
  | Some (`Served_by_master _) -> ()
  | Some (`Accepted _) -> Alcotest.fail "no slave could have served this"
  | Some `Gave_up -> Alcotest.fail "degraded mode should have fallen back to the master"
  | None -> ());
  check bool_t "degraded read counted" true
    (Client.degraded_reads (System.client system 0) >= 1)

let test_e2e_auditor_queue_bounded () =
  (* A tiny intake queue under a read burst must shed load (counted in
     auditor.overload_drops) instead of growing without bound, and the
     shedding must not disturb the read path. *)
  let config = { fast_config with Config.auditor_queue_capacity = 3 } in
  let system = make_system ~config ~seed:33L () in
  (* A write parks the audit cursor at the old version for
     max_latency + audit_lag_slack; the read burst right behind it
     queues new-version pledges faster than the cursor can advance. *)
  System.write system ~client:0
    (Oplog.Set_field { key = "item:000"; field = "stock"; value = Value.Int 42 })
    ~on_done:(fun _ -> ());
  System.run_for system 1.0;
  let reports = issue_reads system ~n:60 ~spacing:0.02 in
  System.run_for system 120.0;
  check int_t "reads unaffected by shedding" 60 (List.length !reports);
  let auditor = System.auditor system in
  check bool_t "overload drops counted" true (Auditor.overload_drops auditor > 0);
  check bool_t "backlog stayed within capacity" true (Auditor.backlog auditor <= 3);
  check int_t "stat mirrors the accessor"
    (Auditor.overload_drops auditor)
    (Stats.get (System.stats system) "auditor.overload_drops")

let test_e2e_batched_pledges_honest () =
  (* Merkle-batched signing + audit dedup on: every read still accepts,
     nobody is accused, the slave signs far fewer times than it serves,
     and the dedup index absorbs the repeats. *)
  let config =
    {
      fast_config with
      Config.pledge_batch_size = 4;
      (* Wide enough that consecutive reads of one slave land in the
         same batch; p = 0 so every accepted read forwards its pledge
         (a double-checked read goes to the master instead, which would
         make the audited count inexact for reasons unrelated to
         batching). *)
      pledge_batch_window = 0.3;
      audit_dedup = true;
      double_check_probability = 0.0;
    }
  in
  let system = make_system ~config () in
  let reports = issue_reads system ~n:40 ~spacing:0.05 in
  System.run_for system 60.0;
  check int_t "all reads completed" 40 (List.length !reports);
  List.iter
    (fun r ->
      match r.Client.outcome with
      | `Accepted _ -> ()
      | `Served_by_master _ | `Gave_up -> Alcotest.fail "expected slave-served accept")
    !reports;
  check int_t "no wrong accepts" 0 (Stats.get (System.stats system) "system.accepted_wrong");
  check int_t "nothing caught" 0 (Auditor.caught (System.auditor system));
  check int_t "no exclusions" 0 (List.length (Corrective.excluded (System.corrective system)));
  let stats = System.stats system in
  let signatures = Stats.get stats "slave.signatures" in
  check bool_t "batching amortized signatures" true (signatures > 0 && signatures <= 20);
  check bool_t "batch events emitted" true
    (List.mem "pledge_batch_signed" (Trace.kinds (System.trace system)));
  let auditor = System.auditor system in
  check int_t "auditor audited every pledge" 40 (Auditor.audited auditor);
  check bool_t "dedup hits recorded" true (Auditor.dedup_hits auditor > 0);
  check int_t "dedup stats mirror the accessors"
    (Auditor.dedup_hits auditor)
    (Stats.get stats "auditor.dedup_hits")

let test_e2e_batched_attack_caught () =
  (* A lying slave cannot hide inside a batch: the proof pins its
     pledge to the corrupt digest and the audit convicts as before. *)
  let config =
    {
      fast_config with
      Config.pledge_batch_size = 4;
      audit_dedup = true;
      double_check_probability = 0.0;
    }
  in
  let system = make_system ~config () in
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 });
  let reports = issue_reads system ~n:40 ~spacing:0.2 in
  System.run_for system 120.0;
  check int_t "reads completed" 40 (List.length !reports);
  check bool_t "liar caught despite batching" true (Auditor.caught (System.auditor system) > 0);
  check bool_t "liar excluded" true
    (Corrective.is_excluded (System.corrective system) ~slave_id:victim)

let test_e2e_batched_accounting_exact () =
  (* Satellite regression: audit_fraction sampling accounting stays
     exact when pledges arrive batched — every forwarded pledge is
     either audited or sampled out, none double-counted or lost. *)
  let run ~batch =
    let config =
      {
        fast_config with
        Config.double_check_probability = 0.0;
        audit_fraction = 0.3;
        pledge_batch_size = batch;
      }
    in
    let system = make_system ~config ~seed:21L () in
    let reports = issue_reads system ~n:40 ~spacing:0.2 in
    System.run_for system 60.0;
    check int_t "reads done" 40 (List.length !reports);
    let audited = Auditor.audited (System.auditor system) in
    let sampled_out = Stats.get (System.stats system) "auditor.sampled_out" in
    let late = Auditor.late_pledges (System.auditor system) in
    check int_t
      (Printf.sprintf "batch=%d: every pledge audited or sampled out" batch)
      40
      (audited + sampled_out + late);
    check int_t (Printf.sprintf "batch=%d: none late" batch) 0 late
  in
  run ~batch:1;
  run ~batch:4

let test_e2e_batched_queue_bound_accounting () =
  (* Satellite regression: a batch straddling the auditor's intake
     capacity sheds the overflow pledge-by-pledge — overload_drops and
     late_pledges accounting stays exact, the queue bound holds, and the
     read path is untouched. *)
  let run ~batch =
    let config =
      {
        fast_config with
        Config.auditor_queue_capacity = 3;
        pledge_batch_size = batch;
        double_check_probability = 0.0;
      }
    in
    let system = make_system ~config ~seed:33L () in
    System.write system ~client:0
      (Oplog.Set_field { key = "item:000"; field = "stock"; value = Value.Int 42 })
      ~on_done:(fun _ -> ());
    System.run_for system 1.0;
    let reports = issue_reads system ~n:60 ~spacing:0.02 in
    System.run_for system 120.0;
    check int_t (Printf.sprintf "batch=%d: reads unaffected" batch) 60 (List.length !reports);
    let auditor = System.auditor system in
    check bool_t
      (Printf.sprintf "batch=%d: overload drops counted" batch)
      true
      (Auditor.overload_drops auditor > 0);
    check bool_t
      (Printf.sprintf "batch=%d: backlog within capacity" batch)
      true
      (Auditor.backlog auditor <= 3);
    check int_t
      (Printf.sprintf "batch=%d: stat mirrors accessor" batch)
      (Auditor.overload_drops auditor)
      (Stats.get (System.stats system) "auditor.overload_drops");
    (* Exactness: after the run settles, every forwarded pledge is
       accounted for exactly once across the four disjoint outcomes. *)
    check int_t
      (Printf.sprintf "batch=%d: audited + dropped + late + backlog = forwarded" batch)
      60
      (Auditor.audited auditor + Auditor.overload_drops auditor
      + Auditor.late_pledges auditor + Auditor.backlog auditor)
  in
  run ~batch:1;
  run ~batch:3

let test_e2e_greedy_client_throttled () =
  (* Client 0 double-checks everything (p=1 via a tight greedy config);
     the other clients behave.  The master must start ignoring some of
     client 0's double-checks. *)
  let config =
    {
      fast_config with
      Config.double_check_probability = 1.0;
      greedy_window = 120.0;
      greedy_factor = 3.0;
      greedy_min_samples = 8;
    }
  in
  let system = make_system ~config ~n_clients:6 () in
  (* All clients share master 0's view of greediness only if they share
     the master; force all reads through client 0 plus light traffic
     from the siblings on the same master. *)
  let m0 = System.master_of_client system 0 in
  let siblings =
    List.filter
      (fun c -> c <> 0 && System.master_of_client system c = m0)
      (List.init (System.n_clients system) Fun.id)
  in
  let sim = System.sim system in
  for i = 0 to 99 do
    ignore
      (Sim.schedule sim ~delay:(0.5 *. float_of_int i) (fun () ->
           System.read system ~client:0
             (Query.point_read (Printf.sprintf "item:%03d" (i mod 20)))
             ~on_done:(fun _ -> ())))
  done;
  List.iteri
    (fun j c ->
      for i = 0 to 4 do
        ignore
          (Sim.schedule sim
             ~delay:(10.0 *. float_of_int ((j * 5) + i))
             (fun () ->
               System.read system ~client:c
                 (Query.point_read (Printf.sprintf "item:%03d" (i mod 20)))
                 ~on_done:(fun _ -> ())))
      done)
    siblings;
  System.run_for system 240.0;
  check bool_t "greedy client got throttled" true
    (Stats.get (System.stats system) "master.double_checks_throttled" > 0)

let test_e2e_leveled_reads () =
  (* The top graded level has effective probability 1.0 and therefore
     executes on the master (§4's refinement). *)
  let system = make_system () in
  let top = Security_level.Leveled (Security_level.levels - 1) in
  let report = ref None in
  System.read system ~client:0 ~level:top (Query.point_read "item:001") ~on_done:(fun r ->
      report := Some r);
  System.run_for system 30.0;
  (match !report with
  | Some r ->
    check bool_t "top level served by master" true
      (match r.Client.outcome with `Served_by_master _ -> true | _ -> false)
  | None -> Alcotest.fail "read never completed")

let test_e2e_slave_resync_after_partition () =
  (* Cut the master->slave update channel, commit writes, heal: the
     slave detects the version gap via the next keep-alive/update and
     the master's resync closes it. *)
  let system = make_system ~n_masters:1 ~slaves_per_master:1 ~n_clients:1 () in
  let write i ~on_done =
    System.write system ~client:0
      (Oplog.Set_field { key = "item:000"; field = "stock"; value = Value.Int (100 + i) })
      ~on_done
  in
  System.run_for system 5.0;
  check int_t "slave in sync initially" (Master.version (System.master system 0))
    (Slave.version (System.slave system 0));
  (* There is no direct link handle exposed for master->slave, so
     emulate the partition by making the slave drop updates: a
     Stale_state behavior switched on and off. *)
  System.set_slave_behavior system ~slave:0
    (Fault.Malicious { probability = 0.0; mode = Fault.Stale_state; from_time = 0.0 });
  let committed = ref false in
  write 1 ~on_done:(fun _ -> committed := true);
  System.run_for system 30.0;
  check bool_t "write committed" true !committed;
  check bool_t "slave is behind" true
    (Slave.version (System.slave system 0) < Master.version (System.master system 0));
  (* Heal: honest again; the next update or keep-alive carries a gap
     which triggers the resync pull. *)
  System.set_slave_behavior system ~slave:0 Fault.Honest;
  write 2 ~on_done:(fun _ -> ());
  System.run_for system 60.0;
  check int_t "slave caught up" (Master.version (System.master system 0))
    (Slave.version (System.slave system 0));
  check bool_t "a resync was served" true
    (Stats.get (System.stats system) "master.resyncs_served" >= 1)

let test_e2e_audit_disabled_no_forwarding () =
  let config = { fast_config with Config.audit_enabled = false } in
  let system = make_system ~config () in
  let reports = issue_reads system ~n:10 ~spacing:0.2 in
  System.run_for system 30.0;
  check int_t "reads done" 10 (List.length !reports);
  check int_t "auditor saw nothing" 0
    (Stats.get (System.stats system) "auditor.pledges_received")

let test_e2e_slave_list_gossip () =
  (* §3: masters learn each other's slave sets from the periodic
     broadcast, and crash recovery uses the gossiped list. *)
  let system = make_system ~n_masters:2 () in
  System.run_for system 20.0;
  let m0 = System.master system 0 and m1 = System.master system 1 in
  check bool_t "m0 knows m1's slaves" true
    (List.length (Master.peer_slaves m0 ~of_:1) > 0);
  check bool_t "m1 knows m0's slaves" true
    (List.length (Master.peer_slaves m1 ~of_:0) > 0);
  check bool_t "gossip matches reality" true
    (Master.peer_slaves m0 ~of_:1 = Master.slave_ids m1);
  let orphans = Master.slave_ids m0 in
  System.crash_master system 0;
  System.run_for system 30.0;
  (* Every orphan now belongs to the survivor. *)
  List.iter
    (fun s -> check int_t "orphan re-homed to master 1" 1 (System.master_of_slave system s))
    orphans

let test_e2e_tainted_reads_on_delayed_discovery () =
  (* Delayed discovery: the reads a client accepted from the convict
     are identified for rollback (§3.5). *)
  let config = { fast_config with Config.double_check_probability = 0.0 } in
  let system = make_system ~config () in
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 });
  let sim = System.sim system in
  for i = 0 to 9 do
    ignore
      (Sim.schedule sim ~delay:(0.2 *. float_of_int i) (fun () ->
           System.read system ~client:0
             (Query.point_read (Printf.sprintf "item:%03d" i))
             ~on_done:(fun _ -> ())))
  done;
  System.run_for system 120.0;
  check bool_t "victim excluded" true
    (Corrective.is_excluded (System.corrective system) ~slave_id:victim);
  check bool_t "client 0 has tainted reads to roll back" true
    (Client.tainted_reads (System.client system 0) >= 1);
  check bool_t "stat recorded" true
    (Stats.get (System.stats system) "client.reads_tainted" >= 1)

let test_e2e_multiple_auditors_share_load () =
  let config = { fast_config with Config.double_check_probability = 0.0 } in
  let system =
    System.create ~n_masters:2 ~slaves_per_master:2 ~n_clients:4 ~n_auditors:2 ~config
      ~net:System.lan_net ~seed:11L ()
  in
  System.load_content system catalog;
  let sim = System.sim system in
  for i = 0 to 39 do
    ignore
      (Sim.schedule sim ~delay:(0.2 *. float_of_int i) (fun () ->
           System.read system ~client:(i mod 4)
             (Query.point_read (Printf.sprintf "item:%03d" (i mod 20)))
             ~on_done:(fun _ -> ())))
  done;
  System.run_for system 60.0;
  let audited = List.map Auditor.audited (System.auditors system) in
  check int_t "two auditors" 2 (List.length audited);
  check int_t "every pledge audited exactly once" 40 (List.fold_left ( + ) 0 audited);
  List.iter
    (fun n -> check bool_t "both shards got work" true (n > 0))
    audited

let test_e2e_slave_readmission () =
  (* §3.5: a hacked slave is excluded, repaired, readmitted with a
     fresh checkpoint, and serves correct reads again; the exclusion
     stays on its record. *)
  let config = { fast_config with Config.double_check_probability = 1.0 } in
  let system = make_system ~config () in
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 });
  System.read system ~client:0 (Query.point_read "item:001") ~on_done:(fun _ -> ());
  System.run_for system 60.0;
  check bool_t "excluded" true
    (Corrective.is_currently_excluded (System.corrective system) ~slave_id:victim);
  check bool_t "cannot readmit a non-excluded slave" true
    (match System.readmit_slave system ~slave_id:(victim + 1) with
    | Error _ -> true
    | Ok () -> false);
  (* A write while the slave is out, so its old state is stale. *)
  System.write system ~client:1
    (Oplog.Set_field { key = "item:001"; field = "price"; value = Value.Float 123.0 })
    ~on_done:(fun _ -> ());
  System.run_for system 30.0;
  (match System.readmit_slave system ~slave_id:victim with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  check bool_t "no longer currently excluded" false
    (Corrective.is_currently_excluded (System.corrective system) ~slave_id:victim);
  check bool_t "history preserved" true
    (Corrective.is_excluded (System.corrective system) ~slave_id:victim);
  check int_t "checkpoint brought it to the master's version"
    (Master.version (System.master system (System.master_of_slave system victim)))
    (Slave.version (System.slave system victim));
  (* Drive reads directly through the readmitted slave. *)
  let correct = ref 0 in
  let s = System.slave system victim in
  for _ = 1 to 3 do
    Slave.handle_read s ~client:0 ~request:(-1) ~query:(Query.point_read "item:001")
      ~reply:(fun r ->
        match r with
        | Some { Slave.result; _ } ->
          let digest = Canonical.result_digest result in
          (match
             System.check_result system ~version:(Slave.version s)
               (Query.point_read "item:001") ~digest
           with
          | Some true -> incr correct
          | Some false | None -> ())
        | None -> ())
  done;
  System.run_for system 10.0;
  check int_t "serves fresh, correct state" 3 !correct

let test_e2e_determinism () =
  (* Equal seeds must replay byte-identical runs: same counters, same
     exclusions, same latencies. *)
  let run () =
    let system = make_system ~seed:12345L () in
    let victim = System.slave_of_client system 0 in
    System.set_slave_behavior system ~slave:victim
      (Fault.Malicious { probability = 0.5; mode = Fault.Corrupt_result; from_time = 2.0 });
    let reports = issue_reads system ~n:30 ~spacing:0.25 in
    System.run_for system 120.0;
    let latencies =
      List.map (fun r -> Printf.sprintf "%.9f" r.Client.latency) (List.rev !reports)
    in
    (Stats.counters (System.stats system), Corrective.excluded (System.corrective system), latencies)
  in
  let c1, e1, l1 = run () in
  let c2, e2, l2 = run () in
  check bool_t "counters identical" true (c1 = c2);
  check bool_t "exclusions identical" true (e1 = e2);
  check bool_t "latencies identical" true (l1 = l2)

let test_e2e_client_setup_counts () =
  let system = make_system () in
  check bool_t "every client set up" true
    (Stats.get (System.stats system) "system.client_setups" >= System.n_clients system);
  (* Assignments are consistent: each client's slave belongs to its
     master. *)
  for c = 0 to System.n_clients system - 1 do
    let m = System.master_of_client system c and s = System.slave_of_client system c in
    check int_t "slave owned by client's master" m (System.master_of_slave system s)
  done

(* The paper's headline guarantee as a property: across random seeds,
   lie modes and double-check probabilities, a permanently lying slave
   is ALWAYS eventually excluded while the audit is on — and no read
   that the oracle can check is ever accepted wrong without being
   followed by that exclusion. *)
let prop_eventual_detection =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:15 ~name:"e2e: audit-on always catches a permanent liar"
       QCheck2.Gen.(triple (int_range 1 5000) (int_bound 2) (int_bound 2))
       (fun (seed, mode_i, p_i) ->
         let mode =
           match mode_i with
           | 0 -> Fault.Corrupt_result
           | 1 -> Fault.Collude "prop"
           | _ -> Fault.Stale_state
         in
         let p = [| 0.0; 0.05; 0.3 |].(p_i) in
         let config = { fast_config with Config.double_check_probability = p } in
         let system = make_system ~config ~seed:(Int64.of_int seed) () in
         let victim = System.slave_of_client system 0 in
         System.set_slave_behavior system ~slave:victim
           (Fault.Malicious { probability = 1.0; mode; from_time = 0.0 });
         (* A write *after* the freeze, so Stale_state actually
            diverges on the key the reads will hit. *)
         System.write system ~client:1
           (Oplog.Set_field { key = "item:000"; field = "stock"; value = Value.Int 9999 })
           ~on_done:(fun _ -> ());
         System.run_for system 10.0;
         for i = 0 to 29 do
           ignore
             (Sim.schedule (System.sim system) ~delay:(0.3 *. float_of_int i) (fun () ->
                  System.read system ~client:0 (Query.point_read "item:000")
                    ~on_done:(fun _ -> ())))
         done;
         System.run_for system 240.0;
         Corrective.is_excluded (System.corrective system) ~slave_id:victim))

let () =
  Alcotest.run "secrep_core"
    [
      ( "config",
        [
          Alcotest.test_case "default valid" `Quick test_config_default_valid;
          Alcotest.test_case "rejects bad settings" `Quick test_config_rejects;
        ] );
      ( "identity",
        [
          Alcotest.test_case "self-certifying content id" `Quick test_content_identity;
          Alcotest.test_case "certificates" `Quick test_certificate_verify;
          Alcotest.test_case "directory" `Quick test_directory;
        ] );
      ( "keepalive",
        [
          Alcotest.test_case "sign/verify/freshness" `Quick test_keepalive;
          Alcotest.test_case "replay window boundary (property)" `Quick
            test_keepalive_replay_window;
          Alcotest.test_case "replay rejected via pledge chain" `Quick
            test_keepalive_replay_rejected_via_pledge;
        ] );
      ( "pledge",
        [
          Alcotest.test_case "verifies" `Quick test_pledge_ok;
          Alcotest.test_case "failure branches + framing" `Quick test_pledge_failure_branches;
          Alcotest.test_case "batched mode verifies" `Quick test_pledge_batched_ok;
          Alcotest.test_case "batched mode rejections" `Quick test_pledge_batched_rejects;
        ] );
      ( "wire",
        [
          Alcotest.test_case "keepalive roundtrip" `Quick test_wire_keepalive_roundtrip;
          Alcotest.test_case "pledge roundtrip" `Quick test_wire_pledge_roundtrip;
          Alcotest.test_case "batched pledge roundtrip" `Quick
            test_wire_batched_pledge_roundtrip;
          Alcotest.test_case "certificate roundtrip" `Quick test_wire_certificate_roundtrip;
          Alcotest.test_case "rsa public roundtrip" `Quick test_wire_rsa_public_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_wire_garbage_rejected;
          Alcotest.test_case "truncation rejected" `Quick test_wire_truncation_rejected;
          Alcotest.test_case "oversize rejected" `Quick test_wire_oversize_rejected;
          Alcotest.test_case "random bytes never crash" `Quick
            test_wire_random_bytes_never_crash;
          Alcotest.test_case "mutation fuzz" `Quick test_wire_mutation_fuzz;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "flags heavy client" `Quick test_greedy_flags_heavy_client;
          Alcotest.test_case "throttles" `Quick test_greedy_throttles;
          Alcotest.test_case "window expiry" `Quick test_greedy_window_expiry;
        ] );
      ("security_level", [ Alcotest.test_case "ladder" `Quick test_security_levels ]);
      ("fault", [ Alcotest.test_case "behavior" `Quick test_fault_behavior ]);
      ("corrective", [ Alcotest.test_case "log" `Quick test_corrective_log ]);
      ( "end_to_end",
        [
          Alcotest.test_case "honest run" `Quick test_e2e_honest_run;
          Alcotest.test_case "typed event taxonomy + span phases" `Quick
            test_e2e_event_taxonomy;
          Alcotest.test_case "audit catches liar (delayed discovery)" `Quick
            test_e2e_audit_catches_liar;
          Alcotest.test_case "double-check catches liar (immediate)" `Quick
            test_e2e_double_check_catches_liar;
          Alcotest.test_case "bad signature rejected client-side" `Quick
            test_e2e_bad_signature_rejected_client_side;
          Alcotest.test_case "omit attack times out" `Quick test_e2e_omit_attack_times_out;
          Alcotest.test_case "stale-state attack caught" `Quick test_e2e_stale_state_attack_caught;
          Alcotest.test_case "sensitive reads bypass slaves" `Quick
            test_e2e_sensitive_reads_bypass_slaves;
          Alcotest.test_case "quorum read detects mismatch" `Quick
            test_e2e_quorum_read_detects_mismatch;
          Alcotest.test_case "quorum read honest" `Quick test_e2e_quorum_read_honest;
          Alcotest.test_case "write rate limited" `Quick test_e2e_write_rate_limited;
          Alcotest.test_case "write ACL" `Quick test_e2e_write_acl;
          Alcotest.test_case "master crash failover" `Quick test_e2e_master_crash_failover;
          Alcotest.test_case "freshness bound holds" `Quick test_e2e_freshness_bound_holds;
          Alcotest.test_case "audit cache effective" `Quick test_e2e_audit_cache_effective;
          Alcotest.test_case "audit fraction samples" `Quick test_e2e_audit_fraction_samples;
          Alcotest.test_case "two simultaneous attackers" `Quick
            test_e2e_two_simultaneous_attackers;
          Alcotest.test_case "all slaves excluded -> clean give-up" `Quick
            test_e2e_all_slaves_excluded_gives_up;
          Alcotest.test_case "auditor queue bounded" `Quick test_e2e_auditor_queue_bounded;
          Alcotest.test_case "batched pledges: honest run" `Quick
            test_e2e_batched_pledges_honest;
          Alcotest.test_case "batched pledges: attack caught" `Quick
            test_e2e_batched_attack_caught;
          Alcotest.test_case "batched pledges: sampling accounting exact" `Quick
            test_e2e_batched_accounting_exact;
          Alcotest.test_case "batched pledges: queue-bound accounting exact" `Quick
            test_e2e_batched_queue_bound_accounting;
          Alcotest.test_case "greedy client throttled" `Quick test_e2e_greedy_client_throttled;
          Alcotest.test_case "leveled reads reach the master" `Quick test_e2e_leveled_reads;
          Alcotest.test_case "slave resync after partition" `Quick
            test_e2e_slave_resync_after_partition;
          Alcotest.test_case "audit disabled: no forwarding" `Quick
            test_e2e_audit_disabled_no_forwarding;
          Alcotest.test_case "slave-list gossip + crash recovery" `Quick
            test_e2e_slave_list_gossip;
          Alcotest.test_case "tainted reads on delayed discovery" `Quick
            test_e2e_tainted_reads_on_delayed_discovery;
          Alcotest.test_case "multiple auditors share load" `Quick
            test_e2e_multiple_auditors_share_load;
          Alcotest.test_case "slave recovery and readmission" `Quick
            test_e2e_slave_readmission;
          Alcotest.test_case "determinism across equal seeds" `Quick test_e2e_determinism;
          Alcotest.test_case "client setup" `Quick test_e2e_client_setup_counts;
          prop_eventual_detection;
        ] );
    ]
