(* Differential sharding tests: the deployment layer must be invisible
   to each shard.  A K-shard deployment driving disjoint per-content
   workloads has to produce event streams, verdicts and audit counters
   bit-identical to K standalone single-content systems built from the
   same derived seeds — any divergence means the deployment perturbed a
   shard's schedule or PRNG.  Plus unit coverage for rendezvous
   placement, shard routing, host-level chaos re-homing and the sharded
   fuzz-harness path. *)

module Placement = Secrep_shard.Placement
module Deployment = Secrep_shard.Deployment
module System = Secrep_core.System
module Config = Secrep_core.Config
module Fault = Secrep_core.Fault
module Corrective = Secrep_core.Corrective
module Auditor = Secrep_core.Auditor
module Directory = Secrep_core.Directory
module Sim = Secrep_sim.Sim
module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Export = Secrep_sim.Export
module Sha1 = Secrep_crypto.Sha1
module Hex = Secrep_crypto.Hex
module Prng = Secrep_crypto.Prng
module Catalog = Secrep_workload.Catalog
module Query = Secrep_store.Query
module Oplog = Secrep_store.Oplog
module Value = Secrep_store.Value
module Scenario = Secrep_check.Scenario
module Harness = Secrep_check.Harness
module Invariant = Secrep_check.Invariant

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ---------------- placement ---------------- *)

let cid i = Printf.sprintf "content-%d" i

let test_placement_deterministic () =
  let hosts = List.init 10 (fun h -> h) in
  let a = Placement.assign ~content_id:(cid 1) ~hosts ~replicas:3 in
  let b = Placement.assign ~content_id:(cid 1) ~hosts ~replicas:3 in
  check (Alcotest.list int_t) "same inputs, same layout" a b;
  check int_t "replica count" 3 (List.length a);
  check int_t "distinct hosts" 3 (List.length (List.sort_uniq compare a));
  let ranked = Placement.rank ~content_id:(cid 1) ~hosts in
  check (Alcotest.list int_t) "rank is a permutation of the pool"
    hosts (List.sort compare ranked);
  check (Alcotest.list int_t) "assign = rank prefix"
    (List.filteri (fun i _ -> i < 3) ranked) a;
  (* different contents land differently somewhere in a small pool *)
  let other = Placement.assign ~content_id:(cid 2) ~hosts ~replicas:3 in
  check bool_t "not all contents co-located" true
    (List.exists
       (fun i -> Placement.assign ~content_id:(cid i) ~hosts ~replicas:3 <> a)
       [ 2; 3; 4; 5 ]
    || other <> a)

let test_placement_hrw_stability () =
  let hosts = List.init 12 (fun h -> h) in
  let before = Placement.assign ~content_id:(cid 7) ~hosts ~replicas:3 in
  (* removing a host that holds no replica moves nothing *)
  let spare = List.find (fun h -> not (List.mem h before)) hosts in
  let without_spare =
    Placement.assign ~content_id:(cid 7)
      ~hosts:(List.filter (fun h -> h <> spare) hosts)
      ~replicas:3
  in
  check (Alcotest.list int_t) "removing a bystander moves nothing" before without_spare;
  (* removing a replica host replaces exactly that replica *)
  let victim = List.hd before in
  let after =
    Placement.assign ~content_id:(cid 7)
      ~hosts:(List.filter (fun h -> h <> victim) hosts)
      ~replicas:3
  in
  let survivors = List.filter (fun h -> h <> victim) before in
  check bool_t "survivors keep their replicas" true
    (List.for_all (fun h -> List.mem h after) survivors);
  check int_t "exactly one replacement" 1
    (List.length (List.filter (fun h -> not (List.mem h before)) after));
  (* the replacement operator picks the same fresh host *)
  match
    Placement.replacement ~content_id:(cid 7)
      ~hosts:(List.filter (fun h -> h <> victim) hosts)
      ~current:survivors ~dead:victim
  with
  | None -> Alcotest.fail "pool not exhausted"
  | Some fresh ->
    check bool_t "replacement is the new member" true
      (List.mem fresh after && not (List.mem fresh before))

let test_placement_spread_and_errors () =
  let hosts = List.init 8 (fun h -> h) in
  let content_ids = List.init 64 cid in
  let spread = Placement.spread ~content_ids ~hosts ~replicas:3 in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 spread in
  check int_t "replica mass conserved" (64 * 3) total;
  check bool_t "every host carries some load" true
    (List.for_all (fun h ->
         match List.assoc_opt h spread with Some n -> n > 0 | None -> false)
       hosts);
  check bool_t "pool too small rejected" true
    (try
       ignore (Placement.assign ~content_id:(cid 0) ~hosts:[ 0; 1 ] ~replicas:3);
       false
     with Invalid_argument _ -> true);
  check bool_t "zero replicas rejected" true
    (try
       ignore (Placement.assign ~content_id:(cid 0) ~hosts ~replicas:0);
       false
     with Invalid_argument _ -> true)

(* ---------------- shared auditor budget ---------------- *)

let test_shard_config_division () =
  let base = Config.default in
  let quarter = Deployment.shard_config ~audit_queue_total:1000 ~n_shards:4 base in
  check int_t "budget divided" 250 quarter.Config.auditor_queue_capacity;
  let identity = Deployment.shard_config ~n_shards:4 base in
  check int_t "no total = untouched capacity" base.Config.auditor_queue_capacity
    identity.Config.auditor_queue_capacity;
  let floor = Deployment.shard_config ~audit_queue_total:2 ~n_shards:8 base in
  check int_t "divided budget floors at 1" 1 floor.Config.auditor_queue_capacity

(* ---------------- differential: deployment vs standalone ----------------

   Both sides are driven by the exact same code below: [drive] only
   sees schedule/read/write closures, so the deployment run and the
   standalone reference runs receive identical timed operations. *)

let base_config =
  Config.validate_exn
    {
      Config.default with
      Config.max_latency = 1.0;
      keepalive_period = 0.3;
      double_check_probability = 0.05;
    }

let digest records =
  let ctx = Sha1.init () in
  List.iter
    (fun (r : Trace.record) ->
      Sha1.feed ctx
        (Printf.sprintf "%.9f|%s|%s\n" r.Trace.time r.Trace.source
           (Event.to_string r.Trace.event)))
    records;
  Hex.encode (Sha1.finalize ctx)

let capture sys =
  let rev = ref [] in
  Trace.on_emit (System.trace sys) (fun r -> rev := r :: !rev);
  fun () -> List.rev !rev

(* a small mixed workload over one shard's own catalogue *)
let drive ~schedule ~read ~write ~keys =
  for i = 0 to 5 do
    let at = 2.0 +. (3.0 *. float_of_int i) in
    schedule at (fun () ->
        write
          (Oplog.Set_field
             { key = keys.(i mod 2); field = "stock"; value = Value.Int (100 + i) }))
  done;
  for i = 0 to 19 do
    let at = 1.0 +. (0.8 *. float_of_int i) in
    schedule at (fun () -> read ~client:(i mod 2) (Query.point_read keys.(i mod 4)))
  done

let drive_deployment d ~shard =
  let keys = Deployment.keys d shard in
  drive
    ~schedule:(fun at f -> Deployment.schedule d ~shard ~time:at f)
    ~read:(fun ~client q -> Deployment.read d ~shard ~client q ~on_done:(fun _ -> ()))
    ~write:(fun op -> Deployment.write d ~shard ~client:0 op ~on_done:(fun _ -> ()))
    ~keys

let drive_standalone sys ~keys =
  drive
    ~schedule:(fun at f -> ignore (Sim.schedule_at (System.sim sys) ~time:at f))
    ~read:(fun ~client q -> System.read sys ~client q ~on_done:(fun _ -> ()))
    ~write:(fun op -> System.write sys ~client:0 op ~on_done:(fun _ -> ()))
    ~keys

(* the standalone reference for shard [k]: same derived seeds, same
   per-shard config, no deployment anywhere near it *)
let standalone ~n_shards ~seed ~items ~slaves_per_master k =
  let config = Deployment.shard_config ~n_shards base_config in
  let sys =
    System.create ~n_masters:1 ~slaves_per_master ~n_clients:2 ~config
      ~net:System.lan_net
      ~seed:(Deployment.shard_seed ~seed k)
      ()
  in
  let content =
    Catalog.product_catalog
      (Prng.create ~seed:(Deployment.shard_content_seed ~seed k))
      ~n:items
  in
  System.load_content sys content;
  (sys, Array.of_list (List.map fst content))

let differential ?(k = 4) ?(seed = 77L) ?(items = 6) ?(replication = 3) ?liar ~horizon () =
  let d =
    Deployment.create ~n_shards:k ~n_masters:1 ~replication_factor:replication
      ~n_clients:2 ~config:base_config ~net:System.lan_net ~seed
      ~items_per_shard:items ~auto_rebalance:false ()
  in
  let dep_streams = List.init k (fun i -> capture (Deployment.system d i)) in
  let refs = List.init k (standalone ~n_shards:k ~seed ~items ~slaves_per_master:replication) in
  let ref_streams = List.map (fun (sys, _) -> capture sys) refs in
  (match liar with
  | None -> ()
  | Some (shard, slave) ->
    let behavior =
      Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 3.0 }
    in
    System.set_slave_behavior (Deployment.system d shard) ~slave behavior;
    System.set_slave_behavior (fst (List.nth refs shard)) ~slave behavior);
  for i = 0 to k - 1 do
    drive_deployment d ~shard:i;
    let sys, keys = List.nth refs i in
    drive_standalone sys ~keys
  done;
  Deployment.run_until d horizon;
  List.iter (fun (sys, _) -> System.run_until sys horizon) refs;
  List.iteri
    (fun i (dep_stream, (ref_stream, (ref_sys, _))) ->
      let label fmt = Printf.sprintf fmt i in
      check string_t
        (label "shard %d stream bit-identical to standalone")
        (digest (ref_stream ())) (digest (dep_stream ()));
      let dep_sys = Deployment.system d i in
      check (Alcotest.list int_t)
        (label "shard %d verdicts identical")
        (Corrective.excluded (System.corrective ref_sys))
        (Corrective.excluded (System.corrective dep_sys));
      check int_t
        (label "shard %d audit count identical")
        (Auditor.audited (System.auditor ref_sys))
        (Auditor.audited (System.auditor dep_sys)))
    (List.combine dep_streams (List.combine ref_streams refs));
  (d, refs)

let test_differential_k1 () =
  (* the degenerate deployment: one shard must be exactly the classic
     single-content system *)
  ignore (differential ~k:1 ~horizon:40.0 ())

let test_differential_k4_honest () =
  let d, refs = differential ~k:4 ~horizon:40.0 () in
  List.iter
    (fun (sys, _) ->
      check (Alcotest.list int_t) "honest run convicts nobody" []
        (Corrective.excluded (System.corrective sys)))
    refs;
  check int_t "four contents in the shared directory" 4
    (List.length (Directory.content_ids (Deployment.directory d)))

let test_differential_k2_liar () =
  (* one Byzantine replica in shard 0; shard 1 stays honest.  With a
     single replica per shard every shard-0 read hits the liar. *)
  let _d, refs = differential ~k:2 ~replication:1 ~liar:(0, 0) ~horizon:80.0 () in
  check bool_t "reference run catches the liar" true
    (Corrective.excluded (System.corrective (fst (List.nth refs 0))) <> []);
  check (Alcotest.list int_t) "honest shard convicts nobody" []
    (Corrective.excluded (System.corrective (fst (List.nth refs 1))))

let test_deployment_deterministic () =
  let mk () =
    let d =
      Deployment.create ~n_shards:3 ~n_masters:1 ~replication_factor:2 ~n_clients:2
        ~config:base_config ~net:System.lan_net ~seed:5L ~items_per_shard:4 ()
    in
    let lines = ref [] in
    Deployment.on_event d (fun ~shard r ->
        lines := Deployment.tagged_line ~shard r :: !lines);
    for i = 0 to 2 do
      drive_deployment d ~shard:i
    done;
    Deployment.run_until d 30.0;
    List.rev !lines
  in
  let a = mk () and b = mk () in
  check int_t "same stream length" (List.length a) (List.length b);
  List.iter2 (fun la lb -> check string_t "merged tagged streams identical" la lb) a b

(* ---------------- routing and the shared directory ---------------- *)

let test_routing_by_content_key () =
  let d =
    Deployment.create ~n_shards:3 ~config:base_config ~net:System.lan_net ~seed:9L
      ~items_per_shard:3 ()
  in
  for i = 0 to 2 do
    let content_id = Deployment.content_id d i in
    check bool_t "shard resolvable from content id" true
      (Deployment.shard_of_content d ~content_id = Some i);
    check bool_t "shared directory serves every shard's certificates" true
      (Directory.lookup (Deployment.directory d) ~content_id <> []);
    let q = Query.point_read (Deployment.keys d i).(0) in
    match Deployment.read_content d ~content_id ~client:0 q ~on_done:(fun _ -> ()) with
    | Ok shard -> check int_t "read routed to the owning shard" i shard
    | Error msg -> Alcotest.fail msg
  done;
  match
    Deployment.read_content d ~content_id:"no-such-content" ~client:0
      (Query.point_read "k") ~on_done:(fun _ -> ())
  with
  | Ok _ -> Alcotest.fail "unknown content id must not route"
  | Error _ -> ()

let test_tagged_lines () =
  let d =
    Deployment.create ~n_shards:2 ~config:base_config ~net:System.lan_net ~seed:3L
      ~items_per_shard:4 ()
  in
  let seen = ref [] in
  Deployment.on_event d (fun ~shard r -> seen := (shard, Deployment.tagged_line ~shard r) :: !seen);
  drive_deployment d ~shard:1;
  Deployment.run_until d 10.0;
  check bool_t "events observed" true (!seen <> []);
  List.iter
    (fun (shard, line) ->
      check bool_t "tag reads back" true (Deployment.shard_of_line line = Some shard);
      match Export.record_of_line line with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("tagged line must stay parseable: " ^ msg))
    !seen;
  (* placement events carry their shard natively *)
  let placement = Trace.to_list (Deployment.trace d) in
  check bool_t "placement events recorded" true
    (List.exists
       (fun r -> match r.Trace.event with Event.Shard_assigned _ -> true | _ -> false)
       placement)

(* ---------------- host chaos and re-homing ---------------- *)

let rebalances d =
  List.filter_map
    (fun r ->
      match r.Trace.event with
      | Event.Shard_rebalanced { shard; from_host; to_host; reason; _ } ->
        Some (shard, from_host, to_host, reason)
      | _ -> None)
    (Trace.to_list (Deployment.trace d))

let test_crash_rehoming () =
  let d =
    Deployment.create ~n_shards:2 ~n_masters:1 ~replication_factor:2 ~n_clients:2
      ~config:base_config ~net:System.lan_net ~seed:21L ~items_per_shard:3 ()
  in
  (* crash a host that actually carries shard 0's first replica and
     leave it down well past the provisioning delay *)
  let victim = (Deployment.hosts_of_shard d 0).(0) in
  Deployment.crash_host d ~at:5.0 victim;
  Deployment.run_until d 30.0;
  check bool_t "host marked dead" false (Deployment.host_is_alive d victim);
  let moves = rebalances d in
  check bool_t "crash re-homing recorded" true
    (List.exists (fun (_, from, _, reason) -> from = victim && reason = "crash") moves);
  for i = 0 to 1 do
    check bool_t "no replica left on the dead host" false
      (Array.exists (fun h -> h = victim) (Deployment.hosts_of_shard d i))
  done;
  List.iter
    (fun (_, _, to_host, _) ->
      check bool_t "replacement hosts are alive" true (Deployment.host_is_alive d to_host))
    moves;
  (* the pool heals: recovery marks the host live again *)
  Deployment.recover_host d ~at:31.0 victim;
  Deployment.run_until d 32.0;
  check bool_t "host alive after recovery" true (Deployment.host_is_alive d victim)

let test_exclusion_rehoming () =
  (* a convicted liar's slot is re-homed (§3.5) and the replacement is
     readmitted honest after the provisioning delay *)
  let d =
    Deployment.create ~n_shards:2 ~n_masters:1 ~replication_factor:1 ~n_clients:2
      ~config:base_config ~net:System.lan_net ~seed:13L ~items_per_shard:4 ()
  in
  System.set_slave_behavior (Deployment.system d 0) ~slave:0
    (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 3.0 });
  let before = (Deployment.hosts_of_shard d 0).(0) in
  drive_deployment d ~shard:0;
  drive_deployment d ~shard:1;
  Deployment.run_until d 80.0;
  let moves = rebalances d in
  check bool_t "exclusion re-homing recorded" true
    (List.exists
       (fun (shard, from, _, reason) -> shard = 0 && from = before && reason = "exclusion")
       moves);
  check bool_t "slot moved off the liar's host" true
    ((Deployment.hosts_of_shard d 0).(0) <> before);
  check bool_t "readmitted replica no longer excluded" false
    (Corrective.is_currently_excluded (System.corrective (Deployment.system d 0)) ~slave_id:0);
  check (Alcotest.list int_t) "honest shard untouched" []
    (Corrective.excluded (System.corrective (Deployment.system d 1)))

(* ---------------- the sharded fuzz-harness path ---------------- *)

let sharded_scenario ?(faults = []) ~sys_seed () =
  {
    Scenario.sys_seed;
    n_shards = 3;
    n_masters = 1;
    slaves_per_master = 2;
    n_clients = 2;
    n_items = 4;
    max_latency = 1.0;
    keepalive_period = 0.3;
    double_check_p = 0.05;
    audit = true;
    pledge_batch = 1;
      read_nonces = false;
      audit_adaptive = false;
    net = Scenario.Lan;
    faults;
    chaos = [];
    ops =
      List.init 18 (fun i ->
          Scenario.Read { client = i mod 2; key = i mod 4; at = 1.0 +. (0.9 *. float_of_int i) })
      @ [
          Scenario.Write { client = 0; key = 0; at = 2.0 };
          Scenario.Write { client = 1; key = 1; at = 6.0 };
          Scenario.Write { client = 0; key = 2; at = 10.0 };
        ];
  }

let test_run_sharded_honest_invariants () =
  let results = Harness.run_sharded (sharded_scenario ~sys_seed:4321 ()) in
  check int_t "one result per shard" 3 (List.length results);
  List.iteri
    (fun i result ->
      check bool_t (Printf.sprintf "shard %d has its own stream" i) true
        (result.Harness.events <> []);
      match Invariant.check_all Invariant.all result with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (Printf.sprintf "shard %d: %s" i msg))
    results

let test_run_sharded_liar_invariants () =
  (* fault on slave 1 routes to shard 1; every shard must still satisfy
     the full invariant set, detection included *)
  let scenario =
    sharded_scenario ~sys_seed:1234
      ~faults:
        [
          {
            Scenario.slave = 1;
            mode = Fault.Corrupt_result;
            probability = 1.0;
            from_time = 2.0;
          };
        ]
      ()
  in
  let results = Harness.run_sharded scenario in
  check int_t "one result per shard" 3 (List.length results);
  List.iteri
    (fun i result ->
      check int_t
        (Printf.sprintf "shard %d carries only its faults" i)
        (if i = 1 then 1 else 0)
        (List.length result.Harness.scenario.Scenario.faults);
      match Invariant.check_all Invariant.all result with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (Printf.sprintf "shard %d: %s" i msg))
    results

let test_run_sharded_k1_degenerate () =
  (* n_shards = 1 must take the classic single-system path: same
     digest as a direct Harness.run of the same scenario *)
  let scenario = { (sharded_scenario ~sys_seed:99 ()) with Scenario.n_shards = 1 } in
  match Harness.run_sharded scenario with
  | [ result ] ->
    check string_t "identical stream to Harness.run"
      (Harness.events_digest (Harness.run scenario))
      (Harness.events_digest result)
  | results ->
    Alcotest.fail (Printf.sprintf "expected 1 result, got %d" (List.length results))

(* ---------------- the parallel scheduler ----------------

   The determinism oracle: a deployment advanced by the domain-parallel
   scheduler must produce byte-identical per-shard streams, tap
   delivery and rebalance decisions to the sequential lockstep run —
   the only permitted difference is the [Domain_started]/[Shard_merged]
   window markers, which exist only in parallel mode. *)

let window_marker line =
  match Export.record_of_line line with
  | Ok { Trace.event = Event.Domain_started _ | Event.Shard_merged _; _ } -> true
  | _ -> false

let parallel_run ~domains ?(liar = false) ?(chaos = false) () =
  let d =
    Deployment.create ~n_shards:4 ~n_masters:1 ~replication_factor:2 ~n_clients:2
      ~config:base_config ~net:System.lan_net ~seed:31L ~items_per_shard:4 ~domains ()
  in
  if liar then
    System.set_slave_behavior (Deployment.system d 0) ~slave:0
      (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 3.0 });
  let shard_streams = List.init 4 (fun i -> capture (Deployment.system d i)) in
  let lines = ref [] in
  Deployment.on_event d (fun ~shard r ->
      lines := Deployment.tagged_line ~shard r :: !lines);
  for i = 0 to 3 do
    drive_deployment d ~shard:i
  done;
  if chaos then begin
    let victim = (Deployment.hosts_of_shard d 0).(0) in
    Deployment.crash_host d ~at:5.0 victim;
    Deployment.recover_host d ~at:20.0 victim
  end;
  Deployment.run_until d 40.0;
  (d, List.map (fun s -> digest (s ())) shard_streams, List.rev !lines)

let test_parallel_streams_identical () =
  let _, seq_digests, seq_lines = parallel_run ~domains:0 () in
  let d_par, par_digests, par_lines = parallel_run ~domains:3 () in
  check (Alcotest.list string_t) "per-shard digests bit-identical across schedulers"
    seq_digests par_digests;
  (* tap delivery identical modulo the parallel-only window markers *)
  check bool_t "sequential run emits no window markers" false
    (List.exists window_marker seq_lines);
  let par_filtered = List.filter (fun l -> not (window_marker l)) par_lines in
  check int_t "same tap stream length" (List.length seq_lines)
    (List.length par_filtered);
  List.iter2
    (fun a b -> check string_t "tap streams identical" a b)
    seq_lines par_filtered;
  (* the parallel trace records the window bookkeeping *)
  let trace = Trace.to_list (Deployment.trace d_par) in
  let started =
    List.filter
      (fun r -> match r.Trace.event with Event.Domain_started _ -> true | _ -> false)
      trace
  in
  check int_t "one start marker per worker domain" 3 (List.length started);
  check int_t "workers cover every shard" 4
    (List.fold_left
       (fun acc r ->
         match r.Trace.event with
         | Event.Domain_started { shards; _ } -> acc + shards
         | _ -> acc)
       0 started);
  let merged_counts =
    List.filter_map
      (fun r ->
        match r.Trace.event with
        | Event.Shard_merged { shard; events } -> Some (shard, events)
        | _ -> None)
      trace
  in
  check (Alcotest.list int_t) "one merge marker per shard" [ 0; 1; 2; 3 ]
    (List.sort compare (List.map fst merged_counts));
  check bool_t "every shard merged a non-empty stream" true
    (List.for_all (fun (_, n) -> n > 0) merged_counts)

let test_parallel_chaos_liar_identical () =
  (* Adversarial + chaos: exclusion re-homing, crash re-homing and
     recovery must make identical decisions on every scheduler. *)
  let d0, seq_digests, _ = parallel_run ~domains:0 ~liar:true ~chaos:true () in
  let results =
    List.map (fun w -> parallel_run ~domains:w ~liar:true ~chaos:true ()) [ 2; 4 ]
  in
  List.iter
    (fun (d, digests, _) ->
      check (Alcotest.list string_t) "digests identical under chaos" seq_digests digests;
      check
        (Alcotest.list (Alcotest.pair (Alcotest.pair int_t int_t) (Alcotest.pair int_t string_t)))
        "identical rebalance decisions"
        (List.map (fun (a, b, c, s) -> ((a, b), (c, s))) (rebalances d0))
        (List.map (fun (a, b, c, s) -> ((a, b), (c, s))) (rebalances d)))
    results

let test_run_sharded_domains_identical () =
  (* The harness path end to end, faults and chaos included: every
     [domains] setting yields the same per-shard digests. *)
  let scenario =
    {
      (sharded_scenario ~sys_seed:2718
         ~faults:
           [
             {
               Scenario.slave = 1;
               mode = Fault.Corrupt_result;
               probability = 1.0;
               from_time = 2.0;
             };
           ]
         ())
      with
      Scenario.chaos = [ Scenario.Slave_churn { slave = 0; from_time = 4.0; outage = 6.0 } ];
    }
  in
  let digests domains =
    List.map Harness.events_digest (Harness.run_sharded ~domains scenario)
  in
  let seq = digests 0 in
  check int_t "one digest per shard" 3 (List.length seq);
  check (Alcotest.list string_t) "domains=2 identical" seq (digests 2);
  check (Alcotest.list string_t) "domains=8 (more than shards) identical" seq (digests 8)

(* ---------------- HRW stability property ---------------- *)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* [after] must be [before] with at most the victim's slots replaced:
   survivors keep their replicas in the same relative order, and the
   number of new hosts equals the number of slots the victim held. *)
let placement_stability_prop (n, r_raw, victim_raw, cseed) =
  let r = 1 + (r_raw mod (n - 1)) in
  let victim = victim_raw mod n in
  let hosts = List.init n (fun h -> h) in
  let content_id = Printf.sprintf "content-%d" cseed in
  let before = Placement.assign ~content_id ~hosts ~replicas:r in
  let after =
    Placement.assign ~content_id
      ~hosts:(List.filter (fun h -> h <> victim) hosts)
      ~replicas:r
  in
  let survivors = List.filter (fun h -> h <> victim) before in
  let rec subsequence xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _, [] -> false
    | x :: xt, y :: yt -> if x = y then subsequence xt yt else subsequence xs yt
  in
  let moved = List.filter (fun h -> not (List.mem h before)) after in
  List.length after = r
  && subsequence survivors after
  && List.length moved = (if List.mem victim before then 1 else 0)
  && (List.mem victim before || after = before)

let test_placement_stability_prop =
  qtest "HRW: removing one host moves at most that host's slots"
    QCheck2.Gen.(
      quad (int_range 3 16) (int_range 0 100) (int_range 0 100) (int_range 0 10_000))
    placement_stability_prop

let () =
  Alcotest.run "secrep_shard"
    [
      ( "placement",
        [
          Alcotest.test_case "deterministic rendezvous" `Quick test_placement_deterministic;
          Alcotest.test_case "HRW stability" `Quick test_placement_hrw_stability;
          Alcotest.test_case "spread and errors" `Quick test_placement_spread_and_errors;
          test_placement_stability_prop;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "auditor budget division" `Quick test_shard_config_division;
          Alcotest.test_case "differential K=1 degenerate" `Quick test_differential_k1;
          Alcotest.test_case "differential K=4 honest" `Quick test_differential_k4_honest;
          Alcotest.test_case "differential K=2 with liar" `Quick test_differential_k2_liar;
          Alcotest.test_case "deterministic merged stream" `Quick
            test_deployment_deterministic;
          Alcotest.test_case "routing by content key" `Quick test_routing_by_content_key;
          Alcotest.test_case "tagged JSONL" `Quick test_tagged_lines;
          Alcotest.test_case "crash re-homing" `Quick test_crash_rehoming;
          Alcotest.test_case "exclusion re-homing" `Quick test_exclusion_rehoming;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "streams identical across schedulers" `Quick
            test_parallel_streams_identical;
          Alcotest.test_case "identical under chaos and liar" `Quick
            test_parallel_chaos_liar_identical;
          Alcotest.test_case "harness digests identical per domains" `Quick
            test_run_sharded_domains_identical;
        ] );
      ( "fuzz_path",
        [
          Alcotest.test_case "per-shard invariants (honest)" `Quick
            test_run_sharded_honest_invariants;
          Alcotest.test_case "per-shard invariants (liar)" `Quick
            test_run_sharded_liar_invariants;
          Alcotest.test_case "K=1 degenerates to classic run" `Quick
            test_run_sharded_k1_degenerate;
        ] );
    ]
