(* Tests for the workload library: Zipf sampling, diurnal shaping,
   synthetic catalogues, the query mix and the end-to-end driver. *)

open Secrep_workload
module Sim = Secrep_sim.Sim
module Prng = Secrep_crypto.Prng
module Query = Secrep_store.Query
module Oplog = Secrep_store.Oplog
module Document = Secrep_store.Document
module Value = Secrep_store.Value
module System = Secrep_core.System
module Config = Secrep_core.Config

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ---------------- Zipf ---------------- *)

let test_zipf_probabilities () =
  let z = Zipf.create ~n:10 ~s:1.0 in
  check int_t "n" 10 (Zipf.n z);
  let total = ref 0.0 in
  for i = 0 to 9 do
    total := !total +. Zipf.probability z i
  done;
  check bool_t "sums to 1" true (Float.abs (!total -. 1.0) < 1e-9);
  for i = 0 to 8 do
    check bool_t "monotone decreasing" true (Zipf.probability z i >= Zipf.probability z (i + 1))
  done

let test_zipf_sampling () =
  let z = Zipf.create ~n:100 ~s:1.0 in
  let g = Prng.create ~seed:51L in
  let counts = Array.make 100 0 in
  let n = 20000 in
  for _ = 1 to n do
    let v = Zipf.sample z g in
    check bool_t "in range" true (v >= 0 && v < 100);
    counts.(v) <- counts.(v) + 1
  done;
  (* Rank 0 should be sampled far more than rank 50. *)
  check bool_t "skew" true (counts.(0) > 5 * counts.(50));
  let expected = float_of_int n *. Zipf.probability z 0 in
  check bool_t "rank-0 frequency near expectation" true
    (Float.abs (float_of_int counts.(0) -. expected) < 0.2 *. expected)

let test_zipf_statistical_sanity () =
  (* 10k seeded draws from Zipf(1.0): the empirical rank-frequency curve
     must track the analytic mass within a binomial confidence band and
     stay monotone non-increasing up to sampling noise.  The PRNG is
     seeded, so the draw sequence is fixed — the tolerances only leave
     room for a future PRNG swap, not for flakiness. *)
  let n_ranks = 20 and draws = 10_000 in
  let z = Zipf.create ~n:n_ranks ~s:1.0 in
  let g = Prng.create ~seed:4242L in
  let counts = Array.make n_ranks 0 in
  for _ = 1 to draws do
    let v = Zipf.sample z g in
    counts.(v) <- counts.(v) + 1
  done;
  let freq i = float_of_int counts.(i) /. float_of_int draws in
  let nf = float_of_int draws in
  for i = 0 to n_ranks - 1 do
    let p = Zipf.probability z i in
    (* 4-sigma binomial band around the analytic mass *)
    let band = 4.0 *. sqrt (p *. (1.0 -. p) /. nf) in
    check bool_t
      (Printf.sprintf "rank %d frequency %.4f within %.4f of analytic %.4f" i (freq i)
         band p)
      true
      (Float.abs (freq i -. p) <= band)
  done;
  for i = 0 to n_ranks - 2 do
    let p_i = Zipf.probability z i and p_j = Zipf.probability z (i + 1) in
    (* adjacent ranks may invert only within the noise of both counts *)
    let slack = 4.0 *. sqrt ((p_i +. p_j) /. nf) in
    check bool_t
      (Printf.sprintf "ranks %d >= %d up to noise" i (i + 1))
      true
      (freq i +. slack >= freq (i + 1))
  done;
  (* the heavy head is unmistakable regardless of noise *)
  check bool_t "rank 0 strictly dominates rank 4" true (counts.(0) > counts.(4))

let test_zipf_uniform_when_s0 () =
  let z = Zipf.create ~n:4 ~s:0.0 in
  for i = 0 to 3 do
    check bool_t "uniform" true (Float.abs (Zipf.probability z i -. 0.25) < 1e-9)
  done

let test_zipf_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check bool_t "n=0" true (raises (fun () -> Zipf.create ~n:0 ~s:1.0));
  check bool_t "s<0" true (raises (fun () -> Zipf.create ~n:5 ~s:(-1.0)))

(* ---------------- Diurnal ---------------- *)

let test_diurnal_rate_bounds () =
  let d = Diurnal.create ~base_rate:10.0 ~peak_factor:5.0 ~period:86400.0 in
  check bool_t "trough at 0" true (Float.abs (Diurnal.rate_at d 0.0 -. 10.0) < 1e-9);
  check bool_t "peak at half period" true
    (Float.abs (Diurnal.rate_at d 43200.0 -. 50.0) < 1e-9);
  for i = 0 to 20 do
    let r = Diurnal.rate_at d (4320.0 *. float_of_int i) in
    check bool_t "within bounds" true (r >= 10.0 -. 1e-9 && r <= 50.0 +. 1e-9)
  done;
  check bool_t "mean" true (Float.abs (Diurnal.mean_rate d -. 30.0) < 1e-9)

let test_diurnal_arrivals_monotone () =
  let d = Diurnal.create ~base_rate:5.0 ~peak_factor:3.0 ~period:100.0 in
  let g = Prng.create ~seed:52L in
  let t = ref 0.0 in
  for _ = 1 to 200 do
    let next = Diurnal.next_arrival d g ~now:!t in
    check bool_t "strictly forward" true (next > !t);
    t := next
  done

let test_diurnal_rate_realized () =
  (* Over several periods the realized arrival rate approaches the mean
     rate. *)
  let d = Diurnal.create ~base_rate:5.0 ~peak_factor:3.0 ~period:50.0 in
  let g = Prng.create ~seed:53L in
  let t = ref 0.0 and count = ref 0 in
  while !t < 500.0 do
    t := Diurnal.next_arrival d g ~now:!t;
    incr count
  done;
  let realized = float_of_int !count /. 500.0 in
  check bool_t "realized near mean" true (Float.abs (realized -. Diurnal.mean_rate d) < 1.5)

(* ---------------- Catalog ---------------- *)

let test_catalog_shapes () =
  let g = Prng.create ~seed:54L in
  let products = Catalog.product_catalog g ~n:50 in
  check int_t "50 products" 50 (List.length products);
  List.iter
    (fun (key, doc) ->
      check bool_t "product key" true (String.length key > 8 && String.sub key 0 8 = "product:");
      List.iter
        (fun f -> check bool_t ("has " ^ f) true (Document.mem doc f))
        [ "name"; "category"; "price"; "stock"; "description" ])
    products;
  let articles = Catalog.reference_db g ~n:30 in
  check int_t "30 articles" 30 (List.length articles);
  List.iter
    (fun (_, doc) ->
      List.iter
        (fun f -> check bool_t ("has " ^ f) true (Document.mem doc f))
        [ "title"; "journal"; "year"; "citations"; "abstract" ])
    articles;
  (* Keys are unique and sorted-compatible. *)
  let keys = List.map fst products in
  check int_t "unique keys" 50 (List.length (List.sort_uniq String.compare keys))

(* ---------------- Mix ---------------- *)

let make_mix ?(weights = Mix.default_weights) () =
  let g = Prng.create ~seed:55L in
  let keys = Array.init 100 (Printf.sprintf "product:%05d") in
  Mix.create ~rng:g ~keys ~weights ()

let test_mix_queries_valid () =
  let mix = make_mix () in
  for _ = 1 to 500 do
    let q = Mix.next_query mix in
    check bool_t "validates" true (Query.validate q = Ok ())
  done;
  check int_t "counted" 500 (Mix.queries_generated mix)

let test_mix_distribution () =
  let mix = make_mix () in
  let point = ref 0 and scan = ref 0 and full = ref 0 in
  let n = 4000 in
  for _ = 1 to n do
    match Query.cost_class (Mix.next_query mix) with
    | `Point -> incr point
    | `Scan -> incr scan
    | `Full_scan -> incr full
  done;
  (* Weights: 70% point, 15% range(scan), 10% grep(full), 5% agg(full). *)
  check bool_t "points near 70%" true
    (!point > n * 60 / 100 && !point < n * 80 / 100);
  check bool_t "scans present" true (!scan > n * 8 / 100);
  check bool_t "full scans present" true (!full > n * 8 / 100)

let test_mix_writes () =
  let mix = make_mix () in
  for _ = 1 to 100 do
    match Mix.next_write mix with
    | Oplog.Set_field { key; field; _ } ->
      check bool_t "known key" true (String.length key > 0 && String.sub key 0 8 = "product:");
      check bool_t "price or stock" true (field = "price" || field = "stock")
    | _ -> Alcotest.fail "expected Set_field"
  done

let test_mix_point_reads_skewed () =
  let mix = make_mix ~weights:{ Mix.point = 1.0; range = 0.0; grep = 0.0; aggregate = 0.0 } () in
  let counts = Hashtbl.create 16 in
  for _ = 1 to 2000 do
    match Mix.next_query mix with
    | Query.Select { from = Query.Key k; _ } ->
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
    | _ -> Alcotest.fail "expected point read"
  done;
  let top = Option.value ~default:0 (Hashtbl.find_opt counts "product:00000") in
  check bool_t "head key dominates" true (top > 100)

(* ---------------- Driver ---------------- *)

let test_driver_end_to_end () =
  let config =
    { Config.default with Config.max_latency = 2.0; keepalive_period = 0.5 }
  in
  let system =
    System.create ~n_masters:2 ~slaves_per_master:2 ~n_clients:4 ~config
      ~net:System.lan_net ~seed:61L ()
  in
  let g = Prng.create ~seed:62L in
  let content = Catalog.product_catalog g ~n:40 in
  System.load_content system content;
  let keys = Array.of_list (List.map fst content) in
  let mix = Mix.create ~rng:(Prng.split g) ~keys () in
  let driver = Driver.create system ~mix ~rng:(Prng.split g) () in
  Driver.run_reads driver ~rate:10.0 ~duration:30.0;
  System.run_for system 120.0;
  let s = Driver.summary driver in
  check bool_t "reads happened" true (s.Driver.reads_completed > 100);
  check int_t "everything accounted" s.Driver.reads_completed
    (s.Driver.reads_accepted + s.Driver.reads_gave_up + s.Driver.served_by_master);
  check int_t "honest run: no wrong accepts" 0 s.Driver.accepted_wrong;
  check int_t "honest run: no gave-ups" 0 s.Driver.reads_gave_up;
  check bool_t "latency recorded" true (s.Driver.mean_latency > 0.0);
  check bool_t "p99 >= mean" true (s.Driver.p99_latency >= s.Driver.mean_latency *. 0.5);
  check int_t "reports retained" s.Driver.reads_completed (List.length (Driver.reports driver))

let test_driver_writes () =
  let config = { Config.default with Config.max_latency = 1.0; keepalive_period = 0.2 } in
  let system =
    System.create ~n_masters:2 ~slaves_per_master:2 ~n_clients:2 ~config
      ~net:System.lan_net ~seed:63L ()
  in
  let g = Prng.create ~seed:64L in
  let content = Catalog.product_catalog g ~n:10 in
  System.load_content system content;
  let keys = Array.of_list (List.map fst content) in
  let mix = Mix.create ~rng:(Prng.split g) ~keys () in
  let driver = Driver.create system ~mix ~rng:(Prng.split g) () in
  Driver.run_writes driver ~rate:1.0 ~duration:20.0 ~writer:0;
  System.run_for system 120.0;
  check bool_t "writes committed" true
    (Secrep_sim.Stats.get (System.stats system) "system.writes_committed_acked" > 5)

let () =
  Alcotest.run "secrep_workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "probabilities" `Quick test_zipf_probabilities;
          Alcotest.test_case "sampling" `Quick test_zipf_sampling;
          Alcotest.test_case "statistical sanity vs analytic mass" `Quick
            test_zipf_statistical_sanity;
          Alcotest.test_case "uniform when s=0" `Quick test_zipf_uniform_when_s0;
          Alcotest.test_case "validation" `Quick test_zipf_validation;
        ] );
      ( "diurnal",
        [
          Alcotest.test_case "rate bounds" `Quick test_diurnal_rate_bounds;
          Alcotest.test_case "arrivals monotone" `Quick test_diurnal_arrivals_monotone;
          Alcotest.test_case "realized rate" `Quick test_diurnal_rate_realized;
        ] );
      ("catalog", [ Alcotest.test_case "shapes" `Quick test_catalog_shapes ]);
      ( "mix",
        [
          Alcotest.test_case "queries valid" `Quick test_mix_queries_valid;
          Alcotest.test_case "class distribution" `Quick test_mix_distribution;
          Alcotest.test_case "writes" `Quick test_mix_writes;
          Alcotest.test_case "zipf skew on point reads" `Quick test_mix_point_reads_skewed;
        ] );
      ( "driver",
        [
          Alcotest.test_case "end to end" `Quick test_driver_end_to_end;
          Alcotest.test_case "writes" `Quick test_driver_writes;
        ] );
    ]
