(* Tests for the total-order broadcast substrate: agreement on delivery
   order, reliability under loss, sequencer crash and view change,
   and the deterministic elections built on the membership. *)

open Secrep_broadcast
module Sim = Secrep_sim.Sim
module Latency = Secrep_sim.Latency
module Link = Secrep_sim.Link
module Prng = Secrep_crypto.Prng

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ---------------- Election ---------------- *)

let test_election_rules () =
  check (Alcotest.option int_t) "sequencer = lowest" (Some 2)
    (Election.sequencer ~alive:[ 5; 2; 9 ]);
  check (Alcotest.option int_t) "auditor = highest" (Some 9)
    (Election.auditor ~alive:[ 5; 2; 9 ]);
  check (Alcotest.option int_t) "empty" None (Election.sequencer ~alive:[]);
  check (Alcotest.option int_t) "next view skips suspect" (Some 5)
    (Election.next_view_sequencer ~alive:[ 5; 2; 9 ] ~suspected:2);
  check (Alcotest.option int_t) "suspect alone" None
    (Election.next_view_sequencer ~alive:[ 2 ] ~suspected:2)

let test_election_cascading_suspicion () =
  (* re-election edge cases: the deterministic rule must keep producing
     a unique next sequencer as candidates fall over one by one *)
  check (Alcotest.option int_t) "first candidate after sequencer crash" (Some 1)
    (Election.next_view_sequencer ~alive:[ 0; 1; 2 ] ~suspected:0);
  check (Alcotest.option int_t) "candidate crashes too: next in line" (Some 2)
    (Election.next_view_sequencer ~alive:[ 1; 2 ] ~suspected:1);
  check (Alcotest.option int_t) "suspect already removed from membership" (Some 3)
    (Election.next_view_sequencer ~alive:[ 3; 4 ] ~suspected:0);
  check (Alcotest.option int_t) "last survivor elects itself" (Some 4)
    (Election.next_view_sequencer ~alive:[ 4 ] ~suspected:3);
  (* role separation: ordering and audit duties stay on different
     hosts whenever two masters survive *)
  List.iter
    (fun alive ->
      match (Election.sequencer ~alive, Election.auditor ~alive) with
      | Some s, Some a when List.length alive >= 2 ->
        check bool_t "sequencer and auditor distinct" true (s <> a)
      | Some s, Some a -> check int_t "singleton holds both roles" s a
      | _ -> Alcotest.fail "roles must exist for non-empty membership")
    [ [ 0; 1; 2 ]; [ 7; 3 ]; [ 5 ]; [ 9; 1; 4; 6 ] ]

(* ---------------- Harness ---------------- *)

type harness = {
  sim : Sim.t;
  group : string Total_order.t;
  delivered : (int, (int * string) list ref) Hashtbl.t;
}

let make_harness ?(members = [ 0; 1; 2 ]) ?(loss = 0.0) ?(seed = 77L) () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed in
  let delivered = Hashtbl.create 8 in
  List.iter (fun m -> Hashtbl.replace delivered m (ref [])) members;
  let group =
    Total_order.create sim ~rng ~members
      ~latency:(Latency.Uniform { lo = 0.01; hi = 0.05 })
      ~loss
      ~deliver:(fun ~member ~seq payload ->
        let log = Hashtbl.find delivered member in
        log := (seq, payload) :: !log)
      ()
  in
  { sim; group; delivered }

let deliveries h member = List.rev !(Hashtbl.find h.delivered member)

let test_basic_delivery () =
  let h = make_harness () in
  Total_order.broadcast h.group ~from:1 "hello";
  Sim.run ~until:5.0 h.sim;
  List.iter
    (fun m ->
      check
        (Alcotest.list (Alcotest.pair int_t Alcotest.string))
        (Printf.sprintf "member %d delivered" m)
        [ (0, "hello") ] (deliveries h m))
    [ 0; 1; 2 ]

let test_total_order_agreement () =
  let h = make_harness ~members:[ 0; 1; 2; 3 ] () in
  for i = 0 to 19 do
    let from = i mod 4 in
    ignore
      (Sim.schedule h.sim ~delay:(0.001 *. float_of_int i) (fun () ->
           Total_order.broadcast h.group ~from (Printf.sprintf "m%d-%d" from i)))
  done;
  Sim.run ~until:30.0 h.sim;
  let reference = deliveries h 0 in
  check int_t "all 20 delivered" 20 (List.length reference);
  List.iter
    (fun m ->
      check bool_t
        (Printf.sprintf "member %d agrees with member 0" m)
        true
        (deliveries h m = reference))
    [ 1; 2; 3 ];
  List.iteri (fun i (seq, _) -> check int_t "consecutive slots" i seq) reference

let test_reliability_under_loss () =
  let h = make_harness ~members:[ 0; 1; 2 ] ~loss:0.15 ~seed:31L () in
  for i = 0 to 9 do
    ignore
      (Sim.schedule h.sim ~delay:(0.5 *. float_of_int i) (fun () ->
           Total_order.broadcast h.group ~from:(i mod 3) (Printf.sprintf "p%d" i)))
  done;
  Sim.run ~until:120.0 h.sim;
  let reference = deliveries h 0 in
  check int_t "all survive loss" 10 (List.length reference);
  List.iter
    (fun m -> check bool_t "agreement under loss" true (deliveries h m = reference))
    [ 1; 2 ]

let test_sequencer_crash_view_change () =
  let h = make_harness ~members:[ 0; 1; 2 ] () in
  Total_order.broadcast h.group ~from:1 "before";
  Sim.run ~until:2.0 h.sim;
  check int_t "initial sequencer" 0 (Total_order.sequencer_of h.group 1);
  Total_order.crash h.group 0;
  ignore
    (Sim.schedule h.sim ~delay:0.5 (fun () -> Total_order.broadcast h.group ~from:2 "during"));
  Sim.run ~until:60.0 h.sim;
  check bool_t "view advanced" true (Total_order.view_of h.group 1 > 0);
  check int_t "new sequencer is member 1" 1 (Total_order.sequencer_of h.group 1);
  check int_t "member 2 agrees" 1 (Total_order.sequencer_of h.group 2);
  let d1 = deliveries h 1 and d2 = deliveries h 2 in
  check bool_t "survivors agree" true (d1 = d2);
  check
    (Alcotest.list Alcotest.string)
    "both messages delivered" [ "before"; "during" ] (List.map snd d1);
  check (Alcotest.list int_t) "alive set" [ 1; 2 ] (Total_order.alive h.group)

let test_double_crash () =
  let h = make_harness ~members:[ 0; 1; 2; 3 ] () in
  Total_order.broadcast h.group ~from:3 "one";
  Sim.run ~until:2.0 h.sim;
  Total_order.crash h.group 0;
  Sim.run ~until:20.0 h.sim;
  Total_order.crash h.group 1;
  ignore
    (Sim.schedule h.sim ~delay:1.0 (fun () -> Total_order.broadcast h.group ~from:3 "two"));
  Sim.run ~until:120.0 h.sim;
  let d2 = deliveries h 2 and d3 = deliveries h 3 in
  check bool_t "survivors agree after two crashes" true (d2 = d3);
  check (Alcotest.list Alcotest.string) "both messages" [ "one"; "two" ] (List.map snd d2)

let test_crash_mid_view_change () =
  (* the candidate dies while taking over: member 0 crashes, member 1
     starts the view change (suspect timeout is 2s) and is itself
     crashed right in the takeover window, so the re-election has to
     cascade to member 2 without losing any slot *)
  let h = make_harness ~members:[ 0; 1; 2; 3 ] () in
  Total_order.broadcast h.group ~from:3 "pre";
  Sim.run ~until:1.0 h.sim;
  check int_t "initial sequencer" 0 (Total_order.sequencer_of h.group 3);
  Total_order.crash h.group 0;
  (* survivors suspect 0 at ~3s; kill the first candidate mid-takeover *)
  ignore (Sim.schedule h.sim ~delay:2.2 (fun () -> Total_order.crash h.group 1));
  ignore
    (Sim.schedule h.sim ~delay:3.0 (fun () -> Total_order.broadcast h.group ~from:3 "post"));
  Sim.run ~until:120.0 h.sim;
  check int_t "member 2 ends up sequencer" 2 (Total_order.sequencer_of h.group 2);
  check int_t "member 3 agrees on the sequencer" 2 (Total_order.sequencer_of h.group 3);
  check bool_t "view advanced past the failed takeover" true
    (Total_order.view_of h.group 3 >= 1);
  check int_t "views agree" (Total_order.view_of h.group 2) (Total_order.view_of h.group 3);
  let d2 = deliveries h 2 and d3 = deliveries h 3 in
  check bool_t "survivors agree" true (d2 = d3);
  check
    (Alcotest.list Alcotest.string)
    "no slot lost across the cascaded view change" [ "pre"; "post" ] (List.map snd d3);
  check (Alcotest.list int_t) "alive set" [ 2; 3 ] (Total_order.alive h.group)

let test_simultaneous_candidate_timeout () =
  (* both survivors hit the suspect timeout in the same heartbeat
     window and race to propose the next view; the deterministic rule
     must yield exactly one new sequencer, and sends issued from both
     members inside the race window must all survive *)
  let h = make_harness ~members:[ 0; 1; 2 ] () in
  Total_order.broadcast h.group ~from:0 "before";
  Sim.run ~until:1.0 h.sim;
  Total_order.crash h.group 0;
  (* suspicion fires near t = 3.0 for both survivors; fire broadcasts
     from each of them straddling that instant *)
  List.iter
    (fun (delay, from, tag) ->
      ignore
        (Sim.schedule h.sim ~delay (fun () ->
             Total_order.broadcast h.group ~from (Printf.sprintf "race-%s" tag))))
    [ (1.9, 1, "a"); (1.95, 2, "b"); (2.05, 1, "c"); (2.1, 2, "d") ];
  Sim.run ~until:120.0 h.sim;
  let s1 = Total_order.sequencer_of h.group 1 and s2 = Total_order.sequencer_of h.group 2 in
  check int_t "exactly one winner, agreed by both" s1 s2;
  check int_t "winner is the deterministic candidate" 1 s1;
  check int_t "views agree" (Total_order.view_of h.group 1) (Total_order.view_of h.group 2);
  let d1 = deliveries h 1 and d2 = deliveries h 2 in
  check bool_t "survivors agree on the order" true (d1 = d2);
  check int_t "no race message lost" 5 (List.length d1);
  List.iteri (fun i (seq, _) -> check int_t "slots stay consecutive" i seq) d1

let test_crashed_member_stops () =
  let h = make_harness () in
  Total_order.crash h.group 2;
  Total_order.broadcast h.group ~from:0 "x";
  Sim.run ~until:10.0 h.sim;
  check int_t "dead member delivered nothing" 0 (List.length (deliveries h 2));
  check bool_t "broadcast from dead member rejected" true
    (try
       Total_order.broadcast h.group ~from:2 "y";
       false
     with Invalid_argument _ -> true);
  check bool_t "is_alive" false (Total_order.is_alive h.group 2)

let test_partition_heal () =
  let h = make_harness ~members:[ 0; 1; 2 ] () in
  Total_order.broadcast h.group ~from:0 "first";
  Sim.run ~until:2.0 h.sim;
  Link.set_up (Total_order.link_between h.group 0 2) false;
  Total_order.broadcast h.group ~from:1 "second";
  Sim.run ~until:3.2 h.sim;
  check int_t "member 2 is missing the slot" 1 (List.length (deliveries h 2));
  Link.set_up (Total_order.link_between h.group 0 2) true;
  Sim.run ~until:30.0 h.sim;
  check
    (Alcotest.list Alcotest.string)
    "hole filled after heal" [ "first"; "second" ]
    (List.map snd (deliveries h 2))

let test_delivered_count () =
  let h = make_harness () in
  for _ = 1 to 5 do
    Total_order.broadcast h.group ~from:0 "m"
  done;
  Sim.run ~until:10.0 h.sim;
  List.iter
    (fun m -> check int_t "count" 5 (Total_order.delivered_count h.group m))
    [ 0; 1; 2 ]

let test_create_validation () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:1L in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check bool_t "empty members" true
    (raises (fun () ->
         Total_order.create sim ~rng ~members:[] ~latency:(Latency.Constant 0.01)
           ~deliver:(fun ~member:_ ~seq:_ _ -> ())
           ()));
  check bool_t "duplicate members" true
    (raises (fun () ->
         Total_order.create sim ~rng ~members:[ 1; 1 ] ~latency:(Latency.Constant 0.01)
           ~deliver:(fun ~member:_ ~seq:_ _ -> ())
           ()));
  check bool_t "bad config" true
    (raises (fun () ->
         Total_order.create sim ~rng ~members:[ 0; 1 ] ~latency:(Latency.Constant 0.01)
           ~config:
             {
               Total_order.heartbeat_period = 1.0;
               suspect_timeout = 0.5;
               retry_period = 1.0;
               state_sync_wait = 1.0;
             }
           ~deliver:(fun ~member:_ ~seq:_ _ -> ())
           ()))

let prop_agreement =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"total_order: agreement across random schedules"
       QCheck2.Gen.(pair (int_range 0 10000) (list_size (int_range 1 15) (int_bound 2)))
       (fun (seed, senders) ->
         let h = make_harness ~seed:(Int64.of_int (seed + 1)) () in
         List.iteri
           (fun i from ->
             ignore
               (Sim.schedule h.sim ~delay:(0.05 *. float_of_int i) (fun () ->
                    Total_order.broadcast h.group ~from (Printf.sprintf "%d-%d" from i))))
           senders;
         Sim.run ~until:60.0 h.sim;
         let reference = deliveries h 0 in
         List.length reference = List.length senders
         && deliveries h 1 = reference
         && deliveries h 2 = reference))

let prop_chaos =
  (* Loss + a sequencer crash mid-stream + concurrent senders: all
     survivors must agree, and every message broadcast by a member that
     stays alive must be delivered. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:15 ~name:"total_order: agreement under loss + crash"
       QCheck2.Gen.(pair (int_range 0 10000) (list_size (int_range 2 10) (int_range 1 3)))
       (fun (seed, senders) ->
         let h =
           make_harness ~members:[ 0; 1; 2; 3 ] ~loss:0.1
             ~seed:(Int64.of_int (seed + 13)) ()
         in
         (* Member 0 (initial sequencer) crashes at t = 1.0; all sends
            come from members 1..3, spread before and after the crash. *)
         List.iteri
           (fun i from ->
             ignore
               (Sim.schedule h.sim ~delay:(0.4 *. float_of_int i) (fun () ->
                    Total_order.broadcast h.group ~from (Printf.sprintf "c%d-%d" from i))))
           senders;
         ignore (Sim.schedule h.sim ~delay:1.0 (fun () -> Total_order.crash h.group 0));
         Sim.run ~until:200.0 h.sim;
         let d1 = deliveries h 1 and d2 = deliveries h 2 and d3 = deliveries h 3 in
         d1 = d2 && d2 = d3 && List.length d1 = List.length senders))

let () =
  Alcotest.run "secrep_broadcast"
    [
      ( "election",
        [
          Alcotest.test_case "rules" `Quick test_election_rules;
          Alcotest.test_case "cascading suspicion" `Quick test_election_cascading_suspicion;
        ] );
      ( "total_order",
        [
          Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
          Alcotest.test_case "total order agreement" `Quick test_total_order_agreement;
          Alcotest.test_case "reliability under loss" `Quick test_reliability_under_loss;
          Alcotest.test_case "sequencer crash + view change" `Quick
            test_sequencer_crash_view_change;
          Alcotest.test_case "double crash" `Quick test_double_crash;
          Alcotest.test_case "crash mid-view-change" `Quick test_crash_mid_view_change;
          Alcotest.test_case "simultaneous candidate timeout" `Quick
            test_simultaneous_candidate_timeout;
          Alcotest.test_case "crashed member stops" `Quick test_crashed_member_stops;
          Alcotest.test_case "partition heal" `Quick test_partition_heal;
          Alcotest.test_case "delivered count" `Quick test_delivered_count;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          prop_agreement;
          prop_chaos;
        ] );
    ]
