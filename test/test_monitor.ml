(* Tests for the monitor layer: causal read lineage, the online SLO
   rule engine, the health report, and their agreement with the fuzz
   invariants and the E1 experiment. *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Client = Secrep_core.Client
module Fault = Secrep_core.Fault
module Corrective = Secrep_core.Corrective
module Sim = Secrep_sim.Sim
module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Export = Secrep_sim.Export
module Query = Secrep_store.Query
module Oplog = Secrep_store.Oplog
module Value = Secrep_store.Value
module Document = Secrep_store.Document
module Slo = Secrep_monitor.Slo
module Lineage = Secrep_monitor.Lineage
module Health = Secrep_monitor.Health
module Invariant = Secrep_check.Invariant

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let fast_config =
  {
    Config.default with
    Config.max_latency = 2.0;
    keepalive_period = 0.5;
    double_check_probability = 0.05;
    audit_lag_slack = 0.5;
  }

let catalog =
  List.init 20 (fun i ->
      ( Printf.sprintf "item:%03d" i,
        Document.of_fields
          [
            ("name", Value.String (Printf.sprintf "item number %d" i));
            ("price", Value.Float (float_of_int (i * 10)));
          ] ))

let make_system ?(config = fast_config) ?(n_masters = 2) ?(slaves_per_master = 2)
    ?(n_clients = 4) ?(seed = 11L) () =
  let system =
    System.create ~n_masters ~slaves_per_master ~n_clients ~config ~net:System.lan_net ~seed ()
  in
  System.load_content system catalog;
  system

(* Subscribe lineage + SLO to the live stream, like the CLI does. *)
let attach ?(config = fast_config) system =
  let slo = Slo.create ~trace:(System.trace system) ~config:(Slo.config config) () in
  let lineage = Lineage.create () in
  Trace.on_emit (System.trace system) (fun r ->
      Lineage.observe lineage r;
      Slo.observe slo r);
  (slo, lineage)

let finalize system slo =
  Slo.finalize slo ~now:(Sim.now (System.sim system))

let issue_reads ?level ?mode ?(client = fun i -> i mod 4) system ~n ~spacing =
  let reports = ref [] in
  let sim = System.sim system in
  for i = 0 to n - 1 do
    ignore
      (Sim.schedule sim ~delay:(spacing *. float_of_int i) (fun () ->
           System.read system ~client:(client i) ?level ?mode
             (Query.point_read (Printf.sprintf "item:%03d" (i mod 20)))
             ~on_done:(fun r -> reports := r :: !reports)))
  done;
  reports

(* ---------------- clean run ---------------- *)

let test_clean_run_zero_alerts () =
  let system = make_system () in
  let slo, lineage = attach system in
  System.write system ~client:1
    (Oplog.Set_field { key = "item:001"; field = "price"; value = Value.Float 42.0 })
    ~on_done:(fun _ -> ());
  let reports = issue_reads system ~n:40 ~spacing:0.2 in
  System.run_for system 60.0;
  finalize system slo;
  check int_t "reads completed" 40 (List.length !reports);
  check int_t "no alerts on a clean run" 0 (List.length (Slo.alerts slo));
  let s = Lineage.summarize lineage in
  check int_t "lineage issued" 40 s.Lineage.issued;
  check int_t "lineage completed" 40 s.Lineage.completed;
  check int_t "lineage accepted" 40 s.Lineage.accepted;
  check int_t "nothing outstanding" 0 s.Lineage.outstanding;
  check int_t "nothing lied" 0 s.Lineage.lied_served;
  check bool_t "e2e p99 positive" true (s.Lineage.e2e_p99 > 0.0);
  (* every request has a critical path: all three phases fully counted *)
  List.iter
    (fun (p : Lineage.phase) ->
      check int_t (p.Lineage.phase ^ " counted") 40 p.Lineage.count)
    s.Lineage.critical_path;
  let health = Health.build ~trace:(System.trace system) ~spans:(System.spans system) ~slo ~lineage () in
  check bool_t "healthy" true (Health.healthy health);
  check int_t "no leaked spans" 0 (List.length health.Health.diagnostics.Health.leaked_spans);
  (* lineage JSONL: one object per request, parseable *)
  let lines = String.split_on_char '\n' (String.trim (Lineage.jsonl lineage)) in
  check int_t "one lineage line per read" 40 (List.length lines);
  List.iter
    (fun line ->
      match Export.Json.parse line with
      | Ok (Export.Json.Obj fields) ->
        check bool_t "has request id" true (List.mem_assoc "request" fields)
      | Ok _ -> Alcotest.fail "lineage line is not an object"
      | Error msg -> Alcotest.fail msg)
    lines;
  (* health JSON round-trips through the parser *)
  match Export.Json.parse (Export.Json.to_string (Health.to_json health)) with
  | Ok (Export.Json.Obj fields) ->
    check bool_t "healthy in json" true
      (List.assoc_opt "healthy" fields = Some (Export.Json.Bool true))
  | Ok _ -> Alcotest.fail "health json is not an object"
  | Error msg -> Alcotest.fail msg

(* ---------------- lineage under attack ---------------- *)

let test_lineage_attack_detection () =
  (* A liar is convicted by the auditor; lineage must attribute the
     lied reads to it and report a detection latency. *)
  let config = { fast_config with Config.double_check_probability = 0.0 } in
  let system = make_system ~config () in
  let slo, lineage = attach ~config system in
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 });
  let reports = issue_reads ~client:(fun _ -> 0) system ~n:10 ~spacing:0.3 in
  System.run_for system 120.0;
  finalize system slo;
  check int_t "reads completed" 10 (List.length !reports);
  check bool_t "auditor convicted the liar" true
    (Corrective.is_excluded (System.corrective system) ~slave_id:victim);
  Lineage.finalize lineage;
  let s = Lineage.summarize lineage in
  check bool_t "lied reads recorded" true (s.Lineage.lied_served > 0);
  check bool_t "some lied reads marked detected" true (s.Lineage.detected_lied > 0);
  check bool_t "detection latency positive" true (s.Lineage.detection_max > 0.0);
  let row =
    match
      List.find_opt (fun (r : Lineage.slave_row) -> r.Lineage.slave = victim)
        (Lineage.slave_rows lineage)
    with
    | Some r -> r
    | None -> Alcotest.fail "victim has no slave row"
  in
  check bool_t "victim served reads" true (row.Lineage.served > 0);
  check bool_t "victim lied" true (row.Lineage.lied_served > 0);
  check bool_t "victim accused" true (row.Lineage.first_accused_at <> None);
  check bool_t "reads-before-detection counted" true
    (row.Lineage.reads_before_detection <> None);
  (* the conviction arrived inside the audit budget: no detection alert *)
  check bool_t "no detection alert (caught in time)" true
    (not (Slo.was_raised slo "detection"))

let test_undetected_liar_raises_detection () =
  (* No double-checks, no audit: nothing ever accuses the liar, so the
     SLO monitor must — online once the budget lapses. *)
  let config =
    { fast_config with Config.double_check_probability = 0.0; audit_enabled = false }
  in
  let system = make_system ~config () in
  let slo, _lineage = attach ~config system in
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 });
  let reports = issue_reads ~client:(fun _ -> 0) system ~n:10 ~spacing:0.3 in
  System.run_for system 60.0;
  finalize system slo;
  check int_t "reads completed" 10 (List.length !reports);
  check bool_t "detection alert raised" true (Slo.was_raised slo "detection");
  check bool_t "still active at end of run" true
    (List.exists (fun (a : Slo.alert) -> a.Slo.rule = "detection") (Slo.active slo));
  (* the raise was emitted into the live trace as a typed event *)
  check bool_t "alert_raised event in trace" true
    (Trace.count_kind (System.trace system) ~kind:"alert_raised" > 0)

(* ---------------- blackout ---------------- *)

let test_blackout_raises_availability_and_staleness () =
  let system = make_system () in
  let slo, lineage = attach system in
  let sim = System.sim system in
  (* cut every slave at t=5, heal at t=60 *)
  let n_slaves = System.n_slaves system in
  ignore
    (Sim.schedule sim ~delay:5.0 (fun () ->
         for s = 0 to n_slaves - 1 do
           System.set_slave_connectivity system ~slave_id:s ~up:false
         done));
  ignore
    (Sim.schedule sim ~delay:60.0 (fun () ->
         for s = 0 to n_slaves - 1 do
           System.set_slave_connectivity system ~slave_id:s ~up:true
         done));
  (* a write during the blackout cannot reach any slave: staleness *)
  ignore
    (Sim.schedule sim ~delay:8.0 (fun () ->
         System.write system ~client:1
           (Oplog.Set_field { key = "item:002"; field = "price"; value = Value.Float 7.0 })
           ~on_done:(fun _ -> ())));
  let reports = issue_reads system ~n:30 ~spacing:1.0 in
  System.run_for system 180.0;
  finalize system slo;
  check int_t "reads completed" 30 (List.length !reports);
  check bool_t "some reads went degraded" true
    (List.exists
       (fun r -> match r.Client.outcome with `Served_by_master _ -> true | _ -> false)
       !reports);
  check bool_t "availability alert raised" true (Slo.was_raised slo "availability");
  check bool_t "staleness alert raised" true (Slo.was_raised slo "staleness");
  (* degraded reads show up in the lineage summary too *)
  let s = Lineage.summarize lineage in
  check bool_t "degraded lineage" true (s.Lineage.degraded > 0);
  (* availability cleared once the blackout healed and reads recovered *)
  let avail =
    List.filter (fun (a : Slo.alert) -> a.Slo.rule = "availability") (Slo.alerts slo)
  in
  check bool_t "availability eventually cleared" true
    (List.for_all (fun (a : Slo.alert) -> a.Slo.cleared_at <> None) avail)

(* ---------------- synthetic rule checks ---------------- *)

let record ~time event = { Trace.time; source = "test"; event }

let synthetic_slo () =
  Slo.create ~config:(Slo.config (Config.validate_exn { Config.default with Config.max_latency = 5.0 })) ()

let test_synthetic_write_spacing () =
  let slo = synthetic_slo () in
  Slo.observe slo (record ~time:0.0 (Event.Write_committed { master = 0; version = 1 }));
  Slo.observe slo (record ~time:1.0 (Event.Write_committed { master = 0; version = 2 }));
  check bool_t "write-spacing raised" true (Slo.was_raised slo "write-spacing");
  (* a different master committing close in time is fine *)
  let slo2 = synthetic_slo () in
  Slo.observe slo2 (record ~time:0.0 (Event.Write_committed { master = 0; version = 1 }));
  Slo.observe slo2 (record ~time:1.0 (Event.Write_committed { master = 1; version = 2 }));
  check bool_t "per-master only" true (not (Slo.was_raised slo2 "write-spacing"))

let test_synthetic_staleness_and_clear () =
  let slo = synthetic_slo () in
  Slo.observe slo (record ~time:0.0 (Event.Write_committed { master = 0; version = 1 }));
  Slo.observe slo
    (record ~time:1.0 (Event.State_update_applied { slave = 0; from_version = 0; to_version = 1 }));
  Slo.observe slo (record ~time:10.0 (Event.Write_committed { master = 0; version = 2 }));
  Slo.observe slo
    (record ~time:10.5 (Event.State_update_applied { slave = 0; from_version = 1; to_version = 2 }));
  (* a pledge for version 1 verified long after commit(2) + max_latency *)
  Slo.observe slo
    (record ~time:40.0
       (Event.Pledge_verified
          { client = 0; request = 1; slave = 0; version = 1; ok = true; reason = "" }));
  check bool_t "staleness raised" true (Slo.was_raised slo "staleness");
  (* pulse decays after a quiet window *)
  Slo.observe slo (record ~time:200.0 (Event.Keepalive_sent { master = 0; version = 2 }));
  check bool_t "staleness cleared" true
    (not (List.exists (fun (a : Slo.alert) -> a.Slo.rule = "staleness") (Slo.active slo)));
  let a =
    List.find (fun (a : Slo.alert) -> a.Slo.rule = "staleness") (Slo.alerts slo)
  in
  check bool_t "cleared_at recorded" true (a.Slo.cleared_at <> None)

let test_synthetic_false_accusation () =
  let slo = synthetic_slo () in
  Slo.observe slo (record ~time:1.0 (Event.Audit_conviction { slave = 3; version = 1 }));
  check bool_t "false-accusation raised" true (Slo.was_raised slo "false-accusation");
  (* an accusation of a slave that did lie is legitimate *)
  let slo2 = synthetic_slo () in
  Slo.observe slo2
    (record ~time:0.5
       (Event.Pledge_signed { slave = 3; request = 1; version = 1; lied = true }));
  Slo.observe slo2 (record ~time:1.0 (Event.Audit_conviction { slave = 3; version = 1 }));
  check bool_t "legitimate accusation passes" true
    (not (Slo.was_raised slo2 "false-accusation"));
  check bool_t "accused liar needs no detection alert" true
    (not (Slo.was_raised slo2 "detection"))

let test_synthetic_availability_burn () =
  let slo = synthetic_slo () in
  for i = 1 to 12 do
    let t = float_of_int i *. 0.1 in
    Slo.observe slo
      (record ~time:t (Event.Read_issued { client = 0; request = i; mode = "single" }));
    Slo.observe slo
      (record ~time:(t +. 0.01)
         (Event.Read_answered
            { client = 0; request = i; slave = -1; outcome = "gave-up"; version = -1; latency = 0.01 }))
  done;
  check bool_t "availability burn raised" true (Slo.was_raised slo "availability");
  (* sensitive reads served by the master are not "degraded" *)
  let slo2 = synthetic_slo () in
  for i = 1 to 12 do
    let t = float_of_int i *. 0.1 in
    Slo.observe slo2
      (record ~time:t (Event.Read_issued { client = 0; request = i; mode = "sensitive" }));
    Slo.observe slo2
      (record ~time:(t +. 0.01)
         (Event.Read_answered
            { client = 0; request = i; slave = -1; outcome = "by-master"; version = 1; latency = 0.01 }))
  done;
  check bool_t "sensitive by-master is not bad" true
    (not (Slo.was_raised slo2 "availability"))

(* ---------------- invariant mapping ---------------- *)

let test_rule_coverage_mapping () =
  let expected =
    [
      ("detection", Some "detection");
      ("no-false-accusation", Some "false-accusation");
      ("staleness", Some "staleness");
      ("write-spacing", Some "write-spacing");
      ("pledge-validity", None);
      ("availability", Some "availability");
      ("recovery-convergence", Some "recovery");
      ("differential-audit", None);
      ("replay-rejection", None);
      ("equivocation-detection", None);
      ("adaptive-no-worse", None);
      ("parallel-determinism", None);
      ("alert-coverage", None);
    ]
  in
  (* the mapping table stays in lockstep with the checker registry *)
  List.iter
    (fun (c : Invariant.checker) ->
      match List.assoc_opt c.Invariant.name expected with
      | None -> Alcotest.fail ("unmapped invariant " ^ c.Invariant.name)
      | Some rule ->
        check bool_t (c.Invariant.name ^ " maps as expected") true
          (Slo.rule_for_invariant c.Invariant.name = rule);
        (match rule with
        | Some r ->
          check bool_t (r ^ " is a known rule") true (List.mem r Slo.rule_names)
        | None -> ()))
    Invariant.all;
  check int_t "mapping table covers every checker" (List.length Invariant.all)
    (List.length expected)

(* ---------------- E1 agreement ---------------- *)

(* Replicates bench/exp1_detection.ml's trial loop (same config, same
   seed derivation) with lineage attached: the monitor's
   reads-before-detection count for the victim must agree with the
   count E1 reports — E1 counts the catching read itself, lineage
   counts the accepted reads served before it. *)
let test_e1_agreement () =
  let p = 0.2 in
  let seed = Int64.of_int ((1 * 7919) + (3 * 1009) + 1) in
  let config =
    {
      Config.default with
      Config.max_latency = 5.0;
      keepalive_period = 1.0;
      double_check_probability = p;
      audit_lag_slack = 1.0;
      audit_enabled = false;
    }
  in
  let system =
    System.create ~n_masters:2 ~slaves_per_master:2 ~n_clients:2 ~config
      ~net:System.lan_net ~seed ()
  in
  let lineage = Lineage.create () in
  Trace.on_emit (System.trace system) (fun r -> Lineage.observe lineage r);
  let g = Secrep_crypto.Prng.create ~seed:(Int64.add seed 77L) in
  System.load_content system (Secrep_workload.Catalog.product_catalog g ~n:50);
  let victim = System.slave_of_client system 0 in
  System.set_slave_behavior system ~slave:victim
    (Fault.Malicious { probability = 1.0; mode = Fault.Corrupt_result; from_time = 0.0 });
  let cap = int_of_float (20.0 /. p) + 50 in
  let count = ref 0 in
  let caught_at = ref None in
  let rec issue () =
    if !caught_at = None && !count < cap then begin
      incr count;
      System.read system ~client:0
        (Query.point_read (Printf.sprintf "product:%05d" (!count mod 50)))
        ~on_done:(fun r ->
          (match r.Client.caught_slave with
          | Some s when s = victim -> caught_at := Some !count
          | Some _ | None ->
            if Corrective.is_excluded (System.corrective system) ~slave_id:victim then
              caught_at := Some !count);
          if !caught_at = None && !count < cap then
            ignore (Sim.schedule (System.sim system) ~delay:0.01 (fun () -> issue ())))
    end
  in
  issue ();
  let deadline = (0.1 *. float_of_int cap) +. 120.0 in
  while !caught_at = None && !count < cap && Sim.now (System.sim system) < deadline do
    System.run_for system 5.0
  done;
  System.run_for system 2.0;
  let e1_count =
    match !caught_at with
    | Some n -> n
    | None -> Alcotest.fail "E1 trial never caught the liar"
  in
  Lineage.finalize lineage;
  let row =
    match
      List.find_opt (fun (r : Lineage.slave_row) -> r.Lineage.slave = victim)
        (Lineage.slave_rows lineage)
    with
    | Some r -> r
    | None -> Alcotest.fail "victim has no lineage row"
  in
  (match row.Lineage.reads_before_detection with
  | Some n ->
    (* E1's count includes the read whose double-check caught the slave
       (that read is rejected, not accepted): lineage sees one fewer. *)
    check int_t "lineage agrees with E1's reads-until-detection" (e1_count - 1) n
  | None -> Alcotest.fail "lineage did not record a detection");
  check bool_t "detection latency recorded" true (row.Lineage.detection_latency <> None)

let () =
  Alcotest.run "secrep_monitor"
    [
      ( "slo",
        [
          Alcotest.test_case "clean run: zero alerts" `Quick test_clean_run_zero_alerts;
          Alcotest.test_case "undetected liar raises detection" `Quick
            test_undetected_liar_raises_detection;
          Alcotest.test_case "blackout raises availability+staleness" `Quick
            test_blackout_raises_availability_and_staleness;
          Alcotest.test_case "synthetic write-spacing" `Quick test_synthetic_write_spacing;
          Alcotest.test_case "synthetic staleness + clear" `Quick
            test_synthetic_staleness_and_clear;
          Alcotest.test_case "synthetic false-accusation" `Quick
            test_synthetic_false_accusation;
          Alcotest.test_case "synthetic availability burn" `Quick
            test_synthetic_availability_burn;
        ] );
      ( "lineage",
        [
          Alcotest.test_case "attack detection lifecycle" `Quick
            test_lineage_attack_detection;
          Alcotest.test_case "agrees with E1" `Quick test_e1_agreement;
        ] );
      ( "coverage",
        [ Alcotest.test_case "invariant-to-rule mapping" `Quick test_rule_coverage_mapping ] );
    ]
