(* Tests for the content-store substrate: the regex engine, values,
   documents, the query language and evaluator, canonical encodings,
   the versioned store, op log and result cache. *)

open Secrep_store
module Prng = Secrep_crypto.Prng

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------------- Regex ---------------- *)

let m pattern input = Regex.matches (Regex.compile pattern) input

let test_regex_literals () =
  check bool_t "substring found" true (m "ell" "hello");
  check bool_t "absent" false (m "wor" "hello");
  check bool_t "empty pattern matches anything" true (m "" "hello");
  check bool_t "empty input, empty pattern" true (m "" "")

let test_regex_dot_star_plus_opt () =
  check bool_t "dot" true (m "h.llo" "hello");
  check bool_t "dot needs a char" false (m "h.llo" "hllo");
  check bool_t "star zero" true (m "ab*c" "ac");
  check bool_t "star many" true (m "ab*c" "abbbbc");
  check bool_t "plus needs one" false (m "ab+c" "ac");
  check bool_t "plus many" true (m "ab+c" "abbc");
  check bool_t "opt present" true (m "colou?r" "colour");
  check bool_t "opt absent" true (m "colou?r" "color");
  check bool_t "dotstar bridges" true (m "a.*z" "a-------z")

let test_regex_classes () =
  check bool_t "simple class" true (m "[abc]at" "bat");
  check bool_t "class miss" false (m "[abc]at" "rat");
  check bool_t "range" true (m "[a-z]+" "hello");
  check bool_t "digit range" true (m "[0-9]+" "abc123");
  check bool_t "negated" true (m "[^0-9]" "a");
  check bool_t "negated miss" false (m "^[^0-9]+$" "123");
  check bool_t "class with dash last" true (m "[a-]x" "-x");
  check bool_t "escaped bracket in class" true (m "[\\]]" "]")

let test_regex_alternation_groups () =
  check bool_t "alt left" true (m "cat|dog" "a cat here");
  check bool_t "alt right" true (m "cat|dog" "a dog here");
  check bool_t "alt miss" false (m "^(cat|dog)$" "cow");
  check bool_t "group star" true (m "(ab)+" "ababab");
  check bool_t "nested" true (m "a(b(c|d))*e" "abcbde");
  check bool_t "group alt anchored" true (m "^(foo|ba(r|z))$" "baz")

let test_regex_anchors () =
  check bool_t "start anchor hit" true (m "^hel" "hello");
  check bool_t "start anchor miss" false (m "^ell" "hello");
  check bool_t "end anchor hit" true (m "llo$" "hello");
  check bool_t "end anchor miss" false (m "hel$" "hello");
  check bool_t "both anchors exact" true (m "^hello$" "hello");
  check bool_t "both anchors longer" false (m "^hello$" "hello!");
  check bool_t "empty exact" true (m "^$" "");
  check bool_t "empty exact nonempty" false (m "^$" "x")

let test_regex_escapes () =
  check bool_t "escaped dot" true (m "a\\.b" "a.b");
  check bool_t "escaped dot not any" false (m "^a\\.b$" "axb");
  check bool_t "\\d" true (m "\\d+" "abc42");
  check bool_t "\\w" true (m "^\\w+$" "hello_42");
  check bool_t "\\s" true (m "a\\sb" "a b");
  check bool_t "escaped star" true (m "2\\*3" "2*3")

let test_regex_parse_errors () =
  let fails pattern =
    match Regex.compile pattern with
    | (_ : Regex.t) -> false
    | exception Regex.Parse_error _ -> true
  in
  check bool_t "unbalanced (" true (fails "(ab");
  check bool_t "unbalanced )" true (fails "ab)");
  check bool_t "dangling *" true (fails "*ab");
  check bool_t "unterminated class" true (fails "[abc");
  check bool_t "dangling backslash" true (fails "ab\\")

let test_regex_matches_exact () =
  let r = Regex.compile "ab+" in
  check bool_t "exact hit" true (Regex.matches_exact r "abbb");
  check bool_t "exact miss (prefix junk)" false (Regex.matches_exact r "xabbb");
  check bool_t "exact miss (suffix junk)" false (Regex.matches_exact r "abbbx")

let test_regex_no_blowup () =
  (* (a+)+b against aaaa...a! is exponential for backtrackers; the NFA
     simulation must stay linear. *)
  let r = Regex.compile "(a+)+b" in
  let input = String.make 50 'a' ^ "!" in
  let t0 = Unix.gettimeofday () in
  check bool_t "no match" false (Regex.matches r input);
  check bool_t "fast" true (Unix.gettimeofday () -. t0 < 1.0)

let test_regex_source () =
  check string_t "source preserved" "^a(b|c)$" (Regex.source (Regex.compile "^a(b|c)$"))

(* Property: compare the NFA engine against a naive reference matcher
   over a structurally generated pattern AST (alphabet {a,b}). *)
type rx = Chr of char | Seq of rx * rx | Alt of rx * rx | Star of rx

let rec rx_to_string = function
  | Chr c -> String.make 1 c
  | Seq (a, b) -> rx_to_string a ^ rx_to_string b
  | Alt (a, b) -> "(" ^ rx_to_string a ^ "|" ^ rx_to_string b ^ ")"
  | Star a -> "(" ^ rx_to_string a ^ ")*"

exception Ref_gave_up

(* [ref_match rx s i k]: can rx consume a prefix of s starting at i,
   continuing with [k] on the rest?  [depth] bounds the backtracking;
   when the bound trips, the oracle abstains (Ref_gave_up) rather than
   mis-reporting "no match". *)
let ref_match_exact rx s =
  let n = String.length s in
  let rec go rx i depth k =
    if depth > 400 then raise Ref_gave_up;
    match rx with
    | Chr c -> i < n && s.[i] = c && k (i + 1)
    | Seq (a, b) -> go a i (depth + 1) (fun j -> go b j (depth + 1) k)
    | Alt (a, b) -> go a i (depth + 1) k || go b i (depth + 1) k
    | Star a ->
      k i
      || go a i (depth + 1) (fun j -> if j > i then go (Star a) j (depth + 1) k else false)
  in
  go rx 0 0 (fun i -> i = n)

let gen_rx =
  QCheck2.Gen.(
    sized @@ fix (fun self size ->
        if size = 0 then map (fun b -> Chr (if b then 'a' else 'b')) bool
        else
          oneof
            [
              map (fun b -> Chr (if b then 'a' else 'b')) bool;
              map2 (fun a b -> Seq (a, b)) (self (size / 2)) (self (size / 2));
              map2 (fun a b -> Alt (a, b)) (self (size / 2)) (self (size / 2));
              map (fun a -> Star a) (self (size / 2));
            ]))

let gen_ab_string =
  QCheck2.Gen.(map (fun l -> String.concat "" (List.map (fun b -> if b then "a" else "b") l))
                 (list_size (int_bound 8) bool))

let prop_regex_vs_reference =
  qtest ~count:400 "regex: NFA agrees with a naive reference matcher"
    QCheck2.Gen.(pair gen_rx gen_ab_string)
    (fun (rx, s) ->
      let pattern = rx_to_string rx in
      let compiled = Regex.compile pattern in
      match ref_match_exact rx s with
      | expected -> Regex.matches_exact compiled s = expected
      | exception Ref_gave_up -> true)

(* ---------------- Value ---------------- *)

let test_value_compare_order () =
  let open Value in
  check bool_t "null < bool" true (compare Null (Bool false) < 0);
  check bool_t "int by value" true (compare (Int 1) (Int 2) < 0);
  check bool_t "string order" true (compare (String "a") (String "b") < 0);
  check bool_t "list lexicographic" true (compare (List [ Int 1 ]) (List [ Int 1; Int 2 ]) < 0);
  check bool_t "equal lists" true (equal (List [ Int 1 ]) (List [ Int 1 ]))

let test_value_numeric () =
  let open Value in
  check bool_t "int+int" true (equal (Option.get (add_numeric (Int 2) (Int 3))) (Int 5));
  check bool_t "int+float widens" true
    (equal (Option.get (add_numeric (Int 2) (Float 0.5))) (Float 2.5));
  check bool_t "string rejects" true (add_numeric (String "x") (Int 1) = None);
  check bool_t "as_float widens int" true (as_float (Int 2) = Some 2.0);
  check bool_t "as_int strict" true (as_int (Float 2.0) = None)

let gen_value =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n = 0 then
          oneof
            [
              return Value.Null;
              map (fun b -> Value.Bool b) bool;
              map (fun i -> Value.Int i) small_int;
              map (fun f -> Value.Float f) (float_bound_inclusive 100.0);
              map (fun s -> Value.String s) (string_size (int_bound 10));
            ]
        else map (fun l -> Value.List l) (list_size (int_bound 4) (self (n / 2)))))

let prop_value_compare_total =
  qtest "value: compare is antisymmetric" QCheck2.Gen.(pair gen_value gen_value)
    (fun (a, b) -> Value.compare a b = -Value.compare b a)

let prop_value_equal_refl =
  qtest "value: equal is reflexive" gen_value (fun v -> Value.equal v v)

(* ---------------- Document ---------------- *)

let test_document_ops () =
  let d = Document.of_fields [ ("b", Value.Int 2); ("a", Value.Int 1) ] in
  check int_t "field count" 2 (Document.field_count d);
  check bool_t "get" true (Document.get d "a" = Some (Value.Int 1));
  check bool_t "mem" true (Document.mem d "b");
  check bool_t "sorted fields" true (List.map fst (Document.fields d) = [ "a"; "b" ]);
  let d2 = Document.set d "c" Value.Null in
  check int_t "set adds" 3 (Document.field_count d2);
  check int_t "original untouched" 2 (Document.field_count d);
  let d3 = Document.remove d2 "a" in
  check bool_t "removed" false (Document.mem d3 "a");
  check bool_t "later binding wins" true
    (Document.get (Document.of_fields [ ("x", Value.Int 1); ("x", Value.Int 2) ]) "x"
    = Some (Value.Int 2))

(* ---------------- Query ---------------- *)

let test_query_validate () =
  check bool_t "good point read" true (Query.validate (Query.point_read "k") = Ok ());
  check bool_t "good grep" true (Query.validate (Query.grep "a+b") = Ok ());
  check bool_t "bad grep regex" true
    (match Query.validate (Query.grep "(((") with Error _ -> true | Ok () -> false);
  check bool_t "bad predicate regex" true
    (match
       Query.validate
         (Query.Select
            {
              from = Query.All;
              where = Query.Field_matches ("f", "[z-a]");
              project = None;
              limit = None;
            })
     with
    | Error _ -> true
    | Ok () -> false);
  check bool_t "negative limit" true
    (match
       Query.validate
         (Query.Select { from = Query.All; where = Query.True; project = None; limit = Some (-1) })
     with
    | Error _ -> true
    | Ok () -> false)

let test_query_cost_class () =
  check bool_t "point" true (Query.cost_class (Query.point_read "k") = `Point);
  check bool_t "prefix scan" true
    (Query.cost_class
       (Query.Select { from = Query.Prefix "p"; where = Query.True; project = None; limit = None })
    = `Scan);
  check bool_t "grep all is full scan" true (Query.cost_class (Query.grep "x") = `Full_scan);
  check bool_t "grep under prefix is scan" true
    (Query.cost_class (Query.grep ~under:"p" "x") = `Scan);
  check bool_t "is_point_read" true (Query.is_point_read (Query.point_read "k"))

(* ---------------- Store + eval fixtures ---------------- *)

let doc fields = Document.of_fields fields

let fixture_store () =
  let s = Store.create () in
  Store.apply s
    (Oplog.Put
       {
         key = "product:001";
         doc =
           doc
             [
               ("name", Value.String "red lamp");
               ("category", Value.String "garden");
               ("price", Value.Float 10.0);
               ("stock", Value.Int 5);
             ];
       });
  Store.apply s
    (Oplog.Put
       {
         key = "product:002";
         doc =
           doc
             [
               ("name", Value.String "blue router");
               ("category", Value.String "electronics");
               ("price", Value.Float 99.0);
               ("stock", Value.Int 2);
             ];
       });
  Store.apply s
    (Oplog.Put
       {
         key = "product:003";
         doc =
           doc
             [
               ("name", Value.String "red kettle");
               ("category", Value.String "kitchen");
               ("price", Value.Float 25.0);
               ("stock", Value.Int 0);
             ];
       });
  Store.apply s
    (Oplog.Put { key = "vendor:acme"; doc = doc [ ("name", Value.String "ACME Corp") ] });
  s

let rows_of result =
  match result with Query_result.Rows rows -> rows | _ -> Alcotest.fail "expected rows"

let agg_of result =
  match result with Query_result.Agg v -> v | _ -> Alcotest.fail "expected aggregate"

(* ---------------- Store ---------------- *)

let test_store_versioning () =
  let s = fixture_store () in
  check int_t "4 writes" 4 (Store.version s);
  check int_t "4 keys" 4 (Store.key_count s);
  Store.apply s (Oplog.Delete { key = "vendor:acme" });
  check int_t "version bumps on delete" 5 (Store.version s);
  check int_t "3 keys" 3 (Store.key_count s);
  Store.apply s (Oplog.Delete { key = "nonexistent" });
  check int_t "no-op delete still bumps" 6 (Store.version s)

let test_store_set_remove_field () =
  let s = fixture_store () in
  Store.apply s (Oplog.Set_field { key = "product:001"; field = "price"; value = Value.Float 12.0 });
  check bool_t "field updated" true
    (Document.get (Option.get (Store.get s "product:001")) "price" = Some (Value.Float 12.0));
  Store.apply s (Oplog.Remove_field { key = "product:001"; field = "stock" });
  check bool_t "field removed" false
    (Document.mem (Option.get (Store.get s "product:001")) "stock");
  Store.apply s (Oplog.Set_field { key = "fresh"; field = "a"; value = Value.Int 1 });
  check bool_t "set_field creates doc" true (Store.mem s "fresh")

let test_store_apply_entry_gap () =
  let s = fixture_store () in
  let v = Store.version s in
  Alcotest.check_raises "gap rejected"
    (Invalid_argument
       (Printf.sprintf "Store.apply_entry: version gap (store at %d, entry %d)" v (v + 2)))
    (fun () ->
      Store.apply_entry s { Oplog.version = v + 2; op = Oplog.Delete { key = "x" } })

let test_store_fold_selector () =
  let s = fixture_store () in
  let keys sel =
    List.rev (Store.fold_selector s sel ~init:[] ~f:(fun acc k _ -> k :: acc))
  in
  check (Alcotest.list string_t) "all"
    [ "product:001"; "product:002"; "product:003"; "vendor:acme" ]
    (keys Query.All);
  check (Alcotest.list string_t) "prefix" [ "product:001"; "product:002"; "product:003" ]
    (keys (Query.Prefix "product:"));
  check (Alcotest.list string_t) "range inclusive" [ "product:001"; "product:002" ]
    (keys (Query.Key_range { lo = "product:001"; hi = "product:002" }));
  check (Alcotest.list string_t) "key" [ "product:002" ] (keys (Query.Key "product:002"));
  check (Alcotest.list string_t) "missing key" [] (keys (Query.Key "nope"))

let test_store_snapshot_restore () =
  let s = fixture_store () in
  let snap = Store.snapshot s in
  Store.apply s (Oplog.Delete { key = "product:001" });
  Store.apply s (Oplog.Delete { key = "product:002" });
  check int_t "mutated" 2 (Store.key_count s - 0 |> fun _ -> Store.key_count s);
  Store.restore s snap;
  check int_t "restored keys" 4 (Store.key_count s);
  check int_t "restored version" 4 (Store.version s)

let test_store_serialization () =
  let s = fixture_store () in
  let bytes = Store.to_bytes s in
  (match Store.of_bytes bytes with
  | Ok s' ->
    check int_t "version preserved" (Store.version s) (Store.version s');
    check int_t "keys preserved" (Store.key_count s) (Store.key_count s');
    check string_t "content hash identical"
      (Secrep_crypto.Hex.encode (Store.content_hash s))
      (Secrep_crypto.Hex.encode (Store.content_hash s'))
  | Error msg -> Alcotest.fail msg);
  check bool_t "garbage rejected" true
    (match Store.of_bytes "not a store" with Error _ -> true | Ok _ -> false);
  check bool_t "truncation rejected" true
    (match Store.of_bytes (String.sub bytes 0 (String.length bytes / 2)) with
    | Error _ -> true
    | Ok _ -> false)

let test_store_content_hash () =
  let a = fixture_store () and b = fixture_store () in
  check string_t "replicas agree" (Secrep_crypto.Hex.encode (Store.content_hash a))
    (Secrep_crypto.Hex.encode (Store.content_hash b));
  Store.apply b (Oplog.Delete { key = "vendor:acme" });
  check bool_t "divergence changes hash" false
    (String.equal (Store.content_hash a) (Store.content_hash b))

(* ---------------- Oplog ---------------- *)

let test_oplog () =
  let log = Oplog.create () in
  check int_t "empty last" 0 (Oplog.last_version log);
  Oplog.append log { Oplog.version = 1; op = Oplog.Delete { key = "a" } };
  Oplog.append log { Oplog.version = 2; op = Oplog.Delete { key = "b" } };
  Oplog.append log { Oplog.version = 5; op = Oplog.Delete { key = "c" } };
  check int_t "length" 3 (Oplog.length log);
  check int_t "last" 5 (Oplog.last_version log);
  check int_t "after 1" 2 (List.length (Oplog.entries_after log 1));
  check int_t "after 5" 0 (List.length (Oplog.entries_after log 5));
  check bool_t "ordered oldest first" true
    (List.map (fun e -> e.Oplog.version) (Oplog.entries_after log 0) = [ 1; 2; 5 ]);
  Alcotest.check_raises "non-monotonic"
    (Invalid_argument "Oplog.append: version must be strictly increasing") (fun () ->
      Oplog.append log { Oplog.version = 4; op = Oplog.Delete { key = "d" } })

(* ---------------- Query_eval ---------------- *)

let test_eval_select_where () =
  let s = fixture_store () in
  let q =
    Query.Select
      {
        from = Query.Prefix "product:";
        where = Query.Field_equals ("category", Value.String "garden");
        project = None;
        limit = None;
      }
  in
  let { Query_eval.result; scanned } = Query_eval.execute_exn s q in
  check int_t "scanned all products" 3 scanned;
  check (Alcotest.list string_t) "matched" [ "product:001" ] (List.map fst (rows_of result))

let test_eval_comparisons () =
  let s = fixture_store () in
  let run where =
    let { Query_eval.result; _ } =
      Query_eval.execute_exn s
        (Query.Select { from = Query.Prefix "product:"; where; project = None; limit = None })
    in
    List.map fst (rows_of result)
  in
  check (Alcotest.list string_t) "less" [ "product:001" ]
    (run (Query.Field_less ("price", Value.Float 20.0)));
  check (Alcotest.list string_t) "greater" [ "product:002"; "product:003" ]
    (run (Query.Field_greater ("price", Value.Float 20.0)));
  check (Alcotest.list string_t) "and" [ "product:003" ]
    (run
       (Query.And
          ( Query.Field_greater ("price", Value.Float 20.0),
            Query.Field_equals ("stock", Value.Int 0) )));
  check (Alcotest.list string_t) "or" [ "product:001"; "product:003" ]
    (run
       (Query.Or
          ( Query.Field_equals ("category", Value.String "garden"),
            Query.Field_equals ("category", Value.String "kitchen") )));
  check (Alcotest.list string_t) "not" [ "product:002"; "product:003" ]
    (run (Query.Not (Query.Field_equals ("category", Value.String "garden"))));
  check (Alcotest.list string_t) "has_field all" [ "product:001"; "product:002"; "product:003" ]
    (run (Query.Has_field "price"));
  check (Alcotest.list string_t) "regex predicate" [ "product:001"; "product:003" ]
    (run (Query.Field_matches ("name", "^red")))

let test_eval_projection_limit () =
  let s = fixture_store () in
  let q =
    Query.Select
      {
        from = Query.Prefix "product:";
        where = Query.True;
        project = Some [ "price"; "ghost" ];
        limit = Some 2;
      }
  in
  let { Query_eval.result; _ } = Query_eval.execute_exn s q in
  let rows = rows_of result in
  check int_t "limited" 2 (List.length rows);
  List.iter
    (fun (_, d) ->
      check bool_t "only price kept" true (Document.mem d "price" && Document.field_count d = 1))
    rows

let test_eval_grep () =
  let s = fixture_store () in
  let { Query_eval.result; _ } = Query_eval.execute_exn s (Query.grep "red") in
  match result with
  | Query_result.Matches ms ->
    check int_t "two reds" 2 (List.length ms);
    List.iter (fun (_, field, _) -> check string_t "in name field" "name" field) ms
  | _ -> Alcotest.fail "expected matches"

let test_eval_aggregates () =
  let s = fixture_store () in
  let run agg =
    agg_of
      (Query_eval.execute_exn s
         (Query.Aggregate { from = Query.Prefix "product:"; where = Query.True; agg }))
        .Query_eval.result
  in
  check bool_t "count" true (Value.equal (run Query.Count) (Value.Int 3));
  check bool_t "sum" true (Value.equal (run (Query.Sum "price")) (Value.Float 134.0));
  check bool_t "min" true (Value.equal (run (Query.Min "price")) (Value.Float 10.0));
  check bool_t "max" true (Value.equal (run (Query.Max "stock")) (Value.Int 5));
  check bool_t "avg" true
    (match run (Query.Avg "price") with
    | Value.Float f -> Float.abs (f -. (134.0 /. 3.0)) < 1e-9
    | _ -> false)

let test_eval_aggregate_empty_and_missing () =
  let s = Store.create () in
  let run agg =
    agg_of
      (Query_eval.execute_exn s (Query.Aggregate { from = Query.All; where = Query.True; agg }))
        .Query_eval.result
  in
  check bool_t "count empty" true (Value.equal (run Query.Count) (Value.Int 0));
  check bool_t "sum empty is null" true (Value.equal (run (Query.Sum "x")) Value.Null);
  check bool_t "avg empty is null" true (Value.equal (run (Query.Avg "x")) Value.Null);
  let s2 = fixture_store () in
  let { Query_eval.result; _ } =
    Query_eval.execute_exn s2
      (Query.Aggregate { from = Query.Key "vendor:acme"; where = Query.True; agg = Query.Sum "price" })
  in
  check bool_t "missing field sums to null" true (Value.equal (agg_of result) Value.Null)

let test_eval_bad_query () =
  let s = fixture_store () in
  check bool_t "bad regex is Error" true
    (match Query_eval.execute s (Query.grep "(((") with Error _ -> true | Ok _ -> false)

let test_eval_deterministic_across_replicas () =
  let a = fixture_store () and b = fixture_store () in
  let queries =
    [
      Query.point_read "product:002";
      Query.grep "red";
      Query.Aggregate { from = Query.All; where = Query.True; agg = Query.Sum "stock" };
      Query.Select
        { from = Query.Prefix "product:"; where = Query.Has_field "price"; project = None; limit = None };
    ]
  in
  List.iter
    (fun q ->
      let ra = (Query_eval.execute_exn a q).Query_eval.result in
      let rb = (Query_eval.execute_exn b q).Query_eval.result in
      check string_t "identical canonical digests"
        (Secrep_crypto.Hex.encode (Canonical.result_digest ra))
        (Secrep_crypto.Hex.encode (Canonical.result_digest rb)))
    queries

let test_eval_cost_seconds () =
  let c1 = Query_eval.cost_seconds ~scanned:0 ~cost_class:`Point ~per_doc:50e-6 in
  let c2 = Query_eval.cost_seconds ~scanned:1000 ~cost_class:`Full_scan ~per_doc:50e-6 in
  check bool_t "point cheap" true (c1 < 1e-4);
  check bool_t "scan pays per doc" true (c2 > 0.05)

(* ---------------- Canonical ---------------- *)

let test_canonical_distinguishes () =
  let open Query_result in
  let pairs =
    [
      (Rows [], Matches []);
      (Agg (Value.Int 1), Agg (Value.Float 1.0));
      (Agg (Value.String "1"), Agg (Value.Int 1));
      (Rows [ ("k", doc [ ("a", Value.Int 1) ]) ], Rows [ ("k", doc [ ("a", Value.Int 2) ]) ]);
      (Matches [ ("k", "f", "ab") ], Matches [ ("ka", "", "b") |> fun (a, b, c) -> (a, b, c) ]);
    ]
  in
  List.iter
    (fun (a, b) ->
      check bool_t "encodings differ" false
        (String.equal (Canonical.of_result a) (Canonical.of_result b)))
    pairs

let test_canonical_all_query_forms_distinct () =
  (* Each syntactic query form must have a distinct canonical digest:
     the pledge binds "a copy of the request" and two different
     requests must never collide. *)
  let forms =
    [
      Query.point_read "k";
      Query.Select { from = Query.Key "k"; where = Query.True; project = Some []; limit = None };
      Query.Select { from = Query.Key "k"; where = Query.True; project = None; limit = Some 0 };
      Query.Select { from = Query.Prefix "k"; where = Query.True; project = None; limit = None };
      Query.Select
        { from = Query.Key_range { lo = "k"; hi = "k" }; where = Query.True; project = None; limit = None };
      Query.Select { from = Query.All; where = Query.True; project = None; limit = None };
      Query.Select
        { from = Query.All; where = Query.Has_field "k"; project = None; limit = None };
      Query.Select
        { from = Query.All; where = Query.Field_equals ("k", Value.Null); project = None; limit = None };
      Query.Select
        { from = Query.All; where = Query.Not Query.True; project = None; limit = None };
      Query.Select
        { from = Query.All; where = Query.And (Query.True, Query.True); project = None; limit = None };
      Query.Select
        { from = Query.All; where = Query.Or (Query.True, Query.True); project = None; limit = None };
      Query.grep "k";
      Query.grep ~under:"k" "k";
      Query.Aggregate { from = Query.All; where = Query.True; agg = Query.Count };
      Query.Aggregate { from = Query.All; where = Query.True; agg = Query.Sum "k" };
      Query.Aggregate { from = Query.All; where = Query.True; agg = Query.Min "k" };
      Query.Aggregate { from = Query.All; where = Query.True; agg = Query.Max "k" };
      Query.Aggregate { from = Query.All; where = Query.True; agg = Query.Avg "k" };
    ]
  in
  let digests = List.map (fun q -> Secrep_crypto.Hex.encode (Canonical.query_digest q)) forms in
  check int_t "all digests distinct" (List.length forms)
    (List.length (List.sort_uniq String.compare digests))

let test_canonical_query_digest () =
  let q1 = Query.point_read "a" and q2 = Query.point_read "b" in
  check bool_t "query digests differ" false
    (String.equal (Canonical.query_digest q1) (Canonical.query_digest q2));
  check bool_t "same query same digest" true
    (String.equal (Canonical.query_digest q1) (Canonical.query_digest (Query.point_read "a")))

let prop_canonical_value_injective_ish =
  qtest ~count:300 "canonical: distinct values encode distinctly"
    QCheck2.Gen.(pair gen_value gen_value)
    (fun (a, b) ->
      if Value.equal a b then String.equal (Canonical.of_value a) (Canonical.of_value b)
      else not (String.equal (Canonical.of_value a) (Canonical.of_value b)))

(* ---------------- Codec ---------------- *)

let gen_document =
  QCheck2.Gen.(
    map Document.of_fields
      (list_size (int_bound 6) (pair (string_size (int_bound 8)) gen_value)))

let gen_selector =
  QCheck2.Gen.(
    oneof
      [
        return Query.All;
        map (fun k -> Query.Key k) (string_size (int_bound 8));
        map (fun p -> Query.Prefix p) (string_size (int_bound 8));
        map2 (fun lo hi -> Query.Key_range { lo; hi }) (string_size (int_bound 8))
          (string_size (int_bound 8));
      ])

let gen_predicate =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return Query.True;
              map2 (fun f v -> Query.Field_equals (f, v)) (string_size (int_bound 6)) gen_value;
              map2 (fun f v -> Query.Field_less (f, v)) (string_size (int_bound 6)) gen_value;
              map2
                (fun f p -> Query.Field_matches (f, p))
                (string_size (int_bound 6))
                (string_size (int_bound 6));
              map (fun f -> Query.Has_field f) (string_size (int_bound 6));
            ]
        in
        if n = 0 then leaf
        else
          oneof
            [
              leaf;
              map (fun p -> Query.Not p) (self (n / 2));
              map2 (fun a b -> Query.And (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Query.Or (a, b)) (self (n / 2)) (self (n / 2));
            ]))

let gen_query =
  QCheck2.Gen.(
    oneof
      [
        map2
          (fun (from, where) (project, limit) -> Query.Select { from; where; project; limit })
          (pair gen_selector gen_predicate)
          (pair
             (option (list_size (int_bound 4) (string_size (int_bound 6))))
             (option (int_bound 100)));
        map2 (fun from pattern -> Query.Grep { from; pattern }) gen_selector
          (string_size (int_bound 8));
        map2
          (fun (from, where) agg -> Query.Aggregate { from; where; agg })
          (pair gen_selector gen_predicate)
          (oneof
             [
               return Query.Count;
               map (fun f -> Query.Sum f) (string_size (int_bound 6));
               map (fun f -> Query.Min f) (string_size (int_bound 6));
               map (fun f -> Query.Max f) (string_size (int_bound 6));
               map (fun f -> Query.Avg f) (string_size (int_bound 6));
             ]);
      ])

let prop_codec_value_roundtrip =
  qtest ~count:400 "codec: value roundtrip" gen_value (fun v ->
      match Codec.decode_value (Codec.encode_value v) with
      | Ok v' -> Value.equal v v'
      | Error _ -> false)

let prop_codec_document_roundtrip =
  qtest ~count:300 "codec: document roundtrip" gen_document (fun d ->
      match Codec.decode_document (Codec.encode_document d) with
      | Ok d' -> Document.equal d d'
      | Error _ -> false)

let prop_codec_query_roundtrip =
  qtest ~count:300 "codec: query roundtrip" gen_query (fun q ->
      match Codec.decode_query (Codec.encode_query q) with
      | Ok q' -> Query.equal q q'
      | Error _ -> false)

let prop_codec_result_roundtrip =
  qtest ~count:200 "codec: result roundtrip"
    QCheck2.Gen.(
      oneof
        [
          map (fun rows -> Query_result.Rows rows)
            (list_size (int_bound 5) (pair (string_size (int_bound 6)) gen_document));
          map (fun ms -> Query_result.Matches ms)
            (list_size (int_bound 5)
               (triple (string_size (int_bound 6)) (string_size (int_bound 6))
                  (string_size (int_bound 6))));
          map (fun v -> Query_result.Agg v) gen_value;
        ])
    (fun res ->
      match Codec.decode_result (Codec.encode_result res) with
      | Ok res' -> Query_result.equal res res'
      | Error _ -> false)

let prop_codec_never_raises_on_garbage =
  qtest ~count:500 "codec: decoders never raise on random bytes" QCheck2.Gen.string
    (fun s ->
      let safe f = match f s with Ok _ | Error _ -> true | exception _ -> false in
      safe Codec.decode_value && safe Codec.decode_document && safe Codec.decode_query
      && safe Codec.decode_result && safe Codec.decode_entries)

let prop_codec_truncation_fails_cleanly =
  qtest ~count:200 "codec: truncated encodings yield Error" gen_query (fun q ->
      let s = Codec.encode_query q in
      String.length s = 0
      || begin
           let truncated = String.sub s 0 (String.length s - 1) in
           match Codec.decode_query truncated with
           | Error _ -> true
           | Ok q' ->
             (* A shorter valid encoding may exist only if the final
                byte was redundant — never the case for our writer. *)
             Query.equal q q'
         end)

let test_codec_entries_roundtrip () =
  let entries =
    [
      { Oplog.version = 1; op = Oplog.Put { key = "a"; doc = doc [ ("x", Value.Int 1) ] } };
      { Oplog.version = 2; op = Oplog.Delete { key = "a" } };
      { Oplog.version = 3; op = Oplog.Set_field { key = "b"; field = "f"; value = Value.Null } };
      { Oplog.version = 4; op = Oplog.Remove_field { key = "b"; field = "f" } };
    ]
  in
  match Codec.decode_entries (Codec.encode_entries entries) with
  | Ok back ->
    check int_t "length" 4 (List.length back);
    check bool_t "identical" true (entries = back)
  | Error msg -> Alcotest.fail msg

let test_codec_negative_int () =
  match Codec.decode_value (Codec.encode_value (Value.Int (-42))) with
  | Ok v -> check bool_t "negative int survives" true (Value.equal v (Value.Int (-42)))
  | Error msg -> Alcotest.fail msg

(* ---------------- Result_cache ---------------- *)

let test_result_cache_hit_miss () =
  let c = Result_cache.create ~capacity:10 () in
  let q = Query.point_read "k" in
  check bool_t "miss" true (Result_cache.find c ~version:1 q = None);
  Result_cache.store c ~version:1 q ~digest:"d1";
  check bool_t "hit" true (Result_cache.find c ~version:1 q = Some "d1");
  check bool_t "other version misses" true (Result_cache.find c ~version:2 q = None);
  check int_t "hits" 1 (Result_cache.hits c);
  check int_t "misses" 2 (Result_cache.misses c);
  check bool_t "hit rate" true (Float.abs (Result_cache.hit_rate c -. (1.0 /. 3.0)) < 1e-9)

let test_result_cache_lru () =
  let c = Result_cache.create ~capacity:3 () in
  let q i = Query.point_read (string_of_int i) in
  Result_cache.store c ~version:1 (q 1) ~digest:"d1";
  Result_cache.store c ~version:1 (q 2) ~digest:"d2";
  Result_cache.store c ~version:1 (q 3) ~digest:"d3";
  (* touch q1 so q2 is the oldest *)
  ignore (Result_cache.find c ~version:1 (q 1));
  Result_cache.store c ~version:1 (q 4) ~digest:"d4";
  check int_t "capacity held" 3 (Result_cache.size c);
  check bool_t "q2 evicted" true (Result_cache.find c ~version:1 (q 2) = None);
  check bool_t "q1 kept" true (Result_cache.find c ~version:1 (q 1) = Some "d1");
  check bool_t "q4 present" true (Result_cache.find c ~version:1 (q 4) = Some "d4")

let test_result_cache_restore_updates () =
  (* Regression: [store] on an existing key used to be a silent no-op,
     keeping the stale digest and the stale recency. *)
  let c = Result_cache.create ~capacity:10 () in
  let q = Query.point_read "k" in
  Result_cache.store c ~version:1 q ~digest:"old";
  Result_cache.store c ~version:1 q ~digest:"new";
  check int_t "still one entry" 1 (Result_cache.size c);
  check bool_t "digest updated" true (Result_cache.find c ~version:1 q = Some "new")

let test_result_cache_restore_refreshes_recency () =
  let c = Result_cache.create ~capacity:3 () in
  let q i = Query.point_read (string_of_int i) in
  Result_cache.store c ~version:1 (q 1) ~digest:"d1";
  Result_cache.store c ~version:1 (q 2) ~digest:"d2";
  Result_cache.store c ~version:1 (q 3) ~digest:"d3";
  (* Re-store q1: it must become the most recent, leaving q2 oldest. *)
  Result_cache.store c ~version:1 (q 1) ~digest:"d1'";
  Result_cache.store c ~version:1 (q 4) ~digest:"d4";
  check int_t "capacity held" 3 (Result_cache.size c);
  check bool_t "q2 evicted, not the re-stored q1" true
    (Result_cache.find c ~version:1 (q 2) = None);
  check bool_t "q1 kept with updated digest" true
    (Result_cache.find c ~version:1 (q 1) = Some "d1'");
  check bool_t "q4 present" true (Result_cache.find c ~version:1 (q 4) = Some "d4")

(* ---------------- Query_key ---------------- *)

(* One canonical-digest helper feeds both memoization layers: if these
   ever disagree, the dedup index would settle pledges against digests
   the result cache never produced. *)
let test_query_key_matches_canonical () =
  let queries =
    [
      Query.point_read "k";
      Query.point_read "";
      Query.Select
        {
          from = Query.All;
          where = Query.Field_greater ("stock", Value.Int 3);
          project = None;
          limit = None;
        };
    ]
  in
  List.iter
    (fun q ->
      check string_t "encoding = Canonical.of_query" (Canonical.of_query q)
        (Query_key.of_query q);
      check string_t "digest = Canonical.query_digest" (Canonical.query_digest q)
        (Query_key.digest q);
      check bool_t "versioned pairs version with the encoding" true
        (Query_key.versioned ~version:7 q = (7, Canonical.of_query q)))
    queries

let test_query_key_shared_by_cache_and_index () =
  (* The same (version, query) stored in both layers is found by both;
     a different version or query is found by neither. *)
  let cache = Result_cache.create ~capacity:10 () in
  let index = Audit_index.create () in
  let q = Query.point_read "k" in
  Result_cache.store cache ~version:3 q ~digest:"d";
  Audit_index.store index ~version:3 q ~digest:"d";
  check bool_t "cache hit" true (Result_cache.find cache ~version:3 q = Some "d");
  check bool_t "index hit" true (Audit_index.find index ~version:3 q = Some "d");
  check bool_t "cache: version mismatch misses" true
    (Result_cache.find cache ~version:4 q = None);
  check bool_t "index: version mismatch misses" true
    (Audit_index.find index ~version:4 q = None);
  let q' = Query.point_read "other" in
  check bool_t "cache: query mismatch misses" true
    (Result_cache.find cache ~version:3 q' = None);
  check bool_t "index: query mismatch misses" true
    (Audit_index.find index ~version:3 q' = None)

(* ---------------- Audit_index ---------------- *)

let test_audit_index_hits_distinct () =
  let idx = Audit_index.create () in
  let q i = Query.point_read (string_of_int i) in
  check bool_t "empty miss" true (Audit_index.find idx ~version:1 (q 1) = None);
  Audit_index.store idx ~version:1 (q 1) ~digest:"d1";
  Audit_index.store idx ~version:1 (q 2) ~digest:"d2";
  check int_t "two distinct re-executions" 2 (Audit_index.distinct idx);
  check bool_t "hit q1" true (Audit_index.find idx ~version:1 (q 1) = Some "d1");
  check bool_t "hit q1 again" true (Audit_index.find idx ~version:1 (q 1) = Some "d1");
  check bool_t "hit q2" true (Audit_index.find idx ~version:1 (q 2) = Some "d2");
  check int_t "three hits" 3 (Audit_index.hits idx);
  (* A re-store of an existing key is ignored: within a version the
     honest digest cannot change. *)
  Audit_index.store idx ~version:1 (q 1) ~digest:"clobber";
  check int_t "re-store not counted distinct" 2 (Audit_index.distinct idx);
  check bool_t "original digest kept" true
    (Audit_index.find idx ~version:1 (q 1) = Some "d1");
  check bool_t "hit rate = 4/(4+2)" true
    (Float.abs (Audit_index.hit_rate idx -. (4.0 /. 6.0)) < 1e-9)

let test_audit_index_drop_version () =
  let idx = Audit_index.create () in
  let q i = Query.point_read (string_of_int i) in
  Audit_index.store idx ~version:1 (q 1) ~digest:"a";
  Audit_index.store idx ~version:1 (q 2) ~digest:"b";
  Audit_index.store idx ~version:2 (q 1) ~digest:"c";
  check int_t "three live entries" 3 (Audit_index.size idx);
  Audit_index.drop_version idx ~version:1;
  check int_t "version 1 gone" 1 (Audit_index.size idx);
  check bool_t "v1 entries dropped" true (Audit_index.find idx ~version:1 (q 1) = None);
  check bool_t "v2 entry survives" true (Audit_index.find idx ~version:2 (q 1) = Some "c");
  (* Dropping an absent version is a no-op. *)
  Audit_index.drop_version idx ~version:9;
  check int_t "no-op drop" 1 (Audit_index.size idx);
  (* Counters describe history, not liveness: drop does not rewind them. *)
  check int_t "distinct unchanged by drop" 3 (Audit_index.distinct idx)

(* ---------------- Regex corner cases ---------------- *)

let test_regex_empty_pattern () =
  (* An empty pattern matches everywhere, like grep "". *)
  check bool_t "empty vs empty" true (m "" "");
  check bool_t "empty vs text" true (m "" "anything");
  check bool_t "empty alternative" true (m "(|a)b" "b")

let test_regex_anchor_corners () =
  check bool_t "^$ matches empty" true (m "^$" "");
  check bool_t "^$ rejects non-empty" false (m "^$" "x");
  check bool_t "bare ^ matches anything" true (m "^" "abc");
  check bool_t "bare $ matches anything" true (m "$" "abc");
  check bool_t "^ anchors the search" false (m "^bc" "abc");
  check bool_t "$ anchors the search" false (m "ab$" "abc");
  check bool_t "both anchors" true (m "^abc$" "abc");
  check bool_t "both anchors reject superstring" false (m "^abc$" "xabcx")

let test_regex_star_backtracking () =
  (* Patterns where a greedy/backtracking matcher must give back
     characters; the NFA simulation should just get these right. *)
  check bool_t "a*a needs give-back" true (m "^a*a$" "aaa");
  check bool_t "a*ab" true (m "^a*ab$" "aaab");
  check bool_t "(a|ab)*c" true (m "^(a|ab)*c$" "aababc");
  check bool_t ".*b finds last b" true (m "^.*b$" "abab");
  check bool_t "a*a*a matches single a" true (m "^a*a*a$" "a");
  check bool_t "star of empty-capable group terminates" true (m "^(a?)*b$" "aab")

let test_regex_class_edges () =
  check bool_t "literal - at end" true (m "^[a-]$" "-");
  check bool_t "literal - at start" true (m "^[-a]$" "-");
  check bool_t "single-char range" true (m "^[a-a]$" "a");
  check bool_t "negated class" false (m "^[^a-c]$" "b");
  check bool_t "negated class hit" true (m "^[^a-c]$" "z");
  check bool_t "class with escape" true (m "^[\\]]$" "]");
  check bool_t "caret mid-class is literal" true (m "^[a^]$" "^");
  let parse_fails pattern =
    match Regex.compile pattern with
    | (_ : Regex.t) -> false
    | exception Regex.Parse_error _ -> true
  in
  check bool_t "unterminated class" true (parse_fails "[ab");
  check bool_t "reversed range" true (parse_fails "[z-a]")

(* ---------------- Codec adversarial round-trips ---------------- *)

let test_codec_roundtrip_adversarial_values () =
  let deep =
    (* 200 levels of list nesting: decoders must not overflow or
       misparse length prefixes. *)
    let rec nest n v = if n = 0 then v else nest (n - 1) (Value.List [ v ]) in
    nest 200 (Value.String "core")
  in
  let gnarly =
    [
      deep;
      Value.String (String.init 256 Char.chr);
      Value.String "";
      Value.List [];
      Value.List [ Value.Null; Value.Bool false; Value.List [ Value.Int min_int ] ];
      Value.Int max_int;
      Value.Int min_int;
      Value.Float Float.nan;
      Value.Float Float.infinity;
      Value.Float (-0.0);
    ]
  in
  List.iter
    (fun v ->
      match Codec.decode_value (Codec.encode_value v) with
      | Ok v' ->
        check bool_t "value round-trips" true (Value.equal v v' || Value.compare v v' = 0)
      | Error e -> Alcotest.failf "decode failed: %s" e)
    gnarly

let test_codec_roundtrip_adversarial_strings () =
  (* Keys and fields that look like framing: NULs, length-prefix-ish
     bytes, very long runs. *)
  let keys = [ "\x00"; "\x00\x01\x02"; String.make 300 '\xff'; "\127\128"; "" ] in
  List.iter
    (fun key ->
      let op = Oplog.Set_field { key; field = key; value = Value.String key } in
      match Codec.decode_op (Codec.encode_op op) with
      | Ok op' -> check bool_t "op round-trips" true (op = op')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    keys

let test_codec_rejects_trailing_garbage () =
  let s = Codec.encode_value (Value.Int 7) in
  (match Codec.decode_value (s ^ "\x00") with
  | Ok _ -> Alcotest.fail "accepted trailing garbage"
  | Error _ -> ());
  match Codec.decode_value "" with
  | Ok _ -> Alcotest.fail "accepted empty input"
  | Error _ -> ()

let test_codec_reader_truncation () =
  let w = Codec.Writer.create () in
  Codec.Writer.varint w 300;
  Codec.Writer.bytes w "payload";
  let s = Codec.Writer.contents w in
  (* Every strict prefix must decode to Error, never raise or loop. *)
  for len = 0 to String.length s - 1 do
    match
      Codec.Reader.run (String.sub s 0 len) (fun r ->
          let n = Codec.Reader.varint r in
          let b = Codec.Reader.bytes r in
          (n, b))
    with
    | Ok _ -> Alcotest.failf "prefix of length %d decoded" len
    | Error _ -> ()
  done;
  match
    Codec.Reader.run s (fun r ->
        let n = Codec.Reader.varint r in
        let b = Codec.Reader.bytes r in
        (n, b))
  with
  | Ok (300, "payload") -> ()
  | Ok _ -> Alcotest.fail "wrong decode"
  | Error e -> Alcotest.failf "full input failed: %s" e

let () =
  Alcotest.run "secrep_store"
    [
      ( "regex",
        [
          Alcotest.test_case "literals" `Quick test_regex_literals;
          Alcotest.test_case "dot/star/plus/opt" `Quick test_regex_dot_star_plus_opt;
          Alcotest.test_case "classes" `Quick test_regex_classes;
          Alcotest.test_case "alternation and groups" `Quick test_regex_alternation_groups;
          Alcotest.test_case "anchors" `Quick test_regex_anchors;
          Alcotest.test_case "escapes" `Quick test_regex_escapes;
          Alcotest.test_case "parse errors" `Quick test_regex_parse_errors;
          Alcotest.test_case "matches_exact" `Quick test_regex_matches_exact;
          Alcotest.test_case "no exponential blow-up" `Quick test_regex_no_blowup;
          Alcotest.test_case "source" `Quick test_regex_source;
          Alcotest.test_case "empty pattern" `Quick test_regex_empty_pattern;
          Alcotest.test_case "anchor corners" `Quick test_regex_anchor_corners;
          Alcotest.test_case "star give-back" `Quick test_regex_star_backtracking;
          Alcotest.test_case "class edges" `Quick test_regex_class_edges;
          prop_regex_vs_reference;
        ] );
      ( "value",
        [
          Alcotest.test_case "compare order" `Quick test_value_compare_order;
          Alcotest.test_case "numeric" `Quick test_value_numeric;
          prop_value_compare_total;
          prop_value_equal_refl;
        ] );
      ("document", [ Alcotest.test_case "operations" `Quick test_document_ops ]);
      ( "query",
        [
          Alcotest.test_case "validate" `Quick test_query_validate;
          Alcotest.test_case "cost class" `Quick test_query_cost_class;
        ] );
      ( "store",
        [
          Alcotest.test_case "versioning" `Quick test_store_versioning;
          Alcotest.test_case "set/remove field" `Quick test_store_set_remove_field;
          Alcotest.test_case "apply_entry gap" `Quick test_store_apply_entry_gap;
          Alcotest.test_case "fold_selector" `Quick test_store_fold_selector;
          Alcotest.test_case "snapshot/restore" `Quick test_store_snapshot_restore;
          Alcotest.test_case "serialization roundtrip" `Quick test_store_serialization;
          Alcotest.test_case "content hash" `Quick test_store_content_hash;
        ] );
      ("oplog", [ Alcotest.test_case "append/after" `Quick test_oplog ]);
      ( "query_eval",
        [
          Alcotest.test_case "select + where" `Quick test_eval_select_where;
          Alcotest.test_case "comparison predicates" `Quick test_eval_comparisons;
          Alcotest.test_case "projection + limit" `Quick test_eval_projection_limit;
          Alcotest.test_case "grep" `Quick test_eval_grep;
          Alcotest.test_case "aggregates" `Quick test_eval_aggregates;
          Alcotest.test_case "aggregates: empty/missing" `Quick
            test_eval_aggregate_empty_and_missing;
          Alcotest.test_case "bad query" `Quick test_eval_bad_query;
          Alcotest.test_case "replica determinism" `Quick test_eval_deterministic_across_replicas;
          Alcotest.test_case "cost model" `Quick test_eval_cost_seconds;
        ] );
      ( "canonical",
        [
          Alcotest.test_case "distinguishes results" `Quick test_canonical_distinguishes;
          Alcotest.test_case "all query forms distinct" `Quick
            test_canonical_all_query_forms_distinct;
          Alcotest.test_case "query digests" `Quick test_canonical_query_digest;
          prop_canonical_value_injective_ish;
        ] );
      ( "query_key",
        [
          Alcotest.test_case "matches canonical encoding" `Quick
            test_query_key_matches_canonical;
          Alcotest.test_case "shared by cache and index" `Quick
            test_query_key_shared_by_cache_and_index;
        ] );
      ( "audit_index",
        [
          Alcotest.test_case "hits and distinct counters" `Quick
            test_audit_index_hits_distinct;
          Alcotest.test_case "drop_version" `Quick test_audit_index_drop_version;
        ] );
      ( "codec",
        [
          prop_codec_value_roundtrip;
          prop_codec_document_roundtrip;
          prop_codec_query_roundtrip;
          prop_codec_result_roundtrip;
          prop_codec_never_raises_on_garbage;
          prop_codec_truncation_fails_cleanly;
          Alcotest.test_case "entries roundtrip" `Quick test_codec_entries_roundtrip;
          Alcotest.test_case "negative int" `Quick test_codec_negative_int;
          Alcotest.test_case "adversarial values" `Quick test_codec_roundtrip_adversarial_values;
          Alcotest.test_case "adversarial strings" `Quick
            test_codec_roundtrip_adversarial_strings;
          Alcotest.test_case "trailing garbage" `Quick test_codec_rejects_trailing_garbage;
          Alcotest.test_case "reader truncation" `Quick test_codec_reader_truncation;
        ] );
      ( "result_cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_result_cache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_result_cache_lru;
          Alcotest.test_case "re-store updates digest" `Quick test_result_cache_restore_updates;
          Alcotest.test_case "re-store refreshes recency" `Quick
            test_result_cache_restore_refreshes_recency;
        ] );
    ]
