(* Tests for the crypto substrate: hash functions against FIPS/RFC
   vectors, bignum arithmetic laws (unit + property), primality, RSA,
   Merkle trees, the PRNG and the signature-scheme wrapper. *)

open Secrep_crypto

let check = Alcotest.check
let string_t = Alcotest.string
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------------- SHA-1 ---------------- *)

let sha1_vectors =
  [
    ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d");
    ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1" );
    ("The quick brown fox jumps over the lazy dog", "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
  ]

let test_sha1_vectors () =
  List.iter
    (fun (msg, expected) -> check string_t ("sha1 of " ^ msg) expected (Sha1.hex_digest msg))
    sha1_vectors

let test_sha1_million_a () =
  let msg = String.make 1_000_000 'a' in
  check string_t "sha1 of 10^6 a's" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.hex_digest msg)

let test_sha1_length () = check int_t "digest size" 20 (String.length (Sha1.digest "x"))

let test_sha1_block_boundaries () =
  (* Messages straddling the 55/56/63/64/65-byte padding boundaries
     must match one-shot hashing of the same bytes. *)
  List.iter
    (fun n ->
      let msg = String.init n (fun i -> Char.chr (i land 0xff)) in
      let ctx = Sha1.init () in
      String.iter (fun c -> Sha1.feed ctx (String.make 1 c)) msg;
      check string_t
        (Printf.sprintf "incremental vs one-shot at %d bytes" n)
        (Hex.encode (Sha1.digest msg))
        (Hex.encode (Sha1.finalize ctx)))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 127; 128; 129; 1000 ]

let prop_sha1_incremental =
  qtest "sha1: arbitrary chunking equals one-shot"
    QCheck2.Gen.(pair string (int_bound 7))
    (fun (msg, chunk0) ->
      let chunk = chunk0 + 1 in
      let ctx = Sha1.init () in
      let n = String.length msg in
      let rec go i =
        if i < n then begin
          let len = min chunk (n - i) in
          Sha1.feed ctx (String.sub msg i len);
          go (i + len)
        end
      in
      go 0;
      String.equal (Sha1.finalize ctx) (Sha1.digest msg))

(* ---------------- SHA-256 ---------------- *)

let sha256_vectors =
  [
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (msg, expected) ->
      check string_t ("sha256 of " ^ msg) expected (Sha256.hex_digest msg))
    sha256_vectors

let test_sha256_length () = check int_t "digest size" 32 (String.length (Sha256.digest "x"))

let prop_sha256_incremental =
  qtest "sha256: arbitrary chunking equals one-shot"
    QCheck2.Gen.(pair string (int_bound 7))
    (fun (msg, chunk0) ->
      let chunk = chunk0 + 1 in
      let ctx = Sha256.init () in
      let n = String.length msg in
      let rec go i =
        if i < n then begin
          let len = min chunk (n - i) in
          Sha256.feed ctx (String.sub msg i len);
          go (i + len)
        end
      in
      go 0;
      String.equal (Sha256.finalize ctx) (Sha256.digest msg))

(* ---------------- HMAC ---------------- *)

let test_hmac_rfc4231_case1 () =
  let key = String.make 20 '\x0b' in
  check string_t "hmac-sha256 case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.hex_mac ~hash:Hmac.Sha256 ~key "Hi There")

let test_hmac_rfc4231_case2 () =
  check string_t "hmac-sha256 case 2 (short key)"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.hex_mac ~hash:Hmac.Sha256 ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_rfc4231_case3 () =
  let key = String.make 20 '\xaa' in
  let msg = String.make 50 '\xdd' in
  check string_t "hmac-sha256 case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.hex_mac ~hash:Hmac.Sha256 ~key msg)

let test_hmac_long_key () =
  (* Keys longer than the block size are hashed first; RFC 4231 case 6. *)
  let key = String.make 131 '\xaa' in
  check string_t "hmac-sha256 long key"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.hex_mac ~hash:Hmac.Sha256 ~key "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_sha1 () =
  (* RFC 2202 case 1. *)
  let key = String.make 20 '\x0b' in
  check string_t "hmac-sha1" "b617318655057264e28bc0b6fb378c8ef146be00"
    (Hmac.hex_mac ~hash:Hmac.Sha1 ~key "Hi There")

(* The full RFC 2202 §3 HMAC-SHA1 table (cases 2-7; case 1 above). *)
let hmac_sha1_rfc2202 =
  [
    ("case 2", "Jefe", "what do ya want for nothing?", "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    ("case 3", String.make 20 '\xaa', String.make 50 '\xdd', "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
    ( "case 4",
      String.init 25 (fun i -> Char.chr (i + 1)),
      String.make 50 '\xcd',
      "4c9007f4026250c6bc8414f9bf50c86c2d7235da" );
    ("case 5", String.make 20 '\x0c', "Test With Truncation", "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04");
    ( "case 6",
      String.make 80 '\xaa',
      "Test Using Larger Than Block-Size Key - Hash Key First",
      "aa4ae5e15272d00e95705637ce8a3b55ed402112" );
    ( "case 7",
      String.make 80 '\xaa',
      "Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data",
      "e8e99d0f45237d786d6bbaa7965c7808bbff1a91" );
  ]

let test_hmac_sha1_rfc2202 () =
  List.iter
    (fun (name, key, msg, expected) ->
      check string_t ("hmac-sha1 " ^ name) expected (Hmac.hex_mac ~hash:Hmac.Sha1 ~key msg))
    hmac_sha1_rfc2202

(* The schedule cache must be invisible: a reused schedule, the cached
   [mac], and a fresh schedule all agree with the RFC 2202 vectors. *)
let test_hmac_schedule_rfc2202 () =
  List.iter
    (fun (name, key, msg, expected) ->
      let sched = Hmac.schedule ~hash:Hmac.Sha1 ~key in
      check string_t ("schedule " ^ name) expected (Hex.encode (Hmac.mac_with sched msg));
      check string_t ("schedule reused " ^ name) expected (Hex.encode (Hmac.mac_with sched msg));
      check string_t ("cached mac " ^ name) expected (Hmac.hex_mac ~hash:Hmac.Sha1 ~key msg))
    (("case 1", String.make 20 '\x0b', "Hi There", "b617318655057264e28bc0b6fb378c8ef146be00")
    :: hmac_sha1_rfc2202)

let prop_hmac_schedule_equiv =
  qtest ~count:200 "hmac: cached mac = fresh-schedule mac, both hashes"
    QCheck2.Gen.(triple bool string string)
    (fun (use_sha1, key, msg) ->
      let hash = if use_sha1 then Hmac.Sha1 else Hmac.Sha256 in
      String.equal (Hmac.mac ~hash ~key msg) (Hmac.mac_with (Hmac.schedule ~hash ~key) msg))

let test_hmac_schedule_interleaved () =
  (* One schedule serving different messages out of order must behave
     like independent one-shot MACs (the copies really are isolated). *)
  let key = "interleave-key" in
  let sched = Hmac.schedule ~hash:Hmac.Sha256 ~key in
  let msgs = [ "a"; String.make 200 'b'; ""; "a" ] in
  let first = List.map (fun m -> Hmac.mac_with sched m) msgs in
  let second = List.map (fun m -> Hmac.mac ~hash:Hmac.Sha256 ~key m) msgs in
  List.iter2 (fun a b -> check string_t "interleaved" (Hex.encode b) (Hex.encode a)) first second

let test_const_time_eq () =
  check bool_t "equal" true (Hmac.equal_const_time "abcd" "abcd");
  check bool_t "different" false (Hmac.equal_const_time "abcd" "abce");
  check bool_t "length mismatch" false (Hmac.equal_const_time "abc" "abcd");
  check bool_t "empty" true (Hmac.equal_const_time "" "")

(* ---------------- Hex ---------------- *)

let test_hex_known () =
  check string_t "encode" "00ff10" (Hex.encode "\x00\xff\x10");
  check string_t "decode" "\x00\xff\x10" (Hex.decode "00ff10");
  check string_t "decode uppercase" "\xab" (Hex.decode "AB")

let test_hex_errors () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hex.decode: bad digit") (fun () ->
      ignore (Hex.decode "zz"))

let prop_hex_roundtrip =
  qtest "hex: decode (encode s) = s" QCheck2.Gen.string (fun s ->
      String.equal (Hex.decode (Hex.encode s)) s)

(* ---------------- Bignum ---------------- *)

let bn = Bignum.of_decimal

let test_bignum_basics () =
  check bool_t "zero is zero" true (Bignum.is_zero Bignum.zero);
  check bool_t "one is not zero" false (Bignum.is_zero Bignum.one);
  check string_t "zero prints" "0" (Bignum.to_decimal Bignum.zero);
  check int_t "of_int roundtrip" 123456789 (Option.get (Bignum.to_int_opt (Bignum.of_int 123456789)));
  check bool_t "is_even 0" true (Bignum.is_even Bignum.zero);
  check bool_t "is_even 2" true (Bignum.is_even Bignum.two);
  check bool_t "is_even 1" false (Bignum.is_even Bignum.one)

let test_bignum_of_int_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Bignum.of_int: negative") (fun () ->
      ignore (Bignum.of_int (-1)))

let test_bignum_known_mul () =
  check string_t "big multiplication"
    "121932631137021795226185032733622923332237463801111263526900"
    (Bignum.to_decimal
       (Bignum.mul
          (bn "123456789012345678901234567890")
          (bn "987654321098765432109876543210")))

let test_bignum_known_div () =
  let q, r = Bignum.divmod (bn "1000000000000000000000000000007") (bn "998244353") in
  check string_t "quotient" "1001758734717330276748" (Bignum.to_decimal q);
  check string_t "remainder" "381795963" (Bignum.to_decimal r)

let test_bignum_div_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bignum.divmod Bignum.one Bignum.zero))

let test_bignum_sub_underflow () =
  Alcotest.check_raises "underflow" (Invalid_argument "Bignum.sub: underflow") (fun () ->
      ignore (Bignum.sub Bignum.one Bignum.two))

let test_bignum_bit_ops () =
  check int_t "bit_length 0" 0 (Bignum.bit_length Bignum.zero);
  check int_t "bit_length 1" 1 (Bignum.bit_length Bignum.one);
  check int_t "bit_length 255" 8 (Bignum.bit_length (Bignum.of_int 255));
  check int_t "bit_length 256" 9 (Bignum.bit_length (Bignum.of_int 256));
  check bool_t "testbit" true (Bignum.test_bit (Bignum.of_int 5) 2);
  check bool_t "testbit off" false (Bignum.test_bit (Bignum.of_int 5) 1);
  check string_t "shift_left across limbs" (Bignum.to_decimal (Bignum.mul (bn "12345678901234567890") (bn "4294967296")))
    (Bignum.to_decimal (Bignum.shift_left (bn "12345678901234567890") 32));
  check string_t "shift_right inverse" "12345678901234567890"
    (Bignum.to_decimal (Bignum.shift_right (Bignum.shift_left (bn "12345678901234567890") 57) 57))

let test_bignum_mod_exp_known () =
  (* 5^117 mod 19 = 1 (Fermat: 5^18 = 1, 117 = 6*18+9, 5^9 mod 19 = 1) *)
  check string_t "mod_exp small" "1"
    (Bignum.to_decimal
       (Bignum.mod_exp ~base:(Bignum.of_int 5) ~exp:(Bignum.of_int 117)
          ~modulus:(Bignum.of_int 19)));
  check string_t "mod_exp zero exponent" "1"
    (Bignum.to_decimal
       (Bignum.mod_exp ~base:(bn "987654321") ~exp:Bignum.zero ~modulus:(bn "1000000007")))

let test_bignum_mod_inv_known () =
  (match Bignum.mod_inv (Bignum.of_int 3) (Bignum.of_int 7) with
  | Some x -> check string_t "3^-1 mod 7" "5" (Bignum.to_decimal x)
  | None -> Alcotest.fail "expected inverse");
  check bool_t "no inverse when not coprime" true (Bignum.mod_inv (Bignum.of_int 4) (Bignum.of_int 8) = None)

let test_bignum_bytes_roundtrip () =
  let v = bn "123456789123456789123456789" in
  check string_t "bytes roundtrip" (Bignum.to_decimal v)
    (Bignum.to_decimal (Bignum.of_bytes_be (Bignum.to_bytes_be v)));
  check int_t "padded length" 32 (String.length (Bignum.to_bytes_be ~length:32 v));
  Alcotest.check_raises "too large for length"
    (Invalid_argument "Bignum.to_bytes_be: value too large") (fun () ->
      ignore (Bignum.to_bytes_be ~length:2 v))

let test_bignum_hex () =
  check string_t "to_hex" "ff" (Bignum.to_hex (Bignum.of_int 255));
  check string_t "of_hex" "255" (Bignum.to_decimal (Bignum.of_hex "ff"));
  check string_t "hex zero" "0" (Bignum.to_hex Bignum.zero)

(* Generator for bignums of varying sizes via decimal digit strings. *)
let gen_bignum =
  QCheck2.Gen.(
    map
      (fun digits ->
        let s = String.concat "" (List.map string_of_int digits) in
        if s = "" then Bignum.zero else bn s)
      (list_size (int_range 1 40) (int_bound 9)))

let gen_bignum_pos =
  QCheck2.Gen.map (fun v -> Bignum.add v Bignum.one) gen_bignum

let prop_add_sub =
  qtest "bignum: (a + b) - b = a" QCheck2.Gen.(pair gen_bignum gen_bignum) (fun (a, b) ->
      Bignum.equal (Bignum.sub (Bignum.add a b) b) a)

let prop_add_commutes =
  qtest "bignum: a + b = b + a" QCheck2.Gen.(pair gen_bignum gen_bignum) (fun (a, b) ->
      Bignum.equal (Bignum.add a b) (Bignum.add b a))

let prop_mul_commutes =
  qtest "bignum: a * b = b * a" QCheck2.Gen.(pair gen_bignum gen_bignum) (fun (a, b) ->
      Bignum.equal (Bignum.mul a b) (Bignum.mul b a))

let prop_mul_distributes =
  qtest "bignum: a*(b+c) = a*b + a*c"
    QCheck2.Gen.(triple gen_bignum gen_bignum gen_bignum)
    (fun (a, b, c) ->
      Bignum.equal
        (Bignum.mul a (Bignum.add b c))
        (Bignum.add (Bignum.mul a b) (Bignum.mul a c)))

let prop_divmod_invariant =
  qtest "bignum: a = (a/b)*b + a mod b, 0 <= r < b"
    QCheck2.Gen.(pair gen_bignum gen_bignum_pos)
    (fun (a, b) ->
      let q, r = Bignum.divmod a b in
      Bignum.equal a (Bignum.add (Bignum.mul q b) r) && Bignum.compare r b < 0)

let prop_decimal_roundtrip =
  qtest "bignum: of_decimal (to_decimal a) = a" gen_bignum (fun a ->
      Bignum.equal (bn (Bignum.to_decimal a)) a)

let prop_hex_roundtrip_bn =
  qtest "bignum: of_hex (to_hex a) = a" gen_bignum (fun a ->
      Bignum.equal (Bignum.of_hex (Bignum.to_hex a)) a)

let prop_bytes_roundtrip_bn =
  qtest "bignum: of_bytes_be (to_bytes_be a) = a" gen_bignum (fun a ->
      Bignum.equal (Bignum.of_bytes_be (Bignum.to_bytes_be a)) a)

let prop_shift_is_mul_pow2 =
  qtest "bignum: a lsl k = a * 2^k"
    QCheck2.Gen.(pair gen_bignum (int_bound 100))
    (fun (a, k) ->
      let pow = Bignum.mod_exp ~base:Bignum.two ~exp:(Bignum.of_int k)
          ~modulus:(Bignum.shift_left Bignum.one 200)
      in
      Bignum.equal (Bignum.shift_left a k) (Bignum.mul a pow))

(* Bias toward all-ones limbs: divisors with a saturated top limb and
   near-miss numerators exercise Knuth D's qhat-correction and add-back
   paths, which uniform random inputs almost never reach. *)
let gen_bignum_hexy =
  QCheck2.Gen.(
    map
      (fun nibbles ->
        let s =
          String.concat ""
            (List.map
               (fun (heavy, d) -> if heavy then "f" else String.make 1 "0123456789abcdef".[d])
               nibbles)
        in
        Bignum.of_hex s)
      (list_size (int_range 1 60) (pair bool (int_bound 15))))

let prop_divmod_adversarial =
  qtest ~count:500 "bignum: divmod invariant on f-heavy operands"
    QCheck2.Gen.(pair gen_bignum_hexy gen_bignum_hexy)
    (fun (a, b) ->
      let b = Bignum.add b Bignum.one in
      let q, r = Bignum.divmod a b in
      Bignum.equal a (Bignum.add (Bignum.mul q b) r) && Bignum.compare r b < 0)

let test_divmod_addback_cases () =
  (* Hand-picked shapes around limb boundaries (26-bit limbs): maximal
     limbs, power-of-two straddles, q = base-1 digits. *)
  let cases =
    [
      (* (2^52 - 1, 2^26 - 1) -> q = 2^26 + 1, r = 0 *)
      ("fffffffffffff", "3ffffff");
      (* all-ones over all-ones, equal length *)
      ("ffffffffffffffffffffffff", "ffffffffffff");
      (* numerator just below divisor * base *)
      ("fffffffffffffffffffffffe", "ffffffffffff");
      ("100000000000000000000000000000000", "ffffffffffffffff");
      ("123456789abcdef0123456789abcdef0", "fedcba9876543210");
    ]
  in
  List.iter
    (fun (ah, bh) ->
      let a = Bignum.of_hex ah and b = Bignum.of_hex bh in
      let q, r = Bignum.divmod a b in
      check bool_t (ah ^ " / " ^ bh ^ " invariant") true
        (Bignum.equal a (Bignum.add (Bignum.mul q b) r) && Bignum.compare r b < 0))
    cases

let prop_compare_total =
  qtest "bignum: compare consistent with sub"
    QCheck2.Gen.(pair gen_bignum gen_bignum)
    (fun (a, b) ->
      match Bignum.compare a b with
      | 0 -> Bignum.equal a b
      | c when c < 0 -> Bignum.compare b a > 0
      | _ -> Bignum.compare b a < 0)

let prop_mod_exp_matches_naive =
  qtest ~count:50 "bignum: mod_exp matches repeated multiplication"
    QCheck2.Gen.(triple (int_bound 1000) (int_bound 12) (int_range 2 1000))
    (fun (base, e, m) ->
      let expected = ref 1 in
      for _ = 1 to e do
        expected := !expected * base mod m
      done;
      let got =
        Bignum.mod_exp ~base:(Bignum.of_int base) ~exp:(Bignum.of_int e)
          ~modulus:(Bignum.of_int m)
      in
      Bignum.to_int_opt got = Some !expected)

let prop_gcd_divides =
  qtest "bignum: gcd divides both" QCheck2.Gen.(pair gen_bignum_pos gen_bignum_pos)
    (fun (a, b) ->
      let g = Bignum.gcd a b in
      Bignum.is_zero (Bignum.rem a g) && Bignum.is_zero (Bignum.rem b g))

let prop_mod_inv_correct =
  qtest "bignum: a * mod_inv a m = 1 (mod m) when coprime"
    QCheck2.Gen.(pair gen_bignum_pos gen_bignum_pos)
    (fun (a, m0) ->
      let m = Bignum.add m0 Bignum.two in
      match Bignum.mod_inv a m with
      | None -> not (Bignum.equal (Bignum.gcd a m) Bignum.one)
      | Some x -> Bignum.equal (Bignum.rem (Bignum.mul (Bignum.rem a m) x) m) (Bignum.rem Bignum.one m))

(* ---------------- Montgomery kernel ---------------- *)

(* Odd moduli > 1 across the shapes the kernel cares about: single-limb
   (26-bit) values, plain multi-limb randoms, f-heavy saturated limbs
   that stress the fused carry chains, and exact-width top-bit-set
   moduli.  Bases are drawn independently, so base >= modulus happens
   routinely. *)
let gen_odd_modulus =
  QCheck2.Gen.(
    oneof
      [
        map (fun v -> Bignum.of_int ((2 * v) + 3)) (int_bound ((1 lsl 25) - 2));
        map
          (fun v -> Bignum.succ (Bignum.shift_left (Bignum.succ v) 1))
          gen_bignum;
        map
          (fun v ->
            let v = Bignum.add v Bignum.two in
            if Bignum.is_even v then Bignum.succ v else v)
          gen_bignum_hexy;
        map2
          (fun bits v ->
            let top = Bignum.shift_left Bignum.one bits in
            let c = Bignum.add top (Bignum.rem v top) in
            if Bignum.is_even c then Bignum.succ c else c)
          (int_range 2 200) gen_bignum;
      ])

let prop_montgomery_vs_schoolbook =
  qtest ~count:300 "bignum: Montgomery mod_exp = schoolbook on random odd moduli"
    QCheck2.Gen.(triple gen_bignum gen_bignum gen_odd_modulus)
    (fun (b, e, m) ->
      Bignum.equal
        (Bignum.mod_exp ~base:b ~exp:e ~modulus:m)
        (Bignum.mod_exp_schoolbook ~base:b ~exp:e ~modulus:m))

let prop_mont_mul_matches =
  qtest ~count:300 "bignum: Mont.mul round-trips to a*b mod m"
    QCheck2.Gen.(triple gen_bignum gen_bignum gen_odd_modulus)
    (fun (a, b, m) ->
      match Bignum.Mont.make m with
      | None -> false (* gen only produces odd moduli > 1 *)
      | Some ctx ->
        let r =
          Bignum.Mont.from_mont ctx
            (Bignum.Mont.mul ctx (Bignum.Mont.to_mont ctx a) (Bignum.Mont.to_mont ctx b))
        in
        Bignum.equal r (Bignum.rem (Bignum.mul a b) m))

let prop_mont_to_from_roundtrip =
  qtest ~count:200 "bignum: from_mont (to_mont a) = a mod m"
    QCheck2.Gen.(pair gen_bignum gen_odd_modulus)
    (fun (a, m) ->
      match Bignum.Mont.make m with
      | None -> false
      | Some ctx ->
        Bignum.equal (Bignum.Mont.from_mont ctx (Bignum.Mont.to_mont ctx a)) (Bignum.rem a m))

let test_mont_edges () =
  check bool_t "even modulus rejected" true (Option.is_none (Bignum.Mont.make (Bignum.of_int 10)));
  check bool_t "modulus one rejected" true (Option.is_none (Bignum.Mont.make Bignum.one));
  check bool_t "zero rejected" true (Option.is_none (Bignum.Mont.make Bignum.zero));
  check string_t "mod_exp with modulus 1 is 0" "0"
    (Bignum.to_decimal
       (Bignum.mod_exp ~base:(Bignum.of_int 7) ~exp:(Bignum.of_int 3) ~modulus:Bignum.one));
  let m = bn "1000000007" in
  let ctx = Option.get (Bignum.Mont.make m) in
  check string_t "Mont.one is 1's residue" "1"
    (Bignum.to_decimal (Bignum.Mont.from_mont ctx (Bignum.Mont.one ctx)));
  check string_t "exp 0 = 1" "1"
    (Bignum.to_decimal (Bignum.Mont.exp ctx ~base:(bn "123456789") ~exp:Bignum.zero));
  let big = bn "123456789123456789123456789" in
  check string_t "exp 1 reduces an oversized base" (Bignum.to_decimal (Bignum.rem big m))
    (Bignum.to_decimal (Bignum.Mont.exp ctx ~base:big ~exp:Bignum.one));
  check string_t "base = 0" "0"
    (Bignum.to_decimal (Bignum.Mont.exp ctx ~base:Bignum.zero ~exp:(Bignum.of_int 5)));
  check string_t "base a multiple of m" "0"
    (Bignum.to_decimal (Bignum.Mont.exp ctx ~base:(Bignum.mul m Bignum.two) ~exp:(Bignum.of_int 5)))

let test_mont_e65537_fast_path () =
  (* The dedicated 16-squarings path must agree with schoolbook on
     moduli of several shapes, including single-limb ones. *)
  let e = Bignum.of_int 65537 in
  List.iter
    (fun (bh, mh) ->
      let b = Bignum.of_hex bh and m = Bignum.of_hex mh in
      let ctx = Option.get (Bignum.Mont.make m) in
      check string_t (Printf.sprintf "%s^65537 mod %s" bh mh)
        (Bignum.to_hex (Bignum.mod_exp_schoolbook ~base:b ~exp:e ~modulus:m))
        (Bignum.to_hex (Bignum.Mont.exp ctx ~base:b ~exp:e)))
    [
      ("2", "3b9aca07");
      ("123456789abcdef0", "ffffffffffffffffffffffffffffff61");
      ("fffffffffffffffffffffffffff", "10000000000000000000000000000000000000000000000000001");
      ("3", "2b5");
    ]

let prop_mod_exp_even_modulus =
  (* Even moduli take the schoolbook fallback inside mod_exp; the two
     entry points must still agree there. *)
  qtest ~count:100 "bignum: mod_exp = schoolbook on even moduli"
    QCheck2.Gen.(triple gen_bignum (int_bound 2000) gen_bignum_pos)
    (fun (b, e, m0) ->
      let m = Bignum.shift_left m0 1 in
      Bignum.equal
        (Bignum.mod_exp ~base:b ~exp:(Bignum.of_int e) ~modulus:m)
        (Bignum.mod_exp_schoolbook ~base:b ~exp:(Bignum.of_int e) ~modulus:m))

(* ---------------- Radix conversions vs the seed algorithms ---------------- *)

let gen_bignum_mixed = QCheck2.Gen.oneof [ gen_bignum; gen_bignum_hexy ]

let ref_to_bytes_be v =
  let b256 = Bignum.of_int 256 in
  let rec go v acc =
    if Bignum.is_zero v then acc
    else begin
      let q, r = Bignum.divmod v b256 in
      go q (String.make 1 (Char.chr (Option.get (Bignum.to_int_opt r))) ^ acc)
    end
  in
  let s = go v "" in
  if s = "" then "\000" else s

let ref_to_radix digits base v =
  let b = Bignum.of_int base in
  let rec go v acc =
    if Bignum.is_zero v then acc
    else begin
      let q, r = Bignum.divmod v b in
      go q (String.make 1 digits.[Option.get (Bignum.to_int_opt r)] ^ acc)
    end
  in
  let s = go v "" in
  if s = "" then "0" else s

let prop_to_bytes_matches_seed =
  qtest ~count:200 "bignum: linear to_bytes_be = byte-at-a-time reference" gen_bignum_mixed
    (fun a -> String.equal (Bignum.to_bytes_be a) (ref_to_bytes_be a))

let prop_to_hex_matches_seed =
  qtest ~count:200 "bignum: linear to_hex = digit-at-a-time reference" gen_bignum_mixed
    (fun a -> String.equal (Bignum.to_hex a) (ref_to_radix "0123456789abcdef" 16 a))

let prop_to_decimal_matches_seed =
  qtest ~count:200 "bignum: chunked to_decimal = digit-at-a-time reference" gen_bignum_mixed
    (fun a -> String.equal (Bignum.to_decimal a) (ref_to_radix "0123456789" 10 a))

let prop_of_bytes_ignores_leading_zeros =
  qtest ~count:100 "bignum: of_bytes_be ignores leading zero bytes" QCheck2.Gen.string
    (fun s -> Bignum.equal (Bignum.of_bytes_be ("\000\000" ^ s)) (Bignum.of_bytes_be s))

let test_radix_underscores () =
  check string_t "hex underscores" "255" (Bignum.to_decimal (Bignum.of_hex "f_f"));
  check string_t "decimal underscores" "1234567890123456789"
    (Bignum.to_decimal (bn "1_234_567_890_123_456_789"));
  check string_t "padded bytes keep leading zeros"
    (Bignum.to_decimal (bn "65793"))
    (Bignum.to_decimal (Bignum.of_bytes_be (Bignum.to_bytes_be ~length:9 (bn "65793"))))

(* ---------------- Miller-Rabin ---------------- *)

let test_primes_recognized () =
  let g = Prng.create ~seed:5L in
  List.iter
    (fun p ->
      check bool_t (Printf.sprintf "%s is prime" p) true
        (Mr_prime.is_probable_prime g (bn p)))
    [ "2"; "3"; "17"; "101"; "7919"; "998244353"; "1000000007"; "170141183460469231731687303715884105727" ]

let test_composites_rejected () =
  let g = Prng.create ~seed:6L in
  List.iter
    (fun c ->
      check bool_t (Printf.sprintf "%s is composite" c) false
        (Mr_prime.is_probable_prime g (bn c)))
    [ "1"; "0"; "4"; "100"; "561"; "1105"; "6601"; "8911"; "1000000006" ]
(* 561, 1105, 6601, 8911 are Carmichael numbers: Fermat-liars that
   Miller-Rabin must still reject. *)

let test_random_prime_bits () =
  let g = Prng.create ~seed:7L in
  List.iter
    (fun bits ->
      let p = Mr_prime.random_prime g ~bits in
      check int_t (Printf.sprintf "%d-bit prime" bits) bits (Bignum.bit_length p);
      check bool_t "is prime" true (Mr_prime.is_probable_prime g p))
    [ 8; 16; 32; 64; 128 ]

(* ---------------- RSA ---------------- *)

let shared_key =
  lazy
    (let g = Prng.create ~seed:99L in
     Rsa.generate g ~bits:512)

let test_rsa_roundtrip () =
  let key = Lazy.force shared_key in
  let s = Rsa.sign key "a message" in
  check bool_t "verifies" true (Rsa.verify key.Rsa.pub ~msg:"a message" ~signature:s);
  check int_t "signature length" (Rsa.key_bytes key.Rsa.pub) (String.length s)

let test_rsa_rejects_tampered () =
  let key = Lazy.force shared_key in
  let s = Rsa.sign key "a message" in
  check bool_t "wrong message" false (Rsa.verify key.Rsa.pub ~msg:"b message" ~signature:s);
  let tampered = Bytes.of_string s in
  Bytes.set tampered 0 (Char.chr (Char.code (Bytes.get tampered 0) lxor 1));
  check bool_t "tampered signature" false
    (Rsa.verify key.Rsa.pub ~msg:"a message" ~signature:(Bytes.to_string tampered));
  check bool_t "truncated signature" false
    (Rsa.verify key.Rsa.pub ~msg:"a message" ~signature:(String.sub s 0 (String.length s - 1)))

let test_rsa_rejects_degenerate_signatures () =
  let key = Lazy.force shared_key in
  let len = Rsa.key_bytes key.Rsa.pub in
  List.iter
    (fun (name, signature) ->
      check bool_t name false (Rsa.verify key.Rsa.pub ~msg:"a message" ~signature))
    [
      ("empty signature", "");
      ("all-zero signature", String.make len '\x00');
      ("all-ones signature", String.make len '\xff');
      ("over-long signature", String.make (len + 1) '\x01');
      ("single byte", "\x01");
    ]

let test_rsa_every_byte_flip_rejected () =
  (* Flip one bit in each signature byte: none may verify. *)
  let key = Lazy.force shared_key in
  let s = Rsa.sign key "a message" in
  for i = 0 to String.length s - 1 do
    let tampered = Bytes.of_string s in
    Bytes.set tampered i (Char.chr (Char.code (Bytes.get tampered i) lxor 0x80));
    check bool_t
      (Printf.sprintf "flip at byte %d" i)
      false
      (Rsa.verify key.Rsa.pub ~msg:"a message" ~signature:(Bytes.to_string tampered))
  done

let test_rsa_crt_matches_reference () =
  let key = Lazy.force shared_key in
  List.iter
    (fun msg ->
      check string_t ("crt = no-crt for " ^ msg) (Hex.encode (Rsa.sign_no_crt key msg))
        (Hex.encode (Rsa.sign key msg)))
    [ ""; "x"; "hello world"; String.make 1000 'q' ]

let test_rsa_signature_bit_identity () =
  (* The Montgomery kernel is a pure speedup: signatures over a fixed
     corpus must be bit-identical to the seed schoolbook path, and each
     must verify under both paths. *)
  let corpus =
    [ ""; "x"; "pledge:42"; String.make 1000 'q'; "\x00\xff\x80binary\x01\x7f" ]
  in
  let keys =
    [ ("512-bit", Lazy.force shared_key);
      ("256-bit", Rsa.generate (Prng.create ~seed:41L) ~bits:256) ]
  in
  let with_flag v f =
    let saved = !Bignum.use_montgomery in
    Bignum.use_montgomery := v;
    Fun.protect ~finally:(fun () -> Bignum.use_montgomery := saved) f
  in
  List.iter
    (fun (kname, key) ->
      List.iteri
        (fun i msg ->
          let fast = with_flag true (fun () -> Rsa.sign key msg) in
          let slow = with_flag false (fun () -> Rsa.sign key msg) in
          let label = Printf.sprintf "%s corpus[%d]" kname i in
          check string_t (label ^ " bit-identical") (Hex.encode slow) (Hex.encode fast);
          check bool_t (label ^ " verifies (mont)") true
            (with_flag true (fun () -> Rsa.verify key.Rsa.pub ~msg ~signature:fast));
          check bool_t (label ^ " verifies (schoolbook)") true
            (with_flag false (fun () -> Rsa.verify key.Rsa.pub ~msg ~signature:fast)))
        corpus)
    keys

let test_rsa_distinct_keys_dont_cross_verify () =
  let g = Prng.create ~seed:100L in
  let k1 = Rsa.generate g ~bits:256 in
  let k2 = Rsa.generate g ~bits:256 in
  let s = Rsa.sign k1 "msg" in
  check bool_t "other key rejects" false (Rsa.verify k2.Rsa.pub ~msg:"msg" ~signature:s);
  check bool_t "fingerprints differ" false
    (String.equal (Rsa.fingerprint k1.Rsa.pub) (Rsa.fingerprint k2.Rsa.pub))

let prop_rsa_sign_verify =
  qtest ~count:20 "rsa: sign/verify roundtrip on random messages" QCheck2.Gen.string
    (fun msg ->
      let key = Lazy.force shared_key in
      Rsa.verify key.Rsa.pub ~msg ~signature:(Rsa.sign key msg))

(* ---------------- Merkle ---------------- *)

let test_merkle_all_indices () =
  List.iter
    (fun n ->
      let leaves = List.init n (fun i -> Printf.sprintf "leaf-%d" i) in
      let tree = Merkle.build leaves in
      Alcotest.(check int) "leaf count" n (Merkle.leaf_count tree);
      List.iteri
        (fun i leaf ->
          let proof = Merkle.prove tree i in
          check bool_t
            (Printf.sprintf "n=%d i=%d verifies" n i)
            true
            (Merkle.verify ~root:(Merkle.root tree) ~leaf proof))
        leaves)
    [ 1; 2; 3; 4; 5; 7; 8; 9; 16; 33 ]

let test_merkle_rejects_wrong_leaf () =
  let tree = Merkle.build [ "a"; "b"; "c"; "d" ] in
  let proof = Merkle.prove tree 1 in
  check bool_t "wrong leaf" false (Merkle.verify ~root:(Merkle.root tree) ~leaf:"x" proof);
  let other = Merkle.build [ "a"; "b"; "c"; "e" ] in
  check bool_t "wrong root" false (Merkle.verify ~root:(Merkle.root other) ~leaf:"b" proof)

let test_merkle_proof_length () =
  let tree = Merkle.build (List.init 16 string_of_int) in
  check int_t "log2(16) levels" 4 (Merkle.proof_length (Merkle.prove tree 0))

let test_merkle_domain_separation () =
  (* A two-leaf tree's root must differ from hashing the concatenation
     of raw leaves as a single leaf — leaf/node tags prevent
     second-preimage-style confusion. *)
  let t1 = Merkle.build [ "ab" ] in
  let t2 = Merkle.build [ "a"; "b" ] in
  check bool_t "tagged" false (String.equal (Merkle.root t1) (Merkle.root t2))

let test_merkle_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Merkle.build: no leaves") (fun () ->
      ignore (Merkle.build []))

let prop_merkle_random =
  qtest ~count:50 "merkle: every proof of a random tree verifies"
    QCheck2.Gen.(list_size (int_range 1 40) (string_size (int_bound 20)))
    (fun leaves ->
      let tree = Merkle.build leaves in
      List.for_all
        (fun i -> Merkle.verify ~root:(Merkle.root tree) ~leaf:(List.nth leaves i) (Merkle.prove tree i))
        (List.init (List.length leaves) Fun.id))

(* Distinct leaves so a bit-flipped leaf cannot accidentally equal a
   sibling; sizes deliberately include 1 and non-powers-of-two, where
   odd-level duplication shapes the path. *)
let gen_merkle_case =
  QCheck2.Gen.(
    int_range 1 23 >>= fun n ->
    int_bound (n - 1) >>= fun i ->
    nat >|= fun salt -> (n, i, salt))

let leaves_of n salt = List.init n (fun i -> Printf.sprintf "leaf-%d-%d" salt i)

let flip_bit s bit =
  let b = Bytes.of_string s in
  let byte = bit / 8 mod Bytes.length b in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit mod 8))));
  Bytes.to_string b

let prop_merkle_root_of_proof_consistent =
  qtest ~count:100 "merkle: root_of_proof agrees with the tree root" gen_merkle_case
    (fun (n, i, salt) ->
      let leaves = leaves_of n salt in
      let tree = Merkle.build leaves in
      String.equal
        (Merkle.root_of_proof ~leaf:(List.nth leaves i) (Merkle.prove tree i))
        (Merkle.root tree))

let prop_merkle_bitflip_fails =
  qtest ~count:100 "merkle: bit-flipped leaf, root and proof all fail"
    QCheck2.Gen.(pair gen_merkle_case nat)
    (fun ((n, i, salt), bit) ->
      let leaves = leaves_of n salt in
      let tree = Merkle.build leaves in
      let root = Merkle.root tree in
      let leaf = List.nth leaves i in
      let proof = Merkle.prove tree i in
      let flipped_leaf = not (Merkle.verify ~root ~leaf:(flip_bit leaf bit) proof) in
      let flipped_root = not (Merkle.verify ~root:(flip_bit root bit) ~leaf proof) in
      let flipped_proof =
        (* Flip one bit in one sibling digest; a single-leaf tree has an
           empty path, so there is no proof to corrupt. *)
        match proof.Merkle.path with
        | [] -> n = 1
        | path ->
          let victim = bit mod List.length path in
          let path =
            List.mapi
              (fun j (sibling, side) ->
                if j = victim then (flip_bit sibling bit, side) else (sibling, side))
              path
          in
          not (Merkle.verify ~root ~leaf { proof with Merkle.path })
      in
      flipped_leaf && flipped_root && flipped_proof)

(* ---------------- PRNG ---------------- *)

let test_prng_determinism () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    check bool_t "same stream" true (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b))
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:43L in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)) then differs := true
  done;
  check bool_t "different seeds differ" true !differs

let test_prng_split_independent () =
  let parent = Prng.create ~seed:42L in
  let child = Prng.split parent in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.next_int64 parent) (Prng.next_int64 child)) then differs := true
  done;
  check bool_t "split stream differs" true !differs

let test_prng_int_bounds () =
  let g = Prng.create ~seed:1L in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    check bool_t "in range" true (v >= 0 && v < 17)
  done;
  check int_t "bound 1" 0 (Prng.int g 1);
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_float_range () =
  let g = Prng.create ~seed:2L in
  for _ = 1 to 1000 do
    let v = Prng.float g in
    check bool_t "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_bernoulli_edges () =
  let g = Prng.create ~seed:3L in
  check bool_t "p=0" false (Prng.bernoulli g 0.0);
  check bool_t "p=1" true (Prng.bernoulli g 1.0)

let test_prng_shuffle_permutes () =
  let g = Prng.create ~seed:4L in
  let arr = Array.init 20 Fun.id in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  check bool_t "is a permutation" true (sorted = Array.init 20 Fun.id)

let test_prng_int_roughly_uniform () =
  let g = Prng.create ~seed:8L in
  let counts = Array.make 8 0 in
  let n = 8000 in
  for _ = 1 to n do
    let v = Prng.int g 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      check bool_t (Printf.sprintf "bucket %d near uniform" i) true (c > 800 && c < 1200))
    counts

let test_prng_exponential_mean () =
  let g = Prng.create ~seed:9L in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential g ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  check bool_t "mean near 2" true (mean > 1.9 && mean < 2.1)

(* ---------------- Sig_scheme ---------------- *)

let test_sig_scheme_roundtrip scheme () =
  let g = Prng.create ~seed:11L in
  let kp = Sig_scheme.generate scheme g in
  let public = Sig_scheme.public_of kp in
  let s = Sig_scheme.sign kp "payload" in
  check bool_t "verifies" true (Sig_scheme.verify public ~msg:"payload" ~signature:s);
  check bool_t "wrong msg" false (Sig_scheme.verify public ~msg:"payloae" ~signature:s);
  check bool_t "wrong sig" false (Sig_scheme.verify public ~msg:"payload" ~signature:"junk");
  check int_t "key id length" 16 (String.length (Sig_scheme.key_id public))

let test_sig_scheme_distinct_keys () =
  let g = Prng.create ~seed:12L in
  let k1 = Sig_scheme.generate Sig_scheme.Hmac_sim g in
  let k2 = Sig_scheme.generate Sig_scheme.Hmac_sim g in
  let s = Sig_scheme.sign k1 "m" in
  check bool_t "cross-verify fails" false
    (Sig_scheme.verify (Sig_scheme.public_of k2) ~msg:"m" ~signature:s)

let () =
  Alcotest.run "secrep_crypto"
    [
      ( "sha1",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha1_vectors;
          Alcotest.test_case "million a's" `Slow test_sha1_million_a;
          Alcotest.test_case "digest length" `Quick test_sha1_length;
          Alcotest.test_case "block boundaries" `Quick test_sha1_block_boundaries;
          prop_sha1_incremental;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "digest length" `Quick test_sha256_length;
          prop_sha256_incremental;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231 case 1" `Quick test_hmac_rfc4231_case1;
          Alcotest.test_case "rfc4231 case 2" `Quick test_hmac_rfc4231_case2;
          Alcotest.test_case "rfc4231 case 3" `Quick test_hmac_rfc4231_case3;
          Alcotest.test_case "long key" `Quick test_hmac_long_key;
          Alcotest.test_case "hmac-sha1" `Quick test_hmac_sha1;
          Alcotest.test_case "hmac-sha1 rfc2202 cases 2-7" `Quick test_hmac_sha1_rfc2202;
          Alcotest.test_case "schedule cache vs rfc2202" `Quick test_hmac_schedule_rfc2202;
          Alcotest.test_case "schedule copies are isolated" `Quick test_hmac_schedule_interleaved;
          prop_hmac_schedule_equiv;
          Alcotest.test_case "constant-time equality" `Quick test_const_time_eq;
        ] );
      ( "hex",
        [
          Alcotest.test_case "known values" `Quick test_hex_known;
          Alcotest.test_case "errors" `Quick test_hex_errors;
          prop_hex_roundtrip;
        ] );
      ( "bignum",
        [
          Alcotest.test_case "basics" `Quick test_bignum_basics;
          Alcotest.test_case "of_int negative" `Quick test_bignum_of_int_negative;
          Alcotest.test_case "known multiplication" `Quick test_bignum_known_mul;
          Alcotest.test_case "known division" `Quick test_bignum_known_div;
          Alcotest.test_case "division by zero" `Quick test_bignum_div_by_zero;
          Alcotest.test_case "subtraction underflow" `Quick test_bignum_sub_underflow;
          Alcotest.test_case "bit operations" `Quick test_bignum_bit_ops;
          Alcotest.test_case "mod_exp known" `Quick test_bignum_mod_exp_known;
          Alcotest.test_case "mod_inv known" `Quick test_bignum_mod_inv_known;
          Alcotest.test_case "bytes roundtrip" `Quick test_bignum_bytes_roundtrip;
          Alcotest.test_case "hex" `Quick test_bignum_hex;
          prop_add_sub;
          prop_add_commutes;
          prop_mul_commutes;
          prop_mul_distributes;
          prop_divmod_invariant;
          prop_divmod_adversarial;
          Alcotest.test_case "divmod add-back shapes" `Quick test_divmod_addback_cases;
          prop_decimal_roundtrip;
          prop_hex_roundtrip_bn;
          prop_bytes_roundtrip_bn;
          prop_shift_is_mul_pow2;
          prop_compare_total;
          prop_mod_exp_matches_naive;
          prop_gcd_divides;
          prop_mod_inv_correct;
          prop_to_bytes_matches_seed;
          prop_to_hex_matches_seed;
          prop_to_decimal_matches_seed;
          prop_of_bytes_ignores_leading_zeros;
          Alcotest.test_case "radix parsing details" `Quick test_radix_underscores;
        ] );
      ( "montgomery",
        [
          prop_montgomery_vs_schoolbook;
          prop_mont_mul_matches;
          prop_mont_to_from_roundtrip;
          prop_mod_exp_even_modulus;
          Alcotest.test_case "context edge cases" `Quick test_mont_edges;
          Alcotest.test_case "e=65537 fast path" `Quick test_mont_e65537_fast_path;
        ] );
      ( "miller-rabin",
        [
          Alcotest.test_case "primes recognized" `Quick test_primes_recognized;
          Alcotest.test_case "composites (incl. Carmichael) rejected" `Quick
            test_composites_rejected;
          Alcotest.test_case "random_prime sizes" `Slow test_random_prime_bits;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "sign/verify roundtrip" `Quick test_rsa_roundtrip;
          Alcotest.test_case "rejects tampering" `Quick test_rsa_rejects_tampered;
          Alcotest.test_case "rejects degenerate signatures" `Quick
            test_rsa_rejects_degenerate_signatures;
          Alcotest.test_case "rejects every byte flip" `Quick test_rsa_every_byte_flip_rejected;
          Alcotest.test_case "CRT matches reference" `Quick test_rsa_crt_matches_reference;
          Alcotest.test_case "signature bit-identity across kernels" `Quick
            test_rsa_signature_bit_identity;
          Alcotest.test_case "keys do not cross-verify" `Quick
            test_rsa_distinct_keys_dont_cross_verify;
          prop_rsa_sign_verify;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "all indices, many sizes" `Quick test_merkle_all_indices;
          Alcotest.test_case "rejects wrong leaf/root" `Quick test_merkle_rejects_wrong_leaf;
          Alcotest.test_case "proof length" `Quick test_merkle_proof_length;
          Alcotest.test_case "leaf/node domain separation" `Quick test_merkle_domain_separation;
          Alcotest.test_case "empty rejected" `Quick test_merkle_empty;
          prop_merkle_random;
          prop_merkle_root_of_proof_consistent;
          prop_merkle_bitflip_fails;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "bernoulli edges" `Quick test_prng_bernoulli_edges;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "int roughly uniform" `Quick test_prng_int_roughly_uniform;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
        ] );
      ( "sig_scheme",
        [
          Alcotest.test_case "hmac-sim roundtrip" `Quick
            (test_sig_scheme_roundtrip Sig_scheme.Hmac_sim);
          Alcotest.test_case "rsa roundtrip" `Quick
            (test_sig_scheme_roundtrip (Sig_scheme.Rsa { bits = 256 }));
          Alcotest.test_case "distinct keys" `Quick test_sig_scheme_distinct_keys;
        ] );
    ]
