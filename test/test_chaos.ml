(* Chaos subsystem: schedule DSL, injector semantics, and the headline
   acceptance scenario — partition every slave, heal, and demand zero
   false accusations, degraded master reads during the blackout,
   breakers closing after the heal, and post-recovery convergence. *)

open Alcotest
module Prng = Secrep_crypto.Prng
module Sim = Secrep_sim.Sim
module Stats = Secrep_sim.Stats
module Query = Secrep_store.Query
module Oplog = Secrep_store.Oplog
module Value = Secrep_store.Value
module Config = Secrep_core.Config
module System = Secrep_core.System
module Client = Secrep_core.Client
module Slave = Secrep_core.Slave
module Master = Secrep_core.Master
module Corrective = Secrep_core.Corrective
module Catalog = Secrep_workload.Catalog
module Schedule = Secrep_chaos.Schedule
module Injector = Secrep_chaos.Injector
module Scenario = Secrep_check.Scenario
module Harness = Secrep_check.Harness
module Invariant = Secrep_check.Invariant

let int_t = int
let bool_t = bool

(* ---------------- schedule DSL ---------------- *)

let test_parse_roundtrip () =
  let text =
    "# comment\n\
     at 5.0 cut slave 2\n\
     at 9 heal slave 2\n\
     at 12 crash master 0\n\
     at 14 crash slave 1\n\
     at 18 recover slave 1\n\
     at 20 loss 0.3\n\
     at 30 loss normal\n\
     at 40 latency x4\n\
     at 50 latency normal\n\
     at 60 cut auditor\n\
     at 61 heal auditor\n\
     at 62 cut client 1\n\
     at 63 heal client 1\n\
     at 64 cut master 1\n\
     at 65 heal master 1\n"
  in
  match Schedule.parse text with
  | Error msg -> failf "parse failed: %s" msg
  | Ok schedule ->
    check int_t "all lines parsed" 15 (List.length schedule);
    (* print -> parse is the identity on the parsed form *)
    (match Schedule.parse (Schedule.to_string schedule) with
    | Error msg -> failf "re-parse failed: %s" msg
    | Ok again -> check bool_t "round trip" true (schedule = again))

let test_parse_errors () =
  let bad = [ "at x cut slave 1"; "at 5 cut slave"; "at 5 frobnicate 3"; "cut slave 1" ] in
  List.iter
    (fun line ->
      match Schedule.parse line with
      | Ok _ -> failf "expected parse error for %S" line
      | Error msg -> check bool_t "error names line 1" true (String.length msg > 0))
    bad

let test_validate_ranges () =
  let sched = [ { Schedule.time = 5.0; action = Schedule.Cut_slave 7 } ] in
  (match Schedule.validate ~n_slaves:3 sched with
  | Ok () -> fail "slave 7 should be out of range for 3 slaves"
  | Error _ -> ());
  (match Schedule.validate ~n_slaves:8 sched with
  | Ok () -> ()
  | Error msg -> failf "slave 7 in range for 8 slaves: %s" msg);
  match Schedule.validate [ { Schedule.time = -1.0; action = Schedule.Cut_auditor } ] with
  | Ok () -> fail "negative time should be rejected"
  | Error _ -> ()

let test_random_deterministic_and_self_healing () =
  let draw () =
    Schedule.random ~rng:(Prng.create ~seed:99L) ~duration:100.0 ~n_slaves:6 ~n_masters:2
      ~n_clients:4 ~intensity:2.0 ()
  in
  let a = draw () and b = draw () in
  check bool_t "same seed, same schedule" true (a = b);
  check bool_t "non-empty at intensity 2" true (List.length a > 0);
  List.iter
    (fun e ->
      check bool_t "every entry inside [0, 0.9 * duration]" true
        (e.Schedule.time >= 0.0 && e.Schedule.time <= 90.0))
    a;
  (* Every disruption heals: cuts are matched by heals, crashes by
     recovers, buckets by their normals. *)
  let balance = Hashtbl.create 8 in
  let bump k d =
    let v = match Hashtbl.find_opt balance k with Some v -> v | None -> 0 in
    Hashtbl.replace balance k (v + d)
  in
  List.iter
    (fun e ->
      match e.Schedule.action with
      | Schedule.Cut_slave i -> bump (`Slave i) 1
      | Schedule.Heal_slave i -> bump (`Slave i) (-1)
      | Schedule.Crash_slave i -> bump (`Churn i) 1
      | Schedule.Recover_slave i -> bump (`Churn i) (-1)
      | Schedule.Cut_master i -> bump (`Master i) 1
      | Schedule.Heal_master i -> bump (`Master i) (-1)
      | Schedule.Cut_client i -> bump (`Client i) 1
      | Schedule.Heal_client i -> bump (`Client i) (-1)
      | Schedule.Cut_auditor -> bump `Auditor 1
      | Schedule.Heal_auditor -> bump `Auditor (-1)
      | Schedule.Loss_burst _ -> bump `Loss 1
      | Schedule.Loss_normal -> bump `Loss (-1)
      | Schedule.Latency_spike _ -> bump `Latency 1
      | Schedule.Latency_normal -> bump `Latency (-1)
      | Schedule.Duplicate_burst _ -> bump `Duplicate 1
      | Schedule.Duplicate_normal -> bump `Duplicate (-1)
      | Schedule.Reorder_burst _ -> bump `Reorder 1
      | Schedule.Reorder_normal -> bump `Reorder (-1)
      | Schedule.Bitflip_burst _ -> bump `Bitflip 1
      | Schedule.Bitflip_normal -> bump `Bitflip (-1)
      | Schedule.Crash_master _ -> ())
    a;
  Hashtbl.iter (fun _ v -> check int_t "window closed" 0 v) balance

let test_rolling_partition_shape () =
  let sched = Schedule.rolling_partition ~n_slaves:3 ~start:5.0 ~interval:0.5 ~outage:20.0 in
  check int_t "two entries per slave" 6 (List.length sched);
  let cuts =
    List.filter (fun e -> match e.Schedule.action with Schedule.Cut_slave _ -> true | _ -> false) sched
  in
  check int_t "one cut per slave" 3 (List.length cuts)

(* ---------------- shared system builder ---------------- *)

let build_system ?(n_masters = 1) ?(slaves_per_master = 3) ?(n_clients = 2)
    ?(config = Config.default) ~seed () =
  let config =
    Config.validate_exn
      { config with Config.max_latency = 1.0; keepalive_period = 0.3 }
  in
  let system =
    System.create ~n_masters ~slaves_per_master ~n_clients ~config
      ~net:System.lan_net ~seed ()
  in
  let content = Catalog.product_catalog (Prng.create ~seed:7L) ~n:6 in
  System.load_content system content;
  (system, List.map fst content)

(* ---------------- injector ---------------- *)

let test_injector_counts_and_skips () =
  let system, _ = build_system ~seed:5L () in
  let sched =
    [
      { Schedule.time = 1.0; action = Schedule.Crash_slave 0 };
      (* crashing an already-crashed slave is a no-op, not an error *)
      { Schedule.time = 2.0; action = Schedule.Crash_slave 0 };
      { Schedule.time = 3.0; action = Schedule.Recover_slave 0 };
    ]
  in
  Injector.apply system sched;
  System.run_for system 10.0;
  check int_t "all actions fired" 3 (Injector.applied_actions system);
  check int_t "duplicate crash skipped" 1
    (Stats.get (System.stats system) "chaos.skipped_actions");
  check bool_t "slave back in service" false (System.is_crashed system ~slave_id:0)

let test_injector_rejects_out_of_range () =
  let system, _ = build_system ~seed:6L () in
  match
    Injector.apply system [ { Schedule.time = 1.0; action = Schedule.Cut_slave 99 } ]
  with
  | () -> fail "expected Invalid_argument for slave 99"
  | exception Invalid_argument _ -> ()

(* ---------------- master crash re-homing + reinstate ---------------- *)

let test_master_crash_rehoming_and_reinstate () =
  let system, keys = build_system ~n_masters:2 ~slaves_per_master:1 ~n_clients:1 ~seed:11L () in
  let sim = System.sim system in
  let keys = Array.of_list keys in
  (* Commit a write so there is post-bootstrap state to reinstate. *)
  ignore
    (Sim.schedule_at sim ~time:1.0 (fun () ->
         System.write system ~client:0
           (Oplog.Set_field { key = keys.(0); field = "stock"; value = Value.Int 1 })
           ~on_done:(fun _ -> ())));
  (* Kill master 0; its slave re-homes to master 1.  Then churn that
     slave: the recovery checkpoint must come from a surviving master. *)
  ignore (Sim.schedule_at sim ~time:5.0 (fun () -> System.crash_master system 0));
  ignore (Sim.schedule_at sim ~time:8.0 (fun () -> System.crash_slave system ~slave_id:0));
  let recover_result = ref (Error "not attempted") in
  ignore
    (Sim.schedule_at sim ~time:12.0 (fun () ->
         recover_result := System.recover_slave system ~slave_id:0));
  System.run_for system 30.0;
  (match !recover_result with
  | Ok () -> ()
  | Error msg -> failf "recover after master crash failed: %s" msg);
  check bool_t "slave re-homed to a live master" true
    (Master.is_alive (System.master system (System.master_of_slave system 0)));
  check int_t "reinstated at the surviving master's version"
    (Master.version (System.master system (System.master_of_slave system 0)))
    (Slave.version (System.slave system 0));
  check int_t "benign churn never accuses" 0
    (List.length (Corrective.events (System.corrective system)))

(* ---------------- the acceptance scenario ---------------- *)

(* Partition every slave (staggered, overlapping into a full blackout),
   keep reading throughout, then heal.  Demands:
     - availability: every read completes,
     - degraded reads served by the trusted master during the blackout,
     - zero false accusations despite timeouts and churn,
     - breakers close again after the heal,
     - healed slaves converge back to the committed version. *)
let test_rolling_blackout_acceptance () =
  let config =
    {
      Config.default with
      Config.double_check_probability = 0.0;
      breaker_cooldown = 5.0;
    }
  in
  let system, keys = build_system ~config ~seed:21L () in
  let sim = System.sim system in
  let keys = Array.of_list keys in
  let n_slaves = System.n_slaves system in
  Injector.apply system
    (Schedule.rolling_partition ~n_slaves ~start:5.0 ~interval:0.5 ~outage:25.0);
  (* Write during the blackout so healed slaves are stale and must
     resync to converge. *)
  ignore
    (Sim.schedule_at sim ~time:10.0 (fun () ->
         System.write system ~client:0
           (Oplog.Set_field { key = keys.(0); field = "stock"; value = Value.Int 77 })
           ~on_done:(fun _ -> ())));
  let issued = ref 0 and completed = ref 0 and by_master = ref 0 in
  for i = 0 to 54 do
    ignore
      (Sim.schedule_at sim ~time:(1.0 +. float_of_int i) (fun () ->
           incr issued;
           System.read system ~client:(i mod System.n_clients system)
             (Query.point_read keys.(i mod Array.length keys))
             ~on_done:(fun report ->
               incr completed;
               match report.Client.outcome with
               | `Served_by_master _ -> incr by_master
               | `Accepted _ | `Gave_up -> ())))
  done;
  System.run_for system 120.0;
  let stats = System.stats system in
  check int_t "availability: every read completed" !issued !completed;
  check bool_t "degraded master reads during the blackout" true (!by_master > 0);
  check int_t "zero false accusations under pure chaos" 0
    (List.length (Corrective.events (System.corrective system)));
  check bool_t "breakers opened during the blackout" true
    (Stats.get stats "client.breaker_opened" > 0);
  check bool_t "breakers closed again after the heal" true
    (Stats.get stats "client.breaker_closed" > 0);
  (* Convergence: every slave is back at its master's version. *)
  for i = 0 to n_slaves - 1 do
    check int_t
      (Printf.sprintf "slave %d converged" i)
      (Master.version (System.master system (System.master_of_slave system i)))
      (Slave.version (System.slave system i))
  done

(* The same shape as a fuzz-harness scenario: chaos windows riding on a
   generated workload, judged by the full invariant set (including the
   availability and recovery-convergence checkers). *)
let test_harness_chaos_scenario_invariants () =
  let scenario =
    {
      Scenario.sys_seed = 4242;
      n_shards = 1;
      n_masters = 1;
      slaves_per_master = 3;
      n_clients = 2;
      n_items = 4;
      max_latency = 1.0;
      keepalive_period = 0.3;
      double_check_p = 0.0;
      audit = true;
      pledge_batch = 1;
      read_nonces = false;
      audit_adaptive = false;
      net = Scenario.Lan;
      faults = [];
      chaos =
        [
          Scenario.Slave_cut { slave = 0; from_time = 5.0; outage = 10.0 };
          Scenario.Slave_churn { slave = 1; from_time = 8.0; outage = 12.0 };
          Scenario.Auditor_cut { from_time = 12.0; outage = 5.0 };
        ];
      ops =
        Scenario.Write { client = 0; key = 0; at = 2.0 }
        :: Scenario.Write { client = 1; key = 1; at = 9.0 }
        :: List.init 20 (fun i ->
               Scenario.Read { client = i mod 2; key = i mod 4; at = 1.0 +. float_of_int i });
    }
  in
  let result = Harness.run scenario in
  (match Invariant.check_all Invariant.all result with
  | Ok () -> ()
  | Error msg -> failf "invariant violated under chaos: %s" msg);
  (* The chaos actually happened: partition + crash + recovery events. *)
  let has kind =
    List.exists
      (fun (r : Secrep_sim.Trace.record) -> Secrep_sim.Event.kind r.Secrep_sim.Trace.event = kind)
      result.Harness.events
  in
  check bool_t "partition events in stream" true (has "partition");
  check bool_t "crash events in stream" true (has "node_crashed");
  check bool_t "recovery events in stream" true (has "node_recovered")

let () =
  run "secrep_chaos"
    [
      ( "schedule",
        [
          test_case "parse/print round trip" `Quick test_parse_roundtrip;
          test_case "parse errors" `Quick test_parse_errors;
          test_case "validate ranges" `Quick test_validate_ranges;
          test_case "random deterministic + self-healing" `Quick
            test_random_deterministic_and_self_healing;
          test_case "rolling partition shape" `Quick test_rolling_partition_shape;
        ] );
      ( "injector",
        [
          test_case "counts applied and skipped" `Quick test_injector_counts_and_skips;
          test_case "rejects out-of-range ids" `Quick test_injector_rejects_out_of_range;
        ] );
      ( "resilience",
        [
          test_case "master crash re-homing + reinstate" `Quick
            test_master_crash_rehoming_and_reinstate;
          test_case "rolling blackout acceptance" `Quick test_rolling_blackout_acceptance;
          test_case "harness chaos scenario passes invariants" `Quick
            test_harness_chaos_scenario_invariants;
        ] );
    ]
