type scheme = Rsa of { bits : int } | Hmac_sim

type public =
  | Rsa_pub of Rsa.public_key
  | Hmac_pub of { secret : string; id : string }

type keypair =
  | Rsa_key of { scheme : scheme; key : Rsa.private_key }
  | Hmac_key of { secret : string; id : string }

let generate scheme g =
  match scheme with
  | Rsa { bits } -> Rsa_key { scheme; key = Rsa.generate g ~bits }
  | Hmac_sim ->
    let secret = Prng.bytes g 32 in
    Hmac_key { secret; id = Hex.encode (Sha256.digest secret) }

let public_of = function
  | Rsa_key { key; _ } -> Rsa_pub key.Rsa.pub
  | Hmac_key { secret; id } -> Hmac_pub { secret; id }

let sign kp msg =
  match kp with
  | Rsa_key { key; _ } -> Rsa.sign key msg
  | Hmac_key { secret; _ } -> Hmac.mac ~hash:Hmac.Sha256 ~key:secret msg

let verify pub ~msg ~signature =
  match pub with
  | Rsa_pub key -> Rsa.verify key ~msg ~signature
  | Hmac_pub { secret; _ } ->
    Hmac.equal_const_time signature (Hmac.mac ~hash:Hmac.Sha256 ~key:secret msg)

let key_id = function
  | Rsa_pub key -> String.sub (Rsa.fingerprint key) 0 16
  | Hmac_pub { id; _ } -> String.sub id 0 16

let scheme_of = function
  | Rsa_key { scheme; _ } -> scheme
  | Hmac_key _ -> Hmac_sim

(* Wire format: a tag character, then length-prefixed decimal fields.
   Kept self-contained (this library sits below the store codec). *)
let add_field buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let encode_public = function
  | Rsa_pub key ->
    let buf = Buffer.create 64 in
    Buffer.add_char buf 'R';
    add_field buf (Bignum.to_hex key.Rsa.n);
    add_field buf (Bignum.to_hex key.Rsa.e);
    Buffer.contents buf
  | Hmac_pub { secret; id } ->
    let buf = Buffer.create 64 in
    Buffer.add_char buf 'H';
    add_field buf secret;
    add_field buf id;
    Buffer.contents buf

let decode_public s =
  let pos = ref 1 in
  let read_field () =
    let colon = String.index_from s !pos ':' in
    let len = int_of_string (String.sub s !pos (colon - !pos)) in
    if len < 0 || colon + 1 + len > String.length s then failwith "bad field";
    let v = String.sub s (colon + 1) len in
    pos := colon + 1 + len;
    v
  in
  match
    if String.length s = 0 then Error "empty"
    else begin
      match s.[0] with
      | 'R' ->
        let n = Bignum.of_hex (read_field ()) in
        let e = Bignum.of_hex (read_field ()) in
        if !pos <> String.length s then Error "trailing garbage"
        else Ok (Rsa_pub (Rsa.make_public ~n ~e))
      | 'H' ->
        let secret = read_field () in
        let id = read_field () in
        if !pos <> String.length s then Error "trailing garbage"
        else Ok (Hmac_pub { secret; id })
      | c -> Error (Printf.sprintf "bad tag %C" c)
    end
  with
  | result -> result
  | exception (Failure msg) -> Error msg
  | exception Not_found -> Error "missing delimiter"
  | exception Invalid_argument msg -> Error msg

let pp_public fmt pub = Format.fprintf fmt "key:%s" (key_id pub)
