(* Arbitrary-precision naturals over 26-bit limbs stored little-endian in an
   int array.  26 bits is chosen so that a limb product (52 bits) plus the
   running carries of schoolbook multiplication and of Knuth division stay
   well inside a 63-bit native int. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array
(* Invariant: normalized (no trailing zero limbs); zero = [||];
   every limb is in [0, base). *)

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs n = if n = 0 then [] else (n land mask) :: limbs (n lsr limb_bits) in
  Array.of_list (limbs n)

let one = of_int 1
let two = of_int 2

let to_int_opt (a : t) =
  (* Native ints hold 62 usable bits: at most 3 limbs with the top one
     small enough. *)
  let n = Array.length a in
  if n > 3 then None
  else begin
    let rec go i acc =
      if i < 0 then Some acc
      else
        let acc' = (acc lsl limb_bits) lor a.(i) in
        if acc' < acc then None else go (i - 1) acc'
    in
    go (n - 1) 0
  end

let is_even (a : t) = is_zero a || a.(0) land 1 = 0

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  r.(n) <- !carry;
  normalize r

(* [a - b] assuming [a >= b]. *)
let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Bignum.sub: underflow";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  normalize r

let succ a = add a one
let pred a = sub a one

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let p = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- p land mask;
          carry := p lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land mask;
          carry := s lsr limb_bits;
          incr k
        done
      end
    done;
    normalize r
  end

let bit_length (a : t) =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((n - 1) * limb_bits) + width 0
  end

let test_bit (a : t) i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let shift_left (a : t) s =
  if s < 0 then invalid_arg "Bignum.shift_left: negative shift";
  if is_zero a || s = 0 then a
  else begin
    let limb_shift = s / limb_bits and bit_shift = s mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land mask);
      r.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right (a : t) s =
  if s < 0 then invalid_arg "Bignum.shift_right: negative shift";
  if s = 0 then a
  else begin
    let limb_shift = s / limb_bits and bit_shift = s mod limb_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let n = la - limb_shift in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Division by a single limb: plain schoolbook from the most significant
   limb down; the partial remainder times the base fits in 52 bits. *)
let divmod_small (a : t) d =
  assert (d > 0 && d < base);
  let n = Array.length a in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, of_int !r)

(* Knuth TAOCP vol. 2, Algorithm D, specialised to 26-bit limbs. *)
let divmod_knuth (u : t) (v : t) =
  let n = Array.length v in
  let m = Array.length u - n in
  assert (n >= 2 && m >= 0);
  (* D1: normalize so the top limb of v has its high bit set. *)
  let s =
    let top = v.(n - 1) in
    let rec go w = if top lsr w = 0 then w else go (w + 1) in
    limb_bits - go 0
  in
  let vn = Array.make n 0 in
  for i = n - 1 downto 0 do
    let hi = (v.(i) lsl s) land mask in
    let lo = if i > 0 && s > 0 then v.(i - 1) lsr (limb_bits - s) else 0 in
    vn.(i) <- hi lor lo
  done;
  let un = Array.make (m + n + 1) 0 in
  un.(m + n) <- if s > 0 then u.(m + n - 1) lsr (limb_bits - s) else 0;
  for i = m + n - 1 downto 0 do
    let hi = (u.(i) lsl s) land mask in
    let lo = if i > 0 && s > 0 then u.(i - 1) lsr (limb_bits - s) else 0 in
    un.(i) <- hi lor lo
  done;
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    (* D3: estimate the quotient digit from the top two limbs. *)
    let num = (un.(j + n) lsl limb_bits) lor un.(j + n - 1) in
    let qhat = ref (num / vn.(n - 1)) and rhat = ref (num mod vn.(n - 1)) in
    let continue = ref true in
    while !continue do
      if !qhat >= base
         || !qhat * vn.(n - 2) > (!rhat lsl limb_bits) lor un.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + vn.(n - 1);
        if !rhat >= base then continue := false
      end
      else continue := false
    done;
    (* D4: multiply and subtract. *)
    let carry = ref 0 and borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = un.(i + j) - (p land mask) - !borrow in
      if d < 0 then begin un.(i + j) <- d + base; borrow := 1 end
      else begin un.(i + j) <- d; borrow := 0 end
    done;
    let d = un.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* D6: the estimate was one too large; add back. *)
      un.(j + n) <- d + base;
      q.(j) <- !qhat - 1;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let sum = un.(i + j) + vn.(i) + !c in
        un.(i + j) <- sum land mask;
        c := sum lsr limb_bits
      done;
      un.(j + n) <- (un.(j + n) + !c) land mask
    end
    else begin
      un.(j + n) <- d;
      q.(j) <- !qhat
    end
  done;
  (* D8: denormalize the remainder. *)
  let r = normalize (Array.sub un 0 n) in
  (normalize q, shift_right r s)

let divmod (a : t) (b : t) =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then divmod_small a b.(0)
  else divmod_knuth a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let mod_exp_schoolbook ~base:b ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else begin
    let b = rem b modulus in
    let bits = bit_length exp in
    let acc = ref one in
    for i = bits - 1 downto 0 do
      acc := rem (mul !acc !acc) modulus;
      if test_bit exp i then acc := rem (mul !acc b) modulus
    done;
    !acc
  end

(* Toggled off only by benches that want the seed-era cost model; reads
   are safe from any domain, but don't flip it while other domains run. *)
let use_montgomery = ref true

module Mont = struct
  (* Montgomery arithmetic over the 26-bit limbs.  For an odd modulus m
     of k limbs, R = 2^(26k) and values live as residues a*R mod m in
     padded k-limb arrays.  The word-at-a-time CIOS product interleaves
     multiplication with the reduction, so the hot loop is a single
     fused pass with no division anywhere: limb products (52 bits) plus
     carries stay inside the native int exactly as in [mul]. *)

  type ctx = {
    m : t;  (** the modulus itself, normalized; odd and > 1 *)
    limbs : int array;  (** modulus limbs, length [k] *)
    k : int;
    m0' : int;  (** -m^-1 mod 2^26 *)
    r2 : int array;  (** R^2 mod m, padded to [k] limbs *)
    one_m : int array;  (** R mod m = Montgomery form of 1 *)
    one_lit : int array;  (** literal 1 padded to [k] limbs, for from_mont *)
  }

  let modulus ctx = ctx.m

  let pad k (a : t) =
    let r = Array.make k 0 in
    Array.blit a 0 r 0 (Array.length a);
    r

  (* c = mont(a, b) = a * b * R^-1 mod m, all as k-limb arrays, using
     the coarsely-integrated operand-scanning (CIOS) schedule.  Inputs
     must be < m; the output is fully reduced. *)
  let mul_raw ctx (a : int array) (b : int array) : int array =
    let k = ctx.k and m = ctx.limbs and m0' = ctx.m0' in
    let t = Array.make (k + 2) 0 in
    for i = 0 to k - 1 do
      let ai = a.(i) in
      let c = ref 0 in
      for j = 0 to k - 1 do
        let x = t.(j) + (ai * b.(j)) + !c in
        t.(j) <- x land mask;
        c := x lsr limb_bits
      done;
      let x = t.(k) + !c in
      t.(k) <- x land mask;
      t.(k + 1) <- x lsr limb_bits;
      (* u makes t divisible by 2^26; add u*m and shift one limb down. *)
      let u = (t.(0) * m0') land mask in
      let c = ref ((t.(0) + (u * m.(0))) lsr limb_bits) in
      for j = 1 to k - 1 do
        let x = t.(j) + (u * m.(j)) + !c in
        t.(j - 1) <- x land mask;
        c := x lsr limb_bits
      done;
      let x = t.(k) + !c in
      t.(k - 1) <- x land mask;
      t.(k) <- t.(k + 1) + (x lsr limb_bits);
      t.(k + 1) <- 0
    done;
    (* CIOS leaves t < 2m (m < R), so at most one subtraction. *)
    let ge =
      t.(k) <> 0
      ||
      let rec cmp i = if i < 0 then true else if t.(i) <> m.(i) then t.(i) > m.(i) else cmp (i - 1) in
      cmp (k - 1)
    in
    let r = Array.sub t 0 k in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to k - 1 do
        let d = r.(i) - m.(i) - !borrow in
        if d < 0 then begin
          r.(i) <- d + base;
          borrow := 1
        end
        else begin
          r.(i) <- d;
          borrow := 0
        end
      done
    end;
    r

  let make (m : t) : ctx option =
    if Array.length m = 0 || m.(0) land 1 = 0 || equal m one then None
    else begin
      let k = Array.length m in
      (* -m[0]^-1 mod 2^26 by Hensel lifting: each step doubles the
         bits of precision, 1 -> 32 in five steps. *)
      let m0 = m.(0) in
      let inv = ref 1 in
      for _ = 1 to 5 do
        let t = (m0 * !inv) land mask in
        inv := (!inv * ((2 - t) land mask)) land mask
      done;
      assert ((m0 * !inv) land mask = 1);
      let m0' = (base - !inv) land mask in
      let r2 = pad k (rem (shift_left one (2 * limb_bits * k)) m) in
      let one_m = pad k (rem (shift_left one (limb_bits * k)) m) in
      Some { m; limbs = pad k m; k; m0'; r2; one_m; one_lit = pad k one }
    end

  let to_mont ctx a = normalize (mul_raw ctx (pad ctx.k (rem a ctx.m)) ctx.r2)
  let from_mont ctx a = normalize (mul_raw ctx (pad ctx.k a) ctx.one_lit)
  let one ctx = normalize (Array.copy ctx.one_m)

  let mul ctx a b =
    normalize (mul_raw ctx (pad ctx.k (rem a ctx.m)) (pad ctx.k (rem b ctx.m)))

  (* b^e mod m as a Montgomery residue (k-limb array). *)
  let exp_raw ctx (b : t) (e : t) : int array =
    let x = mul_raw ctx (pad ctx.k (rem b ctx.m)) ctx.r2 in
    let ebits = bit_length e in
    if ebits = 0 then Array.copy ctx.one_m
    else if Array.length e = 1 && e.(0) = 65537 then begin
      (* The RSA verify exponent: 16 squarings and one multiply, no
         window table to fill. *)
      let acc = ref x in
      for _ = 1 to 16 do
        acc := mul_raw ctx !acc !acc
      done;
      mul_raw ctx !acc x
    end
    else if ebits <= 8 then begin
      (* Short exponents don't amortize a window table. *)
      let acc = ref (Array.copy x) in
      for i = ebits - 2 downto 0 do
        acc := mul_raw ctx !acc !acc;
        if test_bit e i then acc := mul_raw ctx !acc x
      done;
      !acc
    end
    else begin
      (* 4-bit sliding windows over the precomputed odd powers
         x^1, x^3, ..., x^15: one multiply per window instead of one
         per set bit. *)
      let x2 = mul_raw ctx x x in
      let odd = Array.make 8 x in
      for i = 1 to 7 do
        odd.(i) <- mul_raw ctx odd.(i - 1) x2
      done;
      let acc = ref (Array.copy ctx.one_m) in
      let i = ref (ebits - 1) in
      while !i >= 0 do
        if not (test_bit e !i) then begin
          acc := mul_raw ctx !acc !acc;
          decr i
        end
        else begin
          (* Largest window of <= 4 bits ending in a set bit. *)
          let l = ref (max (!i - 3) 0) in
          while not (test_bit e !l) do
            incr l
          done;
          let w = ref 0 in
          for j = !i downto !l do
            w := (!w lsl 1) lor (if test_bit e j then 1 else 0)
          done;
          for _ = !l to !i do
            acc := mul_raw ctx !acc !acc
          done;
          acc := mul_raw ctx !acc odd.((!w - 1) / 2);
          i := !l - 1
        end
      done;
      !acc
    end

  let exp_mont ctx ~base:b ~exp:e = normalize (exp_raw ctx b e)
  let exp ctx ~base:b ~exp:e = normalize (mul_raw ctx (exp_raw ctx b e) ctx.one_lit)
end

let mod_exp ~base:b ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if (not !use_montgomery) || is_even modulus then mod_exp_schoolbook ~base:b ~exp ~modulus
  else begin
    match Mont.make modulus with
    | Some ctx -> Mont.exp ctx ~base:b ~exp
    | None -> mod_exp_schoolbook ~base:b ~exp ~modulus (* modulus = 1 *)
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Signed values, needed only inside the extended Euclid below. *)
type signed = { neg : bool; mag : t }

let s_of t = { neg = false; mag = t }

let s_sub x y =
  (* x - y for signed values *)
  match (x.neg, y.neg) with
  | false, true -> { neg = false; mag = add x.mag y.mag }
  | true, false -> { neg = not (is_zero (add x.mag y.mag)); mag = add x.mag y.mag }
  | false, false ->
    if compare x.mag y.mag >= 0 then { neg = false; mag = sub x.mag y.mag }
    else { neg = true; mag = sub y.mag x.mag }
  | true, true ->
    if compare y.mag x.mag >= 0 then { neg = false; mag = sub y.mag x.mag }
    else { neg = true; mag = sub x.mag y.mag }

let s_mul_nat x n =
  let mag = mul x.mag n in
  { neg = x.neg && not (is_zero mag); mag }

let mod_inv a m =
  if is_zero m then raise Division_by_zero;
  (* Extended Euclid keeping only the Bezout coefficient of [a]. *)
  let rec go old_r r old_t t =
    if is_zero r then (old_r, old_t)
    else begin
      let qn, rn = divmod old_r r in
      go r rn t (s_sub old_t (s_mul_nat t qn))
    end
  in
  let g, t = go (rem a m) m (s_of one) (s_of zero) in
  if not (equal g one) then None
  else begin
    let x = rem t.mag m in
    if t.neg && not (is_zero x) then Some (sub m x) else Some x
  end

(* Radix conversions extract or insert digits directly at their bit
   offset in the limb array, one pass over the output: the old
   shift-or-divide per digit made these O(limbs * digits). *)

let of_bytes_be s =
  let len = String.length s in
  let r = Array.make (((len * 8) + limb_bits - 1) / limb_bits) 0 in
  let acc = ref 0 and accbits = ref 0 and limb = ref 0 in
  for i = len - 1 downto 0 do
    acc := !acc lor (Char.code s.[i] lsl !accbits);
    accbits := !accbits + 8;
    if !accbits >= limb_bits then begin
      r.(!limb) <- !acc land mask;
      incr limb;
      acc := !acc lsr limb_bits;
      accbits := !accbits - limb_bits
    end
  done;
  if !accbits > 0 && !limb < Array.length r then r.(!limb) <- !acc;
  normalize r

let to_bytes_be ?length (a : t) =
  let nbytes = (bit_length a + 7) / 8 in
  let total =
    match length with
    | None -> max nbytes 1
    | Some l ->
      if nbytes > l then invalid_arg "Bignum.to_bytes_be: value too large";
      l
  in
  let buf = Bytes.make total '\000' in
  let la = Array.length a in
  for i = 0 to nbytes - 1 do
    (* i-th byte counting from the least-significant end. *)
    let off = 8 * i in
    let limb = off / limb_bits and sh = off mod limb_bits in
    let v = a.(limb) lsr sh in
    let v =
      if sh > limb_bits - 8 && limb + 1 < la then v lor (a.(limb + 1) lsl (limb_bits - sh))
      else v
    in
    Bytes.set buf (total - 1 - i) (Char.chr (v land 0xff))
  done;
  Bytes.unsafe_to_string buf

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bignum.of_hex: bad digit"

let of_hex s =
  let ndigits = ref 0 in
  String.iter (fun c -> if c <> '_' then incr ndigits) s;
  let r = Array.make (((!ndigits * 4) + limb_bits - 1) / limb_bits) 0 in
  let acc = ref 0 and accbits = ref 0 and limb = ref 0 in
  for i = String.length s - 1 downto 0 do
    if s.[i] <> '_' then begin
      acc := !acc lor (hex_digit s.[i] lsl !accbits);
      accbits := !accbits + 4;
      if !accbits >= limb_bits then begin
        r.(!limb) <- !acc land mask;
        incr limb;
        acc := !acc lsr limb_bits;
        accbits := !accbits - limb_bits
      end
    end
  done;
  if !accbits > 0 && !limb < Array.length r then r.(!limb) <- !acc;
  normalize r

let to_hex (a : t) =
  if is_zero a then "0"
  else begin
    let n = (bit_length a + 3) / 4 in
    let la = Array.length a in
    String.init n (fun idx ->
        let off = 4 * (n - 1 - idx) in
        let limb = off / limb_bits and sh = off mod limb_bits in
        let v = a.(limb) lsr sh in
        let v =
          if sh > limb_bits - 4 && limb + 1 < la then v lor (a.(limb + 1) lsl (limb_bits - sh))
          else v
        in
        "0123456789abcdef".[v land 0xf])
  end

(* Decimal digits don't align with limb boundaries, so full linearity is
   out; instead process 7 digits (one sub-limb chunk of 10^7 < 2^26) per
   multiply/divide pass, a 7x fewer-passes version of the old loops. *)
let dec_chunk = 10_000_000
let dec_chunk_digits = 7

let mul_small (a : t) c : t =
  assert (c >= 0 && c < base);
  if c = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (a.(i) * c) + !carry in
      r.(i) <- p land mask;
      carry := p lsr limb_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

let of_decimal s =
  if String.length s = 0 then invalid_arg "Bignum.of_decimal: empty";
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> Buffer.add_char buf c
      | '_' -> ()
      | _ -> invalid_arg "Bignum.of_decimal: bad digit")
    s;
  let s = Buffer.contents buf in
  let n = String.length s in
  if n = 0 then zero
  else begin
    let first =
      let f = n mod dec_chunk_digits in
      if f = 0 then dec_chunk_digits else f
    in
    let r = ref (of_int (int_of_string (String.sub s 0 first))) in
    let i = ref first in
    while !i < n do
      r := add (mul_small !r dec_chunk) (of_int (int_of_string (String.sub s !i dec_chunk_digits)));
      i := !i + dec_chunk_digits
    done;
    !r
  end

let to_decimal (a : t) =
  if is_zero a then "0"
  else begin
    (* Repeated in-place division by 10^7, collecting 7 digits a pass. *)
    let work = Array.copy a in
    let n = ref (Array.length work) in
    let rems = ref [] in
    while !n > 0 do
      let r = ref 0 in
      for i = !n - 1 downto 0 do
        let cur = (!r lsl limb_bits) lor work.(i) in
        work.(i) <- cur / dec_chunk;
        r := cur mod dec_chunk
      done;
      while !n > 0 && work.(!n - 1) = 0 do
        decr n
      done;
      rems := !r :: !rems
    done;
    match !rems with
    | [] -> "0"
    | first :: rest ->
      let buf = Buffer.create 32 in
      Buffer.add_string buf (string_of_int first);
      List.iter (fun r -> Buffer.add_string buf (Printf.sprintf "%07d" r)) rest;
      Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_decimal a)
