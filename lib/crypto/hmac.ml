type hash = Sha1 | Sha256

let block_size = 64 (* both SHA-1 and SHA-256 use 64-byte blocks *)

let raw_digest hash s =
  match hash with Sha1 -> Sha1.digest s | Sha256 -> Sha256.digest s

(* A key schedule is the pair of hash contexts already fed with the
   ipad/opad-padded key block.  The padded block is exactly one
   compression, so a schedule captures all per-key work: MACing a
   message then costs two context copies and the message bytes only. *)
type fed = Fed1 of Sha1.ctx | Fed256 of Sha256.ctx

type schedule = { inner : fed; outer : fed }

let padded_key hash key fill =
  let key = if String.length key > block_size then raw_digest hash key else key in
  String.init block_size (fun i ->
      let k = if i < String.length key then Char.code key.[i] else 0 in
      Char.chr (k lxor fill))

let schedule ~hash ~key =
  let ipad = padded_key hash key 0x36 and opad = padded_key hash key 0x5c in
  match hash with
  | Sha1 ->
    let inner = Sha1.init () and outer = Sha1.init () in
    Sha1.feed inner ipad;
    Sha1.feed outer opad;
    { inner = Fed1 inner; outer = Fed1 outer }
  | Sha256 ->
    let inner = Sha256.init () and outer = Sha256.init () in
    Sha256.feed inner ipad;
    Sha256.feed outer opad;
    { inner = Fed256 inner; outer = Fed256 outer }

let mac_with sched msg =
  match (sched.inner, sched.outer) with
  | Fed1 inner, Fed1 outer ->
    let inner = Sha1.copy inner in
    Sha1.feed inner msg;
    let outer = Sha1.copy outer in
    Sha1.feed outer (Sha1.finalize inner);
    Sha1.finalize outer
  | Fed256 inner, Fed256 outer ->
    let inner = Sha256.copy inner in
    Sha256.feed inner msg;
    let outer = Sha256.copy outer in
    Sha256.feed outer (Sha256.finalize inner);
    Sha256.finalize outer
  | _ -> assert false

(* Per-domain schedule cache: slaves sign thousands of pledges under
   one key, so (hash, key) repeats overwhelmingly.  Domain-local state
   keeps the sharded parallel scheduler free of cross-domain races; the
   cache only memoizes a pure function, so contents never affect
   output. *)
let cache_capacity = 64

let cache : (hash * string, schedule) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let mac ~hash ~key msg =
  let tbl = Domain.DLS.get cache in
  let sched =
    match Hashtbl.find_opt tbl (hash, key) with
    | Some s -> s
    | None ->
      let s = schedule ~hash ~key in
      if Hashtbl.length tbl >= cache_capacity then Hashtbl.reset tbl;
      Hashtbl.add tbl (hash, key) s;
      s
  in
  mac_with sched msg

let hex_mac ~hash ~key msg = Hex.encode (mac ~hash ~key msg)

let equal_const_time a b =
  String.length a = String.length b
  && begin
       let acc = ref 0 in
       String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
       !acc = 0
     end
