(* Levels are stored bottom-up: levels.(0) is the hashed leaves and the
   last level is the singleton root.  Leaf and interior hashes are
   domain-separated so a leaf cannot be replayed as an interior node. *)

type t = { levels : string array array }

let hash_leaf data = Sha256.digest ("\x00" ^ data)
let hash_node l r = Sha256.digest ("\x01" ^ l ^ r)

let build leaves =
  if leaves = [] then invalid_arg "Merkle.build: no leaves";
  let level0 = Array.of_list (List.map hash_leaf leaves) in
  let rec up acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else begin
      let n = Array.length level in
      let parent =
        Array.init ((n + 1) / 2) (fun i ->
            let l = level.(2 * i) in
            let r = if (2 * i) + 1 < n then level.((2 * i) + 1) else l in
            hash_node l r)
      in
      up (level :: acc) parent
    end
  in
  { levels = Array.of_list (up [] level0) }

let root t =
  let top = t.levels.(Array.length t.levels - 1) in
  top.(0)

let leaf_count t = Array.length t.levels.(0)

type proof = { leaf_index : int; path : (string * [ `Left | `Right ]) list }

let prove t index =
  if index < 0 || index >= leaf_count t then invalid_arg "Merkle.prove: bad index";
  let rec collect level i acc =
    if level >= Array.length t.levels - 1 then List.rev acc
    else begin
      let nodes = t.levels.(level) in
      let n = Array.length nodes in
      let sibling, side =
        if i land 1 = 0 then
          ((if i + 1 < n then nodes.(i + 1) else nodes.(i)), `Right)
        else (nodes.(i - 1), `Left)
      in
      collect (level + 1) (i / 2) ((sibling, side) :: acc)
    end
  in
  { leaf_index = index; path = collect 0 index [] }

let root_of_proof ~leaf proof =
  let acc = ref (hash_leaf leaf) in
  List.iter
    (fun (sibling, side) ->
      acc := (match side with `Left -> hash_node sibling !acc | `Right -> hash_node !acc sibling))
    proof.path;
  !acc

let verify ~root:expected ~leaf proof =
  Hmac.equal_const_time (root_of_proof ~leaf proof) expected

let proof_length proof = List.length proof.path
