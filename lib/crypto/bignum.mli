(** Arbitrary-precision natural numbers.

    Implemented from scratch on top of OCaml's native [int]: numbers are
    little-endian arrays of 26-bit limbs, so limb products and the column
    sums of schoolbook multiplication fit comfortably in a 63-bit [int].
    Values are immutable and always normalized (no most-significant zero
    limbs; zero is the empty array).

    This module backs {!Rsa} and {!Mr_prime}; only natural (non-negative)
    arithmetic is exposed.  Subtraction of a larger number raises. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] converts a non-negative [int].  Raises [Invalid_argument]
    on negative input. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in a native [int]. *)

val is_zero : t -> bool
val is_even : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val succ : t -> t
val pred : t -> t
(** [pred n] requires [n > 0]. *)

val sub : t -> t -> t
(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)

val mul : t -> t -> t
val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b].
    Raises [Division_by_zero] when [b] is zero.  Long division is Knuth's
    Algorithm D over 26-bit limbs. *)

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** [bit_length n] is the index of the highest set bit plus one;
    [bit_length zero = 0]. *)

val test_bit : t -> int -> bool

val mod_exp : base:t -> exp:t -> modulus:t -> t
(** [mod_exp ~base ~exp ~modulus] is [base^exp mod modulus].
    [modulus] must be non-zero.  Odd moduli > 1 go through the
    Montgomery kernel ({!Mont}) with 4-bit sliding-window
    exponentiation; even moduli (and the degenerate modulus 1) fall
    back to {!mod_exp_schoolbook}.  Both paths compute the same exact
    value — the Montgomery representation is internal only. *)

val mod_exp_schoolbook : base:t -> exp:t -> modulus:t -> t
(** The seed implementation: left-to-right binary exponentiation with a
    full division per step.  Kept as the reference for differential
    tests and as the baseline the E15 bench measures against. *)

val use_montgomery : bool ref
(** When [false], {!mod_exp} (and the RSA/Miller-Rabin fast paths built
    on {!Mont}) fall back to the schoolbook kernel.  Defaults to
    [true]; benches flip it to measure the seed baseline.  Toggle only
    while no other domain is computing. *)

module Mont : sig
  (** Montgomery arithmetic for a fixed odd modulus: a per-modulus
      context precomputes [-m^-1 mod 2^26] and [R^2 mod m]
      (R = 2^(26k) for a k-limb modulus), after which modular products
      cost one fused CIOS pass with no division. *)

  type ctx

  val make : t -> ctx option
  (** [make m] is [None] unless [m] is odd and [> 1]. *)

  val modulus : ctx -> t

  val to_mont : ctx -> t -> t
  (** Montgomery residue [a * R mod m]; reduces [a] mod [m] first. *)

  val from_mont : ctx -> t -> t
  val one : ctx -> t
  (** The Montgomery residue of 1, i.e. [R mod m]. *)

  val mul : ctx -> t -> t -> t
  (** Product of two Montgomery residues, as a Montgomery residue. *)

  val exp : ctx -> base:t -> exp:t -> t
  (** [exp ctx ~base ~exp] is [base^exp mod m] in the ordinary domain:
      4-bit sliding windows over precomputed odd powers, with a
      dedicated 16-squarings-and-one-multiply path for exponent
      65537. *)

  val exp_mont : ctx -> base:t -> exp:t -> t
  (** Like {!exp} but returns the Montgomery residue, for callers that
      keep a squaring chain in Montgomery form (Miller-Rabin). *)
end

val gcd : t -> t -> t

val mod_inv : t -> t -> t option
(** [mod_inv a m] is [Some x] with [a*x = 1 (mod m)] when
    [gcd a m = 1], [None] otherwise. *)

val of_bytes_be : string -> t
(** Big-endian unsigned interpretation of a byte string. *)

val to_bytes_be : ?length:int -> t -> string
(** Big-endian bytes, left-padded with zeros to [length] when given.
    Raises [Invalid_argument] if the value does not fit in [length]. *)

val of_hex : string -> t
val to_hex : t -> string
(** Lower-case hex without leading zeros; ["0"] for zero. *)

val of_decimal : string -> t
val to_decimal : t -> string

val pp : Format.formatter -> t -> unit
(** Prints the decimal representation. *)
