(** Merkle hash trees (Merkle, Crypto '89), the authentication structure
    behind the paper's *state signing* baseline: the content owner signs
    only the root, and untrusted storage proves membership of each data
    block with a logarithmic path. *)

type t

val build : string list -> t
(** [build leaves] hashes every leaf and combines pairwise with SHA-256,
    duplicating the last node of odd levels.  Raises [Invalid_argument]
    on an empty list. *)

val root : t -> string
(** Raw root digest. *)

val leaf_count : t -> int

type proof = { leaf_index : int; path : (string * [ `Left | `Right ]) list }
(** Sibling digests from leaf level to the root; the side says where the
    sibling sits relative to the running hash. *)

val prove : t -> int -> proof
(** Inclusion proof for the leaf at the given index. *)

val root_of_proof : leaf:string -> proof -> string
(** Root implied by folding the raw leaf data up the proof path.  A
    proof is valid for [leaf] against root [r] iff this returns [r];
    batched verifiers use it to check many proofs against one
    already-verified root without rehashing the whole tree. *)

val verify : root:string -> leaf:string -> proof -> bool
(** Recomputes the path from the raw leaf data and compares roots. *)

val proof_length : proof -> int
