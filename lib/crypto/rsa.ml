type public_key = {
  n : Bignum.t;
  e : Bignum.t;
  n_mont : Bignum.Mont.ctx option;
}

type private_key = {
  pub : public_key;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
  dp : Bignum.t;
  dq : Bignum.t;
  qinv : Bignum.t;
  p_mont : Bignum.Mont.ctx option;
  q_mont : Bignum.Mont.ctx option;
}

let e65537 = Bignum.of_int 65537

let make_public ~n ~e = { n; e; n_mont = Bignum.Mont.make n }

(* All exponentiations go through here: the cached Montgomery context
   when there is one and the kernel is enabled, the seed schoolbook
   path otherwise (even/degenerate moduli from hostile decodes, or the
   E15 baseline flag).  Both compute the identical value. *)
let mexp ctx ~base ~exp ~modulus =
  match ctx with
  | Some c when !Bignum.use_montgomery -> Bignum.Mont.exp c ~base ~exp
  | _ -> Bignum.mod_exp_schoolbook ~base ~exp ~modulus

let generate g ~bits =
  if bits < 64 then invalid_arg "Rsa.generate: modulus too small";
  let half = bits / 2 in
  let rec attempt () =
    let p = Mr_prime.random_prime g ~bits:half in
    let q = Mr_prime.random_prime g ~bits:(bits - half) in
    if Bignum.equal p q then attempt ()
    else begin
      let n = Bignum.mul p q in
      let p1 = Bignum.pred p and q1 = Bignum.pred q in
      let phi = Bignum.mul p1 q1 in
      match Bignum.mod_inv e65537 phi with
      | None -> attempt () (* gcd(e, phi) <> 1; rare, retry *)
      | Some d ->
        let qinv =
          match Bignum.mod_inv q p with
          | Some x -> x
          | None -> assert false (* p, q distinct primes *)
        in
        (* Keep p the larger factor so the CRT recombination below can
           subtract without underflow. *)
        let p, q, p1, q1, qinv =
          if Bignum.compare p q > 0 then (p, q, p1, q1, qinv)
          else begin
            match Bignum.mod_inv p q with
            | Some x -> (q, p, q1, p1, x)
            | None -> assert false
          end
        in
        {
          pub = make_public ~n ~e:e65537;
          d;
          p;
          q;
          dp = Bignum.rem d p1;
          dq = Bignum.rem d q1;
          qinv;
          p_mont = Bignum.Mont.make p;
          q_mont = Bignum.Mont.make q;
        }
    end
  in
  attempt ()

let key_bytes pub = (Bignum.bit_length pub.n + 7) / 8

(* EMSA-PKCS1-v1.5 style: 0x00 0x01 FF..FF 0x00 <ascii tag> <digest>.
   We use a short ASCII tag instead of the DER DigestInfo blob; the
   encoding is fixed-width and collision-free, which is all the
   simulation's security model needs.  For the small simulation keys
   the experiments sweep (256+ bits) the digest is truncated to fit,
   with a 16-byte floor — the usual move (cf. ECDSA) when the modulus
   is narrower than the hash. *)
let emsa_encode ~em_len msg =
  let tag = "s:" in
  let digest =
    let full = Sha256.digest msg in
    let room = em_len - 8 - 3 - String.length tag in
    if room >= String.length full then full
    else if room >= 16 then String.sub full 0 room
    else invalid_arg "Rsa: modulus too small for encoding"
  in
  let fixed = 3 + String.length tag + String.length digest in
  let ps_len = em_len - fixed in
  let buf = Bytes.make em_len '\xff' in
  Bytes.set buf 0 '\x00';
  Bytes.set buf 1 '\x01';
  Bytes.set buf (2 + ps_len) '\x00';
  Bytes.blit_string tag 0 buf (3 + ps_len) (String.length tag);
  Bytes.blit_string digest 0 buf (3 + ps_len + String.length tag) (String.length digest);
  Bytes.unsafe_to_string buf

let sign_no_crt key msg =
  let em_len = key_bytes key.pub in
  let m = Bignum.of_bytes_be (emsa_encode ~em_len msg) in
  let s = mexp key.pub.n_mont ~base:m ~exp:key.d ~modulus:key.pub.n in
  Bignum.to_bytes_be ~length:em_len s

let sign key msg =
  (* CRT: two half-size exponentiations instead of one full-size one,
     each in Montgomery form over its own cached context. *)
  let em_len = key_bytes key.pub in
  let m = Bignum.of_bytes_be (emsa_encode ~em_len msg) in
  let sp = mexp key.p_mont ~base:m ~exp:key.dp ~modulus:key.p in
  let sq = mexp key.q_mont ~base:m ~exp:key.dq ~modulus:key.q in
  (* h = qinv * (sp - sq) mod p; invariant from generate: p > q so the
     subtraction is done modulo p. *)
  let diff =
    if Bignum.compare sp sq >= 0 then Bignum.sub sp sq
    else Bignum.sub (Bignum.add sp key.p) sq
  in
  let h = Bignum.rem (Bignum.mul key.qinv diff) key.p in
  let s = Bignum.add sq (Bignum.mul h key.q) in
  Bignum.to_bytes_be ~length:em_len s

let verify pub ~msg ~signature =
  let em_len = key_bytes pub in
  String.length signature = em_len
  && begin
       let s = Bignum.of_bytes_be signature in
       Bignum.compare s pub.n < 0
       && begin
            let m = mexp pub.n_mont ~base:s ~exp:pub.e ~modulus:pub.n in
            let em = Bignum.to_bytes_be ~length:em_len m in
            Hmac.equal_const_time em (emsa_encode ~em_len msg)
          end
     end

let fingerprint pub =
  Hex.encode (Sha256.digest (Bignum.to_hex pub.n ^ "/" ^ Bignum.to_hex pub.e))

let pp_public fmt pub =
  Format.fprintf fmt "rsa-%d:%s" (8 * key_bytes pub) (String.sub (fingerprint pub) 0 12)
