(** RSA signatures with a PKCS#1 v1.5-style encoding over SHA-256.

    Key sizes are a simulation parameter: the protocol analysis only
    needs unforgeability-by-assumption, so experiments default to small
    keys (256–512 bits) to keep simulated signing realistic in shape
    (signing much more expensive than verification, the asymmetry the
    auditor exploits in §3.4 of the paper) without dominating run time. *)

type public_key = {
  n : Bignum.t;
  e : Bignum.t;
  n_mont : Bignum.Mont.ctx option;
      (* Montgomery context for n, built once at key creation/decode;
         [None] only for degenerate (even or trivial) decoded moduli,
         which then verify via the schoolbook path. *)
}

type private_key = {
  pub : public_key;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
  dp : Bignum.t; (* d mod (p-1), for CRT signing *)
  dq : Bignum.t; (* d mod (q-1) *)
  qinv : Bignum.t; (* q^-1 mod p *)
  p_mont : Bignum.Mont.ctx option; (* Montgomery contexts for the CRT *)
  q_mont : Bignum.Mont.ctx option; (* half-exponentiations *)
}

val make_public : n:Bignum.t -> e:Bignum.t -> public_key
(** Builds the key together with its cached Montgomery context; every
    decoded or hand-assembled public key should come through here. *)

val generate : Prng.t -> bits:int -> private_key
(** [generate g ~bits] makes a fresh key with a [bits]-bit modulus and
    public exponent 65537.  Requires [bits >= 64]. *)

val key_bytes : public_key -> int
(** Size of the modulus in bytes; signatures have this length. *)

val sign : private_key -> string -> string
(** [sign key msg] is the RSA signature (CRT-accelerated) of the
    PKCS#1-style encoding of [SHA-256(msg)]. *)

val sign_no_crt : private_key -> string -> string
(** Reference signing without the CRT optimisation; used by tests to
    cross-check [sign]. *)

val verify : public_key -> msg:string -> signature:string -> bool

val fingerprint : public_key -> string
(** Stable hex identifier for a public key (SHA-256 of its encoding). *)

val pp_public : Format.formatter -> public_key -> unit
