(** SHA-1 (FIPS 180-1), the hash function the paper specifies for
    pledge packets.  Implemented from the standard; verified against
    the FIPS test vectors in the test suite. *)

type ctx

val init : unit -> ctx

val copy : ctx -> ctx
(** Independent snapshot of a context mid-stream; feeding either copy
    afterwards does not affect the other.  Lets HMAC precompute the
    padded-key block once per key. *)

val feed : ctx -> string -> unit
val feed_bytes : ctx -> bytes -> off:int -> len:int -> unit

val finalize : ctx -> string
(** 20-byte raw digest.  The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot 20-byte raw digest. *)

val hex_digest : string -> string
(** One-shot digest as 40 lower-case hex characters. *)

val digest_size : int
(** 20. *)
