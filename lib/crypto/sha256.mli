(** SHA-256 (FIPS 180-2).  Offered alongside {!Sha1} so experiments can
    measure the cost of a stronger digest; verified against the FIPS
    test vectors in the test suite. *)

type ctx

val init : unit -> ctx

val copy : ctx -> ctx
(** Independent snapshot of a context mid-stream; feeding either copy
    afterwards does not affect the other.  Lets HMAC precompute the
    padded-key block once per key. *)

val feed : ctx -> string -> unit
val feed_bytes : ctx -> bytes -> off:int -> len:int -> unit

val finalize : ctx -> string
(** 32-byte raw digest.  The context must not be reused afterwards. *)

val digest : string -> string
val hex_digest : string -> string

val digest_size : int
(** 32. *)
