(** HMAC (RFC 2104) over either of the hash functions in this library.
    Used by the fast simulated signature scheme in {!Sig_scheme}. *)

type hash = Sha1 | Sha256

type schedule
(** Precomputed per-key state: the two hash contexts already fed with
    the ipad/opad-padded key blocks (one compression each).  MACing
    through a schedule hashes only the message. *)

val schedule : hash:hash -> key:string -> schedule

val mac_with : schedule -> string -> string
(** [mac_with (schedule ~hash ~key) msg = mac ~hash ~key msg],
    bit-for-bit. *)

val mac : hash:hash -> key:string -> string -> string
(** [mac ~hash ~key msg] is the raw HMAC digest of [msg].  Schedules
    are memoized per (hash, key) in a domain-local cache, so repeated
    MACs under one key skip the key setup. *)

val hex_mac : hash:hash -> key:string -> string -> string

val equal_const_time : string -> string -> bool
(** Comparison that does not leak the position of the first mismatch. *)
