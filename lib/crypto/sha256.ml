(* SHA-256 over native ints masked to 32 bits, mirroring the structure of
   Sha1 (64-byte staging buffer, reusable message schedule). *)

let digest_size = 32
let m32 = 0xFFFFFFFF

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 chaining words *)
  block : bytes;
  mutable fill : int;
  mutable total : int;
  w : int array; (* 64-entry message schedule *)
}

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
        0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
      |];
    block = Bytes.create 64;
    fill = 0;
    total = 0;
    w = Array.make 64 0;
  }

let copy ctx =
  {
    h = Array.copy ctx.h;
    block = Bytes.copy ctx.block;
    fill = ctx.fill;
    total = ctx.total;
    w = Array.make 64 0;
  }

let rotr32 x n = ((x lsr n) lor (x lsl (32 - n))) land m32

let compress ctx =
  let b = ctx.block and w = ctx.w and h = ctx.h in
  for t = 0 to 15 do
    w.(t) <-
      (Char.code (Bytes.get b (4 * t)) lsl 24)
      lor (Char.code (Bytes.get b ((4 * t) + 1)) lsl 16)
      lor (Char.code (Bytes.get b ((4 * t) + 2)) lsl 8)
      lor Char.code (Bytes.get b ((4 * t) + 3))
  done;
  for t = 16 to 63 do
    let s0 = rotr32 w.(t - 15) 7 lxor rotr32 w.(t - 15) 18 lxor (w.(t - 15) lsr 3) in
    let s1 = rotr32 w.(t - 2) 17 lxor rotr32 w.(t - 2) 19 lxor (w.(t - 2) lsr 10) in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land m32
  done;
  let a = ref h.(0)
  and bb = ref h.(1)
  and c = ref h.(2)
  and d = ref h.(3)
  and e = ref h.(4)
  and f = ref h.(5)
  and g = ref h.(6)
  and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr32 !e 6 lxor rotr32 !e 11 lxor rotr32 !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) land m32 in
    let t1 = (!hh + s1 + (ch land m32) + k.(t) + ctx.w.(t)) land m32 in
    let s0 = rotr32 !a 2 lxor rotr32 !a 13 lxor rotr32 !a 22 in
    let maj = (!a land !bb) lxor (!a land !c) lxor (!bb land !c) in
    let t2 = (s0 + maj) land m32 in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land m32;
    d := !c;
    c := !bb;
    bb := !a;
    a := (t1 + t2) land m32
  done;
  h.(0) <- (h.(0) + !a) land m32;
  h.(1) <- (h.(1) + !bb) land m32;
  h.(2) <- (h.(2) + !c) land m32;
  h.(3) <- (h.(3) + !d) land m32;
  h.(4) <- (h.(4) + !e) land m32;
  h.(5) <- (h.(5) + !f) land m32;
  h.(6) <- (h.(6) + !g) land m32;
  h.(7) <- (h.(7) + !hh) land m32

let feed_bytes ctx src ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length src then invalid_arg "Sha256.feed_bytes";
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  while !remaining > 0 do
    let space = 64 - ctx.fill in
    let chunk = min space !remaining in
    Bytes.blit src !pos ctx.block ctx.fill chunk;
    ctx.fill <- ctx.fill + chunk;
    pos := !pos + chunk;
    remaining := !remaining - chunk;
    if ctx.fill = 64 then begin
      compress ctx;
      ctx.fill <- 0
    end
  done

let feed ctx s = feed_bytes ctx (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let finalize ctx =
  let total_bits = ctx.total * 8 in
  Bytes.set ctx.block ctx.fill '\x80';
  ctx.fill <- ctx.fill + 1;
  if ctx.fill > 56 then begin
    Bytes.fill ctx.block ctx.fill (64 - ctx.fill) '\000';
    compress ctx;
    ctx.fill <- 0
  end;
  Bytes.fill ctx.block ctx.fill (64 - ctx.fill) '\000';
  for i = 0 to 7 do
    Bytes.set ctx.block (56 + i) (Char.chr ((total_bits lsr (8 * (7 - i))) land 0xff))
  done;
  compress ctx;
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xff))
  done;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  feed ctx s;
  finalize ctx

let hex_digest s = Hex.encode (digest s)
