(* SHA-1 over native ints masked to 32 bits.  The compression function is
   the FIPS 180-1 80-round schedule; padding is the usual 0x80 + length
   suffix.  Streaming contexts buffer one 64-byte block. *)

let digest_size = 20
let m32 = 0xFFFFFFFF

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  block : bytes; (* 64-byte staging buffer *)
  mutable fill : int; (* bytes currently staged *)
  mutable total : int; (* total message bytes fed *)
  w : int array; (* 80-entry message schedule, reused across blocks *)
}

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xEFCDAB89;
    h2 = 0x98BADCFE;
    h3 = 0x10325476;
    h4 = 0xC3D2E1F0;
    block = Bytes.create 64;
    fill = 0;
    total = 0;
    w = Array.make 80 0;
  }

let copy ctx =
  {
    h0 = ctx.h0;
    h1 = ctx.h1;
    h2 = ctx.h2;
    h3 = ctx.h3;
    h4 = ctx.h4;
    block = Bytes.copy ctx.block;
    fill = ctx.fill;
    total = ctx.total;
    w = Array.make 80 0;
  }

let rotl32 x n = ((x lsl n) lor (x lsr (32 - n))) land m32

let compress ctx =
  let b = ctx.block and w = ctx.w in
  for t = 0 to 15 do
    w.(t) <-
      (Char.code (Bytes.get b (4 * t)) lsl 24)
      lor (Char.code (Bytes.get b ((4 * t) + 1)) lsl 16)
      lor (Char.code (Bytes.get b ((4 * t) + 2)) lsl 8)
      lor Char.code (Bytes.get b ((4 * t) + 3))
  done;
  for t = 16 to 79 do
    w.(t) <- rotl32 (w.(t - 3) lxor w.(t - 8) lxor w.(t - 14) lxor w.(t - 16)) 1
  done;
  let a = ref ctx.h0
  and bb = ref ctx.h1
  and c = ref ctx.h2
  and d = ref ctx.h3
  and e = ref ctx.h4 in
  for t = 0 to 79 do
    let f, k =
      if t < 20 then ((!bb land !c) lor (lnot !bb land !d) land m32, 0x5A827999)
      else if t < 40 then (!bb lxor !c lxor !d, 0x6ED9EBA1)
      else if t < 60 then ((!bb land !c) lor (!bb land !d) lor (!c land !d), 0x8F1BBCDC)
      else (!bb lxor !c lxor !d, 0xCA62C1D6)
    in
    let tmp = (rotl32 !a 5 + (f land m32) + !e + k + w.(t)) land m32 in
    e := !d;
    d := !c;
    c := rotl32 !bb 30;
    bb := !a;
    a := tmp
  done;
  ctx.h0 <- (ctx.h0 + !a) land m32;
  ctx.h1 <- (ctx.h1 + !bb) land m32;
  ctx.h2 <- (ctx.h2 + !c) land m32;
  ctx.h3 <- (ctx.h3 + !d) land m32;
  ctx.h4 <- (ctx.h4 + !e) land m32

let feed_bytes ctx src ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length src then invalid_arg "Sha1.feed_bytes";
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  while !remaining > 0 do
    let space = 64 - ctx.fill in
    let chunk = min space !remaining in
    Bytes.blit src !pos ctx.block ctx.fill chunk;
    ctx.fill <- ctx.fill + chunk;
    pos := !pos + chunk;
    remaining := !remaining - chunk;
    if ctx.fill = 64 then begin
      compress ctx;
      ctx.fill <- 0
    end
  done

let feed ctx s = feed_bytes ctx (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let finalize ctx =
  let total_bits = ctx.total * 8 in
  (* Append 0x80, pad with zeros to 56 mod 64, then the 64-bit length. *)
  Bytes.set ctx.block ctx.fill '\x80';
  ctx.fill <- ctx.fill + 1;
  if ctx.fill > 56 then begin
    Bytes.fill ctx.block ctx.fill (64 - ctx.fill) '\000';
    compress ctx;
    ctx.fill <- 0
  end;
  Bytes.fill ctx.block ctx.fill (64 - ctx.fill) '\000';
  for i = 0 to 7 do
    Bytes.set ctx.block (56 + i) (Char.chr ((total_bits lsr (8 * (7 - i))) land 0xff))
  done;
  compress ctx;
  let out = Bytes.create digest_size in
  let put i v =
    Bytes.set out i (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out (i + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out (i + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out (i + 3) (Char.chr (v land 0xff))
  in
  put 0 ctx.h0;
  put 4 ctx.h1;
  put 8 ctx.h2;
  put 12 ctx.h3;
  put 16 ctx.h4;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  feed ctx s;
  finalize ctx

let hex_digest s = Hex.encode (digest s)
