let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139; 149;
    151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199; 211; 223; 227; 229 ]

let random_below g n =
  (* Uniform in [0, n) by rejection over bit_length n bits. *)
  let bits = Bignum.bit_length n in
  let nbytes = (bits + 7) / 8 in
  let rec draw () =
    let raw = Prng.bytes g nbytes in
    let v = Bignum.of_bytes_be raw in
    let v = Bignum.shift_right v ((nbytes * 8) - bits) in
    if Bignum.compare v n < 0 then v else draw ()
  in
  draw ()

(* true = [a] witnesses that [n] is composite.  When a Montgomery
   context for [n] is available the whole chain — the initial a^d and
   the s-1 squarings — stays in Montgomery form; residues are compared
   against the precomputed images of 1 and n-1 (the correspondence is a
   bijection, so comparing in either domain is equivalent). *)
let miller_rabin_witness ?ctx n d s a =
  let n1 = Bignum.pred n in
  match ctx with
  | Some (ctx, one_m, n1_m) ->
    let x = ref (Bignum.Mont.exp_mont ctx ~base:a ~exp:d) in
    if Bignum.equal !x one_m || Bignum.equal !x n1_m then false
    else begin
      let witness = ref true in
      (try
         for _ = 1 to s - 1 do
           x := Bignum.Mont.mul ctx !x !x;
           if Bignum.equal !x n1_m then begin
             witness := false;
             raise Exit
           end
         done
       with Exit -> ());
      !witness
    end
  | None ->
    let x = ref (Bignum.mod_exp ~base:a ~exp:d ~modulus:n) in
    if Bignum.equal !x Bignum.one || Bignum.equal !x n1 then false
    else begin
      let witness = ref true in
      (try
         for _ = 1 to s - 1 do
           x := Bignum.rem (Bignum.mul !x !x) n;
           if Bignum.equal !x n1 then begin
             witness := false;
             raise Exit
           end
         done
       with Exit -> ());
      !witness
    end

let is_probable_prime ?(rounds = 24) g n =
  match Bignum.to_int_opt n with
  | Some v when v < 2 -> false
  | Some v when List.mem v small_primes -> true
  | _ ->
    if Bignum.is_even n then false
    else if
      List.exists
        (fun p -> Bignum.is_zero (Bignum.rem n (Bignum.of_int p)) && Bignum.compare n (Bignum.of_int p) <> 0)
        small_primes
    then false
    else begin
      (* n - 1 = d * 2^s with d odd *)
      let n1 = Bignum.pred n in
      let rec split d s = if Bignum.is_even d then split (Bignum.shift_right d 1) (s + 1) else (d, s) in
      let d, s = split n1 0 in
      (* One Montgomery context shared by all rounds for this n. *)
      let ctx =
        if not !Bignum.use_montgomery then None
        else
          match Bignum.Mont.make n with
          | None -> None
          | Some c -> Some (c, Bignum.Mont.one c, Bignum.Mont.to_mont c n1)
      in
      let three = Bignum.of_int 3 in
      let rec rounds_left k =
        if k = 0 then true
        else begin
          (* a uniform in [2, n-2] *)
          let span = Bignum.sub n three in
          let a = Bignum.add (random_below g span) Bignum.two in
          if miller_rabin_witness ?ctx n d s a then false else rounds_left (k - 1)
        end
      in
      rounds_left rounds
    end

let random_prime g ~bits =
  if bits < 3 then invalid_arg "Mr_prime.random_prime: bits too small";
  let nbytes = (bits + 7) / 8 in
  let rec attempt () =
    let raw = Bytes.of_string (Prng.bytes g nbytes) in
    let candidate = Bignum.shift_right (Bignum.of_bytes_be (Bytes.to_string raw)) ((nbytes * 8) - bits) in
    (* Force the top bit (exact size) and the bottom bit (odd). *)
    let top = Bignum.shift_left Bignum.one (bits - 1) in
    let candidate =
      let c = if Bignum.test_bit candidate (bits - 1) then candidate else Bignum.add candidate top in
      if Bignum.is_even c then Bignum.succ c else c
    in
    (* Walk odd numbers from the candidate; re-draw if we overflow size. *)
    let rec walk c tries =
      if tries = 0 || Bignum.bit_length c > bits then attempt ()
      else if is_probable_prime g c then c
      else walk (Bignum.add c Bignum.two) (tries - 1)
    in
    walk candidate 512
  in
  attempt ()
