module Sim = Secrep_sim.Sim
module Link = Secrep_sim.Link
module Latency = Secrep_sim.Latency
module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Prng = Secrep_crypto.Prng

type config = {
  heartbeat_period : float;
  suspect_timeout : float;
  retry_period : float;
  state_sync_wait : float;
}

let default_config =
  { heartbeat_period = 0.5; suspect_timeout = 2.0; retry_period = 1.0; state_sync_wait = 1.0 }

type 'a slot = { origin : int; req_id : int; payload : 'a; slot_view : int }

type 'a member = {
  id : int;
  mutable up : bool;
  mutable view : int;
  mutable sequencer : int;
  mutable next_deliver : int; (* lowest undelivered slot *)
  log : (int, 'a slot) Hashtbl.t; (* every Ordered seen, by slot *)
  dedup : (int * int, int) Hashtbl.t; (* (origin, req_id) -> slot; rebuilt from log on take-over *)
  mutable next_seq : int; (* meaningful when sequencer *)
  mutable last_heartbeat : float;
  mutable pending : (int * 'a) list; (* my requests not yet seen ordered: (req_id, payload) *)
  mutable next_req_id : int;
  mutable syncing : bool; (* collecting state before installing a view *)
  mutable sync_view : int;
  mutable sync_highest : int;
  sync_replies : (int, int) Hashtbl.t; (* replier -> highest seq, this sync *)
  mutable sync_rounds : int;
  mutable suspect_rounds : int; (* consecutive timeouts; rotates the candidate *)
  delivered_reqs : (int * int, unit) Hashtbl.t;
      (* (origin, req_id) already handed to the application: a request
         re-ordered after losing a view race must not deliver twice *)
  mutable delivered : int;
}

type 'a t = {
  sim : Sim.t;
  config : config;
  trace : Trace.t option;
  members : (int, 'a member) Hashtbl.t;
  ids : int list;
  links : (int * int, Link.t) Hashtbl.t;
  deliver : member:int -> seq:int -> 'a -> unit;
}

let trace t m fmt =
  Printf.ksprintf
    (fun s ->
      match t.trace with
      | Some tr -> Trace.log tr ~time:(Sim.now t.sim) ~source:(Printf.sprintf "master-%d" m) s
      | None -> ())
    fmt

let emit t m event =
  match t.trace with
  | Some tr ->
    Trace.emit tr ~time:(Sim.now t.sim) ~source:(Printf.sprintf "master-%d" m) event
  | None -> ()

let member t id =
  match Hashtbl.find_opt t.members id with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Total_order: unknown member %d" id)

let link t src dst = Hashtbl.find t.links (src, dst)

let send t src dst msg handler =
  if src = dst then ignore (Sim.schedule t.sim ~delay:1e-6 (fun () -> handler msg))
  else Link.send (link t src dst) (fun () -> handler msg)

let rebuild_dedup me =
  Hashtbl.reset me.dedup;
  Hashtbl.iter (fun seq slot -> Hashtbl.replace me.dedup (slot.origin, slot.req_id) seq) me.log

let rec handle t me (msg : 'a Message.t) =
  if me.up then begin
    match msg with
    | Message.Request { origin; req_id; payload } -> on_request t me ~origin ~req_id payload
    | Ordered { view; slot_view; seq; origin; req_id; payload } ->
      on_ordered t me ~view ~seq { origin; req_id; payload; slot_view }
    | Heartbeat { view; sequencer; next_seq } -> on_heartbeat t me ~view ~sequencer ~next_seq
    | Nack { asker; from_seq; upto_seq } -> on_nack t me ~asker ~from_seq ~upto_seq
    | State_request { view; asker } -> on_state_request t me ~view ~asker
    | State_reply { view; replier; highest_seq } -> on_state_reply t me ~view ~replier ~highest_seq
    | New_view { view; sequencer; next_seq } -> on_new_view t me ~view ~sequencer ~next_seq
    | Take_over { view } -> on_take_over t me ~view
  end

and unicast t ~src ~dst msg =
  let dst_member = member t dst in
  send t src dst msg (fun m -> handle t dst_member m)

and broadcast_msg t ~src msg =
  List.iter (fun dst -> if dst <> src then unicast t ~src ~dst msg) t.ids

and on_request t me ~origin ~req_id payload =
  if me.id = me.sequencer && not me.syncing then begin
    match Hashtbl.find_opt me.dedup (origin, req_id) with
    | Some seq -> begin
      (* Duplicate: the origin evidently missed the Ordered; re-send it. *)
      match Hashtbl.find_opt me.log seq with
      | Some slot when origin <> me.id ->
        unicast t ~src:me.id ~dst:origin
          (Message.Ordered
             {
               view = me.view;
               slot_view = slot.slot_view;
               seq;
               origin = slot.origin;
               req_id = slot.req_id;
               payload = slot.payload;
             })
      | Some _ | None -> ()
    end
    | None ->
      let seq = me.next_seq in
      me.next_seq <- seq + 1;
      Hashtbl.replace me.dedup (origin, req_id) seq;
      let slot = { origin; req_id; payload; slot_view = me.view } in
      Hashtbl.replace me.log seq slot;
      trace t me.id "order seq=%d from %d#%d" seq origin req_id;
      let ordered =
        Message.Ordered { view = me.view; slot_view = me.view; seq; origin; req_id; payload }
      in
      broadcast_msg t ~src:me.id ordered;
      (* The sequencer delivers its own slots through the same path. *)
      try_deliver t me
  end
  (* else: not sequencer; the requester's retry will find the new one *)

and on_ordered t me ~view ~seq slot =
  if view >= me.view then begin
    if view > me.view then begin
      (* We learn of a newer view implicitly; the New_view carrying the
         sequencer identity may still be in flight. *)
      me.view <- view
    end;
    me.last_heartbeat <- Sim.now t.sim;
    (match Hashtbl.find_opt me.log seq with
    | None -> Hashtbl.replace me.log seq slot
    | Some existing ->
      (* A slot can be re-assigned by a later view only if the earlier
         assignment never committed anywhere; undelivered conflicts
         yield to the higher view. *)
      if slot.slot_view > existing.slot_view && seq >= me.next_deliver then
        Hashtbl.replace me.log seq slot);
    (* NB: the request stays on our retry list until *delivered* — an
       assignment can still lose a view race and vanish. *)
    if seq > me.next_deliver then request_fill t me ~upto:(seq - 1);
    try_deliver t me
  end

and try_deliver t me =
  let rec drain () =
    match Hashtbl.find_opt me.log me.next_deliver with
    | Some slot ->
      let seq = me.next_deliver in
      me.next_deliver <- seq + 1;
      if slot.origin = me.id then
        me.pending <- List.filter (fun (rid, _) -> rid <> slot.req_id) me.pending;
      (* At-most-once: a request that was re-ordered after losing a view
         race may occupy two slots; every member sees the same slot
         sequence, so every member skips the same duplicates. *)
      if not (Hashtbl.mem me.delivered_reqs (slot.origin, slot.req_id)) then begin
        Hashtbl.replace me.delivered_reqs (slot.origin, slot.req_id) ();
        me.delivered <- me.delivered + 1;
        emit t me.id (Event.Order_delivered { member = me.id; seq });
        t.deliver ~member:me.id ~seq slot.payload
      end;
      drain ()
    | None -> ()
  in
  drain ()

and request_fill t me ~upto =
  if upto >= me.next_deliver then begin
    let nack = Message.Nack { asker = me.id; from_seq = me.next_deliver; upto_seq = upto } in
    (* Ask everyone: after a sequencer crash, the slot may survive only
       on some non-sequencer member. *)
    broadcast_msg t ~src:me.id nack
  end

and on_nack t me ~asker ~from_seq ~upto_seq =
  let count = ref 0 in
  for seq = from_seq to upto_seq do
    match Hashtbl.find_opt me.log seq with
    | Some slot ->
      incr count;
      unicast t ~src:me.id ~dst:asker
        (Message.Ordered
           {
             view = me.view;
             slot_view = slot.slot_view;
             seq;
             origin = slot.origin;
             req_id = slot.req_id;
             payload = slot.payload;
           })
    | None -> ()
  done;
  if !count > 0 then trace t me.id "retransmit %d slots to %d" !count asker

and on_heartbeat t me ~view ~sequencer ~next_seq =
  if view >= me.view then begin
    me.view <- view;
    (* The heartbeat names the live sequencer: a member that missed the
       (lossy) New_view packet re-learns the leadership here instead of
       suspecting a long-dead node forever. *)
    me.sequencer <- sequencer;
    me.last_heartbeat <- Sim.now t.sim;
    me.suspect_rounds <- 0;
    if next_seq - 1 >= me.next_deliver then request_fill t me ~upto:(next_seq - 1)
  end

and on_state_request t me ~view ~asker =
  if view >= me.view then begin
    (* An election is in progress: someone alive is driving it, so do
       not stack further suspicions on top of it. *)
    me.last_heartbeat <- Sim.now t.sim;
    me.suspect_rounds <- 0;
    if view > me.view then begin
      me.view <- view;
      (* A deposed sequencer must stop ordering immediately, and a
         lower-view election still syncing must abort: assigning slots
         concurrently with the new view's sequencer is how replicas
         diverge. *)
      if me.sequencer = me.id then me.sequencer <- asker;
      if me.syncing && me.sync_view < view then me.syncing <- false
    end;
    let highest = Hashtbl.fold (fun seq _ acc -> max seq acc) me.log (-1) in
    unicast t ~src:me.id ~dst:asker (Message.State_reply { view; replier = me.id; highest_seq = highest })
  end

and on_state_reply t me ~view ~replier ~highest_seq =
  if me.syncing && view = me.sync_view && view >= me.view then begin
    Hashtbl.replace me.sync_replies replier highest_seq;
    me.sync_highest <- max me.sync_highest highest_seq;
    (* Heard from every other member: no need to wait out the timer. *)
    if Hashtbl.length me.sync_replies >= List.length t.ids - 1 then
      finish_take_over t me ~view
  end

and on_new_view t me ~view ~sequencer ~next_seq =
  if view >= me.view then begin
    emit t me.id (Event.View_installed { member = me.id; view; sequencer });
    me.view <- view;
    me.sequencer <- sequencer;
    me.last_heartbeat <- Sim.now t.sim;
    me.syncing <- false;
    if next_seq - 1 >= me.next_deliver then request_fill t me ~upto:(next_seq - 1);
    (* Re-send unordered requests to the new sequencer straight away. *)
    resend_pending t me
  end

and resend_pending t me =
  List.iter
    (fun (req_id, payload) ->
      if me.sequencer = me.id then on_request t me ~origin:me.id ~req_id payload
      else
        unicast t ~src:me.id ~dst:me.sequencer
          (Message.Request { origin = me.id; req_id; payload }))
    me.pending

and on_take_over t me ~view =
  me.last_heartbeat <- Sim.now t.sim;
  if view > me.view && not me.syncing then start_take_over t me ~view

and start_take_over t me ~view =
  trace t me.id "taking over as sequencer for view %d" view;
  me.syncing <- true;
  me.sync_view <- view;
  me.sync_highest <- Hashtbl.fold (fun seq _ acc -> max seq acc) me.log (-1);
  Hashtbl.reset me.sync_replies;
  me.sync_rounds <- 0;
  sync_round t me ~view

and sync_round t me ~view =
  (* Re-broadcast the state request until every other member has
     answered (losing a survivor's reply could otherwise make us reuse
     a slot it already holds).  Crashed members never answer, so a
     bounded number of rounds breaks the wait. *)
  if me.up && me.syncing && me.sync_view = view && view >= me.view then begin
    me.sync_rounds <- me.sync_rounds + 1;
    if me.sync_rounds > 8 then finish_take_over t me ~view
    else begin
      broadcast_msg t ~src:me.id (Message.State_request { view; asker = me.id });
      ignore
        (Sim.schedule t.sim ~delay:t.config.state_sync_wait (fun () ->
             if me.up && me.syncing && me.sync_view = view then sync_round t me ~view))
    end
  end

and finish_take_over t me ~view =
  (* Abort if a higher view's election reached us while we were
     collecting state: finishing anyway would *downgrade* our view and
     put two sequencers in business at once. *)
  if view < me.view then me.syncing <- false
  else begin
  me.syncing <- false;
  me.view <- view;
  me.sequencer <- me.id;
  emit t me.id (Event.View_installed { member = me.id; view; sequencer = me.id });
  (* Recompute our own log top *now*: slots may have arrived (and even
     been delivered) while the state-sync rounds were running, and
     re-using their numbers would orphan the requests they carry. *)
  let own_top = Hashtbl.fold (fun seq _ acc -> max seq acc) me.log (-1) in
  me.next_seq <- max me.sync_highest own_top + 1;
  (* Rebuild request dedup from the log: after the state-sync round we
     hold the highest slot anyone admitted to, and nack-driven fills
     close the holes before those slots can be re-ordered. *)
  rebuild_dedup me;
  broadcast_msg t ~src:me.id (Message.New_view { view; sequencer = me.id; next_seq = me.next_seq });
  me.last_heartbeat <- Sim.now t.sim;
  (* Close our own holes (slots other members hold that we missed). *)
  request_fill t me ~upto:(me.next_seq - 1);
  resend_pending t me;
  try_deliver t me
  end

let check_suspect t me =
  if me.up && me.sequencer <> me.id && not me.syncing then begin
    let silent_for = Sim.now t.sim -. me.last_heartbeat in
    if silent_for > t.config.suspect_timeout then begin
      me.suspect_rounds <- me.suspect_rounds + 1;
      let candidates = List.filter (fun id -> id <> me.sequencer) t.ids in
      match candidates with
      | [] -> ()
      | _ :: _ ->
        (* Rotate through candidates on successive rounds, so a crashed
           first choice does not wedge the view change. *)
        let idx = (me.suspect_rounds - 1) mod List.length candidates in
        let candidate = List.nth candidates idx in
        let view = me.view + me.suspect_rounds in
        trace t me.id "suspect sequencer %d; candidate %d for view %d" me.sequencer candidate
          view;
        if candidate = me.id then start_take_over t me ~view
        else unicast t ~src:me.id ~dst:candidate (Message.Take_over { view })
    end
    else me.suspect_rounds <- 0
  end

let heartbeat_tick t me =
  if me.up && me.sequencer = me.id && not me.syncing then
    broadcast_msg t ~src:me.id
      (Message.Heartbeat { view = me.view; sequencer = me.id; next_seq = me.next_seq })

let retry_tick t me =
  if me.up then begin
    resend_pending t me;
    (* Periodic gap repair: a one-shot nack (or its retransmission) can
       be lost; as long as our log has slots above next_deliver, keep
       asking for the holes. *)
    let top = Hashtbl.fold (fun seq _ acc -> max seq acc) me.log (-1) in
    let top = if me.id = me.sequencer then max top (me.next_seq - 1) else top in
    if top >= me.next_deliver then request_fill t me ~upto:top
  end

let create sim ~rng ~members ~latency ?(loss = 0.0) ?(config = default_config)
    ?trace:trace_buf ~deliver () =
  if members = [] then invalid_arg "Total_order.create: no members";
  let sorted = List.sort_uniq Int.compare members in
  if List.length sorted <> List.length members then
    invalid_arg "Total_order.create: duplicate member ids";
  List.iter (fun id -> if id < 0 then invalid_arg "Total_order.create: negative id") sorted;
  if config.suspect_timeout <= config.heartbeat_period then
    invalid_arg "Total_order.create: suspect_timeout must exceed heartbeat_period";
  let initial_sequencer =
    match Election.sequencer ~alive:sorted with Some s -> s | None -> assert false
  in
  let table = Hashtbl.create 8 in
  List.iter
    (fun id ->
      Hashtbl.replace table id
        {
          id;
          up = true;
          view = 0;
          sequencer = initial_sequencer;
          next_deliver = 0;
          log = Hashtbl.create 64;
          dedup = Hashtbl.create 64;
          next_seq = 0;
          last_heartbeat = 0.0;
          pending = [];
          next_req_id = 0;
          syncing = false;
          sync_view = 0;
          sync_highest = -1;
          sync_replies = Hashtbl.create 8;
          sync_rounds = 0;
          suspect_rounds = 0;
          delivered_reqs = Hashtbl.create 64;
          delivered = 0;
        })
    sorted;
  let links = Hashtbl.create 16 in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then
            Hashtbl.replace links (src, dst)
              (Link.create sim ~rng:(Prng.split rng) ~latency ~loss
                 ~name:(Printf.sprintf "to[%d->%d]" src dst) ()))
        sorted)
    sorted;
  let t =
    { sim; config; trace = trace_buf; members = table; ids = sorted; links; deliver }
  in
  List.iter
    (fun id ->
      let me = member t id in
      ignore
        (Secrep_sim.Process.periodic sim ~period:config.heartbeat_period
           ~jitter:(config.heartbeat_period /. 10.0) ~rng:(Prng.split rng)
           (fun () -> heartbeat_tick t me));
      ignore
        (Secrep_sim.Process.periodic sim ~period:config.heartbeat_period
           ~jitter:(config.heartbeat_period /. 10.0) ~rng:(Prng.split rng)
           ~start_delay:config.suspect_timeout
           (fun () -> check_suspect t me));
      ignore
        (Secrep_sim.Process.periodic sim ~period:config.retry_period
           ~jitter:(config.retry_period /. 10.0) ~rng:(Prng.split rng)
           ~start_delay:config.retry_period
           (fun () -> retry_tick t me)))
    sorted;
  t

let broadcast t ~from payload =
  let me = member t from in
  if not me.up then invalid_arg "Total_order.broadcast: member crashed";
  let req_id = me.next_req_id in
  me.next_req_id <- req_id + 1;
  me.pending <- (req_id, payload) :: me.pending;
  if me.sequencer = me.id then on_request t me ~origin:me.id ~req_id payload
  else
    unicast t ~src:me.id ~dst:me.sequencer (Message.Request { origin = me.id; req_id; payload })

let crash t id =
  let me = member t id in
  if me.up then begin
    me.up <- false;
    trace t id "crash";
    List.iter
      (fun other ->
        if other <> id then begin
          Link.set_up (link t id other) false;
          Link.set_up (link t other id) false
        end)
      t.ids
  end

let alive t = List.filter (fun id -> (member t id).up) t.ids
let is_alive t id = (member t id).up
let view_of t id = (member t id).view
let sequencer_of t id = (member t id).sequencer
let delivered_count t id = (member t id).delivered
let link_between t src dst = Hashtbl.find t.links (src, dst)
