(** Cross-shard traffic: Zipf popularity over content items, with an
    optional diurnal skew shift that rotates the hot content over time.
    Composes with a per-shard {!Mix} (Zipf over keys) to give the full
    "Zipf over contents x Zipf over keys" workload E12 drives. *)

type t

val create :
  rng:Secrep_crypto.Prng.t ->
  n_shards:int ->
  ?s:float ->
  ?rotate_period:float ->
  unit ->
  t
(** [s] (default 1.0) is the Zipf exponent over contents; [s = 0] is
    uniform.  With [rotate_period], the content holding each popularity
    rank shifts by one shard every period. *)

val shard_at : t -> now:float -> int
(** Draw the target shard for a request arriving at [now]. *)

val arrivals : t -> rate:float -> duration:float -> (float * int) list
(** A full Poisson arrival schedule at [rate]/s over [duration]
    seconds: (time, shard) pairs, drawn up front so callers can
    schedule each arrival on its shard's own simulator clock. *)
