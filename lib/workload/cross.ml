(* Cross-shard traffic shape: which content a request lands on.

   Popularity over contents is Zipfian (a few hot catalogues take most
   of the traffic), independent of the per-shard key skew a Mix applies
   within the chosen content.  The diurnal skew shift rotates which
   content holds each popularity rank: every [rotate_period] simulated
   seconds the hot spot moves to the next shard, the regime where a
   static placement would overload one slice of the pool at a time. *)

module Prng = Secrep_crypto.Prng

type t = {
  rng : Prng.t;
  zipf : Zipf.t;
  n_shards : int;
  rotate_period : float option;
}

let create ~rng ~n_shards ?(s = 1.0) ?rotate_period () =
  if n_shards < 1 then invalid_arg "Cross.create: n_shards must be at least 1";
  (match rotate_period with
  | Some p when p <= 0.0 -> invalid_arg "Cross.create: rotate_period must be positive"
  | _ -> ());
  { rng; zipf = Zipf.create ~n:n_shards ~s; n_shards; rotate_period }

let shard_at t ~now =
  let rank = Zipf.sample t.zipf t.rng in
  match t.rotate_period with
  | None -> rank
  | Some period ->
    let shift = int_of_float (Float.floor (now /. period)) in
    (rank + shift) mod t.n_shards

(* Pre-computed Poisson arrival schedule: the deployment runs K
   independent simulators, so arrivals are drawn up front (pure) and
   each one is scheduled on its target shard's own clock. *)
let arrivals t ~rate ~duration =
  if rate <= 0.0 || duration <= 0.0 then []
  else begin
    let acc = ref [] in
    let now = ref 0.0 in
    let continue = ref true in
    while !continue do
      now := !now +. Prng.exponential t.rng ~mean:(1.0 /. rate);
      if !now >= duration then continue := false
      else acc := (!now, shard_at t ~now:!now) :: !acc
    done;
    List.rev !acc
  end
