module Prng = Secrep_crypto.Prng

type action =
  | Cut_slave of int
  | Heal_slave of int
  | Cut_master of int
  | Heal_master of int
  | Cut_client of int
  | Heal_client of int
  | Cut_auditor
  | Heal_auditor
  | Crash_slave of int
  | Recover_slave of int
  | Crash_master of int
  | Loss_burst of float
  | Loss_normal
  | Latency_spike of float
  | Latency_normal
  | Duplicate_burst of float
  | Duplicate_normal
  | Reorder_burst of int
  | Reorder_normal
  | Bitflip_burst of float
  | Bitflip_normal

type entry = { time : float; action : action }
type t = entry list

let sort t = List.stable_sort (fun a b -> Float.compare a.time b.time) t

let describe = function
  | Cut_slave i -> Printf.sprintf "cut slave %d" i
  | Heal_slave i -> Printf.sprintf "heal slave %d" i
  | Cut_master i -> Printf.sprintf "cut master %d" i
  | Heal_master i -> Printf.sprintf "heal master %d" i
  | Cut_client i -> Printf.sprintf "cut client %d" i
  | Heal_client i -> Printf.sprintf "heal client %d" i
  | Cut_auditor -> "cut auditor"
  | Heal_auditor -> "heal auditor"
  | Crash_slave i -> Printf.sprintf "crash slave %d" i
  | Recover_slave i -> Printf.sprintf "recover slave %d" i
  | Crash_master i -> Printf.sprintf "crash master %d" i
  | Loss_burst p -> Printf.sprintf "loss %g" p
  | Loss_normal -> "loss normal"
  | Latency_spike f -> Printf.sprintf "latency x%g" f
  | Latency_normal -> "latency normal"
  | Duplicate_burst p -> Printf.sprintf "duplicate %g" p
  | Duplicate_normal -> "duplicate normal"
  | Reorder_burst n -> Printf.sprintf "reorder %d" n
  | Reorder_normal -> "reorder normal"
  | Bitflip_burst p -> Printf.sprintf "bitflip %g" p
  | Bitflip_normal -> "bitflip normal"

let to_string t =
  sort t
  |> List.map (fun { time; action } -> Printf.sprintf "at %g %s" time (describe action))
  |> String.concat "\n"
  |> fun s -> if s = "" then s else s ^ "\n"

(* -- parsing ---------------------------------------------------------- *)

let ( let* ) = Result.bind

let int_of ~line what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "line %d: %s is not an integer: %S" line what s)

let float_of ~line what s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "line %d: %s is not a number: %S" line what s)

let parse_action ~line tokens =
  match tokens with
  | [ "cut"; "slave"; i ] ->
    let* i = int_of ~line "slave id" i in
    Ok (Cut_slave i)
  | [ "heal"; "slave"; i ] ->
    let* i = int_of ~line "slave id" i in
    Ok (Heal_slave i)
  | [ "cut"; "master"; i ] ->
    let* i = int_of ~line "master id" i in
    Ok (Cut_master i)
  | [ "heal"; "master"; i ] ->
    let* i = int_of ~line "master id" i in
    Ok (Heal_master i)
  | [ "cut"; "client"; i ] ->
    let* i = int_of ~line "client id" i in
    Ok (Cut_client i)
  | [ "heal"; "client"; i ] ->
    let* i = int_of ~line "client id" i in
    Ok (Heal_client i)
  | [ "cut"; "auditor" ] -> Ok Cut_auditor
  | [ "heal"; "auditor" ] -> Ok Heal_auditor
  | [ "crash"; "slave"; i ] ->
    let* i = int_of ~line "slave id" i in
    Ok (Crash_slave i)
  | [ "recover"; "slave"; i ] ->
    let* i = int_of ~line "slave id" i in
    Ok (Recover_slave i)
  | [ "crash"; "master"; i ] ->
    let* i = int_of ~line "master id" i in
    Ok (Crash_master i)
  | [ "loss"; "normal" ] -> Ok Loss_normal
  | [ "loss"; p ] ->
    let* p = float_of ~line "loss probability" p in
    Ok (Loss_burst p)
  | [ "latency"; "normal" ] -> Ok Latency_normal
  | [ "latency"; f ] when String.length f > 1 && f.[0] = 'x' ->
    let* f = float_of ~line "latency factor" (String.sub f 1 (String.length f - 1)) in
    Ok (Latency_spike f)
  | [ "duplicate"; "normal" ] -> Ok Duplicate_normal
  | [ "duplicate"; p ] ->
    let* p = float_of ~line "duplicate probability" p in
    Ok (Duplicate_burst p)
  | [ "reorder"; "normal" ] -> Ok Reorder_normal
  | [ "reorder"; n ] ->
    let* n = int_of ~line "reorder burst" n in
    Ok (Reorder_burst n)
  | [ "bitflip"; "normal" ] -> Ok Bitflip_normal
  | [ "bitflip"; p ] ->
    let* p = float_of ~line "bitflip probability" p in
    Ok (Bitflip_burst p)
  | _ ->
    Error
      (Printf.sprintf "line %d: unknown action %S" line (String.concat " " tokens))

let parse_line ~line s =
  let s = match String.index_opt s '#' with Some i -> String.sub s 0 i | None -> s in
  let tokens =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun tok -> tok <> "")
  in
  match tokens with
  | [] -> Ok None
  | "at" :: time :: rest ->
    let* time = float_of ~line "time" time in
    let* action = parse_action ~line rest in
    Ok (Some { time; action })
  | tok :: _ -> Error (Printf.sprintf "line %d: expected \"at TIME ACTION\", got %S" line tok)

let parse text =
  let lines = String.split_on_char '\n' text in
  let* entries =
    List.fold_left
      (fun acc (line, s) ->
        let* acc = acc in
        let* entry = parse_line ~line s in
        Ok (match entry with Some e -> e :: acc | None -> acc))
      (Ok [])
      (List.mapi (fun i s -> (i + 1, s)) lines)
  in
  Ok (sort entries)

(* -- validation ------------------------------------------------------- *)

let validate ?n_masters ?n_slaves ?n_clients t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_id what bound i =
    match bound with
    | Some n when i < 0 || i >= n -> err "%s %d out of range [0, %d)" what i n
    | Some _ | None -> if i < 0 then err "%s %d is negative" what i else Ok ()
  in
  List.fold_left
    (fun acc { time; action } ->
      let* () = acc in
      let* () =
        if Float.is_nan time || time < 0.0 || time = infinity then
          err "entry %S: time %g must be finite and non-negative" (describe action) time
        else Ok ()
      in
      match action with
      | Cut_slave i | Heal_slave i | Crash_slave i | Recover_slave i ->
        check_id "slave" n_slaves i
      | Cut_master i | Heal_master i | Crash_master i -> check_id "master" n_masters i
      | Cut_client i | Heal_client i -> check_id "client" n_clients i
      | Cut_auditor | Heal_auditor | Loss_normal | Latency_normal | Duplicate_normal
      | Reorder_normal | Bitflip_normal ->
        Ok ()
      | Loss_burst p ->
        if p < 0.0 || p >= 1.0 then err "loss %g must be in [0, 1)" p else Ok ()
      | Latency_spike f ->
        if f <= 0.0 || Float.is_nan f then err "latency factor %g must be positive" f
        else Ok ()
      | Duplicate_burst p ->
        if p < 0.0 || p >= 1.0 then err "duplicate %g must be in [0, 1)" p else Ok ()
      | Reorder_burst n ->
        if n < 2 then err "reorder burst %d must be >= 2" n else Ok ()
      | Bitflip_burst p ->
        if p < 0.0 || p >= 1.0 then err "bitflip %g must be in [0, 1)" p else Ok ())
    (Ok ()) t

(* -- generators ------------------------------------------------------- *)

let rolling_partition ~n_slaves ~start ~interval ~outage =
  List.init n_slaves (fun i ->
      let cut = start +. (float_of_int i *. interval) in
      [
        { time = cut; action = Cut_slave i };
        { time = cut +. outage; action = Heal_slave i };
      ])
  |> List.concat |> sort

let random ~rng ~duration ~n_slaves ?(n_masters = 1) ?(n_clients = 0) ?(intensity = 1.0)
    ?(byzantine = false) () =
  if duration <= 0.0 then invalid_arg "Schedule.random: duration must be positive";
  if intensity < 0.0 then invalid_arg "Schedule.random: intensity must be non-negative";
  (* Every window [t, t+w] closes by this horizon so runs end healed. *)
  let horizon = 0.9 *. duration in
  let window rng =
    let t = Prng.float rng *. horizon *. 0.8 in
    let w = (0.05 +. (Prng.float rng *. 0.15)) *. duration in
    (t, Float.min horizon (t +. w))
  in
  let n_windows base = int_of_float (Float.round (float_of_int base *. intensity)) in
  let entries = ref [] in
  let push e = entries := e :: !entries in
  if n_slaves > 0 then begin
    (* slave partitions *)
    for _ = 1 to n_windows (max 1 (n_slaves / 2)) do
      let s = Prng.int rng n_slaves in
      let t0, t1 = window rng in
      push { time = t0; action = Cut_slave s };
      push { time = t1; action = Heal_slave s }
    done;
    (* benign crash-recover churn *)
    for _ = 1 to n_windows (max 1 (n_slaves / 3)) do
      let s = Prng.int rng n_slaves in
      let t0, t1 = window rng in
      push { time = t0; action = Crash_slave s };
      push { time = t1; action = Recover_slave s }
    done
  end;
  (* client cuts *)
  if n_clients > 0 then
    for _ = 1 to n_windows 1 do
      let c = Prng.int rng n_clients in
      let t0, t1 = window rng in
      push { time = t0; action = Cut_client c };
      push { time = t1; action = Heal_client c }
    done;
  (* at most one master fault, and never against a lone master *)
  if n_masters > 1 && Prng.bernoulli rng (Float.min 1.0 (0.5 *. intensity)) then begin
    let m = Prng.int rng n_masters in
    if Prng.bernoulli rng 0.5 then begin
      let t0, t1 = window rng in
      push { time = t0; action = Cut_master m };
      push { time = t1; action = Heal_master m }
    end
    else push { time = Prng.float rng *. horizon; action = Crash_master m }
  end;
  (* auditor outage *)
  if Prng.bernoulli rng (Float.min 1.0 (0.4 *. intensity)) then begin
    let t0, t1 = window rng in
    push { time = t0; action = Cut_auditor };
    push { time = t1; action = Heal_auditor }
  end;
  (* loss burst *)
  if Prng.bernoulli rng (Float.min 1.0 (0.5 *. intensity)) then begin
    let t0, t1 = window rng in
    push { time = t0; action = Loss_burst (0.05 +. (0.3 *. Prng.float rng)) };
    push { time = t1; action = Loss_normal }
  end;
  (* latency spike *)
  if Prng.bernoulli rng (Float.min 1.0 (0.5 *. intensity)) then begin
    let t0, t1 = window rng in
    push { time = t0; action = Latency_spike (2.0 +. (6.0 *. Prng.float rng)) };
    push { time = t1; action = Latency_normal }
  end;
  (* Byzantine delivery faults, opt-in so existing seeded timelines
     keep their draw sequence. *)
  if byzantine then begin
    if Prng.bernoulli rng (Float.min 1.0 (0.4 *. intensity)) then begin
      let t0, t1 = window rng in
      push { time = t0; action = Duplicate_burst (0.05 +. (0.25 *. Prng.float rng)) };
      push { time = t1; action = Duplicate_normal }
    end;
    if Prng.bernoulli rng (Float.min 1.0 (0.4 *. intensity)) then begin
      let t0, t1 = window rng in
      push { time = t0; action = Reorder_burst (2 + Prng.int rng 3) };
      push { time = t1; action = Reorder_normal }
    end;
    if Prng.bernoulli rng (Float.min 1.0 (0.4 *. intensity)) then begin
      let t0, t1 = window rng in
      push { time = t0; action = Bitflip_burst (0.02 +. (0.1 *. Prng.float rng)) };
      push { time = t1; action = Bitflip_normal }
    end
  end;
  sort !entries
