module Sim = Secrep_sim.Sim
module Stats = Secrep_sim.Stats
module System = Secrep_core.System

let fire system entry =
  let stats = System.stats system in
  let skip () = Stats.incr stats "chaos.skipped_actions" in
  let ok_or_skip = function Ok () -> () | Error _ -> skip () in
  Stats.incr stats "chaos.actions";
  match entry.Schedule.action with
  | Schedule.Cut_slave i -> System.set_slave_connectivity system ~slave_id:i ~up:false
  | Schedule.Heal_slave i -> System.set_slave_connectivity system ~slave_id:i ~up:true
  | Schedule.Cut_master i -> System.set_master_connectivity system ~master_id:i ~up:false
  | Schedule.Heal_master i -> System.set_master_connectivity system ~master_id:i ~up:true
  | Schedule.Cut_client i -> System.set_client_connectivity system ~client_id:i ~up:false
  | Schedule.Heal_client i -> System.set_client_connectivity system ~client_id:i ~up:true
  | Schedule.Cut_auditor -> System.set_auditor_connectivity system ~up:false
  | Schedule.Heal_auditor -> System.set_auditor_connectivity system ~up:true
  | Schedule.Crash_slave i ->
    if System.is_crashed system ~slave_id:i then skip ()
    else System.crash_slave system ~slave_id:i
  | Schedule.Recover_slave i -> ok_or_skip (System.recover_slave system ~slave_id:i)
  | Schedule.Crash_master i ->
    if Secrep_core.Master.is_alive (System.master system i) then
      System.crash_master system i
    else skip ()
  | Schedule.Loss_burst p -> System.set_loss system (Some p)
  | Schedule.Loss_normal -> System.set_loss system None
  | Schedule.Latency_spike f -> System.set_latency_factor system f
  | Schedule.Latency_normal -> System.set_latency_factor system 1.0
  | Schedule.Duplicate_burst p -> System.set_duplicate system p
  | Schedule.Duplicate_normal -> System.set_duplicate system 0.0
  | Schedule.Reorder_burst n -> System.set_reorder system ~burst:n ~window:0.05
  | Schedule.Reorder_normal -> System.set_reorder system ~burst:0 ~window:0.0
  | Schedule.Bitflip_burst p -> System.set_bitflip system p
  | Schedule.Bitflip_normal -> System.set_bitflip system 0.0

let apply system schedule =
  (match
     Schedule.validate ~n_masters:(System.n_masters system)
       ~n_slaves:(System.n_slaves system) ~n_clients:(System.n_clients system) schedule
   with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Injector.apply: " ^ msg));
  let sim = System.sim system in
  List.iter
    (fun entry ->
      let time = Float.max entry.Schedule.time (Sim.now sim) in
      ignore (Sim.schedule_at sim ~time (fun () -> fire system entry)))
    (Schedule.sort schedule)

let applied_actions system = Stats.get (System.stats system) "chaos.actions"
