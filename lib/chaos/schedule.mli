(** Deterministic fault timelines.

    A schedule is a time-ordered list of fault actions — partitions,
    benign crash-recover cycles, loss bursts, latency spikes — that
    {!Injector.apply} arms on a system's simulator clock.  Schedules
    come from three places: the text DSL ({!parse} / {!to_string}),
    seeded random generation ({!random}), and combinators like
    {!rolling_partition}.  All three are pure data, so a run is
    replayable from its seed or its schedule file alone. *)

type action =
  | Cut_slave of int  (** partition a slave off the network *)
  | Heal_slave of int
  | Cut_master of int  (** also cuts its total-order links *)
  | Heal_master of int
  | Cut_client of int
  | Heal_client of int
  | Cut_auditor
  | Heal_auditor
  | Crash_slave of int  (** benign fail-stop; no accusation *)
  | Recover_slave of int  (** wipe + checkpoint reinstate *)
  | Crash_master of int  (** permanent; survivors re-home its slaves *)
  | Loss_burst of float  (** override loss probability on every link *)
  | Loss_normal
  | Latency_spike of float  (** scale every link's latency model *)
  | Latency_normal
  | Duplicate_burst of float
      (** Byzantine: deliveries arrive twice with this probability *)
  | Duplicate_normal
  | Reorder_burst of int
      (** Byzantine: links hold [n] (>= 2) messages and release them
          reversed *)
  | Reorder_normal
  | Bitflip_burst of float
      (** Byzantine: read-reply pledges get one wire bit flipped with
          this probability; signature checks must reject them *)
  | Bitflip_normal

type entry = { time : float; action : action }

type t = entry list
(** Always kept sorted by time (stable for equal times). *)

val sort : t -> t

val describe : action -> string

val to_string : t -> string
(** The text DSL, one [at TIME ACTION] line per entry; {!parse} reads
    it back.  Lines look like:
    {v
at 5.0 cut slave 2
at 9.0 heal slave 2
at 12.0 crash master 0
at 20.0 loss 0.3
at 30.0 loss normal
at 40.0 latency x4
at 50.0 latency normal
at 60.0 cut auditor
at 70.0 duplicate 0.2
at 75.0 duplicate normal
at 80.0 reorder 4
at 85.0 reorder normal
at 90.0 bitflip 0.1
at 95.0 bitflip normal
v} *)

val parse : string -> (t, string) result
(** Parses the DSL; [#] starts a comment, blank lines are skipped.
    The result is sorted by time. *)

val validate : ?n_masters:int -> ?n_slaves:int -> ?n_clients:int -> t -> (unit, string) result
(** Checks times are non-negative and finite, ids are in range (when
    the counts are given), loss is in [0,1) and latency factors are
    positive. *)

val random :
  rng:Secrep_crypto.Prng.t ->
  duration:float ->
  n_slaves:int ->
  ?n_masters:int ->
  ?n_clients:int ->
  ?intensity:float ->
  ?byzantine:bool ->
  unit ->
  t
(** A seeded-random timeline of fault windows over [0, duration]:
    slave partitions and crash-recover cycles, client cuts, loss
    bursts and latency spikes, plus (with more than one master) at
    most one master partition or crash.  Every window closes by
    [0.9 *. duration] so the run ends healed.  [intensity] (default
    1.0) scales how many windows are drawn.  [byzantine] (default
    false) additionally draws duplicate, reorder and bit-flip windows;
    it is opt-in so existing seeded timelines keep their exact PRNG
    draw sequence.  Determined entirely by [rng]. *)

val rolling_partition :
  n_slaves:int -> start:float -> interval:float -> outage:float -> t
(** Cut slave [i] at [start +. i *. interval] and heal it [outage]
    later — the acceptance scenario that partitions every slave and
    then heals. *)
