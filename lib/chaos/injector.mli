(** Arms a {!Schedule.t} on a system's simulator clock.

    Each entry becomes one scheduled thunk that drives the
    corresponding [System] chaos hook; the system emits the
    [Partition] / [Node_crashed] / [Node_recovered] trace events, so a
    chaos run is fully inspectable from its trace alone. *)

val apply : Secrep_core.System.t -> Schedule.t -> unit
(** Validates the schedule against the system's node counts (raises
    [Invalid_argument] on a mismatch), then schedules every entry.
    Entries whose time is already in the past fire immediately.
    Actions that have become no-ops by the time they fire — recovering
    a slave that was excluded in the meantime, crashing a master twice
    — are skipped and counted in the [chaos.skipped_actions] stat. *)

val applied_actions : Secrep_core.System.t -> int
(** Convenience reader for the [chaos.actions] stat. *)
