(* The sharded deployment: K content items, each served by an
   unmodified single-content protocol instance, laid out over one
   shared pool of slave hosts.

   Two design rules keep this layer honest:

   - Every shard is a stock [System.t] advanced in lockstep time slices
     by the deployment scheduler.  The deployment never draws from a
     shard's PRNG and never injects events into a shard beyond the
     documented chaos hooks, so a shard's event stream is bit-identical
     to the stream of a standalone single-content system created with
     the same derived seed — the property the differential sharding
     tests pin down.

   - All cross-shard coupling is explicit: the shared directory (copied
     certificates), the host pool (rendezvous placement + host-level
     chaos that fans out to every co-located replica), and the shared
     bounded auditor budget (the global audit queue capacity is divided
     across per-shard auditors).

   Domain-parallel execution ([domains > 1]) adds a third rule: during
   a slice a shard touches only state owned by that shard — its own
   [System.t], its own slot->host mapping, and its own pending event
   buffer — plus read-only shared data (the chaos transition log,
   frozen while the scheduler runs; the content routing table, frozen
   after [create]).  Everything cross-shard (tap delivery, the
   deployment trace, the [host_is_alive] view) happens on the
   coordinator at slice barriers, in an order derived purely from
   [(sim_time, shard, seq)] — which is why the parallel scheduler
   produces byte-identical streams to the sequential one. *)

module System = Secrep_core.System
module Config = Secrep_core.Config
module Directory = Secrep_core.Directory
module Fault = Secrep_core.Fault
module Sim = Secrep_sim.Sim
module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Export = Secrep_sim.Export
module Prng = Secrep_crypto.Prng
module Catalog = Secrep_workload.Catalog

type shard = {
  index : int;
  system : System.t;
  content_id : string;
  keys : string array;
  hosts : int array;  (* slot (local slave id) -> pool host *)
}

(* Per-shard outbox for everything that must cross the shard boundary:
   the shard's own trace records (for tap delivery) and the deployment
   events its rebalances produce.  Only the domain executing the shard
   appends during a slice; only the coordinator drains, at barriers.
   [seq] is the per-shard emission counter that makes the merge order
   [(time, shard, seq)] total and identical in both scheduler modes. *)
type outbox = {
  mutable buf : (int * Trace.record) list;  (* newest first *)
  mutable seq : int;
  mutable merged : int;  (* records merged in the current parallel window *)
}

(* Host-level chaos is recorded as a transition log rather than flipped
   in a shared array: [alive_at] is a pure function of (log, time), so
   every shard — on any domain — observes the same aliveness history
   regardless of how far its siblings have run.  Entries are appended
   by [crash_host]/[recover_host] at call time (i.e. while the
   scheduler is NOT running), newest first. *)
type transition = { at : float; host : int; alive : bool }

type t = {
  n_shards : int;
  replication : int;
  pool_size : int;
  provision_delay : float;
  auto_rebalance : bool;
  slice : float;
  domains : int;
  shards : shard array;
  directory : Directory.t;
  trace : Trace.t;  (* deployment-level placement / rebalance events *)
  mutable transitions : transition list;  (* newest call first *)
  outboxes : outbox array;
  by_content : (string, int) Hashtbl.t;
  mutable taps : (shard:int -> Trace.record -> unit) list;
  mutable now : float;
}

(* -- seed derivation ---------------------------------------------------

   Exposed so the differential tests can construct the standalone
   reference systems from exactly the same inputs.  The golden-ratio
   stride is the SplitMix64 increment: adjacent shards land far apart
   in seed space. *)

let golden = 0x9E3779B97F4A7C15L

let shard_seed ~seed k = Int64.add seed (Int64.mul (Int64.of_int (k + 1)) golden)
let shard_content_seed ~seed k = Int64.add (shard_seed ~seed k) 1L

(* The shared bounded auditor budget: one global queue capacity divided
   evenly across the per-shard auditors. *)
let shard_config ?audit_queue_total ~n_shards config =
  match audit_queue_total with
  | None -> config
  | Some total ->
    { config with Config.auditor_queue_capacity = max 1 (total / max 1 n_shards) }

let all_hosts pool_size = List.init pool_size (fun h -> h)

(* Latest transition at or before [time] wins; among equal times the
   latest call wins (the log is newest-call-first, so the first match
   with a strictly later [at] replaces it).  No transition = alive. *)
let alive_at t ~time host =
  let best = ref None in
  List.iter
    (fun tr ->
      if tr.host = host && tr.at <= time then
        match !best with
        | Some (at, _) when at >= tr.at -> ()
        | _ -> best := Some (tr.at, tr.alive))
    t.transitions;
  match !best with Some (_, alive) -> alive | None -> true

let deliver t ~shard record = List.iter (fun tap -> tap ~shard record) t.taps

(* Coordinator-context emission (create time, window boundaries): the
   scheduler is not running, so writing the shared trace and calling
   the taps directly is safe. *)
let emit_deployment t ~shard ~time event =
  Trace.emit t.trace ~time ~source:"deployment" event;
  deliver t ~shard { Trace.time; source = "deployment"; event }

(* Shard-context emission (inside a slice, possibly on a worker
   domain): append to the shard's own outbox; the coordinator writes
   the shared trace and runs the taps at the next barrier. *)
let enqueue t ~shard record =
  let ob = t.outboxes.(shard) in
  ob.buf <- (ob.seq, record) :: ob.buf;
  ob.seq <- ob.seq + 1

let enqueue_deployment t ~shard ~time event =
  enqueue t ~shard { Trace.time; source = "deployment"; event }

(* Drain every outbox and replay the records in [(time, shard, seq)]
   order — the exact total order the sequential scheduler produces.
   Deployment-sourced records (rebalances) enter the shared trace
   here; every record reaches the taps here. *)
let flush t =
  let all = ref [] in
  Array.iteri
    (fun k ob ->
      List.iter (fun (seq, r) -> all := (r.Trace.time, k, seq, r) :: !all) ob.buf;
      ob.merged <- ob.merged + List.length ob.buf;
      ob.buf <- [])
    t.outboxes;
  let merged =
    List.sort
      (fun (t1, k1, s1, _) (t2, k2, s2, _) ->
        match Float.compare t1 t2 with
        | 0 -> ( match Int.compare k1 k2 with 0 -> Int.compare s1 s2 | c -> c)
        | c -> c)
      !all
  in
  List.iter
    (fun (_, k, _, (r : Trace.record)) ->
      if String.equal r.Trace.source "deployment" then
        Trace.emit t.trace ~time:r.Trace.time ~source:r.Trace.source r.Trace.event;
      deliver t ~shard:k r)
    merged

(* Re-home [slot] of [sh] off [dead_host]: pick the best live host not
   already carrying a replica of this content, update the mapping, and
   record the move.  Returns the replacement (None = pool exhausted,
   the replica stays homeless until a host recovers).  Runs in shard
   context: aliveness comes from the transition log at the shard's own
   clock, the move event goes through the shard's outbox. *)
let rebalance_slot t sh ~slot ~reason =
  let dead = sh.hosts.(slot) in
  let time = Sim.now (System.sim sh.system) in
  let live = List.filter (fun h -> alive_at t ~time h) (all_hosts t.pool_size) in
  match
    Placement.replacement ~content_id:sh.content_id ~hosts:live
      ~current:(Array.to_list sh.hosts) ~dead
  with
  | None -> None
  | Some fresh ->
    sh.hosts.(slot) <- fresh;
    enqueue_deployment t ~shard:sh.index ~time
      (Event.Shard_rebalanced
         { shard = sh.index; slot; from_host = dead; to_host = fresh; reason });
    Some fresh

let create ~n_shards ?(n_masters = 1) ?(replication_factor = 3) ?(n_clients = 2)
    ?pool_size ?(config = Config.default) ?net ?(seed = 1L) ?(items_per_shard = 0)
    ?audit_queue_total ?slice ?(auto_rebalance = true) ?provision_delay
    ?track_ground_truth ?trace_capacity ?domains () =
  if n_shards < 1 then invalid_arg "Deployment.create: n_shards must be at least 1";
  let domains =
    match domains with Some d -> d | None -> config.Config.parallel_domains
  in
  if domains < 0 then invalid_arg "Deployment.create: domains must be non-negative";
  let slaves_per_master = max 1 (replication_factor / max 1 n_masters) in
  let replication = n_masters * slaves_per_master in
  let pool_size =
    match pool_size with Some p -> max p replication | None -> (2 * replication) + 2
  in
  let config = shard_config ?audit_queue_total ~n_shards config in
  let provision_delay =
    match provision_delay with
    | Some d -> d
    | None -> 2.0 *. config.Config.keepalive_period
  in
  let slice =
    match slice with Some s -> s | None -> Float.max config.Config.keepalive_period 0.5
  in
  let directory = Directory.create () in
  let trace = Trace.create ?capacity:trace_capacity () in
  let by_content = Hashtbl.create n_shards in
  let outboxes = Array.init n_shards (fun _ -> { buf = []; seq = 0; merged = 0 }) in
  let t =
    {
      n_shards;
      replication;
      pool_size;
      provision_delay;
      auto_rebalance;
      slice;
      domains;
      shards = [||];
      directory;
      trace;
      transitions = [];
      outboxes;
      by_content;
      taps = [];
      now = 0.0;
    }
  in
  let shards =
    Array.init n_shards (fun k ->
        let system =
          System.create ~n_masters ~slaves_per_master ~n_clients ~config ?net
            ~seed:(shard_seed ~seed k) ?track_ground_truth ()
        in
        let keys =
          if items_per_shard > 0 then begin
            let content =
              Catalog.product_catalog
                (Prng.create ~seed:(shard_content_seed ~seed k))
                ~n:items_per_shard
            in
            System.load_content system content;
            Array.of_list (List.map fst content)
          end
          else [||]
        in
        let content_id = System.content_id system in
        (* Shard-aware routing: the shared directory carries every
           shard's master certificates, so a client can resolve any
           content key to its master set (and verify the certs against
           the self-certifying id). *)
        List.iter (Directory.publish directory)
          (Directory.lookup (System.directory system) ~content_id);
        Hashtbl.replace by_content content_id k;
        let placed =
          Placement.assign ~content_id ~hosts:(all_hosts pool_size) ~replicas:replication
        in
        { index = k; system; content_id; keys; hosts = Array.of_list placed })
  in
  let t = { t with shards } in
  Array.iter
    (fun sh ->
      Array.iteri
        (fun slot host ->
          emit_deployment t ~shard:sh.index ~time:0.0
            (Event.Shard_assigned { shard = sh.index; host; slot }))
        sh.hosts;
      (* Queue each shard's live stream for the deployment taps, and
         react to exclusions: §3.5 re-homing moves the excluded replica
         to a fresh host and reinstates the process there after the
         provisioning delay.  The handler runs on whatever domain is
         executing the shard, so it touches shard-owned state only. *)
      let sys = sh.system in
      Trace.on_emit (System.trace sys) (fun r ->
          enqueue t ~shard:sh.index r;
          match r.Trace.event with
          | Event.Slave_excluded { slave = slot; _ } when t.auto_rebalance ->
            (match rebalance_slot t sh ~slot ~reason:"exclusion" with
            | None -> ()
            | Some _fresh ->
              ignore
                (Sim.schedule (System.sim sys) ~delay:t.provision_delay (fun () ->
                     (* The owner "recovers the host to a safe state"
                        before readmission: the fresh host starts
                        honest. *)
                     System.set_slave_behavior sys ~slave:slot Fault.Honest;
                     ignore (System.readmit_slave sys ~slave_id:slot))))
          | _ -> ()))
    shards;
  t

(* -- accessors ---------------------------------------------------------- *)

let n_shards t = t.n_shards
let replication t = t.replication
let pool_size t = t.pool_size
let now t = t.now
let domains t = t.domains
let directory t = t.directory
let trace t = t.trace
let system t k = t.shards.(k).system
let content_id t k = t.shards.(k).content_id
let keys t k = t.shards.(k).keys
let hosts_of_shard t k = Array.copy t.shards.(k).hosts
let host_is_alive t h = alive_at t ~time:t.now h
let shard_of_content t ~content_id = Hashtbl.find_opt t.by_content content_id
let on_event t tap = t.taps <- tap :: t.taps

let audit_backlog t =
  Array.fold_left
    (fun acc sh -> acc + Secrep_core.Auditor.backlog (System.auditor sh.system))
    0 t.shards

(* -- the lockstep scheduler --------------------------------------------

   One shared bounded scheduler advances every shard in [slice]-sized
   time windows: no shard can run ahead of its siblings by more than a
   slice, so host-level chaos and cross-shard routing observe a
   consistent global clock, while each shard's internal event order is
   exactly what a standalone run would produce.

   Both modes run the same code per shard and flush the same outboxes
   at every slice barrier; the only difference is which domain executes
   a shard's slice.  Round-robin shard ownership is static (shard i on
   worker [i mod w]), so a shard's whole history runs on one domain and
   needs no per-shard synchronization at all — the barrier's mutex is
   the only cross-domain handoff, and it orders everything the
   coordinator reads. *)

let run_slices_sequential t time =
  while t.now < time do
    let next = Float.min (t.now +. t.slice) time in
    Array.iter (fun sh -> Sim.run ~until:next (System.sim sh.system)) t.shards;
    t.now <- next;
    flush t
  done

let run_parallel t time =
  let w = min t.domains t.n_shards in
  Array.iter (fun ob -> ob.merged <- 0) t.outboxes;
  (* Window-open bookkeeping, at a simulated time every run shares. *)
  for wid = 0 to w - 1 do
    let mine = ref 0 in
    for i = 0 to t.n_shards - 1 do
      if i mod w = wid then incr mine
    done;
    emit_deployment t ~shard:(-1) ~time:t.now
      (Event.Domain_started { domain = wid; shards = !mine })
  done;
  let run_mine wid target =
    let i = ref wid in
    while !i < t.n_shards do
      Sim.run ~until:target (System.sim t.shards.(!i).system);
      i := !i + w
    done
  in
  let m = Mutex.create () in
  let slice_ready = Condition.create () in
  let slice_done = Condition.create () in
  let gen = ref 0 and arrived = ref 0 and target = ref t.now in
  let stop = ref false and failure = ref None in
  let worker wid () =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock m;
      while !gen = !seen && not !stop do
        Condition.wait slice_ready m
      done;
      let stopping = !stop and g = !gen and tgt = !target in
      Mutex.unlock m;
      if stopping then running := false
      else begin
        seen := g;
        (try run_mine wid tgt
         with e ->
           Mutex.lock m;
           if !failure = None then failure := Some e;
           Mutex.unlock m);
        Mutex.lock m;
        incr arrived;
        if !arrived = w - 1 then Condition.signal slice_done;
        Mutex.unlock m
      end
    done
  in
  let doms = Array.init (w - 1) (fun j -> Domain.spawn (worker (j + 1))) in
  let halt () =
    Mutex.lock m;
    stop := true;
    Condition.broadcast slice_ready;
    Mutex.unlock m;
    Array.iter Domain.join doms
  in
  (try
     while t.now < time do
       let next = Float.min (t.now +. t.slice) time in
       Mutex.lock m;
       target := next;
       arrived := 0;
       incr gen;
       Condition.broadcast slice_ready;
       Mutex.unlock m;
       run_mine 0 next;
       Mutex.lock m;
       while !arrived < w - 1 do
         Condition.wait slice_done m
       done;
       Mutex.unlock m;
       (match !failure with Some e -> raise e | None -> ());
       t.now <- next;
       flush t
     done
   with e ->
     halt ();
     raise e);
  halt ();
  Array.iteri
    (fun k ob ->
      emit_deployment t ~shard:k ~time:t.now
        (Event.Shard_merged { shard = k; events = ob.merged });
      ob.merged <- 0)
    t.outboxes

let run_until t time =
  if t.now < time then
    if t.domains > 1 && t.n_shards > 1 then run_parallel t time
    else run_slices_sequential t time

let run_for t d = run_until t (t.now +. d)

(* -- shard-aware client routing ---------------------------------------- *)

let read t ~shard ~client ?level ?mode query ~on_done =
  System.read t.shards.(shard).system ~client ?level ?mode query ~on_done

let write t ~shard ~client op ~on_done =
  System.write t.shards.(shard).system ~client op ~on_done

let read_content t ~content_id ~client ?level ?mode query ~on_done =
  match shard_of_content t ~content_id with
  | None -> Error (Printf.sprintf "unknown content id %s" content_id)
  | Some shard ->
    read t ~shard ~client ?level ?mode query ~on_done;
    Ok shard

let schedule t ~shard ~time f =
  ignore (Sim.schedule_at (System.sim t.shards.(shard).system) ~time f)

(* -- host-level chaos ---------------------------------------------------

   Each action schedules a per-shard thunk at the same absolute time on
   every shard's own simulator, so the effect lands at exactly [at] in
   each stream regardless of slice boundaries.  The aliveness change is
   appended to the shared transition log here, at injection time —
   chaos is injected between scheduler runs, never from inside one —
   and every shard thereafter reads the same pure [alive_at] view. *)

let slots_on sh host =
  let acc = ref [] in
  Array.iteri (fun slot h -> if h = host then acc := slot :: !acc) sh.hosts;
  List.rev !acc

let schedule_on_all t ~at f =
  Array.iter
    (fun sh -> ignore (Sim.schedule_at (System.sim sh.system) ~time:at (fun () -> f sh)))
    t.shards

let crash_host t ~at host =
  t.transitions <- { at; host; alive = false } :: t.transitions;
  schedule_on_all t ~at (fun sh ->
      List.iter
        (fun slot ->
          System.crash_slave sh.system ~slave_id:slot;
          if t.auto_rebalance then
            (* Re-provision on a fresh host unless the old one came back
               first (short churn windows recover in place). *)
            ignore
              (Sim.schedule (System.sim sh.system) ~delay:t.provision_delay (fun () ->
                   let now = Sim.now (System.sim sh.system) in
                   if (not (alive_at t ~time:now host)) && sh.hosts.(slot) = host then begin
                     match rebalance_slot t sh ~slot ~reason:"crash" with
                     | None -> ()
                     | Some _fresh -> ignore (System.recover_slave sh.system ~slave_id:slot)
                   end)))
        (slots_on sh host))

let recover_host t ~at host =
  t.transitions <- { at; host; alive = true } :: t.transitions;
  schedule_on_all t ~at (fun sh ->
      List.iter
        (fun slot ->
          if System.is_crashed sh.system ~slave_id:slot then
            ignore (System.recover_slave sh.system ~slave_id:slot))
        (slots_on sh host))

let cut_host t ~at host =
  schedule_on_all t ~at (fun sh ->
      List.iter
        (fun slot -> System.set_slave_connectivity sh.system ~slave_id:slot ~up:false)
        (slots_on sh host))

let heal_host t ~at host =
  schedule_on_all t ~at (fun sh ->
      List.iter
        (fun slot -> System.set_slave_connectivity sh.system ~slave_id:slot ~up:true)
        (slots_on sh host))

(* -- shard-tagged JSONL ------------------------------------------------- *)

let tagged_line ~shard (r : Trace.record) =
  let extra =
    if List.mem_assoc "shard" (Event.fields r.Trace.event) then []
    else [ ("shard", Export.Json.Int shard) ]
  in
  Export.event_line ~extra ~time:r.Trace.time ~source:r.Trace.source r.Trace.event

let shard_of_line line =
  match Export.Json.parse line with
  | Error _ -> None
  | Ok json -> (
    match Export.Json.member "shard" json with
    | Some (Export.Json.Int k) -> Some k
    | _ -> None)
