(** Deterministic rendezvous (highest-random-weight) placement of
    content replicas over a shared host pool.

    Scores are SHA-1 based, so every participant — deployment, tests,
    an operator re-deriving a layout offline — computes the same
    assignment with no coordination, and removing a host only moves the
    replicas that lived on it. *)

val score : content_id:string -> host:int -> int64
(** HRW score of placing [content_id] on [host]; non-negative. *)

val rank : content_id:string -> hosts:int list -> int list
(** All hosts, best placement first.  Deterministic total order. *)

val assign : content_id:string -> hosts:int list -> replicas:int -> int list
(** The [replicas] highest-scoring hosts, best first.  Raises
    [Invalid_argument] when fewer than [replicas] hosts are offered. *)

val replacement :
  content_id:string -> hosts:int list -> current:int list -> dead:int -> int option
(** Re-homing pick: the best host that is neither [dead] nor already in
    [current].  [None] when the pool is exhausted. *)

val spread : content_ids:string list -> hosts:int list -> replicas:int -> (int * int) list
(** Per-host replica counts for a whole catalogue of contents — the
    load-balance view the placement tests assert on. *)
