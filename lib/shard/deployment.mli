(** Sharded content plane: K single-content protocol instances over a
    shared slave-host pool.

    Each shard is an unmodified {!Secrep_core.System} with its own
    deterministically derived seed, advanced in lockstep time slices by
    one shared bounded scheduler.  Cross-shard coupling is explicit and
    side-effect-free for the shard streams: a shared directory holding
    every shard's master certificates, rendezvous placement of replicas
    on pool hosts, host-level chaos that fans out to every co-located
    replica, and a shared auditor queue budget divided across the
    per-shard auditors.

    Because the deployment never perturbs a shard's PRNG or event
    schedule, a shard's event stream is bit-identical to a standalone
    single-content run with the same derived seed — the differential
    sharding tests assert exactly this.

    {2 Parallel execution}

    With [domains > 1] each slice of each shard runs on a bounded pool
    of OCaml domains (shard [i] is pinned to worker [i mod w], so a
    shard's whole history executes on one domain).  During a slice a
    shard touches only state it owns — its [System.t], its slot->host
    map, its outbox — plus read-only shared data: the chaos transition
    log (appended only between scheduler runs) and the content routing
    table (frozen after {!create}).  At every slice barrier the
    coordinator merges the outboxes in [(sim_time, shard, seq)] order
    — the same total order the sequential scheduler produces — so tap
    delivery, the deployment trace, and every per-shard stream are
    byte-identical across [domains] settings.  The
    [parallel-determinism] invariant and experiment E14 enforce this. *)

type t

val create :
  n_shards:int ->
  ?n_masters:int ->
  ?replication_factor:int ->
  ?n_clients:int ->
  ?pool_size:int ->
  ?config:Secrep_core.Config.t ->
  ?net:Secrep_core.System.net_profile ->
  ?seed:int64 ->
  ?items_per_shard:int ->
  ?audit_queue_total:int ->
  ?slice:float ->
  ?auto_rebalance:bool ->
  ?provision_delay:float ->
  ?track_ground_truth:bool ->
  ?trace_capacity:int ->
  ?domains:int ->
  unit ->
  t
(** Defaults: 1 master and 3 replicas per shard, 2 clients per shard,
    pool of [2*replication + 2] hosts, seed 1.  [items_per_shard > 0]
    loads a per-shard product catalogue (seeded by
    {!shard_content_seed}).  [audit_queue_total] divides one global
    auditor queue capacity evenly across shards.  [auto_rebalance]
    (default true) re-homes replicas off crashed hosts and excluded
    slaves onto fresh pool hosts after [provision_delay] (default two
    keep-alive periods); turn it off for strict differential runs
    against standalone systems that lack a re-homing operator.
    [domains] (default {!Secrep_core.Config.t.parallel_domains}) caps
    the worker-domain pool; 0 and 1 select the sequential scheduler. *)

(** {2 Seed derivation} — shared with the differential tests so the
    standalone reference systems can be built from identical inputs. *)

val shard_seed : seed:int64 -> int -> int64
val shard_content_seed : seed:int64 -> int -> int64

val shard_config :
  ?audit_queue_total:int -> n_shards:int -> Secrep_core.Config.t -> Secrep_core.Config.t
(** The per-shard config actually used: the shared auditor budget
    divided by the shard count (identity without [audit_queue_total]). *)

(** {2 Accessors} *)

val n_shards : t -> int
val replication : t -> int
val pool_size : t -> int
val now : t -> float
val domains : t -> int
(** The configured worker-domain cap (0/1 = sequential). *)

val directory : t -> Secrep_core.Directory.t
val trace : t -> Secrep_sim.Trace.t
(** Deployment-level events only (placement, rebalances, and — in
    parallel runs — [Domain_started]/[Shard_merged] window markers). *)

val system : t -> int -> Secrep_core.System.t
val content_id : t -> int -> string
val keys : t -> int -> string array
val hosts_of_shard : t -> int -> int array
(** Current slot -> host mapping (a copy). *)

val host_is_alive : t -> int -> bool
(** Aliveness at the deployment clock [now], read from the chaos
    transition log (a pure function of the injected crash/recover
    history, so every shard observes the same view). *)

val shard_of_content : t -> content_id:string -> int option
val audit_backlog : t -> int
(** Aggregate backlog across every per-shard auditor. *)

val on_event : t -> (shard:int -> Secrep_sim.Trace.record -> unit) -> unit
(** Subscribe to the merged live stream: every shard event (tagged with
    its shard index) plus the deployment's own placement events.
    Records arrive in merged [(time, shard, seq)] order, delivered at
    slice barriers; deployment window markers carry shard [-1]
    ([Domain_started]) or their subject shard ([Shard_merged]). *)

(** {2 Running} *)

val run_until : t -> float -> unit
(** Advance every shard in lockstep slices to the target time, on one
    domain or — when [domains > 1] and the deployment has more than one
    shard — on the parallel worker pool.  Both paths produce
    byte-identical shard streams and tap delivery order. *)

val run_for : t -> float -> unit

(** {2 Shard-aware client routing} *)

val read :
  t ->
  shard:int ->
  client:int ->
  ?level:Secrep_core.Security_level.t ->
  ?mode:Secrep_core.Client.read_mode ->
  Secrep_store.Query.t ->
  on_done:(Secrep_core.Client.read_report -> unit) ->
  unit

val write :
  t ->
  shard:int ->
  client:int ->
  Secrep_store.Oplog.op ->
  on_done:(Secrep_core.Master.write_ack -> unit) ->
  unit

val read_content :
  t ->
  content_id:string ->
  client:int ->
  ?level:Secrep_core.Security_level.t ->
  ?mode:Secrep_core.Client.read_mode ->
  Secrep_store.Query.t ->
  on_done:(Secrep_core.Client.read_report -> unit) ->
  (int, string) result
(** Route by content key: resolve the self-certifying content id to its
    shard and issue the read there.  Returns the shard that served it. *)

val schedule : t -> shard:int -> time:float -> (unit -> unit) -> unit
(** Schedule a thunk on a shard's own simulator at an absolute time. *)

(** {2 Host-level chaos}

    Actions land at exactly [at] in every shard's stream: each one
    schedules a per-shard thunk on that shard's own simulator.  Inject
    chaos only between scheduler runs (before the [run_until] that
    covers [at]) — the transition log backing {!host_is_alive} is
    read-only while the scheduler is running. *)

val crash_host : t -> at:float -> int -> unit
(** Fail-stop every replica on the host.  With [auto_rebalance], each
    replica is re-homed to a fresh host and reinstated from a master
    checkpoint after [provision_delay] (unless the host recovered
    first). *)

val recover_host : t -> at:float -> int -> unit
val cut_host : t -> at:float -> int -> unit
val heal_host : t -> at:float -> int -> unit

(** {2 Shard-tagged JSONL} *)

val tagged_line : shard:int -> Secrep_sim.Trace.record -> string
(** {!Secrep_sim.Export.event_line} plus a ["shard"] tag (omitted when
    the event already carries its shard).  Round-trips through
    {!Secrep_sim.Export.record_of_line}, which ignores unknown keys. *)

val shard_of_line : string -> int option
(** Read the shard tag back from a tagged JSONL line. *)
