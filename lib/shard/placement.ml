(* Rendezvous (highest-random-weight) placement.

   Each (content, host) pair gets a score = SHA-1(content_id | host)
   read as a big-endian 63-bit integer; a content's replicas live on
   the R highest-scoring live hosts.  The textbook HRW property is what
   the deployment leans on: removing one host from the candidate set
   only moves the replicas that lived on it — every other content keeps
   its placement, so a crash never triggers a cluster-wide shuffle. *)

module Sha1 = Secrep_crypto.Sha1

let score ~content_id ~host =
  let digest = Sha1.digest (Printf.sprintf "%s#%d" content_id host) in
  (* First 8 digest bytes, big-endian, sign bit cleared: a total order
     that every process computes identically with no coordination. *)
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code digest.[i]))
  done;
  Int64.logand !v Int64.max_int

(* Ties are impossible in practice (they need a SHA-1 collision) but the
   host id breaks them deterministically anyway. *)
let compare_scored (s1, h1) (s2, h2) =
  match Int64.compare s2 s1 with 0 -> Int.compare h1 h2 | c -> c

let rank ~content_id ~hosts =
  List.map (fun host -> (score ~content_id ~host, host)) hosts
  |> List.sort compare_scored
  |> List.map snd

let assign ~content_id ~hosts ~replicas =
  if replicas < 1 then invalid_arg "Placement.assign: replicas must be at least 1";
  if List.length hosts < replicas then
    invalid_arg
      (Printf.sprintf "Placement.assign: %d replica(s) requested but only %d host(s)"
         replicas (List.length hosts));
  let ranked = rank ~content_id ~hosts in
  List.filteri (fun i _ -> i < replicas) ranked

let replacement ~content_id ~hosts ~current ~dead =
  let live = List.filter (fun h -> h <> dead && not (List.mem h current)) hosts in
  match rank ~content_id ~hosts:live with [] -> None | h :: _ -> Some h

let spread ~content_ids ~hosts ~replicas =
  let load = Hashtbl.create (List.length hosts) in
  List.iter (fun h -> Hashtbl.replace load h 0) hosts;
  List.iter
    (fun cid ->
      List.iter
        (fun h -> Hashtbl.replace load h (1 + Option.value ~default:0 (Hashtbl.find_opt load h)))
        (assign ~content_id:cid ~hosts ~replicas))
    content_ids;
  List.map (fun h -> (h, Option.value ~default:0 (Hashtbl.find_opt load h))) hosts
