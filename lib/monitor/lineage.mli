(** Causal read lineage: per-request lifecycle records folded from the
    live event stream.

    Every client read carries a [request] id through the events it
    generates (issue → pledge → verify/double-check → answer), and
    auditor verdicts / exclusions name the slave they accuse.  Feeding
    the stream through {!observe} builds one {!info} record per read:
    who served it, whether it was degraded or double-checked, whether
    the pledge behind it lied, and — after {!finalize} correlates
    accusations — when the lie was detected.

    This answers "what happened to read #N?" without replaying a
    trace, and the aggregate {!summary} gives end-to-end latency, the
    read critical path, and detection latency per slave. *)

type info = {
  request : int;
  client : int;
  issued_at : float;
  mode : string;  (** "single" | "quorum-k" | "sensitive" *)
  mutable signed_at : float option;  (** first pledge for this request *)
  mutable signed_by : int;  (** last slave to pledge; -1 if none *)
  mutable lied : bool;  (** some pledge for this request lied *)
  mutable verify_ok : int;
  mutable verify_failed : int;
  mutable first_verified_at : float option;
  mutable double_check : string option;  (** "passed" | "mismatch" | "throttled" *)
  mutable answered_at : float option;  (** [None] = still outstanding *)
  mutable outcome : string;  (** "accepted" | "by-master" | "gave-up" | "" *)
  mutable served_by : int;
  mutable version : int;
  mutable latency : float;
  mutable detected_at : float option;
      (** first accusation of the serving slave at/after acceptance *)
}

type t

val create : unit -> t

val observe : t -> Secrep_sim.Trace.record -> unit
(** Fold one event; subscribe via {!Secrep_sim.Trace.on_emit} for live
    runs or replay a JSONL stream offline.  Events with [request = -1]
    (pre-lineage traces) update nothing. *)

val finalize : t -> unit
(** Correlate accusations (convictions, exclusions, double-check
    mismatches) back to the requests each accused slave served,
    filling [detected_at].  Idempotent; implied by the summaries. *)

val request_ids : t -> int list
(** Issue order. *)

val info : t -> int -> info option

type quarantine = { time : float; slave : int; score : float; until : float }

val quarantines : t -> quarantine list
(** Adaptive-audit probation events, oldest first.  Quarantine is
    reversible and carries no cryptographic proof, so it is tracked
    separately from accusations and never counts toward detection
    statistics. *)

type phase = { phase : string; count : int; mean : float; max : float }

type slave_row = {
  slave : int;
  served : int;  (** accepted reads this slave served *)
  lied_served : int;
  first_accused_at : float option;
  reads_before_detection : int option;
      (** accepted reads served up to the first accusation — the
          "reads until detection" count E1 reports *)
  detection_latency : float option;
      (** first lied acceptance → first accusation, seconds *)
}

type client_row = {
  client : int;
  issued : int;
  accepted : int;
  degraded : int;
  gave_up : int;
  outstanding : int;
}

type summary = {
  issued : int;
  completed : int;
  accepted : int;
  by_master : int;
  gave_up : int;
  outstanding : int;
  double_checked : int;
  degraded : int;  (** by-master completions of non-sensitive reads *)
  lied_served : int;  (** accepted reads whose pledge lied *)
  detected_lied : int;
  e2e_mean : float;
  e2e_p99 : float;
  e2e_max : float;
  detection_mean : float;
  detection_max : float;
  critical_path : phase list;
      (** issue_to_pledge, pledge_to_verify, verify_to_accept *)
}

val summarize : t -> summary
val client_rows : t -> client_row list
val slave_rows : t -> slave_row list

val jsonl : t -> string
(** One JSON object per request, issue order. *)

val json_of_summary : summary -> Secrep_sim.Export.Json.t
val pp_summary : Format.formatter -> summary -> unit
