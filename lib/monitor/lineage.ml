module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Export = Secrep_sim.Export
module Json = Secrep_sim.Export.Json

type info = {
  request : int;
  client : int;
  issued_at : float;
  mode : string;
  mutable signed_at : float option;
  mutable signed_by : int;
  mutable lied : bool;
  mutable verify_ok : int;
  mutable verify_failed : int;
  mutable first_verified_at : float option;
  mutable double_check : string option;
  mutable answered_at : float option;
  mutable outcome : string;
  mutable served_by : int;
  mutable version : int;
  mutable latency : float;
  mutable detected_at : float option;
}

type quarantine = { time : float; slave : int; score : float; until : float }

type t = {
  requests : (int, info) Hashtbl.t;
  mutable order : int list; (* request ids, newest first *)
  mutable accusations : (float * int) list; (* (time, slave), newest first *)
  mutable quarantine_log : quarantine list; (* newest first *)
  mutable finalized : bool;
}

let create () =
  {
    requests = Hashtbl.create 256;
    order = [];
    accusations = [];
    quarantine_log = [];
    finalized = false;
  }

let find t request = Hashtbl.find_opt t.requests request

let accuse t ~time ~slave = t.accusations <- (time, slave) :: t.accusations

let observe t (r : Trace.record) =
  if not t.finalized then begin
    let time = r.time in
    match r.event with
    | Event.Read_issued { client; request; mode } when request >= 0 ->
      if not (Hashtbl.mem t.requests request) then begin
        Hashtbl.replace t.requests request
          {
            request;
            client;
            issued_at = time;
            mode;
            signed_at = None;
            signed_by = -1;
            lied = false;
            verify_ok = 0;
            verify_failed = 0;
            first_verified_at = None;
            double_check = None;
            answered_at = None;
            outcome = "";
            served_by = -1;
            version = -1;
            latency = 0.0;
            detected_at = None;
          };
        t.order <- request :: t.order
      end
    | Event.Pledge_signed { slave; request; lied; _ } -> begin
      match find t request with
      | None -> ()
      | Some i ->
        if i.signed_at = None then i.signed_at <- Some time;
        i.signed_by <- slave;
        i.lied <- i.lied || lied
    end
    | Event.Pledge_verified { request; ok; _ } -> begin
      match find t request with
      | None -> ()
      | Some i ->
        if ok then begin
          i.verify_ok <- i.verify_ok + 1;
          if i.first_verified_at = None then i.first_verified_at <- Some time
        end
        else i.verify_failed <- i.verify_failed + 1
    end
    | Event.Double_check { request; slave; outcome; _ } -> begin
      (if outcome = Event.Mismatch then accuse t ~time ~slave);
      match find t request with
      | None -> ()
      | Some i -> i.double_check <- Some (Event.dc_outcome_to_string outcome)
    end
    | Event.Read_answered { request; slave; outcome; version; latency; _ } -> begin
      match find t request with
      | None -> ()
      | Some i ->
        i.answered_at <- Some time;
        i.outcome <- outcome;
        i.served_by <- slave;
        i.version <- version;
        i.latency <- latency
    end
    | Event.Audit_conviction { slave; _ } -> accuse t ~time ~slave
    | Event.Slave_excluded { slave; _ } -> accuse t ~time ~slave
    | Event.Slave_quarantined { slave; score; until } ->
      (* Probation is reversible and evidence-free, so it is NOT an
         accusation — it must never count toward detection stats. *)
      t.quarantine_log <- { time; slave; score; until } :: t.quarantine_log
    | _ -> ()
  end

(* The pledge that was ultimately accepted lied iff the serving slave
   lied on this request; the per-info [lied] flag is an OR across
   attempts, which is exactly what "this read may return wrong data"
   means for the lineage. *)
let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    let accusations = List.sort compare (List.rev t.accusations) in
    Hashtbl.iter
      (fun _ i ->
        match i.answered_at with
        | Some answered when i.served_by >= 0 ->
          i.detected_at <-
            List.find_opt
              (fun (time, slave) -> slave = i.served_by && time >= answered -. 1e-9)
              accusations
            |> Option.map fst
        | _ -> ())
      t.requests
  end

let request_ids t = List.rev t.order
let info t request = find t request
let quarantines t = List.rev t.quarantine_log

(* -- summaries --------------------------------------------------------- *)

type phase = { phase : string; count : int; mean : float; max : float }

type slave_row = {
  slave : int;
  served : int;
  lied_served : int;
  first_accused_at : float option;
  reads_before_detection : int option;
  detection_latency : float option;
}

type client_row = {
  client : int;
  issued : int;
  accepted : int;
  degraded : int;
  gave_up : int;
  outstanding : int;
}

type summary = {
  issued : int;
  completed : int;
  accepted : int;
  by_master : int;
  gave_up : int;
  outstanding : int;
  double_checked : int;
  degraded : int;
  lied_served : int;
  detected_lied : int;
  e2e_mean : float;
  e2e_p99 : float;
  e2e_max : float;
  detection_mean : float;
  detection_max : float;
  critical_path : phase list;
}

let mean_of = function [] -> 0.0 | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
let max_of = function [] -> 0.0 | l -> List.fold_left Float.max neg_infinity l

let p99_of = function
  | [] -> 0.0
  | l ->
    let a = Array.of_list l in
    Array.sort compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (0.99 *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

let infos t = List.filter_map (find t) (request_ids t)

let is_degraded i = i.outcome = "by-master" && i.mode <> "sensitive"

let phase_of name samples =
  { phase = name; count = List.length samples; mean = mean_of samples; max = max_of samples }

let summarize t =
  finalize t;
  let all = infos t in
  let completed = List.filter (fun i -> i.answered_at <> None) all in
  let accepted = List.filter (fun i -> i.outcome = "accepted") completed in
  let lied_served = List.filter (fun i -> i.lied && i.served_by >= 0) accepted in
  let detected = List.filter (fun i -> i.detected_at <> None) lied_served in
  let detection_latencies =
    List.filter_map
      (fun i ->
        match (i.detected_at, i.answered_at) with
        | Some d, Some a -> Some (d -. a)
        | _ -> None)
      detected
  in
  let lat = List.map (fun i -> i.latency) completed in
  let diffs f = List.filter_map f accepted in
  {
    issued = List.length all;
    completed = List.length completed;
    accepted = List.length accepted;
    by_master = List.length (List.filter (fun i -> i.outcome = "by-master") completed);
    gave_up = List.length (List.filter (fun i -> i.outcome = "gave-up") completed);
    outstanding = List.length all - List.length completed;
    double_checked = List.length (List.filter (fun i -> i.double_check <> None) completed);
    degraded = List.length (List.filter is_degraded completed);
    lied_served = List.length lied_served;
    detected_lied = List.length detected;
    e2e_mean = mean_of lat;
    e2e_p99 = p99_of lat;
    e2e_max = max_of lat;
    detection_mean = mean_of detection_latencies;
    detection_max = max_of detection_latencies;
    critical_path =
      [
        phase_of "issue_to_pledge"
          (diffs (fun i -> Option.map (fun s -> s -. i.issued_at) i.signed_at));
        phase_of "pledge_to_verify"
          (diffs (fun i ->
               match (i.signed_at, i.first_verified_at) with
               | Some s, Some v when v >= s -> Some (v -. s)
               | _ -> None));
        phase_of "verify_to_accept"
          (diffs (fun i ->
               match (i.first_verified_at, i.answered_at) with
               | Some v, Some a when a >= v -> Some (a -. v)
               | _ -> None));
      ];
  }

let client_rows t =
  finalize t;
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i : info) ->
      let row =
        match Hashtbl.find_opt tbl i.client with
        | Some r -> r
        | None ->
          let r =
            ref { client = i.client; issued = 0; accepted = 0; degraded = 0; gave_up = 0; outstanding = 0 }
          in
          Hashtbl.add tbl i.client r;
          r
      in
      let r = !row in
      let r = { r with issued = r.issued + 1 } in
      let r =
        match i.answered_at with
        | None -> { r with outstanding = r.outstanding + 1 }
        | Some _ ->
          if i.outcome = "accepted" then { r with accepted = r.accepted + 1 }
          else if i.outcome = "gave-up" then { r with gave_up = r.gave_up + 1 }
          else if is_degraded i then { r with degraded = r.degraded + 1 }
          else r
      in
      row := r)
    (infos t);
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b -> compare a.client b.client)

let slave_rows t =
  finalize t;
  let accusations = List.sort compare (List.rev t.accusations) in
  let first_accusation slave =
    List.find_opt (fun (_, s) -> s = slave) accusations |> Option.map fst
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun i ->
      if i.served_by >= 0 && i.outcome = "accepted" then begin
        let served, lied =
          match Hashtbl.find_opt tbl i.served_by with Some (s, l) -> (s, l) | None -> (0, 0)
        in
        Hashtbl.replace tbl i.served_by (served + 1, if i.lied then lied + 1 else lied)
      end)
    (infos t);
  (* Slaves that were accused without serving any accepted read still
     deserve a row (e.g. caught by a double-check before acceptance). *)
  List.iter
    (fun (_, s) -> if not (Hashtbl.mem tbl s) then Hashtbl.add tbl s (0, 0))
    accusations;
  Hashtbl.fold
    (fun slave (served, lied_served) acc ->
      let first_accused_at = first_accusation slave in
      let reads_before_detection =
        match first_accused_at with
        | None -> None
        | Some cutoff ->
          Some
            (List.length
               (List.filter
                  (fun i ->
                    i.served_by = slave && i.outcome = "accepted"
                    && match i.answered_at with
                       | Some a -> a <= cutoff +. 1e-9
                       | None -> false)
                  (infos t)))
      in
      let detection_latency =
        match first_accused_at with
        | None -> None
        | Some cutoff ->
          (* first lied read accepted from this slave -> accusation *)
          List.filter_map
            (fun i ->
              if i.served_by = slave && i.lied && i.outcome = "accepted" then i.answered_at
              else None)
            (infos t)
          |> function
          | [] -> None
          | times -> Some (cutoff -. List.fold_left Float.min infinity times)
      in
      { slave; served; lied_served; first_accused_at; reads_before_detection; detection_latency }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.slave b.slave)

(* -- rendering --------------------------------------------------------- *)

let opt_num = function Some x -> Json.Num x | None -> Json.Null

let json_of_info i =
  Json.Obj
    [
      ("request", Json.Int i.request);
      ("client", Json.Int i.client);
      ("mode", Json.Str i.mode);
      ("issued_at", Json.Num i.issued_at);
      ("signed_at", opt_num i.signed_at);
      ("signed_by", Json.Int i.signed_by);
      ("lied", Json.Bool i.lied);
      ("verify_ok", Json.Int i.verify_ok);
      ("verify_failed", Json.Int i.verify_failed);
      ("double_check", (match i.double_check with Some s -> Json.Str s | None -> Json.Null));
      ("answered_at", opt_num i.answered_at);
      ("outcome", (if i.outcome = "" then Json.Null else Json.Str i.outcome));
      ("served_by", Json.Int i.served_by);
      ("version", Json.Int i.version);
      ("latency", Json.Num i.latency);
      ("detected_at", opt_num i.detected_at);
    ]

let jsonl t =
  finalize t;
  let buf = Buffer.create 4096 in
  List.iter
    (fun i ->
      Buffer.add_string buf (Json.to_string (json_of_info i));
      Buffer.add_char buf '\n')
    (infos t);
  Buffer.contents buf

let json_of_summary s =
  Json.Obj
    [
      ("issued", Json.Int s.issued);
      ("completed", Json.Int s.completed);
      ("accepted", Json.Int s.accepted);
      ("by_master", Json.Int s.by_master);
      ("gave_up", Json.Int s.gave_up);
      ("outstanding", Json.Int s.outstanding);
      ("double_checked", Json.Int s.double_checked);
      ("degraded", Json.Int s.degraded);
      ("lied_served", Json.Int s.lied_served);
      ("detected_lied", Json.Int s.detected_lied);
      ("e2e_mean", Json.Num s.e2e_mean);
      ("e2e_p99", Json.Num s.e2e_p99);
      ("e2e_max", Json.Num s.e2e_max);
      ("detection_mean", Json.Num s.detection_mean);
      ("detection_max", Json.Num s.detection_max);
      ( "critical_path",
        Json.Arr
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("phase", Json.Str p.phase);
                   ("count", Json.Int p.count);
                   ("mean", Json.Num p.mean);
                   ("max", Json.Num p.max);
                 ])
             s.critical_path) );
    ]

let pp_summary fmt s =
  Format.fprintf fmt
    "reads: %d issued, %d accepted, %d by-master (%d degraded), %d gave up, %d outstanding@."
    s.issued s.accepted s.by_master s.degraded s.gave_up s.outstanding;
  Format.fprintf fmt "latency: mean %.4fs  p99 %.4fs  max %.4fs@." s.e2e_mean s.e2e_p99
    s.e2e_max;
  if s.lied_served > 0 then
    Format.fprintf fmt
      "lied reads served: %d (%d later detected; detection latency mean %.3fs max %.3fs)@."
      s.lied_served s.detected_lied s.detection_mean s.detection_max;
  List.iter
    (fun p ->
      if p.count > 0 then
        Format.fprintf fmt "phase %-18s n=%-6d mean %.6fs  max %.6fs@." p.phase p.count
          p.mean p.max)
    s.critical_path
