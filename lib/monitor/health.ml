module Trace = Secrep_sim.Trace
module Span = Secrep_sim.Span
module Json = Secrep_sim.Export.Json

type diagnostics = {
  trace_capacity : int option;
  trace_total : int option;
  trace_wrapped : bool;
  leaked_spans : (string * string * float) list;
}

type t = {
  alerts : Slo.alert list;
  active_rules : string list;
  summary : Lineage.summary;
  clients : Lineage.client_row list;
  slaves : Lineage.slave_row list;
  quarantines : Lineage.quarantine list;
  diagnostics : diagnostics;
}

let build ?trace ?spans ~slo ~lineage () =
  Lineage.finalize lineage;
  {
    alerts = Slo.alerts slo;
    active_rules = List.map (fun (a : Slo.alert) -> a.Slo.rule) (Slo.active slo);
    summary = Lineage.summarize lineage;
    clients = Lineage.client_rows lineage;
    slaves = Lineage.slave_rows lineage;
    quarantines = Lineage.quarantines lineage;
    diagnostics =
      {
        trace_capacity = Option.map Trace.capacity trace;
        trace_total = Option.map Trace.total_logged trace;
        trace_wrapped = (match trace with Some tr -> Trace.wrapped tr | None -> false);
        leaked_spans = (match spans with Some sp -> Span.leaked sp | None -> []);
      };
  }

let healthy t = t.alerts = [] && t.diagnostics.leaked_spans = []

let opt_num = function Some x -> Json.Num x | None -> Json.Null
let opt_int = function Some x -> Json.Int x | None -> Json.Null

let to_json t =
  Json.Obj
    [
      ("healthy", Json.Bool (healthy t));
      ("alerts", Json.Arr (List.map Slo.json_of_alert t.alerts));
      ("active_rules", Json.Arr (List.map (fun r -> Json.Str r) t.active_rules));
      ("lineage", Lineage.json_of_summary t.summary);
      ( "clients",
        Json.Arr
          (List.map
             (fun (c : Lineage.client_row) ->
               Json.Obj
                 [
                   ("client", Json.Int c.Lineage.client);
                   ("issued", Json.Int c.Lineage.issued);
                   ("accepted", Json.Int c.Lineage.accepted);
                   ("degraded", Json.Int c.Lineage.degraded);
                   ("gave_up", Json.Int c.Lineage.gave_up);
                   ("outstanding", Json.Int c.Lineage.outstanding);
                 ])
             t.clients) );
      ( "slaves",
        Json.Arr
          (List.map
             (fun (s : Lineage.slave_row) ->
               Json.Obj
                 [
                   ("slave", Json.Int s.Lineage.slave);
                   ("served", Json.Int s.Lineage.served);
                   ("lied_served", Json.Int s.Lineage.lied_served);
                   ("first_accused_at", opt_num s.Lineage.first_accused_at);
                   ("reads_before_detection", opt_int s.Lineage.reads_before_detection);
                   ("detection_latency", opt_num s.Lineage.detection_latency);
                 ])
             t.slaves) );
      ( "quarantines",
        Json.Arr
          (List.map
             (fun (q : Lineage.quarantine) ->
               Json.Obj
                 [
                   ("time", Json.Num q.Lineage.time);
                   ("slave", Json.Int q.Lineage.slave);
                   ("score", Json.Num q.Lineage.score);
                   ("until", Json.Num q.Lineage.until);
                 ])
             t.quarantines) );
      ( "diagnostics",
        Json.Obj
          [
            ("trace_capacity", opt_int t.diagnostics.trace_capacity);
            ("trace_total", opt_int t.diagnostics.trace_total);
            ("trace_wrapped", Json.Bool t.diagnostics.trace_wrapped);
            ( "leaked_spans",
              Json.Arr
                (List.map
                   (fun (name, source, start) ->
                     Json.Obj
                       [
                         ("name", Json.Str name);
                         ("source", Json.Str source);
                         ("start", Json.Num start);
                       ])
                   t.diagnostics.leaked_spans) );
          ] );
    ]

let pp fmt t =
  let open Format in
  fprintf fmt "=== health report ===@.";
  fprintf fmt "status: %s@."
    (if healthy t then "HEALTHY (no alerts)"
     else
       Printf.sprintf "%d alert(s), %d still active" (List.length t.alerts)
         (List.length t.active_rules));
  if t.alerts <> [] then begin
    fprintf fmt "@.alerts:@.";
    List.iter (fun a -> fprintf fmt "  %a@." Slo.pp_alert a) t.alerts
  end;
  fprintf fmt "@.%a" Lineage.pp_summary t.summary;
  if t.slaves <> [] then begin
    fprintf fmt "@.per-slave:@.";
    fprintf fmt "  %-6s %8s %12s %14s %20s@." "slave" "served" "lied-served" "accused-at"
      "detection-latency";
    List.iter
      (fun (s : Lineage.slave_row) ->
        fprintf fmt "  %-6d %8d %12d %14s %20s@." s.Lineage.slave s.Lineage.served
          s.Lineage.lied_served
          (match s.Lineage.first_accused_at with
          | Some x -> Printf.sprintf "%.4f" x
          | None -> "-")
          (match s.Lineage.detection_latency with
          | Some x -> Printf.sprintf "%.4f" x
          | None -> "-"))
      t.slaves
  end;
  if t.quarantines <> [] then begin
    fprintf fmt "@.quarantines (probation, not accusations):@.";
    List.iter
      (fun (q : Lineage.quarantine) ->
        fprintf fmt "  [%10.4f] slave %d  suspicion %.2f  until %.4f@." q.Lineage.time
          q.Lineage.slave q.Lineage.score q.Lineage.until)
      t.quarantines
  end;
  if t.clients <> [] then begin
    fprintf fmt "@.per-client:@.";
    fprintf fmt "  %-6s %8s %9s %9s %8s %12s@." "client" "issued" "accepted" "degraded"
      "gave-up" "outstanding";
    List.iter
      (fun (c : Lineage.client_row) ->
        fprintf fmt "  %-6d %8d %9d %9d %8d %12d@." c.Lineage.client c.Lineage.issued
          c.Lineage.accepted c.Lineage.degraded c.Lineage.gave_up c.Lineage.outstanding)
      t.clients
  end;
  fprintf fmt "@.diagnostics:@.";
  (match (t.diagnostics.trace_total, t.diagnostics.trace_capacity) with
  | Some total, Some cap ->
    if t.diagnostics.trace_wrapped then
      fprintf fmt
        "  WARNING: trace ring wrapped (%d events emitted, capacity %d) — oldest events \
         were dropped; rerun with a larger --trace-capacity for a complete trace@."
        total cap
    else fprintf fmt "  trace ring: %d/%d events, no wrap@." total cap
  | _ -> fprintf fmt "  trace ring: not attached@.");
  match t.diagnostics.leaked_spans with
  | [] -> fprintf fmt "  spans: none leaked@."
  | leaks ->
    fprintf fmt "  WARNING: %d span(s) started but never finished:@." (List.length leaks);
    List.iter
      (fun (name, source, start) ->
        fprintf fmt "    %s (source %s, started %.4f)@." name source start)
      leaks
