(** End-of-run health report: alerts + lineage summary + per-node
    rows + harness diagnostics, renderable as text ({!pp}) or as the
    machine-readable JSON the CI smoke job uploads ({!to_json}). *)

type diagnostics = {
  trace_capacity : int option;
  trace_total : int option;
  trace_wrapped : bool;  (** ring overwrote records; trace is partial *)
  leaked_spans : (string * string * float) list;
      (** (name, source, start) of spans started but never finished *)
}

type t = {
  alerts : Slo.alert list;
  active_rules : string list;  (** rules still firing at end of run *)
  summary : Lineage.summary;
  clients : Lineage.client_row list;
  slaves : Lineage.slave_row list;
  quarantines : Lineage.quarantine list;
      (** adaptive-audit probation events (not accusations) *)
  diagnostics : diagnostics;
}

val build :
  ?trace:Secrep_sim.Trace.t ->
  ?spans:Secrep_sim.Span.t ->
  slo:Slo.t ->
  lineage:Lineage.t ->
  unit ->
  t
(** Call after [Slo.finalize]; finalizes [lineage] itself. *)

val healthy : t -> bool
(** No alerts were ever raised and no spans leaked. *)

val to_json : t -> Secrep_sim.Export.Json.t
val pp : Format.formatter -> t -> unit
