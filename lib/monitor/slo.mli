(** Online SLO monitor: rolling-window rules evaluated incrementally
    over the live event stream, raising typed {!Secrep_sim.Event.t}
    [Alert_raised] / [Alert_cleared] events.

    Rules (see docs/OBSERVABILITY.md for the full reference):

    - ["staleness"] — a pledge for version [v] was accepted after
      [commit(v+1) + max_latency], or a committed version went
      unapplied by every slave past the bound.
    - ["read-latency"] — rolling p99 read latency above [max_latency].
    - ["availability"] — burn rate of degraded/failed completions
      against the error budget, or a read hung past the retry budget.
    - ["detection"] — a lie outlived the audit detection budget (or,
      at {!finalize}, was never accused at all).
    - ["false-accusation"] — a slave was accused without any recorded
      lie (pulse).
    - ["write-spacing"] — a master committed writes closer than
      [max_latency] apart (pulse).
    - ["auditor-lag"] — the audit store fell behind its deadline or
      shed load.
    - ["breaker"] — circuit-breaker opens exceeded the rate threshold.
    - ["recovery"] — a rejoining slave failed to converge within the
      bound.
    - ["quarantine"] — the adaptive auditor put a slave on probation
      (pulse; the value is the suspicion score that crossed the
      threshold).

    Standing rules clear when their condition recovers ([Alert_cleared]
    carries the outage duration); pulse rules decay after a quiet
    window.  Repeat violations while an alert is active update its
    [peak] instead of re-raising — burn-rate style, one alert per
    outage. *)

type config = {
  max_latency : float;
  window : float;  (** rolling-window span, seconds *)
  audit_enabled : bool;
  latency_threshold : float;
  latency_min_samples : int;
  unavail_budget : float;  (** tolerated bad-completion fraction *)
  burn_raise : float;  (** raise when burn rate >= this *)
  burn_clear : float;  (** clear when burn rate < this *)
  avail_min_samples : int;
  read_deadline : float;  (** hung-read bound, seconds after issue *)
  detection_budget : float;  (** lie -> accusation bound *)
  audit_deadline : float;  (** commit -> audit-advance bound *)
  breaker_rate : int;  (** opens per window before alerting *)
  quarantine_threshold : float;  (** suspicion score that triggers probation *)
}

val config : ?window:float -> Secrep_core.Config.t -> config
(** Derive thresholds from the run's protocol parameters.  [window]
    defaults to [6 * max_latency]. *)

val rule_names : string list

val rule_for_invariant : string -> string option
(** Map a fuzz-invariant name (see [Secrep_check.Invariant]) to the
    SLO rule that should fire when it is violated; [None] for
    invariants with no online counterpart (e.g. pledge-validity, which
    needs ground truth the event stream does not carry). *)

type alert = {
  rule : string;
  raised_at : float;
  threshold : float;
  mutable peak : float;  (** worst observed value while active *)
  mutable cleared_at : float option;
  mutable detail : string;  (** human-readable cause, tracks [peak] *)
}

type t

val create : ?trace:Secrep_sim.Trace.t -> config:config -> unit -> t
(** When [trace] is given, raises and clears are emitted into it as
    [Alert_raised] / [Alert_cleared] events with source ["slo"]. *)

val observe : t -> Secrep_sim.Trace.record -> unit
(** Fold one event and re-evaluate every rule at that timestamp.
    Alert events are ignored (a monitor may observe its own output —
    e.g. when subscribed to the trace it emits into — without
    looping).  Time is treated as monotone: a record older than the
    newest seen evaluates at the newest time. *)

val finalize : t -> now:float -> unit
(** Final evaluation at end of run.  Lies never accused are raised as
    ["detection"] alerts regardless of age: the auditor gets no
    further chances.  Idempotent; [observe] is a no-op afterwards. *)

val alerts : t -> alert list
(** Every alert ever raised, oldest first (includes cleared ones). *)

val active : t -> alert list
val raised_rules : t -> string list
val was_raised : t -> string -> bool

val json_of_alert : alert -> Secrep_sim.Export.Json.t
val pp_alert : Format.formatter -> alert -> unit
