module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Rolling = Secrep_sim.Rolling
module Json = Secrep_sim.Export.Json
module Config = Secrep_core.Config

let eps = 1e-6

type config = {
  max_latency : float;
  window : float;
  audit_enabled : bool;
  latency_threshold : float;
  latency_min_samples : int;
  unavail_budget : float;
  burn_raise : float;
  burn_clear : float;
  avail_min_samples : int;
  read_deadline : float;
  detection_budget : float;
  audit_deadline : float;
  breaker_rate : int;
  quarantine_threshold : float;
}

let config ?window (cfg : Config.t) =
  let ml = cfg.Config.max_latency in
  let window = match window with Some w -> w | None -> 6.0 *. ml in
  let read_slack =
    float_of_int (cfg.Config.read_retry_limit + 2)
    *. ((cfg.Config.read_timeout_factor *. ml) +. cfg.Config.retry_backoff_cap)
  in
  {
    max_latency = ml;
    window;
    audit_enabled = cfg.Config.audit_enabled;
    latency_threshold = ml;
    latency_min_samples = 20;
    unavail_budget = 0.05;
    burn_raise = 2.0;
    burn_clear = 1.0;
    avail_min_samples = 10;
    (* A read still unanswered this long after issue has outlived every
       retry, timeout and backoff the client could legally spend. *)
    read_deadline = read_slack +. ml;
    (* Conviction of a lie at version v waits at most for commit(v+1)
       to age past the audit lag slack, plus delivery and re-execution. *)
    detection_budget = (2.0 *. ml) +. cfg.Config.audit_lag_slack +. 1.0;
    (* The auditor advances past version v at commit(v+1) + ml + slack;
       grace of ml + 1 covers delivery and queued audit work. *)
    audit_deadline = (2.0 *. ml) +. cfg.Config.audit_lag_slack +. 1.0;
    breaker_rate = 3;
    quarantine_threshold = cfg.Config.quarantine_threshold;
  }

let rule_names =
  [
    "staleness";
    "read-latency";
    "availability";
    "detection";
    "false-accusation";
    "write-spacing";
    "auditor-lag";
    "breaker";
    "recovery";
    "quarantine";
  ]

let rule_for_invariant = function
  | "detection" -> Some "detection"
  | "no-false-accusation" -> Some "false-accusation"
  | "staleness" -> Some "staleness"
  | "write-spacing" -> Some "write-spacing"
  | "availability" -> Some "availability"
  | "recovery-convergence" -> Some "recovery"
  | _ -> None

type alert = {
  rule : string;
  raised_at : float;
  threshold : float;
  mutable peak : float;
  mutable cleared_at : float option;
  mutable detail : string;
}

type rule_state = {
  mutable active : alert option;
  mutable history : alert list; (* newest first, includes active *)
  mutable last_violation : float;
}

type t = {
  cfg : config;
  trace : Trace.t option;
  rules : (string, rule_state) Hashtbl.t;
  commits : (int, float) Hashtbl.t; (* version -> latest commit time *)
  mutable committed_max : int;
  last_commit_of_master : (int, float) Hashtbl.t;
  pending_apply : (int, float) Hashtbl.t; (* version -> latest commit time *)
  mutable applied_max : int;
  pending_audit : (int, float) Hashtbl.t;
  mutable audited_max : int;
  outstanding : (int, float * string) Hashtbl.t; (* request -> issue time, mode *)
  liars : (int, float) Hashtbl.t; (* slave -> earliest unaccused lie *)
  lied_ever : (int, unit) Hashtbl.t;
  pending_recovery : (int, int * float) Hashtbl.t; (* slave -> target version, rejoin *)
  latency_roll : Rolling.t;
  avail_roll : Rolling.t;
  breaker_roll : Rolling.t;
  mutable now : float;
  mutable finalized : bool;
}

let create ?trace ~config:cfg () =
  let rules = Hashtbl.create 16 in
  List.iter
    (fun name ->
      Hashtbl.add rules name { active = None; history = []; last_violation = neg_infinity })
    rule_names;
  {
    cfg;
    trace;
    rules;
    commits = Hashtbl.create 64;
    committed_max = 0;
    last_commit_of_master = Hashtbl.create 8;
    pending_apply = Hashtbl.create 16;
    applied_max = 0;
    pending_audit = Hashtbl.create 16;
    audited_max = 0;
    outstanding = Hashtbl.create 64;
    liars = Hashtbl.create 8;
    lied_ever = Hashtbl.create 8;
    pending_recovery = Hashtbl.create 8;
    latency_roll = Rolling.create ~window:cfg.window ();
    avail_roll = Rolling.create ~window:cfg.window ();
    breaker_roll = Rolling.create ~window:cfg.window ();
    now = 0.0;
    finalized = false;
  }

let rule t name =
  match Hashtbl.find_opt t.rules name with
  | Some rs -> rs
  | None -> invalid_arg ("Slo: unknown rule " ^ name)

let emit t event =
  match t.trace with
  | Some tr -> Trace.emit tr ~time:t.now ~source:"slo" event
  | None -> ()

let raise_alert t name ~value ~threshold ~detail =
  let rs = rule t name in
  rs.last_violation <- t.now;
  match rs.active with
  | Some a ->
    if value > a.peak then begin
      a.peak <- value;
      a.detail <- detail
    end
  | None ->
    let a =
      { rule = name; raised_at = t.now; threshold; peak = value; cleared_at = None; detail }
    in
    rs.active <- Some a;
    rs.history <- a :: rs.history;
    emit t (Event.Alert_raised { rule = name; value; threshold })

let clear_alert t name =
  let rs = rule t name in
  match rs.active with
  | None -> ()
  | Some a ->
    a.cleared_at <- Some t.now;
    rs.active <- None;
    emit t (Event.Alert_cleared { rule = name; duration = t.now -. a.raised_at })

(* A pulse rule has no standing condition: it decays once the window
   has been quiet. *)
let decay_pulse t name =
  let rs = rule t name in
  match rs.active with
  | Some _ when t.now -. rs.last_violation > t.cfg.window -> clear_alert t name
  | _ -> ()

let max_overdue tbl ~now ~deadline_of =
  Hashtbl.fold
    (fun k v acc ->
      let over = now -. deadline_of k v in
      if over > 0.0 then match acc with
        | Some (_, o) when o >= over -> acc
        | _ -> Some (k, over)
      else acc)
    tbl None

let slave_of_node node =
  match String.length node > 6 && String.sub node 0 6 = "slave-" with
  | true -> int_of_string_opt (String.sub node 6 (String.length node - 6))
  | false -> None

let handle t event =
  let cfg = t.cfg in
  let now = t.now in
  match event with
  | Event.Write_committed { master; version } ->
    (match Hashtbl.find_opt t.last_commit_of_master master with
    | Some prev when now -. prev < cfg.max_latency -. eps ->
      raise_alert t "write-spacing" ~value:(now -. prev) ~threshold:cfg.max_latency
        ~detail:(Printf.sprintf "master %d committed %.3fs after its previous write" master (now -. prev))
    | _ -> ());
    Hashtbl.replace t.last_commit_of_master master now;
    (match Hashtbl.find_opt t.commits version with
    | Some prev when prev >= now -> ()
    | _ -> Hashtbl.replace t.commits version now);
    if version > t.committed_max then t.committed_max <- version;
    if version > t.applied_max then begin
      match Hashtbl.find_opt t.pending_apply version with
      | Some prev when prev >= now -> ()
      | _ -> Hashtbl.replace t.pending_apply version now
    end;
    if cfg.audit_enabled && version > t.audited_max then begin
      match Hashtbl.find_opt t.pending_audit version with
      | Some prev when prev >= now -> ()
      | _ -> Hashtbl.replace t.pending_audit version now
    end
  | Event.State_update_applied { to_version; _ } ->
    if to_version > t.applied_max then begin
      t.applied_max <- to_version;
      Hashtbl.iter
        (fun v _ -> if v <= to_version then Hashtbl.remove t.pending_apply v)
        (Hashtbl.copy t.pending_apply)
    end
  | Event.Audit_advance { version } ->
    if version > t.audited_max then t.audited_max <- version;
    Hashtbl.iter
      (fun v _ -> if v <= version then Hashtbl.remove t.pending_audit v)
      (Hashtbl.copy t.pending_audit)
  | Event.Audit_overload { backlog } ->
    raise_alert t "auditor-lag" ~value:(float_of_int backlog)
      ~threshold:(float_of_int backlog)
      ~detail:(Printf.sprintf "auditor shedding load at backlog %d" backlog)
  | Event.Read_issued { request; mode; _ } when request >= 0 ->
    Hashtbl.replace t.outstanding request (now, mode)
  | Event.Read_answered { request; outcome; latency; _ } ->
    let mode =
      match Hashtbl.find_opt t.outstanding request with
      | Some (_, mode) -> mode
      | None -> "single"
    in
    Hashtbl.remove t.outstanding request;
    Rolling.record t.latency_roll ~time:now latency;
    let bad = outcome = "gave-up" || (outcome = "by-master" && mode <> "sensitive") in
    Rolling.record t.avail_roll ~time:now (if bad then 1.0 else 0.0)
  | Event.Pledge_signed { slave; lied; _ } ->
    if lied then begin
      Hashtbl.replace t.lied_ever slave ();
      if not (Hashtbl.mem t.liars slave) then Hashtbl.replace t.liars slave now
    end
  | Event.Pledge_verified { ok = true; version; _ } -> begin
    match Hashtbl.find_opt t.commits (version + 1) with
    | Some commit when now > commit +. cfg.max_latency +. eps ->
      raise_alert t "staleness"
        ~value:(now -. commit -. cfg.max_latency)
        ~threshold:cfg.max_latency
        ~detail:
          (Printf.sprintf "pledge for version %d accepted %.3fs past the freshness bound"
             version (now -. commit -. cfg.max_latency))
    | _ -> ()
  end
  | Event.Audit_conviction { slave; _ }
  | Event.Slave_excluded { slave; _ }
  | Event.Double_check { slave; outcome = Event.Mismatch; _ } ->
    if not (Hashtbl.mem t.lied_ever slave) then
      raise_alert t "false-accusation" ~value:1.0 ~threshold:0.0
        ~detail:(Printf.sprintf "slave %d accused without a recorded lie" slave);
    Hashtbl.remove t.liars slave;
    Hashtbl.remove t.pending_recovery slave
  | Event.Node_recovered { node; version } -> begin
    match slave_of_node node with
    | Some slave when t.committed_max > version ->
      Hashtbl.replace t.pending_recovery slave (t.committed_max, now)
    | _ -> ()
  end
  | Event.Node_crashed { node } | Event.Partition { target = node; up = false } -> begin
    (* The disturbance restarts the convergence clock; the invariant
       excuses these windows too. *)
    match slave_of_node node with
    | Some slave -> Hashtbl.remove t.pending_recovery slave
    | None -> ()
  end
  | Event.Breaker_opened _ -> Rolling.record t.breaker_roll ~time:now 1.0
  | Event.Slave_quarantined { slave; score; until } ->
    raise_alert t "quarantine" ~value:score ~threshold:cfg.quarantine_threshold
      ~detail:
        (Printf.sprintf "slave %d on audit probation until %.3f (suspicion %.2f)" slave
           until score)
  | _ -> ()

(* State_update_applied above only tracks the global max; per-slave
   convergence for the recovery rule is resolved here. *)
let handle_recovery_progress t event =
  match event with
  | Event.State_update_applied { slave; to_version; _ } -> begin
    match Hashtbl.find_opt t.pending_recovery slave with
    | Some (target, _) when to_version >= target -> Hashtbl.remove t.pending_recovery slave
    | _ -> ()
  end
  | _ -> ()

let tick t =
  let cfg = t.cfg in
  let now = t.now in
  Rolling.advance t.latency_roll ~now;
  Rolling.advance t.avail_roll ~now;
  Rolling.advance t.breaker_roll ~now;
  (* read-latency: rolling p99 against the freshness bound *)
  (match Rolling.percentile t.latency_roll 99.0 with
  | Some p99 when Rolling.count t.latency_roll >= cfg.latency_min_samples ->
    if p99 > cfg.latency_threshold then
      raise_alert t "read-latency" ~value:p99 ~threshold:cfg.latency_threshold
        ~detail:(Printf.sprintf "rolling p99 read latency %.3fs" p99)
    else if p99 < 0.8 *. cfg.latency_threshold then clear_alert t "read-latency"
  | _ -> if (rule t "read-latency").active <> None then clear_alert t "read-latency");
  (* availability: burn rate over completions + hung-read deadline *)
  let hung = max_overdue t.outstanding ~now ~deadline_of:(fun _ (t0, _) -> t0 +. cfg.read_deadline) in
  (match hung with
  | Some (request, over) ->
    raise_alert t "availability" ~value:over ~threshold:cfg.read_deadline
      ~detail:(Printf.sprintf "read %d unanswered %.1fs past the retry budget" request over)
  | None -> ());
  let burn =
    if Rolling.count t.avail_roll >= cfg.avail_min_samples then
      match Rolling.mean t.avail_roll with
      | Some rate -> Some (rate /. cfg.unavail_budget)
      | None -> None
    else None
  in
  (match burn with
  | Some b when b >= cfg.burn_raise ->
    raise_alert t "availability" ~value:b ~threshold:cfg.burn_raise
      ~detail:(Printf.sprintf "unavailability burn rate %.2fx the error budget" b)
  | _ -> ());
  (match (rule t "availability").active with
  | Some _
    when hung = None
         && (match burn with Some b -> b < cfg.burn_clear | None -> true) ->
    clear_alert t "availability"
  | _ -> ());
  (* detection: unaccused lies past the audit budget *)
  (match max_overdue t.liars ~now ~deadline_of:(fun _ t0 -> t0 +. cfg.detection_budget) with
  | Some (slave, over) ->
    raise_alert t "detection" ~value:over ~threshold:cfg.detection_budget
      ~detail:(Printf.sprintf "slave %d lied %.1fs past the detection budget, unaccused" slave over)
  | None -> if (rule t "detection").active <> None then clear_alert t "detection");
  (* staleness (replica apply lag) *)
  let apply_overdue =
    max_overdue t.pending_apply ~now ~deadline_of:(fun _ commit -> commit +. cfg.max_latency +. eps)
  in
  (match apply_overdue with
  | Some (version, over) ->
    raise_alert t "staleness" ~value:over ~threshold:cfg.max_latency
      ~detail:(Printf.sprintf "version %d unapplied by every slave %.3fs past the bound" version over)
  | None -> ());
  (match (rule t "staleness").active with
  | Some _ when apply_overdue = None && now -. (rule t "staleness").last_violation > cfg.window ->
    clear_alert t "staleness"
  | _ -> ());
  (* auditor-lag *)
  if cfg.audit_enabled then begin
    let audit_overdue =
      max_overdue t.pending_audit ~now ~deadline_of:(fun _ commit -> commit +. cfg.audit_deadline)
    in
    (match audit_overdue with
    | Some (version, over) ->
      raise_alert t "auditor-lag" ~value:over ~threshold:cfg.audit_deadline
        ~detail:(Printf.sprintf "audit store %.1fs late advancing past version %d" over (version - 1))
    | None -> ());
    match (rule t "auditor-lag").active with
    | Some _
      when audit_overdue = None && now -. (rule t "auditor-lag").last_violation > cfg.window ->
      clear_alert t "auditor-lag"
    | _ -> ()
  end;
  (* recovery convergence *)
  (match
     max_overdue t.pending_recovery ~now
       ~deadline_of:(fun _ (_, t0) -> t0 +. cfg.max_latency +. eps)
   with
  | Some (slave, over) ->
    raise_alert t "recovery" ~value:over ~threshold:cfg.max_latency
      ~detail:(Printf.sprintf "slave %d rejoined but lagging %.3fs past the bound" slave over)
  | None -> if (rule t "recovery").active <> None then clear_alert t "recovery");
  (* breaker-open rate *)
  (let opens = Rolling.count t.breaker_roll in
   if opens >= cfg.breaker_rate then
     raise_alert t "breaker" ~value:(float_of_int opens)
       ~threshold:(float_of_int cfg.breaker_rate)
       ~detail:(Printf.sprintf "%d breaker opens in the last %.0fs" opens cfg.window)
   else if (rule t "breaker").active <> None then clear_alert t "breaker");
  (* pulse-only rules decay once quiet *)
  decay_pulse t "write-spacing";
  decay_pulse t "false-accusation";
  decay_pulse t "quarantine"

let observe t (r : Trace.record) =
  if not t.finalized then begin
    match r.event with
    | Event.Alert_raised _ | Event.Alert_cleared _ -> ()
    | event ->
      if r.time > t.now then t.now <- r.time;
      handle t event;
      handle_recovery_progress t event;
      tick t
  end

let finalize t ~now =
  if not t.finalized then begin
    if now > t.now then t.now <- now;
    tick t;
    (* Any lie still unaccused at end of run is an eventual-detection
       failure regardless of how fresh it is: the auditor will never
       get another chance. *)
    Hashtbl.iter
      (fun slave t0 ->
        raise_alert t "detection" ~value:(t.now -. t0) ~threshold:t.cfg.detection_budget
          ~detail:(Printf.sprintf "slave %d lied at %.3f and was never accused" slave t0))
      t.liars;
    t.finalized <- true
  end

let alerts t =
  Hashtbl.fold (fun _ rs acc -> rs.history @ acc) t.rules []
  |> List.sort (fun a b -> compare (a.raised_at, a.rule) (b.raised_at, b.rule))

let active t =
  Hashtbl.fold (fun _ rs acc -> match rs.active with Some a -> a :: acc | None -> acc) t.rules []
  |> List.sort (fun a b -> compare (a.raised_at, a.rule) (b.raised_at, b.rule))

let raised_rules t =
  List.sort_uniq String.compare (List.map (fun a -> a.rule) (alerts t))

let was_raised t name = List.exists (fun a -> a.rule = name) (alerts t)

let json_of_alert a =
  Json.Obj
    [
      ("rule", Json.Str a.rule);
      ("raised_at", Json.Num a.raised_at);
      ("cleared_at", (match a.cleared_at with Some x -> Json.Num x | None -> Json.Null));
      ("peak", Json.Num a.peak);
      ("threshold", Json.Num a.threshold);
      ("detail", Json.Str a.detail);
    ]

let pp_alert fmt a =
  Format.fprintf fmt "[%10.4f] %-16s peak %.3f (threshold %.3f)%s  %s" a.raised_at a.rule
    a.peak a.threshold
    (match a.cleared_at with
    | Some c -> Printf.sprintf "  cleared %.4f" c
    | None -> "  STILL ACTIVE")
    a.detail
