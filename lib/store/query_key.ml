(* Single definition of the canonical read key.  Both memoization
   layers — the auditor's result cache and the audit dedup index — key
   their tables through here, so a change to query canonicalization
   cannot silently diverge the two. *)

let of_query = Canonical.of_query
let digest q = Secrep_crypto.Sha1.digest (of_query q)
let versioned ~version q = (version, of_query q)
