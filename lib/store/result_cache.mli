(** Query-result cache keyed by (content version, query).

    The paper notes the auditor can "employ query optimization
    mechanisms (cache results in the simplest case)" because it knows
    all the reads it must re-execute in advance (§3.4).  Within one
    content version results are immutable, so caching is sound; the
    cache is LRU-bounded. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 entries. *)

val find : t -> version:int -> Query.t -> string option
(** Cached canonical result digest, if present. *)

val store : t -> version:int -> Query.t -> digest:string -> unit
(** Insert, or — if the key is already present — update the digest and
    refresh the entry's recency for eviction purposes. *)

val hits : t -> int
val misses : t -> int
val hit_rate : t -> float
(** 0 when never queried. *)

val size : t -> int
