(** Canonical read keys shared by every query-memoization layer.

    [Result_cache] and [Audit_index] both key entries by
    (content version, canonical query encoding).  They must agree
    byte-for-byte — if canonicalization ever changed under only one of
    them, the dedup index would settle pledges against digests the
    result cache never produced.  Routing both through this module makes
    the agreement structural. *)

val of_query : Query.t -> string
(** Canonical query encoding — identical to [Canonical.of_query]. *)

val digest : Query.t -> string
(** SHA-1 of the canonical encoding — identical to
    [Canonical.query_digest]. *)

val versioned : version:int -> Query.t -> int * string
(** The (version, canonical encoding) pair used as a hash-table key. *)
