(* Dedup index for audit re-execution (after Tan et al., "The Efficient
   Server Audit Problem, Deduplicated Re-execution, and the Web").

   Within one content version a query is a pure function of the store,
   so the auditor only ever needs to re-execute each distinct read once
   per version and can settle every later pledge for the same
   (version, query) against the memoized digest.  Unlike Result_cache
   this is not an LRU: entries are dropped explicitly when the audit
   cursor advances past their version, which bounds the table by the
   working set of in-flight versions. *)

type t = {
  table : (int * string, string) Hashtbl.t;
  mutable hits : int;
  mutable distinct : int;
}

let create () = { table = Hashtbl.create 256; hits = 0; distinct = 0 }

let find t ~version q =
  match Hashtbl.find_opt t.table (Query_key.versioned ~version q) with
  | Some digest ->
    t.hits <- t.hits + 1;
    Some digest
  | None -> None

let store t ~version q ~digest =
  let k = Query_key.versioned ~version q in
  if not (Hashtbl.mem t.table k) then begin
    t.distinct <- t.distinct + 1;
    Hashtbl.add t.table k digest
  end

let drop_version t ~version =
  Hashtbl.iter
    (fun ((v, _) as k) _ -> if v = version then Hashtbl.remove t.table k)
    (Hashtbl.copy t.table)

let hits t = t.hits
let distinct t = t.distinct

let hit_rate t =
  let total = t.hits + t.distinct in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let size t = Hashtbl.length t.table
