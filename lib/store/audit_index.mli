(** Deduplication index for audit re-execution.

    Keyed by (content version, canonical query) through [Query_key], the
    same key the auditor's [Result_cache] uses.  The auditor re-executes
    each distinct read once per version ([store]), settles every later
    matching pledge against the memoized digest ([find], counted as a
    hit), and drops a version's entries when the audit cursor moves past
    it ([drop_version]) so the table tracks only in-flight versions. *)

type t

val create : unit -> t

val find : t -> version:int -> Query.t -> string option
(** Memoized canonical result digest; counts a dedup hit when present. *)

val store : t -> version:int -> Query.t -> digest:string -> unit
(** Record the digest of a fresh re-execution.  First store per key
    counts as a distinct re-execution; re-stores are ignored (within a
    version the digest cannot change). *)

val drop_version : t -> version:int -> unit
(** Forget every entry for [version] — called when the audit cursor
    advances past it. *)

val hits : t -> int
(** Pledges settled from the index without re-execution. *)

val distinct : t -> int
(** Distinct (version, query) re-executions recorded. *)

val hit_rate : t -> float
(** hits / (hits + distinct); 0 when empty. *)

val size : t -> int
