(* LRU over (version, canonical query) keys.  Recency is tracked with a
   generation counter per entry; eviction removes the oldest.  Capacity
   is small enough that the O(n) eviction scan is irrelevant next to
   query re-execution. *)

type entry = { mutable digest : string; mutable last_used : int }

type t = {
  capacity : int;
  table : (int * string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Result_cache.create: capacity must be positive";
  { capacity; table = Hashtbl.create 256; tick = 0; hits = 0; misses = 0 }

let key ~version q = Query_key.versioned ~version q

let find t ~version q =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.table (key ~version q) with
  | Some entry ->
    entry.last_used <- t.tick;
    t.hits <- t.hits + 1;
    Some entry.digest
  | None ->
    t.misses <- t.misses + 1;
    None

let evict_oldest t =
  let oldest = ref None in
  Hashtbl.iter
    (fun k entry ->
      match !oldest with
      | Some (_, e) when e.last_used <= entry.last_used -> ()
      | _ -> oldest := Some (k, entry))
    t.table;
  match !oldest with Some (k, _) -> Hashtbl.remove t.table k | None -> ()

let store t ~version q ~digest =
  t.tick <- t.tick + 1;
  let k = key ~version q in
  match Hashtbl.find_opt t.table k with
  | Some entry ->
    (* Re-storing must refresh both the digest and the recency, or a
       stale digest survives and the entry evicts as if never touched. *)
    entry.digest <- digest;
    entry.last_used <- t.tick
  | None ->
    if Hashtbl.length t.table >= t.capacity then evict_oldest t;
    Hashtbl.add t.table k { digest; last_used = t.tick }

let hits t = t.hits
let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let size t = Hashtbl.length t.table
