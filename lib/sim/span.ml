type record = { name : string; source : string; start : float; duration : float; depth : int }

type active = {
  a_id : int;
  a_name : string;
  a_source : string;
  a_start : float;
  a_depth : int;
  mutable a_finished : bool;
}

type t = {
  capacity : int;
  ring : record option array;
  mutable next : int;
  mutable total : int;
  stats : Stats.t option;
  open_by_source : (string, int) Hashtbl.t;
  mutable open_count : int;
  mutable next_id : int;
  live : (int, active) Hashtbl.t;
}

let create ?(capacity = 4096) ?stats () =
  if capacity <= 0 then invalid_arg "Span.create: capacity must be positive";
  {
    capacity;
    ring = Array.make capacity None;
    next = 0;
    total = 0;
    stats;
    open_by_source = Hashtbl.create 16;
    open_count = 0;
    next_id = 0;
    live = Hashtbl.create 16;
  }

let histogram_name name = "span." ^ name

let push t r =
  t.ring.(t.next) <- Some r;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1;
  match t.stats with
  | Some stats -> Histogram.add (Stats.histogram stats (histogram_name r.name)) r.duration
  | None -> ()

let record t ~source ~start ~duration name =
  if duration < 0.0 || Float.is_nan duration then invalid_arg "Span.record: bad duration";
  push t { name; source; start; duration; depth = 0 }

let depth_of t source =
  match Hashtbl.find_opt t.open_by_source source with Some d -> d | None -> 0

let start t ~now ~source name =
  let depth = depth_of t source in
  Hashtbl.replace t.open_by_source source (depth + 1);
  t.open_count <- t.open_count + 1;
  let a =
    {
      a_id = t.next_id;
      a_name = name;
      a_source = source;
      a_start = now;
      a_depth = depth;
      a_finished = false;
    }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.live a.a_id a;
  a

let finish t a ~now =
  if a.a_finished then invalid_arg "Span.finish: span already finished";
  if now < a.a_start then invalid_arg "Span.finish: clock went backwards";
  a.a_finished <- true;
  t.open_count <- t.open_count - 1;
  Hashtbl.remove t.live a.a_id;
  (match Hashtbl.find_opt t.open_by_source a.a_source with
  | Some d when d > 1 -> Hashtbl.replace t.open_by_source a.a_source (d - 1)
  | Some _ -> Hashtbl.remove t.open_by_source a.a_source
  | None -> ());
  push t
    {
      name = a.a_name;
      source = a.a_source;
      start = a.a_start;
      duration = now -. a.a_start;
      depth = a.a_depth;
    }

let size t = min t.total t.capacity
let total_finished t = t.total
let active_count t = t.open_count
let capacity t = t.capacity

let leaked t =
  Hashtbl.fold (fun _ a acc -> (a.a_start, a.a_name, a.a_source) :: acc) t.live []
  |> List.sort compare
  |> List.map (fun (start, name, source) -> (name, source, start))

let finished t =
  let n = size t in
  let start = if t.total <= t.capacity then 0 else t.next in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match t.ring.((start + i) mod t.capacity) with
    | Some r -> out := r :: !out
    | None -> assert false
  done;
  !out

let pp_record fmt r =
  Format.fprintf fmt "[%10.6f] %-16s %s%s dur=%.6f" r.start r.source
    (String.make (2 * r.depth) ' ')
    r.name r.duration
