(** Network latency models for simulated links. *)

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float; floor : float }
      (** [floor + Exp(mean)]: a propagation floor plus queueing tail,
          the standard WAN shape. *)
  | Pareto of { scale : float; shape : float; cap : float }
      (** Heavy-tailed; capped so a single sample cannot stall a run. *)
  | Empirical of float array  (** Uniform draw from measured samples. *)

val sample : t -> Secrep_crypto.Prng.t -> float
(** A non-negative delay in seconds. *)

val mean : t -> float
(** Analytic (or sample) mean, used by experiment reports. *)

val scale : t -> float -> t
(** Multiply every delay by [factor] (chaos latency spikes).  Raises
    [Invalid_argument] on a non-positive factor. *)

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical parameters (negative
    bounds, [lo > hi], empty empirical set, ...). *)
