(** Bounded in-memory event trace.

    Protocol components append {!Event.t} records; tests assert on
    them, exporters ({!Export}) turn them into JSONL / Chrome traces,
    and failed experiment runs dump the tail.  The buffer is a ring so
    long simulations cannot exhaust memory.

    [log] is the compatibility shim for the old string API: it wraps
    the message in {!Event.Log}. *)

type t

type record = { time : float; source : string; event : Event.t }

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 records. *)

val emit : t -> time:float -> source:string -> Event.t -> unit

val on_emit : t -> (record -> unit) -> unit
(** Subscribe to the live event stream: [f] runs synchronously on
    every subsequent {!emit}, before the record can be overwritten by
    the ring.  This is how the fuzz harness captures complete event
    streams regardless of the ring capacity, and how the SLO monitor
    evaluates rules online.  Subscribers fire in registration order.
    A subscriber may itself emit into the same trace (the SLO engine
    emits [Alert_raised] this way) — the nested record is delivered to
    every subscriber too, so a subscriber must not emit in response to
    its own emissions or delivery will never terminate. *)

val log : t -> time:float -> source:string -> string -> unit
(** [log t ~time ~source msg] = [emit t ~time ~source (Event.Log msg)]. *)

val size : t -> int
(** Records still retained (at most the capacity). *)

val total_logged : t -> int
(** Records ever emitted, including those the ring has overwritten. *)

val capacity : t -> int

val wrapped : t -> bool
(** [total_logged t > capacity t]: the ring has overwritten records,
    so {!to_list} is a truncated view of the run. *)

val to_list : t -> record list
(** Oldest first (of what is still retained). *)

val message : record -> string
(** Rendered event text (compat helper for string assertions). *)

val find : t -> f:(record -> bool) -> record option
val count_matching : t -> f:(record -> bool) -> int

val count_kind : t -> kind:string -> int
(** Retained records whose {!Event.kind} equals [kind]. *)

val kinds : t -> string list
(** Distinct event kinds retained, sorted. *)

val pp_tail : ?n:int -> Format.formatter -> t -> unit
