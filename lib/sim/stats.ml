type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32; gauges = Hashtbl.create 8; histograms = Hashtbl.create 8 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let incr t name = Stdlib.incr (counter t name)
let add t name v = counter t name := !(counter t name) + v
let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v = Hashtbl.replace t.gauges name v
let gauge t name = Hashtbl.find_opt t.gauges name

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h = Histogram.create ~name () in
    Hashtbl.add t.histograms name h;
    h

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges t =
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histograms t =
  Hashtbl.fold (fun _ h acc -> h :: acc) t.histograms []
  |> List.sort (fun a b -> String.compare (Histogram.name a) (Histogram.name b))

(* Fixed precision (%d / %.6f) rather than %g: the rendering is meant
   to be diffed in tests and archived next to exports, so two runs of
   the same simulation must produce byte-identical text. *)
let pp fmt t =
  List.iter (fun (name, v) -> Format.fprintf fmt "%s = %d@." name v) (counters t);
  List.iter (fun (name, v) -> Format.fprintf fmt "%s = %.6f@." name v) (gauges t);
  List.iter (fun h -> Format.fprintf fmt "%a@." Histogram.pp_summary h) (histograms t)
