(** Rolling-window aggregation over timestamped samples.

    The online SLO engine evaluates rules such as "p99 read latency
    over the last [window] seconds" incrementally from the live event
    stream.  Unlike {!Timeseries} (append-only, full history) a
    rolling window retains only the samples newer than
    [now - window]: {!record} appends and evicts in amortised O(1),
    while {!percentile} sorts the retained samples on demand.

    Time must be monotone, matching the simulator clock: feeding a
    sample (or {!advance}-ing) earlier than the latest time seen
    raises [Invalid_argument]. *)

type t

val create : window:float -> unit -> t
(** [window] is the retention horizon in seconds; must be positive. *)

val window : t -> float

val record : t -> time:float -> float -> unit
(** Append a sample and evict everything older than [time - window]. *)

val advance : t -> now:float -> unit
(** Evict without appending: age the window to [now].  Used by purely
    time-driven rule checks between samples. *)

val count : t -> int
(** Samples currently retained. *)

val sum : t -> float

val mean : t -> float option
(** [None] on an empty window. *)

val percentile : t -> float -> float option
(** Nearest-rank percentile of the retained samples, e.g.
    [percentile t 99.0].  [None] on an empty window; raises
    [Invalid_argument] outside [0,100]. *)

val values : t -> float array
(** Retained sample values, oldest first (unsorted). *)
