(** Virtual-clock spans: per-phase duration probes.

    A span measures how long a request phase (sign, verify,
    query-eval, network hop, audit re-execution) took in simulated
    time.  Finishing a span appends a bounded-ring record for the
    Chrome-trace exporter and feeds the ["span.<name>"] histogram of
    the attached {!Stats.t}, so p50/p95/p99 per phase come for free.

    Two usage styles:
    - {!start} / {!finish} around an asynchronous phase (the common
      case; nesting per source is tracked as [depth]);
    - {!record} when the duration is already known from the cost
      model (e.g. a work-queue submission's [cost]), which cannot leak
      an unfinished span when the completion callback is dropped. *)

type t

type record = {
  name : string;
  source : string;
  start : float;
  duration : float;
  depth : int;  (** spans of the same source already open at [start] *)
}

type active

val create : ?capacity:int -> ?stats:Stats.t -> unit -> t
(** Default ring capacity: 4096 finished spans. *)

val start : t -> now:float -> source:string -> string -> active

val finish : t -> active -> now:float -> unit
(** Raises [Invalid_argument] on double-finish or a backwards clock. *)

val record : t -> source:string -> start:float -> duration:float -> string -> unit
(** Record a span whose duration is already known (depth 0). *)

val size : t -> int
(** Finished spans still retained. *)

val total_finished : t -> int
val active_count : t -> int

val capacity : t -> int
(** Ring capacity for finished spans. *)

val leaked : t -> (string * string * float) list
(** Started-but-never-finished spans as [(name, source, start)],
    ordered by start time.  A non-empty list at end of run means a
    completion callback was dropped (e.g. a reply lost to a crash) —
    the end-of-run health report prints these instead of silently
    discarding them. *)

val finished : t -> record list
(** Oldest first (of what is still retained). *)

val histogram_name : string -> string
(** ["span." ^ name]: the {!Stats} histogram a span feeds. *)

val pp_record : Format.formatter -> record -> unit
