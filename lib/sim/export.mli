(** Machine-readable exports: JSONL event logs, Chrome
    [trace_event]-format JSON (loadable in Perfetto / chrome://tracing)
    and Prometheus text exposition of {!Stats}.

    Everything is dependency-free: a built-in minimal JSON emitter and
    parser cover the subset these formats need. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val parse : string -> (t, string) result
  val member : string -> t -> t option
end

val event_line :
  ?extra:(string * Json.t) list -> time:float -> source:string -> Event.t -> string
(** One JSONL line (no trailing newline):
    [{"ts":…,"source":…,"kind":…,<fields>}].  [extra] pairs are
    appended after the event fields (stream metadata such as a
    ["shard"] tag); {!record_of_line} ignores keys no event declares,
    so tagged lines round-trip to the same record. *)

val jsonl_of_trace : Trace.t -> string
(** Every retained record, oldest first, one line each. *)

val jsonl_of_records : Trace.record list -> string
(** Same rendering over an explicit record list — used for complete
    streams captured via {!Trace.on_emit} (alerts, lineage) that may
    exceed the ring capacity. *)

val record_of_line : string -> (Trace.record, string) result
(** Inverse of {!event_line}; used by the [trace] replay subcommand
    and the round-trip tests. *)

val chrome_of : ?spans:Span.t -> trace:Trace.t -> unit -> string
(** Chrome [trace_event] JSON: spans become complete ("X") events,
    trace records become instants ("i"), and each source gets a named
    thread via metadata events. *)

val prometheus_of_stats : Stats.t -> string
(** Counters, gauges, and histogram summaries (p50/p95/p99 quantiles,
    sum, count) in Prometheus text format; names are prefixed with
    [secrep_] and sanitized. *)
