type t = {
  name : string;
  mutable samples : float array;
  mutable count : int;
  mutable sorted : bool;
  mutable sum : float;
  mutable sum_sq : float;
}

let create ?(name = "histogram") () =
  { name; samples = [||]; count = 0; sorted = true; sum = 0.0; sum_sq = 0.0 }

let add t v =
  if Float.is_nan v then invalid_arg "Histogram.add: NaN";
  let cap = Array.length t.samples in
  if t.count = cap then begin
    let fresh = Array.make (max 64 (2 * cap)) 0.0 in
    Array.blit t.samples 0 fresh 0 t.count;
    t.samples <- fresh
  end;
  t.samples.(t.count) <- v;
  t.count <- t.count + 1;
  t.sorted <- false;
  t.sum <- t.sum +. v;
  t.sum_sq <- t.sum_sq +. (v *. v)

let count t = t.count
let is_empty t = t.count = 0

let require_nonempty t fn =
  if t.count = 0 then invalid_arg (Printf.sprintf "Histogram.%s: empty (%s)" fn t.name)

let ensure_sorted t =
  if not t.sorted then begin
    let view = Array.sub t.samples 0 t.count in
    Array.sort Float.compare view;
    Array.blit view 0 t.samples 0 t.count;
    t.sorted <- true
  end

let mean t =
  require_nonempty t "mean";
  t.sum /. float_of_int t.count

let min_value t =
  require_nonempty t "min_value";
  ensure_sorted t;
  t.samples.(0)

let max_value t =
  require_nonempty t "max_value";
  ensure_sorted t;
  t.samples.(t.count - 1)

let stddev t =
  require_nonempty t "stddev";
  let n = float_of_int t.count in
  let m = t.sum /. n in
  let var = Float.max 0.0 ((t.sum_sq /. n) -. (m *. m)) in
  sqrt var

let percentile t p =
  require_nonempty t "percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of range";
  ensure_sorted t;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
  let idx = if rank <= 0 then 0 else min (t.count - 1) (rank - 1) in
  t.samples.(idx)

let merge a b =
  let t = create ~name:(a.name ^ "+" ^ b.name) () in
  for i = 0 to a.count - 1 do add t a.samples.(i) done;
  for i = 0 to b.count - 1 do add t b.samples.(i) done;
  t

let name t = t.name
let sum t = t.sum

(* %.6f, not %.6g: fixed-precision output is locale-independent and
   column-stable, so metrics renderings can be diffed in tests. *)
let pp_summary fmt t =
  if t.count = 0 then Format.fprintf fmt "%s: empty" t.name
  else
    Format.fprintf fmt "%s: n=%d mean=%.6f p50=%.6f p95=%.6f p99=%.6f max=%.6f" t.name
      t.count (mean t) (percentile t 50.0) (percentile t 95.0) (percentile t 99.0)
      (max_value t)
