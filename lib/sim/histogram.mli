(** Sample reservoirs with exact quantiles.

    Experiments report p50/p95/p99 latencies; samples are kept in full
    (runs are bounded) and sorted lazily on first query. *)

type t

val create : ?name:string -> unit -> t
val add : t -> float -> unit
val count : t -> int
val is_empty : t -> bool

val mean : t -> float
(** Raises [Invalid_argument] when empty. *)

val min_value : t -> float
val max_value : t -> float
val stddev : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 100]; nearest-rank on the sorted
    samples.  Raises [Invalid_argument] when empty or [p] out of
    range. *)

val merge : t -> t -> t
(** New histogram holding both sample sets. *)

val name : t -> string

val sum : t -> float
(** Sum of all samples (0 when empty). *)

val pp_summary : Format.formatter -> t -> unit
(** "n=… mean=… p50=… p95=… p99=… max=…", fixed precision ([%.6f]) so
    the rendering is diffable. *)
