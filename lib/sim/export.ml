(* Machine-readable renderings of traces, spans and stats.

   No external JSON dependency: the emitter writes into a Buffer and
   the importer is a small recursive-descent parser covering the JSON
   subset the emitter produces (which is all the `trace` replay
   subcommand and the round-trip tests need). *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* %.9f is fixed-precision (diffable, locale-independent) and keeps
     nanosecond resolution on simulated-seconds timestamps. *)
  let float_repr x =
    if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
    else Printf.sprintf "%.9f" x

  let rec to_buf buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Num x -> Buffer.add_string buf (float_repr x)
    | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buf buf item)
        items;
      Buffer.add_char buf ']'
    | Obj pairs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          to_buf buf v)
        pairs;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    to_buf buf t;
    Buffer.contents buf

  exception Parse_error of string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
            in
            (* ASCII decodes exactly; anything higher degrades to '?'
               (the emitter never produces it). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?'
          | _ -> fail "bad escape");
          loop ()
        end
        else begin
          Buffer.add_char buf c;
          loop ()
        end
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      let rec loop () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          loop ()
        | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          loop ()
        | _ -> ()
      in
      loop ();
      if !pos = start then fail "expected number";
      let tok = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt tok with
        | Some x -> Num x
        | None -> fail "bad number"
      else begin
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt tok with Some x -> Num x | None -> fail "bad number")
      end
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec pairs acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              pairs ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (pairs [])
        end
      | Some _ -> parse_number ()
    in
    try
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
    with Parse_error msg -> Error msg

  let member name = function Obj pairs -> List.assoc_opt name pairs | _ -> None
end

let json_of_field = function
  | Event.I n -> Json.Int n
  | Event.F x -> Json.Num x
  | Event.S s -> Json.Str s
  | Event.B b -> Json.Bool b

let field_of_json = function
  | Json.Int n -> Some (Event.I n)
  | Json.Num x -> Some (Event.F x)
  | Json.Str s -> Some (Event.S s)
  | Json.Bool b -> Some (Event.B b)
  | Json.Null | Json.Arr _ | Json.Obj _ -> None

(* -- JSONL ------------------------------------------------------------- *)

(* [extra] pairs are appended after the event's own fields (a tag like
   "shard" that is metadata about the stream, not part of the event);
   the importer drops unknown keys, so tagged lines stay replayable. *)
let event_line ?(extra = []) ~time ~source event =
  Json.to_string
    (Json.Obj
       (("ts", Json.Num time)
        :: ("source", Json.Str source)
        :: ("kind", Json.Str (Event.kind event))
        :: (List.map (fun (k, v) -> (k, json_of_field v)) (Event.fields event) @ extra)))

let jsonl_of_records records =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (r : Trace.record) ->
      Buffer.add_string buf (event_line ~time:r.time ~source:r.source r.event);
      Buffer.add_char buf '\n')
    records;
  Buffer.contents buf

let jsonl_of_trace trace = jsonl_of_records (Trace.to_list trace)

let ( let* ) = Result.bind

let record_of_line line : (Trace.record, string) result =
  let* json = Json.parse line in
  match json with
  | Json.Obj pairs ->
    let* time =
      match List.assoc_opt "ts" pairs with
      | Some (Json.Num x) -> Ok x
      | Some (Json.Int n) -> Ok (float_of_int n)
      | Some _ -> Error "ts is not a number"
      | None -> Error "missing ts"
    in
    let* source =
      match List.assoc_opt "source" pairs with
      | Some (Json.Str s) -> Ok s
      | Some _ -> Error "source is not a string"
      | None -> Error "missing source"
    in
    let* kind =
      match List.assoc_opt "kind" pairs with
      | Some (Json.Str s) -> Ok s
      | Some _ -> Error "kind is not a string"
      | None -> Error "missing kind"
    in
    let fields =
      List.filter_map
        (fun (k, v) ->
          match k with
          | "ts" | "source" | "kind" -> None
          | _ -> Option.map (fun f -> (k, f)) (field_of_json v))
        pairs
    in
    let* event = Event.of_fields ~kind fields in
    Ok { Trace.time; source; event }
  | _ -> Error "expected a JSON object"

(* -- Chrome trace_event format ----------------------------------------- *)

(* trace_event wants integer thread ids; sources ("client-3",
   "master-0", …) map to dense tids with a thread_name metadata event
   each, which is what Perfetto renders as named tracks. *)
let chrome_of ?spans ~trace () =
  let tids = Hashtbl.create 16 in
  let names = ref [] in
  let tid_of source =
    match Hashtbl.find_opt tids source with
    | Some tid -> tid
    | None ->
      let tid = Hashtbl.length tids + 1 in
      Hashtbl.add tids source tid;
      names := (source, tid) :: !names;
      tid
  in
  let us t = Json.Num (1e6 *. t) in
  let span_events =
    match spans with
    | None -> []
    | Some spans ->
      List.map
        (fun (r : Span.record) ->
          Json.Obj
            [
              ("name", Json.Str r.name);
              ("cat", Json.Str "span");
              ("ph", Json.Str "X");
              ("ts", us r.start);
              ("dur", us r.duration);
              ("pid", Json.Int 1);
              ("tid", Json.Int (tid_of r.source));
            ])
        (Span.finished spans)
  in
  let instant_events =
    List.map
      (fun (r : Trace.record) ->
        Json.Obj
          [
            ("name", Json.Str (Event.kind r.event));
            ("cat", Json.Str "event");
            ("ph", Json.Str "i");
            ("ts", us r.time);
            ("pid", Json.Int 1);
            ("tid", Json.Int (tid_of r.source));
            ("s", Json.Str "t");
            ( "args",
              Json.Obj (List.map (fun (k, v) -> (k, json_of_field v)) (Event.fields r.event))
            );
          ])
      (Trace.to_list trace)
  in
  let metadata =
    List.rev_map
      (fun (source, tid) ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.Str source) ]);
          ])
      !names
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.Arr (metadata @ span_events @ instant_events));
         ("displayTimeUnit", Json.Str "ms");
       ])
  ^ "\n"

(* -- Prometheus text exposition ----------------------------------------- *)

let metric_name name =
  let buf = Buffer.create (String.length name + 7) in
  Buffer.add_string buf "secrep_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let prometheus_of_stats stats =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let m = metric_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" m m v))
    (Stats.counters stats);
  List.iter
    (fun (name, v) ->
      let m = metric_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %.6f\n" m m v))
    (Stats.gauges stats);
  List.iter
    (fun h ->
      let m = metric_name (Histogram.name h) in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" m);
      if not (Histogram.is_empty h) then
        List.iter
          (fun q ->
            Buffer.add_string buf
              (Printf.sprintf "%s{quantile=\"%.2f\"} %.6f\n" m (q /. 100.0)
                 (Histogram.percentile h q)))
          [ 50.0; 95.0; 99.0 ];
      Buffer.add_string buf (Printf.sprintf "%s_sum %.6f\n" m (Histogram.sum h));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" m (Histogram.count h)))
    (Stats.histograms stats);
  Buffer.contents buf
