(** Point-to-point simulated network links.

    A link carries opaque deliveries (thunks) from one node to another
    with sampled latency, optional loss, and an up/down switch used to
    model crashes and partitions.  Deliveries in flight when a link
    goes down are dropped, matching a fail-stop network model. *)

type t

val create :
  Sim.t ->
  rng:Secrep_crypto.Prng.t ->
  latency:Latency.t ->
  ?loss:float ->
  ?name:string ->
  unit ->
  t

val send : t -> (unit -> unit) -> unit
(** Schedule the delivery thunk after a sampled delay, unless the link
    is down or the message is (probabilistically) lost. *)

val send_sized : t -> bytes_len:int -> (unit -> unit) -> unit
(** Like {!send} but additionally charges serialisation time
    proportional to the payload size (see {!set_bandwidth}). *)

val set_up : t -> bool -> unit
val is_up : t -> bool

val set_loss : t -> float -> unit
(** Replace the per-message loss probability (chaos loss bursts).
    Raises [Invalid_argument] outside [0, 1). *)

val loss : t -> float

val set_latency : t -> Latency.t -> unit
(** Replace the latency model (chaos latency spikes); messages already
    in flight keep their sampled delay. *)

val latency : t -> Latency.t

val set_bandwidth : t -> bytes_per_sec:float -> unit
(** Default: infinite (size charges nothing). *)

val delivered : t -> int
val dropped : t -> int
val name : t -> string
