(** Point-to-point simulated network links.

    A link carries opaque deliveries (thunks) from one node to another
    with sampled latency, optional loss, and an up/down switch used to
    model crashes and partitions.  Deliveries in flight when a link
    goes down are dropped, matching a fail-stop network model. *)

type t

val create :
  Sim.t ->
  rng:Secrep_crypto.Prng.t ->
  latency:Latency.t ->
  ?loss:float ->
  ?name:string ->
  unit ->
  t

val send : t -> (unit -> unit) -> unit
(** Schedule the delivery thunk after a sampled delay, unless the link
    is down or the message is (probabilistically) lost. *)

val send_sized : t -> bytes_len:int -> (unit -> unit) -> unit
(** Like {!send} but additionally charges serialisation time
    proportional to the payload size (see {!set_bandwidth}). *)

val set_up : t -> bool -> unit
val is_up : t -> bool

val set_loss : t -> float -> unit
(** Replace the per-message loss probability (chaos loss bursts).
    Raises [Invalid_argument] outside [0, 1). *)

val loss : t -> float

val set_latency : t -> Latency.t -> unit
(** Replace the latency model (chaos latency spikes); messages already
    in flight keep their sampled delay. *)

val latency : t -> Latency.t

val set_bandwidth : t -> bytes_per_sec:float -> unit
(** Default: infinite (size charges nothing). *)

val set_duplicate : t -> float -> unit
(** Byzantine fault: probability that a delivery arrives twice (the
    copy gets an independently sampled delay).  Default 0; when 0 the
    link draws no extra randomness, so fault-free runs are bit-stable.
    Raises [Invalid_argument] outside [0, 1). *)

val duplicate : t -> float

val set_reorder : t -> burst:int -> window:float -> unit
(** Byzantine fault: hold up to [burst] (>= 2) arrived messages and
    release them in reversed arrival order; a held message waits at
    most [window] extra seconds before the buffer is force-flushed.
    [burst = 0] disables (and flushes anything held).  Raises
    [Invalid_argument] on [burst = 1] or a non-positive window while
    enabled. *)

val reorder_burst : t -> int

val duplicated : t -> int
(** Deliveries that were duplicated by the fault injector. *)

val reordered : t -> int
(** Messages released out of arrival order by reorder bursts. *)

val delivered : t -> int
val dropped : t -> int
val name : t -> string
