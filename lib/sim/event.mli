(** Typed trace events: the protocol's load-bearing moments.

    Components used to log pre-rendered strings; these variants carry
    the structured fields instead so exporters ({!Export}) can emit
    machine-readable JSONL / Chrome traces and tests can assert on the
    event taxonomy rather than on string formatting.  [Log] is the
    compatibility constructor for free-form messages. *)

type dc_outcome =
  | Passed  (** master's digest matched the slave's pledge *)
  | Mismatch  (** immediate discovery (§3.5) *)
  | Throttled  (** greedy-client quota (§3.3) *)

type t =
  | Log of string  (** free-form message (compat shim for string logs) *)
  | Read_issued of { client : int; request : int; mode : string }
      (** [request] is the causal lineage id carried through every event
          this read generates ([-1] on traces predating lineage). *)
  | Read_answered of {
      client : int;
      request : int;
      slave : int;  (** -1 when no slave served it (gave up / by-master) *)
      outcome : string;  (** "accepted" | "by-master" | "gave-up" *)
      version : int;
      latency : float;
    }
  | Pledge_signed of { slave : int; request : int; version : int; lied : bool }
  | Pledge_batch_signed of { slave : int; version : int; batch : int }
      (** Slave flushed a Merkle batch of [batch] pledges under one
          signature; [version] is the keep-alive version at flush. *)
  | Audit_dedup_hit of { slave : int; version : int }
      (** Auditor settled a pledge from the dedup index instead of
          re-executing its query. *)
  | Pledge_verified of {
      client : int;
      request : int;
      slave : int;
      version : int;  (** content version the pledge claims (-1 if unparsable) *)
      ok : bool;
      reason : string;
    }
  | Double_check of { client : int; request : int; slave : int; outcome : dc_outcome }
  | Write_committed of { master : int; version : int }
  | Keepalive_sent of { master : int; version : int }
  | State_update_applied of { slave : int; from_version : int; to_version : int }
  | Audit_advance of { version : int }
  | Audit_conviction of { slave : int; version : int }
  | Slave_excluded of { slave : int; immediate : bool }
  | Order_delivered of { member : int; seq : int }
  | View_installed of { member : int; view : int; sequencer : int }
  | Partition of { target : string; up : bool }
      (** Chaos connectivity change for a node, e.g. ["slave-2"]. *)
  | Node_crashed of { node : string }
      (** Benign crash (fail-stop, state wiped) injected by chaos. *)
  | Node_recovered of { node : string; version : int }
      (** Node rejoined; [version] is its store version at rejoin. *)
  | Net_degraded of { loss : float; latency_factor : float }
      (** Chaos loss/latency override changed; [loss = 0.0] and
          [latency_factor = 1.0] mean the network is back to normal. *)
  | Breaker_opened of { client : int; slave : int }
      (** Client circuit breaker tripped after consecutive timeouts. *)
  | Breaker_closed of { client : int; slave : int }
      (** Breaker reset by a successful read after cooldown. *)
  | Audit_overload of { backlog : int }
      (** Auditor dropped a pledge: queue at capacity [backlog]. *)
  | Alert_raised of { rule : string; value : float; threshold : float }
      (** Online SLO rule [rule] breached: observed [value] crossed
          [threshold] (emitted by {e Slo}, source ["slo"]). *)
  | Alert_cleared of { rule : string; duration : float }
      (** The alert for [rule] recovered after [duration] seconds. *)
  | Shard_assigned of { shard : int; host : int; slot : int }
      (** Deployment placement: content [shard]'s replica [slot] was
          placed on pool host [host] (rendezvous hashing). *)
  | Shard_rebalanced of {
      shard : int;
      slot : int;
      from_host : int;
      to_host : int;
      reason : string;  (** "crash" | "exclusion" *)
    }
      (** Re-homing (§3.5): the replica moved to a fresh host after its
          old host died or the slave process was excluded. *)
  | Attack_launched of { slave : int; mode : string; client : int; request : int }
      (** A strategic attacker ({e Fault} modes) acted on this read:
          [mode] is {e Fault.mode_name}, [request] the victim read's
          lineage id (-1 when the attack is not tied to one read). *)
  | Attack_suppressed of { slave : int; mode : string; reason : string }
      (** A strategic attacker chose {e not} to act — e.g. an
          [Adaptive] liar under audit pressure or an [Equivocate]
          attacker serving its clique honestly. *)
  | Slave_quarantined of { slave : int; score : float; until : float }
      (** The adaptive auditor put [slave] on probation (100% audit)
          until simulated time [until]; [score] is the suspicion EWMA
          that crossed the threshold. *)
  | Domain_started of { domain : int; shards : int }
      (** A sharded deployment's parallel scheduler started worker
          domain [domain] carrying [shards] shard(s) (source
          ["deployment"], emitted at the simulated time the parallel
          window opens).  Only parallel runs emit it, so the
          determinism digest over shard streams never sees one. *)
  | Shard_merged of { shard : int; events : int }
      (** The coordinator merged [events] buffered records of [shard]
          back into the deployment stream, in [(time, shard, seq)]
          order, over the parallel window that just closed. *)

type field = I of int | F of float | S of string | B of bool

val kind : t -> string
(** Stable snake_case tag, e.g. ["read_issued"]. *)

val all_kinds : string list

val fields : t -> (string * field) list
(** Structured payload, in declaration order. *)

val of_fields : kind:string -> (string * field) list -> (t, string) result
(** Inverse of {!kind} + {!fields}; used by the JSONL importer. *)

val dc_outcome_to_string : dc_outcome -> string
val dc_outcome_of_string : string -> (dc_outcome, string) result

val pp : Format.formatter -> t -> unit
(** ["kind k=v k=v …"]; [Log] renders as its bare message. *)

val to_string : t -> string
