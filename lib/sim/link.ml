module Prng = Secrep_crypto.Prng

type t = {
  sim : Sim.t;
  rng : Prng.t;
  mutable latency : Latency.t;
  mutable loss : float;
  name : string;
  mutable up : bool;
  mutable epoch : int; (* bumped on every down transition: in-flight messages from an older epoch are dropped on arrival *)
  mutable bandwidth : float; (* bytes/sec; infinity = unmetered *)
  mutable delivered : int;
  mutable dropped : int;
  (* Byzantine delivery faults (off by default; the [> 0.0] guards keep
     the PRNG draw sequence identical to a fault-free link when off). *)
  mutable duplicate : float; (* probability a delivery arrives twice *)
  mutable reorder_burst : int; (* >= 2: buffer this many, release reversed *)
  mutable reorder_window : float; (* max extra holding time for a buffered delivery *)
  mutable reorder_buf : (int * (unit -> unit)) list; (* newest first *)
  mutable reorder_seq : int;
  mutable duplicated : int;
  mutable reordered : int;
}

let create sim ~rng ~latency ?(loss = 0.0) ?(name = "link") () =
  Latency.validate latency;
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Link.create: loss must be in [0, 1)";
  {
    sim;
    rng;
    latency;
    loss;
    name;
    up = true;
    epoch = 0;
    bandwidth = infinity;
    delivered = 0;
    dropped = 0;
    duplicate = 0.0;
    reorder_burst = 0;
    reorder_window = 0.0;
    reorder_buf = [];
    reorder_seq = 0;
    duplicated = 0;
    reordered = 0;
  }

(* Release everything held for reordering, newest arrival first — a
   burst of [reorder_burst] messages comes out exactly reversed. *)
let flush_reorder t =
  let buf = t.reorder_buf in
  t.reorder_buf <- [];
  if List.length buf > 1 then t.reordered <- t.reordered + List.length buf;
  List.iter (fun (_, deliver) -> deliver ()) buf

let arrive t deliver =
  t.delivered <- t.delivered + 1;
  if t.reorder_burst >= 2 then begin
    let id = t.reorder_seq in
    t.reorder_seq <- id + 1;
    t.reorder_buf <- (id, deliver) :: t.reorder_buf;
    if List.length t.reorder_buf >= t.reorder_burst then flush_reorder t
    else
      (* Deadline so a lull in traffic cannot hold messages forever. *)
      ignore
        (Sim.schedule t.sim ~delay:t.reorder_window (fun () ->
             if List.mem_assoc id t.reorder_buf then flush_reorder t))
  end
  else deliver ()

let schedule_delivery t ~delay deliver =
  let epoch = t.epoch in
  ignore
    (Sim.schedule t.sim ~delay (fun () ->
         if t.up && t.epoch = epoch then arrive t deliver
         else t.dropped <- t.dropped + 1))

let send_sized t ~bytes_len deliver =
  if (not t.up) || Prng.bernoulli t.rng t.loss then t.dropped <- t.dropped + 1
  else begin
    let transfer =
      if t.bandwidth = infinity then 0.0 else float_of_int bytes_len /. t.bandwidth
    in
    let delay = Latency.sample t.latency t.rng +. transfer in
    schedule_delivery t ~delay deliver;
    if t.duplicate > 0.0 && Prng.bernoulli t.rng t.duplicate then begin
      t.duplicated <- t.duplicated + 1;
      schedule_delivery t ~delay:(Latency.sample t.latency t.rng +. transfer) deliver
    end
  end

let send t deliver = send_sized t ~bytes_len:0 deliver

let set_up t up =
  if t.up && not up then t.epoch <- t.epoch + 1;
  t.up <- up

let is_up t = t.up

let set_loss t loss =
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Link.set_loss: loss must be in [0, 1)";
  t.loss <- loss

let loss t = t.loss

let set_latency t latency =
  Latency.validate latency;
  t.latency <- latency

let latency t = t.latency

let set_bandwidth t ~bytes_per_sec =
  if bytes_per_sec <= 0.0 then invalid_arg "Link.set_bandwidth: must be positive";
  t.bandwidth <- bytes_per_sec

let set_duplicate t p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Link.set_duplicate: must be in [0, 1)";
  t.duplicate <- p

let duplicate t = t.duplicate

let set_reorder t ~burst ~window =
  if burst < 0 || burst = 1 then
    invalid_arg "Link.set_reorder: burst must be 0 (off) or >= 2";
  if burst >= 2 && window <= 0.0 then
    invalid_arg "Link.set_reorder: window must be positive";
  (* Turning reordering off releases anything still held. *)
  if burst < 2 then flush_reorder t;
  t.reorder_burst <- burst;
  t.reorder_window <- window

let reorder_burst t = t.reorder_burst
let duplicated t = t.duplicated
let reordered t = t.reordered
let delivered t = t.delivered
let dropped t = t.dropped
let name t = t.name
