module Prng = Secrep_crypto.Prng

type t = {
  sim : Sim.t;
  rng : Prng.t;
  mutable latency : Latency.t;
  mutable loss : float;
  name : string;
  mutable up : bool;
  mutable epoch : int; (* bumped on every down transition: in-flight messages from an older epoch are dropped on arrival *)
  mutable bandwidth : float; (* bytes/sec; infinity = unmetered *)
  mutable delivered : int;
  mutable dropped : int;
}

let create sim ~rng ~latency ?(loss = 0.0) ?(name = "link") () =
  Latency.validate latency;
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Link.create: loss must be in [0, 1)";
  {
    sim;
    rng;
    latency;
    loss;
    name;
    up = true;
    epoch = 0;
    bandwidth = infinity;
    delivered = 0;
    dropped = 0;
  }

let send_sized t ~bytes_len deliver =
  if (not t.up) || Prng.bernoulli t.rng t.loss then t.dropped <- t.dropped + 1
  else begin
    let transfer =
      if t.bandwidth = infinity then 0.0 else float_of_int bytes_len /. t.bandwidth
    in
    let delay = Latency.sample t.latency t.rng +. transfer in
    let epoch = t.epoch in
    ignore
      (Sim.schedule t.sim ~delay (fun () ->
           if t.up && t.epoch = epoch then begin
             t.delivered <- t.delivered + 1;
             deliver ()
           end
           else t.dropped <- t.dropped + 1))
  end

let send t deliver = send_sized t ~bytes_len:0 deliver

let set_up t up =
  if t.up && not up then t.epoch <- t.epoch + 1;
  t.up <- up

let is_up t = t.up

let set_loss t loss =
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Link.set_loss: loss must be in [0, 1)";
  t.loss <- loss

let loss t = t.loss

let set_latency t latency =
  Latency.validate latency;
  t.latency <- latency

let latency t = t.latency

let set_bandwidth t ~bytes_per_sec =
  if bytes_per_sec <= 0.0 then invalid_arg "Link.set_bandwidth: must be positive";
  t.bandwidth <- bytes_per_sec

let delivered t = t.delivered
let dropped t = t.dropped
let name t = t.name
