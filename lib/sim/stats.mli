(** Named counters and gauges shared by the experiment harness. *)

type t

val create : unit -> t

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** Unknown counters read as 0. *)

val set_gauge : t -> string -> float -> unit
val gauge : t -> string -> float option

val histogram : t -> string -> Histogram.t
(** Lazily-created named histogram, shared across calls. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * float) list
(** Sorted by name. *)

val histograms : t -> Histogram.t list
(** Sorted by name. *)

val pp : Format.formatter -> t -> unit
(** Counters, then gauges, then histogram summaries; fixed-precision
    numbers so the output is byte-stable across runs. *)
