type dc_outcome = Passed | Mismatch | Throttled

type t =
  | Log of string
  | Read_issued of { client : int; request : int; mode : string }
  | Read_answered of {
      client : int;
      request : int;
      slave : int;
      outcome : string;
      version : int;
      latency : float;
    }
  | Pledge_signed of { slave : int; request : int; version : int; lied : bool }
  | Pledge_batch_signed of { slave : int; version : int; batch : int }
  | Audit_dedup_hit of { slave : int; version : int }
  | Pledge_verified of {
      client : int;
      request : int;
      slave : int;
      version : int;
      ok : bool;
      reason : string;
    }
  | Double_check of { client : int; request : int; slave : int; outcome : dc_outcome }
  | Write_committed of { master : int; version : int }
  | Keepalive_sent of { master : int; version : int }
  | State_update_applied of { slave : int; from_version : int; to_version : int }
  | Audit_advance of { version : int }
  | Audit_conviction of { slave : int; version : int }
  | Slave_excluded of { slave : int; immediate : bool }
  | Order_delivered of { member : int; seq : int }
  | View_installed of { member : int; view : int; sequencer : int }
  | Partition of { target : string; up : bool }
  | Node_crashed of { node : string }
  | Node_recovered of { node : string; version : int }
  | Net_degraded of { loss : float; latency_factor : float }
  | Breaker_opened of { client : int; slave : int }
  | Breaker_closed of { client : int; slave : int }
  | Audit_overload of { backlog : int }
  | Alert_raised of { rule : string; value : float; threshold : float }
  | Alert_cleared of { rule : string; duration : float }
  | Shard_assigned of { shard : int; host : int; slot : int }
  | Shard_rebalanced of {
      shard : int;
      slot : int;
      from_host : int;
      to_host : int;
      reason : string;
    }
  | Attack_launched of { slave : int; mode : string; client : int; request : int }
  | Attack_suppressed of { slave : int; mode : string; reason : string }
  | Slave_quarantined of { slave : int; score : float; until : float }
  | Domain_started of { domain : int; shards : int }
  | Shard_merged of { shard : int; events : int }

type field = I of int | F of float | S of string | B of bool

let dc_outcome_to_string = function
  | Passed -> "passed"
  | Mismatch -> "mismatch"
  | Throttled -> "throttled"

let dc_outcome_of_string = function
  | "passed" -> Ok Passed
  | "mismatch" -> Ok Mismatch
  | "throttled" -> Ok Throttled
  | s -> Error (Printf.sprintf "unknown double-check outcome %S" s)

let kind = function
  | Log _ -> "log"
  | Read_issued _ -> "read_issued"
  | Read_answered _ -> "read_answered"
  | Pledge_signed _ -> "pledge_signed"
  | Pledge_batch_signed _ -> "pledge_batch_signed"
  | Audit_dedup_hit _ -> "audit_dedup_hit"
  | Pledge_verified _ -> "pledge_verified"
  | Double_check _ -> "double_check"
  | Write_committed _ -> "write_committed"
  | Keepalive_sent _ -> "keepalive_sent"
  | State_update_applied _ -> "state_update_applied"
  | Audit_advance _ -> "audit_advance"
  | Audit_conviction _ -> "audit_conviction"
  | Slave_excluded _ -> "slave_excluded"
  | Order_delivered _ -> "order_delivered"
  | View_installed _ -> "view_installed"
  | Partition _ -> "partition"
  | Node_crashed _ -> "node_crashed"
  | Node_recovered _ -> "node_recovered"
  | Net_degraded _ -> "net_degraded"
  | Breaker_opened _ -> "breaker_opened"
  | Breaker_closed _ -> "breaker_closed"
  | Audit_overload _ -> "audit_overload"
  | Alert_raised _ -> "alert_raised"
  | Alert_cleared _ -> "alert_cleared"
  | Shard_assigned _ -> "shard_assigned"
  | Shard_rebalanced _ -> "shard_rebalanced"
  | Attack_launched _ -> "attack_launched"
  | Attack_suppressed _ -> "attack_suppressed"
  | Slave_quarantined _ -> "slave_quarantined"
  | Domain_started _ -> "domain_started"
  | Shard_merged _ -> "shard_merged"

let all_kinds =
  [
    "log";
    "read_issued";
    "read_answered";
    "pledge_signed";
    "pledge_batch_signed";
    "audit_dedup_hit";
    "pledge_verified";
    "double_check";
    "write_committed";
    "keepalive_sent";
    "state_update_applied";
    "audit_advance";
    "audit_conviction";
    "slave_excluded";
    "order_delivered";
    "view_installed";
    "partition";
    "node_crashed";
    "node_recovered";
    "net_degraded";
    "breaker_opened";
    "breaker_closed";
    "audit_overload";
    "alert_raised";
    "alert_cleared";
    "shard_assigned";
    "shard_rebalanced";
    "attack_launched";
    "attack_suppressed";
    "slave_quarantined";
    "domain_started";
    "shard_merged";
  ]

let fields = function
  | Log msg -> [ ("message", S msg) ]
  | Read_issued { client; request; mode } ->
    [ ("client", I client); ("request", I request); ("mode", S mode) ]
  | Read_answered { client; request; slave; outcome; version; latency } ->
    [
      ("client", I client);
      ("request", I request);
      ("slave", I slave);
      ("outcome", S outcome);
      ("version", I version);
      ("latency", F latency);
    ]
  | Pledge_signed { slave; request; version; lied } ->
    [ ("slave", I slave); ("request", I request); ("version", I version); ("lied", B lied) ]
  | Pledge_batch_signed { slave; version; batch } ->
    [ ("slave", I slave); ("version", I version); ("batch", I batch) ]
  | Audit_dedup_hit { slave; version } -> [ ("slave", I slave); ("version", I version) ]
  | Pledge_verified { client; request; slave; version; ok; reason } ->
    [
      ("client", I client);
      ("request", I request);
      ("slave", I slave);
      ("version", I version);
      ("ok", B ok);
      ("reason", S reason);
    ]
  | Double_check { client; request; slave; outcome } ->
    [
      ("client", I client);
      ("request", I request);
      ("slave", I slave);
      ("outcome", S (dc_outcome_to_string outcome));
    ]
  | Write_committed { master; version } -> [ ("master", I master); ("version", I version) ]
  | Keepalive_sent { master; version } -> [ ("master", I master); ("version", I version) ]
  | State_update_applied { slave; from_version; to_version } ->
    [ ("slave", I slave); ("from_version", I from_version); ("to_version", I to_version) ]
  | Audit_advance { version } -> [ ("version", I version) ]
  | Audit_conviction { slave; version } -> [ ("slave", I slave); ("version", I version) ]
  | Slave_excluded { slave; immediate } -> [ ("slave", I slave); ("immediate", B immediate) ]
  | Order_delivered { member; seq } -> [ ("member", I member); ("seq", I seq) ]
  | View_installed { member; view; sequencer } ->
    [ ("member", I member); ("view", I view); ("sequencer", I sequencer) ]
  | Partition { target; up } -> [ ("target", S target); ("up", B up) ]
  | Node_crashed { node } -> [ ("node", S node) ]
  | Node_recovered { node; version } -> [ ("node", S node); ("version", I version) ]
  | Net_degraded { loss; latency_factor } ->
    [ ("loss", F loss); ("latency_factor", F latency_factor) ]
  | Breaker_opened { client; slave } -> [ ("client", I client); ("slave", I slave) ]
  | Breaker_closed { client; slave } -> [ ("client", I client); ("slave", I slave) ]
  | Audit_overload { backlog } -> [ ("backlog", I backlog) ]
  | Alert_raised { rule; value; threshold } ->
    [ ("rule", S rule); ("value", F value); ("threshold", F threshold) ]
  | Alert_cleared { rule; duration } -> [ ("rule", S rule); ("duration", F duration) ]
  | Shard_assigned { shard; host; slot } ->
    [ ("shard", I shard); ("host", I host); ("slot", I slot) ]
  | Shard_rebalanced { shard; slot; from_host; to_host; reason } ->
    [
      ("shard", I shard);
      ("slot", I slot);
      ("from_host", I from_host);
      ("to_host", I to_host);
      ("reason", S reason);
    ]
  | Attack_launched { slave; mode; client; request } ->
    [ ("slave", I slave); ("mode", S mode); ("client", I client); ("request", I request) ]
  | Attack_suppressed { slave; mode; reason } ->
    [ ("slave", I slave); ("mode", S mode); ("reason", S reason) ]
  | Slave_quarantined { slave; score; until } ->
    [ ("slave", I slave); ("score", F score); ("until", F until) ]
  | Domain_started { domain; shards } -> [ ("domain", I domain); ("shards", I shards) ]
  | Shard_merged { shard; events } -> [ ("shard", I shard); ("events", I events) ]

(* -- reconstruction (the JSONL importer) ----------------------------- *)

let ( let* ) = Result.bind

let find_field fs name =
  match List.assoc_opt name fs with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field fs name =
  let* f = find_field fs name in
  match f with
  | I n -> Ok n
  | F x when Float.is_integer x -> Ok (int_of_float x)
  | _ -> Error (Printf.sprintf "field %S is not an int" name)

let float_field fs name =
  let* f = find_field fs name in
  match f with
  | F x -> Ok x
  | I n -> Ok (float_of_int n)
  | _ -> Error (Printf.sprintf "field %S is not a number" name)

let str_field fs name =
  let* f = find_field fs name in
  match f with S s -> Ok s | _ -> Error (Printf.sprintf "field %S is not a string" name)

let bool_field fs name =
  let* f = find_field fs name in
  match f with B b -> Ok b | _ -> Error (Printf.sprintf "field %S is not a bool" name)

(* Traces written before request-id lineage lack the "request" field;
   default it to -1 so old JSONL files still replay. *)
let request_field fs = if List.mem_assoc "request" fs then int_field fs "request" else Ok (-1)

let of_fields ~kind fs =
  match kind with
  | "log" ->
    let* message = str_field fs "message" in
    Ok (Log message)
  | "read_issued" ->
    let* client = int_field fs "client" in
    let* request = request_field fs in
    let* mode = str_field fs "mode" in
    Ok (Read_issued { client; request; mode })
  | "read_answered" ->
    let* client = int_field fs "client" in
    let* request = request_field fs in
    let* slave = int_field fs "slave" in
    let* outcome = str_field fs "outcome" in
    let* version = int_field fs "version" in
    let* latency = float_field fs "latency" in
    Ok (Read_answered { client; request; slave; outcome; version; latency })
  | "pledge_signed" ->
    let* slave = int_field fs "slave" in
    let* request = request_field fs in
    let* version = int_field fs "version" in
    let* lied = bool_field fs "lied" in
    Ok (Pledge_signed { slave; request; version; lied })
  | "pledge_batch_signed" ->
    let* slave = int_field fs "slave" in
    let* version = int_field fs "version" in
    let* batch = int_field fs "batch" in
    Ok (Pledge_batch_signed { slave; version; batch })
  | "audit_dedup_hit" ->
    let* slave = int_field fs "slave" in
    let* version = int_field fs "version" in
    Ok (Audit_dedup_hit { slave; version })
  | "pledge_verified" ->
    let* client = int_field fs "client" in
    let* request = request_field fs in
    let* slave = int_field fs "slave" in
    let* version = int_field fs "version" in
    let* ok = bool_field fs "ok" in
    let* reason = str_field fs "reason" in
    Ok (Pledge_verified { client; request; slave; version; ok; reason })
  | "double_check" ->
    let* client = int_field fs "client" in
    let* request = request_field fs in
    let* slave = int_field fs "slave" in
    let* outcome = str_field fs "outcome" in
    let* outcome = dc_outcome_of_string outcome in
    Ok (Double_check { client; request; slave; outcome })
  | "write_committed" ->
    let* master = int_field fs "master" in
    let* version = int_field fs "version" in
    Ok (Write_committed { master; version })
  | "keepalive_sent" ->
    let* master = int_field fs "master" in
    let* version = int_field fs "version" in
    Ok (Keepalive_sent { master; version })
  | "state_update_applied" ->
    let* slave = int_field fs "slave" in
    let* from_version = int_field fs "from_version" in
    let* to_version = int_field fs "to_version" in
    Ok (State_update_applied { slave; from_version; to_version })
  | "audit_advance" ->
    let* version = int_field fs "version" in
    Ok (Audit_advance { version })
  | "audit_conviction" ->
    let* slave = int_field fs "slave" in
    let* version = int_field fs "version" in
    Ok (Audit_conviction { slave; version })
  | "slave_excluded" ->
    let* slave = int_field fs "slave" in
    let* immediate = bool_field fs "immediate" in
    Ok (Slave_excluded { slave; immediate })
  | "order_delivered" ->
    let* member = int_field fs "member" in
    let* seq = int_field fs "seq" in
    Ok (Order_delivered { member; seq })
  | "view_installed" ->
    let* member = int_field fs "member" in
    let* view = int_field fs "view" in
    let* sequencer = int_field fs "sequencer" in
    Ok (View_installed { member; view; sequencer })
  | "partition" ->
    let* target = str_field fs "target" in
    let* up = bool_field fs "up" in
    Ok (Partition { target; up })
  | "node_crashed" ->
    let* node = str_field fs "node" in
    Ok (Node_crashed { node })
  | "node_recovered" ->
    let* node = str_field fs "node" in
    let* version = int_field fs "version" in
    Ok (Node_recovered { node; version })
  | "net_degraded" ->
    let* loss = float_field fs "loss" in
    let* latency_factor = float_field fs "latency_factor" in
    Ok (Net_degraded { loss; latency_factor })
  | "breaker_opened" ->
    let* client = int_field fs "client" in
    let* slave = int_field fs "slave" in
    Ok (Breaker_opened { client; slave })
  | "breaker_closed" ->
    let* client = int_field fs "client" in
    let* slave = int_field fs "slave" in
    Ok (Breaker_closed { client; slave })
  | "audit_overload" ->
    let* backlog = int_field fs "backlog" in
    Ok (Audit_overload { backlog })
  | "alert_raised" ->
    let* rule = str_field fs "rule" in
    let* value = float_field fs "value" in
    let* threshold = float_field fs "threshold" in
    Ok (Alert_raised { rule; value; threshold })
  | "alert_cleared" ->
    let* rule = str_field fs "rule" in
    let* duration = float_field fs "duration" in
    Ok (Alert_cleared { rule; duration })
  | "shard_assigned" ->
    let* shard = int_field fs "shard" in
    let* host = int_field fs "host" in
    let* slot = int_field fs "slot" in
    Ok (Shard_assigned { shard; host; slot })
  | "shard_rebalanced" ->
    let* shard = int_field fs "shard" in
    let* slot = int_field fs "slot" in
    let* from_host = int_field fs "from_host" in
    let* to_host = int_field fs "to_host" in
    let* reason = str_field fs "reason" in
    Ok (Shard_rebalanced { shard; slot; from_host; to_host; reason })
  | "attack_launched" ->
    let* slave = int_field fs "slave" in
    let* mode = str_field fs "mode" in
    let* client = int_field fs "client" in
    let* request = request_field fs in
    Ok (Attack_launched { slave; mode; client; request })
  | "attack_suppressed" ->
    let* slave = int_field fs "slave" in
    let* mode = str_field fs "mode" in
    let* reason = str_field fs "reason" in
    Ok (Attack_suppressed { slave; mode; reason })
  | "slave_quarantined" ->
    let* slave = int_field fs "slave" in
    let* score = float_field fs "score" in
    let* until = float_field fs "until" in
    Ok (Slave_quarantined { slave; score; until })
  | "domain_started" ->
    let* domain = int_field fs "domain" in
    let* shards = int_field fs "shards" in
    Ok (Domain_started { domain; shards })
  | "shard_merged" ->
    let* shard = int_field fs "shard" in
    let* events = int_field fs "events" in
    Ok (Shard_merged { shard; events })
  | k -> Error (Printf.sprintf "unknown event kind %S" k)

(* -- rendering -------------------------------------------------------- *)

let pp_field fmt (name, f) =
  match f with
  | I n -> Format.fprintf fmt "%s=%d" name n
  | F x -> Format.fprintf fmt "%s=%.6f" name x
  | S s -> Format.fprintf fmt "%s=%s" name s
  | B b -> Format.fprintf fmt "%s=%b" name b

let pp fmt t =
  match t with
  | Log msg -> Format.pp_print_string fmt msg
  | _ ->
    Format.pp_print_string fmt (kind t);
    List.iter (fun f -> Format.fprintf fmt " %a" pp_field f) (fields t)

let to_string t = Format.asprintf "%a" pp t
