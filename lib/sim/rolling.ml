type t = {
  window : float;
  samples : (float * float) Queue.t;
  mutable last_time : float;
  mutable sum : float;
}

let create ~window () =
  if window <= 0.0 then invalid_arg "Rolling.create: window must be positive";
  { window; samples = Queue.create (); last_time = neg_infinity; sum = 0.0 }

let window t = t.window

let evict t ~now =
  let cutoff = now -. t.window in
  let rec loop () =
    match Queue.peek_opt t.samples with
    | Some (ts, v) when ts < cutoff ->
      ignore (Queue.pop t.samples);
      t.sum <- t.sum -. v;
      loop ()
    | _ -> ()
  in
  loop ()

let advance t ~now =
  if now < t.last_time then invalid_arg "Rolling.advance: time went backwards";
  t.last_time <- now;
  evict t ~now

let record t ~time v =
  if time < t.last_time then invalid_arg "Rolling.record: time went backwards";
  t.last_time <- time;
  Queue.add (time, v) t.samples;
  t.sum <- t.sum +. v;
  evict t ~now:time

let count t = Queue.length t.samples
let sum t = t.sum
let mean t = if Queue.is_empty t.samples then None else Some (t.sum /. float_of_int (count t))

let values t =
  let a = Array.make (count t) 0.0 in
  let i = ref 0 in
  Queue.iter
    (fun (_, v) ->
      a.(!i) <- v;
      incr i)
    t.samples;
  a

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Rolling.percentile: p outside [0,100]";
  let a = values t in
  let n = Array.length a in
  if n = 0 then None
  else begin
    Array.sort compare a;
    (* nearest-rank: smallest value with at least p% of samples <= it *)
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    Some a.(idx)
  end
