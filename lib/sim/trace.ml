type record = { time : float; source : string; event : Event.t }

type t = {
  capacity : int;
  ring : record option array;
  mutable next : int; (* next write slot *)
  mutable total : int;
  mutable subscribers : (record -> unit) list;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; total = 0; subscribers = [] }

let on_emit t f = t.subscribers <- t.subscribers @ [ f ]

let emit t ~time ~source event =
  let r = { time; source; event } in
  t.ring.(t.next) <- Some r;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1;
  List.iter (fun f -> f r) t.subscribers

let log t ~time ~source msg = emit t ~time ~source (Event.Log msg)

let size t = min t.total t.capacity
let total_logged t = t.total
let capacity t = t.capacity
let wrapped t = t.total > t.capacity

let to_list t =
  let n = size t in
  let start = if t.total <= t.capacity then 0 else t.next in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match t.ring.((start + i) mod t.capacity) with
    | Some r -> out := r :: !out
    | None -> assert false
  done;
  !out

let message r = Event.to_string r.event

let find t ~f = List.find_opt f (to_list t)
let count_matching t ~f = List.length (List.filter f (to_list t))
let count_kind t ~kind = count_matching t ~f:(fun r -> String.equal (Event.kind r.event) kind)

let kinds t =
  List.sort_uniq String.compare (List.map (fun r -> Event.kind r.event) (to_list t))

let pp_tail ?(n = 20) fmt t =
  let records = to_list t in
  let len = List.length records in
  let tail = if len <= n then records else List.filteri (fun i _ -> i >= len - n) records in
  List.iter
    (fun r -> Format.fprintf fmt "[%10.4f] %-16s %a@." r.time r.source Event.pp r.event)
    tail
