module Prng = Secrep_crypto.Prng

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float; floor : float }
  | Pareto of { scale : float; shape : float; cap : float }
  | Empirical of float array

let validate = function
  | Constant c -> if c < 0.0 then invalid_arg "Latency.Constant: negative"
  | Uniform { lo; hi } ->
    if lo < 0.0 || hi < lo then invalid_arg "Latency.Uniform: need 0 <= lo <= hi"
  | Exponential { mean; floor } ->
    if mean <= 0.0 || floor < 0.0 then invalid_arg "Latency.Exponential: bad parameters"
  | Pareto { scale; shape; cap } ->
    if scale <= 0.0 || shape <= 1.0 || cap < scale then
      invalid_arg "Latency.Pareto: need scale > 0, shape > 1, cap >= scale"
  | Empirical samples ->
    if Array.length samples = 0 then invalid_arg "Latency.Empirical: no samples";
    Array.iter (fun s -> if s < 0.0 then invalid_arg "Latency.Empirical: negative sample") samples

let sample t g =
  match t with
  | Constant c -> c
  | Uniform { lo; hi } -> lo +. ((hi -. lo) *. Prng.float g)
  | Exponential { mean; floor } -> floor +. Prng.exponential g ~mean
  | Pareto { scale; shape; cap } ->
    let u = 1.0 -. Prng.float g in
    Float.min cap (scale /. (u ** (1.0 /. shape)))
  | Empirical samples -> Prng.pick g samples

let scale t factor =
  if factor <= 0.0 then invalid_arg "Latency.scale: factor must be positive";
  match t with
  | Constant c -> Constant (c *. factor)
  | Uniform { lo; hi } -> Uniform { lo = lo *. factor; hi = hi *. factor }
  | Exponential { mean; floor } ->
    Exponential { mean = mean *. factor; floor = floor *. factor }
  | Pareto { scale; shape; cap } ->
    Pareto { scale = scale *. factor; shape; cap = cap *. factor }
  | Empirical samples -> Empirical (Array.map (fun s -> s *. factor) samples)

let mean = function
  | Constant c -> c
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean; floor } -> floor +. mean
  | Pareto { scale; shape; cap = _ } -> scale *. shape /. (shape -. 1.0)
  | Empirical samples ->
    Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)
