module Sim = Secrep_sim.Sim
module Work_queue = Secrep_sim.Work_queue
module Stats = Secrep_sim.Stats
module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Span = Secrep_sim.Span
module Prng = Secrep_crypto.Prng
module Sig_scheme = Secrep_crypto.Sig_scheme
module Store = Secrep_store.Store
module Oplog = Secrep_store.Oplog
module Query = Secrep_store.Query
module Query_eval = Secrep_store.Query_eval
module Query_result = Secrep_store.Query_result
module Canonical = Secrep_store.Canonical

type read_reply = { result : Query_result.t; pledge : Pledge.t }

type t = {
  sim : Sim.t;
  rng : Prng.t;
  id : int;
  config : Config.t;
  key : Sig_scheme.keypair;
  store : Store.t;
  work : Work_queue.t;
  stats : Stats.t;
  trace : Trace.t option;
  spans : Span.t option;
  mutable master_id : int;
  mutable behavior : Fault.behavior;
  mutable keepalive : Keepalive.t option;
  mutable excluded : bool;
  mutable resync : (slave_id:int -> from_version:int -> unit) option;
  mutable reads_served : int;
  mutable lies_told : int;
}

let create sim ~rng ~id ~config ~master_id ~stats ?trace ?spans () =
  {
    sim;
    rng;
    id;
    config;
    key = Sig_scheme.generate config.Config.scheme rng;
    store = Store.create ();
    work = Work_queue.create sim ();
    stats;
    trace;
    spans;
    master_id;
    behavior = Fault.Honest;
    keepalive = None;
    excluded = false;
    resync = None;
    reads_served = 0;
    lies_told = 0;
  }

let source t = Printf.sprintf "slave-%d" t.id

let emit t event =
  match t.trace with
  | Some tr -> Trace.emit tr ~time:(Sim.now t.sim) ~source:(source t) event
  | None -> ()

let span t ~start ~duration name =
  match t.spans with
  | Some spans -> Span.record spans ~source:(source t) ~start ~duration name
  | None -> ()

let id t = t.id
let public t = Sig_scheme.public_of t.key
let master_id t = t.master_id
let set_master t ~master_id = t.master_id <- master_id
let set_behavior t behavior = t.behavior <- behavior
let behavior t = t.behavior
let on_resync_needed t f = t.resync <- Some f

let dropping_updates t =
  match t.behavior with
  | Fault.Malicious { mode = Fault.Stale_state; from_time; _ } -> Sim.now t.sim >= from_time
  | Fault.Honest | Fault.Malicious _ -> false

let receive_update t ~entries ~keepalive =
  if not t.excluded then begin
    (* Links deliver with random latency, so packets can arrive out of
       order; never let a delayed older keep-alive shadow a fresher
       one. *)
    (match t.keepalive with
    | Some prev when prev.Keepalive.timestamp > keepalive.Keepalive.timestamp -> ()
    | Some _ | None -> t.keepalive <- Some keepalive);
    if not (dropping_updates t) then begin
      let before = Store.version t.store in
      List.iter
        (fun (entry : Oplog.entry) ->
          if entry.version = Store.version t.store + 1 then Store.apply_entry t.store entry
          (* entry.version <> current + 1: duplicate or gap, ignore /
             handled below *))
        entries;
      let after = Store.version t.store in
      if after > before then
        emit t
          (Event.State_update_applied { slave = t.id; from_version = before; to_version = after });
      (* The keep-alive names the master's current version, so any
         shortfall — whether the gap showed up inside [entries] or an
         earlier update was lost on the wire — triggers a resync.
         Periodic keep-alives retry this for free until it heals. *)
      let target =
        match t.keepalive with
        | Some ka -> ka.Keepalive.version
        | None -> keepalive.Keepalive.version
      in
      if after < target then begin
        Stats.incr t.stats "slave.resync_requests";
        match t.resync with
        | Some f -> f ~slave_id:t.id ~from_version:after
        | None -> ()
      end
    end
  end

let version t = Store.version t.store
let latest_keepalive t = t.keepalive

let is_available t ~now =
  (not t.excluded)
  && begin
       match t.keepalive with
       | Some ka -> Keepalive.is_fresh ka ~now ~max_latency:t.config.Config.max_latency
       | None -> false
     end

let exclude t = t.excluded <- true
let is_excluded t = t.excluded

let reinstate t ~checkpoint ~keepalive =
  match Store.of_bytes checkpoint with
  | Error msg -> Error ("Slave.reinstate: bad checkpoint: " ^ msg)
  | Ok fresh ->
    Store.assign t.store ~from:fresh;
    t.keepalive <- Some keepalive;
    t.behavior <- Fault.Honest;
    t.excluded <- false;
    Ok ()
let reads_served t = t.reads_served
let lies_told t = t.lies_told
let work t = t.work

let handle_read t ~client:_ ~query ~reply =
  let now = Sim.now t.sim in
  if t.excluded then reply None
  else begin
    match t.keepalive with
    | None -> reply None
    | Some keepalive ->
      (* An honest slave serves only with a fresh keep-alive *and* a
         store caught up to the version that keep-alive names: a slave
         that missed an update on the wire would otherwise sign pledges
         claiming the new version over old state — indistinguishable
         from a Stale_state attacker to the auditor.  "It should stop
         handling user requests until back in sync" (§3); an attacker
         ignores that rule. *)
      let honest_available =
        Keepalive.is_fresh keepalive ~now ~max_latency:t.config.Config.max_latency
        && keepalive.Keepalive.version = Store.version t.store
      in
      let lie = Fault.lies t.behavior ~now t.rng in
      if (not honest_available) && lie = None then begin
        Stats.incr t.stats "slave.refused_stale";
        reply None
      end
      else begin
        match Query_eval.execute t.store query with
        | Error _ ->
          Stats.incr t.stats "slave.bad_queries";
          reply None
        | Ok { result; scanned } ->
          let exec_cost =
            Query_eval.cost_seconds ~scanned ~cost_class:(Query.cost_class query)
              ~per_doc:t.config.Config.per_doc_cost
          in
          let cost = exec_cost +. t.config.Config.signature_cost in
          (* Span durations follow the cost model: evaluation first,
             then the pledge signature. *)
          span t ~start:now ~duration:exec_cost "query_eval";
          span t ~start:(now +. exec_cost) ~duration:t.config.Config.signature_cost "sign";
          Work_queue.submit t.work ~cost (fun () ->
              if t.excluded then reply None
              else begin
                t.reads_served <- t.reads_served + 1;
                Stats.incr t.stats "slave.reads_served";
                let honest_digest = Canonical.result_digest result in
                match lie with
                | None ->
                  let pledge =
                    Pledge.make ~slave_key:t.key ~slave_id:t.id ~query
                      ~result_digest:honest_digest ~keepalive
                  in
                  emit t
                    (Event.Pledge_signed
                       { slave = t.id; version = Pledge.version pledge; lied = false });
                  reply (Some { result; pledge })
                | Some mode ->
                  t.lies_told <- t.lies_told + 1;
                  Stats.incr t.stats "slave.lies_told";
                  (match mode with
                  | Fault.Omit_result -> ()
                  | Fault.Bad_signature | Fault.Corrupt_result | Fault.Collude _
                  | Fault.Stale_state ->
                    emit t
                      (Event.Pledge_signed
                         { slave = t.id; version = keepalive.Keepalive.version; lied = true }));
                  (match mode with
                  | Fault.Omit_result -> () (* silence; the client times out *)
                  | Fault.Bad_signature ->
                    let pledge =
                      Pledge.make ~slave_key:t.key ~slave_id:t.id ~query
                        ~result_digest:honest_digest ~keepalive
                    in
                    reply
                      (Some { result; pledge = { pledge with Pledge.signature = "forged" } })
                  | Fault.Corrupt_result | Fault.Collude _ ->
                    (* A forged digest over the true result would fail the
                       client's own hash check, so the attacker fabricates
                       a *result* and signs its true hash: internally
                       consistent, only re-execution exposes it.
                       Colluders derive the fabrication from a shared tag
                       and the query, so they agree with each other. *)
                    let fake =
                      let body =
                        match mode with
                        | Fault.Collude tag ->
                          Printf.sprintf "collusion-%s-%s" tag
                            (Secrep_crypto.Hex.encode (Canonical.query_digest query))
                        | Fault.Corrupt_result | Fault.Stale_state | Fault.Bad_signature
                        | Fault.Omit_result ->
                          Printf.sprintf "corrupted-%d-%d" t.id t.lies_told
                      in
                      Query_result.Agg (Secrep_store.Value.String body)
                    in
                    let pledge =
                      Pledge.make ~slave_key:t.key ~slave_id:t.id ~query
                        ~result_digest:(Canonical.result_digest fake) ~keepalive
                    in
                    reply (Some { result = fake; pledge })
                  | Fault.Stale_state ->
                    (* The store silently stopped applying updates (see
                       [dropping_updates]); the honest-looking reply over
                       frozen state *is* the lie. *)
                    let pledge =
                      Pledge.make ~slave_key:t.key ~slave_id:t.id ~query
                        ~result_digest:honest_digest ~keepalive
                    in
                    reply (Some { result; pledge }))
              end)
      end
  end
